// Dijkstra shortest paths for weighted overlays.
//
// The base AS graph is unweighted (BFS suffices), but the QoS routing
// simulator attaches per-edge latency weights; Dijkstra serves that layer.
// A binary heap is used: on graphs with |E| = O(|V|) it matches the
// Fibonacci-heap bound the paper quotes in practice.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"

namespace bsr::graph {

inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// Weight callback: weight(u, v) must return the positive weight of edge
/// (u, v). Called once per relaxed edge.
using EdgeWeightFn = std::function<double(NodeId, NodeId)>;

struct DijkstraResult {
  std::vector<double> distance;  // kInfDistance if unreachable
  std::vector<NodeId> parent;    // kUnreachableParent if none
};

inline constexpr NodeId kNoParent = std::numeric_limits<NodeId>::max();

/// Single-source shortest paths with non-negative weights.
/// Throws std::invalid_argument if a negative weight is observed.
[[nodiscard]] DijkstraResult dijkstra(const CsrGraph& g, NodeId source,
                                      const EdgeWeightFn& weight);

/// Reconstructs the path source..target from a DijkstraResult; empty if
/// unreachable.
[[nodiscard]] std::vector<NodeId> extract_path(const DijkstraResult& result,
                                               NodeId source, NodeId target);

}  // namespace bsr::graph
