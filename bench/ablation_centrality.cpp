// Ablation: a betweenness-based baseline (BB) the paper did not test.
//
// Betweenness is the "carries the shortest paths" centrality — arguably the
// natural heuristic for dominating paths. This ablation shows where it
// lands between DB/PRB and MaxSG on the connectivity-vs-k curve, and what
// it costs to compute.
#include <iostream>

#include "bench_common.hpp"
#include "broker/baselines.hpp"
#include "broker/broker_set.hpp"
#include "broker/dominated.hpp"
#include "broker/maxsg.hpp"
#include "graph/betweenness.hpp"

int main() {
  auto ctx = bsr::bench::make_context("Ablation: betweenness-based selection (BB)");
  const auto& g = ctx.topo.graph;

  bsr::bench::Stopwatch bw_clock;
  bsr::graph::Rng rng(ctx.env.seed + 14);
  const auto bb_order = bsr::graph::vertices_by_betweenness_desc(
      g, rng, std::min<std::size_t>(ctx.env.bfs_sources, 128));
  const double bb_seconds = bw_clock.seconds();

  const auto maxsg_full = bsr::broker::maxsg(g, ctx.env.scaled(3540, 8)).brokers;

  bsr::io::Table table({"k", "BB (betweenness)", "DB (degree)", "PRB (PageRank)",
                        "MaxSG"});
  for (const std::uint32_t paper_k : {100u, 500u, 1000u, 2000u}) {
    const std::uint32_t k = ctx.env.scaled(paper_k, 4);
    bsr::broker::BrokerSet bb(g.num_vertices());
    for (std::uint32_t i = 0; i < k && i < bb_order.size(); ++i) bb.add(bb_order[i]);
    table.row()
        .cell(std::uint64_t{k})
        .percent(bsr::broker::saturated_connectivity(g, bb))
        .percent(bsr::broker::saturated_connectivity(
            g, bsr::broker::db_top_degree(g, k)))
        .percent(bsr::broker::saturated_connectivity(
            g, bsr::broker::prb_top_pagerank(g, k)))
        .percent(bsr::broker::saturated_connectivity(
            g, maxsg_full.prefix(std::min<std::size_t>(k, maxsg_full.size()))));
  }
  table.print(std::cout);
  std::cout << "betweenness estimation took " << bsr::io::format_double(bb_seconds, 1)
            << "s (" << std::min<std::size_t>(ctx.env.bfs_sources, 128)
            << " Brandes pivots)\n"
            << "(finding: path centrality alone still inherits the marginal-"
               "effect problem — the objective, not the centrality, is what "
               "MaxSG fixes)\n";
  return 0;
}
