// Property test: greedy edge-disjoint extraction vs exact max-flow.
//
// The number of edge-disjoint B-dominating s-t paths equals the s-t
// max-flow of G_B with unit edge capacities (Menger). Greedy shortest-path
// extraction is a lower bound that can be strictly smaller (it may grab an
// edge two optimal paths needed); this test pins both facts on random small
// graphs using an independent Edmonds-Karp reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <queue>
#include <vector>

#include "broker/disjoint.hpp"
#include "graph/bfs.hpp"
#include "test_util.hpp"

namespace bsr::broker {
namespace {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::graph::Rng;
using bsr::test::make_connected_random;

/// Unit-capacity undirected max flow on the dominated subgraph, via
/// Edmonds-Karp over residual capacities.
int max_flow_dominated(const CsrGraph& g, const BrokerSet& b, NodeId s, NodeId t) {
  std::map<std::pair<NodeId, NodeId>, int> capacity;
  for (NodeId u = 0; u < g.num_vertices(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (b.dominates_edge(u, v)) capacity[{u, v}] = 1;
    }
  }
  int flow = 0;
  while (true) {
    // BFS for an augmenting path in the residual graph.
    std::vector<NodeId> parent(g.num_vertices(), bsr::graph::kUnreachable);
    std::queue<NodeId> queue;
    parent[s] = s;
    queue.push(s);
    while (!queue.empty() && parent[t] == bsr::graph::kUnreachable) {
      const NodeId u = queue.front();
      queue.pop();
      for (const NodeId v : g.neighbors(u)) {
        const auto it = capacity.find({u, v});
        if (it == capacity.end() || it->second <= 0) continue;
        if (parent[v] != bsr::graph::kUnreachable) continue;
        parent[v] = u;
        queue.push(v);
      }
    }
    if (parent[t] == bsr::graph::kUnreachable) break;
    for (NodeId v = t; v != s; v = parent[v]) {
      const NodeId u = parent[v];
      --capacity[{u, v}];
      ++capacity[{v, u}];  // residual
    }
    ++flow;
  }
  return flow;
}

class DisjointFlowTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DisjointFlowTest, GreedyLowerBoundsMaxFlow) {
  const CsrGraph g = make_connected_random(14, 0.3, GetParam());
  Rng rng(GetParam() * 3 + 1);
  // Random broker sets of varying density.
  for (int trial = 0; trial < 6; ++trial) {
    BrokerSet b(g.num_vertices());
    const auto count = 2 + rng.uniform(6);
    for (std::uint64_t i = 0; i < count; ++i) {
      b.add(static_cast<NodeId>(rng.uniform(g.num_vertices())));
    }
    for (NodeId s = 0; s < 4; ++s) {
      for (NodeId t = 10; t < 14; ++t) {
        const auto greedy = disjoint_dominating_paths(g, b, s, t, 8);
        const int flow = max_flow_dominated(g, b, s, t);
        EXPECT_LE(static_cast<int>(greedy.count()), flow)
            << "greedy exceeded max flow?!";
        // Greedy finds at least one path whenever any exists.
        if (flow > 0) {
          EXPECT_GE(greedy.count(), 1u);
        }
        // Shortest-first greedy on unit capacities finds at least half of
        // the optimum (classic bound for greedy disjoint paths is weaker in
        // general; with max_paths=8 >= flow on these tiny graphs, the
        // empirical check below documents the observed tightness).
        if (flow > 0) {
          EXPECT_GE(static_cast<double>(greedy.count()),
                    0.5 * static_cast<double>(flow))
              << "s=" << s << " t=" << t;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisjointFlowTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace bsr::broker
