// Query tracer: bounded per-shard rings (eviction drops the lowest trace
// ids), deterministic multi-shard merge, lifecycle edge cases, the exported
// JSONL shape, and thread-count invariance of the rows RouteService emits.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "broker/broker_set.hpp"
#include "graph/engine.hpp"
#include "graph/fault_plane.hpp"
#include "graph/rng.hpp"
#include "obs/export.hpp"
#include "obs/qtrace.hpp"
#include "sim/route_service.hpp"
#include "test_util.hpp"

namespace {

using bsr::obs::QtraceOptions;
using bsr::obs::QtraceSnapshot;
using bsr::obs::QueryTraceRow;

QueryTraceRow row_with_id(std::uint64_t id) {
  QueryTraceRow row;
  row.trace_id = id;
  row.src = static_cast<std::uint32_t>(id * 3);
  row.dst = static_cast<std::uint32_t>(id * 3 + 1);
  return row;
}

TEST(Qtrace, StartRejectsZeroCapacity) {
  QtraceOptions options;
  options.capacity = 0;
  EXPECT_THROW(bsr::obs::start_query_trace(options),
               std::invalid_argument);
  EXPECT_FALSE(bsr::obs::query_trace_enabled());
}

TEST(Qtrace, RecordIsANoOpWhileDisabled) {
  bsr::obs::stop_query_trace();
  bsr::obs::qtrace_record(0, row_with_id(42));
  const QtraceSnapshot snap = bsr::obs::snapshot_query_trace();
  EXPECT_EQ(snap.recorded, 0u);
  EXPECT_TRUE(snap.rows.empty());
}

TEST(Qtrace, RingKeepsTheNewestCapacityRows) {
  QtraceOptions options;
  options.capacity = 8;
  bsr::obs::start_query_trace(options);
  const std::uint64_t base = bsr::obs::qtrace_begin_batch(20);
  EXPECT_EQ(base, 0u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    bsr::obs::qtrace_record(0, row_with_id(base + i));
  }
  bsr::obs::stop_query_trace();

  const QtraceSnapshot snap = bsr::obs::snapshot_query_trace();
  EXPECT_EQ(snap.recorded, 20u);
  EXPECT_EQ(snap.dropped, 12u);
  ASSERT_EQ(snap.rows.size(), 8u);
  for (std::size_t i = 0; i < snap.rows.size(); ++i) {
    EXPECT_EQ(snap.rows[i].trace_id, 12u + i);  // ids 12..19, ascending
  }
}

TEST(Qtrace, SnapshotMergesShardsByTraceId) {
  QtraceOptions options;
  options.capacity = 16;
  bsr::obs::start_query_trace(options);
  const std::uint64_t base = bsr::obs::qtrace_begin_batch(12);
  // Interleave ids across three shards the way a strided worker split would.
  for (std::uint64_t i = 0; i < 12; ++i) {
    bsr::obs::qtrace_record(i % 3, row_with_id(base + i));
  }
  bsr::obs::stop_query_trace();

  const QtraceSnapshot snap = bsr::obs::snapshot_query_trace();
  EXPECT_EQ(snap.recorded, 12u);
  EXPECT_EQ(snap.dropped, 0u);
  ASSERT_EQ(snap.rows.size(), 12u);
  for (std::size_t i = 0; i < snap.rows.size(); ++i) {
    EXPECT_EQ(snap.rows[i].trace_id, i);
    EXPECT_EQ(snap.rows[i].src, i * 3);  // payload travelled with the id
  }
}

TEST(Qtrace, MergedStreamTrimsToTheGlobalNewestRows) {
  // Per-shard rings retain capacity rows each; the merged snapshot must trim
  // the union back down to the newest `capacity` ids overall.
  QtraceOptions options;
  options.capacity = 4;
  bsr::obs::start_query_trace(options);
  const std::uint64_t base = bsr::obs::qtrace_begin_batch(10);
  // Shard 0 gets ids 0..6, shard 1 gets ids 7..9: shard 0 evicts down to
  // {3,4,5,6}, shard 1 keeps {7,8,9}; union has 7 rows but only the newest
  // 4 survive the merge.
  for (std::uint64_t i = 0; i < 10; ++i) {
    bsr::obs::qtrace_record(i < 7 ? 0 : 1, row_with_id(base + i));
  }
  bsr::obs::stop_query_trace();

  const QtraceSnapshot snap = bsr::obs::snapshot_query_trace();
  EXPECT_EQ(snap.recorded, 10u);
  EXPECT_EQ(snap.dropped, 6u);
  ASSERT_EQ(snap.rows.size(), 4u);
  for (std::size_t i = 0; i < snap.rows.size(); ++i) {
    EXPECT_EQ(snap.rows[i].trace_id, 6u + i);  // ids 6..9
  }
}

TEST(Qtrace, RestartResetsRingsAndIdAllocator) {
  bsr::obs::start_query_trace();
  (void)bsr::obs::qtrace_begin_batch(5);
  bsr::obs::qtrace_record(0, row_with_id(0));
  bsr::obs::start_query_trace();  // restart: previous rows gone, ids rewind
  EXPECT_EQ(bsr::obs::qtrace_begin_batch(3), 0u);
  bsr::obs::qtrace_record(0, row_with_id(2));
  bsr::obs::stop_query_trace();
  const QtraceSnapshot snap = bsr::obs::snapshot_query_trace();
  EXPECT_EQ(snap.recorded, 1u);
  ASSERT_EQ(snap.rows.size(), 1u);
  EXPECT_EQ(snap.rows[0].trace_id, 2u);
}

// --- export golden -----------------------------------------------------------

TEST(QtraceExport, JsonlMatchesTheSchemaByteForByte) {
  QtraceSnapshot snap;
  snap.recorded = 3;
  snap.dropped = 1;
  QueryTraceRow row;
  row.trace_id = 7;
  row.time = 1.5;
  row.epoch = 2;
  row.correlation = 3;
  row.src = 11;
  row.dst = 13;
  row.dist_bound = 4;
  row.stale_behind = 1;
  row.admit_ticks = 1;
  row.lookup_ticks = 9;
  row.stitch_ticks = 5;
  row.status = 1;  // stale_served
  row.reachable = 1;
  snap.rows.push_back(row);
  row.trace_id = 8;
  row.status = 3;  // refused
  row.reachable = 0;
  snap.rows.push_back(row);

  std::ostringstream os;
  bsr::obs::write_qtrace_jsonl(os, snap);
  EXPECT_EQ(
      os.str(),
      "{\"schema\": \"bsr-qtrace/1\", \"rows\": 2, \"dropped\": 1}\n"
      "{\"id\": 7, \"t\": 1.5, \"epoch\": 2, \"corr\": 3, \"src\": 11, "
      "\"dst\": 13, \"tag\": \"stale_served\", \"reachable\": true, "
      "\"dist\": 4, \"stale\": 1, \"ticks\": {\"admit\": 1, \"lookup\": 9, "
      "\"stitch\": 5}}\n"
      "{\"id\": 8, \"t\": 1.5, \"epoch\": 2, \"corr\": 3, \"src\": 11, "
      "\"dst\": 13, \"tag\": \"refused\", \"reachable\": false, "
      "\"dist\": 4, \"stale\": 1, \"ticks\": {\"admit\": 1, \"lookup\": 9, "
      "\"stitch\": 5}}\n");
}

// --- thread-count invariance -------------------------------------------------

// The exported qtrace stream must be byte-identical at any BSR_THREADS: ids
// come from program order and the merge sorts per-shard rings back into one
// deterministic sequence. This is the property the CI serve job `cmp`s.
TEST(QtraceThreads, RouteServiceTraceIsThreadCountInvariant) {
  if (!BSR_STATS_ENABLED) GTEST_SKIP() << "built with BSR_STATS=OFF";
  const bsr::graph::CsrGraph g = bsr::test::make_connected_random(300, 0.02, 17);
  std::vector<bsr::graph::NodeId> members;
  for (bsr::graph::NodeId v = 0; v < 30; ++v) members.push_back(v * 9);
  const bsr::broker::BrokerSet brokers(g.num_vertices(), members);

  bsr::sim::DemandConfig demand;
  demand.num_flows = 400;
  bsr::graph::Rng rng(3);
  const auto flows = bsr::sim::generate_flows(g, demand, rng);

  const auto run_traced = [&]() -> std::string {
    QtraceOptions options;
    options.capacity = 512;  // smaller than total rows: eviction is exercised
    bsr::obs::start_query_trace(options);
    bsr::graph::FaultPlane faults(g);
    bsr::sim::RouteService service(g, brokers, &faults);
    std::vector<bsr::sim::RouteAnswer> answers;
    service.serve_batch(flows, 0.0, answers);
    faults.fail_vertex(members[0]);
    service.on_fault(1.0);
    service.serve_batch(flows, 1.5, answers);  // stale epoch, correlation set
    while (service.next_event_time() <= 1e9) {
      service.advance(service.next_event_time());
    }
    service.serve_batch(flows, 50.0, answers);
    bsr::obs::stop_query_trace();
    std::ostringstream os;
    bsr::obs::write_qtrace_jsonl(os, bsr::obs::snapshot_query_trace());
    return os.str();
  };

  bsr::graph::engine::set_num_threads(1);
  const std::string t1 = run_traced();
  bsr::graph::engine::set_num_threads(4);
  const std::string t4 = run_traced();
  bsr::graph::engine::set_num_threads(7);
  const std::string t7 = run_traced();
  bsr::graph::engine::set_num_threads(0);

  EXPECT_EQ(t1, t4);
  EXPECT_EQ(t1, t7);
  // The run actually recorded more rows than the ring holds.
  const QtraceSnapshot snap = bsr::obs::snapshot_query_trace();
  EXPECT_EQ(snap.recorded, 3u * 400u);
  EXPECT_GT(snap.dropped, 0u);
  EXPECT_EQ(snap.rows.size(), 512u);
}

}  // namespace
