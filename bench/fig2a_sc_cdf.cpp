// Reproduces Fig. 2a — CDF of the SC algorithm's broker-set size.
//
// Paper: across 300 runs the random-order Set-Cover dominating set needs
// ~40,000 of 52,079 vertices (> 76 %) — hopeless to incentivize. We run the
// same 300 iterations and print the empirical CDF.
#include <algorithm>
#include <numeric>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "broker/baselines.hpp"

int main() {
  auto ctx = bsr::bench::make_context("Fig. 2a: SC broker-set size CDF (300 runs)");
  const auto& g = ctx.topo.graph;

  constexpr int kRuns = 300;
  bsr::graph::Rng rng(ctx.env.seed + 5);
  std::vector<std::size_t> sizes;
  sizes.reserve(kRuns);
  bsr::bench::Stopwatch sw;
  for (int run = 0; run < kRuns; ++run) {
    sizes.push_back(bsr::broker::sc_dominating_set(g, rng).size());
  }
  std::sort(sizes.begin(), sizes.end());
  std::cout << kRuns << " SC runs in " << bsr::io::format_double(sw.seconds(), 1)
            << "s\n";

  bsr::io::Table table({"CDF quantile", "broker-set size", "share of all vertices"});
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const auto idx = std::min(sizes.size() - 1,
                              static_cast<std::size_t>(q * (sizes.size() - 1)));
    table.row()
        .cell(bsr::io::format_double(q, 2))
        .cell(static_cast<std::uint64_t>(sizes[idx]))
        .percent(static_cast<double>(sizes[idx]) / g.num_vertices());
  }
  table.print(std::cout);
  const double mean =
      static_cast<double>(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0})) /
      kRuns;
  std::cout << "mean size = " << bsr::io::format_double(mean, 0) << " ("
            << bsr::io::format_percent(mean / g.num_vertices())
            << "% of vertices; paper: ~40,000 = 76%+)\n";
  return 0;
}
