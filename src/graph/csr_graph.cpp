#include "graph/csr_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace bsr::graph {

CsrGraph::CsrGraph(std::vector<std::uint64_t> offsets, std::vector<NodeId> adjacency)
    : offsets_(std::move(offsets)), adjacency_(std::move(adjacency)) {
  if (offsets_.empty()) {
    if (!adjacency_.empty()) {
      throw std::invalid_argument("CsrGraph: adjacency without offsets");
    }
    return;
  }
  if (offsets_.size() - 1 >= kUnreachable) {
    // NodeId must be able to address every vertex AND keep kUnreachable as an
    // out-of-band sentinel for dist/parent arrays.
    throw std::invalid_argument("CsrGraph: vertex count exceeds NodeId range");
  }
  if (offsets_.front() != 0 || offsets_.back() != adjacency_.size()) {
    throw std::invalid_argument("CsrGraph: offsets must start at 0 and end at |adjacency|");
  }
  if (!std::is_sorted(offsets_.begin(), offsets_.end())) {
    throw std::invalid_argument("CsrGraph: offsets must be non-decreasing");
  }
  const auto n = static_cast<NodeId>(offsets_.size() - 1);
  for (NodeId v = 0; v < n; ++v) {
    const auto nbrs = neighbors(v);
    if (!std::is_sorted(nbrs.begin(), nbrs.end())) {
      throw std::invalid_argument("CsrGraph: adjacency lists must be sorted");
    }
    for (const NodeId w : nbrs) {
      if (w >= n) throw std::invalid_argument("CsrGraph: neighbor id out of range");
      if (w == v) throw std::invalid_argument("CsrGraph: self-loops are not allowed");
    }
  }
  if (adjacency_.size() % 2 != 0) {
    throw std::invalid_argument("CsrGraph: undirected adjacency must have even size");
  }
}

bool CsrGraph::has_edge(NodeId u, NodeId v) const noexcept {
  BSR_DCHECK(u < num_vertices() && v < num_vertices());
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> CsrGraph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  const NodeId n = num_vertices();
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : neighbors(u)) {
      if (u < v) out.push_back(Edge{u, v});
    }
  }
  return out;
}

}  // namespace bsr::graph
