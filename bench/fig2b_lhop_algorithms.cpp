// Reproduces Fig. 2b — l-hop E2E connectivity of every selection algorithm.
//
// Paper curves (at full scale): MCBG-approx and MaxSG on top (85 %+ with
// ~1,000 brokers), DB/PRB below with a serious marginal effect, IXPB capped
// at 15.70 %, Tier1Only worst. Each algorithm also emits a CSV series for
// external plotting.
#include <iostream>

#include "bench_common.hpp"
#include "broker/baselines.hpp"
#include "broker/dominated.hpp"
#include "broker/maxsg.hpp"
#include "broker/mcbg_approx.hpp"
#include "io/csv.hpp"

int main() {
  auto ctx = bsr::bench::make_context("Fig. 2b: l-hop connectivity by algorithm");
  const auto& g = ctx.topo.graph;
  const std::uint32_t k = ctx.env.scaled(1000, 8);

  struct Entry {
    std::string name;
    bsr::broker::BrokerSet brokers;
  };
  std::vector<Entry> entries;

  bsr::bench::Stopwatch sw;
  entries.push_back({"MaxSG", bsr::broker::maxsg(g, k).brokers});
  std::cout << "MaxSG done (" << bsr::io::format_double(sw.seconds(), 1) << "s)\n";

  bsr::bench::Stopwatch sw2;
  bsr::broker::McbgOptions mcbg_options;
  mcbg_options.max_roots = 16;  // paper loops over all roots; 16 suffices
  entries.push_back({"MCBG-approx", bsr::broker::mcbg_approx(g, k, mcbg_options).brokers});
  std::cout << "MCBG-approx done (" << bsr::io::format_double(sw2.seconds(), 1)
            << "s)\n";

  entries.push_back({"DB", bsr::broker::db_top_degree(g, k)});
  entries.push_back({"PRB", bsr::broker::prb_top_pagerank(g, k)});
  entries.push_back({"IXPB", bsr::broker::ixpb(ctx.topo)});
  entries.push_back({"Tier1Only", bsr::broker::tier1_only(ctx.topo)});

  bsr::io::Table table({"Algorithm", "|B|", "l=2", "l=4", "l=6", "l=8", "saturated"});
  bsr::io::CsvWriter csv({"algorithm", "k", "l", "connectivity"});
  bsr::graph::Rng rng(ctx.env.seed + 6);
  for (const Entry& entry : entries) {
    const auto cdf =
        bsr::broker::dominated_distance_cdf(g, entry.brokers, rng, ctx.env.bfs_sources);
    table.row()
        .cell(entry.name)
        .cell(static_cast<std::uint64_t>(entry.brokers.size()))
        .percent(cdf.at(2))
        .percent(cdf.at(4))
        .percent(cdf.at(6))
        .percent(cdf.at(8))
        .percent(cdf.reachable);
    for (std::uint32_t l = 1; l <= 10; ++l) {
      csv.add_row({entry.name, std::to_string(entry.brokers.size()),
                   std::to_string(l), bsr::io::format_double(cdf.at(l), 6)});
    }
  }
  table.print(std::cout);
  csv.write_file("fig2b_lhop_algorithms.csv");
  std::cout << "series written to fig2b_lhop_algorithms.csv\n"
            << "(paper anchors: MaxSG/MCBG ~85% saturated at k~1000, "
               "IXPB capped at 15.70%, Tier1Only lowest)\n";
  return 0;
}
