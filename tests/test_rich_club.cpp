#include "graph/rich_club.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "topology/internet.hpp"

namespace bsr::graph {
namespace {

using bsr::test::make_complete;
using bsr::test::make_path;
using bsr::test::make_star;

TEST(RichClub, CompleteGraphIsFullClub) {
  const CsrGraph g = make_complete(8);
  EXPECT_DOUBLE_EQ(rich_club_coefficient(g, 0), 1.0);
  EXPECT_DOUBLE_EQ(rich_club_coefficient(g, 6), 1.0);  // all degree-7 vertices
  EXPECT_DOUBLE_EQ(rich_club_coefficient(g, 7), 0.0);  // nobody qualifies
}

TEST(RichClub, StarHasNoClub) {
  // Degree > 1 leaves only the center: fewer than 2 members.
  const CsrGraph g = make_star(10);
  EXPECT_DOUBLE_EQ(rich_club_coefficient(g, 1), 0.0);
  // Threshold 0: all vertices; only star edges exist.
  EXPECT_NEAR(rich_club_coefficient(g, 0), 9.0 / 45.0, 1e-12);
}

TEST(RichClub, TwoHubsJoined) {
  // Double star with joined centers: at threshold 1 the two centers are
  // the club, and their bridge makes it complete.
  GraphBuilder b(10);
  for (NodeId v = 1; v < 5; ++v) b.add_edge(0, v);
  for (NodeId v = 6; v < 10; ++v) b.add_edge(5, v);
  b.add_edge(0, 5);
  const CsrGraph g = b.build();
  EXPECT_DOUBLE_EQ(rich_club_coefficient(g, 1), 1.0);
}

TEST(RichClub, ProfileMonotonicityNotRequiredButFinite) {
  const CsrGraph g = bsr::test::make_connected_random(100, 0.06, 3);
  const auto profile = rich_club_profile(g, {0, 2, 4, 8, 16});
  ASSERT_EQ(profile.size(), 5u);
  for (const double phi : profile) {
    EXPECT_GE(phi, 0.0);
    EXPECT_LE(phi, 1.0);
  }
}

TEST(RichClub, SyntheticInternetCoreIsAClub) {
  auto cfg = bsr::topology::InternetConfig{}.scaled(0.05);
  cfg.seed = 4;
  const auto topo = bsr::topology::make_internet(cfg);
  // The very top of the AS degree distribution (the tier-1-ish core) must
  // be far denser than the graph overall. Evaluate on the AS-only graph:
  // IXPs never interconnect, so including them dilutes the club.
  const auto as_graph = topo.as_only_graph();
  std::vector<std::uint32_t> degrees;
  for (NodeId v = 0; v < as_graph.num_vertices(); ++v) {
    degrees.push_back(as_graph.degree(v));
  }
  std::sort(degrees.begin(), degrees.end());
  const std::uint32_t p995 = degrees[degrees.size() * 995 / 1000];
  const double core_phi = rich_club_coefficient(as_graph, p995);
  const double base_phi = rich_club_coefficient(as_graph, 0);
  EXPECT_GT(core_phi, 0.05);
  EXPECT_GT(core_phi, 5.0 * base_phi);
}

}  // namespace
}  // namespace bsr::graph
