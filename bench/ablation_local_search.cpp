// Ablation: does 1-swap local search improve on MaxSG?
//
// The remark after Theorem 4 leaves tighter algorithms open. The cheapest
// candidate is swap-based refinement of the greedy output. Finding: MaxSG
// is already (near-)1-swap-optimal on this topology — the improvement is a
// rounding error, while refining a naive DB seed buys whole percentage
// points. That is evidence the greedy objective, not post-optimization, is
// what matters.
#include <iostream>

#include "bench_common.hpp"
#include "broker/baselines.hpp"
#include "broker/local_search.hpp"
#include "broker/maxsg.hpp"

int main() {
  auto ctx = bsr::bench::make_context("Ablation: 1-swap local search on broker sets");
  const auto& g = ctx.topo.graph;
  const std::uint32_t k = ctx.env.scaled(150, 6);

  bsr::broker::LocalSearchOptions options;
  options.max_swaps = 12;
  options.candidate_pool = 32;

  bsr::io::Table table({"seed selection", "|B|", "before", "after", "gain",
                        "swaps"});
  const auto row = [&](const char* name, const bsr::broker::BrokerSet& seed) {
    bsr::bench::Stopwatch sw;
    const auto result = bsr::broker::improve_by_swaps(g, seed, options);
    table.row()
        .cell(name)
        .cell(static_cast<std::uint64_t>(seed.size()))
        .percent(result.initial_connectivity)
        .percent(result.final_connectivity)
        .percent(result.final_connectivity - result.initial_connectivity)
        .cell(std::uint64_t{result.swaps_applied});
    std::cout << "  (" << name << ": " << bsr::io::format_double(sw.seconds(), 1)
              << "s)\n";
  };

  row("MaxSG", bsr::broker::maxsg(g, k).brokers);
  row("DB (top degree)", bsr::broker::db_top_degree(g, k));
  row("PRB (top PageRank)", bsr::broker::prb_top_pagerank(g, k));
  table.print(std::cout);
  return 0;
}
