#include "broker/coverage.hpp"

#include <gtest/gtest.h>

#include <set>

#include "test_util.hpp"

namespace bsr::broker {
namespace {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::test::make_random;
using bsr::test::make_star;

/// Naive f(B) = |B ∪ N(B)| via std::set.
std::uint32_t naive_coverage(const CsrGraph& g, const BrokerSet& b) {
  std::set<NodeId> covered;
  for (const NodeId v : b.members()) {
    covered.insert(v);
    for (const NodeId w : g.neighbors(v)) covered.insert(w);
  }
  return static_cast<std::uint32_t>(covered.size());
}

TEST(Coverage, StarCenterCoversAll) {
  const CsrGraph g = make_star(10);
  BrokerSet b(10);
  b.add(0);
  EXPECT_EQ(coverage(g, b), 10u);
}

TEST(Coverage, LeafCoversSelfAndCenter) {
  const CsrGraph g = make_star(10);
  BrokerSet b(10);
  b.add(3);
  EXPECT_EQ(coverage(g, b), 2u);
}

TEST(Coverage, EmptySetCoversNothing) {
  const CsrGraph g = make_star(4);
  EXPECT_EQ(coverage(g, BrokerSet(4)), 0u);
}

TEST(CoverageTracker, IncrementalMatchesBatch) {
  const CsrGraph g = make_random(50, 0.08, 21);
  CoverageTracker tracker(g);
  BrokerSet b(g.num_vertices());
  for (const NodeId v : {NodeId{3}, NodeId{17}, NodeId{42}, NodeId{8}}) {
    const std::uint32_t gain = tracker.marginal_gain(v);
    const std::uint32_t realized = tracker.add(v);
    EXPECT_EQ(gain, realized);
    b.add(v);
    EXPECT_EQ(tracker.covered_count(), coverage(g, b));
  }
}

TEST(CoverageTracker, AddingBrokerTwiceIsNoop) {
  const CsrGraph g = make_star(6);
  CoverageTracker tracker(g);
  tracker.add(0);
  EXPECT_EQ(tracker.add(0), 0u);
  EXPECT_TRUE(tracker.all_covered());
}

TEST(CoverageTracker, MarginalGainZeroWhenCovered) {
  const CsrGraph g = make_star(6);
  CoverageTracker tracker(g);
  tracker.add(0);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(tracker.marginal_gain(v), 0u);
}

class CoveragePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoveragePropertyTest, MatchesNaiveOnRandomSets) {
  const CsrGraph g = make_random(40, 0.1, GetParam());
  bsr::graph::Rng rng(GetParam() * 7 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    BrokerSet b(g.num_vertices());
    const auto size = 1 + rng.uniform(10);
    for (std::uint64_t i = 0; i < size; ++i) {
      b.add(static_cast<NodeId>(rng.uniform(g.num_vertices())));
      // add() tolerates duplicates via return value; retry not needed.
    }
    EXPECT_EQ(coverage(g, b), naive_coverage(g, b));
  }
}

TEST_P(CoveragePropertyTest, MonotoneNondecreasing) {
  const CsrGraph g = make_random(40, 0.1, GetParam());
  CoverageTracker tracker(g);
  std::uint32_t previous = 0;
  for (NodeId v = 0; v < g.num_vertices(); v += 3) {
    tracker.add(v);
    EXPECT_GE(tracker.covered_count(), previous);
    previous = tracker.covered_count();
  }
}

TEST_P(CoveragePropertyTest, SubmodularDiminishingReturns) {
  // Lemma 3: for A ⊆ B and any v, gain_A(v) >= gain_B(v).
  const CsrGraph g = make_random(35, 0.12, GetParam());
  bsr::graph::Rng rng(GetParam() * 13 + 5);
  for (int trial = 0; trial < 10; ++trial) {
    CoverageTracker small(g), large(g);
    // A = two random brokers; B = A plus two more.
    std::vector<NodeId> a_members, extra;
    for (int i = 0; i < 2; ++i) {
      a_members.push_back(static_cast<NodeId>(rng.uniform(g.num_vertices())));
      extra.push_back(static_cast<NodeId>(rng.uniform(g.num_vertices())));
    }
    for (const NodeId v : a_members) {
      small.add(v);
      large.add(v);
    }
    for (const NodeId v : extra) large.add(v);
    for (NodeId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_GE(small.marginal_gain(v), large.marginal_gain(v))
          << "submodularity violated at vertex " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoveragePropertyTest,
                         ::testing::Values(1, 12, 123, 1234, 12345));

}  // namespace
}  // namespace bsr::broker
