// Ablation: dominating-path diversity — does the alliance offer backups?
//
// A single dominating path gives QoS supervision; two *edge-disjoint*
// dominating paths give supervised failover (the PCE line of §2 provisions
// exactly this). Measures, per broker-set size, the share of pairs with at
// least one and at least two disjoint dominating paths.
#include <iostream>

#include "bench_common.hpp"
#include "broker/disjoint.hpp"
#include "broker/maxsg.hpp"

int main() {
  auto ctx = bsr::bench::make_context("Ablation: dominating-path diversity");
  const auto& g = ctx.topo.graph;

  const auto full = bsr::broker::maxsg(g, ctx.env.scaled(3540, 8)).brokers;
  // Each pair costs up to two dominated BFS runs; keep the sample bounded.
  const std::size_t pairs = std::min<std::size_t>(400, ctx.env.bfs_sources);

  bsr::io::Table table({"|B| (MaxSG prefix)", ">= 1 dominating path",
                        ">= 2 edge-disjoint", "backup ratio"});
  for (const std::uint32_t paper_k : {100u, 1000u, 3540u}) {
    const auto prefix = full.prefix(std::min<std::size_t>(
        ctx.env.scaled(paper_k, 4), full.size()));
    bsr::graph::Rng rng(ctx.env.seed + 16);
    const auto stats = bsr::broker::path_diversity(g, prefix, rng, pairs);
    table.row()
        .cell(static_cast<std::uint64_t>(prefix.size()))
        .percent(stats.with_one)
        .percent(stats.with_two)
        .percent(stats.with_one > 0 ? stats.with_two / stats.with_one : 0);
  }
  table.print(std::cout);
  std::cout << "(" << pairs
            << " sampled pairs; the alliance serves most pairs with a "
               "supervised backup path as well — single-mediator schemes "
               "cannot)\n";
  return 0;
}
