// Vertex renumbering (relabeling) pass for cache locality.
//
// BFS and greedy sweeps over the internet topology are memory-bound: every
// adjacency entry is a random load into dist/root/size arrays indexed by
// neighbor id. The generator hands out ids in creation order (tier by tier),
// so a hub's neighbors are scattered across the whole id range and nearly
// every neighbor load misses. Renumbering relabels vertices so that
// high-traffic ids cluster at the bottom of the range (degree-descending) or
// follow traversal order (BFS), shrinking the average |u - v| gap across an
// edge by an order of magnitude and with it the working set of the hot loops.
//
// A Renumbering is a permutation with both directions materialized:
//   to_new(old_id) — where an original vertex landed,
//   to_old(new_id) — which original vertex a relabeled slot holds.
// Everything downstream stays in *original* ids: solvers accept an optional
// Renumbering and iterate candidates in original-id order (so tie-breaks,
// and therefore results, are bit-identical with and without the pass), and
// the adapters below map broker sets, failure groups, and edges across the
// permutation. The identity permutation is a byte-for-byte no-op everywhere.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/check.hpp"
#include "graph/csr_graph.hpp"
#include "graph/fault_plane.hpp"

namespace bsr::graph {

class Renumbering {
 public:
  /// Empty permutation over zero vertices.
  Renumbering() = default;

  /// The identity permutation over n vertices.
  [[nodiscard]] static Renumbering identity(NodeId n);

  /// From an explicit new-id ordering: order[new_id] = old_id. Throws
  /// std::invalid_argument unless `order` is a permutation of [0, size).
  [[nodiscard]] static Renumbering from_new_order(std::vector<NodeId> order);

  /// Degree-descending relabeling: new id 0 is the highest-degree vertex
  /// (ties by ascending old id — same order as vertices_by_degree_desc).
  [[nodiscard]] static Renumbering degree_descending(const CsrGraph& g);

  /// Degree-descending within [0, boundary) and within [boundary, n)
  /// independently, so segment invariants (e.g. InternetTopology::is_ixp,
  /// which tests v >= num_ases) survive the relabeling.
  [[nodiscard]] static Renumbering degree_descending_segmented(const CsrGraph& g,
                                                               NodeId boundary);

  /// BFS discovery order from `source` (unfiltered); vertices unreachable
  /// from the source keep their relative order after the reachable ones.
  [[nodiscard]] static Renumbering bfs_order(const CsrGraph& g, NodeId source);

  [[nodiscard]] NodeId size() const noexcept {
    return static_cast<NodeId>(to_new_.size());
  }

  [[nodiscard]] bool is_identity() const;

  [[nodiscard]] NodeId to_new(NodeId old_id) const noexcept {
    BSR_DCHECK(old_id < to_new_.size());
    return to_new_[old_id];
  }
  [[nodiscard]] NodeId to_old(NodeId new_id) const noexcept {
    BSR_DCHECK(new_id < to_old_.size());
    return to_old_[new_id];
  }

  [[nodiscard]] std::span<const NodeId> to_new_map() const noexcept { return to_new_; }
  [[nodiscard]] std::span<const NodeId> to_old_map() const noexcept { return to_old_; }

  /// The relabeled graph: same edge set with both endpoints mapped through
  /// to_new, adjacency re-sorted. Throws std::invalid_argument if g's vertex
  /// count differs from size().
  [[nodiscard]] CsrGraph apply(const CsrGraph& g) const;

  /// Maps an id list (order preserved — selection order survives).
  [[nodiscard]] std::vector<NodeId> map_to_new(std::span<const NodeId> old_ids) const;
  [[nodiscard]] std::vector<NodeId> map_to_old(std::span<const NodeId> new_ids) const;

  /// Maps a canonical edge, re-canonicalizing (the permutation may swap the
  /// endpoint order).
  [[nodiscard]] Edge map_edge_to_new(Edge e) const;
  [[nodiscard]] Edge map_edge_to_old(Edge e) const;

  /// Maps a correlated failure group so a FaultPlane over the relabeled
  /// graph can fail exactly the same physical links.
  [[nodiscard]] FailureGroup map_group_to_new(const FailureGroup& group) const;

 private:
  std::vector<NodeId> to_new_;  // to_new_[old_id] = new_id
  std::vector<NodeId> to_old_;  // to_old_[new_id] = old_id
};

/// Mean |u - v| over every directed adjacency entry — the cache-locality
/// metric the pass optimizes (lower = neighbor loads land closer together).
/// 0 for an edgeless graph.
[[nodiscard]] double average_neighbor_gap(const CsrGraph& g);

/// Integer numerator of average_neighbor_gap (sum of |u - v| over directed
/// adjacency entries) — for bit-exact artifacts.
[[nodiscard]] std::uint64_t total_neighbor_gap(const CsrGraph& g);

}  // namespace bsr::graph
