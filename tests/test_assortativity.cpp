#include "graph/assortativity.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "topology/er.hpp"
#include "topology/internet.hpp"

namespace bsr::graph {
namespace {

using bsr::test::make_complete;
using bsr::test::make_cycle;
using bsr::test::make_path;
using bsr::test::make_star;

TEST(Assortativity, StarIsPerfectlyDisassortative) {
  // Every edge joins the max-degree hub to a degree-1 leaf: r = -1.
  const CsrGraph g = make_star(12);
  EXPECT_NEAR(degree_assortativity(g), -1.0, 1e-9);
}

TEST(Assortativity, RegularGraphsAreDegenerate) {
  // No degree variance -> coefficient defined as 0.
  EXPECT_DOUBLE_EQ(degree_assortativity(make_cycle(10)), 0.0);
  EXPECT_DOUBLE_EQ(degree_assortativity(make_complete(6)), 0.0);
}

TEST(Assortativity, TinyGraphsAreZero) {
  EXPECT_DOUBLE_EQ(degree_assortativity(CsrGraph()), 0.0);
  EXPECT_DOUBLE_EQ(degree_assortativity(make_path(2)), 0.0);
}

TEST(Assortativity, ErIsNearNeutral) {
  const auto g = bsr::topology::make_er(3000, 15000, 42);
  EXPECT_NEAR(degree_assortativity(g), 0.0, 0.05);
}

TEST(Assortativity, HubHubEdgeRaisesCoefficient) {
  // A single star is perfectly disassortative (r = -1). Joining the centers
  // of two stars adds one like-degree (hub-hub) edge, which must pull the
  // coefficient strictly above -1.
  GraphBuilder b(12);
  for (NodeId v = 1; v < 6; ++v) b.add_edge(0, v);
  for (NodeId v = 7; v < 12; ++v) b.add_edge(6, v);
  b.add_edge(0, 6);  // hub-hub bridge
  const CsrGraph double_star = b.build();
  EXPECT_GT(degree_assortativity(double_star),
            degree_assortativity(make_star(12)));
  EXPECT_GT(degree_assortativity(double_star), -1.0);
  EXPECT_LT(degree_assortativity(double_star), 0.0);  // still leaf-dominated
}

TEST(Assortativity, SyntheticInternetIsDisassortative) {
  auto cfg = bsr::topology::InternetConfig{}.scaled(0.05);
  cfg.seed = 9;
  const auto topo = bsr::topology::make_internet(cfg);
  const double r = degree_assortativity(topo.graph);
  // The measured Internet sits around -0.2; our generator must land clearly
  // negative.
  EXPECT_LT(r, -0.05);
  EXPECT_GT(r, -0.8);
}

}  // namespace
}  // namespace bsr::graph
