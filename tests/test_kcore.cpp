#include "graph/kcore.hpp"

#include "graph/bfs.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph_builder.hpp"
#include "test_util.hpp"

namespace bsr::graph {
namespace {

using bsr::test::make_complete;
using bsr::test::make_cycle;
using bsr::test::make_path;
using bsr::test::make_random;
using bsr::test::make_star;

/// Brute-force coreness: repeatedly peel vertices of minimum degree.
std::vector<std::uint32_t> naive_coreness(const CsrGraph& g) {
  const NodeId n = g.num_vertices();
  std::vector<std::uint32_t> degree(n), core(n, 0);
  std::vector<bool> removed(n, false);
  for (NodeId v = 0; v < n; ++v) degree[v] = g.degree(v);
  for (NodeId round = 0; round < n; ++round) {
    NodeId best = kUnreachable;
    for (NodeId v = 0; v < n; ++v) {
      if (!removed[v] && (best == kUnreachable || degree[v] < degree[best])) best = v;
    }
    if (best == kUnreachable) break;
    static std::uint32_t running_max;
    if (round == 0) running_max = 0;
    running_max = std::max(running_max, degree[best]);
    core[best] = running_max;
    removed[best] = true;
    for (const NodeId w : g.neighbors(best)) {
      if (!removed[w] && degree[w] > 0) --degree[w];
    }
  }
  return core;
}

TEST(KCore, CompleteGraph) {
  const CsrGraph g = make_complete(6);
  const auto core = coreness(g);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(core[v], 5u);
  EXPECT_EQ(degeneracy(g), 5u);
}

TEST(KCore, PathGraphIsOneCore) {
  const CsrGraph g = make_path(8);
  const auto core = coreness(g);
  for (NodeId v = 0; v < 8; ++v) EXPECT_EQ(core[v], 1u);
}

TEST(KCore, CycleIsTwoCore) {
  const CsrGraph g = make_cycle(9);
  const auto core = coreness(g);
  for (NodeId v = 0; v < 9; ++v) EXPECT_EQ(core[v], 2u);
}

TEST(KCore, StarIsOneCore) {
  const CsrGraph g = make_star(10);
  const auto core = coreness(g);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(core[v], 1u);
}

TEST(KCore, CliqueWithTail) {
  // K4 (0-3) plus tail 3-4-5: clique is 3-core, tail is 1-core.
  GraphBuilder b(6);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) b.add_edge(u, v);
  }
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  const CsrGraph g = b.build();
  const auto core = coreness(g);
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(core[v], 3u);
  EXPECT_EQ(core[4], 1u);
  EXPECT_EQ(core[5], 1u);
}

TEST(KCore, EmptyAndIsolated) {
  EXPECT_EQ(degeneracy(CsrGraph()), 0u);
  GraphBuilder b(3);
  const auto core = coreness(b.build());
  for (const auto c : core) EXPECT_EQ(c, 0u);
}

class KCoreRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KCoreRandomTest, MatchesNaivePeeling) {
  const CsrGraph g = make_random(35, 0.12, GetParam());
  const auto fast = coreness(g);
  const auto reference = naive_coreness(g);
  for (NodeId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(fast[v], reference[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KCoreRandomTest, ::testing::Values(3, 14, 159, 2653));

}  // namespace
}  // namespace bsr::graph
