#include "econ/ledger.hpp"

#include <cmath>
#include <stdexcept>

#include "sim/router.hpp"

namespace bsr::econ {

using bsr::graph::NodeId;

bool Ledger::balanced(double tolerance) const {
  const double outflow = employee_payouts + broker_transit_cost + coalition_profit;
  return std::abs(customer_payments - outflow) <= tolerance;
}

Ledger settle_flows(const bsr::graph::CsrGraph& g,
                    const bsr::broker::BrokerSet& brokers,
                    std::span<const sim::Flow> flows, const LedgerConfig& config) {
  if (config.customer_price <= 0.0 || config.employee_price < 0.0 ||
      config.transit_cost < 0.0) {
    throw std::invalid_argument("settle_flows: bad prices");
  }

  Ledger ledger;
  ledger.broker_revenue.assign(g.num_vertices(), 0.0);
  sim::Router router(g, brokers);

  std::vector<double> broker_transit_volume(g.num_vertices(), 0.0);
  double total_broker_volume = 0.0;

  for (const sim::Flow& flow : flows) {
    const auto route = router.route_dominated(flow.src, flow.dst);
    if (!route.reachable() || route.path.size() < 2) {
      ++ledger.flows_unroutable;
      continue;
    }
    ++ledger.flows_routed;
    // Both endpoints pay p_B per unit (Fig. 6 / Eq. 9's 2 p_B a).
    ledger.customer_payments += 2.0 * config.customer_price * flow.volume;

    for (std::size_t i = 1; i + 1 < route.path.size(); ++i) {
      const NodeId transit = route.path[i];
      if (brokers.contains(transit)) {
        ledger.broker_transit_cost += config.transit_cost * flow.volume;
        broker_transit_volume[transit] += flow.volume;
        total_broker_volume += flow.volume;
      } else {
        // A hired employee AS (the AS-5 role): gets p_j, bears its own c.
        ledger.employee_payouts += config.employee_price * flow.volume;
        ++ledger.employee_hops;
      }
    }
  }

  ledger.coalition_profit = ledger.customer_payments - ledger.employee_payouts -
                            ledger.broker_transit_cost;
  // Profit split proportional to carried transit volume (a cheap,
  // incentive-compatible proxy for the Shapley split at this granularity).
  if (total_broker_volume > 0.0) {
    for (NodeId v = 0; v < g.num_vertices(); ++v) {
      if (broker_transit_volume[v] > 0.0) {
        ledger.broker_revenue[v] =
            ledger.coalition_profit * broker_transit_volume[v] / total_broker_volume;
      }
    }
  }
  return ledger;
}

}  // namespace bsr::econ
