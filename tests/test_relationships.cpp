#include "topology/relationships.hpp"

#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/graph_builder.hpp"
#include "test_util.hpp"
#include "topology/internet.hpp"

namespace bsr::topology {
namespace {

using bsr::graph::CsrGraph;
using bsr::graph::Edge;
using bsr::graph::GraphBuilder;
using bsr::graph::kUnreachable;
using bsr::graph::NodeId;

/// Builds a small hierarchy:
///        0   (tier-1)
///       / \
///      1   2    (0 provides to 1 and 2; 1-2 peer)
///     /     \
///    3       4  (1 provides to 3, 2 provides to 4)
struct Hierarchy {
  CsrGraph graph;
  EdgeRelations rels;

  Hierarchy() {
    GraphBuilder b(5);
    b.add_edge(0, 1);
    b.add_edge(0, 2);
    b.add_edge(1, 2);
    b.add_edge(1, 3);
    b.add_edge(2, 4);
    graph = b.build();
    const std::vector<Edge> edges = graph.edges();
    std::vector<EdgeRel> labels;
    for (const Edge& e : edges) {
      if (e.u == 1 && e.v == 2) {
        labels.push_back(EdgeRel::kPeer);
      } else {
        labels.push_back(EdgeRel::kUProviderOfV);  // lower id is the provider
      }
    }
    rels = EdgeRelations(graph, edges, labels);
  }
};

TEST(EdgeRelations, LookupAndDirection) {
  const Hierarchy h;
  EXPECT_TRUE(h.rels.is_peer(1, 2));
  EXPECT_TRUE(h.rels.is_peer(2, 1));
  EXPECT_TRUE(h.rels.is_provider_of(0, 1));
  EXPECT_FALSE(h.rels.is_provider_of(1, 0));
  EXPECT_TRUE(h.rels.is_provider_of(1, 3));
  EXPECT_FALSE(h.rels.is_provider_of(3, 1));
}

TEST(EdgeRelations, PeerFraction) {
  const Hierarchy h;
  EXPECT_NEAR(h.rels.peer_fraction(), 1.0 / 5.0, 1e-12);
}

TEST(EdgeRelations, ConstructionValidation) {
  const CsrGraph g = bsr::test::make_path(3);
  const auto edges = g.edges();
  std::vector<EdgeRel> labels(edges.size(), EdgeRel::kPeer);
  labels.pop_back();
  EXPECT_THROW(EdgeRelations(g, edges, labels), std::invalid_argument);

  // Non-canonical edge.
  const std::vector<Edge> bad{{1, 0}, {1, 2}};
  const std::vector<EdgeRel> two(2, EdgeRel::kPeer);
  EXPECT_THROW(EdgeRelations(g, bad, two), std::invalid_argument);

  // Edge not in the graph.
  const std::vector<Edge> missing{{0, 1}, {0, 2}};
  EXPECT_THROW(EdgeRelations(g, missing, two), std::invalid_argument);
}

TEST(ValleyFree, UphillThenDownhillAllowed) {
  const Hierarchy h;
  // 3 -> 1 (up) -> 0 (up) -> 2 (down) -> 4 (down) is valid (the peer
  // shortcut via 1-2 is shorter; see PeerShortcutUsableOnce).
  const auto dist = valley_free_distances(h.graph, h.rels, 3);
  EXPECT_LE(dist[4], 4u);
  EXPECT_EQ(dist[0], 2u);
}

TEST(ValleyFree, PeerShortcutUsableOnce) {
  const Hierarchy h;
  // 3 -> 1 (up) -> 2 (peer) -> 4 (down) is also valid, length 3.
  const auto dist = valley_free_distances(h.graph, h.rels, 3);
  EXPECT_EQ(dist[4], 3u);
}

TEST(ValleyFree, NoValleyThroughCustomer) {
  // Two providers of a shared customer cannot transit through it.
  GraphBuilder b(3);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  const CsrGraph g = b.build();
  const auto edges = g.edges();
  const std::vector<EdgeRel> labels(edges.size(), EdgeRel::kUProviderOfV);
  const EdgeRelations rels(g, edges, labels);
  const auto dist = valley_free_distances(g, rels, 0);
  EXPECT_EQ(dist[2], 1u);            // down to the customer: fine
  EXPECT_EQ(dist[1], kUnreachable);  // back up from the customer: valley!
}

TEST(ValleyFree, TwoPeerHopsForbidden) {
  // 0 -peer- 1 -peer- 2: 0 cannot reach 2.
  const CsrGraph g = bsr::test::make_path(3);
  const auto edges = g.edges();
  const std::vector<EdgeRel> labels(edges.size(), EdgeRel::kPeer);
  const EdgeRelations rels(g, edges, labels);
  const auto dist = valley_free_distances(g, rels, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(ValleyFree, OverrideEdgesBypassPolicy) {
  const CsrGraph g = bsr::test::make_path(3);
  const auto edges = g.edges();
  const std::vector<EdgeRel> labels(edges.size(), EdgeRel::kPeer);
  const EdgeRelations rels(g, edges, labels);
  const auto dist = valley_free_distances(
      g, rels, 0, {}, [](NodeId, NodeId) { return true; });
  EXPECT_EQ(dist[2], 2u);  // overrides make the path free
}

TEST(ValleyFree, EdgeFilterRestrictsFurther) {
  const Hierarchy h;
  // Forbid every edge: nothing reachable.
  const auto dist = valley_free_distances(
      h.graph, h.rels, 3, [](NodeId, NodeId) { return false; }, {});
  EXPECT_EQ(dist[1], kUnreachable);
  EXPECT_EQ(dist[3], 0u);
}

TEST(ValleyFreePath, ReconstructsAdmissiblePath) {
  const Hierarchy h;
  const auto path = valley_free_path(h.graph, h.rels, 3, 4);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), 3u);
  EXPECT_EQ(path.back(), 4u);
  // Path length must match the distance oracle.
  const auto dist = valley_free_distances(h.graph, h.rels, 3);
  EXPECT_EQ(path.size() - 1, dist[4]);
  // Every hop must be a real edge.
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(h.graph.has_edge(path[i], path[i + 1]));
  }
}

TEST(ValleyFreePath, EmptyWhenPolicyBlocks) {
  // Two peers of peers: unreachable (TwoPeerHopsForbidden case).
  const CsrGraph g = bsr::test::make_path(3);
  const auto edges = g.edges();
  const std::vector<EdgeRel> labels(edges.size(), EdgeRel::kPeer);
  const EdgeRelations rels(g, edges, labels);
  EXPECT_TRUE(valley_free_path(g, rels, 0, 2).empty());
  EXPECT_EQ(valley_free_path(g, rels, 1, 1), std::vector<NodeId>{1});
  EXPECT_TRUE(valley_free_path(g, rels, 0, 99).empty());
}

TEST(ValleyFreePath, LengthsMatchDistancesOnRandomGraphs) {
  auto cfg = InternetConfig{}.scaled(0.01);
  cfg.seed = 77;
  const auto topo = make_internet(cfg);
  const auto dist = valley_free_distances(topo.graph, topo.relations, 5);
  for (NodeId dst = 0; dst < topo.num_vertices(); dst += 37) {
    const auto path = valley_free_path(topo.graph, topo.relations, 5, dst);
    if (dist[dst] == kUnreachable) {
      EXPECT_TRUE(path.empty());
    } else if (dst != 5) {
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.size() - 1, dist[dst]) << "dst " << dst;
    }
  }
}

TEST(Inference, DegreeGapImpliesProvider) {
  const CsrGraph g = bsr::test::make_star(8);
  const auto edges = g.edges();
  const auto inferred = infer_relationships_by_degree(g, edges, 2.0);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    // Center (id 0, degree 7) vs leaves (degree 1): center is provider.
    EXPECT_EQ(inferred[i], EdgeRel::kUProviderOfV);
  }
}

TEST(Inference, BalancedDegreesImplyPeering) {
  const CsrGraph g = bsr::test::make_cycle(6);
  const auto inferred = infer_relationships_by_degree(g, g.edges(), 2.0);
  for (const EdgeRel rel : inferred) EXPECT_EQ(rel, EdgeRel::kPeer);
}

TEST(Inference, RejectsBadRatio) {
  const CsrGraph g = bsr::test::make_cycle(4);
  EXPECT_THROW(infer_relationships_by_degree(g, g.edges(), 0.5),
               std::invalid_argument);
}

TEST(Inference, RecoversGroundTruthOnInternetTopology) {
  auto cfg = InternetConfig{}.scaled(0.02);
  cfg.seed = 31;
  const auto topo = make_internet(cfg);
  const auto edges = topo.graph.edges();
  const auto inferred = infer_relationships_by_degree(topo.graph, edges);
  // The degree heuristic cannot see hub-to-stub peering (the IXP-derived
  // mesh), so overall label accuracy is moderate; what must hold is the
  // *direction* of true transit edges: when both truth and inference agree
  // an edge is provider-customer, the provider side should rarely invert.
  std::size_t agree = 0, transit_classified = 0, inverted = 0;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const EdgeRel truth = topo.relations.rel_canonical(edges[i].u, edges[i].v);
    if (truth == inferred[i]) ++agree;
    if (truth != EdgeRel::kPeer && inferred[i] != EdgeRel::kPeer) {
      ++transit_classified;
      if (truth != inferred[i]) ++inverted;
    }
  }
  ASSERT_GT(transit_classified, 100u);
  EXPECT_LT(static_cast<double>(inverted) / transit_classified, 0.10);
  EXPECT_GT(static_cast<double>(agree) / edges.size(), 0.30);
}

}  // namespace
}  // namespace bsr::topology
