#include "graph/bfs.hpp"

#include <algorithm>

#include "graph/check.hpp"

namespace bsr::graph {

void BfsRunner::reset_touched() {
  for (const NodeId v : touched_) dist_[v] = kUnreachable;
  touched_.clear();
}

std::span<const std::uint32_t> BfsRunner::run(const CsrGraph& g, NodeId source) {
  BSR_DCHECK(source < g.num_vertices());
  reset_touched();
  std::size_t head = 0, tail = 0;
  dist_[source] = 0;
  touched_.push_back(source);
  queue_[tail++] = source;
  while (head < tail) {
    const NodeId u = queue_[head++];
    const std::uint32_t du = dist_[u];
    for (const NodeId v : g.neighbors(u)) {
      if (dist_[v] == kUnreachable) {
        dist_[v] = du + 1;
        touched_.push_back(v);
        queue_[tail++] = v;
      }
    }
  }
  return dist_;
}

std::span<const std::uint32_t> BfsRunner::run_filtered(
    const CsrGraph& g, NodeId source,
    const std::function<bool(NodeId, NodeId)>& edge_ok) {
  BSR_DCHECK(source < g.num_vertices());
  reset_touched();
  std::size_t head = 0, tail = 0;
  dist_[source] = 0;
  touched_.push_back(source);
  queue_[tail++] = source;
  while (head < tail) {
    const NodeId u = queue_[head++];
    const std::uint32_t du = dist_[u];
    for (const NodeId v : g.neighbors(u)) {
      if (dist_[v] == kUnreachable && edge_ok(u, v)) {
        dist_[v] = du + 1;
        touched_.push_back(v);
        queue_[tail++] = v;
      }
    }
  }
  return dist_;
}

std::span<const std::uint32_t> BfsRunner::run_bounded(const CsrGraph& g, NodeId source,
                                                      std::uint32_t max_depth) {
  BSR_DCHECK(source < g.num_vertices());
  reset_touched();
  std::size_t head = 0, tail = 0;
  dist_[source] = 0;
  touched_.push_back(source);
  queue_[tail++] = source;
  while (head < tail) {
    const NodeId u = queue_[head++];
    const std::uint32_t du = dist_[u];
    if (du == max_depth) continue;
    for (const NodeId v : g.neighbors(u)) {
      if (dist_[v] == kUnreachable) {
        dist_[v] = du + 1;
        touched_.push_back(v);
        queue_[tail++] = v;
      }
    }
  }
  return dist_;
}

std::vector<std::uint32_t> bfs_distances(const CsrGraph& g, NodeId source) {
  BfsRunner runner(g.num_vertices());
  const auto view = runner.run(g, source);
  return {view.begin(), view.end()};
}

std::vector<NodeId> bfs_shortest_path(const CsrGraph& g, NodeId source, NodeId target) {
  BSR_DCHECK(source < g.num_vertices() && target < g.num_vertices());
  if (source == target) return {source};
  std::vector<NodeId> parent(g.num_vertices(), kUnreachable);
  std::vector<NodeId> queue;
  queue.reserve(g.num_vertices());
  parent[source] = source;
  queue.push_back(source);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    for (const NodeId v : g.neighbors(u)) {
      if (parent[v] != kUnreachable) continue;
      parent[v] = u;
      if (v == target) {
        std::vector<NodeId> path{target};
        for (NodeId w = target; w != source; w = parent[w]) path.push_back(parent[w]);
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(v);
    }
  }
  return {};
}

}  // namespace bsr::graph
