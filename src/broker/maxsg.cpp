#include "broker/maxsg.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "broker/coverage.hpp"
#include "graph/components.hpp"
#include "graph/engine.hpp"
#include "graph/renumbering.hpp"
#include "graph/union_find.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::kUnreachable;
using bsr::graph::NodeId;
using bsr::graph::Renumbering;
using bsr::graph::UnionFind;

namespace {

/// Per-shard stamp scratch for distinct-root dedup during gain evaluation:
/// O(deg) per candidate even for 5,000-degree hubs (a scan-based dedup would
/// be O(deg²) there). One instance per shard so workers never share stamps.
struct GainScratch {
  std::vector<std::uint32_t> root_stamp;
  std::uint32_t epoch = 0;

  void bump() {
    if (++epoch == 0) {  // wrap: re-zero once per ~4B evaluations
      std::fill(root_stamp.begin(), root_stamp.end(), 0u);
      epoch = 1;
    }
  }
};

}  // namespace

MaxSgResult maxsg(const CsrGraph& g, std::uint32_t k, const MaxSgOptions& options) {
  BSR_SPAN("broker.maxsg");
  const NodeId n = g.num_vertices();
  if (n == 0) throw std::invalid_argument("maxsg: empty graph");
  const Renumbering* ren = options.renumbering;
  if (ren != nullptr && ren->size() != n) {
    throw std::invalid_argument("maxsg: renumbering size mismatch");
  }

  MaxSgResult result;
  result.brokers = BrokerSet(n);
  if (k == 0) return result;

  // Size of the graph's largest (unrestricted) component — the ceiling the
  // dominated component can reach; used for early stopping.
  const std::uint32_t reachable_ceiling =
      bsr::graph::connected_components(g).largest_size();

  UnionFind uf(n);  // components of the dominated subgraph G_B
  std::vector<bool> is_broker(n, false);  // graph-id space
  std::uint32_t largest = 0;

  // Per-round snapshot of the union-find, refreshed serially: no unions
  // happen during a sweep, and find() path-halves (mutates), so shards read
  // only these flat arrays — a candidate's gain costs two loads per edge.
  std::vector<NodeId> root_of(n);
  std::vector<std::uint32_t> size_of(n);

  // Anchor-factored gain cache (see maxsg.hpp). All graph-id indexed.
  //   gain(w) = rest_gain[w] + (adj_anchor[w] ? size(anchor) : 0)
  // adj_anchor is uint8_t, not vector<bool>: shards write disjoint entries
  // concurrently and must not share bytes.
  std::vector<std::uint32_t> rest_gain(n, 0);
  std::vector<std::uint8_t> adj_anchor(n, 0);
  std::vector<std::uint32_t> dirty_round(n, 1);  // every candidate dirty in round 1
  NodeId anchor_rep = kUnreachable;  // any vertex of the anchor component

  // Intrusive per-component member lists for dirty marking: head/next chains
  // terminate at kUnreachable and are spliced O(1) when components merge.
  // Only *current root* heads are ever traversed, so stale entries under
  // absorbed roots are harmless.
  std::vector<NodeId> list_head(n);
  std::vector<NodeId> list_tail(n);
  std::vector<NodeId> list_next(n, kUnreachable);
  for (NodeId v = 0; v < n; ++v) {
    list_head[v] = v;
    list_tail[v] = v;
  }

  const std::size_t shards = bsr::graph::engine::plan_shards(n);
  std::vector<GainScratch> scratch(shards);
  for (auto& s : scratch) s.root_stamp.assign(n, 0);
  struct Best {
    std::uint32_t gain = 0;
    NodeId cand = kUnreachable;  // candidate index == ORIGINAL id
  };
  std::vector<Best> shard_best(shards);
  std::vector<std::uint64_t> shard_evals(shards, 0);
  std::vector<NodeId> star_roots;

  std::uint32_t round = 1;
  while (result.brokers.size() < k) {
    BSR_COUNT(MaxsgRounds);
    for (NodeId v = 0; v < n; ++v) root_of[v] = uf.find(v);
    for (NodeId v = 0; v < n; ++v) {
      if (root_of[v] == v) size_of[v] = uf.root_size(v);
    }
    const NodeId anchor_root =
        anchor_rep == kUnreachable ? kUnreachable : root_of[anchor_rep];
    const std::uint32_t anchor_size =
        anchor_root == kUnreachable ? 0 : size_of[anchor_root];

    // Sharded sweep: recompute dirty candidates, argmax over all of them.
    // Candidates are iterated in ORIGINAL-id order (candidate index c; graph
    // vertex w = to_new(c)), so the lowest-original-id tie-break — and hence
    // the selected set — is invariant under renumbering AND thread count:
    // shards cover ascending contiguous candidate ranges and are merged in
    // shard order with a strict comparison.
    bsr::graph::engine::for_each_shard(n, [&](std::size_t shard, std::size_t begin,
                                  std::size_t end) {
      GainScratch& sc = scratch[shard];
      Best best;
      std::uint64_t evals = 0;
      for (std::size_t c = begin; c < end; ++c) {
        const NodeId w =
            ren ? ren->to_new(static_cast<NodeId>(c)) : static_cast<NodeId>(c);
        if (is_broker[w]) continue;
        if (dirty_round[w] == round) {
          ++evals;
          sc.bump();
          std::uint32_t rest = 0;
          std::uint8_t adj = 0;
          const NodeId rw = root_of[w];
          sc.root_stamp[rw] = sc.epoch;
          if (rw == anchor_root) {
            adj = 1;
          } else {
            rest += size_of[rw];
          }
          for (const NodeId v : g.neighbors(w)) {
            const NodeId r = root_of[v];
            if (sc.root_stamp[r] != sc.epoch) {
              sc.root_stamp[r] = sc.epoch;
              if (r == anchor_root) {
                adj = 1;
              } else {
                rest += size_of[r];
              }
            }
          }
          rest_gain[w] = rest;
          adj_anchor[w] = adj;
        }
        const std::uint32_t gain =
            rest_gain[w] + (adj_anchor[w] != 0 ? anchor_size : 0);
        if (gain > best.gain) {
          best.gain = gain;
          best.cand = static_cast<NodeId>(c);
        }
      }
      shard_best[shard] = best;
      shard_evals[shard] = evals;
    });
    Best best;
    for (std::size_t s = 0; s < shards; ++s) {
      if (shard_best[s].gain > best.gain) best = shard_best[s];
    }
    BSR_STATS_ONLY(std::uint64_t total_evals = 0;
                   for (const std::uint64_t e
                        : shard_evals) total_evals += e;
                   BSR_COUNT_N(MaxsgGainEvals, total_evals);)
    if (best.cand == kUnreachable) break;

    const NodeId w_best = ren ? ren->to_new(best.cand) : best.cand;
    is_broker[w_best] = true;
    result.brokers.add(best.cand);  // original id

    // Distinct components of the star {w_best} ∪ N(w_best), pre-unite.
    GainScratch& sc0 = scratch[0];
    sc0.bump();
    star_roots.clear();
    const NodeId rw = root_of[w_best];
    sc0.root_stamp[rw] = sc0.epoch;
    star_roots.push_back(rw);
    for (const NodeId v : g.neighbors(w_best)) {
      const NodeId r = root_of[v];
      if (sc0.root_stamp[r] != sc0.epoch) {
        sc0.root_stamp[r] = sc0.epoch;
        star_roots.push_back(r);
      }
    }
    const bool involves_anchor =
        anchor_root != kUnreachable && sc0.root_stamp[anchor_root] == sc0.epoch;

    // Dirty marking, BEFORE the splices below so each chain still enumerates
    // exactly one pre-merge component. Every candidate whose closed
    // neighborhood touches a *non-anchor* merged component must recompute
    // next round (its component-membership/size terms changed). Candidates
    // touching only the anchor stay clean: the anchor never shrinks and its
    // fresh size is applied at evaluation time. Each vertex is absorbed into
    // the anchor at most once, so this marking is amortized O(|V| + |E|)
    // over the whole run.
    if (star_roots.size() >= 2) {
      const std::uint32_t next_round = round + 1;
      for (const NodeId r : star_roots) {
        if (r == anchor_root) continue;
        for (NodeId m = list_head[r]; m != kUnreachable; m = list_next[m]) {
          dirty_round[m] = next_round;
          for (const NodeId nb : g.neighbors(m)) dirty_round[nb] = next_round;
        }
      }
    }

    // Activate w_best: unite its star (same merge sequence as
    // engine::unite_star) and splice the member lists of merged components.
    {
      const auto neigh = g.neighbors(w_best);
      BSR_STATS_ONLY(std::uint64_t admitted = 0;)
      for (const NodeId v : neigh) {
        BSR_STATS_ONLY(++admitted;)
        const NodeId ra = uf.find(w_best);
        const NodeId rb = uf.find(v);
        if (ra == rb) continue;
        uf.unite(ra, rb);
        const NodeId winner = uf.find(ra);
        const NodeId loser = winner == ra ? rb : ra;
        list_next[list_tail[winner]] = list_head[loser];
        list_tail[winner] = list_tail[loser];
      }
      BSR_COUNT_N(EngineUniteEdgeScans, neigh.size());
      BSR_COUNT_N(EngineUniteAdmitted, admitted);
    }

    // The merged component becomes (or extends) the anchor only when it
    // contains the previous anchor — switching the anchor to a disjoint
    // component would invalidate every cached adj_anchor bit.
    if (anchor_rep == kUnreachable || involves_anchor) anchor_rep = w_best;

    largest = std::max(largest, uf.component_size(w_best));
    result.component_curve.push_back(largest);
    ++round;

    if (options.stop_when_dominating && largest >= reachable_ceiling) break;
  }

  result.final_component = largest;
  if (ren != nullptr) {
    // Brokers carry original ids; coverage runs on the renumbered graph.
    const std::vector<NodeId> mapped = ren->map_to_new(result.brokers.members());
    result.coverage = coverage(g, BrokerSet(n, mapped));
  } else {
    result.coverage = coverage(g, result.brokers);
  }
  return result;
}

}  // namespace bsr::broker
