// Shared fixtures and naive reference implementations for the test suite.
//
// Reference implementations here are deliberately simple (quadratic, brute
// force) and independent of the optimized library code they validate.
#pragma once

#include <algorithm>
#include <limits>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/graph_builder.hpp"
#include "graph/rng.hpp"

namespace bsr::test {

using bsr::graph::CsrGraph;
using bsr::graph::GraphBuilder;
using bsr::graph::NodeId;

/// 0-1-2-...-(n-1) path.
inline CsrGraph make_path(NodeId n) {
  GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

/// Cycle over n vertices.
inline CsrGraph make_cycle(NodeId n) {
  GraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return b.build();
}

/// Star with center 0 and n-1 leaves.
inline CsrGraph make_star(NodeId n) {
  GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) b.add_edge(0, v);
  return b.build();
}

/// Complete graph K_n.
inline CsrGraph make_complete(NodeId n) {
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return b.build();
}

/// G(n, p) random graph, deterministic in seed. Not necessarily connected.
inline CsrGraph make_random(NodeId n, double p, std::uint64_t seed) {
  bsr::graph::Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) b.add_edge(u, v);
    }
  }
  return b.build();
}

/// Connected random graph: G(n, p) plus a random spanning path.
inline CsrGraph make_connected_random(NodeId n, double p, std::uint64_t seed) {
  bsr::graph::Rng rng(seed);
  GraphBuilder b(n);
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.uniform(i);
    std::swap(order[i - 1], order[j]);
  }
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(order[v], order[v + 1]);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) b.add_edge(u, v);
    }
  }
  return b.build();
}

/// Naive O(V^2) BFS distances used as the reference.
inline std::vector<std::uint32_t> naive_bfs(const CsrGraph& g, NodeId source) {
  constexpr auto kInf = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(g.num_vertices(), kInf);
  dist[source] = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId u = 0; u < g.num_vertices(); ++u) {
      if (dist[u] == kInf) continue;
      for (const NodeId v : g.neighbors(u)) {
        if (dist[v] > dist[u] + 1) {
          dist[v] = dist[u] + 1;
          changed = true;
        }
      }
    }
  }
  return dist;
}

}  // namespace bsr::test
