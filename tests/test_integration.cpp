// End-to-end pipeline tests on a scaled-down synthetic Internet.
//
// These assert the *qualitative* findings of the paper's evaluation hold on
// the small topology: algorithm ordering, marginal effects, policy impact.
#include <gtest/gtest.h>

#include "broker/baselines.hpp"
#include "broker/coverage.hpp"
#include "broker/dominated.hpp"
#include "broker/greedy_mcb.hpp"
#include "broker/maxsg.hpp"
#include "broker/mcbg_approx.hpp"
#include "broker/path_length.hpp"
#include "graph/bfs.hpp"
#include "topology/internet.hpp"
#include "topology/relationships.hpp"

namespace bsr {
namespace {

using broker::BrokerSet;
using bsr::graph::NodeId;
using bsr::graph::Rng;

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto cfg = topology::InternetConfig{}.scaled(0.04);  // ~2,100 vertices
    cfg.seed = 7;
    topo_ = new topology::InternetTopology(topology::make_internet(cfg));
  }
  static void TearDownTestSuite() {
    delete topo_;
    topo_ = nullptr;
  }

  static topology::InternetTopology* topo_;
};

topology::InternetTopology* PipelineTest::topo_ = nullptr;

TEST_F(PipelineTest, AlgorithmOrderingMatchesPaper) {
  const auto& g = topo_->graph;
  const std::uint32_t k = g.num_vertices() / 50;  // ~2 % as brokers

  const auto maxsg_result = broker::maxsg(g, k);
  const double maxsg_conn =
      broker::saturated_connectivity(g, maxsg_result.brokers.prefix(k));
  const double db_conn =
      broker::saturated_connectivity(g, broker::db_top_degree(g, k));
  const double prb_conn =
      broker::saturated_connectivity(g, broker::prb_top_pagerank(g, k));
  const double ixp_conn =
      broker::saturated_connectivity(g, broker::ixpb(*topo_));
  const double tier1_conn =
      broker::saturated_connectivity(g, broker::tier1_only(*topo_));

  // Fig. 2b ordering: MaxSG >= DB ~ PRB >> IXPB > Tier1Only.
  EXPECT_GE(maxsg_conn, db_conn - 0.02);
  EXPECT_GE(maxsg_conn, prb_conn - 0.02);
  EXPECT_GT(db_conn, ixp_conn);
  EXPECT_GT(prb_conn, ixp_conn);
  EXPECT_GT(ixp_conn, tier1_conn * 0.5);
  EXPECT_LT(ixp_conn, 0.5);      // IXPs alone cap out low (15.7 % at scale 1)
  EXPECT_GT(maxsg_conn, 0.5);    // the broker approach dominates
}

TEST_F(PipelineTest, MaxSgWithinHalfPercentOfApproximation) {
  // §6.1: MaxSG sacrifices < 0.5 % connectivity vs the Algorithm-2
  // approximation at comparable k (we allow small-scale noise: 2 %).
  const auto& g = topo_->graph;
  const std::uint32_t k = g.num_vertices() / 25;

  broker::McbgOptions options;
  options.max_roots = 8;
  const auto approx = broker::mcbg_approx(g, k, options);
  const auto heuristic = broker::maxsg(g, k);
  const double approx_conn = broker::saturated_connectivity(g, approx.brokers);
  const double maxsg_conn = broker::saturated_connectivity(g, heuristic.brokers);
  EXPECT_GE(maxsg_conn, approx_conn - 0.02);
}

TEST_F(PipelineTest, ScNeedsMostOfTheNetwork) {
  const auto& g = topo_->graph;
  Rng rng(3);
  const auto sc = broker::sc_dominating_set(g, rng);
  // Fig. 2a: SC takes ~76 % of all vertices.
  EXPECT_GT(sc.size(), g.num_vertices() / 2);
  EXPECT_DOUBLE_EQ(broker::coverage(g, sc), g.num_vertices());
}

TEST_F(PipelineTest, MarginalEffectDecreasesForDb) {
  // §6.1: the DB algorithm's marginal connectivity gain shrinks as the
  // broker set grows.
  const auto& g = topo_->graph;
  const std::uint32_t k_small = 20, k_large = g.num_vertices() / 10;
  const double small = broker::saturated_connectivity(g, broker::db_top_degree(g, k_small));
  const double mid =
      broker::saturated_connectivity(g, broker::db_top_degree(g, k_large / 2));
  const double large =
      broker::saturated_connectivity(g, broker::db_top_degree(g, k_large));
  const double early_rate = (mid - small) / (k_large / 2.0 - k_small);
  const double late_rate = (large - mid) / (k_large / 2.0);
  EXPECT_GT(early_rate, late_rate);
}

TEST_F(PipelineTest, PathInflationSmallForLargeAlliance) {
  // Table 4: a saturating MaxSG alliance produces nearly no path inflation.
  const auto& g = topo_->graph;
  const auto alliance = broker::maxsg(g, g.num_vertices()).brokers;
  Rng rng(4);
  const auto cmp = broker::compare_path_lengths(g, alliance, rng, 128);
  EXPECT_LT(cmp.max_deviation, 0.05);
}

TEST_F(PipelineTest, DirectionalPolicyDegradesConnectivity) {
  // Fig. 5c: obeying business relationships (valley-free) reduces the
  // dominated reachability vs the bidirectional assumption.
  const auto& g = topo_->graph;
  const auto brokers = broker::maxsg(g, g.num_vertices() / 25).brokers;
  const auto filter = broker::dominated_edge_filter(brokers);

  Rng rng(5);
  std::size_t free_reach = 0, policy_reach = 0, samples = 0;
  bsr::graph::BfsRunner runner(g.num_vertices());
  for (int i = 0; i < 40; ++i) {
    const auto src = static_cast<NodeId>(rng.uniform(g.num_vertices()));
    const auto free_dist = runner.run_filtered(g, src, filter);
    std::vector<std::uint32_t> free_copy(free_dist.begin(), free_dist.end());
    const auto policy_dist =
        topology::valley_free_distances(g, topo_->relations, src, filter, {});
    for (NodeId v = 0; v < g.num_vertices(); ++v) {
      if (v == src) continue;
      ++samples;
      free_reach += free_copy[v] != bsr::graph::kUnreachable;
      policy_reach += policy_dist[v] != bsr::graph::kUnreachable;
    }
  }
  EXPECT_LT(policy_reach, free_reach);
  EXPECT_GT(policy_reach, 0u);
}

TEST_F(PipelineTest, BidirectionalOverridesRecoverConnectivity) {
  // Fig. 5b: making inter-broker links bidirectional recovers reachability.
  const auto& g = topo_->graph;
  const auto brokers = broker::maxsg(g, g.num_vertices() / 25).brokers;
  const auto filter = broker::dominated_edge_filter(brokers);
  const auto inter_broker = [&brokers](NodeId u, NodeId v) {
    return brokers.contains(u) && brokers.contains(v);
  };

  Rng rng(6);
  std::size_t policy_reach = 0, override_reach = 0;
  for (int i = 0; i < 30; ++i) {
    const auto src = static_cast<NodeId>(rng.uniform(g.num_vertices()));
    const auto base =
        topology::valley_free_distances(g, topo_->relations, src, filter, {});
    const auto with_override = topology::valley_free_distances(
        g, topo_->relations, src, filter, inter_broker);
    for (NodeId v = 0; v < g.num_vertices(); ++v) {
      policy_reach += base[v] != bsr::graph::kUnreachable;
      override_reach += with_override[v] != bsr::graph::kUnreachable;
    }
  }
  EXPECT_GT(override_reach, policy_reach);
}

TEST_F(PipelineTest, WholePipelineDeterministic) {
  const auto& g = topo_->graph;
  const auto a = broker::maxsg(g, 50);
  const auto b = broker::maxsg(g, 50);
  EXPECT_EQ(std::vector<NodeId>(a.brokers.members().begin(), a.brokers.members().end()),
            std::vector<NodeId>(b.brokers.members().begin(), b.brokers.members().end()));
}

}  // namespace
}  // namespace bsr
