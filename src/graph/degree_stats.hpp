// Degree statistics: distribution, moments, and heavy-tail diagnostics.
//
// Used to verify that the synthetic Internet topology matches the scale-free
// degree profile the paper's dataset exhibits (Fig. 1) and by the DB baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"

namespace bsr::graph {

struct DegreeStats {
  std::uint32_t min = 0;
  std::uint32_t max = 0;
  double mean = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  /// Maximum-likelihood power-law tail exponent fitted on degrees >= xmin
  /// (Clauset-Shalizi-Newman continuous approximation). 0 if not enough data.
  double power_law_alpha = 0.0;
  std::uint32_t power_law_xmin = 0;
};

[[nodiscard]] DegreeStats compute_degree_stats(const CsrGraph& g,
                                               std::uint32_t power_law_xmin = 10);

/// Degree histogram: index d holds the number of vertices with degree d.
[[nodiscard]] std::vector<std::uint64_t> degree_histogram(const CsrGraph& g);

/// Vertex ids sorted by descending degree (ties by ascending id, stable and
/// deterministic). The DB baseline takes a prefix of this.
[[nodiscard]] std::vector<NodeId> vertices_by_degree_desc(const CsrGraph& g);

}  // namespace bsr::graph
