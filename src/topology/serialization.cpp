#include "topology/serialization.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

#include "graph/graph_builder.hpp"

namespace bsr::topology {

using bsr::graph::Edge;
using bsr::graph::NodeId;

namespace {

constexpr const char* kMagic = "brokerset-topology v1";

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("load_topology: line " + std::to_string(line) + ": " +
                           what);
}

}  // namespace

void save_topology(std::ostream& os, const InternetTopology& topo) {
  os << kMagic << '\n';
  os << "counts " << topo.num_ases << ' ' << topo.num_ixps << '\n';
  for (NodeId v = 0; v < topo.num_vertices(); ++v) {
    os << "node " << v << ' ' << static_cast<int>(topo.meta[v].type) << ' '
       << static_cast<int>(topo.meta[v].tier) << '\n';
  }
  for (NodeId u = 0; u < topo.num_vertices(); ++u) {
    for (const NodeId v : topo.graph.neighbors(u)) {
      if (u >= v) continue;
      os << "edge " << u << ' ' << v << ' '
         << static_cast<int>(topo.relations.rel_canonical(u, v)) << '\n';
    }
  }
}

void save_topology_file(const std::string& path, const InternetTopology& topo) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("save_topology_file: cannot open " + path);
  save_topology(out, topo);
  if (!out) throw std::runtime_error("save_topology_file: write failed for " + path);
}

InternetTopology load_topology(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;

  const auto next_line = [&]() -> bool {
    while (std::getline(is, line)) {
      ++line_no;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      if (line.find_first_not_of(" \t\r") != std::string::npos) return true;
    }
    return false;
  };

  if (!next_line() || line != kMagic) fail(line_no, "missing magic header");

  if (!next_line()) fail(line_no, "missing counts");
  std::uint32_t num_ases = 0, num_ixps = 0;
  {
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag >> num_ases >> num_ixps) || tag != "counts") {
      fail(line_no, "bad counts line");
    }
  }
  const NodeId n = num_ases + num_ixps;

  std::vector<NodeMeta> meta(n);
  std::vector<bool> seen_node(n, false);
  for (NodeId i = 0; i < n; ++i) {
    if (!next_line()) fail(line_no, "unexpected EOF in node section");
    std::istringstream ls(line);
    std::string tag;
    NodeId id = 0;
    int type = 0, tier = 0;
    if (!(ls >> tag >> id >> type >> tier) || tag != "node") {
      fail(line_no, "bad node line");
    }
    if (id >= n) fail(line_no, "node id out of range");
    if (seen_node[id]) fail(line_no, "duplicate node id");
    if (type < 0 || type > 3) fail(line_no, "bad node type");
    if (tier < 0 || tier > 4) fail(line_no, "bad tier");
    seen_node[id] = true;
    meta[id] = NodeMeta{static_cast<NodeType>(type), static_cast<Tier>(tier)};
  }

  bsr::graph::GraphBuilder builder(n);
  std::vector<Edge> edges;
  std::vector<EdgeRel> rels;
  while (next_line()) {
    std::istringstream ls(line);
    std::string tag;
    NodeId u = 0, v = 0;
    int rel = 0;
    if (!(ls >> tag >> u >> v >> rel) || tag != "edge") fail(line_no, "bad edge line");
    if (u >= v || v >= n) fail(line_no, "edge ids invalid (need u < v < n)");
    if (rel < 0 || rel > 2) fail(line_no, "bad relationship");
    builder.add_edge(u, v);
    edges.push_back(Edge{u, v});
    rels.push_back(static_cast<EdgeRel>(rel));
  }

  InternetTopology topo;
  topo.graph = builder.build();
  if (topo.graph.num_edges() != edges.size()) {
    fail(line_no, "duplicate edges in input");
  }
  topo.meta = std::move(meta);
  topo.num_ases = num_ases;
  topo.num_ixps = num_ixps;
  // Edge list must be sorted canonically for EdgeRelations; sort with rels.
  std::vector<std::size_t> order(edges.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&edges](std::size_t a, std::size_t b) { return edges[a] < edges[b]; });
  std::vector<Edge> edges_sorted(edges.size());
  std::vector<EdgeRel> rels_sorted(rels.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    edges_sorted[i] = edges[order[i]];
    rels_sorted[i] = rels[order[i]];
  }
  topo.relations = EdgeRelations(topo.graph, edges_sorted, rels_sorted);
  return topo;
}

InternetTopology load_topology_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_topology_file: cannot open " + path);
  return load_topology(in);
}

}  // namespace bsr::topology
