// Event-driven broker-churn simulation.
//
// Ties the resilience machinery into a time series: brokers depart with an
// exponential rate and the coalition repairs itself periodically with a
// bounded replacement budget. Tracks the connectivity trajectory — the
// operator's "how bad does it get between maintenance windows" question.
//
// The link-churn extension interleaves *edge* outages with broker
// departures: correlated failure groups (e.g. whole IXPs) go down as a
// Poisson process and heal after an exponential downtime, while periodic
// repairs re-select replacements on the damaged graph.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"
#include "graph/fault_plane.hpp"
#include "graph/rng.hpp"

namespace bsr::sim {

struct ChurnConfig {
  /// Mean broker departures per time unit.
  double departure_rate = 1.0;
  /// Repairs happen every `repair_interval` time units...
  double repair_interval = 10.0;
  /// ...adding up to this many replacement brokers per repair.
  std::uint32_t repair_budget = 5;
  double horizon = 100.0;  // simulated time units
};

/// Link-outage process layered on top of broker churn. A rate of zero
/// disables link churn entirely.
struct LinkChurnConfig {
  /// Mean correlated-group outages per time unit.
  double outage_rate = 0.0;
  /// Mean exponential downtime of one outage.
  double mean_downtime = 5.0;
};

struct ChurnEvent {
  double time = 0.0;
  enum class Kind : std::uint8_t {
    kDeparture,
    kRepair,
    kLinkOutage,
    kLinkHeal,
  } kind = Kind::kDeparture;
  std::size_t brokers_after = 0;
  double connectivity_after = 0.0;
  std::uint64_t failed_edges_after = 0;  // distinct edges down after the event
};

struct ChurnResult {
  std::vector<ChurnEvent> events;
  double min_connectivity = 1.0;
  double mean_connectivity = 0.0;  // time-weighted
  std::size_t departures = 0;
  std::size_t repairs = 0;
  std::size_t replacements_added = 0;
  std::size_t link_outages = 0;
  std::size_t link_heals = 0;
};

/// Simulates broker churn on `initial` brokers over the horizon.
/// Deterministic in rng. Throws std::invalid_argument on non-positive
/// rates/intervals.
[[nodiscard]] ChurnResult simulate_churn(const bsr::graph::CsrGraph& g,
                                         const bsr::broker::BrokerSet& initial,
                                         const ChurnConfig& config,
                                         bsr::graph::Rng& rng);

/// Broker churn with interleaved link churn: each outage fails a uniformly
/// random group from `groups` (refcounted, so overlapping outages compose)
/// and heals after an exponential downtime. Connectivity and repairs are
/// computed on the damaged graph. `link.outage_rate > 0` requires a
/// non-empty `groups`.
[[nodiscard]] ChurnResult simulate_churn(
    const bsr::graph::CsrGraph& g, const bsr::broker::BrokerSet& initial,
    const ChurnConfig& config, const LinkChurnConfig& link,
    std::span<const bsr::graph::FailureGroup> groups, bsr::graph::Rng& rng);

}  // namespace bsr::sim
