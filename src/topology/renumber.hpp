// Locality renumbering for generated topologies.
//
// The internet generator hands out ids in creation order (tier-1 first, then
// transit, stubs, remote stubs, IXPs last), which scatters each vertex's
// neighbors across the whole id range — every adjacency-list hop during BFS
// or a gain sweep is a cache miss at 51k+ vertices. renumber_topology relabels
// vertices in degree-descending order *within each segment* (ASes keep
// [0, num_ases), IXPs keep [num_ases, n)), which packs the high-degree core
// that traversals touch most into a small id prefix and cuts the average
// neighbor-id gap by several fold.
//
// The segmentation preserves the InternetTopology id contract
// (is_ixp(v) == v >= num_ases); NodeMeta is permuted alongside and
// EdgeRelations is rebuilt on the relabeled adjacency, so every consumer of
// the returned topology works unchanged. The returned Renumbering maps ids
// back to the original label space for reporting and round-trip checks.
#pragma once

#include "graph/renumbering.hpp"
#include "topology/internet.hpp"

namespace bsr::topology {

struct RenumberedTopology {
  InternetTopology topo;
  bsr::graph::Renumbering renumbering;  // original <-> renumbered ids
};

/// Relabels `topo` degree-descending within the AS and IXP segments.
/// Deterministic: ties break on ascending original id.
[[nodiscard]] RenumberedTopology renumber_topology(const InternetTopology& topo);

}  // namespace bsr::topology
