// Ablation: broker churn — failure injection and greedy repair.
//
// Deployment question the paper defers: what happens when brokers leave?
// We fail fractions of the 1,000-broker set (random and adversarial
// highest-degree-first), measure the connectivity cliff, and test how much
// a greedy repair with the same replacement budget restores.
#include <iostream>

#include "bench_common.hpp"
#include "broker/dominated.hpp"
#include "broker/maxsg.hpp"
#include "broker/resilience.hpp"

int main() {
  auto ctx = bsr::bench::make_context("Ablation: broker failures & repair");
  const auto& g = ctx.topo.graph;

  const std::uint32_t k = ctx.env.scaled(1000, 10);
  const auto brokers = bsr::broker::maxsg(g, k).brokers;
  const double baseline = bsr::broker::saturated_connectivity(g, brokers);
  std::cout << "broker set: " << brokers.size() << " members, baseline connectivity "
            << bsr::io::format_percent(baseline) << "%\n";

  bsr::io::Table table({"failed", "random failures", "targeted (top degree)",
                        "targeted + greedy repair"});
  for (const double frac : {0.05, 0.1, 0.25, 0.5}) {
    const auto failures = static_cast<std::size_t>(frac * brokers.size());
    bsr::graph::Rng rng(ctx.env.seed + 12);
    const auto random_survivors = bsr::broker::fail_brokers(
        g, brokers, failures, bsr::broker::FailureMode::kRandom, rng);
    const auto targeted_survivors = bsr::broker::fail_brokers(
        g, brokers, failures, bsr::broker::FailureMode::kTargetedTop, rng);
    const auto repaired = bsr::broker::repair_brokers(
        g, targeted_survivors, static_cast<std::uint32_t>(failures));
    table.row()
        .cell(std::to_string(failures) + " (" +
              bsr::io::format_percent(frac, 0) + "%)")
        .percent(bsr::broker::saturated_connectivity(g, random_survivors))
        .percent(bsr::broker::saturated_connectivity(g, targeted_survivors))
        .percent(bsr::broker::saturated_connectivity(g, repaired));
  }
  table.print(std::cout);
  std::cout << "(takeaway: random churn barely dents the alliance — coverage "
               "is redundant — while losing the top hubs is severe but fully "
               "greedy-repairable)\n";
  return 0;
}
