// Event-driven broker-churn simulation.
//
// Ties the resilience machinery into a time series: brokers depart with an
// exponential rate and the coalition repairs itself periodically with a
// bounded replacement budget. Tracks the connectivity trajectory — the
// operator's "how bad does it get between maintenance windows" question.
//
// The link-churn extension interleaves *edge* outages with broker
// departures: correlated failure groups (e.g. whole IXPs) go down as a
// Poisson process and heal after an exponential downtime, while periodic
// repairs re-select replacements on the damaged graph.
//
// The health-churn extension replaces the oracle with the probe-based
// control plane of sim/health: broker-vertex outages and link flaps change
// ground truth, a HealthMonitor detects them through lossy probes, stale
// HealthViews propagate on a delay, and a budgeted RepairScheduler recruits
// replacements with retry/backoff — all interleaved in one deterministic
// event loop that integrates the cost of believing stale state.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"
#include "graph/fault_plane.hpp"
#include "graph/rng.hpp"
#include "sim/health.hpp"

namespace bsr::sim {

struct ChurnConfig {
  /// Mean broker departures per time unit.
  double departure_rate = 1.0;
  /// Repairs happen every `repair_interval` time units...
  double repair_interval = 10.0;
  /// ...adding up to this many replacement brokers per repair.
  std::uint32_t repair_budget = 5;
  double horizon = 100.0;  // simulated time units
};

/// Link-outage process layered on top of broker churn. A rate of zero
/// disables link churn entirely.
struct LinkChurnConfig {
  /// Mean correlated-group outages per time unit.
  double outage_rate = 0.0;
  /// Mean exponential downtime of one outage.
  double mean_downtime = 5.0;
};

struct ChurnEvent {
  double time = 0.0;
  enum class Kind : std::uint8_t {
    kDeparture,
    kRepair,
    kLinkOutage,
    kLinkHeal,
  } kind = Kind::kDeparture;
  std::size_t brokers_after = 0;
  double connectivity_after = 0.0;
  std::uint64_t failed_edges_after = 0;  // distinct edges down after the event
};

struct ChurnResult {
  std::vector<ChurnEvent> events;
  double min_connectivity = 1.0;
  double mean_connectivity = 0.0;  // time-weighted
  std::size_t departures = 0;
  std::size_t repairs = 0;
  std::size_t replacements_added = 0;
  std::size_t link_outages = 0;
  std::size_t link_heals = 0;
};

/// Simulates broker churn on `initial` brokers over the horizon.
/// Deterministic in rng. Throws std::invalid_argument on non-positive
/// rates/intervals.
[[nodiscard]] ChurnResult simulate_churn(const bsr::graph::CsrGraph& g,
                                         const bsr::broker::BrokerSet& initial,
                                         const ChurnConfig& config,
                                         bsr::graph::Rng& rng);

/// Broker churn with interleaved link churn: each outage fails a uniformly
/// random group from `groups` (refcounted, so overlapping outages compose)
/// and heals after an exponential downtime. Connectivity and repairs are
/// computed on the damaged graph. `link.outage_rate > 0` requires a
/// non-empty `groups`.
[[nodiscard]] ChurnResult simulate_churn(
    const bsr::graph::CsrGraph& g, const bsr::broker::BrokerSet& initial,
    const ChurnConfig& config, const LinkChurnConfig& link,
    std::span<const bsr::graph::FailureGroup> groups, bsr::graph::Rng& rng);

// --- health-aware churn -----------------------------------------------------

/// Broker-vertex outage process for the health-churn loop. Departures fail
/// the broker's *vertex* on the fault plane (the AS goes dark — probes to it
/// die), and optionally return after an exponential downtime, producing the
/// flapping behavior the detector's hysteresis must suppress.
struct HealthChurnConfig {
  /// Mean broker-vertex outages per time unit (over the initial members).
  double departure_rate = 0.5;
  /// Mean exponential downtime before a departed broker returns;
  /// 0 makes departures permanent.
  double mean_return_time = 20.0;
  double horizon = 100.0;
};

struct HealthChurnResult {
  // Ground-truth events.
  std::size_t departures = 0;
  std::size_t returns = 0;
  std::size_t link_outages = 0;
  std::size_t link_heals = 0;
  // Detection plane.
  std::uint64_t probe_rounds = 0;
  std::uint64_t views_published = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t false_quarantines = 0;  // quarantined while the vertex was up
  /// Seconds from a broker's vertex going dark to its quarantine, one entry
  /// per detected outage episode (undetected episodes — healed before the
  /// detector condemned them — contribute nothing).
  std::vector<double> detection_latencies;
  std::vector<HealthTransition> transitions;
  // Repair plane.
  std::uint64_t repair_attempts = 0;
  std::uint64_t failed_repair_attempts = 0;
  std::size_t replacements_added = 0;
  // Time-weighted service metrics (normalized by the horizon where noted).
  double mean_oracle_connectivity = 0.0;    // full membership, ground truth
  double mean_believed_connectivity = 0.0;  // in-force view's routable set
  /// Integral of (vertex down AND in-force view says routable) broker-time:
  /// the misrouting exposure window. Shrinks as probing gets faster.
  double dead_routable_time = 0.0;
  /// Integral of (vertex up AND member AND view says unroutable)
  /// broker-time: healthy capacity shunned. Grows as probing gets jumpier.
  double shunned_up_time = 0.0;
  // Redundancy ablation metrics (broker/robust.hpp). A departure is
  // *absorbed* when the only pairs lost are the departed vertex's own — a
  // redundant selection keeps a dominating path through every surviving
  // pair — and *exposed* when third-party pairs are severed until repair or
  // return restores them.
  std::size_t absorbed_departures = 0;
  std::size_t exposed_departures = 0;
  /// Integral over time of (promised - realized) connectivity, where
  /// *promised* is the in-force believed set evaluated on the pristine graph
  /// (belief has no fault knowledge) and *realized* is the same set on the
  /// damaged graph. The gap is the fraction of pairs the control plane
  /// promises but cannot deliver; r-redundant selections keep it near zero
  /// through undetected-failure windows.
  double misrouting_pair_exposure = 0.0;
  /// Seconds from each exposed departure until the oracle pair count first
  /// climbs back to its pre-departure baseline minus the departed vertex's
  /// own (inevitably lost) pairs (FIFO; episodes still unrecovered at the
  /// horizon contribute nothing).
  std::vector<double> recovery_times;

  [[nodiscard]] double mean_detection_latency() const noexcept;
  [[nodiscard]] double false_positive_rate() const noexcept;
  [[nodiscard]] double mean_time_to_recover() const noexcept;
};

/// One event loop interleaving broker-vertex outages/returns, correlated
/// link flaps, probe rounds with backoff re-probes, delayed view
/// propagation, and budgeted repair with retry — deterministic in `rng`.
///
/// The ground-truth fault timeline is drawn *up front* from forked streams,
/// so it is identical across health configurations with the same seed —
/// which is what makes detection-latency and misrouting-exposure sweeps
/// across probe intervals directly comparable. Repairs recruit on the
/// damaged graph from the brokers the *in-force view* believes routable.
/// `link.outage_rate > 0` requires non-empty `groups`.
[[nodiscard]] HealthChurnResult simulate_churn_with_health(
    const bsr::graph::CsrGraph& g, const bsr::broker::BrokerSet& initial,
    const HealthChurnConfig& config, const LinkChurnConfig& link,
    std::span<const bsr::graph::FailureGroup> groups, const HealthConfig& health,
    const RepairPolicy& repair, bsr::graph::Rng& rng);

}  // namespace bsr::sim
