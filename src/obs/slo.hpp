// Declarative SLO monitor with multi-window burn rates, off the journal
// clock.
//
// The route-serving plane promises: answers are mostly fresh, cheap at the
// tail, never too stale, rarely refused. An SloSpec states those promises
// as objectives; an SloMonitor consumes per-batch SloSamples on the
// *simulated* clock and evaluates every objective over two sliding windows
// (a short one that reacts, a long one that filters flaps — the classic
// multi-window burn-rate scheme). An objective breaches only when BOTH
// windows burn past the threshold, so one bad round inside an otherwise
// healthy hour does not page, and a sustained degradation does.
//
// Burn rate = (observed badness) / (budgeted badness), so 1.0 means
// "consuming exactly the error budget":
//   fresh_min     fraction objective — burn = (1 - fresh_frac) / (1 - target)
//                 over fresh + stale_served + refused answers (shedded
//                 answers were never admitted, so they spend no budget).
//   refusal_max   fraction objective — burn = refused_frac / target over all
//                 answers.
//   p99_max       bound objective — burn = worst windowed p99 ticks / bound.
//   stale_max     bound objective — burn = worst windowed staleness / bound.
//
// Everything is deterministic: samples come from the journal's packed
// sim.route_service.batch / batch_cost events (slo_samples_from_journal) or
// from the live service's per-round stat deltas — identical values either
// way — so the live `brokerctl serve --slo` verdict and the offline
// `brokerctl slo events.jsonl` verdict agree byte for byte. Breach/recover
// transitions are journaled (slo.monitor.* events) and counted; under
// BSR_STATS=OFF those sites compile away but the monitor itself stays fully
// functional (it is plain arithmetic over its inputs).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "obs/journal.hpp"

namespace bsr::obs {

/// Version tag of the machine-readable verdict JSON (export.hpp's
/// write_slo_json names it in the top-level "slo_schema" key).
inline constexpr std::string_view kSloSchema = "bsr-slo/1";

/// Declarative objectives. Negative target = objective disabled; a spec
/// with every objective disabled is invalid (parse_slo_spec throws).
struct SloSpec {
  double window = 5.0;        ///< short (paging) window, simulated time
  double long_window = 30.0;  ///< long (filtering) window, simulated time
  double burn_threshold = 1.0;///< breach when BOTH windows burn >= this
  double fresh_min = -1.0;    ///< min fresh fraction, in (0, 1)
  double refusal_max = -1.0;  ///< max refused fraction, in (0, 1]
  double p99_ticks_max = -1.0;///< max windowed p99 query ticks, >= 1
  double stale_max = -1.0;    ///< max events-behind staleness, >= 1
};

/// Parses "key=value[,key=value...]" (',' or ';' separated; spaces allowed
/// around tokens). Keys: fresh_min, refusal_max, p99_max, stale_max,
/// window, long_window, burn. Throws std::invalid_argument on unknown keys,
/// malformed numbers, out-of-range targets (see SloSpec field docs — the
/// ranges keep every burn rate finite), long_window < window, or a spec
/// that enables no objective at all.
[[nodiscard]] SloSpec parse_slo_spec(std::string_view text);

/// One evaluation sample: the answer-tag tallies and deterministic tick
/// costs of one serve_batch round, stamped with simulated time. Matches the
/// packing of the sim.route_service.batch / batch_cost journal events.
struct SloSample {
  double time = 0.0;
  std::uint64_t fresh = 0;
  std::uint64_t stale_served = 0;
  std::uint64_t shedded = 0;
  std::uint64_t refused = 0;
  std::uint64_t staleness = 0;  ///< truth events the serving epoch is behind
  std::uint64_t p99_ticks = 0;  ///< batch p99 of per-query total ticks
  std::uint64_t max_ticks = 0;  ///< batch max of per-query total ticks
};

/// Objectives in declaration order; the journal breach-event subject is a
/// bitmask over these indices.
enum class SloObjective : std::uint8_t {
  kFreshFraction = 0,
  kRefusalRate = 1,
  kP99Ticks = 2,
  kStaleness = 3,
  kCount
};

inline constexpr std::size_t kNumSloObjectives =
    static_cast<std::size_t>(SloObjective::kCount);

[[nodiscard]] std::string_view name(SloObjective o) noexcept;

struct SloObjectiveReport {
  std::string_view name;        ///< name(SloObjective)
  bool enabled = false;
  double target = -1.0;
  double worst_short_burn = 0.0;
  double worst_long_burn = 0.0;
  std::uint64_t breach_samples = 0;  ///< samples at which this objective breached
  double first_breach_time = -1.0;   ///< -1 = never breached
};

struct SloReport {
  SloSpec spec;
  std::uint64_t samples = 0;
  std::uint64_t breaches = 0;  ///< breach episodes entered
  std::uint64_t recovers = 0;  ///< breach episodes exited
  bool in_breach = false;      ///< episode still open at the last sample
  SloObjectiveReport objectives[kNumSloObjectives];
  /// The verdict `brokerctl serve --slo` / `brokerctl slo` exit on.
  [[nodiscard]] bool ok() const noexcept { return breaches == 0; }
};

class SloMonitor {
 public:
  /// Same validation as parse_slo_spec; throws std::invalid_argument.
  explicit SloMonitor(const SloSpec& spec);

  /// Feeds one sample. Samples must arrive in non-decreasing time order
  /// (throws std::invalid_argument otherwise). Emits slo.monitor.* journal
  /// events and counters on breach/recover transitions.
  void observe(const SloSample& sample);

  [[nodiscard]] bool in_breach() const noexcept { return report_.in_breach; }
  [[nodiscard]] const SloReport& report() const noexcept { return report_; }

 private:
  SloSpec spec_;
  std::vector<SloSample> window_;  // samples within the trailing long window
  SloReport report_;
  double last_time_ = 0.0;
  bool saw_sample_ = false;
};

/// Rebuilds the monitor's input from a recorded journal: every
/// sim.route_service.batch / batch_cost event pair becomes one SloSample.
/// Events sharing one timestamp (e.g. single-query batches served at the
/// same instant) merge into one sample — tallies sum, costs and staleness
/// take the max — so the result is identical however the same queries were
/// batched into journal events. Assumes the ring dropped nothing.
[[nodiscard]] std::vector<SloSample> slo_samples_from_journal(const Journal& journal);

}  // namespace bsr::obs
