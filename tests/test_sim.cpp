#include <gtest/gtest.h>

#include "broker/verify.hpp"
#include "sim/demand.hpp"
#include "sim/load.hpp"
#include "sim/qos.hpp"
#include "sim/router.hpp"
#include "test_util.hpp"

namespace bsr::sim {
namespace {

using bsr::broker::BrokerSet;
using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::graph::Rng;
using bsr::test::make_connected_random;
using bsr::test::make_path;
using bsr::test::make_star;

// --- demand ----------------------------------------------------------------

TEST(Demand, FlowsWellFormed) {
  const CsrGraph g = make_connected_random(30, 0.1, 1);
  Rng rng(2);
  DemandConfig config;
  config.num_flows = 200;
  const auto flows = generate_flows(g, config, rng);
  ASSERT_EQ(flows.size(), 200u);
  for (const Flow& f : flows) {
    EXPECT_NE(f.src, f.dst);
    EXPECT_LT(f.src, g.num_vertices());
    EXPECT_LT(f.dst, g.num_vertices());
    EXPECT_GE(f.volume, config.volume_min * (1 - 1e-9));
    EXPECT_LE(f.volume, config.volume_max * (1 + 1e-9));
  }
}

TEST(Demand, DegreeWeightingPrefersHubs) {
  const CsrGraph g = make_star(50);
  Rng rng(3);
  DemandConfig config;
  config.num_flows = 2000;
  const auto flows = generate_flows(g, config, rng);
  std::size_t center_endpoints = 0;
  for (const Flow& f : flows) {
    center_endpoints += (f.src == 0) + (f.dst == 0);
  }
  // Center holds ~half the degree mass (uniform draws would give ~4 %).
  EXPECT_GT(center_endpoints, flows.size() / 3);
}

TEST(Demand, UniformModeIsFlat) {
  const CsrGraph g = make_star(50);
  Rng rng(4);
  DemandConfig config;
  config.num_flows = 2000;
  config.degree_weighted = false;
  const auto flows = generate_flows(g, config, rng);
  std::size_t center_endpoints = 0;
  for (const Flow& f : flows) center_endpoints += (f.src == 0) + (f.dst == 0);
  EXPECT_LT(center_endpoints, 300u);
}

TEST(Demand, RejectsDegenerateInputs) {
  Rng rng(5);
  EXPECT_THROW(generate_flows(make_path(1), {}, rng), std::invalid_argument);
  DemandConfig bad;
  bad.volume_min = 0.0;
  EXPECT_THROW(generate_flows(make_path(3), bad, rng), std::invalid_argument);
}

// --- router ------------------------------------------------------------------

TEST(Router, FreeRouteIsShortestPath) {
  const CsrGraph g = make_path(5);
  BrokerSet b(5);
  Router router(g, b);
  const Route route = router.route_free(0, 4);
  ASSERT_TRUE(route.reachable());
  EXPECT_EQ(route.hops(), 4u);
  EXPECT_EQ(route.path.front(), 0u);
  EXPECT_EQ(route.path.back(), 4u);
}

TEST(Router, DominatedRouteIsDominatingPath) {
  const CsrGraph g = make_connected_random(40, 0.1, 6);
  BrokerSet b(g.num_vertices());
  for (NodeId v = 0; v < 10; ++v) b.add(v);
  Router router(g, b);
  for (NodeId dst = 10; dst < 30; ++dst) {
    const Route route = router.route_dominated(35, dst);
    if (!route.reachable()) continue;
    EXPECT_TRUE(bsr::broker::is_dominating_path(g, b, route.path));
  }
}

TEST(Router, DominatedUnreachableWithoutBrokers) {
  const CsrGraph g = make_path(4);
  BrokerSet b(4);  // empty
  Router router(g, b);
  EXPECT_FALSE(router.route_dominated(0, 3).reachable());
  // Same endpoints are trivially reachable.
  EXPECT_TRUE(router.route_dominated(2, 2).reachable());
}

TEST(Router, StretchNonNegative) {
  const CsrGraph g = make_connected_random(30, 0.12, 7);
  BrokerSet b(g.num_vertices());
  for (NodeId v = 0; v < 6; ++v) b.add(v * 5);
  Router router(g, b);
  for (NodeId u = 0; u < 10; ++u) {
    const auto s = router.stretch(u, 29 - u);
    if (s.has_value()) {
      EXPECT_GE(*s, 0u);
    }
  }
}

TEST(Router, StretchNulloptWhenDominatedUnreachable) {
  const CsrGraph g = make_path(4);
  BrokerSet b(4);
  b.add(0);  // dominates only edge 0-1
  Router router(g, b);
  EXPECT_FALSE(router.stretch(0, 3).has_value());
}

// --- qos ---------------------------------------------------------------------

TEST(Qos, FullyDominatedPathAlwaysSucceeds) {
  const CsrGraph g = make_path(5);
  BrokerSet b(5);
  b.add(1);
  b.add(3);
  const std::vector<NodeId> path{0, 1, 2, 3, 4};
  EXPECT_EQ(undominated_hops(b, path), 0u);
  EXPECT_DOUBLE_EQ(path_qos_success(QosModel{}, b, path), 1.0);
}

TEST(Qos, UnsupervisedHopsCompound) {
  const CsrGraph g = make_path(4);
  BrokerSet b(4);  // no brokers: all 3 hops unsupervised
  const std::vector<NodeId> path{0, 1, 2, 3};
  QosModel model;
  model.unsupervised_hop_success = 0.8;
  EXPECT_EQ(undominated_hops(b, path), 3u);
  EXPECT_NEAR(path_qos_success(model, b, path), 0.8 * 0.8 * 0.8, 1e-12);
}

TEST(Qos, TrivialPathSucceeds) {
  BrokerSet b(3);
  EXPECT_DOUBLE_EQ(path_qos_success(QosModel{}, b, {}), 1.0);
  const std::vector<NodeId> single{1};
  EXPECT_DOUBLE_EQ(path_qos_success(QosModel{}, b, single), 1.0);
}

TEST(Qos, ImperfectSlaModel) {
  BrokerSet b(3);
  b.add(1);
  const std::vector<NodeId> path{0, 1, 2};
  QosModel model;
  model.supervised_hop_success = 0.95;
  EXPECT_NEAR(path_qos_success(model, b, path), 0.95 * 0.95, 1e-12);
}

// --- load ----------------------------------------------------------------------

TEST(Load, CreditsTransitVerticesOnly) {
  LoadTracker tracker(5);
  Route route;
  route.path = {0, 1, 2, 3};
  tracker.add_route(route, 2.0);
  EXPECT_DOUBLE_EQ(tracker.load()[0], 0.0);
  EXPECT_DOUBLE_EQ(tracker.load()[1], 2.0);
  EXPECT_DOUBLE_EQ(tracker.load()[2], 2.0);
  EXPECT_DOUBLE_EQ(tracker.load()[3], 0.0);
}

TEST(Load, ShortRoutesCarryNoTransit) {
  LoadTracker tracker(3);
  Route direct;
  direct.path = {0, 1};
  tracker.add_route(direct, 5.0);
  for (const double l : tracker.load()) EXPECT_DOUBLE_EQ(l, 0.0);
}

TEST(Load, GiniZeroForEqualLoads) {
  LoadTracker tracker(4);
  Route r1, r2;
  r1.path = {0, 1, 2};
  r2.path = {0, 2, 1};  // not a real path; load accounting only
  tracker.add_route(r1, 1.0);
  tracker.add_route(r2, 1.0);
  BrokerSet brokers(4);
  brokers.add(1);
  brokers.add(2);
  const auto summary = tracker.summarize(brokers);
  EXPECT_NEAR(summary.gini, 0.0, 1e-12);
  EXPECT_EQ(summary.active_brokers, 2u);
  EXPECT_DOUBLE_EQ(summary.total, 2.0);
}

TEST(Load, GiniDetectsConcentration) {
  LoadTracker tracker(5);
  Route hot;
  hot.path = {0, 1, 4};
  for (int i = 0; i < 10; ++i) tracker.add_route(hot, 1.0);
  BrokerSet brokers(5);
  brokers.add(1);
  brokers.add(2);
  brokers.add(3);
  const auto summary = tracker.summarize(brokers);
  EXPECT_GT(summary.gini, 0.5);
  EXPECT_EQ(summary.active_brokers, 1u);
  EXPECT_DOUBLE_EQ(summary.max, 10.0);
}

TEST(Load, EmptyBrokerSetSummary) {
  LoadTracker tracker(3);
  const auto summary = tracker.summarize(BrokerSet(3));
  EXPECT_DOUBLE_EQ(summary.total, 0.0);
  EXPECT_EQ(summary.active_brokers, 0u);
}

}  // namespace
}  // namespace bsr::sim
