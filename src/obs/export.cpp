#include "obs/export.hpp"

#include <algorithm>
#include <ostream>
#include <string>
#include <vector>

namespace bsr::obs {

namespace {

void json_histogram(std::ostream& os, const Snapshot& snap, Histogram h) {
  const auto& buckets = snap.histograms[static_cast<std::size_t>(h)];
  os << "{\"total\": " << snap.histogram_total(h) << ", \"buckets\": [";
  bool first = true;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (!first) os << ", ";
    os << "[" << b << ", " << buckets[b] << "]";
    first = false;
  }
  os << "]}";
}

}  // namespace

void write_json(std::ostream& os, const Snapshot& snap) {
  os << "{\n  \"obs_schema_version\": " << kSchemaVersion
     << ",\n  \"stats_enabled\": " << (snap.enabled ? "true" : "false")
     << ",\n  \"work_units\": " << work_units(snap) << ",\n  \"counters\": {";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \"" << name(static_cast<Counter>(i))
       << "\": " << snap.counters[i];
  }
  os << "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \"" << name(static_cast<Gauge>(i))
       << "\": " << snap.gauges[i];
  }
  os << "\n  },\n  \"histograms\": {";
  for (std::size_t i = 0; i < kNumHistograms; ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \"" << name(static_cast<Histogram>(i))
       << "\": ";
    json_histogram(os, snap, static_cast<Histogram>(i));
  }
  os << "\n  }\n}\n";
}

void dump_pretty(std::ostream& os, const Snapshot& snap) {
  if (!snap.enabled) {
    os << "telemetry: compiled out (build with -DBSR_STATS=ON)\n";
    return;
  }
  struct Line {
    std::string name;
    std::string value;
  };
  std::vector<Line> lines;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (snap.counters[i] == 0) continue;
    lines.push_back({std::string(name(static_cast<Counter>(i))),
                     std::to_string(snap.counters[i])});
  }
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    if (snap.gauges[i] == 0) continue;
    lines.push_back({std::string(name(static_cast<Gauge>(i))),
                     std::to_string(snap.gauges[i]) + " (max)"});
  }
  for (std::size_t i = 0; i < kNumHistograms; ++i) {
    const auto h = static_cast<Histogram>(i);
    const std::uint64_t total = snap.histogram_total(h);
    if (total == 0) continue;
    const auto& buckets = snap.histograms[i];
    std::string detail = std::to_string(total) + " obs:";
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (buckets[b] == 0) continue;
      // Bucket label: the inclusive lower bound of the value range.
      const std::uint64_t lo = b == 0 ? 0 : (std::uint64_t{1} << (b - 1));
      detail += " [" + std::to_string(lo) + "]x" + std::to_string(buckets[b]);
    }
    lines.push_back({std::string(name(h)), std::move(detail)});
  }
  if (lines.empty()) {
    os << "telemetry: no activity recorded\n";
    return;
  }
  std::size_t width = 0;
  for (const Line& line : lines) width = std::max(width, line.name.size());
  os << "telemetry (schema v" << kSchemaVersion << ", work units "
     << work_units(snap) << ")\n";
  for (const Line& line : lines) {
    os << "  " << line.name << std::string(width - line.name.size() + 2, ' ')
       << line.value << "\n";
  }
}

void write_chrome_trace(std::ostream& os, std::span<const SpanRecord> spans) {
  os << "{\"traceEvents\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    os << (i == 0 ? "\n" : ",\n") << "  {\"name\": \"" << span.name
       << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": 1, \"ts\": "
       << span.start_ns / 1000 << ", \"dur\": " << span.duration_ns / 1000
       << ", \"args\": {\"work_units\": " << span.work_units;
    for (const auto& [counter, moved] : span.counter_deltas) {
      os << ", \"" << name(counter) << "\": " << moved;
    }
    os << "}}";
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

}  // namespace bsr::obs
