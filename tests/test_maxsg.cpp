#include "broker/maxsg.hpp"

#include <gtest/gtest.h>

#include "broker/dominated.hpp"
#include "graph/components.hpp"
#include "test_util.hpp"

namespace bsr::broker {
namespace {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::test::make_connected_random;
using bsr::test::make_path;
using bsr::test::make_random;
using bsr::test::make_star;

TEST(MaxSg, EmptyGraphThrows) {
  EXPECT_THROW(maxsg(CsrGraph(), 3), std::invalid_argument);
}

TEST(MaxSg, ZeroBudget) {
  const CsrGraph g = make_star(5);
  const auto result = maxsg(g, 0);
  EXPECT_TRUE(result.brokers.empty());
  EXPECT_EQ(result.final_component, 0u);
}

TEST(MaxSg, StarPicksCenterAndStops) {
  const CsrGraph g = make_star(12);
  const auto result = maxsg(g, 5);
  ASSERT_EQ(result.brokers.size(), 1u);  // center dominates everything
  EXPECT_EQ(result.brokers.members()[0], 0u);
  EXPECT_EQ(result.final_component, 12u);
}

TEST(MaxSg, PathGraphAlternatingSelection) {
  const CsrGraph g = make_path(9);
  const auto result = maxsg(g, 9);
  // Dominating the whole path needs every other vertex, about n/2 - but
  // never more than the budget, and the component must reach all 9.
  EXPECT_EQ(result.final_component, 9u);
  EXPECT_LE(result.brokers.size(), 5u);
}

TEST(MaxSg, BudgetRespectedWithoutEarlyStop) {
  const CsrGraph g = make_connected_random(60, 0.05, 5);
  MaxSgOptions options;
  options.stop_when_dominating = false;
  const auto result = maxsg(g, 7, options);
  EXPECT_EQ(result.brokers.size(), 7u);
}

TEST(MaxSg, ComponentCurveMatchesIndependentEvaluation) {
  const CsrGraph g = make_connected_random(40, 0.08, 6);
  const auto result = maxsg(g, 8);
  ASSERT_EQ(result.component_curve.size(), result.brokers.size());
  for (std::size_t i = 0; i < result.brokers.size(); ++i) {
    const auto prefix = result.brokers.prefix(i + 1);
    EXPECT_EQ(result.component_curve[i], largest_dominated_component(g, prefix))
        << "pick " << i;
    if (i > 0) {
      EXPECT_GE(result.component_curve[i], result.component_curve[i - 1]);
    }
  }
}

TEST(MaxSg, GreedyStepIsLocallyOptimal) {
  // At every step, no other candidate would have produced a larger
  // component than the one the algorithm picked (ties allowed).
  const CsrGraph g = make_connected_random(25, 0.12, 7);
  const auto result = maxsg(g, 5);
  for (std::size_t i = 0; i < result.brokers.size(); ++i) {
    BrokerSet prefix = result.brokers.prefix(i);
    const std::uint32_t chosen_value = result.component_curve[i];
    for (NodeId w = 0; w < g.num_vertices(); ++w) {
      if (prefix.contains(w)) continue;
      BrokerSet alternative = prefix;
      alternative.add(w);
      EXPECT_GE(chosen_value, largest_dominated_component(g, alternative))
          << "pick " << i << " alternative " << w;
    }
  }
}

TEST(MaxSg, StopsWhenDominatingMaxSubgraph) {
  const CsrGraph g = make_connected_random(50, 0.07, 8);
  const auto result = maxsg(g, 1000);
  // The "3,540-alliance" behavior: stop once the maximum connected subgraph
  // is fully dominated.
  EXPECT_EQ(result.final_component,
            bsr::graph::connected_components(g).largest_size());
  EXPECT_LT(result.brokers.size(), 1000u);
}

TEST(MaxSg, DeterministicSelection) {
  const CsrGraph g = make_connected_random(40, 0.08, 9);
  const auto a = maxsg(g, 6);
  const auto b = maxsg(g, 6);
  EXPECT_EQ(std::vector<NodeId>(a.brokers.members().begin(), a.brokers.members().end()),
            std::vector<NodeId>(b.brokers.members().begin(), b.brokers.members().end()));
}

TEST(MaxSg, DisconnectedGraphCoversLargestPiece) {
  bsr::graph::GraphBuilder b(9);
  // Component A: star of 6 (0..5). Component B: triangle (6, 7, 8).
  for (NodeId v = 1; v < 6; ++v) b.add_edge(0, v);
  b.add_edge(6, 7);
  b.add_edge(7, 8);
  b.add_edge(6, 8);
  const CsrGraph g = b.build();
  const auto result = maxsg(g, 1);
  ASSERT_EQ(result.brokers.size(), 1u);
  EXPECT_EQ(result.brokers.members()[0], 0u);  // the bigger component's hub
  EXPECT_EQ(result.final_component, 6u);
}

class MaxSgPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxSgPropertyTest, ComponentNeverExceedsCoverage) {
  const CsrGraph g = make_random(45, 0.06, GetParam());
  const auto result = maxsg(g, 10);
  EXPECT_LE(result.final_component, result.coverage);
}

TEST_P(MaxSgPropertyTest, MoreBudgetNeverShrinksComponent) {
  const CsrGraph g = make_random(45, 0.06, GetParam() + 10);
  std::uint32_t previous = 0;
  for (const std::uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
    const auto result = maxsg(g, k);
    EXPECT_GE(result.final_component, previous);
    previous = result.final_component;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxSgPropertyTest, ::testing::Values(6, 66, 666));

}  // namespace
}  // namespace bsr::broker
