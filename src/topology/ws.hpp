// Watts–Strogatz small-world graph (Table 3 comparison topology).
#pragma once

#include <cstdint>

#include "graph/csr_graph.hpp"

namespace bsr::topology {

/// Ring lattice over n vertices where each vertex connects to its k nearest
/// neighbors (k even), then each lattice edge is rewired to a random target
/// with probability beta. Deterministic in seed.
/// Throws std::invalid_argument for invalid n/k/beta.
[[nodiscard]] bsr::graph::CsrGraph make_ws(std::uint32_t num_vertices, std::uint32_t k,
                                           double beta, std::uint64_t seed);

}  // namespace bsr::topology
