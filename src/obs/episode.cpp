#include "obs/episode.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "obs/sketch.hpp"

namespace bsr::obs {

std::string_view to_string(EpisodeKind kind) noexcept {
  return kind == EpisodeKind::kHealth ? "health" : "serve";
}

std::string_view to_string(EpisodePhase phase) noexcept {
  switch (phase) {
    case EpisodePhase::kDetect: return "detect";
    case EpisodePhase::kReact: return "react";
    case EpisodePhase::kQueue: return "queue";
    case EpisodePhase::kExec: return "exec";
    case EpisodePhase::kDrain: return "drain";
    case EpisodePhase::kCount: break;
  }
  return "?";
}

namespace {

constexpr std::size_t idx(EpisodePhase phase) noexcept {
  return static_cast<std::size_t>(phase);
}

/// One in-flight episode state machine: the episode being built plus the
/// label-switching cursor (current phase, start of its open interval).
struct Chain {
  Episode ep;
  EpisodePhase current = EpisodePhase::kReact;
  double phase_start = 0.0;
};

/// Closes the interval [phase_start, t] under the current label and switches
/// to `next`. Zero-length intervals accumulate nothing and emit no slice;
/// adjacent same-label slices merge.
void advance_phase(Chain& chain, double t, EpisodePhase next) {
  if (t > chain.phase_start) {
    chain.ep.phases[idx(chain.current)] += t - chain.phase_start;
    if (!chain.ep.slices.empty() &&
        chain.ep.slices.back().phase == chain.current &&
        chain.ep.slices.back().end == chain.phase_start) {
      chain.ep.slices.back().end = t;
    } else {
      chain.ep.slices.push_back({chain.current, chain.phase_start, t});
    }
  }
  chain.phase_start = t;
  chain.current = next;
}

Chain open_chain(EpisodeKind kind, std::uint64_t id, std::uint64_t subject,
                 double open_time, double t, EpisodePhase first,
                 bool truncated) {
  Chain chain;
  chain.ep.kind = kind;
  chain.ep.id = id;
  chain.ep.subject = subject;
  chain.ep.open_time = open_time;
  chain.ep.truncated = truncated;
  chain.current = EpisodePhase::kDetect;
  chain.phase_start = open_time;
  advance_phase(chain, t, first);
  return chain;
}

/// Accumulates the trailing interval, stamps the close, and folds the
/// floating-point residual between span() and the phase sum into the
/// largest phase so phase_total() == span() holds bit-exactly.
void close_chain(Chain& chain, double t, bool closed) {
  advance_phase(chain, t, chain.current);
  chain.ep.close_time = t;
  chain.ep.closed = closed;
  // Fold the floating-point residual of the partition into the largest
  // phase until the re-summed total lands exactly on span(). One pass
  // nearly always suffices; the bounded loop covers the rare case where
  // adding the correction perturbs the summation order by an ulp.
  std::size_t largest = 0;
  for (std::size_t p = 1; p < kNumEpisodePhases; ++p) {
    if (chain.ep.phases[p] > chain.ep.phases[largest]) largest = p;
  }
  for (int pass = 0; pass < 8; ++pass) {
    const double residual = chain.ep.span() - chain.ep.phase_total();
    if (residual == 0.0) break;
    chain.ep.phases[largest] += residual;
  }
}

/// The serve-plane completion events. The journal export key orders records
/// at equal time by event slot, which puts a degrade or rebuild start ahead
/// of the completion that causally preceded it within the same simulated
/// instant (RouteService::advance runs completions before external handlers
/// and before new starts). The reconstructor therefore processes each
/// equal-time group in two passes: completions first, everything else in
/// export order after.
bool is_serve_completion(Event e) noexcept {
  switch (e) {
    case Event::kRouteServiceRebuildCrash:
    case Event::kRouteServiceRebuildDiscard:
    case Event::kRouteServiceRebuildGiveUp:
    case Event::kRouteServiceEpochPublish:
      return true;
    default:
      return false;
  }
}

bool is_fault_signal(Event e) noexcept {
  switch (e) {
    case Event::kChurnDeparture:
    case Event::kChurnReturn:
    case Event::kChurnLinkOutage:
    case Event::kChurnLinkHeal:
    case Event::kChurnRepair:
    case Event::kFaultGroupFail:
    case Event::kFaultGroupHeal:
      return true;
    default:
      return false;
  }
}

struct Reconstructor {
  Reconstructor(bool truncated, EpisodeReport& r)
      : maybe_truncated(truncated), report(r) {}

  const bool maybe_truncated;
  EpisodeReport& report;
  std::vector<Chain> done;

  // Health plane: one chain per HealthMonitor episode correlation id.
  std::unordered_map<std::uint64_t, Chain> health_open;
  std::unordered_set<std::uint64_t> health_closed;
  // Per-broker causal anchors for the detect phase: the earliest unresolved
  // churn departure and the start of the current consecutive-miss streak.
  std::unordered_map<std::uint64_t, double> churn_fault;
  std::unordered_map<std::uint64_t, double> pending_miss;

  // Serve plane: at most one open degradation (single-vantage oracle) plus
  // the rebuild-attempt id ledger (1 = started, 2 = terminated).
  bool serve_active = false;
  Chain serve;
  std::unordered_map<std::uint64_t, std::uint8_t> attempt_state;
  bool has_pending_fault = false;
  double pending_fault = 0.0;

  void finish(Chain&& chain) {
    if (chain.ep.kind == EpisodeKind::kHealth) {
      health_closed.insert(chain.ep.id);
    }
    done.push_back(std::move(chain));
  }

  /// A mid-chain event whose opener is missing: with a lossy ring the opener
  /// was evicted (synthesize a flagged, truncated chain); with a drop-free
  /// journal the producer broke the lifecycle contract.
  void orphan_health(const EventRecord& ev, EpisodePhase first) {
    if (!maybe_truncated) {
      ++report.malformed;
      return;
    }
    health_open.emplace(ev.correlation,
                        open_chain(EpisodeKind::kHealth, ev.correlation,
                                   ev.subject, ev.time, ev.time, first, true));
  }

  void orphan_serve(const EventRecord& ev, EpisodePhase first) {
    if (!maybe_truncated) {
      ++report.malformed;
      return;
    }
    serve = open_chain(EpisodeKind::kServe, ev.correlation, ev.subject,
                       ev.time, ev.time, first, true);
    serve_active = true;
  }

  /// Zero-span flagged record for a terminal event whose whole chain was
  /// evicted.
  void orphan_terminal(EpisodeKind kind, const EventRecord& ev) {
    if (!maybe_truncated) {
      ++report.malformed;
      return;
    }
    Chain chain = open_chain(kind, ev.correlation, ev.subject, ev.time,
                             ev.time, EpisodePhase::kReact, true);
    close_chain(chain, ev.time, true);
    finish(std::move(chain));
  }

  // --- attempt-id ledger -----------------------------------------------------

  void attempt_start(std::uint64_t a) {
    if (a == 0 || !attempt_state.emplace(a, std::uint8_t{1}).second) {
      ++report.malformed;  // attempt ids are allocated from 1, never reused
    }
  }

  void attempt_terminate(std::uint64_t a) {
    const auto it = attempt_state.find(a);
    if (it == attempt_state.end()) {
      if (maybe_truncated) {
        attempt_state.emplace(a, std::uint8_t{2});
      } else {
        ++report.malformed;  // terminal for an attempt that never started
      }
      return;
    }
    if (it->second != 1) {
      ++report.malformed;  // two terminals for one attempt
      return;
    }
    it->second = 2;
  }

  // --- per-event handlers ----------------------------------------------------

  void on_health_suspect(const EventRecord& ev) {
    const std::uint64_t c = ev.correlation;
    if (c == 0 || health_open.count(c) != 0 || health_closed.count(c) != 0) {
      ++report.malformed;  // zero or reused episode id
      return;
    }
    // Causal anchor for detect: the churn departure if stitchable, else the
    // start of the probe-miss streak, else the suspect itself.
    double open_time = ev.time;
    if (const auto fault = churn_fault.find(ev.subject);
        fault != churn_fault.end()) {
      open_time = std::min(open_time, fault->second);
      churn_fault.erase(fault);
    } else if (const auto miss = pending_miss.find(ev.subject);
               miss != pending_miss.end()) {
      open_time = std::min(open_time, miss->second);
    }
    pending_miss.erase(ev.subject);
    health_open.emplace(c, open_chain(EpisodeKind::kHealth, c, ev.subject,
                                      open_time, ev.time,
                                      EpisodePhase::kReact, false));
  }

  void on_health_transition(const EventRecord& ev, EpisodePhase next) {
    if (const auto it = health_open.find(ev.correlation);
        it != health_open.end()) {
      advance_phase(it->second, ev.time, next);
      return;
    }
    if (health_closed.count(ev.correlation) != 0) {
      ++report.malformed;  // event after the terminal: episode id reused
      return;
    }
    orphan_health(ev, next);
  }

  void on_health_recover(const EventRecord& ev) {
    const auto it = health_open.find(ev.correlation);
    if (it == health_open.end()) {
      if (health_closed.count(ev.correlation) != 0) {
        ++report.malformed;
      } else {
        orphan_terminal(EpisodeKind::kHealth, ev);
      }
      return;
    }
    Chain chain = std::move(it->second);
    health_open.erase(it);
    close_chain(chain, ev.time, true);
    finish(std::move(chain));
  }

  void on_health_probe(const EventRecord& ev, bool miss) {
    if (ev.correlation == 0) {
      // Pre-suspect probes: track the consecutive-miss streak per broker as
      // the fallback detect anchor.
      if (miss) {
        pending_miss.try_emplace(ev.subject, ev.time);
      } else {
        pending_miss.erase(ev.subject);
      }
      return;
    }
    if (health_open.count(ev.correlation) != 0) return;  // in-episode probe
    if (health_closed.count(ev.correlation) != 0) {
      ++report.malformed;  // probe stamped with a terminated episode's id
      return;
    }
    orphan_health(ev, EpisodePhase::kReact);
  }

  void on_repair_attempt(const EventRecord& ev) {
    if (ev.correlation == 0) return;
    if (const auto it = health_open.find(ev.correlation);
        it != health_open.end()) {
      ++it->second.ep.attempts;
      if (ev.subject == 0) ++it->second.ep.failures;  // recruited nobody
      return;
    }
    // The repair plane lags the health plane by design: an attempt armed by
    // an episode that has since recovered is benign, not malformed.
    if (health_closed.count(ev.correlation) != 0) return;
    orphan_health(ev, EpisodePhase::kQueue);
  }

  void on_serve_degrade(const EventRecord& ev) {
    if (serve_active) {
      ++report.malformed;  // degrades never nest (only fired when fresh)
      return;
    }
    double open_time = ev.time;
    if (has_pending_fault) {
      open_time = std::min(open_time, pending_fault);
      has_pending_fault = false;
    }
    serve = open_chain(EpisodeKind::kServe, ev.correlation, ev.subject,
                       open_time, ev.time, EpisodePhase::kReact, false);
    serve_active = true;
  }

  void on_serve_patch(const EventRecord& ev) {
    if (serve_active) ++report.malformed;  // patches only run while fresh
    has_pending_fault = false;             // the perturbation was absorbed
    (void)ev;
  }

  void on_rebuild_start(const EventRecord& ev) {
    attempt_start(ev.correlation);
    if (serve_active) {
      advance_phase(serve, ev.time, EpisodePhase::kExec);
      ++serve.ep.attempts;
      return;
    }
    orphan_serve(ev, EpisodePhase::kExec);
    if (serve_active) ++serve.ep.attempts;
  }

  void on_rebuild_failed(const EventRecord& ev) {
    attempt_terminate(ev.correlation);
    if (serve_active) {
      advance_phase(serve, ev.time, EpisodePhase::kQueue);
      ++serve.ep.failures;
      return;
    }
    orphan_serve(ev, EpisodePhase::kQueue);
    if (serve_active) ++serve.ep.failures;
  }

  void on_rebuild_give_up(const EventRecord& ev) {
    // corr 0: the scheduler refused to even begin (budget exhausted before
    // the first start); corr != 0: the terminal retry's attempt id.
    if (ev.correlation != 0 && attempt_state.count(ev.correlation) == 0 &&
        !maybe_truncated) {
      ++report.malformed;
    }
    if (serve_active) {
      advance_phase(serve, ev.time, EpisodePhase::kQueue);
      serve.ep.gave_up = true;
      return;
    }
    orphan_serve(ev, EpisodePhase::kQueue);
    if (serve_active) serve.ep.gave_up = true;
  }

  void on_epoch_publish(const EventRecord& ev) {
    if (ev.correlation != 0) attempt_terminate(ev.correlation);
    if (serve_active) {
      close_chain(serve, ev.time, true);
      finish(std::move(serve));
      serve = Chain{};
      serve_active = false;
      return;
    }
    // The initial oracle build publishes with attempt 0 and no preceding
    // degrade — a fresh epoch turning over, not an episode.
    if (ev.correlation != 0) orphan_terminal(EpisodeKind::kServe, ev);
  }

  void handle(const EventRecord& ev) {
    switch (ev.type) {
      case Event::kHealthSuspect: on_health_suspect(ev); break;
      case Event::kHealthQuarantine:
        on_health_transition(ev, EpisodePhase::kQueue);
        break;
      case Event::kHealthProbation:
        on_health_transition(ev, EpisodePhase::kDrain);
        break;
      case Event::kHealthRecover: on_health_recover(ev); break;
      case Event::kHealthProbeOk: on_health_probe(ev, false); break;
      case Event::kHealthProbeMiss: on_health_probe(ev, true); break;
      case Event::kRepairAttempt: on_repair_attempt(ev); break;
      case Event::kRouteServiceDegrade: on_serve_degrade(ev); break;
      case Event::kRouteServicePatch: on_serve_patch(ev); break;
      case Event::kRouteServiceRebuildStart: on_rebuild_start(ev); break;
      case Event::kRouteServiceRebuildCrash:
      case Event::kRouteServiceRebuildDiscard:
        on_rebuild_failed(ev);
        break;
      case Event::kRouteServiceRebuildGiveUp: on_rebuild_give_up(ev); break;
      case Event::kRouteServiceEpochPublish: on_epoch_publish(ev); break;
      default:
        if (is_fault_signal(ev.type)) {
          if (ev.type == Event::kChurnDeparture) {
            churn_fault.try_emplace(ev.subject, ev.time);
          } else if (ev.type == Event::kChurnReturn) {
            churn_fault.erase(ev.subject);
          }
          if (!serve_active && !has_pending_fault) {
            pending_fault = ev.time;
            has_pending_fault = true;
          }
        }
        break;
    }
  }
};

}  // namespace

EpisodeReport episodes_from_journal(const Journal& journal,
                                    const QtraceSnapshot* qtrace) {
  EpisodeReport report;
  report.journal_dropped = journal.dropped;
  if (qtrace != nullptr) report.qtrace_dropped = qtrace->dropped;

  Reconstructor rec{journal.dropped > 0, report};

  // The snapshot is in export order (ascending time), so equal-time groups
  // are contiguous; within a group, serve-plane completions run first (see
  // is_serve_completion).
  const std::vector<EventRecord>& events = journal.events;
  for (std::size_t i = 0; i < events.size();) {
    std::size_t j = i;
    while (j < events.size() && events[j].time == events[i].time) ++j;
    for (std::size_t k = i; k < j; ++k) {
      if (is_serve_completion(events[k].type)) rec.handle(events[k]);
    }
    for (std::size_t k = i; k < j; ++k) {
      if (!is_serve_completion(events[k].type)) rec.handle(events[k]);
    }
    i = j;
  }

  // Chains the journal ended on: close at the observation horizon, flagged
  // not-closed; the trailing interval stays under the active label.
  const double horizon = events.empty() ? 0.0 : events.back().time;
  for (auto& [id, chain] : rec.health_open) {
    close_chain(chain, std::max(horizon, chain.phase_start), false);
    rec.done.push_back(std::move(chain));
  }
  rec.health_open.clear();
  if (rec.serve_active) {
    close_chain(rec.serve, std::max(horizon, rec.serve.phase_start), false);
    rec.done.push_back(std::move(rec.serve));
    rec.serve_active = false;
  }

  report.episodes.reserve(rec.done.size());
  for (Chain& chain : rec.done) report.episodes.push_back(std::move(chain.ep));
  std::sort(report.episodes.begin(), report.episodes.end(),
            [](const Episode& a, const Episode& b) {
              if (a.open_time != b.open_time) return a.open_time < b.open_time;
              if (a.kind != b.kind) {
                return static_cast<unsigned>(a.kind) <
                       static_cast<unsigned>(b.kind);
              }
              return a.id < b.id;
            });

  // Degraded-answer attribution: a non-fresh row joins the serve episode
  // whose window holds its time, provided its correlation (the truth
  // version the epoch lagged behind) is at or past the episode's opening
  // truth version. Truncated episodes carry a surrogate id, so the
  // correlation check is waived for them.
  std::uint64_t attributed = 0;
  if (qtrace != nullptr) {
    std::vector<Episode*> serve_eps;
    for (Episode& ep : report.episodes) {
      if (ep.kind == EpisodeKind::kServe) serve_eps.push_back(&ep);
    }
    for (const QueryTraceRow& row : qtrace->rows) {
      if (row.status == 0 || row.correlation == 0) continue;
      Episode* hit = nullptr;
      for (Episode* ep : serve_eps) {
        if (row.time < ep->open_time || row.time > ep->close_time) continue;
        if (!ep->truncated && row.correlation < ep->id) continue;
        hit = ep;
        break;
      }
      if (hit == nullptr) {
        ++report.unattributed;
        continue;
      }
      ++attributed;
      switch (row.status) {
        case 1: ++hit->stale_served; break;
        case 2: ++hit->shedded; break;
        default: ++hit->refused; break;
      }
    }
  }

  for (const Episode& ep : report.episodes) {
    BSR_COUNT(EpisodeReconstructed);
    if (ep.closed) BSR_COUNT(EpisodeClosed);
    if (ep.truncated) BSR_COUNT(EpisodeTruncated);
    if (ep.closed && !ep.truncated) {
      BSR_SKETCH(EpisodeDetectMs, ep.phases[idx(EpisodePhase::kDetect)] * 1e3);
      BSR_SKETCH(EpisodeReactMs, ep.phases[idx(EpisodePhase::kReact)] * 1e3);
      BSR_SKETCH(EpisodeQueueMs, ep.phases[idx(EpisodePhase::kQueue)] * 1e3);
      BSR_SKETCH(EpisodeExecMs, ep.phases[idx(EpisodePhase::kExec)] * 1e3);
      BSR_SKETCH(EpisodeDrainMs, ep.phases[idx(EpisodePhase::kDrain)] * 1e3);
    }
  }
  BSR_COUNT_N(EpisodeMalformed, report.malformed);
  BSR_COUNT_N(EpisodeDegradedAnswers, attributed);

  return report;
}

}  // namespace bsr::obs
