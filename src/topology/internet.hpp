// Synthetic AS-level Internet topology calibrated to the paper's dataset.
//
// The paper measures a 2014 snapshot: 51,757 ASes + 322 IXPs, 347,332 AS-AS
// connections and 55,282 IXP memberships (Table 2), forming a (0.99, 4)-graph
// where 40.2 % of ASes attach to at least one IXP. That dataset is not
// redistributable, so we generate a topology with the same structural
// fingerprint:
//   * a tier hierarchy (tier-1 clique, multihomed tier-2/3 transit, stubs)
//     built by degree-preferential provider selection -> scale-free tail;
//   * a peering phase adding degree-preferential p2p edges until the AS-AS
//     edge budget is met (the real count includes dense IXP-derived peering);
//   * 322 IXPs with heavy-tailed membership sizes drawn from a bounded
//     Pareto, members sampled degree-preferentially from a participation
//     pool covering ~40 % of ASes.
// Every edge carries a ground-truth business relationship so the Fig. 5b/5c
// policy experiments run against consistent labels.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/rng.hpp"
#include "topology/relationships.hpp"
#include "topology/types.hpp"

namespace bsr::topology {

struct InternetConfig {
  std::uint32_t num_ases = 51'757;
  std::uint32_t num_ixps = 322;
  /// Target number of AS-AS edges (hierarchy + peering phases combined).
  std::uint64_t target_as_edges = 347'332;
  /// Target total IXP membership (AS-IXP) edges.
  std::uint64_t target_ixp_memberships = 55'282;
  /// Fraction of ASes eligible to join IXPs (paper: 40.2 %).
  double ixp_participation = 0.402;
  /// Fraction of ASes left outside the giant component. The paper's maximum
  /// connected subgraph holds 51,895 of 52,079 vertices; the 184 stragglers
  /// are what caps saturated connectivity at 99.29 % (= (51895/52079)²).
  double isolated_fraction = 184.0 / 52'079.0;
  /// Probability that a pair of ASes co-located at an IXP realizes a
  /// peering session there (drives the "connections via IXPs" statistic;
  /// calibrated to land near the paper's 292,050).
  double ixp_peering_prob = 0.013;
  /// Fraction of stub ASes in "remote regions": no IXP presence, no dense
  /// peering, single-homed to a uniformly chosen tier-3 provider. They are
  /// the long tail that forces broker sets past ~1,000 members to keep
  /// growing (the paper's 3,540-alliance needed for the last ~14 % of
  /// connectivity).
  double remote_fraction = 0.065;

  double tier1_fraction = 0.0003;   // ~15 tier-1 ASes at full scale
  double tier2_fraction = 0.015;    // regional transit
  double tier3_fraction = 0.10;     // local transit
  // Remaining ASes are stubs.

  /// Type mix for stub ASes (tier 1-3 are always transit/access).
  double stub_content_fraction = 0.12;
  double stub_transit_fraction = 0.08;  // small access networks
  // Remaining stubs are enterprises.

  std::uint64_t seed = 20170614;

  /// Returns a copy with vertex/edge counts scaled by `factor` (>= 1e-4);
  /// keeps minimum viable sizes so tiny scales still produce a connected
  /// hierarchy.
  [[nodiscard]] InternetConfig scaled(double factor) const;

  /// Throws std::invalid_argument if internally inconsistent.
  void validate() const;
};

/// The generated topology. Vertex ids: ASes occupy [0, num_ases), IXPs
/// occupy [num_ases, num_ases + num_ixps).
struct InternetTopology {
  bsr::graph::CsrGraph graph;
  std::vector<NodeMeta> meta;      // size = num_vertices
  EdgeRelations relations;         // aligned with graph
  std::uint32_t num_ases = 0;
  std::uint32_t num_ixps = 0;

  [[nodiscard]] bool is_ixp(bsr::graph::NodeId v) const noexcept {
    return v >= num_ases;
  }
  [[nodiscard]] bsr::graph::NodeId num_vertices() const noexcept {
    return graph.num_vertices();
  }

  /// AS-AS subgraph with IXPs (and their membership edges) removed; vertex
  /// ids are unchanged ("ASes without IXPs" rows of Table 3).
  [[nodiscard]] bsr::graph::CsrGraph as_only_graph() const;

  /// Fraction of ASes with at least one IXP membership edge.
  [[nodiscard]] double ixp_attachment_rate() const;
};

/// Generates a topology; deterministic in config.seed.
[[nodiscard]] InternetTopology make_internet(const InternetConfig& config);

}  // namespace bsr::topology
