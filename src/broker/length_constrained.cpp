#include "broker/length_constrained.hpp"

#include <algorithm>
#include <stdexcept>

#include "broker/dominated.hpp"
#include "broker/path_length.hpp"
#include "graph/bfs.hpp"
#include "graph/sampling.hpp"

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::kUnreachable;
using bsr::graph::NodeId;
using bsr::graph::Rng;

LengthRepairResult repair_path_lengths(const CsrGraph& g, const BrokerSet& b,
                                       Rng& rng, const LengthRepairOptions& options) {
  if (options.epsilon <= 0.0 || options.sources == 0 || options.max_rounds == 0) {
    throw std::invalid_argument("repair_path_lengths: bad options");
  }

  LengthRepairResult result;
  result.brokers = b;

  // Pin one evaluation source set for the whole repair: the deviation is a
  // sampled statistic, and re-sampling each round would let noise mask (or
  // fake) progress. With pinned sources the true deviation is monotone
  // non-increasing as brokers are added.
  const auto eval_sources = bsr::graph::sample_distinct(
      rng, g.num_vertices(),
      static_cast<NodeId>(std::min<std::size_t>(options.sources, g.num_vertices())));
  const auto evaluate = [&]() {
    return compare_path_lengths(g, result.brokers, eval_sources).max_deviation;
  };
  result.initial_deviation = evaluate();
  result.final_deviation = result.initial_deviation;

  bsr::graph::BfsRunner free_runner(g.num_vertices());
  bsr::graph::BfsRunner dom_runner(g.num_vertices());

  for (std::uint32_t round = 0;
       round < options.max_rounds && result.final_deviation > options.epsilon &&
       result.added < options.max_added;
       ++round) {
    ++result.rounds;
    // Find inflated pairs: free distance finite, dominating distance larger
    // (or absent). Sample sources; for each, pick the worst-inflated target.
    const auto filter = dominated_edge_filter(result.brokers);
    const auto sources = bsr::graph::sample_distinct(
        rng, g.num_vertices(),
        static_cast<NodeId>(std::min<std::size_t>(options.pairs_per_round,
                                                  g.num_vertices())));
    for (const NodeId src : sources) {
      if (result.added >= options.max_added) break;
      const auto free_dist = free_runner.run(g, src);
      std::vector<std::uint32_t> free_copy(free_dist.begin(), free_dist.end());
      const auto dom_dist = dom_runner.run_filtered(g, src, filter);

      NodeId worst = kUnreachable;
      std::int64_t worst_inflation = 0;
      for (NodeId v = 0; v < g.num_vertices(); ++v) {
        if (v == src || free_copy[v] == kUnreachable) continue;
        const std::int64_t dominated =
            dom_dist[v] == kUnreachable ? g.num_vertices() : dom_dist[v];
        const std::int64_t inflation = dominated - static_cast<std::int64_t>(free_copy[v]);
        if (inflation > worst_inflation) {
          worst_inflation = inflation;
          worst = v;
        }
      }
      if (worst == kUnreachable) continue;

      // Promote alternate interior vertices of the free shortest path so the
      // whole path becomes dominating.
      const auto path = bsr::graph::bfs_shortest_path(g, src, worst);
      for (std::size_t i = 0; i + 1 < path.size() && result.added < options.max_added;
           ++i) {
        if (!result.brokers.dominates_edge(path[i], path[i + 1])) {
          if (result.brokers.add(path[i + 1])) ++result.added;
        }
      }
    }
    result.final_deviation = evaluate();
  }

  result.feasible = result.final_deviation <= options.epsilon;
  return result;
}

}  // namespace bsr::broker
