// Compressed-sparse-row (CSR) representation of an undirected graph.
//
// The AS-level Internet graph we study has ~52k vertices and ~650k undirected
// edges; CSR keeps the whole structure in two flat arrays so BFS/greedy sweeps
// stay cache-friendly. Vertices are dense 32-bit ids [0, num_vertices).
//
// The graph is immutable once built; use GraphBuilder to construct one.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/check.hpp"

namespace bsr::graph {

using NodeId = std::uint32_t;

/// Sentinel distance/id for unreachable or unset vertices.
inline constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();

/// An undirected edge as a canonical (min, max) vertex pair.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;

  friend constexpr bool operator==(const Edge&, const Edge&) = default;
  friend constexpr auto operator<=>(const Edge&, const Edge&) = default;
};

/// Immutable undirected graph in CSR form. Each undirected edge {u, v}
/// appears twice in the adjacency array: once under u and once under v.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds from offsets/adjacency arrays. Prefer GraphBuilder::build().
  /// Throws std::invalid_argument if the arrays are not a valid CSR
  /// (offsets non-monototic, neighbor ids out of range, ...).
  CsrGraph(std::vector<std::uint64_t> offsets, std::vector<NodeId> adjacency);

  [[nodiscard]] NodeId num_vertices() const noexcept {
    return offsets_.empty() ? 0 : static_cast<NodeId>(offsets_.size() - 1);
  }

  /// Number of undirected edges (each counted once).
  [[nodiscard]] std::uint64_t num_edges() const noexcept { return adjacency_.size() / 2; }

  [[nodiscard]] std::uint32_t degree(NodeId v) const noexcept {
    BSR_DCHECK(v < num_vertices());
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbors of v, sorted ascending, no duplicates, no self-loops.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const noexcept {
    BSR_DCHECK(v < num_vertices());
    return {adjacency_.data() + offsets_[v], adjacency_.data() + offsets_[v + 1]};
  }

  /// True iff the (sorted) adjacency of u contains v. O(log deg(u)).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  /// All undirected edges, canonical (u < v), sorted. O(|E|).
  [[nodiscard]] std::vector<Edge> edges() const;

  [[nodiscard]] bool empty() const noexcept { return num_vertices() == 0; }

 private:
  std::vector<std::uint64_t> offsets_;  // size num_vertices + 1
  std::vector<NodeId> adjacency_;       // size 2 * num_edges
};

}  // namespace bsr::graph
