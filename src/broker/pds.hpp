// The Path-Dominating Set decision problem (Problem 1, §4.1).
//
// PDS asks: is there a B ⊆ V with |B| <= k giving a B-dominating path
// between EVERY pair u, v ∈ V? It is NP-complete (Lemma 1, by reduction
// from vertex cover), and Theorem 1 connects it to the MCBG optimization:
// a PDS solution is an MCBG solution with full coverage.
//
// We provide: an exact exponential decider for small graphs, a fast
// sufficient check for a candidate set, and a greedy upper bound whose
// success proves YES instances constructively (failure is inconclusive —
// the problem is NP-complete, after all).
#pragma once

#include <cstdint>
#include <optional>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"

namespace bsr::broker {

/// True iff B gives a dominating path between every pair of vertices of g:
/// B must cover all of V (f(B) = |V|) and keep one dominated component.
[[nodiscard]] bool is_path_dominating_set(const bsr::graph::CsrGraph& g,
                                          const BrokerSet& b);

/// Exact decision for |V| <= 22: returns a witness set if one of size <= k
/// exists, std::nullopt otherwise. Exponential — tests/small graphs only.
[[nodiscard]] std::optional<BrokerSet> solve_pds_exact(const bsr::graph::CsrGraph& g,
                                                       std::uint32_t k);

/// Constructive upper bound: runs the MaxSG greedy until the whole graph is
/// path-dominated (or the budget k is exhausted). Returns the witness on
/// success. A YES answer is definitive; nullopt only means "greedy needed
/// more than k".
[[nodiscard]] std::optional<BrokerSet> solve_pds_greedy(const bsr::graph::CsrGraph& g,
                                                        std::uint32_t k);

}  // namespace bsr::broker
