#include "econ/bargaining.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bsr::econ {
namespace {

TEST(GoldenSection, FindsParabolaMaximum) {
  const double x = golden_section_max([](double t) { return -(t - 2.5) * (t - 2.5); },
                                      0.0, 10.0);
  EXPECT_NEAR(x, 2.5, 1e-6);
}

TEST(GoldenSection, HandlesBoundaryMaximum) {
  const double x = golden_section_max([](double t) { return t; }, 0.0, 1.0);
  EXPECT_NEAR(x, 1.0, 1e-6);
}

TEST(GoldenSection, RejectsInvertedInterval) {
  EXPECT_THROW(golden_section_max([](double) { return 0.0; }, 1.0, 0.0),
               std::invalid_argument);
}

TEST(Bargaining, ClosedFormMatchesNumericalOptimum) {
  BargainingConfig config;
  config.broker_price = 2.0;
  config.transit_cost = 0.1;
  config.beta = 4;  // h = 2
  const auto solution = solve_bargaining(config);
  ASSERT_TRUE(solution.feasible);
  EXPECT_NEAR(solution.price, 1.0, 1e-9);  // p* = p_B / h

  const double h = config.employees();
  const auto nash_product = [&](double p) {
    return (p - config.transit_cost) *
           (2.0 * config.broker_price - h * p - h * config.transit_cost);
  };
  const double numeric = golden_section_max(
      nash_product, config.transit_cost, 2.0 * config.broker_price / h);
  EXPECT_NEAR(solution.price, numeric, 1e-5);
}

TEST(Bargaining, BothSidesGainAtSolution) {
  BargainingConfig config;
  config.broker_price = 1.5;
  config.transit_cost = 0.2;
  const auto solution = solve_bargaining(config);
  ASSERT_TRUE(solution.feasible);
  EXPECT_GT(solution.u_employee, 0.0);
  EXPECT_GT(solution.u_broker, 0.0);
  EXPECT_NEAR(solution.nash_product, solution.u_employee * solution.u_broker, 1e-12);
}

TEST(Bargaining, InfeasibleWhenPriceTooLow) {
  BargainingConfig config;
  config.broker_price = 0.05;  // below h*c = 2*0.05 = 0.1
  config.transit_cost = 0.05;
  const auto solution = solve_bargaining(config);
  EXPECT_FALSE(solution.feasible);
}

TEST(Bargaining, EmployeesFromBeta) {
  BargainingConfig config;
  config.beta = 4;
  EXPECT_EQ(config.employees(), 2u);
  config.beta = 5;
  EXPECT_EQ(config.employees(), 3u);
  config.beta = 1;
  EXPECT_EQ(config.employees(), 1u);
}

TEST(Bargaining, MoreEmployeesLowerPrice) {
  BargainingConfig few;
  few.broker_price = 3.0;
  few.beta = 2;  // h = 1
  BargainingConfig many = few;
  many.beta = 8;  // h = 4
  const auto a = solve_bargaining(few);
  const auto b = solve_bargaining(many);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_GT(a.price, b.price);
}

TEST(Bargaining, RejectsBadInputs) {
  BargainingConfig config;
  config.broker_price = 0.0;
  EXPECT_THROW(solve_bargaining(config), std::invalid_argument);
  config = BargainingConfig{};
  config.transit_cost = -1.0;
  EXPECT_THROW(solve_bargaining(config), std::invalid_argument);
  config = BargainingConfig{};
  config.beta = 0;
  EXPECT_THROW(solve_bargaining(config), std::invalid_argument);
}

}  // namespace
}  // namespace bsr::econ
