#include "broker/local_search.hpp"

#include <algorithm>
#include <vector>

#include "broker/dominated.hpp"
#include "graph/degree_stats.hpp"
#include "graph/engine.hpp"
#include "graph/rollback_union_find.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;

namespace engine = bsr::graph::engine;

LocalSearchResult improve_by_swaps(const CsrGraph& g, const BrokerSet& b,
                                   const LocalSearchOptions& options) {
  BSR_SPAN("broker.local_search");
  LocalSearchResult result;
  result.brokers = b;
  result.initial_connectivity = saturated_connectivity(g, b);
  result.final_connectivity = result.initial_connectivity;
  if (b.empty() || b.size() >= g.num_vertices()) return result;

  // Global replacement candidates: highest-degree non-brokers.
  const auto degree_order = bsr::graph::vertices_by_degree_desc(g);

  const NodeId n = g.num_vertices();
  const double total_pairs = static_cast<double>(n) * (n - 1.0) / 2.0;

  // Swap evaluation via checkpoint/rollback: per removal candidate the base
  // union-find (members minus the removed broker) is built once; each
  // replacement candidate is then a unite_star + O(1) pair-count read +
  // rollback — O(deg(in) log n) instead of a full O(Σ broker deg) rebuild.
  // Connectivity is a pure partition statistic (exact integer pair count),
  // so build order doesn't matter and the values match the legacy
  // full-rebuild evaluation bit-for-bit.
  bsr::graph::RollbackUnionFind uf(n);

  std::vector<NodeId> members(result.brokers.members().begin(),
                              result.brokers.members().end());
  bool improved = true;
  while (improved && result.swaps_applied < options.max_swaps) {
    improved = false;
    // One pass applies every first-improvement swap it finds (no restart —
    // a clean pass, not a clean restart, certifies local optimality).
    for (std::size_t out_idx = 0;
         out_idx < members.size() && result.swaps_applied < options.max_swaps;
         ++out_idx) {
      const NodeId removed = members[out_idx];

      // Candidate pool: half top-degree non-brokers, half the removed
      // broker's highest-degree neighbors (they can re-dominate its edges).
      // Hard-capped at candidate_pool — hub brokers have thousands of
      // neighbors and a full scan would make each pass quadratic.
      std::vector<NodeId> candidates;
      candidates.reserve(options.candidate_pool);
      const std::size_t global_quota = options.candidate_pool / 2;
      for (const NodeId v : degree_order) {
        if (candidates.size() >= global_quota) break;
        if (!result.brokers.contains(v)) candidates.push_back(v);
      }
      std::vector<NodeId> neighbor_pool;
      for (const NodeId v : g.neighbors(removed)) {
        if (!result.brokers.contains(v)) neighbor_pool.push_back(v);
      }
      std::sort(neighbor_pool.begin(), neighbor_pool.end(),
                [&g](NodeId a, NodeId b2) {
                  if (g.degree(a) != g.degree(b2)) return g.degree(a) > g.degree(b2);
                  return a < b2;
                });
      for (const NodeId v : neighbor_pool) {
        if (candidates.size() >= options.candidate_pool) break;
        candidates.push_back(v);
      }

      uf.reset(n);
      for (const NodeId m : members) {
        if (m != removed) engine::unite_star(g, uf, m, engine::AllEdges{});
      }
      const auto base = uf.checkpoint();

      for (const NodeId in : candidates) {
        if (in == removed) continue;
        BSR_COUNT(LocalSearchProbes);
        engine::unite_star(g, uf, in, engine::AllEdges{});
        const double connectivity =
            static_cast<double>(uf.connected_pairs()) / total_pairs;
        uf.rollback(base);
        if (connectivity > result.final_connectivity + options.min_gain) {
          members[out_idx] = in;
          BrokerSet next(n);
          for (const NodeId m : members) next.add(m);
          result.brokers = std::move(next);
          result.final_connectivity = connectivity;
          ++result.swaps_applied;
          BSR_COUNT(LocalSearchSwaps);
          improved = true;
          break;  // next out_idx; the pass continues with the updated set
        }
      }
    }
  }
  return result;
}

}  // namespace bsr::broker
