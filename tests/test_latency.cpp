#include "sim/latency.hpp"

#include <gtest/gtest.h>

#include "broker/maxsg.hpp"
#include "broker/verify.hpp"

namespace bsr::sim {
namespace {

using bsr::broker::BrokerSet;
using bsr::graph::NodeId;
using bsr::graph::Rng;

topology::InternetTopology small_topo(std::uint64_t seed) {
  auto cfg = topology::InternetConfig{}.scaled(0.02);
  cfg.seed = seed;
  return topology::make_internet(cfg);
}

TEST(LatencyModel, SymmetricAndPositive) {
  const auto topo = small_topo(1);
  Rng rng(2);
  const LatencyModel model(topo, {}, rng);
  std::size_t checked = 0;
  for (NodeId u = 0; u < topo.num_vertices() && checked < 500; ++u) {
    for (const NodeId v : topo.graph.neighbors(u)) {
      EXPECT_GT(model.latency(u, v), 0.0);
      EXPECT_DOUBLE_EQ(model.latency(u, v), model.latency(v, u));
      ++checked;
    }
  }
  EXPECT_GT(checked, 100u);
}

TEST(LatencyModel, TierStructureRespected) {
  const auto topo = small_topo(3);
  LatencyModelConfig config;
  config.jitter = 0.0;  // deterministic bases
  Rng rng(4);
  const LatencyModel model(topo, config, rng);
  // Find a core (tier-1/tier-1-ish) edge and a stub edge; the core edge
  // must carry the long-haul base.
  double core_latency = 0.0, stub_latency = 0.0;
  for (NodeId u = 0; u < topo.num_vertices(); ++u) {
    for (const NodeId v : topo.graph.neighbors(u)) {
      if (u >= v) continue;
      const bool u_t1 = topo.meta[u].tier == topology::Tier::kTier1;
      const bool v_stub = !topo.is_ixp(v) && topo.meta[v].tier == topology::Tier::kStub;
      if (u_t1) core_latency = model.latency(u, v);
      if (v_stub && !u_t1 && !topo.is_ixp(u) &&
          topo.meta[u].tier == topology::Tier::kStub) {
        stub_latency = model.latency(u, v);
      }
    }
  }
  ASSERT_GT(core_latency, 0.0);
  if (stub_latency > 0.0) EXPECT_GT(core_latency, stub_latency);
}

TEST(LatencyModel, PathLatencySumsHops) {
  const auto topo = small_topo(5);
  LatencyModelConfig config;
  config.jitter = 0.0;
  Rng rng(6);
  const LatencyModel model(topo, config, rng);
  // Any 2-hop path via a common neighbor.
  const NodeId u = 0;
  const NodeId mid = topo.graph.neighbors(u)[0];
  const NodeId w = topo.graph.neighbors(mid)[0];
  const std::vector<NodeId> path{u, mid, w};
  EXPECT_DOUBLE_EQ(model.path_latency(path),
                   model.latency(u, mid) + model.latency(mid, w));
}

TEST(LatencyRouting, FreePlaneBeatsOrMatchesDominated) {
  const auto topo = small_topo(7);
  Rng rng(8);
  const LatencyModel model(topo, {}, rng);
  const auto brokers = bsr::broker::maxsg(topo.graph, 20).brokers;
  int compared = 0;
  for (NodeId dst = 100; dst < 160 && compared < 20; dst += 3) {
    const auto free_route = route_min_latency(topo.graph, model, 50, dst, nullptr);
    const auto brokered = route_min_latency(topo.graph, model, 50, dst, &brokers);
    if (!free_route.reachable() || !brokered.reachable()) continue;
    ++compared;
    EXPECT_LE(free_route.latency_ms, brokered.latency_ms + 1e-9);
    EXPECT_TRUE(bsr::broker::is_dominating_path(topo.graph, brokers, brokered.path));
    EXPECT_NEAR(brokered.latency_ms, model.path_latency(brokered.path), 1e-9);
  }
  EXPECT_GT(compared, 5);
}

TEST(LatencyRouting, UnreachableHandled) {
  const auto topo = small_topo(9);
  Rng rng(10);
  const LatencyModel model(topo, {}, rng);
  const BrokerSet none(topo.num_vertices());
  const auto route = route_min_latency(topo.graph, model, 0, 1, &none);
  // With no brokers the dominated plane is empty (unless src-dst adjacent
  // and... no: domination needs a broker endpoint, so no edge qualifies).
  EXPECT_FALSE(route.reachable());
  const auto bad = route_min_latency(topo.graph, model, 0, topo.num_vertices(), nullptr);
  EXPECT_FALSE(bad.reachable());
}

TEST(LatencyModel, RejectsNegativeJitter) {
  const auto topo = small_topo(11);
  Rng rng(12);
  LatencyModelConfig config;
  config.jitter = -0.1;
  EXPECT_THROW(LatencyModel(topo, config, rng), std::invalid_argument);
}

}  // namespace
}  // namespace bsr::sim
