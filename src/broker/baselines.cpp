#include "broker/baselines.hpp"

#include <numeric>

#include "graph/degree_stats.hpp"
#include "graph/sampling.hpp"

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::graph::Rng;

BrokerSet sc_dominating_set(const CsrGraph& g, Rng& rng) {
  const NodeId n = g.num_vertices();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  bsr::graph::shuffle(rng, order);

  BrokerSet brokers(n);
  std::vector<bool> dominated(n, false);
  for (const NodeId v : order) {
    if (dominated[v]) continue;
    brokers.add(v);
    dominated[v] = true;
    for (const NodeId w : g.neighbors(v)) dominated[w] = true;
  }
  return brokers;
}

BrokerSet db_top_degree(const CsrGraph& g, std::uint32_t k) {
  const auto order = bsr::graph::vertices_by_degree_desc(g);
  BrokerSet brokers(g.num_vertices());
  for (std::size_t i = 0; i < std::min<std::size_t>(k, order.size()); ++i) {
    brokers.add(order[i]);
  }
  return brokers;
}

BrokerSet prb_top_pagerank(const CsrGraph& g, std::uint32_t k,
                           const bsr::graph::PageRankOptions& opts) {
  const auto order = bsr::graph::vertices_by_pagerank_desc(g, opts);
  BrokerSet brokers(g.num_vertices());
  for (std::size_t i = 0; i < std::min<std::size_t>(k, order.size()); ++i) {
    brokers.add(order[i]);
  }
  return brokers;
}

BrokerSet ixpb(const topology::InternetTopology& topo, std::uint32_t min_degree) {
  BrokerSet brokers(topo.num_vertices());
  for (NodeId v = topo.num_ases; v < topo.num_vertices(); ++v) {
    if (topo.graph.degree(v) >= min_degree) brokers.add(v);
  }
  return brokers;
}

BrokerSet tier1_only(const topology::InternetTopology& topo) {
  BrokerSet brokers(topo.num_vertices());
  for (NodeId v = 0; v < topo.num_ases; ++v) {
    if (topo.meta[v].tier == topology::Tier::kTier1) brokers.add(v);
  }
  return brokers;
}

}  // namespace bsr::broker
