#include "econ/stackelberg.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bsr::econ {
namespace {

CustomerParams default_customer() {
  CustomerParams p;
  p.v_scale = 1.0;
  p.v_curvature = 4.0;
  p.a0 = 0.1;
  p.a_hat = 0.5;
  p.p_peak = 0.2;
  return p;
}

TEST(CustomerModel, IncomeConcaveIncreasingNormalized) {
  const auto p = default_customer();
  EXPECT_DOUBLE_EQ(customer_income(p, 0.0), 0.0);
  EXPECT_NEAR(customer_income(p, 1.0), p.v_scale, 1e-12);
  // Increasing.
  double prev = -1.0;
  for (double a = 0.0; a <= 1.0; a += 0.1) {
    const double v = customer_income(p, a);
    EXPECT_GT(v, prev);
    prev = v;
  }
  // Concave: midpoint above chord.
  EXPECT_GT(customer_income(p, 0.5),
            0.5 * (customer_income(p, 0.0) + customer_income(p, 1.0)));
}

TEST(CustomerModel, LegacyPaymentShape) {
  const auto p = default_customer();
  EXPECT_NEAR(customer_legacy_payment(p, 1.0), 0.0, 1e-12);
  EXPECT_NEAR(customer_legacy_payment(p, p.a_hat), p.p_peak, 1e-12);
  // Increasing below the peak, decreasing above.
  EXPECT_LT(customer_legacy_payment(p, 0.2), customer_legacy_payment(p, 0.4));
  EXPECT_GT(customer_legacy_payment(p, 0.6), customer_legacy_payment(p, 0.9));
}

TEST(CustomerModel, PeakAtOneDegeneratesGracefully) {
  auto p = default_customer();
  p.a_hat = 1.0;
  EXPECT_DOUBLE_EQ(customer_legacy_payment(p, 0.5), 0.0);
}

TEST(BestResponse, FreeServiceMeansFullAdoption) {
  // With no legacy-payment pull (p_peak = 0), free brokered routing means
  // full adoption; with the default peaked P_i the optimum is interior but
  // still beyond the peak.
  auto p = default_customer();
  p.p_peak = 0.0;
  EXPECT_NEAR(best_response(p, 0.0), 1.0, 1e-6);
  const auto peaked = default_customer();
  const double a = best_response(peaked, 0.0);
  EXPECT_GT(a, peaked.a_hat);
  EXPECT_LT(a, 1.0 + 1e-9);
}

TEST(BestResponse, ExorbitantPriceMeansStatusQuo) {
  const auto p = default_customer();
  EXPECT_NEAR(best_response(p, 100.0), p.a0, 1e-6);
}

TEST(BestResponse, MonotoneNonIncreasingInPrice) {
  const auto p = default_customer();
  double prev = 2.0;
  for (double price = 0.0; price <= 3.0; price += 0.25) {
    const double a = best_response(p, price);
    EXPECT_LE(a, prev + 1e-9) << "price " << price;
    EXPECT_GE(a, p.a0 - 1e-9);
    EXPECT_LE(a, 1.0 + 1e-9);
    prev = a;
  }
}

TEST(BestResponse, IsArgmaxOfUtility) {
  const auto p = default_customer();
  for (const double price : {0.3, 0.8, 1.5}) {
    const double a_star = best_response(p, price);
    const double u_star = customer_utility(p, a_star, price);
    for (double a = p.a0; a <= 1.0; a += 0.01) {
      EXPECT_LE(customer_utility(p, a, price), u_star + 1e-6)
          << "price " << price << " a " << a;
    }
  }
}

TEST(BestResponse, RejectsBadA0) {
  auto p = default_customer();
  p.a0 = 1.5;
  EXPECT_THROW(best_response(p, 1.0), std::invalid_argument);
}

TEST(Stackelberg, EquilibriumExistsAndIsConsistent) {
  StackelbergConfig config;
  for (int i = 0; i < 20; ++i) {
    auto c = default_customer();
    c.v_scale = 0.5 + 0.05 * i;
    config.customers.push_back(c);
  }
  const auto eq = solve_stackelberg(config);
  EXPECT_GE(eq.price, 0.0);
  EXPECT_LE(eq.price, config.max_price);
  EXPECT_EQ(eq.adoption.size(), config.customers.size());
  // Equilibrium adoption must equal each customer's best response.
  for (std::size_t i = 0; i < config.customers.size(); ++i) {
    EXPECT_NEAR(eq.adoption[i], best_response(config.customers[i], eq.price), 1e-6);
  }
  EXPECT_NEAR(eq.mean_adoption, eq.total_adoption / config.customers.size(), 1e-12);
}

TEST(Stackelberg, LeaderPriceBeatsArbitraryPrices) {
  StackelbergConfig config;
  for (int i = 0; i < 10; ++i) config.customers.push_back(default_customer());
  const auto eq = solve_stackelberg(config);
  const auto utility_at = [&](double price) {
    double alpha = 0.0;
    for (const auto& c : config.customers) alpha += best_response(c, price);
    return 2.0 * price * alpha - broker_cost(config.cost, alpha);
  };
  for (double price = 0.1; price <= config.max_price; price += 0.37) {
    EXPECT_GE(eq.broker_utility + 1e-4, utility_at(price)) << "price " << price;
  }
}

TEST(Stackelberg, HighValueCustomersAdoptFully) {
  // The paper's qualitative claim: when the QoS income dominates, a_i -> 1.
  StackelbergConfig config;
  for (int i = 0; i < 10; ++i) {
    auto c = default_customer();
    c.v_scale = 30.0;  // users pay handsomely for QoS
    config.customers.push_back(c);
  }
  const auto eq = solve_stackelberg(config);
  EXPECT_EQ(eq.full_adopters, config.customers.size());
  EXPECT_NEAR(eq.mean_adoption, 1.0, 1e-4);
}

TEST(Stackelberg, RejectsDegenerateInputs) {
  StackelbergConfig empty;
  EXPECT_THROW(solve_stackelberg(empty), std::invalid_argument);
  StackelbergConfig bad_price;
  bad_price.customers.push_back(default_customer());
  bad_price.max_price = 0.0;
  EXPECT_THROW(solve_stackelberg(bad_price), std::invalid_argument);
}

TEST(BrokerCost, IncreasingInAlpha) {
  BrokerCostParams c;
  double prev = -1.0;
  for (double alpha = 0.0; alpha < 10.0; alpha += 0.5) {
    const double value = broker_cost(c, alpha);
    EXPECT_GT(value, prev);
    prev = value;
  }
}

}  // namespace
}  // namespace bsr::econ
