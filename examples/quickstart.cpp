// Quickstart: select a broker set on a small AS topology and verify the
// dominating-path guarantee.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Walks through the core public API:
//   1. build a graph (GraphBuilder -> CsrGraph),
//   2. select brokers (maxsg / greedy_mcb / mcbg_approx),
//   3. evaluate coverage f(B) and saturated E2E connectivity,
//   4. check the B-dominating-path invariant,
//   5. route a flow over the dominated plane.
#include <iostream>

#include "broker/coverage.hpp"
#include "broker/dominated.hpp"
#include "broker/maxsg.hpp"
#include "broker/mcbg_approx.hpp"
#include "broker/verify.hpp"
#include "graph/graph_builder.hpp"
#include "sim/router.hpp"

int main() {
  using bsr::graph::NodeId;

  // A toy inter-domain topology: a provider core (0-3), regional ISPs
  // (4-7), and stub networks (8-15).
  bsr::graph::GraphBuilder builder(16);
  // Core clique.
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) builder.add_edge(u, v);
  }
  // Each regional ISP buys transit from two core providers.
  for (NodeId r = 4; r < 8; ++r) {
    builder.add_edge(r, r % 4);
    builder.add_edge(r, (r + 1) % 4);
  }
  // Stubs single-home to a regional ISP.
  for (NodeId s = 8; s < 16; ++s) builder.add_edge(s, 4 + (s % 4));
  const auto graph = builder.build();
  std::cout << "graph: " << graph.num_vertices() << " vertices, "
            << graph.num_edges() << " edges\n";

  // Select a broker set with the MaxSubGraph-Greedy heuristic (Algorithm 3).
  const auto selection = bsr::broker::maxsg(graph, /*k=*/4);
  const auto& brokers = selection.brokers;
  std::cout << "MaxSG picked " << brokers.size() << " brokers:";
  for (const NodeId b : brokers.members()) std::cout << ' ' << b;
  std::cout << "\ncoverage f(B) = |B ∪ N(B)| = " << selection.coverage << " of "
            << graph.num_vertices() << '\n';

  // Saturated E2E connectivity: fraction of vertex pairs joined by a
  // B-dominating path (every hop supervised by a broker endpoint).
  std::cout << "saturated E2E connectivity = "
            << bsr::broker::saturated_connectivity(graph, brokers) * 100.0
            << " %\n";

  // The MCBG feasibility constraint: every covered pair shares a dominating
  // path.
  std::cout << "pairwise dominating-path guarantee: "
            << (bsr::broker::has_pairwise_guarantee(graph, brokers) ? "holds"
                                                                    : "violated")
            << '\n';

  // Route one flow on the brokered plane and validate the path.
  bsr::sim::Router router(graph, brokers);
  const auto route = router.route_dominated(8, 15);
  if (route.reachable()) {
    std::cout << "dominated route 8 -> 15 (" << route.hops() << " hops):";
    for (const NodeId v : route.path) std::cout << ' ' << v;
    std::cout << "\nevery hop broker-supervised: "
              << (bsr::broker::is_dominating_path(graph, brokers, route.path)
                      ? "yes"
                      : "no")
              << '\n';
  } else {
    std::cout << "8 -> 15 unreachable on the dominated plane\n";
  }

  // Compare with Algorithm 2 (the approximation with provable ratio).
  const auto approx = bsr::broker::mcbg_approx(graph, 4);
  std::cout << "Algorithm 2 at the same budget: " << approx.brokers.size()
            << " brokers (" << approx.preselected << " pre-selected + "
            << approx.stitching << " stitching), coverage " << approx.coverage
            << '\n';
  return 0;
}
