// Ablation: are the headline results an artifact of generator tuning?
//
// The synthetic topology substitutes for the paper's proprietary 2014
// dataset (see DESIGN.md). This ablation perturbs the two calibration knobs
// that shape the coverage curve — the remote-stub fraction (tail length)
// and the hub-peering mixture is fixed in code, so we vary remote_fraction
// and the random seed — and re-measures the Table-1 anchors. The claim
// survives if "a small broker set covers most pairs" holds across the
// perturbations, even as exact percentages move.
#include <iostream>

#include "bench_common.hpp"
#include "broker/dominated.hpp"
#include "broker/maxsg.hpp"

namespace {

struct Anchors {
  double at_100 = 0.0;
  double at_1000 = 0.0;
  std::size_t saturation_size = 0;
  double saturated = 0.0;
};

Anchors measure(const bsr::topology::InternetConfig& config,
                const bsr::io::ExperimentEnv& env) {
  const auto topo = bsr::topology::make_internet(config);
  const auto& g = topo.graph;
  const auto result = bsr::broker::maxsg(g, env.scaled(3540, 8));
  Anchors out;
  out.at_100 = bsr::broker::saturated_connectivity(
      g, result.brokers.prefix(env.scaled(100, 2)));
  out.at_1000 = bsr::broker::saturated_connectivity(
      g, result.brokers.prefix(env.scaled(1000, 4)));
  out.saturation_size = result.brokers.size();
  out.saturated = bsr::broker::saturated_connectivity(g, result.brokers);
  return out;
}

}  // namespace

int main() {
  const auto env = bsr::io::experiment_env();
  bsr::io::print_banner(std::cout, "Ablation: topology-generator sensitivity");
  std::cout << "config: " << bsr::io::describe(env) << "\n";
  // Sensitivity runs are MaxSG-heavy; evaluate at up to 40 % of full scale.
  const double scale = std::min(env.scale, 0.4);
  auto base = bsr::topology::InternetConfig{}.scaled(scale);
  base.seed = env.seed;

  bsr::io::Table table({"variant", "conn@100", "conn@1000", "alliance size",
                        "saturated"});
  const auto row = [&](const std::string& name,
                       const bsr::topology::InternetConfig& config) {
    const auto anchors = measure(config, env);
    table.row()
        .cell(name)
        .percent(anchors.at_100)
        .percent(anchors.at_1000)
        .cell(static_cast<std::uint64_t>(anchors.saturation_size))
        .percent(anchors.saturated);
  };

  row("calibrated (paper anchors 53/85/99)", base);

  auto seed_variant = base;
  seed_variant.seed = base.seed * 7919 + 13;
  row("different random seed", seed_variant);

  auto no_tail = base;
  no_tail.remote_fraction = 0.0;
  row("no remote-stub tail", no_tail);

  auto long_tail = base;
  long_tail.remote_fraction = 0.13;
  row("doubled remote-stub tail", long_tail);

  auto sparse_ixps = base;
  sparse_ixps.target_ixp_memberships = base.target_ixp_memberships / 2;
  sparse_ixps.ixp_participation = 0.2;
  row("half the IXP ecosystem", sparse_ixps);

  auto denser = base;
  denser.target_as_edges = static_cast<std::uint64_t>(base.target_as_edges * 1.25);
  row("+25% AS-AS edges", denser);

  table.print(std::cout);
  std::cout << "(robustness: the ordering and the 'small set covers most "
               "pairs' claim hold across perturbations; only the saturation "
               "size tracks the tail knob — as the paper's marginal-effect "
               "discussion predicts)\n";
  return 0;
}
