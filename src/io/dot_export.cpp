#include "io/dot_export.hpp"

#include <algorithm>
#include <ostream>
#include <vector>

#include "graph/degree_stats.hpp"
#include "graph/sampling.hpp"

namespace bsr::io {

using bsr::graph::NodeId;

namespace {

const char* fill_color(bsr::topology::NodeType type) {
  switch (type) {
    case bsr::topology::NodeType::kTransitAccess: return "#6baed6";  // blue
    case bsr::topology::NodeType::kContent: return "#74c476";        // green
    case bsr::topology::NodeType::kEnterprise: return "#fdae6b";     // orange
    case bsr::topology::NodeType::kIxp: return "#9e9ac8";            // purple
  }
  return "#cccccc";
}

void write_node(std::ostream& os, const bsr::topology::InternetTopology& topo,
                const bsr::broker::BrokerSet* brokers, NodeId v,
                const DotStyle& style) {
  os << "  n" << v << " [";
  if (style.color_by_type) {
    os << "style=filled,fillcolor=\"" << fill_color(topo.meta[v].type) << "\",";
  }
  if (style.highlight_brokers && brokers != nullptr && brokers->contains(v)) {
    os << "shape=doublecircle,penwidth=2,color=red,";
  } else {
    os << "shape=point,";
  }
  os << "label=\"\"];\n";
}

void write_header(std::ostream& os, const DotStyle& style) {
  os << "graph brokerset {\n"
     << "  layout=" << style.layout << ";\n"
     << "  overlap=false;\n"
     << "  node [width=0.05,height=0.05];\n"
     << "  edge [color=\"#00000020\"];\n";
}

}  // namespace

void write_dot(std::ostream& os, const bsr::topology::InternetTopology& topo,
               const bsr::broker::BrokerSet* brokers, const DotStyle& style) {
  write_header(os, style);
  for (NodeId v = 0; v < topo.num_vertices(); ++v) {
    write_node(os, topo, brokers, v, style);
  }
  for (NodeId u = 0; u < topo.num_vertices(); ++u) {
    for (const NodeId v : topo.graph.neighbors(u)) {
      if (u < v) os << "  n" << u << " -- n" << v << ";\n";
    }
  }
  os << "}\n";
}

std::size_t write_dot_sample(std::ostream& os,
                             const bsr::topology::InternetTopology& topo,
                             const bsr::broker::BrokerSet* brokers,
                             std::size_t hubs, std::size_t ring,
                             bsr::graph::Rng& rng, const DotStyle& style) {
  const NodeId n = topo.num_vertices();
  std::vector<bool> selected(n, false);

  const auto order = bsr::graph::vertices_by_degree_desc(topo.graph);
  for (std::size_t i = 0; i < std::min<std::size_t>(hubs, order.size()); ++i) {
    selected[order[i]] = true;
  }
  // Ring sample: uniform draws skew low-degree on a heavy-tailed graph.
  std::size_t added = 0;
  std::uint64_t guard = 0;
  while (added < ring && guard < 50ull * n) {
    ++guard;
    const auto v = static_cast<NodeId>(rng.uniform(n));
    if (!selected[v]) {
      selected[v] = true;
      ++added;
    }
  }

  write_header(os, style);
  std::size_t exported = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (!selected[v]) continue;
    write_node(os, topo, brokers, v, style);
    ++exported;
  }
  for (NodeId u = 0; u < n; ++u) {
    if (!selected[u]) continue;
    for (const NodeId v : topo.graph.neighbors(u)) {
      if (u < v && selected[v]) os << "  n" << u << " -- n" << v << ";\n";
    }
  }
  os << "}\n";
  return exported;
}

}  // namespace bsr::io
