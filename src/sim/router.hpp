// Route computation: BGP-like shortest paths vs broker-dominated paths.
//
// The simulator contrasts two planes:
//   * the "free" plane — shortest AS path, as BGP's hop-count-ish decision
//     process would produce (no QoS control beyond the first hop);
//   * the "brokered" plane — shortest B-dominating path, where every hop is
//     supervised by a broker endpoint and thus QoS-controllable.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "broker/broker_set.hpp"
#include "graph/bfs.hpp"
#include "graph/csr_graph.hpp"

namespace bsr::sim {

struct Route {
  std::vector<bsr::graph::NodeId> path;  // src..dst; empty = unreachable
  [[nodiscard]] bool reachable() const noexcept { return !path.empty(); }
  [[nodiscard]] std::uint32_t hops() const noexcept {
    return path.empty() ? 0 : static_cast<std::uint32_t>(path.size() - 1);
  }
};

/// Reusable router bound to one graph + broker set.
class Router {
 public:
  Router(const bsr::graph::CsrGraph& g, const bsr::broker::BrokerSet& brokers);

  /// Shortest path in the full graph (the BGP-like reference).
  [[nodiscard]] Route route_free(bsr::graph::NodeId src, bsr::graph::NodeId dst);

  /// Shortest B-dominating path (every hop has a broker endpoint).
  [[nodiscard]] Route route_dominated(bsr::graph::NodeId src, bsr::graph::NodeId dst);

  /// Hop inflation of the brokered route vs the free route for one pair;
  /// nullopt when either plane is unreachable.
  [[nodiscard]] std::optional<std::uint32_t> stretch(bsr::graph::NodeId src,
                                                     bsr::graph::NodeId dst);

 private:
  Route route_impl(bsr::graph::NodeId src, bsr::graph::NodeId dst, bool dominated);

  const bsr::graph::CsrGraph* graph_;
  const bsr::broker::BrokerSet* brokers_;
  std::vector<bsr::graph::NodeId> parent_;
  std::vector<bsr::graph::NodeId> queue_;
};

}  // namespace bsr::sim
