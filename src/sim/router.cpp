#include "sim/router.hpp"

#include <algorithm>
#include <cassert>

namespace bsr::sim {

using bsr::graph::kUnreachable;
using bsr::graph::NodeId;

Router::Router(const bsr::graph::CsrGraph& g, const bsr::broker::BrokerSet& brokers)
    : graph_(&g), brokers_(&brokers) {
  parent_.resize(g.num_vertices());
  queue_.reserve(g.num_vertices());
}

Route Router::route_impl(NodeId src, NodeId dst, bool dominated) {
  assert(src < graph_->num_vertices() && dst < graph_->num_vertices());
  Route route;
  if (src == dst) {
    route.path = {src};
    return route;
  }
  std::fill(parent_.begin(), parent_.end(), kUnreachable);
  queue_.clear();
  parent_[src] = src;
  queue_.push_back(src);
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const NodeId u = queue_[head];
    for (const NodeId v : graph_->neighbors(u)) {
      if (parent_[v] != kUnreachable) continue;
      if (dominated && !brokers_->dominates_edge(u, v)) continue;
      parent_[v] = u;
      if (v == dst) {
        route.path.push_back(dst);
        for (NodeId w = dst; w != src; w = parent_[w]) route.path.push_back(parent_[w]);
        std::reverse(route.path.begin(), route.path.end());
        return route;
      }
      queue_.push_back(v);
    }
  }
  return route;  // unreachable
}

Route Router::route_free(NodeId src, NodeId dst) {
  return route_impl(src, dst, /*dominated=*/false);
}

Route Router::route_dominated(NodeId src, NodeId dst) {
  return route_impl(src, dst, /*dominated=*/true);
}

std::optional<std::uint32_t> Router::stretch(NodeId src, NodeId dst) {
  const Route free_route = route_free(src, dst);
  if (!free_route.reachable()) return std::nullopt;
  const Route dominated_route = route_dominated(src, dst);
  if (!dominated_route.reachable()) return std::nullopt;
  return dominated_route.hops() - free_route.hops();
}

}  // namespace bsr::sim
