// Ablation: how much of BGP's *existing* routing is already broker-
// supervised?
//
// Incremental-deployment question: before any path is moved onto the
// brokered plane, what fraction of the valley-free shortest paths BGP
// would pick already have every hop dominated by B? Those flows gain QoS
// supervision with zero routing change — the coalition's day-one value.
#include <iostream>

#include "bench_common.hpp"
#include "broker/maxsg.hpp"
#include "graph/sampling.hpp"
#include "sim/qos.hpp"
#include "topology/relationships.hpp"

int main() {
  auto ctx = bsr::bench::make_context(
      "Ablation: BGP-path compliance (supervision without route changes)");
  const auto& g = ctx.topo.graph;

  const auto full = bsr::broker::maxsg(g, ctx.env.scaled(3540, 8)).brokers;
  bsr::graph::Rng rng(ctx.env.seed + 18);
  const std::size_t num_pairs = std::min<std::size_t>(600, 2 * ctx.env.bfs_sources);
  const auto pairs = bsr::graph::sample_pairs(rng, g.num_vertices(), num_pairs);

  // Valley-free BGP-like paths are broker-independent: compute once.
  std::vector<std::vector<bsr::graph::NodeId>> paths;
  paths.reserve(pairs.size());
  for (const auto& [src, dst] : pairs) {
    paths.push_back(bsr::topology::valley_free_path(g, ctx.topo.relations, src, dst));
  }

  bsr::io::Table table({"|B|", "BGP paths fully dominated", "hops supervised",
                        "QoS success on BGP paths"});
  for (const std::uint32_t paper_k : {100u, 1000u, 3540u}) {
    const auto prefix = full.prefix(std::min<std::size_t>(
        ctx.env.scaled(paper_k, 4), full.size()));
    std::size_t routable = 0, compliant = 0;
    std::uint64_t hops_total = 0, hops_supervised = 0;
    double qos_sum = 0.0;
    bsr::sim::QosModel qos;
    qos.unsupervised_hop_success = 0.85;
    for (const auto& path : paths) {
      if (path.size() < 2) continue;
      ++routable;
      const auto total = static_cast<std::uint32_t>(path.size() - 1);
      const auto bad = bsr::sim::undominated_hops(prefix, path);
      hops_total += total;
      hops_supervised += total - bad;
      if (bad == 0) ++compliant;
      qos_sum += bsr::sim::path_qos_success(qos, prefix, path);
    }
    table.row()
        .cell(static_cast<std::uint64_t>(prefix.size()))
        .percent(routable ? static_cast<double>(compliant) / routable : 0)
        .percent(hops_total ? static_cast<double>(hops_supervised) / hops_total : 0)
        .percent(routable ? qos_sum / routable : 0);
  }
  table.print(std::cout);
  std::cout << "(" << paths.size()
            << " sampled pairs routed valley-free; a compliant path gets E2E "
               "supervision without touching BGP — the flexible-compatibility "
               "story of §1)\n";
  return 0;
}
