// Statistical replication of the headline anchors across random seeds.
//
// One synthetic topology is one draw; conclusions should not ride on it.
// Re-generates the topology under `kReplicates` seeds and reports mean ±
// sample stddev of the Table-1 anchors and the IXPB cap — the error bars
// the paper (single real snapshot) could not have.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "broker/baselines.hpp"
#include "broker/dominated.hpp"
#include "broker/maxsg.hpp"

namespace {

struct Series {
  std::vector<double> values;
  void add(double v) { values.push_back(v); }
  [[nodiscard]] double mean() const {
    double sum = 0;
    for (const double v : values) sum += v;
    return sum / static_cast<double>(values.size());
  }
  [[nodiscard]] double stddev() const {
    if (values.size() < 2) return 0.0;
    const double m = mean();
    double ss = 0;
    for (const double v : values) ss += (v - m) * (v - m);
    return std::sqrt(ss / static_cast<double>(values.size() - 1));
  }
};

}  // namespace

int main() {
  const auto env = bsr::io::experiment_env();
  bsr::io::print_banner(std::cout, "Replication: anchors across topology seeds");
  std::cout << "config: " << bsr::io::describe(env) << "\n";
  // MaxSG at full scale costs ~10 s per replicate; run at up to 30 % scale.
  const double scale = std::min(env.scale, 0.3);
  constexpr int kReplicates = 7;

  Series at_100, at_1000, saturated, alliance_size, ixpb_cap;
  for (int rep = 0; rep < kReplicates; ++rep) {
    auto config = bsr::topology::InternetConfig{}.scaled(scale);
    config.seed = env.seed + 1000ull * (rep + 1);
    const auto topo = bsr::topology::make_internet(config);
    const auto& g = topo.graph;
    // Budgets must scale with the *local* replicate scale, not REPRO_SCALE.
    const auto k_of = [scale](std::uint32_t paper_k, std::uint32_t minimum) {
      return std::max<std::uint32_t>(
          minimum, static_cast<std::uint32_t>(std::llround(paper_k * scale)));
    };
    const auto result = bsr::broker::maxsg(g, k_of(3540, 8));
    at_100.add(bsr::broker::saturated_connectivity(
        g, result.brokers.prefix(k_of(100, 2))));
    at_1000.add(bsr::broker::saturated_connectivity(
        g, result.brokers.prefix(k_of(1000, 4))));
    saturated.add(bsr::broker::saturated_connectivity(g, result.brokers));
    alliance_size.add(static_cast<double>(result.brokers.size()));
    ixpb_cap.add(bsr::broker::saturated_connectivity(g, bsr::broker::ixpb(topo)));
    std::cout << "  replicate " << (rep + 1) << "/" << kReplicates << " done\n";
  }

  bsr::io::Table table({"anchor", "paper", "mean", "stddev"});
  const auto pct = [](const Series& s) {
    return bsr::io::format_percent(s.mean()) + "%";
  };
  const auto pct_sd = [](const Series& s) {
    return bsr::io::format_percent(s.stddev()) + " pts";
  };
  table.row().cell("connectivity @100-equiv").cell("53.14%").cell(pct(at_100)).cell(pct_sd(at_100));
  table.row().cell("connectivity @1000-equiv").cell("85.41%").cell(pct(at_1000)).cell(pct_sd(at_1000));
  table.row().cell("saturated connectivity").cell("99.29%").cell(pct(saturated)).cell(pct_sd(saturated));
  table.row()
      .cell("alliance size (scaled)")
      .cell("3,540-equiv")
      .cell(bsr::io::format_double(alliance_size.mean(), 0))
      .cell(bsr::io::format_double(alliance_size.stddev(), 1));
  table.row().cell("all-IXP cap").cell("15.70%").cell(pct(ixpb_cap)).cell(pct_sd(ixpb_cap));
  table.print(std::cout);
  std::cout << "(" << kReplicates << " independent topology draws at scale "
            << scale << ")\n";
  return 0;
}
