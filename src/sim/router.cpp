#include "sim/router.hpp"

#include <algorithm>

#include "graph/check.hpp"
#include "graph/engine.hpp"
#include "graph/sampling.hpp"
#include "obs/journal.hpp"
#include "obs/stats.hpp"

namespace bsr::sim {

using bsr::graph::kUnreachable;
using bsr::graph::NodeId;

const char* to_string(RouteTier tier) noexcept {
  switch (tier) {
    case RouteTier::kDominated: return "dominated";
    case RouteTier::kDegraded: return "degraded";
    case RouteTier::kFreeFallback: return "free-fallback";
    case RouteTier::kUnreachable: return "unreachable";
  }
  return "?";
}

const char* to_string(HealthOutcome outcome) noexcept {
  switch (outcome) {
    case HealthOutcome::kOk: return "ok";
    case HealthOutcome::kMisrouted: return "misrouted";
    case HealthOutcome::kShunned: return "shunned";
    case HealthOutcome::kUnreachable: return "unreachable";
  }
  return "?";
}

Router::Router(const bsr::graph::CsrGraph& g, const bsr::broker::BrokerSet& brokers)
    : Router(g, brokers, nullptr) {}

Router::Router(const bsr::graph::CsrGraph& g, const bsr::broker::BrokerSet& brokers,
               const bsr::graph::FaultPlane* faults)
    : graph_(&g), brokers_(&brokers), ws_(g.num_vertices()) {
  set_fault_plane(faults);
}

void Router::set_fault_plane(const bsr::graph::FaultPlane* faults) {
  BSR_DCHECK(faults == nullptr || &faults->graph() == graph_);
  faults_ = faults;
}

void Router::set_health_view(const HealthView* view) {
  BSR_DCHECK(view == nullptr || view->routable.size() == graph_->num_vertices());
  health_view_ = view;
}

template <class Filter>
Route Router::route_scan(NodeId src, NodeId dst, Filter admit) {
  Route route;
  ws_.begin(graph_->num_vertices());
  ws_.discover(src, 0, src);
  for (std::size_t head = 0; head < ws_.frontier_size(); ++head) {
    const NodeId u = ws_.frontier_at(head);
    const std::uint32_t du = ws_.dist_unchecked(u);
    const auto nbrs = graph_->neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      if (ws_.visited(v) || !admit(u, i, v)) continue;
      ws_.discover(v, du + 1, u);
      if (v == dst) {
        route.path.push_back(dst);
        for (NodeId w = dst; w != src; w = ws_.parent(w)) {
          route.path.push_back(ws_.parent(w));
        }
        std::reverse(route.path.begin(), route.path.end());
        return route;
      }
    }
  }
  return route;  // unreachable
}

Route Router::route_impl(NodeId src, NodeId dst, bool dominated) {
  BSR_DCHECK(src < graph_->num_vertices() && dst < graph_->num_vertices());
  Route route;
  if (faults_ != nullptr && (!faults_->vertex_ok(src) || !faults_->vertex_ok(dst))) {
    return route;  // a down endpoint cannot originate or terminate traffic
  }
  if (src == dst) {
    route.path = {src};
    return route;
  }
  // Static four-way dispatch: the filter inlines into the scan loop, so the
  // plain free-route case pays nothing for broker/fault support.
  namespace engine = bsr::graph::engine;
  const engine::DominatedEdgeFilter dom{&brokers_->mask()};
  if (dominated) {
    if (faults_ != nullptr) {
      return route_scan(src, dst,
                        engine::BothFilters{dom, engine::FaultAwareFilter{faults_}});
    }
    return route_scan(src, dst, dom);
  }
  if (faults_ != nullptr) {
    return route_scan(src, dst, engine::FaultAwareFilter{faults_});
  }
  return route_scan(src, dst, engine::AllEdges{});
}

Route Router::route_healed(NodeId src, NodeId dst, std::uint32_t max_heals,
                           std::uint32_t& healed_links) {
  // BFS over (vertex, heals-used) states: dominated edges only, vertices
  // must be up, and crossing a *failed* dominated link consumes one heal.
  // First arrival at dst (any heal count) is the min-hop degraded route.
  healed_links = 0;
  Route route;
  const std::uint32_t layers = max_heals + 1;
  const std::size_t num_states =
      static_cast<std::size_t>(graph_->num_vertices()) * layers;
  BSR_DCHECK(num_states < kUnreachable);
  state_parent_.assign(num_states, kUnreachable);
  state_queue_.clear();

  const auto state_of = [layers](NodeId v, std::uint32_t heals) {
    return static_cast<std::uint32_t>(v) * layers + heals;
  };
  const std::uint32_t start = state_of(src, 0);
  state_parent_[start] = start;
  state_queue_.push_back(start);
  BSR_GAUGE_MAX(RouterStateHighWater, num_states);
  for (std::size_t head = 0; head < state_queue_.size(); ++head) {
    const std::uint32_t s = state_queue_[head];
    const NodeId u = s / layers;
    const std::uint32_t heals = s % layers;
    const auto nbrs = graph_->neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      if (!brokers_->dominates_edge(u, v)) continue;
      if (!faults_->vertex_ok(v)) continue;
      std::uint32_t next_heals = heals;
      if (!faults_->edge_up_at(u, i)) {
        if (heals == max_heals) continue;  // heal budget exhausted
        ++next_heals;
      }
      const std::uint32_t t = state_of(v, next_heals);
      if (state_parent_[t] != kUnreachable) continue;
      state_parent_[t] = s;
      if (v == dst) {
        healed_links = next_heals;
        for (std::uint32_t w = t; w != start; w = state_parent_[w]) {
          route.path.push_back(w / layers);
        }
        route.path.push_back(src);
        std::reverse(route.path.begin(), route.path.end());
        return route;
      }
      state_queue_.push_back(t);
    }
  }
  return route;  // unreachable within the heal budget
}

Route Router::route_free(NodeId src, NodeId dst) {
  return route_impl(src, dst, /*dominated=*/false);
}

Route Router::route_dominated(NodeId src, NodeId dst) {
  return route_impl(src, dst, /*dominated=*/true);
}

TieredRoute Router::route_with_degradation(NodeId src, NodeId dst,
                                           const DegradationPolicy& policy) {
  BSR_COUNT(RouterRoutes);
  TieredRoute out;
  out.route = route_dominated(src, dst);
  if (out.route.reachable()) {
    out.tier = RouteTier::kDominated;
    BSR_COUNT(RouterTierDominated);
    BSR_HISTO(RouterHops, out.route.hops());
    return out;
  }
  if (faults_ != nullptr && !faults_->pristine() && policy.heal_attempts > 0 &&
      faults_->vertex_ok(src) && faults_->vertex_ok(dst) && src != dst) {
    out.route = route_healed(src, dst, policy.heal_attempts, out.healed_links);
    if (out.route.reachable()) {
      out.tier = RouteTier::kDegraded;
      BSR_COUNT(RouterTierDegraded);
      BSR_HISTO(RouterHops, out.route.hops());
      return out;
    }
    out.healed_links = 0;
  }
  if (policy.allow_free_fallback) {
    out.route = route_free(src, dst);
    if (out.route.reachable()) {
      out.tier = RouteTier::kFreeFallback;
      BSR_COUNT(RouterTierFallback);
      BSR_HISTO(RouterHops, out.route.hops());
      return out;
    }
  }
  out.tier = RouteTier::kUnreachable;
  BSR_COUNT(RouterTierUnreachable);
  return out;
}

HealthRouteResult Router::route_with_health(NodeId src, NodeId dst) {
  BSR_DCHECK(health_view_ != nullptr);
  BSR_DCHECK(src < graph_->num_vertices() && dst < graph_->num_vertices());
  BSR_COUNT(RouterRoutes);
  HealthRouteResult out;
  if (src == dst) {
    out.route.path = {src};
    out.outcome = HealthOutcome::kOk;
    return out;
  }
  // Belief: dominated BFS restricted to edges with a *routable* broker
  // endpoint, with no fault consultation — the control plane knows only what
  // the view says. The routable bitmap is already broker-AND-healthy, so the
  // plain dominated filter over it is exactly the believed plane.
  out.route = route_scan(
      src, dst, bsr::graph::engine::DominatedEdgeFilter{&health_view_->routable});
  if (out.route.reachable()) {
    if (faults_ != nullptr) {
      for (std::size_t i = 0; i + 1 < out.route.path.size(); ++i) {
        const NodeId u = out.route.path[i];
        const NodeId v = out.route.path[i + 1];
        if (!faults_->vertex_ok(u) || !faults_->vertex_ok(v) ||
            !faults_->edge_ok(u, v)) {
          ++out.dead_hops;
        }
      }
    }
    BSR_COUNT_N(RouterDeadHops, out.dead_hops);
    BSR_HISTO(RouterHops, out.route.hops());
    out.outcome = out.dead_hops > 0 ? HealthOutcome::kMisrouted : HealthOutcome::kOk;
    // Verdict events carry the pair packed (src << 32) | dst; the router has
    // no clock of its own, so records land at the journal clock.
    if (out.outcome == HealthOutcome::kMisrouted) {
      BSR_EVENT_NOW(RouteMisrouted,
                    (std::uint64_t{src} << 32) | std::uint64_t{dst}, 0);
    } else {
      BSR_EVENT_NOW(RouteOk, (std::uint64_t{src} << 32) | std::uint64_t{dst}, 0);
    }
    return out;
  }
  // Belief found nothing: ask the oracle whether real capacity was shunned.
  out.outcome = route_dominated(src, dst).reachable() ? HealthOutcome::kShunned
                                                      : HealthOutcome::kUnreachable;
  if (out.outcome == HealthOutcome::kShunned) {
    BSR_EVENT_NOW(RouteShunned, (std::uint64_t{src} << 32) | std::uint64_t{dst}, 0);
  } else {
    BSR_EVENT_NOW(RouteUnreachable,
                  (std::uint64_t{src} << 32) | std::uint64_t{dst}, 0);
  }
  return out;
}

std::optional<std::uint32_t> Router::stretch(NodeId src, NodeId dst) {
  const Route free_route = route_free(src, dst);
  if (!free_route.reachable()) return std::nullopt;
  const Route dominated_route = route_dominated(src, dst);
  if (!dominated_route.reachable()) return std::nullopt;
  return dominated_route.hops() - free_route.hops();
}

TierShares sample_tier_shares(Router& router, bsr::graph::Rng& rng,
                              std::size_t num_pairs,
                              const DegradationPolicy& policy) {
  TierShares shares;
  const auto pairs =
      bsr::graph::sample_pairs(rng, router.graph().num_vertices(), num_pairs);
  for (const auto& [src, dst] : pairs) {
    const TieredRoute r = router.route_with_degradation(src, dst, policy);
    ++shares.pairs;
    switch (r.tier) {
      case RouteTier::kDominated: ++shares.dominated; break;
      case RouteTier::kDegraded: ++shares.degraded; break;
      case RouteTier::kFreeFallback: ++shares.free_fallback; break;
      case RouteTier::kUnreachable: ++shares.unreachable; break;
    }
  }
  return shares;
}

HealthShares sample_health_shares(Router& router, bsr::graph::Rng& rng,
                                  std::size_t num_pairs) {
  HealthShares shares;
  const auto pairs =
      bsr::graph::sample_pairs(rng, router.graph().num_vertices(), num_pairs);
  for (const auto& [src, dst] : pairs) {
    const HealthRouteResult r = router.route_with_health(src, dst);
    ++shares.pairs;
    shares.dead_hops += r.dead_hops;
    switch (r.outcome) {
      case HealthOutcome::kOk: ++shares.ok; break;
      case HealthOutcome::kMisrouted: ++shares.misrouted; break;
      case HealthOutcome::kShunned: ++shares.shunned; break;
      case HealthOutcome::kUnreachable: ++shares.unreachable; break;
    }
  }
  return shares;
}

}  // namespace bsr::sim
