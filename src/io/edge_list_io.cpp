#include "io/edge_list_io.hpp"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <fstream>
#include <limits>
#include <map>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "graph/graph_builder.hpp"

namespace bsr::io {

using bsr::graph::CsrGraph;
using bsr::graph::GraphBuilder;
using bsr::graph::NodeId;

void write_edge_list(std::ostream& os, const CsrGraph& g) {
  os << "# brokerset edge list: " << g.num_vertices() << " vertices, "
     << g.num_edges() << " edges\n";
  for (NodeId u = 0; u < g.num_vertices(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u < v) os << u << ' ' << v << '\n';
    }
  }
}

void write_edge_list_file(const std::string& path, const CsrGraph& g) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("write_edge_list_file: cannot open " + path);
  write_edge_list(out, g);
  if (!out) throw std::runtime_error("write_edge_list_file: write failed for " + path);
}

namespace {

[[noreturn]] void parse_error(std::size_t line_number, const std::string& what) {
  throw std::runtime_error("read_edge_list: line " + std::to_string(line_number) +
                           ": " + what);
}

/// Splits on spaces/tabs. Stream extraction (>>) silently skips lines whose
/// ids overflow 64 bits and wraps negative ids modulo 2^64; from_chars lets
/// us reject both with line context instead.
std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    const std::size_t start = line.find_first_not_of(" \t", pos);
    if (start == std::string_view::npos) break;
    std::size_t end = line.find_first_of(" \t", start);
    if (end == std::string_view::npos) end = line.size();
    tokens.push_back(line.substr(start, end - start));
    pos = end;
  }
  return tokens;
}

std::uint64_t parse_vertex_id(std::string_view token, std::size_t line_number) {
  if (!token.empty() && token.front() == '-') {
    parse_error(line_number, "negative vertex id '" + std::string(token) + "'");
  }
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec == std::errc::result_out_of_range) {
    parse_error(line_number,
                "vertex id '" + std::string(token) + "' overflows 64 bits");
  }
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    parse_error(line_number, "malformed vertex id '" + std::string(token) + "'");
  }
  return value;
}

}  // namespace

CsrGraph read_edge_list(std::istream& is) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> raw_edges;
  std::map<std::uint64_t, NodeId> id_map;  // ordered => dense ids keep order
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF input
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;  // blank or comment-only line
    if (tokens.size() == 1) parse_error(line_number, "expected two vertex ids");
    if (tokens.size() > 2) parse_error(line_number, "trailing tokens");
    const std::uint64_t a = parse_vertex_id(tokens[0], line_number);
    const std::uint64_t b = parse_vertex_id(tokens[1], line_number);
    raw_edges.emplace_back(a, b);
    id_map.emplace(a, 0);
    id_map.emplace(b, 0);
    if (id_map.size() > std::numeric_limits<NodeId>::max()) {
      parse_error(line_number, "more distinct vertex ids than NodeId can address");
    }
  }
  NodeId next = 0;
  for (auto& [raw, dense] : id_map) dense = next++;

  GraphBuilder builder(next);
  builder.reserve(raw_edges.size());
  for (const auto& [a, b] : raw_edges) {
    builder.add_edge(id_map.at(a), id_map.at(b));
  }
  return builder.build();
}

CsrGraph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_edge_list_file: cannot open " + path);
  return read_edge_list(in);
}

}  // namespace bsr::io
