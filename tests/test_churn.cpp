#include "sim/churn.hpp"

#include <gtest/gtest.h>

#include "broker/dominated.hpp"
#include "broker/maxsg.hpp"
#include "test_util.hpp"

namespace bsr::sim {
namespace {

using bsr::broker::BrokerSet;
using bsr::graph::CsrGraph;
using bsr::graph::Rng;
using bsr::test::make_connected_random;

TEST(Churn, EventsAreTimeOrderedWithinHorizon) {
  const CsrGraph g = make_connected_random(60, 0.08, 1);
  const auto brokers = bsr::broker::maxsg(g, 12).brokers;
  Rng rng(2);
  ChurnConfig config;
  config.horizon = 50.0;
  const auto result = simulate_churn(g, brokers, config, rng);
  double prev = 0.0;
  for (const auto& event : result.events) {
    EXPECT_GE(event.time, prev);
    EXPECT_LE(event.time, config.horizon);
    prev = event.time;
  }
}

TEST(Churn, CountsMatchEvents) {
  const CsrGraph g = make_connected_random(60, 0.08, 3);
  const auto brokers = bsr::broker::maxsg(g, 12).brokers;
  Rng rng(4);
  const auto result = simulate_churn(g, brokers, {}, rng);
  std::size_t departures = 0, repairs = 0;
  for (const auto& event : result.events) {
    if (event.kind == ChurnEvent::Kind::kDeparture) ++departures;
    else ++repairs;
  }
  EXPECT_EQ(departures, result.departures);
  EXPECT_EQ(repairs, result.repairs);
  EXPECT_GT(result.departures, 0u);
  EXPECT_GT(result.repairs, 0u);
}

TEST(Churn, MinNeverAboveMean) {
  const CsrGraph g = make_connected_random(60, 0.08, 5);
  const auto brokers = bsr::broker::maxsg(g, 12).brokers;
  Rng rng(6);
  const auto result = simulate_churn(g, brokers, {}, rng);
  EXPECT_LE(result.min_connectivity, result.mean_connectivity + 1e-12);
  EXPECT_GE(result.min_connectivity, 0.0);
  EXPECT_LE(result.mean_connectivity, 1.0);
}

TEST(Churn, RepairsKeepConnectivityUp) {
  const CsrGraph g = make_connected_random(80, 0.07, 7);
  const auto brokers = bsr::broker::maxsg(g, 16).brokers;
  const double baseline = bsr::broker::saturated_connectivity(g, brokers);

  ChurnConfig with_repairs;
  with_repairs.departure_rate = 0.5;
  with_repairs.repair_interval = 5.0;
  with_repairs.repair_budget = 4;
  with_repairs.horizon = 80.0;
  ChurnConfig no_repairs = with_repairs;
  no_repairs.repair_budget = 0;

  Rng rng_a(8), rng_b(8);
  const auto repaired = simulate_churn(g, brokers, with_repairs, rng_a);
  const auto decayed = simulate_churn(g, brokers, no_repairs, rng_b);
  EXPECT_GT(repaired.mean_connectivity, decayed.mean_connectivity);
  EXPECT_GT(repaired.replacements_added, 0u);
  EXPECT_EQ(decayed.replacements_added, 0u);
  EXPECT_LE(repaired.mean_connectivity, baseline + 0.05);
}

TEST(Churn, DeterministicInSeed) {
  const CsrGraph g = make_connected_random(50, 0.08, 9);
  const auto brokers = bsr::broker::maxsg(g, 10).brokers;
  Rng a(11), b(11);
  const auto r1 = simulate_churn(g, brokers, {}, a);
  const auto r2 = simulate_churn(g, brokers, {}, b);
  EXPECT_EQ(r1.events.size(), r2.events.size());
  EXPECT_DOUBLE_EQ(r1.mean_connectivity, r2.mean_connectivity);
}

TEST(Churn, RejectsBadConfig) {
  const CsrGraph g = make_connected_random(20, 0.2, 10);
  BrokerSet b(g.num_vertices());
  Rng rng(12);
  ChurnConfig bad;
  bad.departure_rate = 0.0;
  EXPECT_THROW(simulate_churn(g, b, bad, rng), std::invalid_argument);
  bad = ChurnConfig{};
  bad.horizon = -1.0;
  EXPECT_THROW(simulate_churn(g, b, bad, rng), std::invalid_argument);
}

TEST(Churn, HorizonShorterThanRepairIntervalNeverRepairs) {
  const CsrGraph g = make_connected_random(50, 0.08, 13);
  const auto brokers = bsr::broker::maxsg(g, 10).brokers;
  Rng rng(14);
  ChurnConfig config;
  config.departure_rate = 2.0;
  config.repair_interval = 10.0;
  config.repair_budget = 4;
  config.horizon = 5.0;  // first repair would land at t = 10 > horizon
  const auto result = simulate_churn(g, brokers, config, rng);
  EXPECT_EQ(result.repairs, 0u);
  EXPECT_EQ(result.replacements_added, 0u);
  for (const auto& event : result.events) {
    EXPECT_NE(event.kind, ChurnEvent::Kind::kRepair);
    EXPECT_LE(event.time, config.horizon);
  }
}

TEST(LinkChurn, RecordsOutagesAndHeals) {
  const CsrGraph g = make_connected_random(60, 0.08, 15);
  const auto brokers = bsr::broker::maxsg(g, 12).brokers;
  std::vector<bsr::graph::FailureGroup> groups;
  for (bsr::graph::NodeId v = 0; v < 6; ++v) {
    groups.push_back(bsr::graph::incident_group(g, v));
  }
  ChurnConfig config;
  config.departure_rate = 0.2;
  config.horizon = 60.0;
  LinkChurnConfig link;
  link.outage_rate = 0.5;
  link.mean_downtime = 4.0;
  Rng rng(16);
  const auto result = simulate_churn(g, brokers, config, link, groups, rng);

  EXPECT_GT(result.link_outages, 0u);
  EXPECT_LE(result.link_heals, result.link_outages);
  std::size_t outages = 0, heals = 0;
  double prev = 0.0;
  for (const auto& event : result.events) {
    EXPECT_GE(event.time, prev);
    prev = event.time;
    if (event.kind == ChurnEvent::Kind::kLinkOutage) {
      ++outages;
      EXPECT_GT(event.failed_edges_after, 0u);
    } else if (event.kind == ChurnEvent::Kind::kLinkHeal) {
      ++heals;
    }
  }
  EXPECT_EQ(outages, result.link_outages);
  EXPECT_EQ(heals, result.link_heals);
  EXPECT_LE(result.min_connectivity, result.mean_connectivity + 1e-12);
}

TEST(LinkChurn, ZeroRateMatchesBrokerOnlyChurn) {
  const CsrGraph g = make_connected_random(50, 0.08, 17);
  const auto brokers = bsr::broker::maxsg(g, 10).brokers;
  Rng a(18), b(18);
  const auto legacy = simulate_churn(g, brokers, {}, a);
  const auto unified =
      simulate_churn(g, brokers, {}, LinkChurnConfig{}, {}, b);
  ASSERT_EQ(legacy.events.size(), unified.events.size());
  EXPECT_DOUBLE_EQ(legacy.mean_connectivity, unified.mean_connectivity);
  EXPECT_EQ(unified.link_outages, 0u);
  EXPECT_EQ(unified.link_heals, 0u);
}

TEST(LinkChurn, DeterministicInSeed) {
  const CsrGraph g = make_connected_random(50, 0.08, 19);
  const auto brokers = bsr::broker::maxsg(g, 10).brokers;
  std::vector<bsr::graph::FailureGroup> groups;
  for (bsr::graph::NodeId v = 0; v < 4; ++v) {
    groups.push_back(bsr::graph::incident_group(g, v));
  }
  LinkChurnConfig link;
  link.outage_rate = 0.4;
  Rng a(20), b(20);
  const auto r1 = simulate_churn(g, brokers, {}, link, groups, a);
  const auto r2 = simulate_churn(g, brokers, {}, link, groups, b);
  ASSERT_EQ(r1.events.size(), r2.events.size());
  for (std::size_t i = 0; i < r1.events.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.events[i].time, r2.events[i].time);
    EXPECT_EQ(r1.events[i].kind, r2.events[i].kind);
    EXPECT_EQ(r1.events[i].failed_edges_after, r2.events[i].failed_edges_after);
  }
}

TEST(LinkChurn, RejectsBadLinkConfig) {
  const CsrGraph g = make_connected_random(20, 0.2, 21);
  const auto brokers = bsr::broker::maxsg(g, 4).brokers;
  Rng rng(22);
  LinkChurnConfig link;
  link.outage_rate = 1.0;
  // Outages enabled but no groups to fail.
  EXPECT_THROW(simulate_churn(g, brokers, {}, link, {}, rng),
               std::invalid_argument);
  std::vector<bsr::graph::FailureGroup> groups{
      bsr::graph::incident_group(g, 0)};
  link.mean_downtime = 0.0;
  EXPECT_THROW(simulate_churn(g, brokers, {}, link, groups, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace bsr::sim
