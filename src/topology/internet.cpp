#include "topology/internet.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "graph/graph_builder.hpp"

namespace bsr::topology {

using bsr::graph::CsrGraph;
using bsr::graph::Edge;
using bsr::graph::GraphBuilder;
using bsr::graph::NodeId;
using bsr::graph::Rng;

InternetConfig InternetConfig::scaled(double factor) const {
  if (factor < 1e-4 || factor > 10.0) {
    throw std::invalid_argument("InternetConfig::scaled: factor out of [1e-4, 10]");
  }
  InternetConfig out = *this;
  const auto scale_u32 = [factor](std::uint32_t value, std::uint32_t minimum) {
    return std::max<std::uint32_t>(
        minimum, static_cast<std::uint32_t>(std::llround(value * factor)));
  };
  out.num_ases = scale_u32(num_ases, 64);
  out.num_ixps = scale_u32(num_ixps, 3);
  out.target_as_edges = std::max<std::uint64_t>(
      out.num_ases, static_cast<std::uint64_t>(std::llround(
                        static_cast<double>(target_as_edges) * factor)));
  out.target_ixp_memberships = std::max<std::uint64_t>(
      2 * out.num_ixps, static_cast<std::uint64_t>(std::llround(
                            static_cast<double>(target_ixp_memberships) * factor)));
  return out;
}

void InternetConfig::validate() const {
  if (num_ases < 16) throw std::invalid_argument("InternetConfig: too few ASes");
  if (num_ixps < 1) throw std::invalid_argument("InternetConfig: need >= 1 IXP");
  if (ixp_participation <= 0.0 || ixp_participation > 1.0) {
    throw std::invalid_argument("InternetConfig: ixp_participation out of (0, 1]");
  }
  if (tier1_fraction < 0 || tier2_fraction < 0 || tier3_fraction < 0 ||
      tier1_fraction + tier2_fraction + tier3_fraction >= 1.0) {
    throw std::invalid_argument("InternetConfig: bad tier fractions");
  }
  if (stub_content_fraction < 0 || stub_transit_fraction < 0 ||
      stub_content_fraction + stub_transit_fraction > 1.0) {
    throw std::invalid_argument("InternetConfig: bad stub type fractions");
  }
  if (isolated_fraction < 0.0 || isolated_fraction > 0.2) {
    throw std::invalid_argument("InternetConfig: isolated_fraction out of [0, 0.2]");
  }
  if (ixp_peering_prob < 0.0 || ixp_peering_prob > 1.0) {
    throw std::invalid_argument("InternetConfig: ixp_peering_prob out of [0, 1]");
  }
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(num_ases) * (num_ases - 1) / 2;
  if (target_as_edges > max_edges) {
    throw std::invalid_argument("InternetConfig: target_as_edges exceeds complete graph");
  }
}

namespace {

/// Accumulates unique canonical edges with parallel relationship labels.
class EdgeAccumulator {
 public:
  explicit EdgeAccumulator(NodeId n) : n_(n) { seen_.reserve(1 << 20); }

  /// Returns true if the edge was new.
  bool add(NodeId u, NodeId v, EdgeRel rel_from_canonical) {
    if (u == v) return false;
    if (u > v) {
      std::swap(u, v);
      // Flip provider direction when canonicalizing.
      if (rel_from_canonical == EdgeRel::kUProviderOfV) {
        rel_from_canonical = EdgeRel::kVProviderOfU;
      } else if (rel_from_canonical == EdgeRel::kVProviderOfU) {
        rel_from_canonical = EdgeRel::kUProviderOfV;
      }
    }
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (!seen_.insert(key).second) return false;
    edges_.push_back(Edge{u, v});
    rels_.push_back(rel_from_canonical);
    return true;
  }

  /// Adds a provider->customer edge (provider sells transit to customer).
  /// add() interprets the label relative to its argument order and flips it
  /// when canonicalizing.
  bool add_transit(NodeId provider, NodeId customer) {
    return add(provider, customer, EdgeRel::kUProviderOfV);
  }

  bool add_peer(NodeId u, NodeId v) { return add(u, v, EdgeRel::kPeer); }

  [[nodiscard]] bool has(NodeId u, NodeId v) const {
    if (u > v) std::swap(u, v);
    return seen_.contains((static_cast<std::uint64_t>(u) << 32) | v);
  }

  [[nodiscard]] std::size_t count() const noexcept { return edges_.size(); }

  /// Sorts edges canonically, keeping rels aligned.
  void finalize() {
    std::vector<std::size_t> order(edges_.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
      return edges_[a] < edges_[b];
    });
    std::vector<Edge> edges_sorted(edges_.size());
    std::vector<EdgeRel> rels_sorted(rels_.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      edges_sorted[i] = edges_[order[i]];
      rels_sorted[i] = rels_[order[i]];
    }
    edges_ = std::move(edges_sorted);
    rels_ = std::move(rels_sorted);
  }

  [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }
  [[nodiscard]] const std::vector<EdgeRel>& rels() const noexcept { return rels_; }

 private:
  NodeId n_;
  std::unordered_set<std::uint64_t> seen_;
  std::vector<Edge> edges_;
  std::vector<EdgeRel> rels_;
};

/// Degree-proportional sampling pool: a node appears once per incident edge
/// (plus one seed entry), so uniform draws are preferential-attachment draws.
class AttachmentPool {
 public:
  void seed(NodeId v) { pool_.push_back(v); }
  void credit(NodeId v) { pool_.push_back(v); }
  [[nodiscard]] bool empty() const noexcept { return pool_.empty(); }
  [[nodiscard]] NodeId draw(Rng& rng) const { return pool_[rng.uniform(pool_.size())]; }

 private:
  std::vector<NodeId> pool_;
};

}  // namespace

CsrGraph InternetTopology::as_only_graph() const {
  GraphBuilder builder(num_ases);
  for (NodeId u = 0; u < num_ases; ++u) {
    for (const NodeId v : graph.neighbors(u)) {
      if (u < v && v < num_ases) builder.add_edge(u, v);
    }
  }
  return builder.build();
}

double InternetTopology::ixp_attachment_rate() const {
  if (num_ases == 0) return 0.0;
  std::uint32_t attached = 0;
  for (NodeId v = 0; v < num_ases; ++v) {
    for (const NodeId w : graph.neighbors(v)) {
      if (is_ixp(w)) {
        ++attached;
        break;
      }
    }
  }
  return static_cast<double>(attached) / static_cast<double>(num_ases);
}

InternetTopology make_internet(const InternetConfig& config) {
  config.validate();
  Rng rng(config.seed);

  const NodeId n_as = config.num_ases;
  const NodeId n_ixp = config.num_ixps;
  const NodeId n = n_as + n_ixp;

  // --- Tier assignment (low ids = higher tiers; deterministic). -----------
  const auto t1 = std::max<NodeId>(4, static_cast<NodeId>(
                                          std::llround(n_as * config.tier1_fraction)));
  const auto t2 = std::max<NodeId>(
      8, static_cast<NodeId>(std::llround(n_as * config.tier2_fraction)));
  const auto t3 = std::max<NodeId>(
      16, static_cast<NodeId>(std::llround(n_as * config.tier3_fraction)));
  if (static_cast<std::uint64_t>(t1) + t2 + t3 >= n_as) {
    throw std::invalid_argument("make_internet: tier counts exceed AS count");
  }
  const NodeId tier1_end = t1;
  const NodeId tier2_end = t1 + t2;
  const NodeId tier3_end = t1 + t2 + t3;

  std::vector<NodeMeta> meta(n);
  for (NodeId v = 0; v < n_as; ++v) {
    if (v < tier1_end) {
      meta[v] = NodeMeta{NodeType::kTransitAccess, Tier::kTier1};
    } else if (v < tier2_end) {
      meta[v] = NodeMeta{NodeType::kTransitAccess, Tier::kTier2};
    } else if (v < tier3_end) {
      meta[v] = NodeMeta{NodeType::kTransitAccess, Tier::kTier3};
    } else {
      const double roll = rng.uniform01();
      NodeType type = NodeType::kEnterprise;
      if (roll < config.stub_content_fraction) {
        type = NodeType::kContent;
      } else if (roll < config.stub_content_fraction + config.stub_transit_fraction) {
        type = NodeType::kTransitAccess;
      }
      meta[v] = NodeMeta{type, Tier::kStub};
    }
  }
  for (NodeId v = n_as; v < n; ++v) meta[v] = NodeMeta{NodeType::kIxp, Tier::kTierNone};

  // A small set of stub ASes stays off the giant component (see
  // InternetConfig::isolated_fraction) — they appear in the dataset but are
  // unreachable, capping saturated connectivity exactly as in the paper.
  std::vector<bool> isolated(n_as, false);
  {
    const auto isolated_count = static_cast<NodeId>(
        std::llround(n_as * config.isolated_fraction));
    NodeId marked = 0;
    while (marked < isolated_count) {
      const auto v = static_cast<NodeId>(
          tier3_end + rng.uniform(n_as - tier3_end));
      if (!isolated[v]) {
        isolated[v] = true;
        ++marked;
      }
    }
  }

  // Remote-region stubs: connected, but only through a uniformly chosen
  // tier-3 provider — no IXP membership, no dense peering. They form the
  // hard tail of the domination problem.
  std::vector<bool> remote(n_as, false);
  {
    const auto remote_count =
        static_cast<NodeId>(std::llround(n_as * config.remote_fraction));
    NodeId marked = 0;
    std::uint64_t guard = 0;
    while (marked < remote_count && guard < 50ull * n_as) {
      ++guard;
      const auto v =
          static_cast<NodeId>(tier3_end + rng.uniform(n_as - tier3_end));
      if (!isolated[v] && !remote[v]) {
        remote[v] = true;
        ++marked;
      }
    }
  }

  EdgeAccumulator acc(n);
  AttachmentPool pool_tier1, pool_tier2, pool_transit, pool_all_as;
  for (NodeId v = 0; v < tier1_end; ++v) pool_tier1.seed(v);
  for (NodeId v = tier1_end; v < tier2_end; ++v) pool_tier2.seed(v);
  for (NodeId v = 0; v < tier3_end; ++v) pool_transit.seed(v);
  for (NodeId v = 0; v < n_as; ++v) {
    if (!isolated[v] && !remote[v]) pool_all_as.seed(v);
  }

  std::vector<std::uint32_t> current_degree(n_as, 0);
  const auto credit = [&](NodeId v) {
    ++current_degree[v];
    pool_all_as.credit(v);
    if (v < tier1_end) pool_tier1.credit(v);
    if (v >= tier1_end && v < tier2_end) pool_tier2.credit(v);
    if (v < tier3_end) pool_transit.credit(v);
  };
  // Power-of-two-choices draw: sample two degree-proportional candidates and
  // keep the higher-degree one. This sharpens the tail towards the real
  // Internet's profile, where the top transit providers and IXPs reach
  // thousands of adjacencies (Hurricane/Cogent-class ASes, DE-CIX-class
  // IXPs) — which is what makes 100-broker sets cover > half the pairs.
  const auto draw_pref = [&](const AttachmentPool& pool) {
    const NodeId a = pool.draw(rng);
    const NodeId b = pool.draw(rng);
    NodeId best = current_degree[a] >= current_degree[b] ? a : b;
    // Interpolate between power-of-two and power-of-three choices: the
    // extra draw fires 40 % of the time, fitting Table 1's k=100 anchor
    // without overshooting the k=1000 one.
    if (rng.bernoulli(0.4)) {
      const NodeId c = pool.draw(rng);
      if (current_degree[c] > current_degree[best]) best = c;
    }
    return best;
  };
  // Connected, non-remote ASes for uniform peering draws.
  std::vector<NodeId> connected_ases;
  connected_ases.reserve(n_as);
  for (NodeId v = 0; v < n_as; ++v) {
    if (!isolated[v] && !remote[v]) connected_ases.push_back(v);
  }
  const auto add_transit_edge = [&](NodeId provider, NodeId customer) {
    if (acc.add_transit(provider, customer)) {
      credit(provider);
      credit(customer);
    }
  };
  const auto add_peer_edge = [&](NodeId u, NodeId v) {
    if (acc.add_peer(u, v)) {
      credit(u);
      credit(v);
    }
  };

  // --- Tier-1 clique (settlement-free peering at the top). ----------------
  for (NodeId u = 0; u < tier1_end; ++u) {
    for (NodeId v = u + 1; v < tier1_end; ++v) add_peer_edge(u, v);
  }

  // --- Tier-2: multihome to 2-4 tier-1 providers + sparse lateral peering.
  for (NodeId v = tier1_end; v < tier2_end; ++v) {
    const auto providers = 2 + rng.uniform(3);  // 2..4
    for (std::uint64_t i = 0; i < providers; ++i) {
      add_transit_edge(pool_tier1.draw(rng), v);
    }
    if (rng.bernoulli(0.6)) {
      const NodeId peer = pool_tier2.draw(rng);
      if (peer != v) add_peer_edge(v, peer);
    }
  }

  // --- Tier-3: 1-3 providers among tier-2 (preferential), 10 % also tier-1.
  for (NodeId v = tier2_end; v < tier3_end; ++v) {
    const auto providers = 1 + rng.uniform(3);  // 1..3
    for (std::uint64_t i = 0; i < providers; ++i) {
      add_transit_edge(pool_tier2.draw(rng), v);
    }
    if (rng.bernoulli(0.10)) add_transit_edge(pool_tier1.draw(rng), v);
  }

  // --- Stubs: providers among all transit, degree-preferential. Content
  // stubs multihome aggressively (CDNs chase path diversity).
  for (NodeId v = tier3_end; v < n_as; ++v) {
    if (isolated[v]) continue;
    if (remote[v]) {
      // Single-homed to a uniform tier-3 provider; credit() is skipped on
      // purpose so remote stubs never enter the preferential pools.
      const auto provider =
          static_cast<NodeId>(tier2_end + rng.uniform(tier3_end - tier2_end));
      acc.add_transit(provider, v);
      continue;
    }
    const bool content = meta[v].type == NodeType::kContent;
    const auto providers = content ? 2 + rng.uniform(3) : 1 + rng.uniform(2);
    for (std::uint64_t i = 0; i < providers; ++i) {
      add_transit_edge(pool_transit.draw(rng), v);
    }
    if (content) {
      // CDNs build open peering meshes: a heavy-tailed extra fan-out makes
      // some content networks broker-worthy (Table 5's YAHOO-class entries).
      const auto fanout = static_cast<std::uint64_t>(rng.pareto(0.9, 1.0, 250.0));
      for (std::uint64_t i = 0; i < fanout; ++i) {
        const NodeId peer = pool_all_as.draw(rng);
        if (peer != v) add_peer_edge(v, peer);
      }
    } else if (rng.bernoulli(0.02)) {
      // A few multi-site enterprises run their own moderate peering meshes
      // (the paper's alliance lists enterprise entries around rank ~440).
      const auto fanout = 1 + static_cast<std::uint64_t>(rng.pareto(1.2, 1.0, 80.0));
      for (std::uint64_t i = 0; i < fanout; ++i) {
        const NodeId peer = pool_all_as.draw(rng);
        if (peer != v) add_peer_edge(v, peer);
      }
    }
  }

  // --- Peering phase: fill the AS-AS edge budget with degree-preferential
  // p2p links (stands in for the dense IXP-derived peering mesh).
  const std::uint64_t budget = config.target_as_edges;
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = 30 * budget + 1000;
  while (acc.count() < budget && attempts < max_attempts) {
    ++attempts;
    // One endpoint is a hub (route-server reality: members peer with the
    // big networks present everywhere), the other is uniform across the
    // population — this is what spreads hub adjacency over the stubs and
    // lets a 100-broker set reach half of all pairs (Table 1).
    const NodeId u = draw_pref(pool_all_as);
    // Mixture for the second endpoint: mostly uniform (route-server members
    // peering with the ubiquitous hubs), partly degree-weighted (bilateral
    // hub-hub peering). The 45/55 split fits the greedy coverage anchors of
    // Table 1 (~73 % at k=100, ~92 % at k=1000).
    const NodeId v = rng.bernoulli(0.62)
                         ? connected_ases[rng.uniform(connected_ases.size())]
                         : pool_all_as.draw(rng);
    if (u == v) continue;
    add_peer_edge(u, v);
  }

  // --- IXPs: heavy-tailed membership sizes over a participation pool. -----
  // Participants (exactly ixp_participation of the connected ASes): all
  // transit ASes plus random connected stubs. Every participant is assigned
  // at least one IXP (so the attachment rate matches the paper's 40.2 %
  // exactly); remaining membership slots are filled degree-preferentially
  // (large transit networks join many IXPs).
  const auto pool_size = std::max<NodeId>(
      2, static_cast<NodeId>(std::llround(n_as * config.ixp_participation)));
  std::vector<NodeId> participants;
  participants.reserve(pool_size);
  for (NodeId v = 0; v < std::min(tier3_end, pool_size); ++v) participants.push_back(v);
  if (participants.size() < pool_size) {
    std::vector<NodeId> stubs;
    stubs.reserve(n_as - tier3_end);
    for (NodeId v = tier3_end; v < n_as; ++v) {
      if (!isolated[v] && !remote[v]) stubs.push_back(v);
    }
    for (std::size_t i = 0; i < stubs.size(); ++i) {  // Fisher-Yates prefix
      const std::size_t j = i + rng.uniform(stubs.size() - i);
      std::swap(stubs[i], stubs[j]);
      participants.push_back(stubs[i]);
      if (participants.size() == pool_size) break;
    }
  }

  // Membership sizes: bounded Pareto matching the 2014 profile (median IXPs
  // a few dozen members, DE-CIX/LINX-class up to ~1,000), then adjusted so
  // the total hits the membership budget. Budget must cover one slot per
  // participant (the >= 1 IXP guarantee).
  const std::uint64_t membership_budget =
      std::max<std::uint64_t>(config.target_ixp_memberships, participants.size());
  const double size_cap = std::max(8.0, std::min(3200.0, participants.size() * 0.5));
  std::vector<std::uint64_t> ixp_capacity(n_ixp);
  std::uint64_t capacity_total = 0;
  for (auto& cap : ixp_capacity) {
    cap = std::max<std::uint64_t>(
        2, static_cast<std::uint64_t>(std::llround(rng.pareto(0.55, 12.0, size_cap))));
    capacity_total += cap;
  }
  // Proportional correction toward the budget (clamped so the shape holds).
  const double correction = static_cast<double>(membership_budget) /
                            static_cast<double>(capacity_total);
  capacity_total = 0;
  for (auto& cap : ixp_capacity) {
    cap = std::max<std::uint64_t>(
        2, static_cast<std::uint64_t>(std::llround(static_cast<double>(cap) *
                                                   correction)));
    cap = std::min<std::uint64_t>(cap, participants.size());
    capacity_total += cap;
  }

  // Track per-IXP chosen members (dedup via per-IXP membership marks).
  std::vector<std::vector<NodeId>> ixp_members(n_ixp);
  std::vector<std::uint32_t> member_stamp(n_as, 0);  // last IXP index + 1

  // Pass 1 — breadth: each participant joins one IXP drawn with probability
  // proportional to remaining capacity.
  {
    std::vector<NodeId> capacity_pool;  // IXP index repeated per free slot
    capacity_pool.reserve(capacity_total);
    for (NodeId i = 0; i < n_ixp; ++i) {
      for (std::uint64_t s = 0; s < ixp_capacity[i]; ++s) capacity_pool.push_back(i);
    }
    for (const NodeId participant : participants) {
      const NodeId ixp_index = capacity_pool[rng.uniform(capacity_pool.size())];
      if (member_stamp[participant] != ixp_index + 1) {
        member_stamp[participant] = ixp_index + 1;
        ixp_members[ixp_index].push_back(participant);
      }
    }
  }

  // Pass 2 — depth: fill remaining capacity degree-preferentially (weight =
  // hierarchy degree accumulated so far, so transit hubs join many IXPs).
  std::vector<std::uint32_t> hier_degree(n_as, 0);
  for (const Edge& e : acc.edges()) {
    ++hier_degree[e.u];
    ++hier_degree[e.v];
  }
  std::vector<NodeId> member_pool;
  for (const NodeId v : participants) {
    member_pool.push_back(v);
    for (std::uint32_t i = 0; i < hier_degree[v]; i += 2) member_pool.push_back(v);
  }
  std::vector<bool> in_ixp(n_as, false);
  for (NodeId ixp_index = 0; ixp_index < n_ixp; ++ixp_index) {
    auto& members = ixp_members[ixp_index];
    const std::uint64_t want = ixp_capacity[ixp_index];
    if (members.size() >= want) continue;
    for (const NodeId m : members) in_ixp[m] = true;
    std::uint64_t tries = 0;
    const std::uint64_t max_tries = want * 40 + 100;
    while (members.size() < want && tries < max_tries) {
      ++tries;
      const NodeId candidate = member_pool[rng.uniform(member_pool.size())];
      if (in_ixp[candidate]) continue;
      in_ixp[candidate] = true;
      members.push_back(candidate);
    }
    for (const NodeId m : members) in_ixp[m] = false;
  }

  for (NodeId ixp_index = 0; ixp_index < n_ixp; ++ixp_index) {
    const NodeId ixp = n_as + ixp_index;
    for (const NodeId member : ixp_members[ixp_index]) {
      acc.add_peer(member, ixp);  // membership modeled as settlement-free
    }
  }

  acc.finalize();

  GraphBuilder builder(n);
  builder.reserve(acc.count());
  for (const Edge& e : acc.edges()) builder.add_edge(e.u, e.v);

  InternetTopology topo;
  topo.graph = builder.build();
  topo.meta = std::move(meta);
  topo.num_ases = n_as;
  topo.num_ixps = n_ixp;
  topo.relations = EdgeRelations(topo.graph, acc.edges(), acc.rels());
  return topo;
}

}  // namespace bsr::topology
