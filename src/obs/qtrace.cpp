#include "obs/qtrace.hpp"

#include <algorithm>
#include <stdexcept>

namespace bsr::obs {

namespace {

/// Upper bound on engine::plan_shards results (engine clamps BSR_THREADS to
/// 256). Ring slots beyond the live shard count stay empty vectors.
constexpr std::size_t kMaxShards = 256;

/// One shard's wrap-around ring. `rows` is lazily sized to capacity on the
/// shard's first record, so idle shard slots cost a few pointers. `head` is
/// the next write position (always recorded % capacity); kept explicitly so
/// the record path wraps with a compare instead of a 64-bit divide.
struct ShardRing {
  std::vector<QueryTraceRow> rows;
  std::uint64_t recorded = 0;
  std::size_t head = 0;
};

// The control thread owns `enabled`, `capacity` and `next_id`; each worker
// shard owns rings[shard] exclusively while a batch is in flight. No other
// sharing, hence no synchronization (mirrors the journal's Recorder).
struct Tracer {
  std::vector<ShardRing> rings;
  std::size_t capacity = 0;
  std::uint64_t next_id = 0;
  bool enabled = false;
};

Tracer& tracer() noexcept {
  static Tracer* t = new Tracer();  // leaked: outlives worker threads
  return *t;
}

}  // namespace

void start_query_trace(const QtraceOptions& options) {
  if (options.capacity == 0) {
    throw std::invalid_argument("start_query_trace: capacity must be > 0");
  }
  Tracer& t = tracer();
  t.rings.assign(kMaxShards, ShardRing{});
  t.capacity = options.capacity;
  t.next_id = 0;
  t.enabled = true;
}

void stop_query_trace() { tracer().enabled = false; }

bool query_trace_enabled() noexcept { return tracer().enabled; }

std::uint64_t qtrace_begin_batch(std::size_t n) noexcept {
  Tracer& t = tracer();
  const std::uint64_t base = t.next_id;
  t.next_id += n;
  return base;
}

void qtrace_record(std::size_t shard, const QueryTraceRow& row) noexcept {
  Tracer& t = tracer();
  if (!t.enabled || shard >= t.rings.size()) return;
  ShardRing& ring = t.rings[shard];
  if (ring.rows.empty()) ring.rows.resize(t.capacity);
  ring.rows[ring.head] = row;
  if (++ring.head == t.capacity) ring.head = 0;
  ++ring.recorded;
}

QtraceSnapshot snapshot_query_trace() {
  const Tracer& t = tracer();
  QtraceSnapshot snap;
  for (const ShardRing& ring : t.rings) {
    snap.recorded += ring.recorded;
    const std::uint64_t live =
        std::min<std::uint64_t>(ring.recorded, t.capacity);
    for (std::uint64_t s = ring.recorded - live; s < ring.recorded; ++s) {
      snap.rows.push_back(ring.rows[static_cast<std::size_t>(s % t.capacity)]);
    }
  }
  // Trace ids are globally unique and each shard records them in increasing
  // order, so per-shard eviction only ever dropped ids below every survivor
  // of that shard — the union above is a superset of the global newest
  // `capacity` ids. Sort and trim to exactly that set.
  std::sort(snap.rows.begin(), snap.rows.end(),
            [](const QueryTraceRow& a, const QueryTraceRow& b) {
              return a.trace_id < b.trace_id;
            });
  if (snap.rows.size() > t.capacity) {
    snap.rows.erase(snap.rows.begin(),
                    snap.rows.end() - static_cast<std::ptrdiff_t>(t.capacity));
  }
  snap.dropped = snap.recorded - snap.rows.size();
  return snap;
}

}  // namespace bsr::obs
