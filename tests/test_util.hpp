// Shared fixtures and naive reference implementations for the test suite.
//
// Reference implementations here are deliberately simple (quadratic, brute
// force) and independent of the optimized library code they validate.
#pragma once

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/graph_builder.hpp"
#include "graph/rng.hpp"

namespace bsr::test {

using bsr::graph::CsrGraph;
using bsr::graph::GraphBuilder;
using bsr::graph::NodeId;

/// 0-1-2-...-(n-1) path.
inline CsrGraph make_path(NodeId n) {
  GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

/// Cycle over n vertices.
inline CsrGraph make_cycle(NodeId n) {
  GraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return b.build();
}

/// Star with center 0 and n-1 leaves.
inline CsrGraph make_star(NodeId n) {
  GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) b.add_edge(0, v);
  return b.build();
}

/// Complete graph K_n.
inline CsrGraph make_complete(NodeId n) {
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return b.build();
}

/// G(n, p) random graph, deterministic in seed. Not necessarily connected.
inline CsrGraph make_random(NodeId n, double p, std::uint64_t seed) {
  bsr::graph::Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) b.add_edge(u, v);
    }
  }
  return b.build();
}

/// Connected random graph: G(n, p) plus a random spanning path.
inline CsrGraph make_connected_random(NodeId n, double p, std::uint64_t seed) {
  bsr::graph::Rng rng(seed);
  GraphBuilder b(n);
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.uniform(i);
    std::swap(order[i - 1], order[j]);
  }
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(order[v], order[v + 1]);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) b.add_edge(u, v);
    }
  }
  return b.build();
}

// --- minimal JSON reader -----------------------------------------------------
// Just enough JSON to round-trip what the exporters emit (objects, arrays,
// strings, numbers, booleans, null). Strict where it matters for tests —
// trailing garbage and malformed tokens throw — and independent of the
// writer code it validates.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }
  void expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) fail("bad literal");
    pos_ += lit.size();
  }

  JsonValue parse_value() {
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      case 't':
        expect_literal("true");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        expect_literal("false");
        v.kind = JsonValue::Kind::kBool;
        return v;
      case 'n':
        expect_literal("null");
        return v;
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const unsigned code =
              static_cast<unsigned>(std::stoul(std::string(text_.substr(pos_, 4)),
                                               nullptr, 16));
          pos_ += 4;
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t begin = pos_;
    while (pos_ < text_.size() &&
           (std::string_view("+-.eE0123456789").find(text_[pos_]) !=
            std::string_view::npos)) {
      ++pos_;
    }
    if (pos_ == begin) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    try {
      v.number = std::stod(std::string(text_.substr(begin, pos_ - begin)));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

inline JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse();
}

/// Naive O(V^2) BFS distances used as the reference.
inline std::vector<std::uint32_t> naive_bfs(const CsrGraph& g, NodeId source) {
  constexpr auto kInf = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(g.num_vertices(), kInf);
  dist[source] = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId u = 0; u < g.num_vertices(); ++u) {
      if (dist[u] == kInf) continue;
      for (const NodeId v : g.neighbors(u)) {
        if (dist[v] > dist[u] + 1) {
          dist[v] = dist[u] + 1;
          changed = true;
        }
      }
    }
  }
  return dist;
}

}  // namespace bsr::test
