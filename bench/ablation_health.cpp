// Ablation: the health control plane — detection latency, false positives,
// and the price of believing stale views.
//
// Every other ablation hands the router and repair loop an oracle: failures
// are visible the instant they happen. This one interposes the probe-based
// detector of sim/health and asks the operator's questions: how long does a
// dead broker stay *believed-routable* (the misrouting exposure window), how
// often does the detector condemn a broker that was merely unreachable
// (false quarantine), and how much l-hop connectivity does the believed
// plane preserve relative to the oracle? The sweep varies the probe interval
// (powers of two, so probe grids nest) and the quarantine threshold; the
// ground-truth fault timeline is identical at every sweep point, which makes
// the exposure numbers directly comparable and the interval sweep provably
// monotone. Emits BENCH_health.json (override with BENCH_HEALTH_JSON) in the
// unified bsr-bench/1 layout, with the sweep table as a raw extra section.
#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness.hpp"
#include "broker/maxsg.hpp"
#include "graph/fault_plane.hpp"
#include "graph/sampling.hpp"
#include "sim/churn.hpp"
#include "sim/health.hpp"
#include "sim/router.hpp"

namespace {

struct SweepPoint {
  double probe_interval = 0.0;
  std::uint32_t quarantine_after = 0;
  bsr::sim::HealthChurnResult churn;
  bsr::sim::HealthShares shares;
  double lhop_believed = 0.0;
  double lhop_oracle = 0.0;
};

}  // namespace

int main() {
  auto ctx = bsr::bench::make_context("Ablation: broker health control plane");
  const auto& g = ctx.topo.graph;
  bsr::bench::Harness harness("ablation_health", ctx);

  const std::uint32_t k = ctx.env.scaled(1000, 10);
  const auto brokers = bsr::broker::maxsg(g, k).brokers;
  std::cout << "broker set: " << brokers.size() << " members\n";

  // Correlated link damage: one failure group per IXP.
  std::vector<bsr::graph::FailureGroup> groups;
  for (bsr::graph::NodeId v = ctx.topo.num_ases; v < ctx.topo.num_vertices(); ++v) {
    groups.push_back(bsr::graph::incident_group(g, v));
  }

  bsr::sim::HealthChurnConfig churn_cfg;
  churn_cfg.departure_rate = 0.4;
  churn_cfg.mean_return_time = 15.0;
  churn_cfg.horizon = 120.0;
  bsr::sim::LinkChurnConfig link_cfg;
  link_cfg.outage_rate = 0.1;
  link_cfg.mean_downtime = 8.0;
  bsr::sim::RepairPolicy repair;
  repair.budget = ctx.env.scaled(20, 2);

  // Static stale-view snapshot shared by every sweep point: the same broker
  // vertices go dark at t = 0, the detector gets a fixed settle window, and
  // the router then routes by the (stale) view while truth sits in the
  // fault plane.
  const bsr::graph::NodeId vantage =
      bsr::sim::HealthMonitor::choose_vantage(g, brokers);
  std::vector<bsr::graph::NodeId> dark;
  {
    bsr::graph::Rng pick_rng(ctx.env.seed + 51);
    const auto num_dark =
        static_cast<bsr::graph::NodeId>(std::max<std::size_t>(brokers.size() / 5, 1));
    const auto picks = bsr::graph::sample_distinct(
        pick_rng, static_cast<bsr::graph::NodeId>(brokers.size()), num_dark);
    // Keep the vantage up: with the probe origin itself dark every probe
    // fails and the snapshot degenerates to a total blackout.
    for (const auto i : picks) {
      if (brokers.members()[i] != vantage) dark.push_back(brokers.members()[i]);
    }
  }
  constexpr double kSettle = 40.0;
  const std::size_t num_pairs = std::max<std::size_t>(ctx.env.bfs_sources, 200);
  constexpr std::uint32_t kHops = 2;

  std::vector<SweepPoint> sweep;
  bsr::io::Table table({"interval", "threshold", "rounds", "quarantines",
                        "det. latency", "FP rate", "dead-routable", "shunned-up",
                        "believed conn", "oracle conn", "misrouted", "shunned",
                        "lhop blv/orc"});
  for (const std::uint32_t quarantine_after : {3u, 5u}) {
    for (const double interval : {4.0, 2.0, 1.0, 0.5}) {
      SweepPoint pt;
      pt.probe_interval = interval;
      pt.quarantine_after = quarantine_after;

      bsr::sim::HealthConfig health;
      health.probe_interval = interval;
      health.suspect_after = 1;
      health.quarantine_after = quarantine_after;
      health.propagation_delay = 0.5;

      harness.run("point.q" + std::to_string(quarantine_after) + ".i" +
                      bsr::io::format_double(interval, 1),
                  [&] {
        // Same seed every point: the ground-truth timeline is drawn from a
        // forked stream before any health knob is consulted, so all sweep
        // points replay identical damage.
        bsr::graph::Rng rng(ctx.env.seed + 50);
        pt.churn = bsr::sim::simulate_churn_with_health(
            g, brokers, churn_cfg, link_cfg, groups, health, repair, rng);

        // Static snapshot: detection after a fixed settle window.
        bsr::graph::FaultPlane plane(g);
        for (const auto v : dark) plane.fail_vertex(v);
        bsr::sim::HealthMonitor monitor(g, brokers, plane, health, vantage,
                                        ctx.env.seed + 52);
        monitor.advance(kSettle);
        const bsr::sim::HealthView& view = monitor.view_at(kSettle);

        bsr::sim::Router router(g, brokers, &plane);
        router.set_health_view(&view);
        bsr::graph::Rng pair_rng(ctx.env.seed + 53);  // same pairs at every point
        pt.shares = bsr::sim::sample_health_shares(router, pair_rng, num_pairs);

        std::vector<bool> oracle_usable = brokers.mask();
        for (const auto v : dark) oracle_usable[v] = false;
        bsr::graph::Rng lhop_rng_a(ctx.env.seed + 54);
        bsr::graph::Rng lhop_rng_b(ctx.env.seed + 54);  // same sources
        pt.lhop_believed = bsr::sim::lhop_connectivity(
            g, view.routable, &plane, kHops, lhop_rng_a, ctx.env.bfs_sources);
        pt.lhop_oracle = bsr::sim::lhop_connectivity(
            g, oracle_usable, &plane, kHops, lhop_rng_b, ctx.env.bfs_sources);
      });

      table.row()
          .cell(bsr::io::format_double(interval, 1))
          .cell(static_cast<std::uint64_t>(quarantine_after))
          .cell(pt.churn.probe_rounds)
          .cell(pt.churn.quarantines)
          .cell(bsr::io::format_double(pt.churn.mean_detection_latency(), 2))
          .percent(pt.churn.false_positive_rate())
          .cell(bsr::io::format_double(pt.churn.dead_routable_time, 1))
          .cell(bsr::io::format_double(pt.churn.shunned_up_time, 1))
          .percent(pt.churn.mean_believed_connectivity)
          .percent(pt.churn.mean_oracle_connectivity)
          .percent(pt.shares.fraction(pt.shares.misrouted))
          .percent(pt.shares.fraction(pt.shares.shunned))
          .cell(bsr::io::format_percent(pt.lhop_believed) + "/" +
                bsr::io::format_percent(pt.lhop_oracle));
      sweep.push_back(std::move(pt));
    }
  }
  table.print(std::cout);

  // Faster probing must shrink the misrouting exposure window: within each
  // threshold, dead-routable broker-time is non-increasing as the probe
  // interval halves (the probe grids nest, so detection can only get earlier
  // on the identical fault timeline).
  bool exposure_monotone = true;
  for (std::size_t i = 0; i + 1 < sweep.size(); ++i) {
    if (sweep[i].quarantine_after != sweep[i + 1].quarantine_after) continue;
    if (sweep[i + 1].churn.dead_routable_time >
        sweep[i].churn.dead_routable_time + 1e-9) {
      exposure_monotone = false;
    }
  }
  std::cout << "misrouting exposure shrinks monotonically with probe interval: "
            << (exposure_monotone ? "yes" : "NO") << "\n";
  std::cout << "(takeaway: the detector trades probe traffic for exposure — "
               "halving the probe interval shrinks the dead-but-believed-"
               "routable window, while a higher quarantine threshold trades "
               "false quarantines for slower detection; the believed plane "
               "tracks the oracle's l-hop connectivity once views settle)\n";

  // --- JSON artifact -------------------------------------------------------
  harness.metric("brokers", static_cast<double>(brokers.size()));
  harness.metric("horizon", churn_cfg.horizon);
  harness.metric("exposure_monotone", exposure_monotone ? 1.0 : 0.0);
  std::ostringstream json;
  json << "[\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& pt = sweep[i];
    json << "    {\"probe_interval\": " << pt.probe_interval
         << ", \"quarantine_after\": " << pt.quarantine_after
         << ", \"probe_rounds\": " << pt.churn.probe_rounds
         << ", \"quarantines\": " << pt.churn.quarantines
         << ", \"false_positive_rate\": " << pt.churn.false_positive_rate()
         << ", \"detection_latency_mean\": " << pt.churn.mean_detection_latency()
         << ", \"detected_episodes\": " << pt.churn.detection_latencies.size()
         << ", \"dead_routable_time\": " << pt.churn.dead_routable_time
         << ", \"shunned_up_time\": " << pt.churn.shunned_up_time
         << ", \"mean_believed_connectivity\": " << pt.churn.mean_believed_connectivity
         << ", \"mean_oracle_connectivity\": " << pt.churn.mean_oracle_connectivity
         << ", \"replacements_added\": " << pt.churn.replacements_added
         << ", \"misrouted_share\": " << pt.shares.fraction(pt.shares.misrouted)
         << ", \"shunned_share\": " << pt.shares.fraction(pt.shares.shunned)
         << ", \"lhop_believed\": " << pt.lhop_believed
         << ", \"lhop_oracle\": " << pt.lhop_oracle << "}"
         << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  json << "  ]";
  harness.raw_section("sweep", json.str());
  harness.write_json_file("BENCH_health.json", "BENCH_HEALTH_JSON");
  return exposure_monotone ? 0 : 1;
}
