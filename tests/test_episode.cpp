// Tests for the causal episode reconstructor: phase arithmetic on synthetic
// journals, detect-anchor stitching, truncation-vs-malformation discipline,
// qtrace attribution, JSONL golden bytes, and an end-to-end run against the
// real HealthMonitor producer (including the no-id-reuse overlap regression).
#include <algorithm>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "broker/broker_set.hpp"
#include "graph/fault_plane.hpp"
#include "obs/episode.hpp"
#include "obs/export.hpp"
#include "obs/journal.hpp"
#include "obs/qtrace.hpp"
#include "sim/health.hpp"
#include "test_util.hpp"

namespace {

using bsr::obs::Episode;
using bsr::obs::EpisodeKind;
using bsr::obs::EpisodePhase;
using bsr::obs::EpisodeReport;
using bsr::obs::episodes_from_journal;
using bsr::obs::Event;
using bsr::obs::EventRecord;
using bsr::obs::Journal;
using bsr::obs::QueryTraceRow;
using bsr::obs::QtraceSnapshot;

constexpr std::size_t kDetect = static_cast<std::size_t>(EpisodePhase::kDetect);
constexpr std::size_t kReact = static_cast<std::size_t>(EpisodePhase::kReact);
constexpr std::size_t kQueue = static_cast<std::size_t>(EpisodePhase::kQueue);
constexpr std::size_t kExec = static_cast<std::size_t>(EpisodePhase::kExec);
constexpr std::size_t kDrain = static_cast<std::size_t>(EpisodePhase::kDrain);

EventRecord ev(Event type, double t, std::uint64_t subject,
               std::uint64_t corr) {
  EventRecord record;
  record.time = t;
  record.type = type;
  record.subject = subject;
  record.correlation = corr;
  return record;
}

/// Builds a snapshot the way the exporter would order it: ascending
/// (time, event slot, subject), insertion order as the final tie-break.
Journal make_journal(std::vector<EventRecord> events,
                     std::uint64_t dropped = 0) {
  std::stable_sort(events.begin(), events.end(),
                   [](const EventRecord& a, const EventRecord& b) {
                     if (a.time != b.time) return a.time < b.time;
                     if (a.type != b.type) return a.type < b.type;
                     return a.subject < b.subject;
                   });
  Journal journal;
  journal.events = std::move(events);
  for (std::size_t i = 0; i < journal.events.size(); ++i) {
    journal.events[i].seq = i;
  }
  journal.dropped = dropped;
  journal.recorded = journal.events.size() + dropped;
  return journal;
}

QueryTraceRow qrow(double t, std::uint64_t corr, std::uint8_t status) {
  QueryTraceRow row;
  row.time = t;
  row.correlation = corr;
  row.status = status;
  row.stale_behind = corr == 0 ? 0 : 1;
  return row;
}

TEST(EpisodeTest, ServeLifecycleWithRetriesDecomposesPhases) {
  const Journal journal = make_journal({
      ev(Event::kChurnDeparture, 1.0, 5, 0),
      ev(Event::kRouteServiceDegrade, 2.0, 3, 7),
      ev(Event::kRouteServiceRebuildStart, 2.5, 3, 1),
      ev(Event::kRouteServiceRebuildCrash, 3.5, 3, 1),
      ev(Event::kRouteServiceRebuildStart, 4.0, 3, 2),
      ev(Event::kRouteServiceRebuildDiscard, 5.0, 3, 2),
      ev(Event::kRouteServiceRebuildStart, 5.5, 3, 3),
      ev(Event::kRouteServiceEpochPublish, 6.5, 4, 3),
  });
  const EpisodeReport report = episodes_from_journal(journal);
  EXPECT_EQ(report.malformed, 0u);
  ASSERT_EQ(report.episodes.size(), 1u);
  const Episode& e = report.episodes[0];
  EXPECT_EQ(e.kind, EpisodeKind::kServe);
  EXPECT_EQ(e.id, 7u);       // the opening degrade's truth version
  EXPECT_EQ(e.subject, 3u);  // serving epoch at open
  EXPECT_EQ(e.open_time, 1.0);  // anchored to the churn departure
  EXPECT_EQ(e.close_time, 6.5);
  EXPECT_TRUE(e.closed);
  EXPECT_FALSE(e.truncated);
  EXPECT_EQ(e.phases[kDetect], 1.0);  // fault -> degrade
  EXPECT_EQ(e.phases[kReact], 0.5);   // degrade -> first start
  EXPECT_EQ(e.phases[kQueue], 1.0);   // two 0.5 backoff waits
  EXPECT_EQ(e.phases[kExec], 3.0);    // three 1.0 builds
  EXPECT_EQ(e.phases[kDrain], 0.0);
  EXPECT_EQ(e.phase_total(), e.span());
  EXPECT_EQ(e.attempts, 3u);
  EXPECT_EQ(e.failures, 2u);
  EXPECT_FALSE(e.gave_up);
  // Label-switching slices partition [open, close]: detect, react, then
  // alternating exec/queue ending on the publishing build.
  ASSERT_EQ(e.slices.size(), 7u);
  EXPECT_EQ(e.slices.front().begin, e.open_time);
  EXPECT_EQ(e.slices.back().end, e.close_time);
  for (std::size_t s = 1; s < e.slices.size(); ++s) {
    EXPECT_EQ(e.slices[s].begin, e.slices[s - 1].end);
  }
  EXPECT_EQ(e.slices[0].phase, EpisodePhase::kDetect);
  EXPECT_EQ(e.slices[1].phase, EpisodePhase::kReact);
  EXPECT_EQ(e.slices[2].phase, EpisodePhase::kExec);
  EXPECT_EQ(e.slices[3].phase, EpisodePhase::kQueue);
}

TEST(EpisodeTest, HealthLifecycleWithFlapKeepsOneChain) {
  const Journal journal = make_journal({
      ev(Event::kChurnDeparture, 1.0, 9, 0),
      ev(Event::kHealthProbeMiss, 1.5, 9, 0),
      ev(Event::kHealthSuspect, 2.0, 9, 11),
      ev(Event::kHealthQuarantine, 3.0, 9, 11),
      ev(Event::kRepairAttempt, 3.5, 1, 11),  // recruited one standby
      ev(Event::kHealthProbation, 4.0, 9, 11),
      ev(Event::kHealthQuarantine, 4.5, 9, 11),  // flap back in
      ev(Event::kHealthProbation, 5.5, 9, 11),
      ev(Event::kHealthRecover, 6.0, 9, 11),
  });
  const EpisodeReport report = episodes_from_journal(journal);
  EXPECT_EQ(report.malformed, 0u);
  ASSERT_EQ(report.episodes.size(), 1u);
  const Episode& e = report.episodes[0];
  EXPECT_EQ(e.kind, EpisodeKind::kHealth);
  EXPECT_EQ(e.id, 11u);
  EXPECT_EQ(e.subject, 9u);
  EXPECT_EQ(e.open_time, 1.0);  // churn departure beats the miss streak
  EXPECT_EQ(e.close_time, 6.0);
  EXPECT_TRUE(e.closed);
  EXPECT_EQ(e.phases[kDetect], 1.0);
  EXPECT_EQ(e.phases[kReact], 1.0);   // suspect dwell
  EXPECT_EQ(e.phases[kQueue], 2.0);   // both quarantine dwells
  EXPECT_EQ(e.phases[kExec], 0.0);
  EXPECT_EQ(e.phases[kDrain], 1.0);   // both probation dwells
  EXPECT_EQ(e.phase_total(), e.span());
  EXPECT_EQ(e.attempts, 1u);
  EXPECT_EQ(e.failures, 0u);
}

TEST(EpisodeTest, MissStreakAnchorsDetectAndOkResetsIt) {
  const Journal journal = make_journal({
      ev(Event::kHealthProbeMiss, 1.0, 4, 0),
      ev(Event::kHealthProbeOk, 1.2, 4, 0),  // streak broken
      ev(Event::kHealthProbeMiss, 1.5, 4, 0),
      ev(Event::kHealthSuspect, 2.0, 4, 3),
      ev(Event::kHealthRecover, 3.0, 4, 3),
  });
  const EpisodeReport report = episodes_from_journal(journal);
  EXPECT_EQ(report.malformed, 0u);
  ASSERT_EQ(report.episodes.size(), 1u);
  EXPECT_EQ(report.episodes[0].open_time, 1.5);  // current streak only
  EXPECT_EQ(report.episodes[0].phases[kDetect], 0.5);
}

TEST(EpisodeTest, UnclosedChainEndsAtHorizonFlaggedOpen) {
  const Journal journal = make_journal({
      ev(Event::kRouteServiceDegrade, 2.0, 1, 5),
      ev(Event::kRouteServiceRebuildStart, 3.0, 1, 1),
      ev(Event::kRouteServiceBatch, 10.0, 0, 0),  // journal keeps going
  });
  const EpisodeReport report = episodes_from_journal(journal);
  EXPECT_EQ(report.malformed, 0u);
  ASSERT_EQ(report.episodes.size(), 1u);
  const Episode& e = report.episodes[0];
  EXPECT_FALSE(e.closed);
  EXPECT_EQ(e.open_time, 2.0);
  EXPECT_EQ(e.close_time, 10.0);  // observation horizon, not a terminal
  EXPECT_EQ(e.phases[kReact], 1.0);
  EXPECT_EQ(e.phases[kExec], 7.0);  // trailing interval stays under exec
  EXPECT_EQ(e.phase_total(), e.span());
}

TEST(EpisodeTest, GiveUpDwellsUnderQueueUntilHorizon) {
  const Journal journal = make_journal({
      ev(Event::kRouteServiceDegrade, 1.0, 1, 2),
      ev(Event::kRouteServiceRebuildStart, 1.5, 1, 1),
      ev(Event::kRouteServiceRebuildCrash, 2.5, 1, 1),
      ev(Event::kRouteServiceRebuildGiveUp, 2.5, 1, 1),
      ev(Event::kRouteServiceBatch, 6.5, 0, 0),
  });
  const EpisodeReport report = episodes_from_journal(journal);
  EXPECT_EQ(report.malformed, 0u);
  ASSERT_EQ(report.episodes.size(), 1u);
  const Episode& e = report.episodes[0];
  EXPECT_FALSE(e.closed);
  EXPECT_TRUE(e.gave_up);
  EXPECT_EQ(e.phases[kQueue], 4.0);  // dead dwell after the budget ran out
  EXPECT_EQ(e.attempts, 1u);
  EXPECT_EQ(e.failures, 1u);
}

TEST(EpisodeTest, EqualTimeCompletionsRunBeforeNewStarts) {
  // Within one simulated instant the journal's export key orders a degrade
  // (slot 24) and rebuild start (26) ahead of the epoch publish (30) that
  // causally preceded them. The reconstructor must close episode 2 before
  // opening episode 3 or the degrade would look nested.
  const Journal journal = make_journal({
      ev(Event::kRouteServiceDegrade, 1.0, 1, 2),
      ev(Event::kRouteServiceRebuildStart, 1.5, 1, 1),
      ev(Event::kRouteServiceEpochPublish, 2.0, 2, 1),
      ev(Event::kRouteServiceDegrade, 2.0, 2, 3),
      ev(Event::kRouteServiceRebuildStart, 2.0, 2, 2),
      ev(Event::kRouteServiceEpochPublish, 3.0, 3, 2),
  });
  const EpisodeReport report = episodes_from_journal(journal);
  EXPECT_EQ(report.malformed, 0u);
  ASSERT_EQ(report.episodes.size(), 2u);
  EXPECT_EQ(report.episodes[0].id, 2u);
  EXPECT_EQ(report.episodes[0].close_time, 2.0);
  EXPECT_TRUE(report.episodes[0].closed);
  EXPECT_EQ(report.episodes[1].id, 3u);
  EXPECT_EQ(report.episodes[1].open_time, 2.0);
  EXPECT_EQ(report.episodes[1].phases[kExec], 1.0);
}

TEST(EpisodeTest, InitialBuildPublishIsNotAnEpisode) {
  const Journal journal = make_journal({
      ev(Event::kRouteServiceEpochPublish, 0.0, 1, 0),  // constructor build
  });
  const EpisodeReport report = episodes_from_journal(journal);
  EXPECT_EQ(report.malformed, 0u);
  EXPECT_TRUE(report.episodes.empty());
}

TEST(EpisodeTest, DropFreeOrphansAndReuseCountMalformed) {
  {
    // Mid-chain orphan with no drops: producer contract violation.
    const Journal journal =
        make_journal({ev(Event::kHealthQuarantine, 5.0, 8, 8)});
    const EpisodeReport report = episodes_from_journal(journal);
    EXPECT_EQ(report.malformed, 1u);
    EXPECT_TRUE(report.episodes.empty());
  }
  {
    // Events after the terminal, then a reopened id: two violations.
    const Journal journal = make_journal({
        ev(Event::kHealthSuspect, 1.0, 2, 5),
        ev(Event::kHealthRecover, 2.0, 2, 5),
        ev(Event::kHealthQuarantine, 3.0, 2, 5),
        ev(Event::kHealthSuspect, 4.0, 2, 5),
    });
    const EpisodeReport report = episodes_from_journal(journal);
    EXPECT_EQ(report.malformed, 2u);
    ASSERT_EQ(report.episodes.size(), 1u);
    EXPECT_TRUE(report.episodes[0].closed);
  }
  {
    // A probe stamped with a terminated episode's id: the hygiene tripwire
    // the HealthMonitor's recovery-time id retirement exists to keep quiet.
    const Journal journal = make_journal({
        ev(Event::kHealthSuspect, 1.0, 2, 5),
        ev(Event::kHealthRecover, 2.0, 2, 5),
        ev(Event::kHealthProbeOk, 3.0, 2, 5),
    });
    EXPECT_EQ(episodes_from_journal(journal).malformed, 1u);
  }
  {
    // Rebuild-attempt id reused, and a terminal with no start.
    const Journal journal = make_journal({
        ev(Event::kRouteServiceDegrade, 1.0, 1, 2),
        ev(Event::kRouteServiceRebuildStart, 1.5, 1, 1),
        ev(Event::kRouteServiceRebuildStart, 2.0, 1, 1),
        ev(Event::kRouteServiceRebuildCrash, 2.5, 1, 9),
    });
    EXPECT_EQ(episodes_from_journal(journal).malformed, 2u);
  }
}

TEST(EpisodeTest, LossyJournalSynthesizesTruncatedChains) {
  // Same orphan events, but the ring admits it evicted records: the
  // reconstructor flags instead of condemning.
  const Journal journal = make_journal(
      {
          ev(Event::kHealthQuarantine, 5.0, 8, 8),
          ev(Event::kHealthRecover, 7.0, 8, 8),
          ev(Event::kRouteServiceEpochPublish, 9.0, 2, 4),  // chain evicted
      },
      /*dropped=*/3);
  const EpisodeReport report = episodes_from_journal(journal);
  EXPECT_EQ(report.malformed, 0u);
  EXPECT_EQ(report.journal_dropped, 3u);
  EXPECT_TRUE(report.truncated());
  ASSERT_EQ(report.episodes.size(), 2u);
  const Episode& health = report.episodes[0];
  EXPECT_EQ(health.kind, EpisodeKind::kHealth);
  EXPECT_TRUE(health.truncated);
  EXPECT_TRUE(health.closed);
  EXPECT_EQ(health.open_time, 5.0);  // only the surviving suffix
  EXPECT_EQ(health.phases[kQueue], 2.0);
  const Episode& serve = report.episodes[1];
  EXPECT_EQ(serve.kind, EpisodeKind::kServe);
  EXPECT_TRUE(serve.truncated);
  EXPECT_EQ(serve.span(), 0.0);  // zero-span marker for the lost chain
}

TEST(EpisodeTest, QtraceRowsAttributeByWindowAndCorrelation) {
  const Journal journal = make_journal({
      ev(Event::kRouteServiceDegrade, 1.0, 1, 7),
      ev(Event::kRouteServiceRebuildStart, 2.0, 1, 1),
      ev(Event::kRouteServiceEpochPublish, 6.5, 2, 1),
  });
  QtraceSnapshot qtrace;
  qtrace.rows = {
      qrow(3.0, 7, 1),   // stale served inside the window
      qrow(4.0, 8, 2),   // shed, correlation past the opening version
      qrow(5.0, 9, 3),   // refused
      qrow(5.0, 3, 1),   // correlation before the episode opened
      qrow(9.0, 7, 1),   // outside every window
      qrow(3.0, 7, 0),   // fresh rows never attribute
      qrow(3.0, 0, 1),   // no correlation: fresh-state shedding
  };
  qtrace.recorded = qtrace.rows.size();
  const EpisodeReport report = episodes_from_journal(journal, &qtrace);
  ASSERT_EQ(report.episodes.size(), 1u);
  EXPECT_EQ(report.episodes[0].stale_served, 1u);
  EXPECT_EQ(report.episodes[0].shedded, 1u);
  EXPECT_EQ(report.episodes[0].refused, 1u);
  EXPECT_EQ(report.unattributed, 2u);
}

TEST(EpisodeTest, NonRepresentableTimesStillSumExactly) {
  // 0.1 / 0.2 / 0.3 / 0.7 are not dyadic: the naive phase sum differs from
  // the span by an ulp, and the residual fold must absorb it.
  const Journal journal = make_journal({
      ev(Event::kRouteServiceDegrade, 0.1, 1, 2),
      ev(Event::kRouteServiceRebuildStart, 0.2, 1, 1),
      ev(Event::kRouteServiceRebuildCrash, 0.3, 1, 1),
      ev(Event::kRouteServiceRebuildStart, 0.4, 1, 2),
      ev(Event::kRouteServiceEpochPublish, 0.7, 2, 2),
  });
  const EpisodeReport report = episodes_from_journal(journal);
  ASSERT_EQ(report.episodes.size(), 1u);
  const Episode& e = report.episodes[0];
  EXPECT_EQ(e.phase_total(), e.span());  // bit-exact, not approximate
}

TEST(EpisodeTest, JsonlWriterGoldenBytes) {
  const Journal journal = make_journal({
      ev(Event::kRouteServiceDegrade, 1.0, 1, 2),
      ev(Event::kRouteServiceRebuildStart, 1.5, 1, 1),
      ev(Event::kRouteServiceEpochPublish, 2.5, 2, 1),
  });
  const EpisodeReport report = episodes_from_journal(journal);
  std::ostringstream out;
  bsr::obs::write_episodes_jsonl(out, report);
  EXPECT_EQ(out.str(),
            "{\"schema\": \"bsr-episodes/1\", \"episodes\": 1, "
            "\"journal_dropped\": 0, \"qtrace_dropped\": 0, \"malformed\": 0, "
            "\"unattributed\": 0}\n"
            "{\"kind\": \"serve\", \"id\": 2, \"subject\": 1, \"open\": 1, "
            "\"close\": 2.5, \"closed\": true, \"truncated\": false, "
            "\"exposure\": 1.5, \"phases\": {\"detect\": 0, \"react\": 0.5, "
            "\"queue\": 0, \"exec\": 1, \"drain\": 0}, \"attempts\": 1, "
            "\"failures\": 0, \"gave_up\": false, \"stale_served\": 0, "
            "\"shedded\": 0, \"refused\": 0}\n");
}

TEST(EpisodeTest, ReportSortsByOpenTimeKindId) {
  const Journal journal = make_journal({
      ev(Event::kHealthSuspect, 1.0, 2, 4),
      ev(Event::kRouteServiceDegrade, 1.0, 1, 9),
      ev(Event::kHealthRecover, 2.0, 2, 4),
      ev(Event::kRouteServiceRebuildStart, 2.0, 1, 1),
      ev(Event::kRouteServiceEpochPublish, 3.0, 2, 1),
  });
  const EpisodeReport report = episodes_from_journal(journal);
  ASSERT_EQ(report.episodes.size(), 2u);
  EXPECT_EQ(report.episodes[0].kind, EpisodeKind::kHealth);  // kind tiebreak
  EXPECT_EQ(report.episodes[1].kind, EpisodeKind::kServe);
}

// End-to-end against the real producer: the HealthMonitor's journal stream
// reconstructs with zero malformed lifecycles, and overlapping failures of
// the same broker get distinct episode ids with corr-0 probes in between
// (the id-retirement regression).
TEST(EpisodeTest, HealthMonitorOverlapGetsFreshEpisodeIds) {
  if (!BSR_STATS_ENABLED) GTEST_SKIP() << "built with BSR_STATS=OFF";

  const auto g = bsr::test::make_complete(8);
  const bsr::broker::BrokerSet brokers(
      8, std::vector<bsr::graph::NodeId>{0, 2, 4});
  bsr::graph::FaultPlane faults(g);
  bsr::sim::HealthConfig config;
  config.probe_interval = 1.0;
  config.suspect_after = 1;
  config.quarantine_after = 2;
  config.probation_successes = 1;
  config.reprobe_backoff = 1.0;
  config.backoff_max = 16.0;
  config.jitter = 0.0;

  bsr::obs::start_recording();
  bsr::sim::HealthMonitor monitor(g, brokers, faults, config, 0, 7);

  faults.fail_vertex(4);
  monitor.advance(10.0);
  faults.heal_vertex(4);
  monitor.advance(30.0);  // recover fully
  faults.fail_vertex(4);  // second, non-overlapping failure of the subject
  monitor.advance(40.0);
  faults.heal_vertex(4);
  monitor.advance(70.0);
  bsr::obs::stop_recording();

  const Journal journal = bsr::obs::snapshot_journal();
  ASSERT_EQ(journal.dropped, 0u);
  const EpisodeReport report = episodes_from_journal(journal);
  EXPECT_EQ(report.malformed, 0u);

  std::vector<const Episode*> broker4;
  for (const Episode& e : report.episodes) {
    ASSERT_EQ(e.kind, EpisodeKind::kHealth);
    EXPECT_EQ(e.phase_total(), e.span());
    if (e.subject == 4) broker4.push_back(&e);
  }
  ASSERT_EQ(broker4.size(), 2u);
  EXPECT_NE(broker4[0]->id, broker4[1]->id);  // never reused across failures
  EXPECT_TRUE(broker4[0]->closed);
  EXPECT_TRUE(broker4[1]->closed);
  EXPECT_LT(broker4[0]->close_time, broker4[1]->open_time);

  // Between the two failures the broker is healthy again: its probes must
  // carry no episode id (the retired id is gone, not lingering).
  for (const EventRecord& record : journal.events) {
    if (record.type != Event::kHealthProbeOk || record.subject != 4) continue;
    if (record.time > broker4[0]->close_time &&
        record.time < broker4[1]->open_time) {
      EXPECT_EQ(record.correlation, 0u) << "at t=" << record.time;
    }
  }
}

}  // namespace
