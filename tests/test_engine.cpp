#include "graph/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/check.hpp"
#include "graph/components.hpp"
#include "graph/distance_histogram.hpp"
#include "graph/fault_plane.hpp"
#include "graph/rng.hpp"
#include "graph/rollback_union_find.hpp"
#include "test_util.hpp"

namespace bsr::graph {
namespace {

using bsr::test::make_connected_random;
using bsr::test::make_path;
using bsr::test::make_random;
using bsr::test::naive_bfs;

std::vector<bool> random_mask(NodeId n, double p, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<bool> mask(n, false);
  for (NodeId v = 0; v < n; ++v) mask[v] = rng.bernoulli(p);
  return mask;
}

/// Dense distances out of a workspace, kUnreachable where unvisited.
std::vector<std::uint32_t> dense_dist(const engine::Workspace& ws, NodeId n) {
  std::vector<std::uint32_t> out(n);
  for (NodeId v = 0; v < n; ++v) out[v] = ws.dist(v);
  return out;
}

TEST(Engine, UnfilteredBfsMatchesNaive) {
  engine::Workspace ws;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const CsrGraph g = make_random(80, 0.04, seed);
    for (NodeId s = 0; s < g.num_vertices(); s += 17) {
      engine::bfs(g, s, ws, engine::AllEdges{});
      EXPECT_EQ(dense_dist(ws, g.num_vertices()), naive_bfs(g, s));
    }
  }
}

TEST(Engine, FilteredKernelBitIdenticalToStdFunctionPath) {
  // The static-dispatch kernel and the legacy std::function BfsRunner must
  // produce identical dense distance arrays for the same admission rule.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const CsrGraph g = make_connected_random(120, 0.03, seed);
    const std::vector<bool> mask = random_mask(g.num_vertices(), 0.3, seed + 100);
    const std::function<bool(NodeId, NodeId)> legacy_filter =
        [&mask](NodeId u, NodeId v) { return mask[u] || mask[v]; };

    BfsRunner runner(g.num_vertices());
    engine::Workspace ws;
    for (NodeId s = 0; s < g.num_vertices(); s += 23) {
      const auto legacy = runner.run_filtered(g, s, legacy_filter);
      engine::bfs(g, s, ws, engine::DominatedEdgeFilter{&mask});
      const auto fast = dense_dist(ws, g.num_vertices());
      EXPECT_EQ(fast, std::vector<std::uint32_t>(legacy.begin(), legacy.end()));
    }
  }
}

TEST(Engine, FnFilterAdapterMatchesStructFilter) {
  const CsrGraph g = make_connected_random(90, 0.04, 7);
  const std::vector<bool> mask = random_mask(g.num_vertices(), 0.25, 8);
  const std::function<bool(NodeId, NodeId)> fn = [&mask](NodeId u, NodeId v) {
    return mask[u] || mask[v];
  };
  engine::Workspace ws_fn, ws_struct;
  engine::bfs(g, 0, ws_fn, engine::FnFilter{&fn});
  engine::bfs(g, 0, ws_struct, engine::DominatedEdgeFilter{&mask});
  EXPECT_EQ(dense_dist(ws_fn, g.num_vertices()),
            dense_dist(ws_struct, g.num_vertices()));
}

TEST(Engine, FaultAwareFilterMatchesMaterializedGraph) {
  const CsrGraph g = make_connected_random(60, 0.06, 3);
  FaultPlane plane(g);
  Rng rng(42);
  for (const Edge& e : g.edges()) {
    if (rng.bernoulli(0.2)) plane.fail_edge(e.u, e.v);
  }
  plane.fail_vertex(5);
  const CsrGraph survivors = plane.materialize();

  engine::Workspace ws;
  for (NodeId s = 0; s < g.num_vertices(); s += 11) {
    if (!plane.vertex_ok(s)) continue;
    engine::bfs(g, s, ws, engine::FaultAwareFilter{&plane});
    EXPECT_EQ(dense_dist(ws, g.num_vertices()), naive_bfs(survivors, s));
  }
}

TEST(Engine, BothFiltersIsConjunction) {
  const CsrGraph g = make_path(6);
  FaultPlane plane(g);
  plane.fail_edge(3, 4);
  std::vector<bool> mask(6, true);
  mask[0] = false;  // edge 0-1 still dominated via vertex 1
  engine::Workspace ws;
  engine::bfs(g, 0, ws,
              engine::BothFilters{engine::DominatedEdgeFilter{&mask},
                                  engine::FaultAwareFilter{&plane}});
  EXPECT_EQ(ws.dist(3), 3u);
  EXPECT_EQ(ws.dist(4), kUnreachable);  // blocked by the fault, not the mask
}

TEST(Engine, DirOptBfsMatchesClassicDistances) {
  // Distance equality across heuristic settings: defaults, forced bottom-up
  // (huge alpha switches after the first level, huge beta never switches
  // back), and forced top-down (alpha 0xffffffff never trips... use 1).
  engine::Workspace ws_classic, ws_dir;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const CsrGraph g = make_random(140, 0.05, seed);
    for (NodeId s = 0; s < g.num_vertices(); s += 19) {
      engine::bfs(g, s, ws_classic, engine::AllEdges{});
      const auto expected = dense_dist(ws_classic, g.num_vertices());
      engine::bfs_dir_opt(g, s, ws_dir, engine::AllEdges{});
      EXPECT_EQ(dense_dist(ws_dir, g.num_vertices()), expected);
      engine::bfs_dir_opt(g, s, ws_dir, engine::AllEdges{}, 1u << 30, 1u << 30);
      EXPECT_EQ(dense_dist(ws_dir, g.num_vertices()), expected);
      engine::bfs_dir_opt(g, s, ws_dir, engine::AllEdges{}, 1, 1);
      EXPECT_EQ(dense_dist(ws_dir, g.num_vertices()), expected);
    }
  }
}

TEST(Engine, DirOptBfsMatchesClassicUnderFilters) {
  // The bottom-up step probes edges from the unvisited side, so it relies on
  // filter symmetry — exercised here for both built-in filters and their
  // conjunction, with the bottom-up path forced on.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const CsrGraph g = make_connected_random(120, 0.04, seed);
    const std::vector<bool> mask = random_mask(g.num_vertices(), 0.3, seed + 50);
    FaultPlane plane(g);
    Rng rng(seed + 900);
    for (const Edge& e : g.edges()) {
      if (rng.bernoulli(0.15)) plane.fail_edge(e.u, e.v);
    }
    engine::Workspace ws_classic, ws_dir;
    const auto check = [&](auto filter) {
      for (NodeId s = 0; s < g.num_vertices(); s += 31) {
        engine::bfs(g, s, ws_classic, filter);
        engine::bfs_dir_opt(g, s, ws_dir, filter, 1u << 30, 1u << 30);
        EXPECT_EQ(dense_dist(ws_dir, g.num_vertices()),
                  dense_dist(ws_classic, g.num_vertices()));
      }
    };
    check(engine::DominatedEdgeFilter{&mask});
    check(engine::FaultAwareFilter{&plane});
    check(engine::BothFilters{engine::DominatedEdgeFilter{&mask},
                              engine::FaultAwareFilter{&plane}});
  }
}

TEST(Engine, DirOptBfsVisitsSameVertexSet) {
  // Visit *order* within a level may differ; the visited set and per-level
  // population may not.
  const CsrGraph g = make_random(200, 0.02, 3);
  engine::Workspace ws_classic, ws_dir;
  engine::bfs(g, 0, ws_classic, engine::AllEdges{});
  engine::bfs_dir_opt(g, 0, ws_dir, engine::AllEdges{}, 1u << 30, 1u << 30);
  ASSERT_EQ(ws_dir.frontier_size(), ws_classic.frontier_size());
  std::vector<NodeId> a(ws_classic.visit_order().begin(),
                        ws_classic.visit_order().end());
  std::vector<NodeId> b(ws_dir.visit_order().begin(), ws_dir.visit_order().end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(Engine, BoundedBfsStopsAtDepth) {
  const CsrGraph g = make_path(10);
  engine::Workspace ws;
  engine::bfs_bounded(g, 0, 3, ws, engine::AllEdges{});
  EXPECT_EQ(ws.dist(3), 3u);
  EXPECT_EQ(ws.dist(4), kUnreachable);
}

TEST(Engine, UniteEdgesMatchesConnectedComponents) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const CsrGraph g = make_random(70, 0.03, seed);
    RollbackUnionFind uf(g.num_vertices());
    engine::unite_edges(g, uf, engine::AllEdges{});
    const Components comps = connected_components(g);
    EXPECT_EQ(uf.num_components(), comps.count);
    for (NodeId u = 0; u < g.num_vertices(); ++u) {
      for (NodeId v = u + 1; v < g.num_vertices(); ++v) {
        EXPECT_EQ(uf.connected(u, v), comps.label[u] == comps.label[v]);
      }
    }
  }
}

TEST(Engine, TemplatedCdfBitIdenticalToLegacyFilterPath) {
  const CsrGraph g = make_connected_random(150, 0.03, 11);
  const std::vector<bool> mask = random_mask(g.num_vertices(), 0.35, 12);
  const EdgeFilter legacy = [&mask](NodeId u, NodeId v) { return mask[u] || mask[v]; };
  std::vector<NodeId> sources;
  for (NodeId v = 0; v < g.num_vertices(); v += 3) sources.push_back(v);

  const DistanceCdf via_fn = distance_cdf_from_sources(g, sources, legacy);
  const DistanceCdf via_struct =
      distance_cdf_from_sources_with(g, sources, engine::DominatedEdgeFilter{&mask});
  ASSERT_EQ(via_fn.cdf.size(), via_struct.cdf.size());
  for (std::size_t l = 0; l < via_fn.cdf.size(); ++l) {
    EXPECT_EQ(via_fn.cdf[l], via_struct.cdf[l]);  // bit-identical, not approx
  }
  EXPECT_EQ(via_fn.reachable, via_struct.reachable);
}

TEST(EngineWorkspace, ReusableAcrossTraversalsAndGraphSizes) {
  engine::Workspace ws;
  const CsrGraph small = make_path(4);
  engine::bfs(small, 0, ws, engine::AllEdges{});
  EXPECT_EQ(ws.dist(3), 3u);
  // Larger graph: the workspace must grow, and stale small-graph state must
  // not leak into the new traversal.
  const CsrGraph big = make_path(12);
  engine::bfs(big, 11, ws, engine::AllEdges{});
  EXPECT_EQ(ws.dist(0), 11u);
  EXPECT_EQ(ws.visit_order().size(), 12u);
  // Back to the small graph; distances are fresh again.
  engine::bfs(small, 3, ws, engine::AllEdges{});
  EXPECT_EQ(ws.dist(0), 3u);
}

TEST(EngineWorkspace, MarkDomainIsIndependentOfTraversals) {
  engine::Workspace ws;
  ws.begin_marks(5);
  EXPECT_TRUE(ws.mark(2));
  EXPECT_FALSE(ws.mark(2));  // second mark in the same round
  const CsrGraph g = make_path(5);
  engine::bfs(g, 0, ws, engine::AllEdges{});  // traversal must not clear marks
  EXPECT_TRUE(ws.marked(2));
  EXPECT_FALSE(ws.marked(3));
  ws.begin_marks(5);
  EXPECT_FALSE(ws.marked(2));  // new round forgets
  EXPECT_TRUE(ws.mark(2));
}

TEST(EngineWorkspace, ParentChainReconstructsShortestPath) {
  const CsrGraph g = make_connected_random(40, 0.05, 21);
  const auto path = bfs_shortest_path(g, 0, 39);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 39u);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
  }
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(path.size(), dist[39] + 1);
}

#if BSR_DCHECK_ENABLED
// Debug / BSR_ENABLE_DCHECKS builds abort on out-of-range accessor use; in
// release builds the checks compile away and these tests vanish with them.
TEST(EngineDeathTest, BfsRunnerRejectsOversizedGraph) {
  // A BfsRunner sized for a small graph used to scribble past its dense
  // arrays when run on a larger one; the export is now guarded.
  const CsrGraph big = make_path(16);
  BfsRunner small_runner(4);
  EXPECT_DEATH((void)small_runner.run(big, 0), "BSR_DCHECK");
}
#endif

}  // namespace
}  // namespace bsr::graph
