// Breadth-first search primitives on CsrGraph.
//
// The AS graph is unweighted, so shortest hop distances are BFS distances.
// Besides plain BFS we provide a *filtered* BFS whose edge relaxation is
// restricted by a caller predicate — this is how the dominated subgraph
// G_B (edges with at least one broker endpoint) is traversed without
// materializing it.
//
// BfsRunner is the legacy dense-array API, kept as a thin shim over the
// engine kernels (graph/engine.hpp). New code that runs many traversals
// should use engine::bfs with a Workspace directly: it skips the dense
// export entirely and supports inlinable filter structs instead of the
// std::function predicate taken here.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/workspace.hpp"

namespace bsr::graph {

/// Reusable BFS workspace. Construct once per graph size and reuse across
/// many runs to avoid reallocating the frontier/distance arrays (matters
/// when sampling thousands of sources).
class BfsRunner {
 public:
  explicit BfsRunner(NodeId n) : ws_(n), dist_(n, kUnreachable) {}

  /// Full BFS from `source`. Returns distances (kUnreachable if not reached).
  /// The returned span is valid until the next run.
  std::span<const std::uint32_t> run(const CsrGraph& g, NodeId source);

  /// BFS where an edge (u, v) is traversable iff edge_ok(u, v). Used for
  /// dominated-subgraph and policy-restricted traversals.
  std::span<const std::uint32_t> run_filtered(
      const CsrGraph& g, NodeId source,
      const std::function<bool(NodeId, NodeId)>& edge_ok);

  /// BFS from source limited to `max_depth` hops (inclusive).
  std::span<const std::uint32_t> run_bounded(const CsrGraph& g, NodeId source,
                                             std::uint32_t max_depth);

  [[nodiscard]] std::span<const std::uint32_t> distances() const noexcept { return dist_; }

 private:
  /// Copies the workspace's sparse result into the dense dist_ array,
  /// un-writing only the vertices the *previous* run touched.
  std::span<const std::uint32_t> export_dense();

  engine::Workspace ws_;
  std::vector<std::uint32_t> dist_;
  std::vector<NodeId> touched_;  // vertices whose dist_ entries need resetting
};

/// One-shot BFS convenience wrapper (allocates per call).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const CsrGraph& g, NodeId source);

/// Shortest path (as a vertex sequence source..target) via BFS parent
/// pointers; empty if unreachable. O(V + E) per call.
[[nodiscard]] std::vector<NodeId> bfs_shortest_path(const CsrGraph& g, NodeId source,
                                                    NodeId target);

}  // namespace bsr::graph
