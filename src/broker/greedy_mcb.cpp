#include "broker/greedy_mcb.hpp"

#include <queue>
#include <stdexcept>

#include "broker/coverage.hpp"

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;

GreedyMcbResult greedy_mcb(const CsrGraph& g, std::uint32_t k) {
  const NodeId n = g.num_vertices();
  if (n == 0) throw std::invalid_argument("greedy_mcb: empty graph");

  GreedyMcbResult result;
  result.brokers = BrokerSet(n);
  if (k == 0) return result;

  CoverageTracker tracker(g);

  // Lazy greedy: heap entries carry the iteration at which the gain was
  // computed; submodularity guarantees gains only shrink, so a stale top
  // entry is an upper bound and can be refreshed in place.
  struct Entry {
    std::uint32_t gain;
    NodeId vertex;
    std::uint32_t stamp;
    bool operator<(const Entry& other) const {
      if (gain != other.gain) return gain < other.gain;
      return vertex > other.vertex;  // deterministic tie-break: lowest id wins
    }
  };
  std::priority_queue<Entry> heap;
  for (NodeId v = 0; v < n; ++v) {
    heap.push(Entry{tracker.marginal_gain(v), v, 0});
  }

  std::uint32_t round = 0;
  while (result.brokers.size() < k && !heap.empty() && !tracker.all_covered()) {
    Entry top = heap.top();
    heap.pop();
    if (tracker.is_broker(top.vertex)) continue;
    if (top.stamp != round) {
      top.gain = tracker.marginal_gain(top.vertex);
      top.stamp = round;
      if (top.gain == 0) continue;  // nothing new to cover from this vertex
      heap.push(top);
      continue;
    }
    tracker.add(top.vertex);
    result.brokers.add(top.vertex);
    result.coverage_curve.push_back(tracker.covered_count());
    ++round;
  }
  result.coverage = tracker.covered_count();
  return result;
}

}  // namespace bsr::broker
