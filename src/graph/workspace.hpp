// Epoch-stamped traversal workspace for the engine layer.
//
// Every evaluator in the system (connectivity, l-hop CDFs, routing, greedy
// sweeps) runs BFS-shaped traversals thousands of times per experiment. A
// naive implementation pays an O(V) clear — or worse, an O(V) allocation —
// per run. Workspace amortizes all of that away with *epoch stamps*: a
// vertex's dist/parent entry is valid iff its stamp equals the current
// epoch, so starting a new traversal is a single counter increment. The
// arrays are cleared for real only when the 32-bit epoch wraps (once per
// ~4 billion traversals).
//
// Two independent stamp domains are provided:
//   * the traversal domain — dist/parent/visit-order for one BFS at a time;
//   * the mark domain     — a reusable "seen this round?" set (root dedup in
//     greedy gain sweeps, coverage marking, ...).
// They never interfere, so a caller may run a BFS while holding marks.
//
// Workspaces are cheap to reuse across graphs of different sizes: ensure()
// grows (never shrinks) and every accessor BSR_DCHECKs its index, so running
// on a larger graph than the workspace was sized for is caught in debug
// builds instead of corrupting memory.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/check.hpp"
#include "graph/csr_graph.hpp"

namespace bsr::graph::engine {

class Workspace {
 public:
  Workspace() = default;
  explicit Workspace(NodeId n) { ensure(n); }

  /// Grows the backing arrays to hold at least `n` vertices. Never shrinks.
  void ensure(NodeId n);

  [[nodiscard]] NodeId capacity() const noexcept {
    return static_cast<NodeId>(dist_.size());
  }

  // --- traversal domain ----------------------------------------------------

  /// Starts a fresh traversal over `n` vertices: O(1) (amortized; the stamp
  /// array is re-zeroed only on 32-bit epoch wrap). Grows if n > capacity().
  void begin(NodeId n);

  [[nodiscard]] bool visited(NodeId v) const noexcept {
    BSR_DCHECK(v < stamp_.size());
    return stamp_[v] == epoch_;
  }

  /// Distance of v in the current traversal; kUnreachable if not visited.
  [[nodiscard]] std::uint32_t dist(NodeId v) const noexcept {
    return visited(v) ? dist_[v] : kUnreachable;
  }

  /// Distance of v; precondition: visited(v).
  [[nodiscard]] std::uint32_t dist_unchecked(NodeId v) const noexcept {
    BSR_DCHECK(visited(v));
    return dist_[v];
  }

  /// BFS-tree parent of v; valid only if the traversal recorded parents
  /// (discover() with a `from` argument) and visited(v).
  [[nodiscard]] NodeId parent(NodeId v) const noexcept {
    BSR_DCHECK(visited(v));
    return parent_[v];
  }

  /// Marks v visited at distance d and appends it to the frontier.
  void discover(NodeId v, std::uint32_t d) noexcept {
    BSR_DCHECK(v < dist_.size());
    BSR_DCHECK(!visited(v));
    stamp_[v] = epoch_;
    dist_[v] = d;
    queue_.push_back(v);
  }

  /// discover() recording the BFS-tree parent as well.
  void discover(NodeId v, std::uint32_t d, NodeId from) noexcept {
    BSR_DCHECK(v < parent_.size());
    parent_[v] = from;
    discover(v, d);
  }

  /// Vertices of the current traversal in discovery (= BFS) order.
  [[nodiscard]] std::span<const NodeId> visit_order() const noexcept {
    return queue_;
  }

  /// Frontier access by index (stable across discover() reallocation).
  [[nodiscard]] std::size_t frontier_size() const noexcept { return queue_.size(); }
  [[nodiscard]] NodeId frontier_at(std::size_t i) const noexcept {
    BSR_DCHECK(i < queue_.size());
    return queue_[i];
  }

  // --- mark domain ---------------------------------------------------------

  /// Starts a fresh mark round over `n` vertices: O(1) amortized.
  void begin_marks(NodeId n);

  /// Marks v; returns true iff v was not yet marked this round.
  bool mark(NodeId v) noexcept {
    BSR_DCHECK(v < mark_stamp_.size());
    if (mark_stamp_[v] == mark_epoch_) return false;
    mark_stamp_[v] = mark_epoch_;
    return true;
  }

  [[nodiscard]] bool marked(NodeId v) const noexcept {
    BSR_DCHECK(v < mark_stamp_.size());
    return mark_stamp_[v] == mark_epoch_;
  }

  // --- bitset scratch ------------------------------------------------------

  /// Dense one-bit-per-vertex scratch for the direction-optimizing BFS:
  /// `visited_bits` mirrors the traversal's visited set (word-level skips
  /// over fully-visited regions), `frontier_bits` holds the current level
  /// for O(1) membership tests from the bottom-up side. Both are zeroed on
  /// acquire — O(n/64) words, negligible next to the traversal itself; the
  /// stamp-based domains above stay O(1) per begin().
  [[nodiscard]] std::vector<std::uint64_t>& visited_bits(NodeId n);
  [[nodiscard]] std::vector<std::uint64_t>& frontier_bits(NodeId n);

  /// Telemetry scratch: edges scanned by the current traversal, reset by
  /// begin(). A memory accumulator beats a stack local here — the BFS inner
  /// loop is already at the register-pressure limit, and a spilled stack
  /// accumulator showed up as ~2.6% wall time on the fault-filtered sweep,
  /// while this line's store-add hides under the adjacency scan. The field
  /// exists in every build (only the BSR_STATS macros in engine.hpp touch
  /// it) so the class layout never depends on the telemetry configuration.
  std::uint64_t stats_edges_scanned = 0;

 private:
  std::vector<std::uint32_t> dist_;
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> stamp_;       // dist_/parent_ valid iff == epoch_
  std::vector<NodeId> queue_;              // frontier + visit order
  std::uint32_t epoch_ = 0;                // 0 = "no traversal yet"
  std::vector<std::uint32_t> mark_stamp_;  // marked iff == mark_epoch_
  std::uint32_t mark_epoch_ = 0;
  std::vector<std::uint64_t> visited_bits_;   // dir-opt BFS scratch
  std::vector<std::uint64_t> frontier_bits_;  // dir-opt BFS scratch
};

}  // namespace bsr::graph::engine
