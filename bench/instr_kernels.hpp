// Instrumented twins of broker::maxsg and sim::RouteService, recompiled
// under the bench's alignment flags so perf_obs can time them against the
// bare twins without code-placement asymmetry. See instr_kernels.cpp.
#pragma once

#include <cstdint>
#include <span>

#include "broker/broker_set.hpp"
#include "broker/maxsg.hpp"
#include "route_lifecycle.hpp"
#include "sim/demand.hpp"

namespace instr {

/// broker::maxsg, token-identical, compiled in a bench TU.
[[nodiscard]] bsr::broker::MaxSgResult maxsg(const bsr::graph::CsrGraph& g,
                                             std::uint32_t k);

/// The full route-service lifecycle (bench/route_lifecycle.hpp) on a
/// sim::RouteService twin with telemetry ON, compiled in a bench TU.
[[nodiscard]] bsr::bench::RouteLifecycleResult route_lifecycle(
    const bsr::graph::CsrGraph& g, const bsr::broker::BrokerSet& brokers,
    std::span<const bsr::sim::Flow> flows, int serve_reps);

}  // namespace instr
