// Cross-module edge cases and misuse paths not covered by the per-module
// suites: buffer reuse, degenerate sizes, and API misuse that must fail
// loudly rather than corrupt state.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "broker/dominated.hpp"
#include "broker/greedy_mcb.hpp"
#include "graph/bfs.hpp"
#include "graph/dijkstra.hpp"
#include "graph/distance_histogram.hpp"
#include "io/table.hpp"
#include "test_util.hpp"

namespace bsr {
namespace {

using bsr::graph::BfsRunner;
using bsr::graph::CsrGraph;
using bsr::graph::GraphBuilder;
using bsr::graph::kUnreachable;
using bsr::graph::NodeId;
using bsr::test::make_connected_random;
using bsr::test::make_path;
using bsr::test::make_star;

TEST(EdgeCases, BfsRunnerInterleavesPlainAndFilteredRuns) {
  const CsrGraph g = make_path(6);
  BfsRunner runner(g.num_vertices());
  const auto plain1 = runner.run(g, 0);
  EXPECT_EQ(plain1[5], 5u);
  // A filtered run must fully reset the previous run's state...
  const auto filtered = runner.run_filtered(
      g, 5, [](NodeId u, NodeId v) { return u + v != 1; });  // cut edge 0-1
  EXPECT_EQ(filtered[0], kUnreachable);
  EXPECT_EQ(filtered[1], 4u);
  // ...and a plain run after that must see no leftover blocks.
  const auto plain2 = runner.run(g, 0);
  EXPECT_EQ(plain2[5], 5u);
}

TEST(EdgeCases, BoundedBfsZeroDepth) {
  const CsrGraph g = make_star(5);
  BfsRunner runner(g.num_vertices());
  const auto dist = runner.run_bounded(g, 0, 0);
  EXPECT_EQ(dist[0], 0u);
  for (NodeId v = 1; v < 5; ++v) EXPECT_EQ(dist[v], kUnreachable);
}

TEST(EdgeCases, TwoVertexGraphCdf) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const auto cdf = bsr::graph::distance_cdf_exact(b.build());
  EXPECT_DOUBLE_EQ(cdf.at(1), 1.0);
  EXPECT_DOUBLE_EQ(cdf.reachable, 1.0);
}

TEST(EdgeCases, DijkstraHugeWeightsNoOverflow) {
  const CsrGraph g = make_path(4);
  const auto result = bsr::graph::dijkstra(
      g, 0, [](NodeId, NodeId) { return 1e308 / 16; });
  EXPECT_TRUE(std::isfinite(result.distance[3]));
  EXPECT_GT(result.distance[3], 1e307);
}

TEST(EdgeCases, DijkstraInfiniteWeightActsAsCut) {
  const CsrGraph g = make_path(4);
  const auto weight = [](NodeId u, NodeId v) {
    if ((u == 1 && v == 2) || (u == 2 && v == 1)) {
      return std::numeric_limits<double>::infinity();
    }
    return 1.0;
  };
  const auto result = bsr::graph::dijkstra(g, 0, weight);
  EXPECT_DOUBLE_EQ(result.distance[1], 1.0);
  EXPECT_EQ(result.distance[3], bsr::graph::kInfDistance);
}

TEST(EdgeCases, GreedyOnSingletonGraph) {
  GraphBuilder b(1);
  const auto result = broker::greedy_mcb(b.build(), 3);
  EXPECT_EQ(result.coverage, 1u);
  EXPECT_EQ(result.brokers.size(), 1u);
}

TEST(EdgeCases, SaturatedConnectivityOnSingleton) {
  GraphBuilder b(1);
  const CsrGraph g = b.build();
  broker::BrokerSet set(1);
  set.add(0);
  EXPECT_DOUBLE_EQ(broker::saturated_connectivity(g, set), 0.0);
}

TEST(EdgeCases, BrokerOnlyShareWithEmptyInputs) {
  const CsrGraph g = make_star(4);
  bsr::graph::Rng rng(1);
  const auto none = broker::broker_only_share(g, broker::BrokerSet(4), rng, 100);
  EXPECT_EQ(none.pairs_connected, 0u);
  EXPECT_DOUBLE_EQ(none.broker_only, 0.0);
}

TEST(EdgeCases, TableRowBuilderWrongArityIsSwallowedNotFatal) {
  io::Table table({"a", "b"});
  { table.row().cell("only-one"); }  // destructor must not throw/terminate
  EXPECT_EQ(table.num_rows(), 0u);   // the malformed row was dropped
  table.row().cell("x").cell("y");
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(EdgeCases, TablePrintEmptyBody) {
  io::Table table({"only", "headers"});
  std::ostringstream oss;
  table.print(oss);
  EXPECT_NE(oss.str().find("only"), std::string::npos);
}

TEST(EdgeCases, DominatedFilterOutlivesScopeSafely) {
  // The filter binds the BrokerSet by reference — same-scope use is the
  // contract; verify repeated invocation sees mutations of the bound set.
  const CsrGraph g = make_connected_random(20, 0.2, 5);
  broker::BrokerSet set(g.num_vertices());
  const auto filter = broker::dominated_edge_filter(set);
  EXPECT_FALSE(filter(0, g.neighbors(0)[0]));
  set.add(0);
  EXPECT_TRUE(filter(0, g.neighbors(0)[0]));  // sees the updated set
}

TEST(EdgeCases, PrefixOfEmptySet) {
  const broker::BrokerSet empty(5);
  EXPECT_TRUE(empty.prefix(3).empty());
}

}  // namespace
}  // namespace bsr
