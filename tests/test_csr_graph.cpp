#include "graph/csr_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "graph/graph_builder.hpp"
#include "test_util.hpp"

namespace bsr::graph {
namespace {

TEST(CsrGraph, EmptyGraph) {
  const CsrGraph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.empty());
}

TEST(CsrGraph, SingleEdge) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const CsrGraph g = b.build();
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
}

TEST(CsrGraph, BuilderDeduplicatesEdges) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  b.add_edge(0, 1);
  const CsrGraph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(CsrGraph, BuilderDropsSelfLoops) {
  GraphBuilder b(3);
  b.add_edge(1, 1);
  b.add_edge(0, 2);
  const CsrGraph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.has_edge(1, 1));
}

TEST(CsrGraph, BuilderRejectsOutOfRange) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), std::out_of_range);
  EXPECT_THROW(b.add_edge(5, 0), std::out_of_range);
}

TEST(CsrGraph, NeighborsSortedUnique) {
  GraphBuilder b(6);
  b.add_edge(3, 5);
  b.add_edge(3, 1);
  b.add_edge(3, 4);
  b.add_edge(3, 1);
  const CsrGraph g = b.build();
  const auto nbrs = g.neighbors(3);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 3u);
}

TEST(CsrGraph, EdgesReturnsCanonicalSorted) {
  const CsrGraph g = bsr::test::make_cycle(4);
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
  for (const Edge& e : edges) EXPECT_LT(e.u, e.v);
}

TEST(CsrGraph, IsolatedVertexHasNoNeighbors) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const CsrGraph g = b.build();
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_TRUE(g.neighbors(2).empty());
}

TEST(CsrGraph, ValidationRejectsBadOffsets) {
  // Offsets not ending at adjacency size.
  EXPECT_THROW(CsrGraph({0, 1}, {}), std::invalid_argument);
  // Non-monotone offsets.
  EXPECT_THROW(CsrGraph({0, 2, 1, 4}, {1, 2, 0, 0}), std::invalid_argument);
}

TEST(CsrGraph, ValidationRejectsOutOfRangeNeighbor) {
  EXPECT_THROW(CsrGraph({0, 1, 2}, {1, 5}), std::invalid_argument);
}

TEST(CsrGraph, ValidationRejectsSelfLoop) {
  EXPECT_THROW(CsrGraph({0, 1, 2}, {0, 0}), std::invalid_argument);
}

TEST(CsrGraph, ValidationRejectsUnsortedAdjacency) {
  // Vertex 0 adjacent to {2, 1} unsorted.
  EXPECT_THROW(CsrGraph({0, 2, 3, 4}, {2, 1, 0, 0}), std::invalid_argument);
}

TEST(CsrGraph, BuilderReusableAfterBuild) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const CsrGraph g1 = b.build();
  b.add_edge(2, 3);
  const CsrGraph g2 = b.build();
  EXPECT_EQ(g1.num_edges(), 1u);
  EXPECT_EQ(g2.num_edges(), 2u);
}

TEST(CsrGraph, CompleteGraphDegrees) {
  const CsrGraph g = bsr::test::make_complete(7);
  EXPECT_EQ(g.num_edges(), 21u);
  for (NodeId v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 6u);
}

class CsrRandomGraphTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsrRandomGraphTest, AdjacencySymmetric) {
  const CsrGraph g = bsr::test::make_random(40, 0.15, GetParam());
  for (NodeId u = 0; u < g.num_vertices(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      EXPECT_TRUE(g.has_edge(v, u)) << "edge (" << u << "," << v << ") asymmetric";
    }
  }
}

TEST_P(CsrRandomGraphTest, DegreeSumEqualsTwiceEdges) {
  const CsrGraph g = bsr::test::make_random(40, 0.15, GetParam());
  std::uint64_t degree_sum = 0;
  for (NodeId v = 0; v < g.num_vertices(); ++v) degree_sum += g.degree(v);
  EXPECT_EQ(degree_sum, 2 * g.num_edges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrRandomGraphTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

#if BSR_DCHECK_ENABLED
// Debug / BSR_ENABLE_DCHECKS builds abort on out-of-range accessor use; in
// release builds the checks compile away and these tests vanish with them.
TEST(CsrGraphDeathTest, DegreeOutOfRangeAborts) {
  const CsrGraph g = bsr::test::make_path(3);
  EXPECT_DEATH((void)g.degree(3), "BSR_DCHECK");
}

TEST(CsrGraphDeathTest, NeighborsOutOfRangeAborts) {
  const CsrGraph g = bsr::test::make_path(3);
  EXPECT_DEATH((void)g.neighbors(99), "BSR_DCHECK");
}
#endif

}  // namespace
}  // namespace bsr::graph
