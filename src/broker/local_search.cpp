#include "broker/local_search.hpp"

#include <algorithm>
#include <vector>

#include "broker/dominated.hpp"
#include "graph/degree_stats.hpp"

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;

LocalSearchResult improve_by_swaps(const CsrGraph& g, const BrokerSet& b,
                                   const LocalSearchOptions& options) {
  LocalSearchResult result;
  result.brokers = b;
  result.initial_connectivity = saturated_connectivity(g, b);
  result.final_connectivity = result.initial_connectivity;
  if (b.empty() || b.size() >= g.num_vertices()) return result;

  // Global replacement candidates: highest-degree non-brokers.
  const auto degree_order = bsr::graph::vertices_by_degree_desc(g);

  const auto rebuild = [&g](const std::vector<NodeId>& members) {
    BrokerSet next(g.num_vertices());
    for (const NodeId v : members) next.add(v);
    return next;
  };

  std::vector<NodeId> members(result.brokers.members().begin(),
                              result.brokers.members().end());
  bool improved = true;
  while (improved && result.swaps_applied < options.max_swaps) {
    improved = false;
    // One pass applies every first-improvement swap it finds (no restart —
    // a clean pass, not a clean restart, certifies local optimality).
    for (std::size_t out_idx = 0;
         out_idx < members.size() && result.swaps_applied < options.max_swaps;
         ++out_idx) {
      const NodeId removed = members[out_idx];

      // Candidate pool: half top-degree non-brokers, half the removed
      // broker's highest-degree neighbors (they can re-dominate its edges).
      // Hard-capped at candidate_pool — hub brokers have thousands of
      // neighbors and a full scan would make each pass quadratic.
      std::vector<NodeId> candidates;
      candidates.reserve(options.candidate_pool);
      const std::size_t global_quota = options.candidate_pool / 2;
      for (const NodeId v : degree_order) {
        if (candidates.size() >= global_quota) break;
        if (!result.brokers.contains(v)) candidates.push_back(v);
      }
      std::vector<NodeId> neighbor_pool;
      for (const NodeId v : g.neighbors(removed)) {
        if (!result.brokers.contains(v)) neighbor_pool.push_back(v);
      }
      std::sort(neighbor_pool.begin(), neighbor_pool.end(),
                [&g](NodeId a, NodeId b2) {
                  if (g.degree(a) != g.degree(b2)) return g.degree(a) > g.degree(b2);
                  return a < b2;
                });
      for (const NodeId v : neighbor_pool) {
        if (candidates.size() >= options.candidate_pool) break;
        candidates.push_back(v);
      }

      for (const NodeId in : candidates) {
        if (in == removed) continue;
        std::vector<NodeId> trial = members;
        trial[out_idx] = in;
        const BrokerSet trial_set = rebuild(trial);
        const double connectivity = saturated_connectivity(g, trial_set);
        if (connectivity > result.final_connectivity + options.min_gain) {
          members = std::move(trial);
          result.brokers = trial_set;
          result.final_connectivity = connectivity;
          ++result.swaps_applied;
          improved = true;
          break;  // next out_idx; the pass continues with the updated set
        }
      }
    }
  }
  return result;
}

}  // namespace bsr::broker
