// Disjoint dominating paths — path-level resilience.
//
// The PCE line of related work (§2, [15]) selects *disjoint* QoS paths
// across domains. On the brokered plane the analogous question is: how many
// edge-disjoint B-dominating paths does a pair have? Two disjoint dominated
// paths mean a broker-supervised failover exists. Computed greedily:
// repeatedly extract a shortest dominating path and remove its edges;
// greedy edge-disjoint extraction is not max-flow-optimal, but it
// lower-bounds the disjoint-path count and matches how an online mediator
// would actually provision a backup.
#pragma once

#include <cstdint>
#include <vector>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"
#include "graph/fault_plane.hpp"
#include "graph/rng.hpp"

namespace bsr::broker {

struct DisjointPathsResult {
  /// Extracted edge-disjoint dominating paths, shortest-first.
  std::vector<std::vector<bsr::graph::NodeId>> paths;
  [[nodiscard]] std::size_t count() const noexcept { return paths.size(); }
};

/// Up to `max_paths` edge-disjoint B-dominating paths between src and dst.
/// O(max_paths · (|V| + |E|)).
[[nodiscard]] DisjointPathsResult disjoint_dominating_paths(
    const bsr::graph::CsrGraph& g, const BrokerSet& b, bsr::graph::NodeId src,
    bsr::graph::NodeId dst, std::uint32_t max_paths = 2);

/// Fault-aware variant: extraction runs on the surviving subgraph, so failed
/// edges (and edges incident to down vertices) never appear in any extracted
/// path. A down src or dst yields zero paths. The plane must be bound to `g`.
[[nodiscard]] DisjointPathsResult disjoint_dominating_paths(
    const bsr::graph::CsrGraph& g, const BrokerSet& b,
    const bsr::graph::FaultPlane& faults, bsr::graph::NodeId src,
    bsr::graph::NodeId dst, std::uint32_t max_paths = 2);

struct PathDiversityStats {
  double with_one = 0.0;   // share of sampled pairs with >= 1 dominating path
  double with_two = 0.0;   // ... with >= 2 edge-disjoint dominating paths
  std::size_t pairs_sampled = 0;
};

/// Sampled pair survey of dominating-path diversity under B.
[[nodiscard]] PathDiversityStats path_diversity(const bsr::graph::CsrGraph& g,
                                                const BrokerSet& b,
                                                bsr::graph::Rng& rng,
                                                std::size_t num_pairs);

}  // namespace bsr::broker
