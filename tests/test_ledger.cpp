#include "econ/ledger.hpp"

#include <gtest/gtest.h>

#include "broker/maxsg.hpp"
#include "test_util.hpp"

namespace bsr::econ {
namespace {

using bsr::broker::BrokerSet;
using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::test::make_connected_random;
using bsr::test::make_path;
using bsr::test::make_star;

sim::Flow flow_of(NodeId src, NodeId dst, double volume) {
  sim::Flow f;
  f.src = src;
  f.dst = dst;
  f.volume = volume;
  return f;
}

TEST(Ledger, SingleBrokeredFlowAccounting) {
  // Star with broker center: path 1-0-2, one broker transit hop, no
  // employees.
  const CsrGraph g = make_star(5);
  BrokerSet b(5);
  b.add(0);
  const std::vector<sim::Flow> flows{flow_of(1, 2, 10.0)};
  LedgerConfig config;
  config.customer_price = 1.0;
  config.transit_cost = 0.1;
  const auto ledger = settle_flows(g, b, flows, config);
  EXPECT_EQ(ledger.flows_routed, 1u);
  EXPECT_DOUBLE_EQ(ledger.customer_payments, 20.0);  // both ends pay
  EXPECT_DOUBLE_EQ(ledger.employee_payouts, 0.0);
  EXPECT_DOUBLE_EQ(ledger.broker_transit_cost, 1.0);
  EXPECT_DOUBLE_EQ(ledger.coalition_profit, 19.0);
  EXPECT_DOUBLE_EQ(ledger.broker_revenue[0], 19.0);
  EXPECT_TRUE(ledger.balanced());
}

TEST(Ledger, EmployeeHopsArePaid) {
  // Path 0-1-2-3-4 with brokers {1, 3}: the dominating route 0..4 transits
  // the non-broker 2 — the hired employee (Fig. 6's AS 5).
  const CsrGraph g = make_path(5);
  BrokerSet b(5);
  b.add(1);
  b.add(3);
  const std::vector<sim::Flow> flows{flow_of(0, 4, 2.0)};
  LedgerConfig config;
  config.customer_price = 1.0;
  config.employee_price = 0.4;
  config.transit_cost = 0.05;
  const auto ledger = settle_flows(g, b, flows, config);
  EXPECT_EQ(ledger.flows_routed, 1u);
  EXPECT_EQ(ledger.employee_hops, 1u);
  EXPECT_DOUBLE_EQ(ledger.customer_payments, 4.0);
  EXPECT_DOUBLE_EQ(ledger.employee_payouts, 0.8);
  // Transit brokers: 1 and 3 -> 2 hops * 0.05 * 2.0 volume.
  EXPECT_DOUBLE_EQ(ledger.broker_transit_cost, 0.2);
  EXPECT_TRUE(ledger.balanced());
  // Profit split proportional to transit volume: brokers 1 and 3 equal.
  EXPECT_DOUBLE_EQ(ledger.broker_revenue[1], ledger.broker_revenue[3]);
  EXPECT_GT(ledger.broker_revenue[1], 0.0);
}

TEST(Ledger, UnroutableFlowsCounted) {
  const CsrGraph g = make_path(4);
  BrokerSet b(4);
  b.add(0);  // dominates only edge 0-1
  const std::vector<sim::Flow> flows{flow_of(0, 3, 1.0), flow_of(0, 1, 1.0)};
  const auto ledger = settle_flows(g, b, flows);
  EXPECT_EQ(ledger.flows_unroutable, 1u);
  EXPECT_EQ(ledger.flows_routed, 1u);
  EXPECT_TRUE(ledger.balanced());
}

TEST(Ledger, BooksBalanceOnRandomWorkloads) {
  const CsrGraph g = make_connected_random(80, 0.07, 11);
  const auto brokers = bsr::broker::maxsg(g, 12).brokers;
  bsr::graph::Rng rng(12);
  sim::DemandConfig demand;
  demand.num_flows = 400;
  const auto flows = sim::generate_flows(g, demand, rng);
  const auto ledger = settle_flows(g, brokers, flows);
  EXPECT_TRUE(ledger.balanced(1e-6));
  double distributed = 0.0;
  for (const double r : ledger.broker_revenue) distributed += r;
  EXPECT_NEAR(distributed, ledger.coalition_profit, 1e-6);
  EXPECT_GT(ledger.flows_routed, 0u);
}

TEST(Ledger, RejectsBadPrices) {
  const CsrGraph g = make_star(4);
  BrokerSet b(4);
  LedgerConfig bad;
  bad.customer_price = 0.0;
  EXPECT_THROW(settle_flows(g, b, {}, bad), std::invalid_argument);
  bad = LedgerConfig{};
  bad.transit_cost = -1.0;
  EXPECT_THROW(settle_flows(g, b, {}, bad), std::invalid_argument);
}

TEST(Ledger, DirectBrokerEdgeHasNoTransit) {
  // Adjacent pair with a broker endpoint: no transit nodes at all.
  const CsrGraph g = make_path(3);
  BrokerSet b(3);
  b.add(1);
  const std::vector<sim::Flow> flows{flow_of(1, 2, 5.0)};
  const auto ledger = settle_flows(g, b, flows);
  EXPECT_DOUBLE_EQ(ledger.broker_transit_cost, 0.0);
  EXPECT_DOUBLE_EQ(ledger.coalition_profit, ledger.customer_payments);
  EXPECT_TRUE(ledger.balanced());
}

}  // namespace
}  // namespace bsr::econ
