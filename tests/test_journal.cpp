// Tests for the simulation flight recorder: event-table integrity, ring
// bounding and drop accounting, deterministic export ordering, the
// bsr-events/1 golden format, the interval sampler's round grid, the DCHECK
// black-box hook, and byte-identity of the exported journal across
// BSR_THREADS values for a fixed seed.
#include "obs/journal.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "broker/broker_set.hpp"
#include "graph/check.hpp"
#include "graph/engine.hpp"
#include "graph/fault_plane.hpp"
#include "graph/rng.hpp"
#include "obs/export.hpp"
#include "obs/timeseries.hpp"
#include "sim/churn.hpp"
#include "sim/health.hpp"
#include "test_util.hpp"

namespace bsr::obs {
namespace {

using bsr::broker::BrokerSet;
using bsr::graph::NodeId;
using bsr::graph::Rng;
using bsr::test::JsonValue;
using bsr::test::make_connected_random;
using bsr::test::parse_json;

namespace engine = bsr::graph::engine;

/// Stops recording, restores thread count, and clears the registry even if
/// a test fails mid-way.
struct JournalTestGuard {
  JournalTestGuard() {
    engine::set_num_threads(0);
    if (recording_enabled()) stop_recording();
    reset();
  }
  ~JournalTestGuard() {
    engine::set_num_threads(0);
    if (recording_enabled()) stop_recording();
    reset();
  }
};

TEST(Journal, EventNamesAreUniqueAndFollowConvention) {
  std::set<std::string_view> seen;
  for (std::size_t i = 0; i < kNumEvents; ++i) {
    const auto n = name(static_cast<Event>(i));
    EXPECT_FALSE(n.empty());
    EXPECT_NE(n.find('.'), std::string_view::npos) << n;
    EXPECT_TRUE(seen.insert(n).second) << "duplicate event name " << n;
  }
}

TEST(Journal, RecordingOffIsANoOp) {
  JournalTestGuard guard;
  ASSERT_FALSE(recording_enabled());
  // journal_event is the function behind BSR_EVENT: without start_recording
  // it must record nothing and allocate nothing.
  journal_event(Event::kChurnDeparture, 1.0, 7, 0);
  journal_event_now(Event::kRouteOk, 9, 0);
  const Journal j = snapshot_journal();
  EXPECT_TRUE(j.events.empty());
  EXPECT_EQ(j.recorded, 0u);
  EXPECT_EQ(j.dropped, 0u);
}

TEST(Journal, StartValidatesOptions) {
  JournalTestGuard guard;
  JournalOptions zero_capacity;
  zero_capacity.capacity = 0;
  EXPECT_THROW(start_recording(zero_capacity), std::invalid_argument);
  JournalOptions negative_interval;
  negative_interval.series_interval = -1.0;
  EXPECT_THROW(start_recording(negative_interval), std::invalid_argument);
  EXPECT_FALSE(recording_enabled());
}

TEST(Journal, RingBoundsAndCountsDrops) {
  JournalTestGuard guard;
  JournalOptions options;
  options.capacity = 8;
  options.series_interval = 0.0;
  start_recording(options);
  for (std::uint64_t i = 0; i < 20; ++i) {
    journal_event(Event::kRouteOk, static_cast<double>(i), i, 0);
  }
  stop_recording();
  const Journal j = snapshot_journal();
  EXPECT_EQ(j.recorded, 20u);
  EXPECT_EQ(j.dropped, 12u);
  ASSERT_EQ(j.events.size(), 8u);
  // The survivors are the 8 newest records.
  for (std::size_t i = 0; i < j.events.size(); ++i) {
    EXPECT_EQ(j.events[i].subject, 12 + i);
  }
}

TEST(Journal, SnapshotOrdersByTimeSlotSubjectThenSeq) {
  JournalTestGuard guard;
  JournalOptions options;
  options.series_interval = 0.0;
  start_recording(options);
  // Recorded deliberately out of export order.
  journal_event(Event::kHealthSuspect, 2.0, 5, 1);    // later time
  journal_event(Event::kRouteOk, 1.0, 9, 0);          // same time, later slot
  journal_event(Event::kChurnDeparture, 1.0, 4, 0);   // same time+slot, later subject
  journal_event(Event::kChurnDeparture, 1.0, 3, 0);
  journal_event(Event::kChurnDeparture, 1.0, 3, 7);   // full tie: program order
  stop_recording();
  const Journal j = snapshot_journal();
  ASSERT_EQ(j.events.size(), 5u);
  EXPECT_EQ(j.events[0].subject, 3u);
  EXPECT_EQ(j.events[0].correlation, 0u);
  EXPECT_EQ(j.events[1].subject, 3u);
  EXPECT_EQ(j.events[1].correlation, 7u);  // seq breaks the tie, stably
  EXPECT_EQ(j.events[2].subject, 4u);
  EXPECT_EQ(j.events[3].type, Event::kRouteOk);
  EXPECT_EQ(j.events[4].type, Event::kHealthSuspect);
  EXPECT_EQ(j.events[4].time, 2.0);
}

TEST(Journal, GoldenEventsJsonl) {
  JournalTestGuard guard;
  JournalOptions options;
  options.capacity = 4;
  options.series_interval = 0.0;
  start_recording(options);
  journal_event(Event::kChurnDeparture, 0.5, 17, 0);
  journal_event(Event::kHealthQuarantine, 2.25, 17, 3);
  journal_event(Event::kRouteMisrouted, 2.25, (std::uint64_t{1} << 32) | 2, 0);
  stop_recording();
  std::ostringstream os;
  write_events_jsonl(os, snapshot_journal());
  EXPECT_EQ(os.str(),
            "{\"schema\": \"bsr-events/1\", \"events\": 3, \"dropped\": 0}\n"
            "{\"t\": 0.5, \"type\": \"sim.churn.departure\", \"subject\": 17, "
            "\"corr\": 0}\n"
            "{\"t\": 2.25, \"type\": \"sim.health.quarantine\", \"subject\": 17, "
            "\"corr\": 3}\n"
            "{\"t\": 2.25, \"type\": \"sim.router.misrouted\", "
            "\"subject\": 4294967298, \"corr\": 0}\n");
}

TEST(Journal, ClockDrivesEventNow) {
  JournalTestGuard guard;
  JournalOptions options;
  options.series_interval = 0.0;
  start_recording(options);
  journal_set_time(3.5);
  EXPECT_EQ(journal_time(), 3.5);
  journal_event_now(Event::kFaultGroupFail, 11, 2);
  stop_recording();
  const Journal j = snapshot_journal();
  ASSERT_EQ(j.events.size(), 1u);
  EXPECT_EQ(j.events[0].time, 3.5);
  EXPECT_EQ(j.events[0].subject, 11u);
  EXPECT_EQ(j.events[0].correlation, 2u);
}

TEST(Journal, DumpTailShowsNewestRecordsInProgramOrder) {
  JournalTestGuard guard;
  JournalOptions options;
  options.capacity = 4;
  options.series_interval = 0.0;
  start_recording(options);
  for (std::uint64_t i = 0; i < 6; ++i) {
    journal_event(Event::kHealthProbeMiss, static_cast<double>(i), 100 + i, 0);
  }
  std::ostringstream os;
  dump_journal_tail(os, 3);
  stop_recording();
  const std::string text = os.str();
  EXPECT_NE(text.find("sim.health.probe_miss"), std::string::npos);
  // Only the 3 newest survive the cap; the dump keeps program order.
  EXPECT_EQ(text.find("subject=102"), std::string::npos);
  const auto pos3 = text.find("subject=103");
  const auto pos5 = text.find("subject=105");
  ASSERT_NE(pos3, std::string::npos);
  ASSERT_NE(pos5, std::string::npos);
  EXPECT_LT(pos3, pos5);
}

TEST(Journal, InstallsAndRemovesDcheckHook) {
  JournalTestGuard guard;
  EXPECT_EQ(bsr::dcheck_failure_hook(), nullptr);
  start_recording();
  EXPECT_NE(bsr::dcheck_failure_hook(), nullptr);
  stop_recording();
  EXPECT_EQ(bsr::dcheck_failure_hook(), nullptr);
}

TEST(IntervalSamplerTest, RejectsNonPositiveInterval) {
  IntervalSampler sampler;
  EXPECT_THROW(sampler.begin(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(sampler.begin(0.0, -2.0), std::invalid_argument);
}

TEST(IntervalSamplerTest, ClosesOneRowPerBoundaryOnAFixedGrid) {
  JournalTestGuard guard;
  IntervalSampler sampler;
  sampler.begin(0.0, 1.0);
  EXPECT_TRUE(sampler.active());
  sampler.advance(0.7);  // inside round 0: nothing closes
  EXPECT_TRUE(sampler.rows().empty());
  sampler.advance(3.2);  // crosses boundaries 1, 2, 3 in one step
  ASSERT_EQ(sampler.rows().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sampler.rows()[i].round, i);
    EXPECT_EQ(sampler.rows()[i].t_begin, static_cast<double>(i));
    EXPECT_EQ(sampler.rows()[i].t_end, static_cast<double>(i + 1));
  }
  sampler.advance(2.0);  // non-monotone: ignored
  EXPECT_EQ(sampler.rows().size(), 3u);
  sampler.finish(3.6);  // trailing partial round [3, 3.6)
  ASSERT_EQ(sampler.rows().size(), 4u);
  EXPECT_EQ(sampler.rows()[3].t_begin, 3.0);
  EXPECT_EQ(sampler.rows()[3].t_end, 3.6);
  EXPECT_FALSE(sampler.active());
}

TEST(IntervalSamplerTest, RowsCarryPerRoundCounterDeltas) {
  // count() is the runtime function behind BSR_COUNT: it works in any build,
  // so this test covers the sampler even under BSR_STATS=OFF.
  JournalTestGuard guard;
  IntervalSampler sampler;
  sampler.begin(0.0, 1.0);
  count(Counter::kRouterRoutes, 3);
  sampler.advance(1.0);  // closes [0, 1) holding the 3 routes
  count(Counter::kRouterRoutes, 5);
  count(Counter::kHealthProbesSent, 2);
  sampler.finish(1.5);  // closes [1, 1.5) holding the rest
  ASSERT_EQ(sampler.rows().size(), 2u);
  const auto slot = static_cast<std::size_t>(Counter::kRouterRoutes);
  const auto probe_slot = static_cast<std::size_t>(Counter::kHealthProbesSent);
  EXPECT_EQ(sampler.rows()[0].deltas[slot], 3u);
  EXPECT_EQ(sampler.rows()[0].deltas[probe_slot], 0u);
  EXPECT_EQ(sampler.rows()[1].deltas[slot], 5u);
  EXPECT_EQ(sampler.rows()[1].deltas[probe_slot], 2u);
}

TEST(IntervalSamplerTest, SeriesCsvHasStableColumnsAndOneLinePerRow) {
  JournalTestGuard guard;
  IntervalSampler sampler;
  sampler.begin(0.0, 2.0);
  sampler.advance(2.0);
  sampler.finish(2.0);
  std::ostringstream os;
  write_series_csv(os, sampler.rows());
  const std::string csv = os.str();
  std::istringstream lines(csv);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header.rfind("round,t_begin,t_end,", 0), 0u);
  // One column per counter slot, every slot named.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(header.begin(), header.end(), ',')),
            2 + kNumCounters);
  EXPECT_NE(header.find("sim.router.routes"), std::string::npos);
  std::string row;
  ASSERT_TRUE(std::getline(lines, row));
  EXPECT_EQ(row.rfind("0,0,2,", 0), 0u);
  EXPECT_FALSE(std::getline(lines, row));  // exactly one data row
}

TEST(Journal, ChromeTraceParsesAndCarriesInstantEvents) {
  JournalTestGuard guard;
  JournalOptions options;
  options.series_interval = 1.0;
  start_recording(options);
  journal_set_time(0.25);
  journal_event_now(Event::kChurnDeparture, 6, 0);
  journal_set_time(1.75);
  journal_event_now(Event::kHealthQuarantine, 6, 1);
  stop_recording();
  std::ostringstream os;
  write_journal_chrome_trace(os, snapshot_journal(), journal_series());
  const JsonValue trace = parse_json(os.str());
  const JsonValue* events = trace.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);
  ASSERT_EQ(events->array.size(), 2u);  // no counters moved: instants only
  const JsonValue& first = events->array[0];
  EXPECT_EQ(first.find("ph")->string, "i");
  EXPECT_EQ(first.find("name")->string, "sim.churn.departure");
  EXPECT_EQ(first.find("ts")->number, 250000.0);  // 0.25 s -> µs
  EXPECT_EQ(first.find("args")->find("subject")->number, 6.0);
  const JsonValue& second = events->array[1];
  EXPECT_EQ(second.find("name")->string, "sim.health.quarantine");
  EXPECT_EQ(second.find("args")->find("corr")->number, 1.0);
}

// --- end-to-end determinism --------------------------------------------------

/// Records a fixed-seed health-churn run and returns the exported JSONL and
/// CSV as strings.
std::pair<std::string, std::string> record_churn_run(int threads) {
  const bsr::graph::CsrGraph g = make_connected_random(120, 0.05, 42);
  std::vector<NodeId> members;
  for (NodeId v = 0; v < 20; ++v) members.push_back(v);
  const BrokerSet brokers(120, members);
  std::vector<bsr::graph::FailureGroup> groups;
  for (NodeId v = 0; v < 6; ++v) {
    groups.push_back(bsr::graph::incident_group(g, v));
  }
  bsr::sim::HealthChurnConfig churn;
  churn.departure_rate = 0.6;
  churn.mean_return_time = 10.0;
  churn.horizon = 40.0;
  bsr::sim::LinkChurnConfig link;
  link.outage_rate = 0.1;
  link.mean_downtime = 5.0;
  bsr::sim::HealthConfig health;
  health.jitter = 0.0;
  bsr::sim::RepairPolicy repair;
  repair.budget = 2;

  engine::set_num_threads(threads);
  reset();
  JournalOptions options;
  options.series_interval = 5.0;
  start_recording(options);
  Rng rng(123);
  (void)bsr::sim::simulate_churn_with_health(g, brokers, churn, link, groups,
                                             health, repair, rng);
  stop_recording();
  std::ostringstream events_os, series_os;
  write_events_jsonl(events_os, snapshot_journal());
  write_series_csv(series_os, journal_series());
  engine::set_num_threads(0);
  return {events_os.str(), series_os.str()};
}

// The acceptance-critical property: a fixed seed produces a byte-identical
// exported journal and time series at any BSR_THREADS value, because events
// are only recorded from the single-threaded simulation loop and the export
// order is deterministic.
TEST(Journal, ExportIsByteIdenticalAcrossThreadCounts) {
  if (!BSR_STATS_ENABLED) GTEST_SKIP() << "built with BSR_STATS=OFF";
  JournalTestGuard guard;
  const auto [events_1, series_1] = record_churn_run(1);
  const auto [events_4, series_4] = record_churn_run(4);
  EXPECT_EQ(events_1, events_4);
  EXPECT_EQ(series_1, series_4);
  // And the run actually journaled something worth comparing.
  EXPECT_GT(std::count(events_1.begin(), events_1.end(), '\n'), 100);
  EXPECT_NE(events_1.find("sim.health.quarantine"), std::string::npos);
  EXPECT_NE(events_1.find("sim.repair.request"), std::string::npos);
}

// Correlation ids stitch detector chains together: every quarantine's
// episode id must also appear on a suspect record, and repair requests must
// reference a real episode.
TEST(Journal, CorrelationIdsLinkDetectionChains) {
  if (!BSR_STATS_ENABLED) GTEST_SKIP() << "built with BSR_STATS=OFF";
  JournalTestGuard guard;
  (void)record_churn_run(1);
  const Journal j = snapshot_journal();
  std::set<std::uint64_t> suspect_episodes;
  for (const EventRecord& rec : j.events) {
    if (rec.type == Event::kHealthSuspect) {
      EXPECT_NE(rec.correlation, 0u);
      suspect_episodes.insert(rec.correlation);
    }
  }
  ASSERT_FALSE(suspect_episodes.empty());
  std::size_t quarantines = 0;
  for (const EventRecord& rec : j.events) {
    if (rec.type == Event::kHealthQuarantine) {
      ++quarantines;
      EXPECT_TRUE(suspect_episodes.contains(rec.correlation))
          << "quarantine episode " << rec.correlation << " never suspected";
    }
    if (rec.type == Event::kRepairRequest) {
      EXPECT_TRUE(suspect_episodes.contains(rec.correlation));
    }
  }
  EXPECT_GT(quarantines, 0u);
}

}  // namespace
}  // namespace bsr::obs
