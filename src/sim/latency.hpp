// Latency-plane routing: what the hop-count abstraction hides.
//
// The paper reasons in AS hops; real QoS is milliseconds. This module puts
// a synthetic latency on every edge — tier-dependent (core links are long-
// haul but fast-switched; stub links short) plus jitter — and routes on the
// latency metric with Dijkstra, on both the free and the dominated plane.
// The interesting output: the latency overhead of broker supervision, which
// hop-count stretch under-reports when the dominated detour uses fast core
// links.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"
#include "graph/rng.hpp"
#include "topology/internet.hpp"

namespace bsr::sim {

struct LatencyModelConfig {
  /// Base one-way latency (ms) by the *higher* tier of the edge endpoints:
  /// core links (tier-1/2) are long-haul, stub links are metro.
  double core_base_ms = 12.0;
  double transit_base_ms = 6.0;
  double edge_base_ms = 2.0;
  /// Multiplicative jitter: latency *= 1 + U(0, jitter).
  double jitter = 0.5;
};

/// Per-edge latencies aligned with the graph's adjacency slots (same layout
/// trick as EdgeRelations). Deterministic in the rng.
class LatencyModel {
 public:
  LatencyModel(const topology::InternetTopology& topo, const LatencyModelConfig& config,
               bsr::graph::Rng& rng);

  /// Latency of edge (u, v) in ms; symmetric.
  [[nodiscard]] double latency(bsr::graph::NodeId u, bsr::graph::NodeId v) const;

  /// Total latency of a path (sum over hops).
  [[nodiscard]] double path_latency(std::span<const bsr::graph::NodeId> path) const;

 private:
  [[nodiscard]] std::size_t slot(bsr::graph::NodeId u, bsr::graph::NodeId v) const;

  std::vector<std::uint64_t> offsets_;
  std::vector<bsr::graph::NodeId> adjacency_;
  std::vector<double> latency_by_slot_;
};

struct LatencyRoute {
  std::vector<bsr::graph::NodeId> path;
  double latency_ms = 0.0;
  [[nodiscard]] bool reachable() const noexcept { return !path.empty(); }
};

/// Minimum-latency route on the free plane (all edges) or the dominated
/// plane (broker-supervised edges only). Dijkstra, O((V+E) log V).
[[nodiscard]] LatencyRoute route_min_latency(const bsr::graph::CsrGraph& g,
                                             const LatencyModel& model,
                                             bsr::graph::NodeId src,
                                             bsr::graph::NodeId dst,
                                             const bsr::broker::BrokerSet* brokers);

}  // namespace bsr::sim
