// Instrumented twins of broker::maxsg and sim::RouteService for perf_obs's
// timed comparison.
//
// The overhead measurement wants both sides of the comparison compiled in
// the same environment — same TU shape, same alignment pinning (see
// bench/CMakeLists.txt) — so layout luck cancels out of the delta. The
// instrumented *library* symbols live in libbsr_broker / libbsr_sim,
// compiled without the bench's alignment flags, so timing them against the
// pinned bare twins mixes telemetry cost with code-placement noise. This TU
// recompiles the same sources with telemetry ON under the bench flags;
// perf_obs times these twins against the bare ones and keeps the library
// symbols for counter capture (the two are token-identical, so the counters
// they bump are too).
//
// `unite_star` / the engine bfs templates are deliberately NOT renamed here:
// with telemetry on this TU's instantiations are token-identical to the
// library's, so sharing the linkonce symbols is harmless. The route-service
// renames exist only because those are out-of-line non-template definitions
// that would otherwise collide with libbsr_sim's at link time; all renames
// sit before the first include so std::to_string stays self-consistent
// (same scheme as bare_kernels.cpp).
#define maxsg instr_maxsg
#define RouteService InstrRouteService
#define RebuildScheduler InstrRebuildScheduler
#define to_string instr_to_string
#define answer_digest instr_answer_digest
#define audit_answer instr_audit_answer
#include "broker/maxsg.cpp"
#include "sim/route_service.cpp"
#undef maxsg
#undef RouteService
#undef RebuildScheduler
#undef to_string
#undef answer_digest
#undef audit_answer

#include "instr_kernels.hpp"
#include "route_lifecycle.hpp"

namespace instr {

bsr::broker::MaxSgResult maxsg(const bsr::graph::CsrGraph& g, std::uint32_t k) {
  return bsr::broker::instr_maxsg(g, k);
}

bsr::bench::RouteLifecycleResult route_lifecycle(
    const bsr::graph::CsrGraph& g, const bsr::broker::BrokerSet& brokers,
    std::span<const bsr::sim::Flow> flows, int serve_reps) {
  return bsr::bench::run_route_lifecycle<bsr::sim::InstrRouteService,
                                         bsr::sim::RouteAnswer>(
      g, brokers, flows, serve_reps);
}

}  // namespace instr
