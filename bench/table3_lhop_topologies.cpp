// Reproduces Table 3 — l-hop E2E connectivity of different topologies.
//
// Paper: ER-Random, WS-Small-World, BA-Scale-free, ASes without IXPs, and
// ASes with IXPs over the same 52,079-vertex population; with IXPs the graph
// is a (0.99, 4)-graph (99.21 % within 4 hops). Comparison topologies use
// matched vertex/edge budgets.
#include <iostream>

#include "bench_common.hpp"
#include "graph/distance_histogram.hpp"
#include "topology/ba.hpp"
#include "topology/er.hpp"
#include "topology/ws.hpp"

int main() {
  auto ctx = bsr::bench::make_context("Table 3: l-hop E2E connectivity by topology");
  const auto& g = ctx.topo.graph;
  const auto n = g.num_vertices();
  const auto m = g.num_edges();

  bsr::graph::Rng rng(ctx.env.seed + 3);
  const auto sources = ctx.env.bfs_sources;

  struct Row {
    const char* name;
    bsr::graph::DistanceCdf cdf;
  };
  std::vector<Row> rows;

  {
    bsr::bench::Stopwatch sw;
    const auto er = bsr::topology::make_er(n, m, ctx.env.seed + 31);
    rows.push_back({"ER-Random", bsr::graph::distance_cdf_sampled(er, rng, sources)});
    std::cout << "ER built+measured in " << bsr::io::format_double(sw.seconds(), 1)
              << "s\n";
  }
  {
    // WS with even k matching the mean degree.
    auto k = static_cast<std::uint32_t>(2 * m / n);
    if (k % 2 != 0) ++k;
    k = std::max<std::uint32_t>(2, k);
    const auto ws = bsr::topology::make_ws(n, k, 0.1, ctx.env.seed + 32);
    rows.push_back({"WS-Small-World",
                    bsr::graph::distance_cdf_sampled(ws, rng, sources)});
  }
  {
    const auto ba = bsr::topology::make_ba(
        n, std::max<std::uint32_t>(1, static_cast<std::uint32_t>(m / n)),
        ctx.env.seed + 33);
    rows.push_back({"BA-Scale-free",
                    bsr::graph::distance_cdf_sampled(ba, rng, sources)});
  }
  {
    const auto as_only = ctx.topo.as_only_graph();
    rows.push_back({"ASes without IXPs",
                    bsr::graph::distance_cdf_sampled(as_only, rng, sources)});
  }
  rows.push_back({"ASes with IXPs", bsr::graph::distance_cdf_sampled(g, rng, sources)});

  bsr::io::Table table({"Topology", "l=1", "l=2", "l=3", "l=4", "l=5", "l=6",
                        "saturated"});
  for (const Row& row : rows) {
    auto r = table.row();
    r.cell(row.name);
    for (std::uint32_t l = 1; l <= 6; ++l) r.percent(row.cdf.at(l));
    r.percent(row.cdf.reachable);
  }
  table.print(std::cout);
  std::cout << "(paper anchor: ASes with IXPs reaches 99.21% at l = 4)\n";
  return 0;
}
