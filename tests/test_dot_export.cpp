#include "io/dot_export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "broker/maxsg.hpp"
#include "topology/internet.hpp"

namespace bsr::io {
namespace {

bsr::topology::InternetTopology tiny_topo() {
  auto cfg = bsr::topology::InternetConfig{}.scaled(0.005);
  cfg.seed = 3;
  return bsr::topology::make_internet(cfg);
}

TEST(DotExport, FullGraphStructure) {
  const auto topo = tiny_topo();
  std::ostringstream oss;
  write_dot(oss, topo);
  const std::string dot = oss.str();
  EXPECT_NE(dot.find("graph brokerset {"), std::string::npos);
  EXPECT_NE(dot.find("layout=sfdp"), std::string::npos);
  EXPECT_NE(dot.find(" -- "), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  // One node statement per vertex.
  std::size_t nodes = 0;
  for (std::size_t pos = dot.find("\n  n"); pos != std::string::npos;
       pos = dot.find("\n  n", pos + 1)) {
    if (dot.compare(pos + 3, 1, "n") == 0) ++nodes;
  }
  EXPECT_GE(nodes, topo.num_vertices());  // node lines + edge lines both match
}

TEST(DotExport, BrokersHighlighted) {
  const auto topo = tiny_topo();
  const auto brokers = bsr::broker::maxsg(topo.graph, 5).brokers;
  std::ostringstream oss;
  write_dot(oss, topo, &brokers);
  EXPECT_NE(oss.str().find("doublecircle"), std::string::npos);
}

TEST(DotExport, SampleBoundsSize) {
  const auto topo = tiny_topo();
  bsr::graph::Rng rng(4);
  std::ostringstream oss;
  const auto exported = write_dot_sample(oss, topo, nullptr, 10, 20, rng);
  EXPECT_GE(exported, 10u);
  EXPECT_LE(exported, 30u);
  EXPECT_NE(oss.str().find("graph brokerset {"), std::string::npos);
}

TEST(DotExport, TypePaletteUsed) {
  const auto topo = tiny_topo();
  std::ostringstream oss;
  write_dot(oss, topo);
  EXPECT_NE(oss.str().find("#6baed6"), std::string::npos);  // transit blue
  EXPECT_NE(oss.str().find("#9e9ac8"), std::string::npos);  // IXP purple
}

}  // namespace
}  // namespace bsr::io
