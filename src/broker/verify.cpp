#include "broker/verify.hpp"

#include <bit>
#include <stdexcept>
#include <vector>

#include "broker/coverage.hpp"
#include "graph/bfs.hpp"
#include "graph/rollback_union_find.hpp"

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;

bool is_dominating_path(const CsrGraph& g, const BrokerSet& b,
                        std::span<const NodeId> path) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const NodeId u = path[i];
    const NodeId v = path[i + 1];
    if (u >= g.num_vertices() || v >= g.num_vertices()) return false;
    if (!g.has_edge(u, v)) return false;
    if (!b.dominates_edge(u, v)) return false;
  }
  return true;
}

bool has_pairwise_guarantee(const CsrGraph& g, const BrokerSet& b) {
  if (b.empty()) return true;  // vacuous: B ∪ N(B) pairs need B non-empty
  // Rollback flavor: find() is const, so the component scan below can't
  // mutate the forest out from under the covered bitmap pass.
  bsr::graph::RollbackUnionFind uf(g.num_vertices());
  std::vector<bool> covered(g.num_vertices(), false);
  for (const NodeId u : b.members()) {
    covered[u] = true;
    for (const NodeId v : g.neighbors(u)) {
      covered[v] = true;
      uf.unite(u, v);
    }
  }
  // Guarantee holds iff all covered vertices share one dominated component.
  NodeId reference = bsr::graph::kUnreachable;
  for (NodeId v = 0; v < g.num_vertices(); ++v) {
    if (!covered[v]) continue;
    const NodeId root = uf.find(v);
    if (reference == bsr::graph::kUnreachable) {
      reference = root;
    } else if (root != reference) {
      return false;
    }
  }
  return true;
}

namespace {

constexpr std::uint32_t kBruteForceLimit = 22;

template <typename Admissible>
std::uint32_t brute_force_best(const CsrGraph& g, std::uint32_t k,
                               Admissible&& admissible) {
  const NodeId n = g.num_vertices();
  if (n > kBruteForceLimit) {
    throw std::invalid_argument("brute force: graph too large (> 22 vertices)");
  }
  std::uint32_t best = 0;
  const std::uint64_t limit = 1ull << n;
  std::vector<NodeId> members;
  for (std::uint64_t bits = 0; bits < limit; ++bits) {
    if (static_cast<std::uint32_t>(std::popcount(bits)) > k) continue;
    members.clear();
    for (NodeId v = 0; v < n; ++v) {
      if (bits & (1ull << v)) members.push_back(v);
    }
    const BrokerSet candidate(n, members);
    if (!admissible(candidate)) continue;
    best = std::max(best, coverage(g, candidate));
  }
  return best;
}

}  // namespace

std::uint32_t brute_force_mcb_optimum(const CsrGraph& g, std::uint32_t k) {
  return brute_force_best(g, k, [](const BrokerSet&) { return true; });
}

std::uint32_t brute_force_mcbg_optimum(const CsrGraph& g, std::uint32_t k) {
  return brute_force_best(
      g, k, [&g](const BrokerSet& b) { return has_pairwise_guarantee(g, b); });
}

}  // namespace bsr::broker
