#include "broker/dominated.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "graph/sampling.hpp"
#include "graph/union_find.hpp"

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::graph::Rng;
using bsr::graph::UnionFind;

namespace engine = bsr::graph::engine;

bsr::graph::EdgeFilter dominated_edge_filter(const BrokerSet& b) {
  return [&b](NodeId u, NodeId v) { return b.dominates_edge(u, v); };
}

DominatedEvaluator::DominatedEvaluator(const CsrGraph& g, const BrokerSet& b,
                                       const bsr::graph::FaultPlane* faults)
    : graph_(&g), brokers_(&b), faults_(faults), uf_(g.num_vertices()) {
  if (b.num_vertices() != g.num_vertices()) {
    throw std::invalid_argument("DominatedEvaluator: size mismatch");
  }
  if (faults != nullptr && &faults->graph() != &g) {
    throw std::invalid_argument("DominatedEvaluator: fault plane bound to another graph");
  }
  build_dominated_uf(g, b, uf_, faults_);
}

void DominatedEvaluator::rebuild() {
  uf_.reset(graph_->num_vertices());
  build_dominated_uf(*graph_, *brokers_, uf_, faults_);
}

double DominatedEvaluator::connectivity() const noexcept {
  const NodeId n = graph_->num_vertices();
  if (n < 2) return 0.0;
  // connected_pairs() is an exact integer < 2^53 for any realistic |V|, so
  // this matches the legacy per-component double summation bit-for-bit.
  const double total_pairs = static_cast<double>(n) * (n - 1.0) / 2.0;
  return static_cast<double>(uf_.connected_pairs()) / total_pairs;
}

double saturated_connectivity(const CsrGraph& g, const BrokerSet& b) {
  const DominatedEvaluator evaluator(g, b);
  return evaluator.connectivity();
}

double saturated_connectivity(const CsrGraph& g, const BrokerSet& b,
                              const bsr::graph::FaultPlane& faults) {
  const DominatedEvaluator evaluator(g, b, &faults);
  return evaluator.connectivity();
}

bsr::graph::DistanceCdf dominated_distance_cdf(const CsrGraph& g, const BrokerSet& b,
                                               Rng& rng, std::size_t num_sources) {
  const NodeId n = g.num_vertices();
  const engine::DominatedEdgeFilter filter{&b.mask()};
  if (num_sources >= n) {
    std::vector<NodeId> all(n);
    std::iota(all.begin(), all.end(), NodeId{0});
    return bsr::graph::distance_cdf_from_sources_with(g, all, filter);
  }
  const auto sources =
      bsr::graph::sample_distinct(rng, n, static_cast<NodeId>(num_sources));
  return bsr::graph::distance_cdf_from_sources_with(g, sources, filter);
}

BrokerOnlyShare broker_only_share(const CsrGraph& g, const BrokerSet& b, Rng& rng,
                                  std::size_t num_pairs) {
  BrokerOnlyShare out;
  const NodeId n = g.num_vertices();
  if (n < 2 || b.empty()) return out;

  // Components of G_B (any dominating path) ...
  const DominatedEvaluator dominated(g, b);
  // ... and components of the broker-induced subgraph (edges inside B only).
  UnionFind broker_uf(n);
  for (const NodeId u : b.members()) {
    for (const NodeId v : g.neighbors(u)) {
      if (b.contains(v)) broker_uf.unite(u, v);
    }
  }

  // A pair (u, v) is broker-only connected iff some broker component is
  // adjacent-or-equal to both endpoints. Most vertices attach to few broker
  // components, so compare small sorted root lists per endpoint.
  const auto attached_roots = [&](NodeId v) {
    std::vector<NodeId> roots;
    if (b.contains(v)) {
      roots.push_back(broker_uf.find(v));
    } else {
      for (const NodeId w : g.neighbors(v)) {
        if (b.contains(w)) roots.push_back(broker_uf.find(w));
      }
    }
    std::sort(roots.begin(), roots.end());
    roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
    return roots;
  };

  const auto pairs = bsr::graph::sample_pairs(rng, n, num_pairs);
  out.pairs_sampled = pairs.size();
  std::size_t broker_only_count = 0;
  for (const auto& [u, v] : pairs) {
    if (!dominated.uf().connected(u, v)) continue;
    ++out.pairs_connected;
    const auto roots_u = attached_roots(u);
    const auto roots_v = attached_roots(v);
    const bool shared = std::ranges::any_of(roots_u, [&](NodeId r) {
      return std::binary_search(roots_v.begin(), roots_v.end(), r);
    });
    if (shared) ++broker_only_count;
  }
  if (out.pairs_connected > 0) {
    out.broker_only = static_cast<double>(broker_only_count) /
                      static_cast<double>(out.pairs_connected);
  }
  return out;
}

std::uint32_t largest_dominated_component(const CsrGraph& g, const BrokerSet& b) {
  if (g.num_vertices() == 0) return 0;
  const DominatedEvaluator evaluator(g, b);
  return evaluator.largest_component();
}

}  // namespace bsr::broker
