// Minimal ASCII table renderer for bench/example output.
//
// Every reproduced paper table/figure prints through this so the harness
// output is uniform and diffable run-to-run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace bsr::io {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience for mixed numeric/text rows.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(table) {}
    ~RowBuilder();
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

    RowBuilder& cell(std::string text);
    RowBuilder& cell(std::int64_t value);
    RowBuilder& cell(std::uint64_t value);
    /// Fixed-precision double.
    RowBuilder& cell(double value, int precision = 2);
    /// Percentage with a trailing % sign, e.g. 85.41%.
    RowBuilder& percent(double fraction, int precision = 2);

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };

  [[nodiscard]] RowBuilder row() { return RowBuilder(*this); }

  /// Renders with column alignment and a header underline.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a fraction as a percent string, e.g. 0.8541 -> "85.41".
[[nodiscard]] std::string format_percent(double fraction, int precision = 2);

/// Formats a double with fixed precision.
[[nodiscard]] std::string format_double(double value, int precision = 2);

/// Section banner used by bench binaries ("=== Table 3: ... ===").
void print_banner(std::ostream& os, const std::string& title);

}  // namespace bsr::io
