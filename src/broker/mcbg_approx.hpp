// Algorithm 2 — approximation algorithm for MCBG on an (α, β)-graph.
//
// Splits the budget k into x* pre-selected brokers B' (chosen by the greedy
// Algorithm 1 to approximate optimal coverage) and a stitching set B″ that
// restores the B-dominating-path guarantee among the pre-selected brokers:
// every broker is connected to a chosen root r along its shortest path, with
// alternate path nodes promoted to brokers so every hop is dominated. The
// root is chosen to minimize |B″| (lines 2-11 of the paper's listing).
//
// On an (α, β)-graph each non-root broker costs at most ⌈β/2⌉ - 1 extra
// brokers, giving x* = the largest x with x + (x-1)(⌈β/2⌉-1) <= k and an
// overall (1 - 1/e)/θ approximation ratio (Theorem 3; θ = 2⌈β/2⌉... see
// paper). If a rare long path overruns the budget, we back off x* and retry,
// so the returned set always satisfies |B| <= k.
#pragma once

#include <cstdint>
#include <optional>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"

namespace bsr::broker {

struct McbgOptions {
  /// β of the (α, β)-graph assumption (the AS graph is a (0.99, 4)-graph).
  std::uint32_t beta = 4;
  /// Number of candidate roots to evaluate in the |B″| minimization.
  /// 0 = all of B' (the paper's exact loop, O(x*²) path extractions);
  /// smaller values trade the constant for speed and rarely change |B″|.
  std::uint32_t max_roots = 0;
  /// The worst-case stitching reservation (⌈β/2⌉-1 per broker) is rarely
  /// consumed on a hub-dense graph. When true, binary-search the largest
  /// pre-selection x ∈ [x*, k] whose stitched total still fits the budget —
  /// this matches the paper's reported set sizes (e.g. 1,064 brokers for a
  /// ~1,000 budget) instead of leaving half the budget idle.
  bool use_full_budget = true;
};

struct McbgResult {
  BrokerSet brokers;                // B = B' ∪ B″, |B| <= k
  std::uint32_t preselected = 0;    // |B'| actually used (x* after back-off)
  std::uint32_t stitching = 0;      // |B″|
  std::uint32_t coverage = 0;       // f(B)
  /// Brokers of B' that are unreachable from the chosen root (possible on a
  /// disconnected graph); their dominating-path guarantee is void.
  std::uint32_t unreachable_preselected = 0;
};

/// x* for budget k and path bound beta (largest x with
/// x + (x-1)(⌈β/2⌉-1) <= k). Exposed for tests.
[[nodiscard]] std::uint32_t mcbg_preselect_budget(std::uint32_t k, std::uint32_t beta);

/// Runs Algorithm 2. Throws std::invalid_argument for empty graph / beta = 0.
[[nodiscard]] McbgResult mcbg_approx(const bsr::graph::CsrGraph& g, std::uint32_t k,
                                     const McbgOptions& options = {});

}  // namespace bsr::broker
