// Disjoint-set forest with union-by-size and path halving.
//
// Used heavily: saturated E2E connectivity, MaxSG's incremental dominated-
// subgraph maintenance, and connected-component extraction. Tracks component
// sizes so "size of the merged component" queries are O(alpha).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/check.hpp"
#include "graph/csr_graph.hpp"

namespace bsr::graph {

class UnionFind {
 public:
  explicit UnionFind(NodeId n);

  /// Resets to n singleton components.
  void reset(NodeId n);

  [[nodiscard]] NodeId size() const noexcept { return static_cast<NodeId>(parent_.size()); }

  /// Root of v's component (with path halving, so non-const).
  [[nodiscard]] NodeId find(NodeId v) noexcept;

  /// Merges the components of u and v; returns true if they were distinct.
  bool unite(NodeId u, NodeId v) noexcept;

  [[nodiscard]] bool connected(NodeId u, NodeId v) noexcept { return find(u) == find(v); }

  /// Number of vertices in v's component.
  [[nodiscard]] std::uint32_t component_size(NodeId v) noexcept {
    return size_[find(v)];
  }

  [[nodiscard]] NodeId num_components() const noexcept { return num_components_; }

 private:
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> size_;
  NodeId num_components_ = 0;
};

}  // namespace bsr::graph
