#include "io/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace bsr::io {

CsvWriter::CsvWriter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("CsvWriter: empty header");
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("CsvWriter: row arity mismatch");
  }
  rows_.push_back(cells);
}

std::string csv_escape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::to_string() const {
  std::ostringstream oss;
  const auto emit = [&oss](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) oss << ',';
      oss << csv_escape(row[i]);
    }
    oss << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return oss.str();
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("CsvWriter: cannot open " + path);
  out << to_string();
  if (!out) throw std::runtime_error("CsvWriter: write failed for " + path);
}

}  // namespace bsr::io
