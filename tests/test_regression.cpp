// Golden-value regression tests.
//
// Pins integer-valued outcomes of the full pipeline at a fixed seed and
// scale. These guard determinism across refactors: every value below was
// produced by the implementation itself, reviewed for plausibility, and
// frozen. A change here means behavior changed — intentionally or not.
// (Only integer quantities are pinned; floating-point aggregates get loose
// bounds to stay robust to benign summation-order changes.)
#include <gtest/gtest.h>

#include "broker/baselines.hpp"
#include "broker/dominated.hpp"
#include "broker/greedy_mcb.hpp"
#include "broker/maxsg.hpp"
#include "broker/mcbg_approx.hpp"
#include "topology/internet.hpp"

namespace bsr {
namespace {

topology::InternetTopology golden_topo() {
  auto cfg = topology::InternetConfig{}.scaled(0.02);
  cfg.seed = 777;
  return topology::make_internet(cfg);
}

TEST(Regression, TopologyShapeIsFrozen) {
  const auto topo = golden_topo();
  EXPECT_EQ(topo.num_ases, 1035u);
  EXPECT_EQ(topo.num_ixps, 6u);
  // Edge count is deterministic in the seed; record and pin it.
  const auto edges = topo.graph.num_edges();
  EXPECT_GT(edges, 7000u);
  EXPECT_LT(edges, 9000u);
  // Re-generation is bit-identical.
  const auto again = golden_topo();
  EXPECT_EQ(again.graph.edges(), topo.graph.edges());
}

TEST(Regression, GreedySelectionIsFrozen) {
  const auto topo = golden_topo();
  const auto a = broker::greedy_mcb(topo.graph, 25);
  const auto b = broker::greedy_mcb(topo.graph, 25);
  ASSERT_EQ(a.brokers.size(), b.brokers.size());
  for (std::size_t i = 0; i < a.brokers.size(); ++i) {
    EXPECT_EQ(a.brokers.members()[i], b.brokers.members()[i]);
  }
  // Coverage can only be in a sane band for 25 brokers on ~1k vertices.
  EXPECT_GT(a.coverage, topo.num_vertices() / 2);
  EXPECT_LE(a.coverage, topo.num_vertices());
}

TEST(Regression, MaxSgDeterministicAcrossRuns) {
  const auto topo = golden_topo();
  const auto a = broker::maxsg(topo.graph, 40);
  const auto b = broker::maxsg(topo.graph, 40);
  EXPECT_EQ(a.final_component, b.final_component);
  ASSERT_EQ(a.brokers.size(), b.brokers.size());
  for (std::size_t i = 0; i < a.brokers.size(); ++i) {
    EXPECT_EQ(a.brokers.members()[i], b.brokers.members()[i]);
  }
}

TEST(Regression, AlgorithmOrderingStable) {
  const auto topo = golden_topo();
  const std::uint32_t k = 20;
  const double maxsg_conn =
      broker::saturated_connectivity(topo.graph, broker::maxsg(topo.graph, k).brokers);
  const double db_conn = broker::saturated_connectivity(
      topo.graph, broker::db_top_degree(topo.graph, k));
  const double ixp_conn =
      broker::saturated_connectivity(topo.graph, broker::ixpb(topo));
  EXPECT_GE(maxsg_conn, db_conn - 0.02);
  EXPECT_GT(db_conn, ixp_conn);
}

TEST(Regression, McbgFitsBudgetDeterministically) {
  const auto topo = golden_topo();
  broker::McbgOptions options;
  options.max_roots = 4;
  const auto a = broker::mcbg_approx(topo.graph, 30, options);
  const auto b = broker::mcbg_approx(topo.graph, 30, options);
  EXPECT_EQ(a.brokers.size(), b.brokers.size());
  EXPECT_EQ(a.preselected, b.preselected);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_LE(a.brokers.size(), 30u);
}

}  // namespace
}  // namespace bsr
