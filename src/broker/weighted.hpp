// Traffic-weighted broker selection (extension of §4-§5).
//
// The paper maximizes the *count* of covered vertices / connected pairs,
// implicitly valuing every AS equally. In practice QoS revenue follows
// traffic, which is heavily skewed (82 % of 2020 IP traffic is video, per
// the paper's introduction). This module generalizes the machinery to
// per-vertex weights:
//   * weighted coverage f_w(B) = Σ_{v ∈ B ∪ N(B)} w(v)  — still monotone
//     submodular, so the lazy greedy keeps its (1 - 1/e) guarantee;
//   * weighted saturated connectivity — pair (u, v) counts w(u)·w(v),
//     i.e., the fraction of *traffic gravity* served by dominating paths.
#pragma once

#include <cstdint>
#include <span>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"

namespace bsr::broker {

/// Weighted coverage f_w(B). Throws std::invalid_argument on size mismatch
/// or negative weights.
[[nodiscard]] double weighted_coverage(const bsr::graph::CsrGraph& g,
                                       const BrokerSet& b,
                                       std::span<const double> weight);

struct WeightedGreedyResult {
  BrokerSet brokers;
  double coverage = 0.0;               // f_w of the final set
  std::vector<double> coverage_curve;  // f_w after each pick
};

/// Lazy greedy for weighted MCB — the (1 - 1/e)-approximation carries over
/// because f_w stays monotone submodular for non-negative weights.
[[nodiscard]] WeightedGreedyResult weighted_greedy_mcb(
    const bsr::graph::CsrGraph& g, std::uint32_t k, std::span<const double> weight);

/// Weighted saturated connectivity: Σ over connected-in-G_B pairs of
/// w(u)·w(v), divided by Σ over all pairs — the traffic share that can be
/// served with dominating paths. O(|V| + |E|) via per-component weight sums.
[[nodiscard]] double weighted_saturated_connectivity(const bsr::graph::CsrGraph& g,
                                                     const BrokerSet& b,
                                                     std::span<const double> weight);

struct WeightedMaxSgResult {
  BrokerSet brokers;
  /// Weight of the heaviest dominated component after each pick.
  std::vector<double> component_weight_curve;
  double final_component_weight = 0.0;
};

/// Weighted MaxSG: each iteration adds the vertex maximizing the *weight*
/// (not size) of the largest dominated component — the traffic-aware
/// Algorithm 3. Same O(k(|V|+|E|)) incremental union-find, with per-root
/// weight sums instead of counts.
[[nodiscard]] WeightedMaxSgResult weighted_maxsg(const bsr::graph::CsrGraph& g,
                                                 std::uint32_t k,
                                                 std::span<const double> weight);

}  // namespace bsr::broker
