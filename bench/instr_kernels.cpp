// Instrumented twin of broker::maxsg for perf_obs's timed comparison.
//
// The overhead measurement wants both sides of the comparison compiled in
// the same environment — same TU shape, same alignment pinning (see
// bench/CMakeLists.txt) — so layout luck cancels out of the delta. The
// instrumented *library* symbol lives in libbsr_broker, compiled without the
// bench's alignment flags, so timing it against the pinned bare twin mixes
// telemetry cost with code-placement noise. This TU recompiles the same
// source with telemetry ON under the bench flags; perf_obs times this twin
// against the bare one and keeps the library symbol for counter capture
// (the two are token-identical, so the counters they bump are too).
//
// `unite_star` is deliberately NOT renamed here: with telemetry on this TU's
// instantiation is token-identical to the library's, so sharing the linkonce
// symbol is harmless.
#define maxsg instr_maxsg
#include "broker/maxsg.cpp"
#undef maxsg

#include "instr_kernels.hpp"

namespace instr {

bsr::broker::MaxSgResult maxsg(const bsr::graph::CsrGraph& g, std::uint32_t k) {
  return bsr::broker::instr_maxsg(g, k);
}

}  // namespace instr
