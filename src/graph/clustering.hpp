// Clustering coefficients — the third axis of the topology fingerprint.
//
// Table 3 contrasts ER (no clustering), WS (high clustering), BA (low) and
// the AS graph (moderate, hierarchical). The local coefficient of vertex v
// is the edge density among v's neighbors; the global (average) coefficient
// summarizes it. Exact triangle counting is O(Σ deg²) which is fine up to
// the full 52k topology thanks to merge-based neighbor intersection.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/rng.hpp"

namespace bsr::graph {

/// Local clustering coefficient of every vertex (0 for degree < 2).
[[nodiscard]] std::vector<double> local_clustering(const CsrGraph& g);

/// Average of the local coefficients (Watts-Strogatz definition).
[[nodiscard]] double average_clustering(const CsrGraph& g);

/// Sampled estimate over `samples` random vertices — for very large or very
/// dense graphs. Exact when samples >= |V|.
[[nodiscard]] double average_clustering_sampled(const CsrGraph& g, Rng& rng,
                                                std::size_t samples);

/// Total number of triangles in the graph (each counted once).
[[nodiscard]] std::uint64_t triangle_count(const CsrGraph& g);

}  // namespace bsr::graph
