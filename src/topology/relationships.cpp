#include "topology/relationships.hpp"

#include "graph/bfs.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace bsr::topology {

using bsr::graph::CsrGraph;
using bsr::graph::Edge;
using bsr::graph::kUnreachable;
using bsr::graph::NodeId;

EdgeRelations::EdgeRelations(const CsrGraph& g, std::span<const Edge> edges,
                             std::span<const EdgeRel> rels) {
  if (edges.size() != rels.size()) {
    throw std::invalid_argument("EdgeRelations: edges/rels size mismatch");
  }
  if (edges.size() != g.num_edges()) {
    throw std::invalid_argument("EdgeRelations: edge count does not match graph");
  }
  const NodeId n = g.num_vertices();
  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) offsets_[v + 1] = offsets_[v] + g.degree(v);
  adjacency_.reserve(offsets_.back());
  for (NodeId v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    adjacency_.insert(adjacency_.end(), nbrs.begin(), nbrs.end());
  }
  rel_by_slot_.assign(offsets_.back(), EdgeRel::kPeer);

  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    if (e.u >= e.v) throw std::invalid_argument("EdgeRelations: edges must be canonical");
    if (!g.has_edge(e.u, e.v)) {
      throw std::invalid_argument("EdgeRelations: edge not present in graph");
    }
    rel_by_slot_[slot(e.u, e.v)] = rels[i];
    rel_by_slot_[slot(e.v, e.u)] = rels[i];
  }
}

std::size_t EdgeRelations::slot(NodeId u, NodeId v) const {
  const auto begin = adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[u]);
  const auto end = adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[u + 1]);
  const auto it = std::lower_bound(begin, end, v);
  assert(it != end && *it == v);
  return static_cast<std::size_t>(it - adjacency_.begin());
}

EdgeRel EdgeRelations::rel_canonical(NodeId u, NodeId v) const {
  if (rel_by_slot_.empty()) throw std::logic_error("EdgeRelations: empty");
  if (u > v) std::swap(u, v);
  return rel_by_slot_[slot(u, v)];
}

bool EdgeRelations::is_provider_of(NodeId provider, NodeId customer) const {
  const EdgeRel rel = rel_canonical(provider, customer);
  if (rel == EdgeRel::kPeer) return false;
  const bool canonical_u_is_provider = (rel == EdgeRel::kUProviderOfV);
  const NodeId canonical_u = std::min(provider, customer);
  return canonical_u_is_provider == (provider == canonical_u);
}

bool EdgeRelations::is_peer(NodeId u, NodeId v) const {
  return rel_canonical(u, v) == EdgeRel::kPeer;
}

double EdgeRelations::peer_fraction() const {
  if (rel_by_slot_.empty()) return 0.0;
  std::size_t peers = 0;
  for (const EdgeRel rel : rel_by_slot_) {
    if (rel == EdgeRel::kPeer) ++peers;
  }
  return static_cast<double>(peers) / static_cast<double>(rel_by_slot_.size());
}

std::vector<std::uint32_t> valley_free_distances(
    const CsrGraph& g, const EdgeRelations& rels, NodeId source,
    const std::function<bool(NodeId, NodeId)>& edge_ok,
    const EdgeOverrideFn& override_edge) {
  assert(source < g.num_vertices());
  // State-expanded BFS. Phases of a valley-free walk:
  //   0 = still climbing (only c2p hops so far)
  //   1 = crossed the single allowed peer hop
  //   2 = descending (one or more p2c hops taken)
  // Allowed transitions from phase p over edge u->v:
  //   c2p (v is u's provider): only from phase 0, stay 0
  //   peer:                    from phase 0, go to 1
  //   p2c (v is u's customer): from any phase, go to 2
  //   override edge:           from any phase, keep phase
  constexpr int kPhases = 3;
  const NodeId n = g.num_vertices();
  std::vector<std::uint32_t> dist_state(static_cast<std::size_t>(n) * kPhases,
                                        kUnreachable);
  std::vector<std::uint32_t> dist(n, kUnreachable);
  std::vector<std::uint64_t> queue;  // encoded state: v * kPhases + phase
  queue.reserve(n);

  const auto push = [&](NodeId v, int phase, std::uint32_t d) {
    const std::size_t idx = static_cast<std::size_t>(v) * kPhases + phase;
    if (dist_state[idx] != kUnreachable) return;
    dist_state[idx] = d;
    dist[v] = std::min(dist[v], d);
    queue.push_back(idx);
  };

  push(source, 0, 0);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint64_t state = queue[head];
    const auto u = static_cast<NodeId>(state / kPhases);
    const int phase = static_cast<int>(state % kPhases);
    const std::uint32_t du = dist_state[state];
    const auto nbrs = g.neighbors(u);
    const auto rel_row = rels.canonical_rels_of(u);  // slot-aligned: O(1)/edge
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      if (edge_ok && !edge_ok(u, v)) continue;
      if (override_edge && override_edge(u, v)) {
        push(v, phase, du + 1);
        continue;
      }
      const EdgeRel rel = rel_row[i];
      if (rel == EdgeRel::kPeer) {
        if (phase == 0) push(v, 1, du + 1);
      } else if (EdgeRelations::rel_means_v_provides_u(rel, u, v)) {
        if (phase == 0) push(v, 0, du + 1);
      } else {
        push(v, 2, du + 1);  // p2c hop allowed from any phase
      }
    }
  }
  return dist;
}

std::vector<NodeId> valley_free_path(const CsrGraph& g, const EdgeRelations& rels,
                                     NodeId src, NodeId dst) {
  if (src >= g.num_vertices() || dst >= g.num_vertices()) return {};
  if (src == dst) return {src};

  constexpr int kPhases = 3;
  const std::size_t states = static_cast<std::size_t>(g.num_vertices()) * kPhases;
  constexpr std::uint64_t kNoParent = ~0ull;
  std::vector<std::uint64_t> parent(states, kNoParent);
  std::vector<std::uint64_t> queue;

  const auto push = [&](NodeId v, int phase, std::uint64_t from_state) {
    const std::size_t idx = static_cast<std::size_t>(v) * kPhases + phase;
    if (parent[idx] != kNoParent) return;
    parent[idx] = from_state;
    queue.push_back(idx);
  };

  const std::size_t start = static_cast<std::size_t>(src) * kPhases;
  parent[start] = start;  // self-parent marks the root
  queue.push_back(start);
  std::size_t goal_state = kNoParent;
  for (std::size_t head = 0; head < queue.size() && goal_state == kNoParent; ++head) {
    const std::uint64_t state = queue[head];
    const auto u = static_cast<NodeId>(state / kPhases);
    const int phase = static_cast<int>(state % kPhases);
    const auto nbrs = g.neighbors(u);
    const auto rel_row = rels.canonical_rels_of(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      const EdgeRel rel = rel_row[i];
      if (rel == EdgeRel::kPeer) {
        if (phase == 0) push(v, 1, state);
      } else if (EdgeRelations::rel_means_v_provides_u(rel, u, v)) {
        if (phase == 0) push(v, 0, state);
      } else {
        push(v, 2, state);
      }
      if (v == dst) {
        // First time dst enters the queue is a shortest admissible path.
        for (int p = 0; p < kPhases; ++p) {
          const std::size_t idx = static_cast<std::size_t>(dst) * kPhases + p;
          if (parent[idx] != kNoParent) {
            goal_state = idx;
            break;
          }
        }
        if (goal_state != kNoParent) break;
      }
    }
  }
  if (goal_state == kNoParent) return {};

  std::vector<NodeId> path;
  std::uint64_t state = goal_state;
  while (true) {
    path.push_back(static_cast<NodeId>(state / kPhases));
    const std::uint64_t up = parent[state];
    if (up == state) break;  // root
    state = up;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<EdgeRel> infer_relationships_by_degree(const CsrGraph& g,
                                                   std::span<const Edge> edges,
                                                   double peer_ratio) {
  if (peer_ratio < 1.0) {
    throw std::invalid_argument("infer_relationships_by_degree: ratio must be >= 1");
  }
  std::vector<EdgeRel> out;
  out.reserve(edges.size());
  for (const Edge& e : edges) {
    const double du = g.degree(e.u);
    const double dv = g.degree(e.v);
    if (du >= dv * peer_ratio) {
      out.push_back(EdgeRel::kUProviderOfV);
    } else if (dv >= du * peer_ratio) {
      out.push_back(EdgeRel::kVProviderOfU);
    } else {
      out.push_back(EdgeRel::kPeer);
    }
  }
  return out;
}

}  // namespace bsr::topology
