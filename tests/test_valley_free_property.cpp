// Property test: the state-expanded valley-free BFS agrees with brute-force
// path enumeration on small random graphs with random relationship labels.
#include <gtest/gtest.h>

#include <vector>

#include "graph/bfs.hpp"
#include "test_util.hpp"
#include "topology/relationships.hpp"

namespace bsr::topology {
namespace {

using bsr::graph::CsrGraph;
using bsr::graph::Edge;
using bsr::graph::kUnreachable;
using bsr::graph::NodeId;
using bsr::graph::Rng;

struct LabeledGraph {
  CsrGraph graph;
  EdgeRelations rels;
};

LabeledGraph make_labeled(std::uint64_t seed) {
  const CsrGraph g = bsr::test::make_connected_random(10, 0.25, seed);
  const auto edges = g.edges();
  Rng rng(seed * 31 + 7);
  std::vector<EdgeRel> labels;
  labels.reserve(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto roll = rng.uniform(3);
    labels.push_back(static_cast<EdgeRel>(roll));
  }
  return {g, EdgeRelations(g, edges, labels)};
}

/// Brute force: DFS over *simple* paths tracking the valley-free phase.
/// Phase: 0 = climbing, 1 = peer hop used, 2 = descending.
void enumerate(const LabeledGraph& lg, NodeId u, int phase,
               std::vector<bool>& on_path, std::vector<bool>& reachable) {
  reachable[u] = true;
  for (const NodeId v : lg.graph.neighbors(u)) {
    if (on_path[v]) continue;
    const bool v_provides_u = lg.rels.is_provider_of(v, u);
    const bool peer = lg.rels.is_peer(u, v);
    int next_phase = -1;
    if (peer) {
      if (phase == 0) next_phase = 1;
    } else if (v_provides_u) {
      if (phase == 0) next_phase = 0;
    } else {
      next_phase = 2;  // p2c from any phase
    }
    if (next_phase < 0) continue;
    on_path[v] = true;
    enumerate(lg, v, next_phase, on_path, reachable);
    on_path[v] = false;
  }
}

class ValleyFreePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ValleyFreePropertyTest, BfsMatchesBruteForceReachability) {
  const LabeledGraph lg = make_labeled(GetParam());
  const NodeId n = lg.graph.num_vertices();
  for (NodeId src = 0; src < n; ++src) {
    std::vector<bool> reachable(n, false), on_path(n, false);
    on_path[src] = true;
    enumerate(lg, src, 0, on_path, reachable);

    const auto dist = valley_free_distances(lg.graph, lg.rels, src);
    for (NodeId v = 0; v < n; ++v) {
      // The BFS explores walks, not simple paths — any vertex reachable by
      // a valley-free walk is reachable by a valley-free simple path
      // (dropping a cycle never invalidates the phase sequence), so the
      // reachable sets must agree exactly.
      EXPECT_EQ(dist[v] != kUnreachable, reachable[v])
          << "seed " << GetParam() << " src " << src << " dst " << v;
    }
  }
}

TEST_P(ValleyFreePropertyTest, PolicyNeverBeatsFreeRouting) {
  const LabeledGraph lg = make_labeled(GetParam() + 100);
  bsr::graph::BfsRunner runner(lg.graph.num_vertices());
  for (NodeId src = 0; src < lg.graph.num_vertices(); src += 3) {
    const auto free_dist = runner.run(lg.graph, src);
    std::vector<std::uint32_t> free_copy(free_dist.begin(), free_dist.end());
    const auto policy = valley_free_distances(lg.graph, lg.rels, src);
    for (NodeId v = 0; v < lg.graph.num_vertices(); ++v) {
      if (policy[v] == kUnreachable) continue;
      EXPECT_GE(policy[v], free_copy[v]) << "policy found a shorter path?!";
    }
  }
}

TEST_P(ValleyFreePropertyTest, FullOverrideEqualsFreeRouting) {
  const LabeledGraph lg = make_labeled(GetParam() + 200);
  bsr::graph::BfsRunner runner(lg.graph.num_vertices());
  const auto everything = [](NodeId, NodeId) { return true; };
  for (NodeId src = 0; src < lg.graph.num_vertices(); src += 4) {
    const auto free_dist = runner.run(lg.graph, src);
    std::vector<std::uint32_t> free_copy(free_dist.begin(), free_dist.end());
    const auto overridden =
        valley_free_distances(lg.graph, lg.rels, src, {}, everything);
    for (NodeId v = 0; v < lg.graph.num_vertices(); ++v) {
      EXPECT_EQ(overridden[v], free_copy[v]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValleyFreePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace bsr::topology
