#include "graph/sampling.hpp"

#include <numeric>
#include <stdexcept>
#include <utility>

namespace bsr::graph {

std::vector<NodeId> sample_distinct(Rng& rng, NodeId n, NodeId k) {
  if (k > n) throw std::invalid_argument("sample_distinct: k > n");
  std::vector<NodeId> pool(n);
  std::iota(pool.begin(), pool.end(), NodeId{0});
  for (NodeId i = 0; i < k; ++i) {
    const auto j = static_cast<NodeId>(i + rng.uniform(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

std::vector<NodeId> sample_from(Rng& rng, std::span<const NodeId> pool, std::size_t k) {
  if (k > pool.size()) throw std::invalid_argument("sample_from: k > |pool|");
  std::vector<NodeId> copy(pool.begin(), pool.end());
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + rng.uniform(copy.size() - i);
    std::swap(copy[i], copy[j]);
  }
  copy.resize(k);
  return copy;
}

void shuffle(Rng& rng, std::vector<NodeId>& values) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::size_t j = rng.uniform(i);
    std::swap(values[i - 1], values[j]);
  }
}

std::vector<std::pair<NodeId, NodeId>> sample_pairs(Rng& rng, NodeId n,
                                                    std::size_t count) {
  if (n < 2) throw std::invalid_argument("sample_pairs: need at least 2 vertices");
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto u = static_cast<NodeId>(rng.uniform(n));
    auto v = static_cast<NodeId>(rng.uniform(n - 1));
    if (v >= u) ++v;
    pairs.emplace_back(u, v);
  }
  return pairs;
}

}  // namespace bsr::graph
