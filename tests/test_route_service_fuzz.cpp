// RouteService fuzz harness: random churn deltas, injected rebuild/patch
// crashes and query batches interleaved over many seeds, asserting the two
// load-bearing invariants from the outside:
//   1. every kFresh answer agrees with a from-scratch reference oracle, and
//   2. every epoch transition is journaled exactly once (one epoch_publish
//      per published epoch id, and the journal mirrors the in-memory
//      transition log kind for kind).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <queue>
#include <vector>

#include "broker/broker_set.hpp"
#include "graph/fault_plane.hpp"
#include "graph/rng.hpp"
#include "obs/episode.hpp"
#include "obs/journal.hpp"
#include "sim/route_service.hpp"
#include "test_util.hpp"

namespace {

using bsr::broker::BrokerSet;
using bsr::graph::CsrGraph;
using bsr::graph::FaultPlane;
using bsr::graph::NodeId;
using bsr::sim::AnswerStatus;
using bsr::sim::EpochEventKind;
using bsr::sim::RebuildInjection;
using bsr::sim::RouteAnswer;
using bsr::sim::RouteService;
using bsr::sim::RouteServiceConfig;

bool truth_reachable(const CsrGraph& g, const BrokerSet& brokers,
                     const FaultPlane& faults, NodeId src, NodeId dst) {
  if (!faults.vertex_ok(src) || !faults.vertex_ok(dst)) return false;
  if (src == dst) return true;
  const auto usable = [&](NodeId v) {
    return brokers.contains(v) && faults.vertex_ok(v);
  };
  std::vector<bool> seen(g.num_vertices(), false);
  std::queue<NodeId> frontier;
  seen[src] = true;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId v : g.neighbors(u)) {
      if (seen[v] || !faults.vertex_ok(v)) continue;
      if (!usable(u) && !usable(v)) continue;
      if (!faults.edge_ok(u, v)) continue;
      if (v == dst) return true;
      seen[v] = true;
      frontier.push(v);
    }
  }
  return false;
}

bsr::obs::Event journal_event_for(EpochEventKind kind) {
  switch (kind) {
    case EpochEventKind::kPublish: return bsr::obs::Event::kRouteServiceEpochPublish;
    case EpochEventKind::kPatch: return bsr::obs::Event::kRouteServicePatch;
    case EpochEventKind::kDegrade: return bsr::obs::Event::kRouteServiceDegrade;
    case EpochEventKind::kRebuildStart:
      return bsr::obs::Event::kRouteServiceRebuildStart;
    case EpochEventKind::kRebuildCrash:
      return bsr::obs::Event::kRouteServiceRebuildCrash;
    case EpochEventKind::kRebuildDiscard:
      return bsr::obs::Event::kRouteServiceRebuildDiscard;
    case EpochEventKind::kRebuildGiveUp:
      return bsr::obs::Event::kRouteServiceRebuildGiveUp;
  }
  return bsr::obs::Event::kRouteServiceEpochPublish;
}

TEST(RouteServiceFuzz, FreshAnswersMatchOracleAndTransitionsJournalOnce) {
  if (!BSR_STATS_ENABLED) GTEST_SKIP() << "built with BSR_STATS=OFF";

  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const CsrGraph g = bsr::test::make_connected_random(60, 0.06, 1000 + seed);
    // Every other vertex is a broker so churn regularly cuts the overlay.
    std::vector<NodeId> members;
    for (NodeId v = 0; v < g.num_vertices(); v += 2) members.push_back(v);
    const BrokerSet brokers(g.num_vertices(), members);
    FaultPlane faults(g);

    // Collect the edge list once for random link churn.
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (NodeId u = 0; u < g.num_vertices(); ++u) {
      for (const NodeId v : g.neighbors(u)) {
        if (u < v) edges.emplace_back(u, v);
      }
    }

    RouteServiceConfig config;
    config.max_stale_events = 8;
    config.rebuild.build_time = 1.0;
    config.rebuild.retry_backoff = 0.25;
    RebuildInjection injection;
    injection.crash_prob = 0.3;  // roughly one in three builds/patches dies
    injection.seed = seed;

    bsr::obs::start_recording();
    RouteService service(g, brokers, &faults, config, injection);

    bsr::graph::Rng rng(seed * 7919);
    double now = 0.0;
    std::size_t fresh_checked = 0;
    for (int step = 0; step < 400; ++step) {
      now += 0.125 * static_cast<double>(1 + rng.uniform(8));
      service.advance(now);
      switch (rng.uniform(6)) {
        case 0: {  // link churn
          const auto& [u, v] = edges[rng.uniform(edges.size())];
          if (faults.edge_ok(u, v)) {
            faults.fail_edge(u, v);
            service.on_fault(now);
          } else {
            faults.heal_edge(u, v);
            service.on_heal(now);
          }
          break;
        }
        case 1: {  // vertex churn
          const NodeId v = static_cast<NodeId>(rng.uniform(g.num_vertices()));
          if (faults.vertex_ok(v)) {
            faults.fail_vertex(v);
            service.on_fault(now);
          } else {
            faults.heal_vertex(v);
            service.on_heal(now);
          }
          break;
        }
        default: {  // queries
          for (int q = 0; q < 8; ++q) {
            const NodeId s = static_cast<NodeId>(rng.uniform(g.num_vertices()));
            const NodeId t = static_cast<NodeId>(rng.uniform(g.num_vertices()));
            const RouteAnswer a = service.query(s, t, now);
            if (a.status == AnswerStatus::kFresh) {
              ASSERT_EQ(a.reachable, truth_reachable(g, brokers, faults, s, t))
                  << "seed " << seed << " step " << step << " pair " << s
                  << "->" << t << " epoch " << a.epoch;
              ++fresh_checked;
            }
          }
          break;
        }
      }
    }
    bsr::obs::stop_recording();
    EXPECT_GT(fresh_checked, 0u) << "seed " << seed;

    // Staleness accounting: nothing was ever served beyond the bound.
    EXPECT_LE(service.stats().max_stale_served, config.max_stale_events);

    // Journal vs in-memory transition log: same multiset of events...
    const bsr::obs::Journal journal = bsr::obs::snapshot_journal();
    ASSERT_EQ(journal.dropped, 0u);
    std::map<bsr::obs::Event, std::size_t> journaled;
    std::map<std::uint64_t, std::size_t> publishes_per_epoch;
    for (const auto& record : journal.events) {
      // The fault plane journals its own graph.fault.* records, and every
      // serve round appends batch/batch-cost telemetry; only the service's
      // lifecycle transitions are under test here.
      if (bsr::obs::name(record.type).substr(0, 18) != "sim.route_service.") {
        continue;
      }
      if (record.type == bsr::obs::Event::kRouteServiceBatch ||
          record.type == bsr::obs::Event::kRouteServiceBatchCost) {
        continue;
      }
      journaled[record.type] += 1;
      if (record.type == bsr::obs::Event::kRouteServiceEpochPublish) {
        publishes_per_epoch[record.subject] += 1;
      }
    }
    std::map<bsr::obs::Event, std::size_t> expected;
    for (const auto& transition : service.transitions()) {
      expected[journal_event_for(transition.kind)] += 1;
    }
    EXPECT_EQ(journaled, expected) << "seed " << seed;

    // ...and exactly one publish per epoch id 1..epoch_id, no gaps.
    EXPECT_EQ(publishes_per_epoch.size(), service.epoch_id()) << "seed " << seed;
    for (std::uint64_t e = 1; e <= service.epoch_id(); ++e) {
      EXPECT_EQ(publishes_per_epoch[e], 1u) << "seed " << seed << " epoch " << e;
    }
    EXPECT_EQ(service.stats().epochs_published, service.epoch_id());

    // The injection actually fired across the sweep's crash coin.
    if (seed == 12) {
      EXPECT_GT(service.stats().rebuild_crashes +
                    service.stats().patch_crashes,
                0u);
    }

    // Episode-lifecycle well-formedness: every rebuild-attempt correlation
    // id is opened exactly once, its events are time-monotone, and it sees
    // at most one terminal (crash / discard / publish) — with only the
    // attempt still in flight at journal end allowed to lack one. A give-up
    // may follow a failed attempt's terminal but never precede its start.
    struct AttemptLife {
      std::size_t starts = 0;
      std::size_t terminals = 0;
      double last_time = -1.0;
    };
    std::map<std::uint64_t, AttemptLife> attempt_life;
    std::size_t degrades = 0;
    std::size_t rebuild_starts = 0;
    double prev_time = 0.0;
    for (const auto& record : journal.events) {
      ASSERT_GE(record.time, prev_time) << "seed " << seed;
      prev_time = record.time;
      const bool is_terminal =
          record.type == bsr::obs::Event::kRouteServiceRebuildCrash ||
          record.type == bsr::obs::Event::kRouteServiceRebuildDiscard ||
          (record.type == bsr::obs::Event::kRouteServiceEpochPublish &&
           record.correlation != 0);
      if (record.type == bsr::obs::Event::kRouteServiceDegrade) {
        ++degrades;
      } else if (record.type == bsr::obs::Event::kRouteServiceRebuildStart) {
        ++rebuild_starts;
        ASSERT_NE(record.correlation, 0u) << "seed " << seed;
        AttemptLife& life = attempt_life[record.correlation];
        EXPECT_EQ(life.starts, 0u)
            << "seed " << seed << ": attempt " << record.correlation
            << " opened twice";
        ++life.starts;
        life.last_time = record.time;
      } else if (is_terminal) {
        AttemptLife& life = attempt_life[record.correlation];
        EXPECT_EQ(life.starts, 1u)
            << "seed " << seed << ": terminal before start for attempt "
            << record.correlation;
        EXPECT_EQ(life.terminals, 0u)
            << "seed " << seed << ": two terminals for attempt "
            << record.correlation;
        EXPECT_GE(record.time, life.last_time) << "seed " << seed;
        ++life.terminals;
        life.last_time = record.time;
      } else if (record.type == bsr::obs::Event::kRouteServiceRebuildGiveUp &&
                 record.correlation != 0) {
        const auto it = attempt_life.find(record.correlation);
        ASSERT_NE(it, attempt_life.end())
            << "seed " << seed << ": give-up for unknown attempt "
            << record.correlation;
        EXPECT_EQ(it->second.starts, 1u) << "seed " << seed;
      }
    }
    std::size_t unterminated = 0;
    for (const auto& [attempt, life] : attempt_life) {
      if (life.terminals == 0) ++unterminated;
    }
    EXPECT_LE(unterminated, 1u)
        << "seed " << seed << ": more than the in-flight build lacks a terminal";

    // The reconstructor agrees: a drop-free journal from the real producers
    // stitches with zero malformed lifecycles, every episode's phase
    // decomposition sums bit-exactly to its span, its slices partition
    // [open, close] with no gaps, and the aggregate attempt/degrade tallies
    // round-trip through the report.
    const bsr::obs::EpisodeReport report =
        bsr::obs::episodes_from_journal(journal);
    EXPECT_EQ(report.journal_dropped, 0u);
    EXPECT_EQ(report.malformed, 0u) << "seed " << seed;
    std::size_t serve_episodes = 0;
    std::uint64_t attempts_total = 0;
    for (const auto& ep : report.episodes) {
      EXPECT_EQ(ep.phase_total(), ep.span())
          << "seed " << seed << " episode " << ep.id;
      if (ep.slices.empty()) {
        // Zero-length slices are omitted, so only a zero-span episode (one
        // opened by the journal's final record) may have none.
        EXPECT_EQ(ep.span(), 0.0) << "seed " << seed << " episode " << ep.id;
      } else {
        EXPECT_EQ(ep.slices.front().begin, ep.open_time) << "seed " << seed;
        EXPECT_EQ(ep.slices.back().end, ep.close_time) << "seed " << seed;
        for (std::size_t s = 1; s < ep.slices.size(); ++s) {
          EXPECT_EQ(ep.slices[s].begin, ep.slices[s - 1].end)
              << "seed " << seed << " episode " << ep.id << " slice " << s;
        }
      }
      EXPECT_FALSE(ep.truncated) << "seed " << seed;
      if (ep.kind == bsr::obs::EpisodeKind::kServe) {
        ++serve_episodes;
        attempts_total += ep.attempts;
      }
    }
    EXPECT_EQ(serve_episodes, degrades) << "seed " << seed;
    EXPECT_EQ(attempts_total, rebuild_starts) << "seed " << seed;
  }
}

}  // namespace
