// Degree assortativity — the Internet's "rich club talks to the poor"
// signature.
//
// The AS graph is famously disassortative (Pearson correlation of endpoint
// degrees ≈ -0.2): hubs attach to low-degree customers, not to each other.
// ER is neutral (~0) and social-style graphs are positive. This is a
// one-number check that the synthetic topology reproduces the real
// Internet's mixing pattern, complementing the degree and clustering
// fingerprints (Fig. 1).
#pragma once

#include "graph/csr_graph.hpp"

namespace bsr::graph {

/// Newman's degree assortativity coefficient r ∈ [-1, 1].
/// Returns 0 for graphs with < 2 edges or zero degree variance.
[[nodiscard]] double degree_assortativity(const CsrGraph& g);

}  // namespace bsr::graph
