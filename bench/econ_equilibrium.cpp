// Reproduces §7 (Fig. 6) — the economic model: Nash bargaining, the
// Stackelberg game, Shapley revenue sharing, and the coalition-growth
// stopping signal.
//
// Paper claims to reproduce:
//   * a Nash bargaining solution exists for the broker-employee price
//     (Theorem 5) — we print the price curve;
//   * a Stackelberg equilibrium exists (Theorem 6) and including high-tier
//     ISPs in B makes lower-tier ISPs more willing to adopt (§7.1's closing
//     observation) — we compare two coalition compositions;
//   * Shapley-value revenue sharing is individually rational under
//     superadditivity (Theorem 7), and supermodularity decays as the
//     coalition grows — the signal to stop adding members (§7.2).
#include <iostream>

#include "bench_common.hpp"
#include "broker/dominated.hpp"
#include "broker/greedy_mcb.hpp"
#include "econ/bargaining.hpp"
#include "econ/coalition.hpp"
#include "econ/shapley.hpp"
#include "econ/stackelberg.hpp"
#include "graph/degree_stats.hpp"

namespace {

std::vector<bsr::econ::CustomerParams> make_customers(std::size_t count,
                                                      double provider_broker_frac,
                                                      bsr::graph::Rng& rng) {
  // a_hat rises with the share of a customer's providers inside B: offloading
  // paid transit onto the coalition keeps paying off for longer.
  std::vector<bsr::econ::CustomerParams> customers;
  customers.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    bsr::econ::CustomerParams p;
    p.v_scale = 0.8 + 0.4 * rng.uniform01();
    p.v_curvature = 4.0;
    p.a0 = 0.05 + 0.1 * rng.uniform01();
    p.a_hat = std::min(0.95, 0.3 + 0.6 * provider_broker_frac);
    p.p_peak = 0.25;
    customers.push_back(p);
  }
  return customers;
}

}  // namespace

int main() {
  auto ctx = bsr::bench::make_context("Economic model (§7): bargaining, game, Shapley");

  // --- Nash bargaining price curve (Theorem 5). ---------------------------
  bsr::io::Table bargain({"p_B (broker price)", "feasible", "p_j (employee)",
                          "u_employee", "u_B"});
  for (const double p_b : {0.05, 0.2, 0.5, 1.0, 2.0}) {
    bsr::econ::BargainingConfig config;
    config.broker_price = p_b;
    config.transit_cost = 0.05;
    config.beta = 4;
    const auto s = bsr::econ::solve_bargaining(config);
    bargain.row()
        .cell(p_b, 2)
        .cell(s.feasible ? "yes" : "no")
        .cell(s.price, 3)
        .cell(s.u_employee, 3)
        .cell(s.u_broker, 3);
  }
  bsr::io::print_banner(std::cout, "Nash bargaining (broker <-> employee AS)");
  bargain.print(std::cout);

  // --- Stackelberg equilibrium, two coalition compositions. ---------------
  bsr::graph::Rng rng(ctx.env.seed + 8);
  bsr::io::print_banner(std::cout, "Stackelberg game (broker price vs adoption)");
  bsr::io::Table game({"coalition composition", "p_B*", "mean a_i*",
                       "full adopters", "u_B*"});
  for (const auto& [label, frac] :
       {std::pair{"low-tier only (10% providers in B)", 0.1},
        std::pair{"with high-tier ISPs (70% providers in B)", 0.7}}) {
    bsr::econ::StackelbergConfig config;
    bsr::graph::Rng customer_rng(ctx.env.seed + 9);  // same draw both rows
    config.customers = make_customers(200, frac, customer_rng);
    const auto eq = bsr::econ::solve_stackelberg(config);
    game.row()
        .cell(label)
        .cell(eq.price, 3)
        .cell(eq.mean_adoption, 3)
        .cell(static_cast<std::uint64_t>(eq.full_adopters))
        .cell(eq.broker_utility, 2);
  }
  game.print(std::cout);
  std::cout << "(paper: including high-tier ISPs in B raises lower-tier "
               "adoption a_i)\n";

  // --- Shapley revenue split among the top brokers. -----------------------
  const auto& g = ctx.topo.graph;
  const auto greedy = bsr::broker::greedy_mcb(g, 10);
  const auto members = greedy.brokers.members();
  const std::vector<bsr::graph::NodeId> players(members.begin(),
                                                members.begin() + std::min<std::size_t>(
                                                                      members.size(), 10));
  bsr::econ::CoalitionParams params;
  params.revenue_per_connectivity = 100.0;
  params.operating_cost = 0.01;
  const bsr::econ::CoalitionGame coalition(g, players, params);

  bsr::bench::Stopwatch sw;
  const auto phi = bsr::econ::shapley_exact(players.size(), coalition.characteristic());
  bsr::io::print_banner(std::cout, "Shapley revenue split (top greedy brokers)");
  bsr::io::Table shapley({"player (vertex)", "type", "degree", "Shapley value",
                          "U({j}) alone"});
  for (std::size_t j = 0; j < players.size(); ++j) {
    shapley.row()
        .cell(std::uint64_t{players[j]})
        .cell(std::string(bsr::topology::to_string(ctx.topo.meta[players[j]].type)))
        .cell(std::uint64_t{g.degree(players[j])})
        .cell(phi[j], 3)
        .cell(coalition.value(1ull << j), 3);
  }
  shapley.print(std::cout);
  std::cout << "exact Shapley over 2^" << players.size() << " coalitions in "
            << bsr::io::format_double(sw.seconds(), 1) << "s\n";

  double sum = 0;
  for (const double p : phi) sum += p;
  std::cout << "efficiency check: sum(phi) = " << bsr::io::format_double(sum, 3)
            << " vs U(grand) = "
            << bsr::io::format_double(coalition.value((1ull << players.size()) - 1), 3)
            << "\n";

  // --- Supermodularity decay: the coalition-growth stopping signal. -------
  bsr::io::print_banner(std::cout, "Supermodularity rate vs candidate pool size");
  // Early coalition members complement each other (network externality =>
  // supermodular); deeper pools add redundant hubs whose marginal value
  // shrinks in larger coalitions, killing supermodularity — the §7.2
  // stopping signal. Redundancy is strongest among the top-degree hubs,
  // whose neighborhoods overlap heavily, so the probe pools draw from the
  // DB (degree) ranking.
  const auto db_order = bsr::graph::vertices_by_degree_desc(g);
  bsr::io::Table supermod({"top-k degree hubs as players", "supermodularity rate",
                           "superadditivity rate"});
  for (const std::size_t pool : {2u, 4u, 8u, 12u, 16u}) {
    const std::vector<bsr::graph::NodeId> subset(db_order.begin(),
                                                 db_order.begin() + pool);
    const bsr::econ::CoalitionGame game_k(g, subset, params);
    bsr::graph::Rng probe_rng(ctx.env.seed + 10);
    const double smod = bsr::econ::supermodularity_rate(
        subset.size(), game_k.characteristic(), 300, probe_rng);
    const double sadd = bsr::econ::superadditivity_rate(
        subset.size(), game_k.characteristic(), 300, probe_rng);
    supermod.row()
        .cell(static_cast<std::uint64_t>(subset.size()))
        .percent(smod)
        .percent(sadd);
  }
  supermod.print(std::cout);
  std::cout << "(supermodularity stays near 100% while members complement "
               "each other — the network-externality regime; the first "
               "violations appear once redundant hubs enter the pool)\n";

  // --- Marginal contribution decay: §7.2's stopping signal, directly. -----
  // U(first k members) - U(first k-1): "new joiners have only marginal
  // contributions, so the supermodularity condition does not hold any more.
  // That's the time to stop increasing the set size."
  bsr::io::print_banner(std::cout, "Marginal contribution of the k-th joiner");
  const auto maxsg_like = bsr::broker::greedy_mcb(g, 64).brokers;
  bsr::io::Table marginal({"k (greedy join order)", "U(first k)", "marginal Δ_k"});
  double previous_value = 0.0;
  bsr::broker::BrokerSet coalition_prefix(g.num_vertices());
  for (std::size_t k = 1; k <= maxsg_like.size(); ++k) {
    coalition_prefix.add(maxsg_like.members()[k - 1]);
    const double connectivity =
        bsr::broker::saturated_connectivity(g, coalition_prefix);
    const double value = params.revenue_per_connectivity * connectivity -
                         params.operating_cost * static_cast<double>(k);
    if (k == 1 || k == 2 || k == 4 || k == 8 || k == 16 || k == 32 || k == 64) {
      marginal.row()
          .cell(static_cast<std::uint64_t>(k))
          .cell(value, 3)
          .cell(value - previous_value, 3);
    }
    previous_value = value;
  }
  marginal.print(std::cout);
  std::cout << "(paper §7.2: once the important ASes are in, each joiner "
               "adds only a sliver of revenue — the coalition should stop "
               "growing)\n";
  return 0;
}
