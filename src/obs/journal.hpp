// Simulation flight recorder: a bounded ring-buffer event journal.
//
// The counter registry (stats.hpp) answers "how much work happened"; it
// cannot answer "what happened, in what order, to whom". The journal fills
// that gap for the simulated control plane: every churn departure, link
// flap, probe outcome, detector transition, view publication, repair step
// and routing verdict is one fixed-size record — simulated time, event
// type, subject vertex/edge, and a correlation id that links a
// probe -> suspect -> quarantine -> repair chain end to end. Record cheap,
// analyze offline: the ring costs a bounds-checked store per event while
// recording, and exporters (export.hpp) turn a drained journal into a
// versioned JSONL stream, a per-round counter time series, or a Chrome
// trace_event file that loads in Perfetto.
//
// Design rules, mirroring stats.hpp:
//   1. OFF builds cost nothing. Every BSR_EVENT / BSR_EVENT_NOW /
//      BSR_EVENT_TIME site compiles to an empty statement under
//      BSR_STATS=OFF; hot libraries reference zero obs symbols.
//   2. Recording is a runtime switch on top of the compile gate. With
//      recording off a site costs one predictable-branch bool load; nothing
//      allocates.
//   3. Output is deterministic at any BSR_THREADS. Events are only ever
//      recorded from the (single-threaded) simulation event loops — engine
//      worker shards never emit events — and exporters order records by the
//      deterministic key (simulated time, event slot, subject id), so a
//      fixed seed produces a byte-identical journal at any thread count.
//
// The event-type table is a fixed-slot X-macro like the counter tables: to
// add an event, append one X(EnumId, "layer.component.event") line and the
// enum and name table stay in sync by construction.
//
// When a BSR_DCHECK fires while recording is on, the journal dumps its most
// recent events to stderr before aborting — the flight recorder's black-box
// role (see start_recording / graph/check.hpp's failure hook).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "obs/stats.hpp"

namespace bsr::obs {

/// Version tag of the exported JSONL event schema (the first line of every
/// journal file names it). Bump on breaking changes to record layout or
/// event semantics.
inline constexpr std::string_view kEventSchema = "bsr-events/1";

// --- fixed-slot event-type table --------------------------------------------
// X(EnumId, "layer.component.event")
// Subject conventions: broker/vertex events carry the vertex id; link-group
// events carry the group's center vertex; view events carry the view
// version; router verdicts pack (src << 32) | dst. Correlation conventions:
// sim.health.* / sim.repair.* carry the failure-episode id
// (HealthTransition::episode; 0 = none); graph.fault.* carry the count of
// edges that actually transitioned; selection.robust.pick carries the
// worst-case surviving pair count after the pick; selection.robust.exposed
// carries the number of connected pairs the departure severed (absorbed
// departures severed none, so their correlation is 0);
// sim.route_service.* carry the serving epoch id as subject — rebuild
// lifecycle events (rebuild_start/crash/discard/give_up and the
// epoch_publish that ends a successful attempt) carry the rebuild-attempt
// id as correlation so one attempt chain links end to end, while
// degrade/patch carry the truth version that triggered them;
// sim.route_service.batch packs the answer-tag tallies of one serve_batch
// call — subject = (fresh << 32) | stale_served, correlation =
// (shedded << 32) | refused — and sim.route_service.batch_cost packs its
// deterministic tick costs — subject = (p99_ticks << 32) | max_ticks,
// correlation = stale events behind the truth at batch time (the SLO
// monitor's staleness signal); slo.monitor.breach / slo.monitor.recover
// carry the bitmask of breached objectives (bit i = objective i in
// slo.hpp's declaration order) as subject and the worst burn rate in
// percent (rounded) as correlation; everything else 0.
//
// These correlation chains are load-bearing: the episode reconstructor
// (episode.hpp) stitches sim.health.* / sim.repair.* records into health
// episodes by failure-episode id and degrade -> rebuild-attempt ->
// epoch_publish records into serve episodes, and expects every id to form a
// well-formed lifecycle — opened once, monotone timestamps, exactly one
// terminal (recover / publish / give-up) — which the producers enforce with
// BSR_DCHECKs and the route-service fuzz pins.

#define BSR_OBS_EVENT_TABLE(X)                            \
  X(ChurnDeparture, "sim.churn.departure")                \
  X(ChurnReturn, "sim.churn.return")                      \
  X(ChurnLinkOutage, "sim.churn.link_outage")             \
  X(ChurnLinkHeal, "sim.churn.link_heal")                 \
  X(ChurnRepair, "sim.churn.repair")                      \
  X(HealthProbeOk, "sim.health.probe_ok")                 \
  X(HealthProbeMiss, "sim.health.probe_miss")             \
  X(HealthSuspect, "sim.health.suspect")                  \
  X(HealthQuarantine, "sim.health.quarantine")            \
  X(HealthProbation, "sim.health.probation")              \
  X(HealthRecover, "sim.health.recover")                  \
  X(HealthViewPublish, "sim.health.view_publish")         \
  X(RepairRequest, "sim.repair.request")                  \
  X(RepairAttempt, "sim.repair.attempt")                  \
  X(RepairRecruit, "sim.repair.recruit")                  \
  X(RouteOk, "sim.router.ok")                             \
  X(RouteMisrouted, "sim.router.misrouted")               \
  X(RouteShunned, "sim.router.shunned")                   \
  X(RouteUnreachable, "sim.router.unreachable")           \
  X(FaultGroupFail, "graph.fault.group_fail")             \
  X(FaultGroupHeal, "graph.fault.group_heal")             \
  X(SelectionRobustPick, "selection.robust.pick")         \
  X(SelectionRobustAbsorbed, "selection.robust.absorbed") \
  X(SelectionRobustExposed, "selection.robust.exposed")   \
  X(RouteServiceDegrade, "sim.route_service.degrade")     \
  X(RouteServicePatch, "sim.route_service.patch")         \
  X(RouteServiceRebuildStart, "sim.route_service.rebuild_start") \
  X(RouteServiceRebuildCrash, "sim.route_service.rebuild_crash") \
  X(RouteServiceRebuildDiscard, "sim.route_service.rebuild_discard") \
  X(RouteServiceRebuildGiveUp, "sim.route_service.rebuild_give_up") \
  X(RouteServiceEpochPublish, "sim.route_service.epoch_publish") \
  X(RouteServiceBatch, "sim.route_service.batch")         \
  X(RouteServiceBatchCost, "sim.route_service.batch_cost") \
  X(SloBreach, "slo.monitor.breach")                      \
  X(SloRecover, "slo.monitor.recover")

enum class Event : std::uint16_t {
#define BSR_OBS_X(id, name) k##id,
  BSR_OBS_EVENT_TABLE(BSR_OBS_X)
#undef BSR_OBS_X
      kCount
};

inline constexpr std::size_t kNumEvents = static_cast<std::size_t>(Event::kCount);

[[nodiscard]] std::string_view name(Event e) noexcept;

/// One journal record. `seq` is the program-order sequence number on the
/// recording thread — the final, stable tie-break after the deterministic
/// (time, type, subject) export key.
struct EventRecord {
  double time = 0.0;
  Event type = Event::kChurnDeparture;
  std::uint64_t subject = 0;
  std::uint64_t correlation = 0;
  std::uint64_t seq = 0;
};

// --- recording ---------------------------------------------------------------

struct JournalOptions {
  /// Ring capacity in records; the oldest records are overwritten once the
  /// ring is full (`Journal::dropped` counts the overwrites).
  std::size_t capacity = std::size_t{1} << 16;
  /// Counter time-series round length in simulated time units; 0 disables
  /// the interval sampler (see timeseries.hpp).
  double series_interval = 1.0;
};

/// Turns the flight recorder on: resets the ring and the interval sampler,
/// snapshots the counter registry as the series baseline, and installs the
/// BSR_DCHECK failure hook that dumps the journal tail to stderr. Throws
/// std::invalid_argument on zero capacity or negative interval.
void start_recording(const JournalOptions& options = {});

/// Turns recording off, closes the trailing partial time-series round, and
/// uninstalls the BSR_DCHECK hook. Recorded data stays readable until the
/// next start_recording().
void stop_recording();

[[nodiscard]] bool recording_enabled() noexcept;

/// Advances the journal clock (and the interval sampler, monotonically).
/// Simulation event loops call this as they advance simulated time so that
/// sites without their own time operand (fault plane, router) stamp records
/// with the causally-current time.
void journal_set_time(double now) noexcept;
[[nodiscard]] double journal_time() noexcept;

/// Records one event at an explicit simulated time. No-op unless recording.
void journal_event(Event e, double time, std::uint64_t subject,
                   std::uint64_t correlation) noexcept;

/// Records one event at the current journal clock. No-op unless recording.
void journal_event_now(Event e, std::uint64_t subject,
                       std::uint64_t correlation) noexcept;

// --- reading the recorder back ----------------------------------------------

struct Journal {
  /// Surviving records in deterministic export order: ascending
  /// (time, event slot, subject id), program order as the final tie-break.
  std::vector<EventRecord> events;
  std::uint64_t recorded = 0;  // total records ever offered to the ring
  std::uint64_t dropped = 0;   // oldest records overwritten by the ring
};

/// Copies the current journal contents out in export order. Valid while
/// recording or after stop_recording().
[[nodiscard]] Journal snapshot_journal();

/// Writes the most recent `max_events` records (program order, oldest
/// first) as human-readable lines — the black-box dump used by the
/// BSR_DCHECK failure hook.
void dump_journal_tail(std::ostream& os, std::size_t max_events);

}  // namespace bsr::obs

// --- hot-path macros ---------------------------------------------------------
// BSR_EVENT(id, t, subject, corr)   — record at explicit simulated time.
// BSR_EVENT_NOW(id, subject, corr)  — record at the journal clock.
// BSR_EVENT_TIME(now)               — advance the journal clock / sampler.
// All compile to empty statements under BSR_STATS=OFF.

#if BSR_STATS_ENABLED
#define BSR_EVENT(id, t, subject, corr)                                     \
  ::bsr::obs::journal_event(::bsr::obs::Event::k##id,                       \
                            static_cast<double>(t),                         \
                            static_cast<std::uint64_t>(subject),            \
                            static_cast<std::uint64_t>(corr))
#define BSR_EVENT_NOW(id, subject, corr)                                    \
  ::bsr::obs::journal_event_now(::bsr::obs::Event::k##id,                   \
                                static_cast<std::uint64_t>(subject),        \
                                static_cast<std::uint64_t>(corr))
#define BSR_EVENT_TIME(now) ::bsr::obs::journal_set_time(static_cast<double>(now))
#else
#define BSR_EVENT(id, t, subject, corr) \
  do {                                  \
  } while (false)
#define BSR_EVENT_NOW(id, subject, corr) \
  do {                                   \
  } while (false)
#define BSR_EVENT_TIME(now) \
  do {                      \
  } while (false)
#endif
