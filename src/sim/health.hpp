// Probe-based broker failure detection and the health control plane.
//
// Every consumer of graph::FaultPlane so far has been an *oracle*: the
// router and the churn/repair loops read the exact failure state the
// instant it changes. A deployed brokerage only learns about dead brokers
// through heartbeat probes that themselves travel the (possibly damaged)
// dominated graph — an unreachable broker is indistinguishable from a dead
// one, and nothing is known until the next probe lands. This module models
// that detection layer:
//
//   * HealthMonitor runs periodic probe rounds from a vantage vertex over
//     the faulty dominated graph. Missed-probe counters drive a per-broker
//     state machine
//         kHealthy -> kSuspect -> kQuarantined -> kProbation -> kHealthy
//     with exponential-backoff re-probes for quarantined brokers
//     (deterministic jitter drawn from an explicit Rng, never wall clock)
//     and hysteresis: a broker that flaps out of probation re-enters
//     quarantine at a *deeper* backoff level, so oscillating brokers are
//     suppressed from the routable set instead of thrashing it.
//   * Versioned HealthView snapshots are published whenever any state
//     changes; consumers see a view only after a configurable propagation
//     delay, so routing decisions are made on *stale* truth. sim::Router
//     accepts a view and routes around suspected/quarantined brokers,
//     believing the view rather than the fault plane.
//   * RepairScheduler turns quarantine signals into budgeted recruitment
//     attempts with retry/backoff on failed recruitments; sim/churn wires
//     it into one event loop with departures, link flaps and detection.
//
// Everything here is deterministic: probe rounds land on a fixed grid,
// internal events are processed in (time, broker-index) order, and the only
// randomness is the jitter Rng the caller seeds. The same seed produces
// bit-identical HealthView sequences at any BSR_THREADS setting.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"
#include "graph/fault_plane.hpp"
#include "graph/rng.hpp"
#include "graph/workspace.hpp"

namespace bsr::sim {

/// Detector state of one broker. Transitions only ever move one step along
/// kHealthy -> kSuspect -> kQuarantined -> kProbation and back edges
/// kSuspect -> kHealthy (recovery before quarantine), kProbation ->
/// kQuarantined (flap) and kProbation -> kHealthy (sustained recovery).
/// In particular kHealthy never jumps straight to kQuarantined.
enum class HealthState : std::uint8_t {
  kHealthy,      // probes answered; fully routable
  kSuspect,      // missed probes accumulating; shunned but not yet condemned
  kQuarantined,  // condemned; re-probed only on exponential backoff
  kProbation,    // answered a re-probe; must sustain successes to return
};

[[nodiscard]] const char* to_string(HealthState state) noexcept;

struct HealthConfig {
  /// Heartbeat period: probe rounds land at t = interval, 2*interval, ...
  double probe_interval = 1.0;
  /// A published view becomes visible to consumers this much later.
  double propagation_delay = 0.5;
  /// Consecutive missed probes before kHealthy -> kSuspect.
  std::uint32_t suspect_after = 1;
  /// Consecutive missed probes (total, including the suspect ones) before
  /// kSuspect -> kQuarantined. Must be > suspect_after.
  std::uint32_t quarantine_after = 3;
  /// Consecutive successful probes needed for kProbation -> kHealthy (the
  /// hysteresis that keeps a flapping broker from re-entering the routable
  /// set on its first good probe).
  std::uint32_t probation_successes = 2;
  /// First re-probe of a quarantined broker happens this long after the
  /// quarantine; each subsequent miss (or probation flap) multiplies the
  /// delay by backoff_factor up to backoff_max.
  double reprobe_backoff = 2.0;
  double backoff_factor = 2.0;
  double backoff_max = 16.0;
  /// Re-probe delays are jittered by a factor uniform in
  /// [1 - jitter, 1 + jitter], drawn from the monitor's explicit Rng.
  double jitter = 0.1;
  /// Whether kProbation brokers count as routable in published views.
  bool route_probation = true;
};

/// Versioned snapshot of the detector's belief. `routable` is a per-vertex
/// bitmap over the whole graph: true iff the vertex is a broker the view
/// considers usable (kHealthy, plus kProbation if configured). Non-broker
/// vertices are always false — the bitmap plugs directly into the router's
/// dominated-edge filter.
struct HealthView {
  std::uint64_t version = 0;
  double published_at = 0.0;
  std::vector<HealthState> states;  // indexed like HealthMonitor members
  std::vector<bool> routable;       // indexed by vertex id

  [[nodiscard]] bool routable_broker(bsr::graph::NodeId v) const noexcept {
    return v < routable.size() && routable[v];
  }
};

/// One state-machine transition, for invariant checking and debugging.
/// `episode` is the failure-episode id: allocated when a broker leaves
/// kHealthy, carried through quarantine/probation/recovery (and into repair
/// scheduling), so one suspicion chain correlates end to end — it is the
/// `corr` field of the flight recorder's sim.health.* / sim.repair.* events.
/// Zero means "no episode" (a broker that has never been suspected).
struct HealthTransition {
  double time = 0.0;
  bsr::graph::NodeId broker = 0;
  HealthState from = HealthState::kHealthy;
  HealthState to = HealthState::kHealthy;
  std::uint64_t episode = 0;
};

/// Deterministic probe-based failure detector over a fault plane.
///
/// The monitor probes from `vantage`: a probe to broker b succeeds iff b's
/// vertex is up and reachable from the vantage through usable dominated
/// edges (both endpoints up, link up, >= 1 broker endpoint). The vantage
/// itself going dark fails every probe — exactly the partition ambiguity a
/// real control plane faces.
class HealthMonitor {
 public:
  /// `g`, `brokers` and `faults` are held by reference and must outlive the
  /// monitor; the member list is re-read on add_broker(). `jitter_seed`
  /// fully determines every re-probe jitter draw.
  HealthMonitor(const bsr::graph::CsrGraph& g, const bsr::broker::BrokerSet& brokers,
                const bsr::graph::FaultPlane& faults, const HealthConfig& config,
                bsr::graph::NodeId vantage, std::uint64_t jitter_seed);

  /// Picks the default vantage: the highest-degree broker (first member on
  /// ties). Throws std::invalid_argument on an empty set.
  [[nodiscard]] static bsr::graph::NodeId choose_vantage(
      const bsr::graph::CsrGraph& g, const bsr::broker::BrokerSet& brokers);

  /// Time of the next internal event (probe round or due re-probe);
  /// infinity only if the monitor has no brokers at all.
  [[nodiscard]] double next_event_time() const noexcept;

  /// Processes every internal event with time <= now, in deterministic
  /// (time, kind, broker-index) order, publishing a new view whenever any
  /// broker changed state. Returns the number of state transitions.
  std::size_t advance(double now);

  /// Registers a broker recruited after construction (e.g. by repair).
  /// New brokers start kHealthy, are probed from the next round on, and a
  /// fresh view (timestamped `now`) announces them immediately — subject to
  /// the usual propagation delay before consumers see it.
  void add_broker(bsr::graph::NodeId v, double now);

  /// Latest view whose published_at + propagation_delay <= now — what a
  /// consumer is allowed to know at `now`. The initial all-healthy view
  /// (version 0, published at construction) is always visible.
  [[nodiscard]] const HealthView& view_at(double now) const noexcept;

  /// The detector's own current belief (no propagation delay).
  [[nodiscard]] const HealthView& latest_view() const noexcept {
    return views_.back();
  }

  /// All published views, oldest first (version i at index i).
  [[nodiscard]] std::span<const HealthView> views() const noexcept { return views_; }

  /// Every transition ever made, in order.
  [[nodiscard]] std::span<const HealthTransition> transitions() const noexcept {
    return transitions_;
  }

  [[nodiscard]] std::span<const bsr::graph::NodeId> members() const noexcept {
    return members_;
  }
  [[nodiscard]] HealthState state_of(std::size_t member_index) const noexcept;

  /// Brokers currently believed routable by the *detector* (no delay).
  [[nodiscard]] std::size_t routable_count() const noexcept;

  // --- counters ------------------------------------------------------------
  [[nodiscard]] std::uint64_t probe_rounds() const noexcept { return rounds_; }
  [[nodiscard]] std::uint64_t quarantines() const noexcept { return quarantines_; }
  /// Quarantines issued while the broker's vertex was actually up (an
  /// unreachable-but-alive broker): the detector's false positives.
  [[nodiscard]] std::uint64_t false_quarantines() const noexcept {
    return false_quarantines_;
  }

 private:
  struct Cell {
    HealthState state = HealthState::kHealthy;
    std::uint32_t misses = 0;     // consecutive missed probes
    std::uint32_t successes = 0;  // consecutive probation successes
    std::uint32_t backoff_level = 0;
    double next_reprobe = 0.0;    // valid only in kQuarantined
    std::uint64_t episode = 0;    // open failure episode (0 = healthy, none
                                  // open; cleared again on recovery so ids
                                  // are never reused across failures)
  };

  void probe_round(double now);
  void reprobe(double now, std::size_t index);
  /// True iff the broker at member index answers a probe right now.
  [[nodiscard]] bool probe_target(std::size_t index);
  /// Refreshes the vantage-reachability BFS for the current fault state.
  void refresh_reachability();
  void transition(double now, std::size_t index, HealthState to);
  void publish(double now);
  [[nodiscard]] double backoff_delay(std::uint32_t level);
  [[nodiscard]] bool is_routable(HealthState s) const noexcept {
    return s == HealthState::kHealthy ||
           (s == HealthState::kProbation && config_.route_probation);
  }

  const bsr::graph::CsrGraph* graph_;
  const bsr::broker::BrokerSet* brokers_;
  const bsr::graph::FaultPlane* faults_;
  HealthConfig config_;
  bsr::graph::NodeId vantage_;
  bsr::graph::Rng jitter_rng_;

  std::vector<bsr::graph::NodeId> members_;  // probe targets, stable order
  std::vector<Cell> cells_;
  std::vector<HealthView> views_;
  std::vector<HealthTransition> transitions_;
  bsr::graph::engine::Workspace ws_;  // vantage BFS scratch
  bool reach_valid_ = false;          // ws_ holds reachability for this round
  bool dirty_ = false;                // state changed since last publish
  std::uint64_t next_episode_ = 1;    // failure-episode id allocator
  std::uint64_t next_round_ = 1;      // probe rounds at k * probe_interval
  std::uint64_t rounds_ = 0;
  std::uint64_t quarantines_ = 0;
  std::uint64_t false_quarantines_ = 0;
};

// --- budgeted repair with retry/backoff ------------------------------------

struct RepairPolicy {
  /// Replacement brokers recruited per successful attempt.
  std::uint32_t budget = 2;
  /// First retry after a failed recruitment waits this long; subsequent
  /// failures multiply by retry_factor up to retry_max.
  double retry_backoff = 4.0;
  double retry_factor = 2.0;
  double retry_max = 32.0;
  /// Consecutive failed recruitments before the scheduler gives up until
  /// the next quarantine re-arms it.
  std::uint32_t max_retries = 4;
};

/// Turns quarantine signals into scheduled repair attempts. The scheduler
/// owns only timing state; the caller performs the actual recruitment and
/// reports success/failure back.
class RepairScheduler {
 public:
  explicit RepairScheduler(const RepairPolicy& policy) : policy_(policy) {}

  /// Arms (or re-arms) a repair attempt at `now` + retry_backoff if none is
  /// pending. Called when a broker enters quarantine.
  void request(double now);

  /// Time of the next due attempt (infinity if idle).
  [[nodiscard]] double next_due() const noexcept { return due_; }

  /// Marks the due attempt as executed; `recruited` is how many brokers the
  /// caller actually added. Zero recruits schedule a backed-off retry until
  /// max_retries is exhausted.
  void report(double now, std::uint32_t recruited);

  [[nodiscard]] std::uint64_t attempts() const noexcept { return attempts_; }
  [[nodiscard]] std::uint64_t failed_attempts() const noexcept { return failures_; }

 private:
  RepairPolicy policy_;
  double due_ = std::numeric_limits<double>::infinity();
  std::uint32_t retries_ = 0;
  std::uint64_t attempts_ = 0;
  std::uint64_t failures_ = 0;
};

// --- measurement helpers ----------------------------------------------------

/// l-hop connectivity of the *realized* service plane: fraction of
/// (source, other) pairs within `l` hops using only edges with a usable
/// broker endpoint per `usable_brokers`, walked over the damaged graph when
/// `faults` is non-null. Pass a HealthView's routable bitmap to measure the
/// believed plane, or a BrokerSet's mask() to measure the oracle plane —
/// same sampled sources, so the two numbers are directly comparable.
[[nodiscard]] double lhop_connectivity(const bsr::graph::CsrGraph& g,
                                       const std::vector<bool>& usable_brokers,
                                       const bsr::graph::FaultPlane* faults,
                                       std::uint32_t l, bsr::graph::Rng& rng,
                                       std::size_t num_sources);

}  // namespace bsr::sim
