// Algorithm 3 — MaxSubGraph-Greedy (MaxSG), the paper's linear-time heuristic.
//
// Each iteration adds the vertex w maximizing the size of the largest
// connected component of the dominated subgraph G_{B ∪ {w}}. Implementation:
// a union-find over active (broker-incident) edges is maintained
// incrementally; the candidate gain — the size of the component that would
// form around w — is the sum of the distinct component sizes of w and its
// neighbors, computed in O(deg(w)).
//
// Unlike coverage f, the component-size objective is NOT submodular (merging
// grows future gains), so lazy evaluation is unsound here. Instead of the
// naive full candidate sweep per round, the implementation factors every
// candidate's gain around the *anchor* — the distinguished (giant) dominated
// component — as
//     gain(w) = rest_gain[w] + (adj_anchor[w] ? |anchor| : 0)
// and caches rest_gain/adj_anchor across rounds. When a pick merely grows
// the anchor, candidates adjacent only to the anchor need no recomputation
// (|anchor| is read fresh); only candidates adjacent to a component that
// changed this round are re-evaluated. The recomputed gains are exactly the
// full-sweep values, so the selected set is bit-identical to the naive
// sweep; per-round recomputation is amortized O(|V| + |E|) over the run
// because each vertex is absorbed into the anchor at most once.
//
// Dirty-candidate recomputation and the per-round argmax are sharded across
// BSR_THREADS workers over candidate ranges; reductions are integer-only and
// merged in shard order, so results are invariant under the thread count.
#pragma once

#include <cstdint>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"

namespace bsr::graph {
class Renumbering;
}  // namespace bsr::graph

namespace bsr::broker {

struct MaxSgOptions {
  /// Stop early once the dominated component covers every vertex reachable
  /// in the underlying graph (paper: MaxSG "totally dominates the maximum
  /// connected subgraph" and stops at 3,540 brokers).
  bool stop_when_dominating = true;

  /// When non-null, `g` is a locality-renumbered graph and `renumbering`
  /// maps its ids back to the original label space. Candidates are iterated
  /// in ORIGINAL-id order and the returned brokers carry original ids, so
  /// the result is bit-identical to running on the un-renumbered graph —
  /// the relabeling only changes memory layout, never tie-breaks.
  const bsr::graph::Renumbering* renumbering = nullptr;
};

struct MaxSgResult {
  BrokerSet brokers;  // selection order preserved
  /// largest dominated-component size after each pick.
  std::vector<std::uint32_t> component_curve;
  std::uint32_t final_component = 0;
  std::uint32_t coverage = 0;  // f(B) for the final set
};

/// Runs MaxSG with budget k. Throws std::invalid_argument for an empty graph
/// or a renumbering whose size does not match the graph.
[[nodiscard]] MaxSgResult maxsg(const bsr::graph::CsrGraph& g, std::uint32_t k,
                                const MaxSgOptions& options = {});

}  // namespace bsr::broker
