#include <gtest/gtest.h>

#include <algorithm>

#include "graph/bfs.hpp"
#include "graph/components.hpp"
#include "graph/degree_stats.hpp"
#include "topology/ba.hpp"
#include "topology/er.hpp"
#include "topology/ws.hpp"

namespace bsr::topology {
namespace {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;

// --- Erdős–Rényi ----------------------------------------------------------

TEST(ErGenerator, ExactEdgeCount) {
  const CsrGraph g = make_er(100, 500, 1);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 500u);
}

TEST(ErGenerator, CapsAtCompleteGraph) {
  const CsrGraph g = make_er(5, 1000, 2);
  EXPECT_EQ(g.num_edges(), 10u);
}

TEST(ErGenerator, DeterministicInSeed) {
  const CsrGraph a = make_er(50, 200, 42);
  const CsrGraph b = make_er(50, 200, 42);
  EXPECT_EQ(a.edges(), b.edges());
  const CsrGraph c = make_er(50, 200, 43);
  EXPECT_NE(a.edges(), c.edges());
}

TEST(ErGenerator, RejectsTinyGraphs) {
  EXPECT_THROW(make_er(1, 0, 3), std::invalid_argument);
}

TEST(ErGenerator, DegreesConcentrated) {
  // ER degrees concentrate near the mean — p99/mean stays small, in sharp
  // contrast to BA (the property Table 3 exploits).
  const CsrGraph g = make_er(2000, 10000, 4);
  const auto stats = bsr::graph::compute_degree_stats(g);
  EXPECT_LT(stats.p99, stats.mean * 2.5);
}

// --- Watts–Strogatz --------------------------------------------------------

TEST(WsGenerator, LatticeWithoutRewiring) {
  const CsrGraph g = make_ws(20, 4, 0.0, 5);
  EXPECT_EQ(g.num_edges(), 40u);
  for (NodeId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(0, 19));
  EXPECT_TRUE(g.has_edge(0, 18));
}

TEST(WsGenerator, RewiringKeepsEdgeBudget) {
  const CsrGraph g = make_ws(200, 6, 0.3, 6);
  // Rewiring can only lose edges to rare duplicate collisions.
  EXPECT_GE(g.num_edges(), 580u);
  EXPECT_LE(g.num_edges(), 600u);
}

TEST(WsGenerator, FullRewiringStillValid) {
  const CsrGraph g = make_ws(100, 4, 1.0, 7);
  EXPECT_GT(g.num_edges(), 150u);
}

TEST(WsGenerator, RejectsBadParameters) {
  EXPECT_THROW(make_ws(3, 2, 0.1, 8), std::invalid_argument);   // n too small
  EXPECT_THROW(make_ws(10, 3, 0.1, 8), std::invalid_argument);  // odd k
  EXPECT_THROW(make_ws(10, 10, 0.1, 8), std::invalid_argument); // k >= n
  EXPECT_THROW(make_ws(10, 4, 1.5, 8), std::invalid_argument);  // beta > 1
}

TEST(WsGenerator, SmallWorldShortcutsShortenPaths) {
  // With rewiring, expected distances shrink vs the pure lattice.
  const CsrGraph lattice = make_ws(400, 4, 0.0, 9);
  const CsrGraph rewired = make_ws(400, 4, 0.2, 9);
  const auto d_lattice = bsr::graph::bfs_distances(lattice, 0);
  const auto d_rewired = bsr::graph::bfs_distances(rewired, 0);
  double sum_lattice = 0, sum_rewired = 0;
  int counted = 0;
  for (NodeId v = 0; v < 400; ++v) {
    if (d_rewired[v] == bsr::graph::kUnreachable) continue;
    sum_lattice += d_lattice[v];
    sum_rewired += d_rewired[v];
    ++counted;
  }
  ASSERT_GT(counted, 300);
  EXPECT_LT(sum_rewired, sum_lattice * 0.6);
}

// --- Barabási–Albert -------------------------------------------------------

TEST(BaGenerator, EdgeCountApproximatelyNm) {
  const CsrGraph g = make_ba(500, 3, 10);
  // Seed clique C(4,2) = 6 edges + ~3 per subsequent vertex.
  EXPECT_GE(g.num_edges(), 6u + 3u * 490u);
  EXPECT_LE(g.num_edges(), 6u + 3u * 496u);
}

TEST(BaGenerator, Connected) {
  const CsrGraph g = make_ba(300, 2, 11);
  EXPECT_EQ(bsr::graph::connected_components(g).count, 1u);
}

TEST(BaGenerator, HeavyTail) {
  const CsrGraph g = make_ba(3000, 3, 12);
  const auto stats = bsr::graph::compute_degree_stats(g);
  // Scale-free: max degree far above the mean.
  EXPECT_GT(stats.max, stats.mean * 10);
  EXPECT_GT(stats.power_law_alpha, 1.5);
  EXPECT_LT(stats.power_law_alpha, 4.0);
}

TEST(BaGenerator, RejectsBadParameters) {
  EXPECT_THROW(make_ba(5, 0, 13), std::invalid_argument);
  EXPECT_THROW(make_ba(3, 3, 13), std::invalid_argument);
}

TEST(BaGenerator, DeterministicInSeed) {
  EXPECT_EQ(make_ba(100, 2, 14).edges(), make_ba(100, 2, 14).edges());
}

}  // namespace
}  // namespace bsr::topology
