// Reproduces Fig. 5c — broker-set performance under real business
// relationships (directional routing policy) vs the bidirectional assumption.
//
// Paper: forcing ASes/IXPs to obey existing relationships (valley-free
// forwarding) sharply decreases E2E connectivity across all broker-set
// sizes.
#include <iostream>

#include "bench_common.hpp"
#include "broker/dominated.hpp"
#include "broker/maxsg.hpp"
#include "graph/bfs.hpp"
#include "graph/sampling.hpp"
#include "io/csv.hpp"
#include "topology/relationships.hpp"

namespace {

using bsr::broker::BrokerSet;
using bsr::graph::NodeId;

struct Connectivities {
  double bidirectional = 0.0;  // dominated reachability, no policy
  double directional = 0.0;    // dominated + valley-free policy
};

Connectivities measure(const bsr::bench::BenchContext& ctx, const BrokerSet& b,
                       std::size_t sources, std::uint64_t seed) {
  const auto& g = ctx.topo.graph;
  const auto filter = bsr::broker::dominated_edge_filter(b);
  bsr::graph::Rng rng(seed);
  const auto source_ids = bsr::graph::sample_distinct(
      rng, g.num_vertices(),
      static_cast<NodeId>(std::min<std::size_t>(sources, g.num_vertices())));

  bsr::graph::BfsRunner runner(g.num_vertices());
  std::uint64_t free_reach = 0, policy_reach = 0;
  for (const NodeId src : source_ids) {
    const auto free_dist = runner.run_filtered(g, src, filter);
    for (NodeId v = 0; v < g.num_vertices(); ++v) {
      if (v != src && free_dist[v] != bsr::graph::kUnreachable) ++free_reach;
    }
    const auto policy_dist = bsr::topology::valley_free_distances(
        g, ctx.topo.relations, src, filter, {});
    for (NodeId v = 0; v < g.num_vertices(); ++v) {
      if (v != src && policy_dist[v] != bsr::graph::kUnreachable) ++policy_reach;
    }
  }
  const double denom =
      static_cast<double>(source_ids.size()) * (g.num_vertices() - 1);
  return {static_cast<double>(free_reach) / denom,
          static_cast<double>(policy_reach) / denom};
}

}  // namespace

int main() {
  auto ctx = bsr::bench::make_context(
      "Fig. 5c: directional (valley-free) vs bidirectional routing");
  const auto& g = ctx.topo.graph;
  const std::size_t sources = std::min<std::size_t>(ctx.env.bfs_sources, 48);

  // One MaxSG run at the largest budget; evaluate selection-order prefixes.
  const auto full = bsr::broker::maxsg(g, ctx.env.scaled(3540, 8)).brokers;

  bsr::io::Table table({"|B| (MaxSG prefix)", "bidirectional", "directional",
                        "retained"});
  bsr::io::CsvWriter csv({"k", "policy", "connectivity"});
  for (const std::uint32_t paper_k : {100u, 500u, 1000u, 2000u, 3540u}) {
    const auto k = std::min<std::size_t>(ctx.env.scaled(paper_k, 4), full.size());
    const auto prefix = full.prefix(k);
    const auto conn = measure(ctx, prefix, sources, ctx.env.seed + paper_k);
    table.row()
        .cell(static_cast<std::uint64_t>(prefix.size()))
        .percent(conn.bidirectional)
        .percent(conn.directional)
        .percent(conn.bidirectional > 0 ? conn.directional / conn.bidirectional : 0);
    csv.add_row({std::to_string(prefix.size()), "bidirectional",
                 bsr::io::format_double(conn.bidirectional, 6)});
    csv.add_row({std::to_string(prefix.size()), "directional",
                 bsr::io::format_double(conn.directional, 6)});
  }
  table.print(std::cout);
  csv.write_file("fig5c_business_relationships.csv");
  std::cout << "series in fig5c_business_relationships.csv\n"
            << "(paper: a sharp connectivity decrease when routing must obey "
               "business relationships, at every broker-set size)\n";
  return 0;
}
