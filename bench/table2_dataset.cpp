// Reproduces Table 2 — "Summary on the Collected Dataset".
//
// Paper values (2014 snapshot):        Ours (synthetic, calibrated):
//   IXPs                        322      printed below
//   ASes                     51,757
//   max connected subgraph   51,895
//   AS-AS connections       347,332
//   AS pairs co-located     292,050
//   IXP memberships          55,282
// plus the (0.99, 4)-graph property of §4.3 and the 40.2 % IXP attachment
// rate quoted in §6.1.
#include <iostream>

#include "bench_common.hpp"
#include "topology/stats.hpp"

int main() {
  const auto ctx = bsr::bench::make_context("Table 2: dataset summary");
  const auto summary =
      bsr::topology::summarize(ctx.topo, ctx.env.bfs_sources, ctx.env.seed + 1,
                               /*beta=*/4, ctx.config.ixp_peering_prob);

  bsr::io::Table table({"Description", "Paper (2014)", "Ours"});
  table.row().cell("IXPs").cell("322").cell(std::uint64_t{summary.num_ixps});
  table.row().cell("ASes").cell("51,757").cell(std::uint64_t{summary.num_ases});
  table.row()
      .cell("Size of the maximum connected subgraph")
      .cell("51,895")
      .cell(std::uint64_t{summary.largest_component});
  table.row()
      .cell("# of connections among ASes")
      .cell("347,332")
      .cell(summary.as_as_edges);
  table.row()
      .cell("# of connections among ASes via IXPs")
      .cell("292,050")
      .cell(summary.as_as_via_ixp_pairs);
  table.row()
      .cell("   (AS pairs co-located at >= 1 IXP)")
      .cell("-")
      .cell(summary.colocated_pairs);
  table.row()
      .cell("# of IXP memberships (AS-IXP edges)")
      .cell("55,282")
      .cell(summary.ixp_memberships);
  table.row()
      .cell("ASes attached to >= 1 IXP")
      .cell("40.2%")
      .cell(bsr::io::format_percent(summary.ixp_attachment_rate) + "%");
  table.row()
      .cell("Prob[d(u,v) <= 4]  ((alpha,beta)-graph)")
      .cell("99.2%")
      .cell(bsr::io::format_percent(summary.alpha_within_beta) + "%");
  table.print(std::cout);
  return 0;
}
