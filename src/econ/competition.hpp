// Duopoly competition between two broker coalitions (extension of §7.2).
//
// Theorem 8's supermodularity argument explains why ONE coalition is
// internally stable; it does not ask what happens if a rival coalition
// forms. This module models Bertrand-style price competition between two
// coalitions with different QoS coverage: each customer AS picks the
// coalition maximizing its utility (coverage-weighted QoS income minus
// price), coalitions alternate best-response price moves, and the module
// reports the equilibrium split. The finding the bench demonstrates: the
// coverage leader keeps both the price premium and most of the market —
// coverage, not price, is the moat, which is why joining the incumbent
// beats founding a rival (the paper's single-coalition assumption).
#pragma once

#include <cstdint>
#include <vector>

#include "econ/stackelberg.hpp"

namespace bsr::econ {

struct Duopoly {
  /// Saturated-connectivity coverage of each coalition in [0, 1]: scales
  /// the QoS income a customer can realize through it.
  double coverage_a = 0.9;
  double coverage_b = 0.5;
  double max_price = 5.0;
  std::vector<CustomerParams> customers;
};

struct DuopolyOutcome {
  double price_a = 0.0;
  double price_b = 0.0;
  double adoption_a = 0.0;  // Σ a_i routed via coalition A
  double adoption_b = 0.0;
  double profit_a = 0.0;
  double profit_b = 0.0;
  std::size_t customers_a = 0;  // customers whose best option is A
  std::size_t customers_b = 0;
  std::size_t customers_none = 0;
  bool converged = false;
  std::size_t rounds = 0;
};

/// A customer's utility when buying from a coalition with `coverage` at
/// `price`: coverage-scaled QoS income minus payment, maximized over its
/// adoption fraction (same concave machinery as §7.1).
[[nodiscard]] double customer_best_utility(const CustomerParams& customer,
                                           double coverage, double price,
                                           double* best_adoption = nullptr);

/// Alternating best-response price dynamics until prices stabilize.
/// Throws std::invalid_argument for empty customers or bad coverages.
[[nodiscard]] DuopolyOutcome compete(const Duopoly& game,
                                     std::size_t max_rounds = 64,
                                     double tolerance = 1e-4);

}  // namespace bsr::econ
