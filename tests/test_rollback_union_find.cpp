#include "graph/rollback_union_find.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/rng.hpp"
#include "graph/union_find.hpp"

namespace bsr::graph {
namespace {

/// Brute-force Σ (size choose 2) from component_size per vertex.
std::uint64_t brute_connected_pairs(const RollbackUnionFind& uf) {
  std::uint64_t pairs = 0;
  for (NodeId v = 0; v < uf.size(); ++v) {
    if (uf.find(v) == v) {
      const std::uint64_t s = uf.root_size(v);
      pairs += s * (s - 1) / 2;
    }
  }
  return pairs;
}

TEST(RollbackUnionFind, MatchesPlainUnionFindOnRandomSequences) {
  // Both flavors share the union-by-size merge rule, so roots and sizes —
  // not just the partition — must agree after any unite sequence.
  Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId n = 2 + static_cast<NodeId>(rng.uniform(60));
    UnionFind plain(n);
    RollbackUnionFind rollback(n);
    for (int i = 0; i < 120; ++i) {
      const NodeId u = static_cast<NodeId>(rng.uniform(n));
      const NodeId v = static_cast<NodeId>(rng.uniform(n));
      EXPECT_EQ(plain.unite(u, v), rollback.unite(u, v));
    }
    EXPECT_EQ(plain.num_components(), rollback.num_components());
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(plain.find(v), rollback.find(v));
      EXPECT_EQ(plain.component_size(v), rollback.component_size(v));
    }
  }
}

TEST(RollbackUnionFind, ConnectedPairsTracksBruteForce) {
  Rng rng(77);
  RollbackUnionFind uf(40);
  EXPECT_EQ(uf.connected_pairs(), 0u);
  for (int i = 0; i < 100; ++i) {
    uf.unite(static_cast<NodeId>(rng.uniform(40)),
             static_cast<NodeId>(rng.uniform(40)));
    EXPECT_EQ(uf.connected_pairs(), brute_connected_pairs(uf));
  }
}

TEST(RollbackUnionFind, RollbackRestoresExactState) {
  // After rollback(cp), the forest must be byte-equivalent to replaying only
  // the unions applied before cp onto a fresh instance — parents included,
  // not merely the partition.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId n = 2 + static_cast<NodeId>(rng.uniform(50));
    RollbackUnionFind uf(n);
    std::vector<std::pair<NodeId, NodeId>> prefix;
    const int before = static_cast<int>(rng.uniform(40));
    for (int i = 0; i < before; ++i) {
      const auto u = static_cast<NodeId>(rng.uniform(n));
      const auto v = static_cast<NodeId>(rng.uniform(n));
      uf.unite(u, v);
      prefix.emplace_back(u, v);
    }
    const auto cp = uf.checkpoint();
    for (int i = 0; i < 60; ++i) {
      uf.unite(static_cast<NodeId>(rng.uniform(n)),
               static_cast<NodeId>(rng.uniform(n)));
    }
    uf.rollback(cp);

    RollbackUnionFind fresh(n);
    for (const auto& [u, v] : prefix) fresh.unite(u, v);
    EXPECT_EQ(uf.num_components(), fresh.num_components());
    EXPECT_EQ(uf.connected_pairs(), fresh.connected_pairs());
    EXPECT_EQ(uf.largest_component_size(), fresh.largest_component_size());
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(uf.find(v), fresh.find(v));
      EXPECT_EQ(uf.component_size(v), fresh.component_size(v));
    }
  }
}

TEST(RollbackUnionFind, NestedCheckpointsUnwindInAnyOrder) {
  RollbackUnionFind uf(8);
  uf.unite(0, 1);
  const auto cp1 = uf.checkpoint();
  uf.unite(2, 3);
  const auto cp2 = uf.checkpoint();
  uf.unite(0, 2);
  EXPECT_TRUE(uf.connected(1, 3));
  uf.rollback(cp2);
  EXPECT_FALSE(uf.connected(1, 3));
  EXPECT_TRUE(uf.connected(2, 3));
  // Rolling straight past cp2 from a later state is also legal.
  uf.unite(4, 5);
  uf.unite(5, 6);
  uf.rollback(cp1);
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_FALSE(uf.connected(2, 3));
  EXPECT_FALSE(uf.connected(4, 5));
  EXPECT_EQ(uf.connected_pairs(), 1u);
  EXPECT_EQ(uf.num_components(), 7u);
}

TEST(RollbackUnionFind, RollbackToZeroIsFullReset) {
  RollbackUnionFind uf(10);
  for (NodeId v = 0; v + 1 < 10; ++v) uf.unite(v, v + 1);
  EXPECT_EQ(uf.num_components(), 1u);
  uf.rollback(0);
  EXPECT_EQ(uf.num_components(), 10u);
  EXPECT_EQ(uf.connected_pairs(), 0u);
  EXPECT_EQ(uf.largest_component_size(), 1u);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(uf.find(v), v);
}

TEST(RollbackUnionFind, ResetReusesAcrossSizes) {
  RollbackUnionFind uf(4);
  uf.unite(0, 1);
  uf.reset(6);
  EXPECT_EQ(uf.size(), 6u);
  EXPECT_EQ(uf.num_components(), 6u);
  EXPECT_EQ(uf.connected_pairs(), 0u);
  EXPECT_EQ(uf.checkpoint(), 0u);  // undo log cleared
  uf.unite(4, 5);
  EXPECT_TRUE(uf.connected(4, 5));
  uf.reset(2);
  EXPECT_EQ(uf.size(), 2u);
  EXPECT_FALSE(uf.connected(0, 1));
}

TEST(RollbackUnionFind, LargestComponentSize) {
  RollbackUnionFind uf(7);
  EXPECT_EQ(uf.largest_component_size(), 1u);
  uf.unite(0, 1);
  uf.unite(1, 2);
  uf.unite(4, 5);
  EXPECT_EQ(uf.largest_component_size(), 3u);
  RollbackUnionFind empty(0);
  EXPECT_EQ(empty.largest_component_size(), 0u);
}

}  // namespace
}  // namespace bsr::graph
