#include "sim/load.hpp"

#include <algorithm>
#include <numeric>

namespace bsr::sim {

using bsr::graph::NodeId;

void LoadTracker::add_route(const Route& route, double volume) {
  if (route.path.size() < 3) return;  // no transit vertices
  for (std::size_t i = 1; i + 1 < route.path.size(); ++i) {
    load_[route.path[i]] += volume;
  }
}

LoadTracker::Summary LoadTracker::summarize(
    const bsr::broker::BrokerSet& brokers) const {
  Summary out;
  std::vector<double> broker_loads;
  broker_loads.reserve(brokers.size());
  for (const NodeId b : brokers.members()) {
    const double l = load_[b];
    broker_loads.push_back(l);
    out.total += l;
    out.max = std::max(out.max, l);
    if (l > 0.0) ++out.active_brokers;
  }
  if (broker_loads.empty()) return out;
  out.mean_over_brokers = out.total / static_cast<double>(broker_loads.size());

  // Gini coefficient via the sorted-rank formula.
  std::sort(broker_loads.begin(), broker_loads.end());
  const double n = static_cast<double>(broker_loads.size());
  double weighted = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < broker_loads.size(); ++i) {
    weighted += (2.0 * (static_cast<double>(i) + 1.0) - n - 1.0) * broker_loads[i];
    sum += broker_loads[i];
  }
  out.gini = sum > 0.0 ? weighted / (n * sum) : 0.0;
  return out;
}

}  // namespace bsr::sim
