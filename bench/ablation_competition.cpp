// Ablation: what if a rival coalition forms? (duopoly extension of §7.2)
//
// The paper assumes a single coalition; Theorem 8's stability argument
// says no subset wants to defect. The duopoly game makes the "why" vivid:
// a rival with less coverage loses on both price and market share, because
// coverage — the thing only the incumbent's scale buys — is what customers
// pay for. Coverage values are taken from the actual MaxSG curve.
#include <iostream>

#include "bench_common.hpp"
#include "broker/dominated.hpp"
#include "broker/maxsg.hpp"
#include "econ/competition.hpp"

int main() {
  auto ctx = bsr::bench::make_context("Ablation: duopoly coalition competition");
  const auto& g = ctx.topo.graph;

  const auto full = bsr::broker::maxsg(g, ctx.env.scaled(3540, 8)).brokers;
  const auto coverage_of = [&](std::uint32_t paper_k) {
    const auto prefix = full.prefix(std::min<std::size_t>(
        ctx.env.scaled(paper_k, 4), full.size()));
    return bsr::broker::saturated_connectivity(g, prefix);
  };

  bsr::graph::Rng rng(ctx.env.seed + 22);
  std::vector<bsr::econ::CustomerParams> customers;
  for (int i = 0; i < 200; ++i) {
    bsr::econ::CustomerParams c;
    c.v_scale = 0.7 + 0.6 * rng.uniform01();
    c.a0 = 0.1 * rng.uniform01();
    c.a_hat = 0.4 + 0.3 * rng.uniform01();
    c.p_peak = 0.1 + 0.2 * rng.uniform01();
    customers.push_back(c);
  }

  bsr::io::Table table({"incumbent", "rival", "p_A*", "p_B*", "customers A/B/none",
                        "profit A", "profit B"});
  for (const auto& [inc_k, rival_k] :
       {std::pair{3540u, 100u}, std::pair{3540u, 1000u}, std::pair{1000u, 1000u}}) {
    bsr::econ::Duopoly game;
    game.coverage_a = coverage_of(inc_k);
    game.coverage_b = coverage_of(rival_k);
    game.customers = customers;
    const auto outcome = bsr::econ::compete(game);
    table.row()
        .cell(std::to_string(inc_k) + " brokers (" +
              bsr::io::format_percent(game.coverage_a, 0) + "%)")
        .cell(std::to_string(rival_k) + " brokers (" +
              bsr::io::format_percent(game.coverage_b, 0) + "%)")
        .cell(outcome.price_a, 2)
        .cell(outcome.price_b, 2)
        .cell(std::to_string(outcome.customers_a) + "/" +
              std::to_string(outcome.customers_b) + "/" +
              std::to_string(outcome.customers_none))
        .cell(outcome.profit_a, 0)
        .cell(outcome.profit_b, 0);
  }
  table.print(std::cout);
  std::cout << "(coverage is the moat: a smaller rival loses share even when "
               "it undercuts — joining the incumbent beats founding a rival, "
               "consistent with the paper's single-coalition assumption)\n";
  return 0;
}
