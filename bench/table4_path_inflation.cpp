// Reproduces Table 4 — path inflation through the MaxSG alliance.
//
// Paper: with bidirectional inter-broker connections, the l-hop E2E
// connectivity curve of the 3,540-alliance almost overlaps free-path
// selection ("ASesWithIXPs"), i.e., minimal path inflation; contrast with
// DB whose 1,005-broker set satisfies only 72.40 % within 4 hops vs 90.02 %
// free.
#include <iostream>

#include "bench_common.hpp"
#include "broker/baselines.hpp"
#include "broker/maxsg.hpp"
#include "broker/path_length.hpp"

int main() {
  auto ctx = bsr::bench::make_context("Table 4: path inflation via the alliance");
  const auto& g = ctx.topo.graph;

  const std::uint32_t k_alliance = ctx.env.scaled(3540, 8);
  const std::uint32_t k_db = ctx.env.scaled(1005, 8);

  bsr::bench::Stopwatch sw;
  const auto alliance = bsr::broker::maxsg(g, k_alliance).brokers;
  std::cout << "MaxSG alliance: " << alliance.size() << " brokers ("
            << bsr::io::format_double(sw.seconds(), 1) << "s)\n";
  const auto db = bsr::broker::db_top_degree(g, k_db);

  bsr::graph::Rng rng(ctx.env.seed + 4);
  const auto alliance_cmp =
      bsr::broker::compare_path_lengths(g, alliance, rng, ctx.env.bfs_sources);
  const auto db_cmp =
      bsr::broker::compare_path_lengths(g, db, rng, ctx.env.bfs_sources);

  bsr::io::Table table({"hops l", "free paths F(l)", "MaxSG alliance", "inflation",
                        "DB top-" + std::to_string(db.size()), "inflation "});
  for (std::uint32_t l = 1; l <= 8; ++l) {
    table.row()
        .cell(std::uint64_t{l})
        .percent(alliance_cmp.free_paths.at(l))
        .percent(alliance_cmp.dominated_paths.at(l))
        .percent(alliance_cmp.inflation_at(l))
        .percent(db_cmp.dominated_paths.at(l))
        .percent(db_cmp.inflation_at(l));
  }
  table.print(std::cout);
  std::cout << "max |F_B(l) - F(l)|: alliance = "
            << bsr::io::format_percent(alliance_cmp.max_deviation)
            << "%, DB = " << bsr::io::format_percent(db_cmp.max_deviation)
            << "%  (epsilon-feasibility, Eq. 4)\n"
            << "(paper anchor: DB@1005 reaches 72.40% at l = 4 vs 90.02% free; "
               "the alliance curve overlaps the free curve)\n";
  return 0;
}
