#include "graph/components.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/bfs.hpp"
#include "graph/graph_builder.hpp"
#include "test_util.hpp"

namespace bsr::graph {
namespace {

using bsr::test::make_complete;
using bsr::test::make_path;
using bsr::test::make_random;

TEST(Components, SingleComponent) {
  const CsrGraph g = make_path(6);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 1u);
  EXPECT_EQ(c.largest_size(), 6u);
}

TEST(Components, DisjointPieces) {
  GraphBuilder b(7);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  // 5, 6 isolated
  const CsrGraph g = b.build();
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 4u);
  EXPECT_EQ(c.largest_size(), 3u);
  EXPECT_EQ(c.size[c.largest()], 3u);
  // Labels consistent within components.
  EXPECT_EQ(c.label[0], c.label[2]);
  EXPECT_EQ(c.label[3], c.label[4]);
  EXPECT_NE(c.label[0], c.label[3]);
  EXPECT_NE(c.label[5], c.label[6]);
}

TEST(Components, SizesSumToVertexCount) {
  const CsrGraph g = make_random(50, 0.03, 5);
  const Components c = connected_components(g);
  const auto total = std::accumulate(c.size.begin(), c.size.end(), 0u);
  EXPECT_EQ(total, g.num_vertices());
}

TEST(Components, FilteredComponentsRespectPredicate) {
  const CsrGraph g = make_complete(5);
  // Only edges incident to vertex 0 allowed -> star components.
  const Components c = connected_components_filtered(
      g, [](NodeId u, NodeId v) { return u == 0 || v == 0; });
  EXPECT_EQ(c.count, 1u);  // star around 0 still connects everything
  const Components none = connected_components_filtered(
      g, [](NodeId, NodeId) { return false; });
  EXPECT_EQ(none.count, 5u);
}

TEST(Components, LargestComponentVertices) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  const CsrGraph g = b.build();
  const auto verts = largest_component_vertices(g);
  EXPECT_EQ(verts, (std::vector<NodeId>{2, 3, 4}));
}

TEST(Components, EmptyGraphLargestThrows) {
  const Components c;
  EXPECT_EQ(c.largest_size(), 0u);
  EXPECT_THROW((void)c.largest(), std::logic_error);
}

class ComponentsRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ComponentsRandomTest, AgreesWithBfsReachability) {
  const CsrGraph g = make_random(45, 0.05, GetParam());
  const Components c = connected_components(g);
  BfsRunner runner(g.num_vertices());
  for (NodeId s = 0; s < g.num_vertices(); s += 9) {
    const auto dist = runner.run(g, s);
    for (NodeId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(dist[v] != kUnreachable, c.label[v] == c.label[s]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComponentsRandomTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace bsr::graph
