#include "broker/mcbg_approx.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "broker/verify.hpp"
#include "test_util.hpp"

namespace bsr::broker {
namespace {

using bsr::graph::CsrGraph;
using bsr::test::make_complete;
using bsr::test::make_connected_random;
using bsr::test::make_path;
using bsr::test::make_star;

TEST(McbgBudget, PreselectFormula) {
  // beta = 4 -> ⌈β/2⌉ = 2 -> x* = ⌊(k+1)/2⌋.
  EXPECT_EQ(mcbg_preselect_budget(1, 4), 1u);
  EXPECT_EQ(mcbg_preselect_budget(2, 4), 1u);
  EXPECT_EQ(mcbg_preselect_budget(3, 4), 2u);
  EXPECT_EQ(mcbg_preselect_budget(10, 4), 5u);
  EXPECT_EQ(mcbg_preselect_budget(11, 4), 6u);
  // beta <= 2 -> each broker costs 1 -> x* = k.
  EXPECT_EQ(mcbg_preselect_budget(7, 2), 7u);
  EXPECT_EQ(mcbg_preselect_budget(7, 1), 7u);
  // beta = 6 -> cost 3 -> x* = ⌊(k+2)/3⌋.
  EXPECT_EQ(mcbg_preselect_budget(10, 6), 4u);
  EXPECT_THROW(mcbg_preselect_budget(5, 0), std::invalid_argument);
}

TEST(Mcbg, EmptyGraphThrows) {
  EXPECT_THROW(mcbg_approx(CsrGraph(), 3), std::invalid_argument);
}

TEST(Mcbg, ZeroBudget) {
  const CsrGraph g = make_star(5);
  const auto result = mcbg_approx(g, 0);
  EXPECT_TRUE(result.brokers.empty());
}

TEST(Mcbg, StarSolvedBySingleBroker) {
  const CsrGraph g = make_star(9);
  const auto result = mcbg_approx(g, 3);
  EXPECT_EQ(result.coverage, 9u);
  EXPECT_TRUE(has_pairwise_guarantee(g, result.brokers));
}

TEST(Mcbg, PathGraphStitching) {
  const CsrGraph g = make_path(9);
  const auto result = mcbg_approx(g, 5);
  EXPECT_LE(result.brokers.size(), 5u);
  EXPECT_TRUE(has_pairwise_guarantee(g, result.brokers));
  EXPECT_GT(result.coverage, 4u);
}

class McbgPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(McbgPropertyTest, BudgetAlwaysRespected) {
  const CsrGraph g = make_connected_random(40, 0.07, GetParam());
  for (const std::uint32_t k : {1u, 2u, 5u, 9u, 15u}) {
    const auto result = mcbg_approx(g, k);
    EXPECT_LE(result.brokers.size(), k) << "k = " << k;
    EXPECT_EQ(result.brokers.size(),
              result.preselected + result.stitching);
  }
}

TEST_P(McbgPropertyTest, GuaranteeHoldsOnConnectedGraphs) {
  const CsrGraph g = make_connected_random(40, 0.07, GetParam() + 50);
  for (const std::uint32_t k : {3u, 7u, 12u}) {
    const auto result = mcbg_approx(g, k);
    EXPECT_TRUE(has_pairwise_guarantee(g, result.brokers)) << "k = " << k;
    EXPECT_EQ(result.unreachable_preselected, 0u);
  }
}

TEST_P(McbgPropertyTest, ApproximationRatioOnTinyGraphs) {
  // Theorem 3: f(APX) >= (1 - 1/e)/θ · f(OPT_MCBG) with θ = 2⌈β/2⌉ for our
  // β = 4 setting. Check against the brute-force MCBG optimum.
  const CsrGraph g = make_connected_random(12, 0.2, GetParam() + 99);
  constexpr double kTheta = 4.0;  // 2 * ⌈4/2⌉
  for (const std::uint32_t k : {2u, 3u, 4u}) {
    const auto result = mcbg_approx(g, k);
    const auto optimum = brute_force_mcbg_optimum(g, k);
    EXPECT_GE(static_cast<double>(result.coverage) + 1e-9,
              (1.0 - 1.0 / std::exp(1.0)) / kTheta * optimum)
        << "k = " << k;
  }
}

TEST_P(McbgPropertyTest, SubsampledRootsStillFeasible) {
  const CsrGraph g = make_connected_random(50, 0.06, GetParam() + 150);
  McbgOptions options;
  options.max_roots = 2;
  const auto result = mcbg_approx(g, 11, options);
  EXPECT_LE(result.brokers.size(), 11u);
  EXPECT_TRUE(has_pairwise_guarantee(g, result.brokers));
}

TEST_P(McbgPropertyTest, LargerBetaPreselectsFewer) {
  const CsrGraph g = make_connected_random(40, 0.08, GetParam() + 250);
  McbgOptions beta4;
  beta4.beta = 4;
  McbgOptions beta8;
  beta8.beta = 8;
  const auto r4 = mcbg_approx(g, 12, beta4);
  const auto r8 = mcbg_approx(g, 12, beta8);
  EXPECT_GE(r4.preselected, r8.preselected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, McbgPropertyTest, ::testing::Values(4, 44, 444, 4444));

}  // namespace
}  // namespace bsr::broker
