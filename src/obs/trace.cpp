#include "obs/trace.hpp"

#include <atomic>
#include <chrono>

namespace bsr::obs {

namespace {

std::atomic<bool> g_tracing{false};

/// Per-thread trace state. The epoch is the first span's clock reading, so
/// start_ns values stay small and chrome exports start near zero.
struct Tracer {
  std::vector<SpanRecord> records;
  std::vector<std::int32_t> open;  // indices of currently open spans
  std::chrono::steady_clock::time_point epoch{};
  bool epoch_set = false;

  std::uint64_t now_ns() {
    const auto t = std::chrono::steady_clock::now();
    if (!epoch_set) {
      epoch = t;
      epoch_set = true;
    }
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t - epoch).count());
  }
};

Tracer& tls_tracer() noexcept {
  thread_local Tracer tracer;
  return tracer;
}

}  // namespace

void set_tracing(bool on) noexcept {
  g_tracing.store(on, std::memory_order_relaxed);
}

bool tracing_enabled() noexcept {
  return g_tracing.load(std::memory_order_relaxed);
}

std::vector<SpanRecord> drain_trace() {
  Tracer& tracer = tls_tracer();
  std::vector<SpanRecord> out = std::move(tracer.records);
  tracer.records.clear();
  tracer.open.clear();
  return out;
}

void clear_trace() noexcept {
  Tracer& tracer = tls_tracer();
  tracer.records.clear();
  tracer.open.clear();
}

Span::Span(const char* span_name) noexcept {
  if (!tracing_enabled()) return;
  Tracer& tracer = tls_tracer();
  SpanRecord record;
  record.name = span_name;
  record.parent = tracer.open.empty() ? -1 : tracer.open.back();
  record.depth = static_cast<std::uint32_t>(tracer.open.size());
  record.start_ns = tracer.now_ns();
  index_ = static_cast<std::int32_t>(tracer.records.size());
  tracer.records.push_back(std::move(record));
  tracer.open.push_back(index_);
  entry_counters_ = tls_block().counters;
}

Span::~Span() {
  if (index_ < 0) return;
  Tracer& tracer = tls_tracer();
  // Unwind may close spans in strict reverse-open order only; RAII
  // guarantees the top of the open stack is this span.
  if (tracer.open.empty() || tracer.open.back() != index_) return;
  tracer.open.pop_back();
  SpanRecord& record = tracer.records[static_cast<std::size_t>(index_)];
  record.duration_ns = tracer.now_ns() - record.start_ns;
  const auto& now_counters = tls_block().counters;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const std::uint64_t moved = now_counters[i] - entry_counters_[i];
    if (moved == 0) continue;
    const auto c = static_cast<Counter>(i);
    record.counter_deltas.emplace_back(c, moved);
    if (is_work_unit(c)) record.work_units += moved;
  }
}

}  // namespace bsr::obs
