#include "broker/resilience.hpp"

#include <algorithm>
#include <stdexcept>

#include "broker/dominated.hpp"
#include "graph/bfs.hpp"
#include "graph/union_find.hpp"

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::graph::Rng;
using bsr::graph::UnionFind;

BrokerSet fail_brokers(const CsrGraph& g, const BrokerSet& b, std::size_t failures,
                       FailureMode mode, Rng& rng) {
  if (b.num_vertices() != g.num_vertices()) {
    throw std::invalid_argument("fail_brokers: size mismatch");
  }
  std::vector<NodeId> members(b.members().begin(), b.members().end());
  std::vector<NodeId> doomed;
  if (failures >= members.size()) {
    doomed = members;
  } else if (mode == FailureMode::kRandom) {
    // Partial Fisher-Yates over a copy.
    std::vector<NodeId> pool = members;
    for (std::size_t i = 0; i < failures; ++i) {
      const std::size_t j = i + rng.uniform(pool.size() - i);
      std::swap(pool[i], pool[j]);
      doomed.push_back(pool[i]);
    }
  } else {
    std::vector<NodeId> sorted = members;
    std::stable_sort(sorted.begin(), sorted.end(), [&g](NodeId a, NodeId b2) {
      if (g.degree(a) != g.degree(b2)) return g.degree(a) > g.degree(b2);
      return a < b2;
    });
    doomed.assign(sorted.begin(),
                  sorted.begin() + static_cast<std::ptrdiff_t>(failures));
  }

  std::vector<bool> dead(g.num_vertices(), false);
  for (const NodeId v : doomed) dead[v] = true;
  BrokerSet survivors(g.num_vertices());
  for (const NodeId v : members) {
    if (!dead[v]) survivors.add(v);
  }
  return survivors;
}

ResilienceCurve resilience_curve(const CsrGraph& g, const BrokerSet& b,
                                 std::span<const std::size_t> failure_steps,
                                 FailureMode mode, Rng& rng) {
  ResilienceCurve curve;
  for (const std::size_t failures : failure_steps) {
    const BrokerSet survivors = fail_brokers(g, b, failures, mode, rng);
    curve.failures.push_back(failures);
    curve.connectivity.push_back(saturated_connectivity(g, survivors));
  }
  return curve;
}

BrokerSet repair_brokers(const CsrGraph& g, const BrokerSet& survivors,
                         std::uint32_t budget) {
  const NodeId n = g.num_vertices();
  BrokerSet repaired = survivors;

  // Same incremental machinery as MaxSG, seeded with the survivors.
  UnionFind uf(n);
  std::vector<bool> is_broker(n, false);
  for (const NodeId b : survivors.members()) {
    is_broker[b] = true;
    for (const NodeId v : g.neighbors(b)) uf.unite(b, v);
  }
  std::vector<std::uint32_t> stamp(n, 0);
  std::uint32_t epoch = 0;
  const auto gain_of = [&](NodeId w) {
    ++epoch;
    std::uint32_t merged = 0;
    const NodeId rw = uf.find(w);
    stamp[rw] = epoch;
    merged += uf.component_size(rw);
    for (const NodeId v : g.neighbors(w)) {
      const NodeId r = uf.find(v);
      if (stamp[r] != epoch) {
        stamp[r] = epoch;
        merged += uf.component_size(r);
      }
    }
    return merged;
  };

  for (std::uint32_t round = 0; round < budget; ++round) {
    NodeId best = bsr::graph::kUnreachable;
    std::uint32_t best_gain = 0;
    for (NodeId w = 0; w < n; ++w) {
      if (is_broker[w]) continue;
      const auto gain = gain_of(w);
      if (gain > best_gain) {
        best_gain = gain;
        best = w;
      }
    }
    if (best == bsr::graph::kUnreachable) break;
    is_broker[best] = true;
    repaired.add(best);
    for (const NodeId v : g.neighbors(best)) uf.unite(best, v);
  }
  return repaired;
}

}  // namespace bsr::broker
