// Microbenchmarks for the complexity claims of §4-§5.
//
//   * MaxSG:        O(k (|V| + |E|))          (Algorithm 3)
//   * MCBG approx:  O(k² (|V| log |V| + |E|)) (Algorithm 2; BFS variant)
//   * greedy MCB:   near-linear with lazy evaluation (Algorithm 1)
// Runs each algorithm over a range of scaled Internet topologies so the
// scaling exponent is visible in the reported times.
#include <benchmark/benchmark.h>

#include "broker/dominated.hpp"
#include "broker/greedy_mcb.hpp"
#include "broker/maxsg.hpp"
#include "broker/mcbg_approx.hpp"
#include "graph/bfs.hpp"
#include "topology/internet.hpp"

namespace {

const bsr::topology::InternetTopology& topo_for_scale(int permille) {
  static std::map<int, bsr::topology::InternetTopology> cache;
  auto it = cache.find(permille);
  if (it == cache.end()) {
    auto cfg = bsr::topology::InternetConfig{}.scaled(permille / 1000.0);
    cfg.seed = 424242;
    it = cache.emplace(permille, bsr::topology::make_internet(cfg)).first;
  }
  return it->second;
}

void BM_TopologyGeneration(benchmark::State& state) {
  auto cfg = bsr::topology::InternetConfig{}.scaled(state.range(0) / 1000.0);
  cfg.seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bsr::topology::make_internet(cfg));
  }
  state.SetLabel(std::to_string(cfg.num_ases + cfg.num_ixps) + " vertices");
}
BENCHMARK(BM_TopologyGeneration)->Arg(20)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_Bfs(benchmark::State& state) {
  const auto& topo = topo_for_scale(static_cast<int>(state.range(0)));
  bsr::graph::BfsRunner runner(topo.graph.num_vertices());
  bsr::graph::NodeId source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(topo.graph, source));
    source = (source + 7919) % topo.graph.num_vertices();
  }
}
BENCHMARK(BM_Bfs)->Arg(20)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_GreedyMcb(benchmark::State& state) {
  const auto& topo = topo_for_scale(static_cast<int>(state.range(0)));
  const auto k = static_cast<std::uint32_t>(topo.graph.num_vertices() / 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bsr::broker::greedy_mcb(topo.graph, k));
  }
  state.SetLabel("k=" + std::to_string(k));
}
BENCHMARK(BM_GreedyMcb)->Arg(20)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_MaxSg(benchmark::State& state) {
  const auto& topo = topo_for_scale(static_cast<int>(state.range(0)));
  const auto k = static_cast<std::uint32_t>(topo.graph.num_vertices() / 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bsr::broker::maxsg(topo.graph, k));
  }
  state.SetLabel("k=" + std::to_string(k));
}
BENCHMARK(BM_MaxSg)->Arg(20)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_McbgApprox(benchmark::State& state) {
  const auto& topo = topo_for_scale(static_cast<int>(state.range(0)));
  const auto k = static_cast<std::uint32_t>(topo.graph.num_vertices() / 50);
  bsr::broker::McbgOptions options;
  options.max_roots = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bsr::broker::mcbg_approx(topo.graph, k, options));
  }
  state.SetLabel("k=" + std::to_string(k));
}
BENCHMARK(BM_McbgApprox)->Arg(20)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_SaturatedConnectivity(benchmark::State& state) {
  const auto& topo = topo_for_scale(static_cast<int>(state.range(0)));
  const auto brokers =
      bsr::broker::greedy_mcb(topo.graph, topo.graph.num_vertices() / 100).brokers;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bsr::broker::saturated_connectivity(topo.graph, brokers));
  }
}
BENCHMARK(BM_SaturatedConnectivity)->Arg(20)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
