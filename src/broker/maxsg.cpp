#include "broker/maxsg.hpp"

#include <algorithm>
#include <stdexcept>

#include "broker/coverage.hpp"
#include "graph/bfs.hpp"
#include "graph/components.hpp"
#include "graph/union_find.hpp"

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::graph::UnionFind;

MaxSgResult maxsg(const CsrGraph& g, std::uint32_t k, const MaxSgOptions& options) {
  const NodeId n = g.num_vertices();
  if (n == 0) throw std::invalid_argument("maxsg: empty graph");

  MaxSgResult result;
  result.brokers = BrokerSet(n);
  if (k == 0) return result;

  // Size of the graph's largest (unrestricted) component — the ceiling the
  // dominated component can reach; used for early stopping.
  const std::uint32_t reachable_ceiling =
      bsr::graph::connected_components(g).largest_size();

  UnionFind uf(n);  // components of the dominated subgraph G_B
  std::vector<bool> is_broker(n, false);
  std::uint32_t largest = 0;

  // Stamp-based root dedup: O(deg) per candidate even for 5,000-degree hubs
  // (a scan-based dedup would be O(deg²) there).
  std::vector<std::uint32_t> root_stamp(n, 0);
  std::uint32_t epoch = 0;

  const auto candidate_gain = [&](NodeId w) -> std::uint32_t {
    ++epoch;
    std::uint32_t merged = 0;
    const NodeId rw = uf.find(w);
    root_stamp[rw] = epoch;
    merged += uf.component_size(rw);
    for (const NodeId v : g.neighbors(w)) {
      const NodeId r = uf.find(v);
      if (root_stamp[r] != epoch) {
        root_stamp[r] = epoch;
        merged += uf.component_size(r);
      }
    }
    return merged;
  };

  while (result.brokers.size() < k) {
    // Full sweep: find the candidate whose activation yields the largest
    // merged dominated component. Deterministic tie-break: lowest id.
    NodeId best_vertex = bsr::graph::kUnreachable;
    std::uint32_t best_gain = 0;
    for (NodeId w = 0; w < n; ++w) {
      if (is_broker[w]) continue;
      const std::uint32_t gain = candidate_gain(w);
      if (gain > best_gain) {
        best_gain = gain;
        best_vertex = w;
      }
    }
    if (best_vertex == bsr::graph::kUnreachable) break;

    is_broker[best_vertex] = true;
    result.brokers.add(best_vertex);
    for (const NodeId v : g.neighbors(best_vertex)) uf.unite(best_vertex, v);
    largest = std::max(largest, uf.component_size(best_vertex));
    result.component_curve.push_back(largest);

    if (options.stop_when_dominating && largest >= reachable_ceiling) break;
  }

  result.final_component = largest;
  result.coverage = coverage(g, result.brokers);
  return result;
}

}  // namespace bsr::broker
