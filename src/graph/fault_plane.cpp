#include "graph/fault_plane.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/check.hpp"
#include "graph/graph_builder.hpp"
#include "obs/journal.hpp"

namespace bsr::graph {

FailureGroup incident_group(const CsrGraph& g, NodeId center) {
  BSR_DCHECK(center < g.num_vertices());
  FailureGroup group;
  group.center = center;
  group.edges.reserve(g.degree(center));
  for (const NodeId v : g.neighbors(center)) {
    group.edges.push_back(Edge{std::min(center, v), std::max(center, v)});
  }
  return group;
}

FailureGroup region_group(const CsrGraph& g, std::span<const NodeId> region) {
  FailureGroup group;
  if (region.empty()) return group;
  group.center = region.front();
  std::vector<bool> in_region(g.num_vertices(), false);
  for (const NodeId v : region) {
    BSR_DCHECK(v < g.num_vertices());
    in_region[v] = true;
  }
  for (const NodeId u : region) {
    for (const NodeId v : g.neighbors(u)) {
      // Emit each edge once: intra-region edges from the smaller endpoint,
      // boundary edges from the region side.
      if (in_region[v] && !(u < v)) continue;
      group.edges.push_back(Edge{std::min(u, v), std::max(u, v)});
    }
  }
  return group;
}

FaultPlane::FaultPlane(const CsrGraph& g) : graph_(&g) {
  const NodeId n = g.num_vertices();
  slot_begin_.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) slot_begin_[v + 1] = slot_begin_[v] + g.degree(v);
  edge_id_.assign(slot_begin_[n], 0);
  edge_down_.assign(g.num_edges(), 0);
  node_down_.assign(n, 0);

  // Canonical edge ids in (u, v), u < v enumeration order. The mirror slot
  // (v, u) copies the id assigned when u's adjacency was scanned.
  std::uint64_t next = 0;
  for (NodeId u = 0; u < n; ++u) {
    const auto nbrs = g.neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      if (u < v) {
        edge_id_[slot_begin_[u] + i] = next++;
      } else {
        const std::uint64_t mirror = slot_of(v, u);
        BSR_DCHECK(mirror != kNoSlot);
        edge_id_[slot_begin_[u] + i] = edge_id_[mirror];
      }
    }
  }
}

std::uint64_t FaultPlane::slot_of(NodeId u, NodeId v) const noexcept {
  const auto nbrs = graph_->neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return kNoSlot;
  return slot_begin_[u] + static_cast<std::uint64_t>(it - nbrs.begin());
}

bool FaultPlane::fail_edge(NodeId u, NodeId v) {
  if (u >= graph_->num_vertices() || v >= graph_->num_vertices()) return false;
  const std::uint64_t slot = slot_of(u, v);
  if (slot == kNoSlot) return false;
  auto& depth = edge_down_[edge_id_[slot]];
  ++depth;
  if (depth == 1) {
    ++failed_edges_;
    return true;
  }
  return false;
}

bool FaultPlane::heal_edge(NodeId u, NodeId v) {
  if (u >= graph_->num_vertices() || v >= graph_->num_vertices()) return false;
  const std::uint64_t slot = slot_of(u, v);
  if (slot == kNoSlot) return false;
  auto& depth = edge_down_[edge_id_[slot]];
  if (depth == 0) return false;
  --depth;
  if (depth == 0) {
    --failed_edges_;
    return true;
  }
  return false;
}

bool FaultPlane::fail_vertex(NodeId v) {
  BSR_DCHECK(v < node_down_.size());
  auto& depth = node_down_[v];
  ++depth;
  if (depth == 1) {
    ++failed_vertices_;
    return true;
  }
  return false;
}

bool FaultPlane::heal_vertex(NodeId v) {
  BSR_DCHECK(v < node_down_.size());
  auto& depth = node_down_[v];
  if (depth == 0) return false;
  --depth;
  if (depth == 0) {
    --failed_vertices_;
    return true;
  }
  return false;
}

std::size_t FaultPlane::fail_group(const FailureGroup& group) {
  std::size_t newly_down = 0;
  for (const Edge& e : group.edges) {
    // Group edges are canonical (u < v) and in range by construction; a
    // violation means the group was built against a different graph.
    BSR_DCHECK(e.u < e.v && e.v < graph_->num_vertices());
    if (fail_edge(e.u, e.v)) ++newly_down;
  }
  // Stamped at the journal clock: the plane has no notion of simulated time,
  // but the sim loop driving it does (BSR_EVENT_TIME).
  BSR_EVENT_NOW(FaultGroupFail, group.center, newly_down);
  return newly_down;
}

std::size_t FaultPlane::heal_group(const FailureGroup& group) {
  std::size_t newly_up = 0;
  for (const Edge& e : group.edges) {
    BSR_DCHECK(e.u < e.v && e.v < graph_->num_vertices());
    if (heal_edge(e.u, e.v)) ++newly_up;
  }
  BSR_EVENT_NOW(FaultGroupHeal, group.center, newly_up);
  return newly_up;
}

void FaultPlane::heal_all() {
  std::fill(edge_down_.begin(), edge_down_.end(), 0u);
  std::fill(node_down_.begin(), node_down_.end(), 0u);
  failed_edges_ = 0;
  failed_vertices_ = 0;
}

bool FaultPlane::edge_ok(NodeId u, NodeId v) const noexcept {
  if (u >= graph_->num_vertices() || v >= graph_->num_vertices()) return false;
  if (node_down_[u] != 0 || node_down_[v] != 0) return false;
  const std::uint64_t slot = slot_of(u, v);
  return slot != kNoSlot && edge_down_[edge_id_[slot]] == 0;
}

EdgeFilter FaultPlane::filter() const {
  return [this](NodeId u, NodeId v) { return edge_ok(u, v); };
}

CsrGraph FaultPlane::materialize() const {
  const NodeId n = graph_->num_vertices();
  GraphBuilder builder(n);
  builder.reserve(graph_->num_edges() - failed_edges_);
  for (NodeId u = 0; u < n; ++u) {
    if (node_down_[u] != 0) continue;
    const auto nbrs = graph_->neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      if (u >= v) continue;  // canonical direction only
      if (node_down_[v] != 0 || !edge_up_at(u, i)) continue;
      builder.add_edge(u, v);
    }
  }
  return builder.build();
}

std::vector<FlapEvent> make_flap_schedule(std::size_t num_groups,
                                          const FlapConfig& config, Rng& rng) {
  if (num_groups == 0) {
    throw std::invalid_argument("make_flap_schedule: no failure groups");
  }
  if (config.outage_rate <= 0.0 || config.mean_downtime <= 0.0 ||
      config.horizon <= 0.0) {
    throw std::invalid_argument(
        "make_flap_schedule: rates/horizon must be positive");
  }
  std::vector<FlapEvent> events;
  double t = rng.exponential(config.outage_rate);
  while (t < config.horizon) {
    const auto group = static_cast<std::size_t>(rng.uniform(num_groups));
    events.push_back({t, group, FlapEvent::Kind::kFail});
    const double heal_at = t + rng.exponential(1.0 / config.mean_downtime);
    events.push_back({heal_at, group, FlapEvent::Kind::kHeal});
    t += rng.exponential(config.outage_rate);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FlapEvent& a, const FlapEvent& b) {
                     return a.time < b.time;
                   });
  return events;
}

void apply_flap_event(FaultPlane& plane, std::span<const FailureGroup> groups,
                      const FlapEvent& event) {
  BSR_DCHECK(event.group < groups.size());
  if (event.kind == FlapEvent::Kind::kFail) {
    plane.fail_group(groups[event.group]);
  } else {
    plane.heal_group(groups[event.group]);
  }
}

}  // namespace bsr::graph
