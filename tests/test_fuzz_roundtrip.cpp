// Fuzz-style round-trip tests over randomized instances.
//
// Serialization, edge-list IO and EdgeRelations must survive arbitrary
// generator outputs, not just the default configuration. Each TEST_P draws
// a differently-shaped topology (size, tail, IXP ecosystem all varying with
// the seed) and pushes it through every persistence path. The loader fuzz
// tests then attack the *parser*: truncations, mutated bytes and garbage
// lines must produce std::runtime_error with line context — never a crash
// or a silently-wrong topology. A final group round-trips FaultPlane flap
// schedules (apply/undo back to pristine).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "broker/broker_set.hpp"
#include "broker/dominated.hpp"
#include "graph/fault_plane.hpp"
#include "io/edge_list_io.hpp"
#include "topology/serialization.hpp"

namespace bsr {
namespace {

using bsr::graph::NodeId;

topology::InternetConfig fuzz_config(std::uint64_t seed) {
  bsr::graph::Rng rng(seed);
  auto cfg = topology::InternetConfig{}.scaled(0.004 + 0.02 * rng.uniform01());
  cfg.seed = seed;
  cfg.remote_fraction = 0.15 * rng.uniform01();
  cfg.isolated_fraction = 0.02 * rng.uniform01();
  cfg.ixp_participation = 0.2 + 0.5 * rng.uniform01();
  cfg.stub_content_fraction = 0.3 * rng.uniform01();
  cfg.stub_transit_fraction = 0.2 * rng.uniform01();
  return cfg;
}

class FuzzRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzRoundTripTest, TopologySerializationRoundTrips) {
  const auto topo = topology::make_internet(fuzz_config(GetParam()));
  std::ostringstream oss;
  topology::save_topology(oss, topo);
  std::istringstream iss(oss.str());
  const auto loaded = topology::load_topology(iss);
  EXPECT_EQ(loaded.graph.edges(), topo.graph.edges());
  EXPECT_EQ(loaded.num_ases, topo.num_ases);
  // Relationship labels survive for a sample of edges.
  const auto edges = topo.graph.edges();
  for (std::size_t i = 0; i < edges.size(); i += 97) {
    EXPECT_EQ(loaded.relations.rel_canonical(edges[i].u, edges[i].v),
              topo.relations.rel_canonical(edges[i].u, edges[i].v));
  }
}

TEST_P(FuzzRoundTripTest, EdgeListRoundTrips) {
  const auto topo = topology::make_internet(fuzz_config(GetParam() + 500));
  std::ostringstream oss;
  io::write_edge_list(oss, topo.graph);
  std::istringstream iss(oss.str());
  const auto loaded = io::read_edge_list(iss);
  // Isolated vertices are dropped by the edge-list format (no lines), so
  // compare edge sets after compaction, not vertex counts.
  EXPECT_EQ(loaded.num_edges(), topo.graph.num_edges());
}

TEST_P(FuzzRoundTripTest, GeneratorInvariantsHold) {
  const auto cfg = fuzz_config(GetParam() + 900);
  const auto topo = topology::make_internet(cfg);
  EXPECT_EQ(topo.num_vertices(), cfg.num_ases + cfg.num_ixps);
  // IXPs only peer, and only with ASes.
  for (NodeId ixp = topo.num_ases; ixp < topo.num_vertices(); ++ixp) {
    for (const NodeId m : topo.graph.neighbors(ixp)) {
      ASSERT_LT(m, topo.num_ases);
      ASSERT_TRUE(topo.relations.is_peer(ixp, m));
    }
  }
  // Relationship labels are total: every edge answers queries both ways.
  const auto edges = topo.graph.edges();
  for (std::size_t i = 0; i < edges.size(); i += 131) {
    const auto rel = topo.relations.rel_canonical(edges[i].u, edges[i].v);
    if (rel != topology::EdgeRel::kPeer) {
      EXPECT_NE(topo.relations.is_provider_of(edges[i].u, edges[i].v),
                topo.relations.is_provider_of(edges[i].v, edges[i].u));
    }
  }
}

// --- loader fuzz -------------------------------------------------------------

std::string serialized_fixture(std::uint64_t seed) {
  const auto topo = topology::make_internet(fuzz_config(seed));
  std::ostringstream oss;
  topology::save_topology(oss, topo);
  return oss.str();
}

/// The loader's contract under attack: either it accepts the input (benign
/// mutation) or it throws std::runtime_error carrying line context. Nothing
/// else — no other exception type, no crash, no silent partial load.
void expect_loads_or_rejects_with_context(const std::string& text) {
  std::istringstream iss(text);
  try {
    const auto topo = topology::load_topology(iss);
    EXPECT_EQ(topo.num_vertices(), topo.meta.size());
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("line "), std::string::npos)
        << "loader error lacks line context: " << error.what();
  }
}

TEST_P(FuzzRoundTripTest, LoaderSurvivesTruncation) {
  const std::string text = serialized_fixture(GetParam() + 1100);
  bsr::graph::Rng rng(GetParam() + 1);
  for (int trial = 0; trial < 40; ++trial) {
    // Byte-level truncation: mid-line cuts must be rejected with context;
    // a cut at an edge-line boundary is a legal (smaller) topology.
    const auto cut = rng.uniform(text.size());
    expect_loads_or_rejects_with_context(text.substr(0, cut));
  }
  // Cutting inside the node section always under-delivers on the counts
  // promise: the error must say so.
  const auto nodes_start = text.find("\nnode ");
  ASSERT_NE(nodes_start, std::string::npos);
  std::istringstream iss(text.substr(0, nodes_start + 1));
  try {
    (void)topology::load_topology(iss);
    FAIL() << "loader accepted a file with zero of the promised node lines";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("counts promised"), std::string::npos)
        << error.what();
  }
}

TEST_P(FuzzRoundTripTest, LoaderSurvivesByteMutations) {
  const std::string text = serialized_fixture(GetParam() + 1200);
  bsr::graph::Rng rng(GetParam() + 2);
  const std::string alphabet = "0123456789abcdefXYZ -#\t";
  for (int trial = 0; trial < 60; ++trial) {
    std::string mutated = text;
    const auto pos = rng.uniform(mutated.size());
    mutated[pos] = alphabet[rng.uniform(alphabet.size())];
    expect_loads_or_rejects_with_context(mutated);
  }
}

TEST_P(FuzzRoundTripTest, LoaderRejectsGarbageLines) {
  const std::string text = serialized_fixture(GetParam() + 1250);
  bsr::graph::Rng rng(GetParam() + 3);
  for (int trial = 0; trial < 20; ++trial) {
    // Inject a non-comment garbage line at a random line boundary: every
    // section demands a recognized tag, so this must always be rejected.
    std::string mutated = text;
    const auto pos = rng.uniform(mutated.size());
    const auto insert_at = mutated.find('\n', pos);
    if (insert_at == std::string::npos) continue;
    mutated.insert(insert_at + 1, "lorem ipsum 42\n");
    std::istringstream iss(mutated);
    EXPECT_THROW((void)topology::load_topology(iss), std::runtime_error);
  }
}

TEST(LoaderHardeningTest, RejectsSpecificCorruptions) {
  const auto reject = [](const std::string& text, const std::string& needle) {
    std::istringstream iss(text);
    try {
      (void)topology::load_topology(iss);
      FAIL() << "accepted: " << text.substr(0, 60);
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
          << "wanted \"" << needle << "\" in: " << error.what();
    }
  };
  const std::string magic = "brokerset-topology v1\n";
  reject("", "magic");
  reject("not-the-magic\n", "magic");
  reject(magic, "counts");
  reject(magic + "counts 1 nope\n", "counts");
  reject(magic + "counts 1 0 extra\n", "trailing");
  reject(magic + "counts -1 2\n", "negative or overflow");
  reject(magic + "counts 4294967295 4294967295\n", "negative or overflow");
  reject(magic + "counts 2 0\nnode 0 0 0\n", "counts promised");
  reject(magic + "counts 2 0\nnode 0 0 0\nnode -1 0 0\n", "out of range");
  reject(magic + "counts 2 0\nnode 0 0 0\nnode 0 0 0\n", "duplicate node");
  reject(magic + "counts 2 0\nnode 0 0 0\nnode 1 9 0\n", "node type");
  reject(magic + "counts 2 0\nnode 0 0 0\nnode 1 0 0 junk\n", "trailing");
  const std::string two_nodes = magic + "counts 2 0\nnode 0 0 0\nnode 1 0 0\n";
  reject(two_nodes + "edge 1 0 0\n", "edge ids invalid");
  reject(two_nodes + "edge 0 5 0\n", "edge ids invalid");
  reject(two_nodes + "edge 0 1 7\n", "bad relationship");
  reject(two_nodes + "edge 0 1 0 junk\n", "trailing");
  reject(two_nodes + "edge 0 1 0\nedge 0 1 0\n", "duplicate edges");

  // The happy path with comments and CR line endings still loads.
  std::istringstream ok(magic + "# comment\r\ncounts 2 0\r\nnode 0 0 0\r\n"
                                "node 1 0 0\r\nedge 0 1 0\r\n");
  const auto topo = topology::load_topology(ok);
  EXPECT_EQ(topo.num_vertices(), 2u);
  EXPECT_EQ(topo.graph.num_edges(), 1u);
}

// --- fault-plane flap-schedule round-trips -----------------------------------

TEST_P(FuzzRoundTripTest, FlapScheduleRoundTripsToPristine) {
  const auto topo = topology::make_internet(fuzz_config(GetParam() + 1300));
  const auto& g = topo.graph;
  std::vector<NodeId> members;
  for (NodeId v = 0; v < std::min<NodeId>(10, g.num_vertices()); ++v) {
    members.push_back(v);
  }
  const broker::BrokerSet brokers(g.num_vertices(), members);
  const double baseline = broker::saturated_connectivity(g, brokers);

  std::vector<graph::FailureGroup> groups;
  for (NodeId v = 0; v < std::min<NodeId>(12, g.num_vertices()); ++v) {
    groups.push_back(graph::incident_group(g, v));
  }
  bsr::graph::Rng rng(GetParam() + 4);
  graph::FlapConfig config;
  config.outage_rate = 2.0;
  config.mean_downtime = 4.0;
  config.horizon = 50.0;
  const auto schedule = graph::make_flap_schedule(groups.size(), config, rng);
  ASSERT_FALSE(schedule.empty());

  // Applying the full schedule (every kFail paired with a kHeal) returns
  // the plane to pristine, bit-for-bit: refcounts, counters, connectivity.
  graph::FaultPlane plane(g);
  for (const auto& event : schedule) {
    graph::apply_flap_event(plane, groups, event);
  }
  EXPECT_TRUE(plane.pristine());
  EXPECT_EQ(plane.num_failed_edges(), 0u);
  EXPECT_DOUBLE_EQ(broker::saturated_connectivity(g, brokers, plane), baseline);

  // Any prefix, manually healed back: count outstanding fails per group and
  // undo them — again pristine, again baseline connectivity.
  const std::size_t prefix = schedule.size() / 2;
  std::vector<int> outstanding(groups.size(), 0);
  for (std::size_t i = 0; i < prefix; ++i) {
    graph::apply_flap_event(plane, groups, schedule[i]);
    outstanding[schedule[i].group] +=
        schedule[i].kind == graph::FlapEvent::Kind::kFail ? 1 : -1;
  }
  for (std::size_t group = 0; group < groups.size(); ++group) {
    ASSERT_GE(outstanding[group], 0);
    for (int undo = 0; undo < outstanding[group]; ++undo) {
      plane.heal_group(groups[group]);
    }
  }
  EXPECT_TRUE(plane.pristine());
  EXPECT_DOUBLE_EQ(broker::saturated_connectivity(g, brokers, plane), baseline);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzRoundTripTest,
                         ::testing::Values(1001, 2002, 3003, 4004, 5005, 6006,
                                           7007, 8008));

}  // namespace
}  // namespace bsr
