#include "graph/betweenness.hpp"

#include <algorithm>
#include <numeric>

#include "graph/bfs.hpp"
#include "graph/sampling.hpp"

namespace bsr::graph {

namespace {

/// One Brandes pivot: accumulates pair dependencies of `source` into
/// `score`. Scratch buffers are caller-owned to avoid reallocation.
struct BrandesScratch {
  std::vector<NodeId> order;            // vertices in BFS visit order
  std::vector<std::uint32_t> distance;  // hop distance
  std::vector<double> sigma;            // # shortest paths from source
  std::vector<double> delta;            // dependency accumulator

  explicit BrandesScratch(NodeId n)
      : distance(n), sigma(n), delta(n) {
    order.reserve(n);
  }
};

void brandes_pivot(const CsrGraph& g, NodeId source, BrandesScratch& scratch,
                   std::vector<double>& score) {
  constexpr auto kInf = kUnreachable;
  auto& [order, distance, sigma, delta] = scratch;
  order.clear();
  std::fill(distance.begin(), distance.end(), kInf);
  std::fill(sigma.begin(), sigma.end(), 0.0);
  std::fill(delta.begin(), delta.end(), 0.0);

  distance[source] = 0;
  sigma[source] = 1.0;
  order.push_back(source);
  for (std::size_t head = 0; head < order.size(); ++head) {
    const NodeId u = order[head];
    for (const NodeId v : g.neighbors(u)) {
      if (distance[v] == kInf) {
        distance[v] = distance[u] + 1;
        order.push_back(v);
      }
      if (distance[v] == distance[u] + 1) sigma[v] += sigma[u];
    }
  }
  // Reverse order: accumulate dependencies.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId w = *it;
    for (const NodeId v : g.neighbors(w)) {
      if (distance[v] + 1 == distance[w]) {
        delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
      }
    }
    if (w != source) score[w] += delta[w];
  }
}

}  // namespace

std::vector<double> betweenness(const CsrGraph& g, Rng& rng,
                                std::size_t num_sources) {
  const NodeId n = g.num_vertices();
  std::vector<double> score(n, 0.0);
  if (n < 3) return score;

  std::vector<NodeId> sources;
  if (num_sources >= n) {
    sources.resize(n);
    std::iota(sources.begin(), sources.end(), NodeId{0});
  } else {
    sources = sample_distinct(rng, n, static_cast<NodeId>(num_sources));
  }

  BrandesScratch scratch(n);
  for (const NodeId s : sources) brandes_pivot(g, s, scratch, score);

  // Scale to full-pivot expectation; halve because each undirected pair is
  // counted from both endpoints under full pivoting.
  const double scale =
      static_cast<double>(n) / static_cast<double>(sources.size()) / 2.0;
  for (double& value : score) value *= scale;
  return score;
}

std::vector<double> betweenness_exact(const CsrGraph& g) {
  Rng unused(0);
  return betweenness(g, unused, g.num_vertices());
}

std::vector<NodeId> vertices_by_betweenness_desc(const CsrGraph& g, Rng& rng,
                                                 std::size_t num_sources) {
  const auto score = betweenness(g, rng, num_sources);
  std::vector<NodeId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), NodeId{0});
  std::stable_sort(order.begin(), order.end(), [&score](NodeId a, NodeId b) {
    if (score[a] != score[b]) return score[a] > score[b];
    return a < b;
  });
  return order;
}

}  // namespace bsr::graph
