#include "graph/clustering.hpp"

#include <algorithm>

#include "graph/sampling.hpp"

namespace bsr::graph {

namespace {

/// Number of edges among the neighbors of v (= triangles through v), via
/// sorted-list intersection of v's adjacency with each neighbor's.
std::uint64_t wedges_closed_at(const CsrGraph& g, NodeId v) {
  const auto nbrs = g.neighbors(v);
  std::uint64_t closed = 0;
  for (const NodeId u : nbrs) {
    // Count |N(v) ∩ N(u)| by merging the two sorted lists; halve later
    // (each neighbor-edge found from both endpoints).
    const auto other = g.neighbors(u);
    auto a = nbrs.begin();
    auto b = other.begin();
    while (a != nbrs.end() && b != other.end()) {
      if (*a < *b) {
        ++a;
      } else if (*b < *a) {
        ++b;
      } else {
        ++closed;
        ++a;
        ++b;
      }
    }
  }
  return closed / 2;  // every neighbor-pair edge was seen twice
}

double local_of(const CsrGraph& g, NodeId v) {
  const auto degree = g.degree(v);
  if (degree < 2) return 0.0;
  const double possible = static_cast<double>(degree) * (degree - 1) / 2.0;
  return static_cast<double>(wedges_closed_at(g, v)) / possible;
}

}  // namespace

std::vector<double> local_clustering(const CsrGraph& g) {
  std::vector<double> out(g.num_vertices(), 0.0);
  for (NodeId v = 0; v < g.num_vertices(); ++v) out[v] = local_of(g, v);
  return out;
}

double average_clustering(const CsrGraph& g) {
  if (g.num_vertices() == 0) return 0.0;
  const auto local = local_clustering(g);
  double sum = 0.0;
  for (const double c : local) sum += c;
  return sum / static_cast<double>(g.num_vertices());
}

double average_clustering_sampled(const CsrGraph& g, Rng& rng, std::size_t samples) {
  const NodeId n = g.num_vertices();
  if (n == 0) return 0.0;
  if (samples >= n) return average_clustering(g);
  const auto picks = sample_distinct(rng, n, static_cast<NodeId>(samples));
  double sum = 0.0;
  for (const NodeId v : picks) sum += local_of(g, v);
  return sum / static_cast<double>(picks.size());
}

std::uint64_t triangle_count(const CsrGraph& g) {
  // Each triangle is closed at all three of its vertices.
  std::uint64_t total = 0;
  for (NodeId v = 0; v < g.num_vertices(); ++v) total += wedges_closed_at(g, v);
  return total / 3;
}

}  // namespace bsr::graph
