#include "broker/resilience.hpp"

#include <algorithm>
#include <stdexcept>

#include "broker/dominated.hpp"
#include "graph/check.hpp"
#include "graph/engine.hpp"
#include "graph/union_find.hpp"

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::graph::Rng;
using bsr::graph::UnionFind;

namespace engine = bsr::graph::engine;

BrokerSet fail_brokers(const CsrGraph& g, const BrokerSet& b, std::size_t failures,
                       FailureMode mode, Rng& rng) {
  if (b.num_vertices() != g.num_vertices()) {
    throw std::invalid_argument("fail_brokers: size mismatch");
  }
  std::vector<NodeId> members(b.members().begin(), b.members().end());
  std::vector<NodeId> doomed;
  if (failures >= members.size()) {
    // failures >= |B| (including |B| == 0): nobody survives, and the rng is
    // deliberately not consumed — the outcome has no randomness left in it.
    doomed = members;
  } else if (mode == FailureMode::kRandom) {
    // Partial Fisher-Yates over a copy.
    std::vector<NodeId> pool = members;
    for (std::size_t i = 0; i < failures; ++i) {
      const std::size_t j = i + rng.uniform(pool.size() - i);
      std::swap(pool[i], pool[j]);
      doomed.push_back(pool[i]);
    }
  } else {
    // Adversarial order: highest degree first, ties broken by lowest NodeId
    // so equal-degree brokers die in a deterministic order.
    std::vector<NodeId> sorted = members;
    std::stable_sort(sorted.begin(), sorted.end(), [&g](NodeId a, NodeId b2) {
      if (g.degree(a) != g.degree(b2)) return g.degree(a) > g.degree(b2);
      return a < b2;
    });
    doomed.assign(sorted.begin(),
                  sorted.begin() + static_cast<std::ptrdiff_t>(failures));
  }
  BSR_DCHECK(doomed.size() == std::min(failures, members.size()));

  std::vector<bool> dead(g.num_vertices(), false);
  for (const NodeId v : doomed) dead[v] = true;
  BrokerSet survivors(g.num_vertices());
  for (const NodeId v : members) {
    if (!dead[v]) survivors.add(v);
  }
  return survivors;
}

ResilienceCurve resilience_curve(const CsrGraph& g, const BrokerSet& b,
                                 std::span<const std::size_t> failure_steps,
                                 FailureMode mode, Rng& rng) {
  ResilienceCurve curve;
  for (const std::size_t failures : failure_steps) {
    const BrokerSet survivors = fail_brokers(g, b, failures, mode, rng);
    curve.failures.push_back(failures);
    curve.connectivity.push_back(saturated_connectivity(g, survivors));
  }
  return curve;
}

namespace {

using bsr::graph::FailureGroup;
using bsr::graph::FaultPlane;

/// MaxSG-style greedy repair seeded with the survivors. The edge filter is a
/// template parameter so the fault checks fold into the scan loops (AllEdges
/// on the pristine graph, FaultAwareFilter under damage); like maxsg(), each
/// round snapshots the union-find into flat root/size arrays so candidate
/// gains are array loads, not find() chains.
template <class Filter>
BrokerSet repair_sweep(const CsrGraph& g, const BrokerSet& survivors,
                       std::uint32_t budget, const FaultPlane* faults,
                       Filter admit) {
  const NodeId n = g.num_vertices();
  BSR_DCHECK(survivors.num_vertices() == n);
  BrokerSet repaired = survivors;

  const auto vertex_ok = [&](NodeId v) {
    return faults == nullptr || faults->vertex_ok(v);
  };

  UnionFind uf(n);
  std::vector<bool> is_broker(n, false);
  for (const NodeId b : survivors.members()) {
    is_broker[b] = true;
    if (vertex_ok(b)) engine::unite_star(g, uf, b, admit);
  }

  std::vector<NodeId> root_of(n);
  std::vector<std::uint32_t> size_of(n);
  std::vector<std::uint32_t> stamp(n, 0);
  std::uint32_t epoch = 0;
  const auto gain_of = [&](NodeId w) {
    ++epoch;
    std::uint32_t merged = 0;
    const NodeId rw = root_of[w];
    stamp[rw] = epoch;
    merged += size_of[rw];
    const auto nbrs = g.neighbors(w);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      if (!admit(w, i, v)) continue;
      const NodeId r = root_of[v];
      if (stamp[r] != epoch) {
        stamp[r] = epoch;
        merged += size_of[r];
      }
    }
    return merged;
  };

  for (std::uint32_t round = 0; round < budget; ++round) {
    for (NodeId v = 0; v < n; ++v) root_of[v] = uf.find(v);
    for (NodeId v = 0; v < n; ++v) {
      if (root_of[v] == v) size_of[v] = uf.root_size(v);
    }
    NodeId best = bsr::graph::kUnreachable;
    std::uint32_t best_gain = 0;
    for (NodeId w = 0; w < n; ++w) {
      if (is_broker[w] || !vertex_ok(w)) continue;
      const auto gain = gain_of(w);
      if (gain > best_gain) {
        best_gain = gain;
        best = w;
      }
    }
    if (best == bsr::graph::kUnreachable) break;
    is_broker[best] = true;
    repaired.add(best);
    engine::unite_star(g, uf, best, admit);
  }
  return repaired;
}

BrokerSet repair_impl(const CsrGraph& g, const BrokerSet& survivors,
                      std::uint32_t budget, const FaultPlane* faults) {
  if (survivors.num_vertices() != g.num_vertices()) {
    throw std::invalid_argument("repair_brokers: size mismatch");
  }
  if (faults == nullptr) {
    return repair_sweep(g, survivors, budget, nullptr, engine::AllEdges{});
  }
  return repair_sweep(g, survivors, budget, faults,
                      engine::FaultAwareFilter{faults});
}

}  // namespace

BrokerSet repair_brokers(const CsrGraph& g, const BrokerSet& survivors,
                         std::uint32_t budget) {
  return repair_impl(g, survivors, budget, nullptr);
}

BrokerSet repair_brokers(const CsrGraph& g, const BrokerSet& survivors,
                         std::uint32_t budget, const FaultPlane& faults) {
  if (&faults.graph() != &g) {
    throw std::invalid_argument("repair_brokers: fault plane bound to another graph");
  }
  return repair_impl(g, survivors, budget, &faults);
}

ResilienceCurve resilience_curve(const CsrGraph& g, const BrokerSet& b,
                                 std::span<const FailureGroup> groups,
                                 std::span<const std::size_t> steps, Rng& rng) {
  if (b.num_vertices() != g.num_vertices()) {
    throw std::invalid_argument("resilience_curve: size mismatch");
  }
  // Same nested-prefix discipline as link_resilience_curve: one shuffled
  // outage order shared by every step, so damage only accumulates.
  std::vector<std::size_t> order(groups.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform(i)]);
  }

  ResilienceCurve curve;
  FaultPlane plane(g);
  for (const std::size_t step : steps) {
    const std::size_t failed = std::min(step, groups.size());
    plane.heal_all();
    for (std::size_t i = 0; i < failed; ++i) plane.fail_group(groups[order[i]]);
    curve.failures.push_back(failed);
    curve.connectivity.push_back(saturated_connectivity(g, b, plane));
  }
  return curve;
}

LinkResilienceCurve link_resilience_curve(const CsrGraph& g, const BrokerSet& b,
                                          std::span<const FailureGroup> groups,
                                          std::span<const std::size_t> steps,
                                          std::uint32_t repair_budget, Rng& rng) {
  if (b.num_vertices() != g.num_vertices()) {
    throw std::invalid_argument("link_resilience_curve: size mismatch");
  }
  // Deterministic outage order shared by every step: step s fails the
  // prefix of length s, so curves are nested (connectivity non-increasing).
  std::vector<std::size_t> order(groups.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform(i)]);
  }

  LinkResilienceCurve curve;
  FaultPlane plane(g);
  for (const std::size_t step : steps) {
    const std::size_t failed = std::min(step, groups.size());
    plane.heal_all();
    for (std::size_t i = 0; i < failed; ++i) plane.fail_group(groups[order[i]]);

    LinkResiliencePoint point;
    point.failed_groups = failed;
    point.failed_edges = plane.num_failed_edges();
    point.connectivity = saturated_connectivity(g, b, plane);
    const BrokerSet repaired = repair_impl(g, b, repair_budget, &plane);
    point.repaired_connectivity = saturated_connectivity(g, repaired, plane);
    curve.points.push_back(point);
  }
  return curve;
}

std::vector<FailureGroup> random_link_groups(const CsrGraph& g, std::size_t count,
                                             Rng& rng) {
  auto edges = g.edges();
  count = std::min(count, edges.size());
  std::vector<FailureGroup> groups;
  groups.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + rng.uniform(edges.size() - i);
    std::swap(edges[i], edges[j]);
    FailureGroup group;
    group.center = edges[i].u;
    group.edges = {edges[i]};
    groups.push_back(std::move(group));
  }
  return groups;
}

}  // namespace bsr::broker
