// Algorithm 1 — greedy Maximum Coverage with broker set B (MCB problem).
//
// Classic Nemhauser-Wolsey-Fisher greedy: repeatedly add the vertex with the
// largest marginal coverage gain. Since f(B) = |B ∪ N(B)| is monotone
// submodular (Lemma 3), this is a (1 - 1/e)-approximation (Lemma 4) and the
// best possible ratio unless P = NP (Lemma 5). We use lazy evaluation:
// stale gains sit in a max-heap and are only recomputed when popped, which
// in practice turns O(k|V|) gain evaluations into nearly O(|V| log |V|).
//
// The initial full gain pass (the only O(|E|) step) is sharded across
// BSR_THREADS workers; gains are integers written to disjoint slots and
// pushed into the heap in ascending-id order afterwards, so the heap — and
// therefore the selection — is bit-identical at any thread count.
#pragma once

#include <cstdint>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"

namespace bsr::graph {
class Renumbering;
}  // namespace bsr::graph

namespace bsr::broker {

struct GreedyMcbResult {
  BrokerSet brokers;            // members in selection order
  std::uint32_t coverage = 0;   // f(B) after the last pick
  /// coverage after each pick (coverage_curve[i] = f of first i+1 members) —
  /// a single run yields the whole k sweep.
  std::vector<std::uint32_t> coverage_curve;
};

/// Greedy MCB for budget k. Stops early when everything is covered.
/// When `renumbering` is non-null, `g` is a locality-renumbered graph and
/// the result carries ORIGINAL ids, bit-identical to the un-renumbered run
/// (heap order and tie-breaks are keyed on original ids).
/// Throws std::invalid_argument for an empty graph or a size-mismatched
/// renumbering.
[[nodiscard]] GreedyMcbResult greedy_mcb(
    const bsr::graph::CsrGraph& g, std::uint32_t k,
    const bsr::graph::Renumbering* renumbering = nullptr);

}  // namespace bsr::broker
