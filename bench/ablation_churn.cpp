// Ablation: connectivity under continuous broker churn with periodic repair.
//
// The operator question behind §7's coalition stability: if members keep
// leaving (Poisson departures) and maintenance runs on a schedule with a
// bounded recruitment budget, where does E2E connectivity settle, and how
// deep are the dips between repairs?
#include <iostream>

#include "bench_common.hpp"
#include "broker/dominated.hpp"
#include "broker/maxsg.hpp"
#include "sim/churn.hpp"

int main() {
  auto ctx = bsr::bench::make_context("Ablation: broker churn with periodic repair");
  const auto& g = ctx.topo.graph;

  const std::uint32_t k = ctx.env.scaled(1000, 10);
  const auto brokers = bsr::broker::maxsg(g, k).brokers;
  const double baseline = bsr::broker::saturated_connectivity(g, brokers);
  std::cout << "initial set: " << brokers.size() << " brokers, connectivity "
            << bsr::io::format_percent(baseline) << "%\n";

  bsr::io::Table table({"departures/unit", "repair budget", "min conn",
                        "time-weighted mean", "departures", "replacements"});
  for (const double rate : {0.5, 2.0}) {
    for (const std::uint32_t budget : {0u, 2u, 8u}) {
      bsr::sim::ChurnConfig config;
      config.departure_rate = rate;
      config.repair_interval = 10.0;
      config.repair_budget = budget;
      config.horizon = 120.0;
      bsr::graph::Rng rng(ctx.env.seed + 15);
      const auto result = bsr::sim::simulate_churn(g, brokers, config, rng);
      table.row()
          .cell(rate, 1)
          .cell(std::uint64_t{budget})
          .percent(result.min_connectivity)
          .percent(result.mean_connectivity)
          .cell(static_cast<std::uint64_t>(result.departures))
          .cell(static_cast<std::uint64_t>(result.replacements_added));
    }
  }
  table.print(std::cout);
  std::cout << "(a small periodic recruitment budget holds the line even "
               "under heavy churn — the alliance's redundancy does the rest)\n";
  return 0;
}
