#include "broker/weighted.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "broker/dominated.hpp"
#include "graph/engine.hpp"
#include "graph/union_find.hpp"

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::graph::UnionFind;

namespace engine = bsr::graph::engine;

namespace {

void validate_weights(const CsrGraph& g, std::span<const double> weight) {
  if (weight.size() != g.num_vertices()) {
    throw std::invalid_argument("weighted broker ops: weight size mismatch");
  }
  for (const double w : weight) {
    if (w < 0.0) throw std::invalid_argument("weighted broker ops: negative weight");
  }
}

}  // namespace

double weighted_coverage(const CsrGraph& g, const BrokerSet& b,
                         std::span<const double> weight) {
  validate_weights(g, weight);
  auto& ws = engine::tls_workspace();
  ws.begin_marks(g.num_vertices());
  double total = 0.0;
  for (const NodeId v : b.members()) {
    if (ws.mark(v)) total += weight[v];
    for (const NodeId w : g.neighbors(v)) {
      if (ws.mark(w)) total += weight[w];
    }
  }
  return total;
}

WeightedGreedyResult weighted_greedy_mcb(const CsrGraph& g, std::uint32_t k,
                                         std::span<const double> weight) {
  if (g.num_vertices() == 0) {
    throw std::invalid_argument("weighted_greedy_mcb: empty graph");
  }
  validate_weights(g, weight);

  WeightedGreedyResult result;
  result.brokers = BrokerSet(g.num_vertices());
  if (k == 0) return result;

  std::vector<bool> covered(g.num_vertices(), false);
  std::vector<bool> is_broker(g.num_vertices(), false);
  double covered_weight = 0.0;

  const auto gain_of = [&](NodeId v) {
    double gain = covered[v] ? 0.0 : weight[v];
    for (const NodeId w : g.neighbors(v)) {
      if (!covered[w]) gain += weight[w];
    }
    return gain;
  };

  struct Entry {
    double gain;
    NodeId vertex;
    std::uint32_t stamp;
    bool operator<(const Entry& other) const {
      if (gain != other.gain) return gain < other.gain;
      return vertex > other.vertex;
    }
  };
  std::priority_queue<Entry> heap;
  for (NodeId v = 0; v < g.num_vertices(); ++v) heap.push({gain_of(v), v, 0});

  std::uint32_t round = 0;
  while (result.brokers.size() < k && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (is_broker[top.vertex]) continue;
    if (top.stamp != round) {
      top.gain = gain_of(top.vertex);
      top.stamp = round;
      if (top.gain > 0.0) heap.push(top);
      continue;
    }
    if (top.gain <= 0.0) break;  // nothing of value left to cover
    is_broker[top.vertex] = true;
    if (!covered[top.vertex]) {
      covered[top.vertex] = true;
      covered_weight += weight[top.vertex];
    }
    for (const NodeId w : g.neighbors(top.vertex)) {
      if (!covered[w]) {
        covered[w] = true;
        covered_weight += weight[w];
      }
    }
    result.brokers.add(top.vertex);
    result.coverage_curve.push_back(covered_weight);
    ++round;
  }
  result.coverage = covered_weight;
  return result;
}

double weighted_saturated_connectivity(const CsrGraph& g, const BrokerSet& b,
                                       std::span<const double> weight) {
  validate_weights(g, weight);
  const NodeId n = g.num_vertices();
  if (n < 2) return 0.0;

  // UnionFind (not Rollback) on purpose: the double sums below are indexed
  // by root id and accumulated in vertex-scan order, so root identity —
  // which both UF flavors derive from the same merge rule — fixes the
  // floating-point result.
  UnionFind uf(n);
  build_dominated_uf(g, b, uf);
  // Σ_{pairs in same component} w_u w_v = Σ_c (S_c² - Q_c) / 2 with
  // S_c = Σ w, Q_c = Σ w² over the component.
  std::vector<double> sum(n, 0.0), sum_sq(n, 0.0);
  double total_weight = 0.0, total_sq = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    const NodeId root = uf.find(v);
    sum[root] += weight[v];
    sum_sq[root] += weight[v] * weight[v];
    total_weight += weight[v];
    total_sq += weight[v] * weight[v];
  }
  double connected = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    if (uf.find(v) == v) connected += (sum[v] * sum[v] - sum_sq[v]) / 2.0;
  }
  const double all_pairs = (total_weight * total_weight - total_sq) / 2.0;
  return all_pairs > 0.0 ? connected / all_pairs : 0.0;
}

WeightedMaxSgResult weighted_maxsg(const CsrGraph& g, std::uint32_t k,
                                   std::span<const double> weight) {
  if (g.num_vertices() == 0) throw std::invalid_argument("weighted_maxsg: empty graph");
  validate_weights(g, weight);

  const NodeId n = g.num_vertices();
  WeightedMaxSgResult result;
  result.brokers = BrokerSet(n);
  if (k == 0) return result;

  UnionFind uf(n);
  // Per-root component weight, maintained alongside the union-find. After
  // unite(), the surviving root's entry must hold the merged total.
  std::vector<double> component_weight(weight.begin(), weight.end());
  std::vector<bool> is_broker(n, false);
  std::vector<std::uint32_t> stamp(n, 0);
  std::uint32_t epoch = 0;
  double heaviest = 0.0;

  // Per-round root/weight snapshot, as in maxsg(): no unions happen during
  // a sweep, so candidate gains are flat array loads. Roots snapshotted
  // before a sweep equal live find() results, so the stamp-dedup visits
  // roots in the same first-encounter order — the double accumulation
  // order (and thus the result) is unchanged.
  std::vector<NodeId> root_of(n);
  std::vector<double> weight_of(n);

  const auto candidate_gain = [&](NodeId w) {
    ++epoch;
    double merged = 0.0;
    const NodeId rw = root_of[w];
    stamp[rw] = epoch;
    merged += weight_of[rw];
    for (const NodeId v : g.neighbors(w)) {
      const NodeId r = root_of[v];
      if (stamp[r] != epoch) {
        stamp[r] = epoch;
        merged += weight_of[r];
      }
    }
    return merged;
  };

  while (result.brokers.size() < k) {
    for (NodeId v = 0; v < n; ++v) root_of[v] = uf.find(v);
    for (NodeId v = 0; v < n; ++v) {
      if (root_of[v] == v) weight_of[v] = component_weight[v];
    }
    NodeId best = bsr::graph::kUnreachable;
    double best_gain = heaviest;  // only picks growing the heaviest component help
    for (NodeId w = 0; w < n; ++w) {
      if (is_broker[w]) continue;
      const double gain = candidate_gain(w);
      if (gain > best_gain) {
        best_gain = gain;
        best = w;
      }
    }
    if (best == bsr::graph::kUnreachable) break;  // no pick improves the objective
    is_broker[best] = true;
    result.brokers.add(best);
    for (const NodeId v : g.neighbors(best)) {
      const NodeId ra = uf.find(best);
      const NodeId rb = uf.find(v);
      if (ra != rb) {
        const double merged = component_weight[ra] + component_weight[rb];
        uf.unite(best, v);
        component_weight[uf.find(best)] = merged;
      }
    }
    heaviest = std::max(heaviest, component_weight[uf.find(best)]);
    result.component_weight_curve.push_back(heaviest);
  }
  result.final_component_weight = heaviest;
  return result;
}

}  // namespace bsr::broker
