// Reproduces Fig. 4 — where brokers sit: network core vs outer ring.
//
// Paper: DB's brokers crowd the core, leaving the edge uncovered; MaxSG
// spreads over the outer ring too. The plotted layout is a visualization;
// the quantitative content is the coreness profile of each selected set and
// the resulting coverage of low-coreness (edge) vertices — which we print.
#include <iostream>

#include "bench_common.hpp"
#include "broker/baselines.hpp"
#include "broker/coverage.hpp"
#include "broker/maxsg.hpp"
#include "graph/kcore.hpp"

int main() {
  auto ctx = bsr::bench::make_context("Fig. 4: broker placement, core vs edge");
  const auto& g = ctx.topo.graph;
  const std::uint32_t k = ctx.env.scaled(3540, 8);

  const auto maxsg = bsr::broker::maxsg(g, k).brokers;
  const auto db = bsr::broker::db_top_degree(
      g, static_cast<std::uint32_t>(maxsg.size()));  // same budget

  const auto core = bsr::graph::coreness(g);
  std::uint32_t max_core = 0;
  for (const auto c : core) max_core = std::max(max_core, c);
  const std::uint32_t core_cut = max_core / 2;

  const auto profile = [&](const bsr::broker::BrokerSet& b) {
    struct {
      std::size_t in_core = 0, at_edge = 0;
      double covered_edge_vertices = 0.0;
    } out;
    for (const auto v : b.members()) {
      (core[v] >= core_cut ? out.in_core : out.at_edge)++;
    }
    // Fraction of low-coreness vertices covered by B ∪ N(B).
    bsr::broker::CoverageTracker tracker(g);
    for (const auto v : b.members()) tracker.add(v);
    std::size_t edge_total = 0, edge_covered = 0;
    for (bsr::graph::NodeId v = 0; v < g.num_vertices(); ++v) {
      if (core[v] > 2) continue;  // the outer ring: coreness <= 2
      ++edge_total;
      if (tracker.is_covered(v)) ++edge_covered;
    }
    out.covered_edge_vertices =
        edge_total ? static_cast<double>(edge_covered) / edge_total : 0.0;
    return out;
  };

  const auto maxsg_profile = profile(maxsg);
  const auto db_profile = profile(db);

  bsr::io::Table table({"Selection", "|B|", "brokers in core", "brokers at edge",
                        "outer-ring vertices covered"});
  table.row()
      .cell("DB (degree-based)")
      .cell(static_cast<std::uint64_t>(db.size()))
      .cell(static_cast<std::uint64_t>(db_profile.in_core))
      .cell(static_cast<std::uint64_t>(db_profile.at_edge))
      .percent(db_profile.covered_edge_vertices);
  table.row()
      .cell("MaxSG")
      .cell(static_cast<std::uint64_t>(maxsg.size()))
      .cell(static_cast<std::uint64_t>(maxsg_profile.in_core))
      .cell(static_cast<std::uint64_t>(maxsg_profile.at_edge))
      .percent(maxsg_profile.covered_edge_vertices);
  table.print(std::cout);
  std::cout << "(core = coreness >= " << core_cut << " of max " << max_core
            << "; paper: DB overcrowds the core, MaxSG also covers the outer "
               "ring)\n";
  return 0;
}
