#include "graph/pagerank.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace bsr::graph {

std::vector<double> pagerank(const CsrGraph& g, const PageRankOptions& options) {
  if (options.damping <= 0.0 || options.damping >= 1.0) {
    throw std::invalid_argument("pagerank: damping must be in (0, 1)");
  }
  if (options.max_iterations <= 0) {
    throw std::invalid_argument("pagerank: max_iterations must be positive");
  }
  const NodeId n = g.num_vertices();
  if (n == 0) return {};

  const double uniform = 1.0 / static_cast<double>(n);
  std::vector<double> rank(n, uniform);
  std::vector<double> next(n, 0.0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling_mass = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      const auto deg = g.degree(u);
      if (deg == 0) {
        dangling_mass += rank[u];
        continue;
      }
      const double share = rank[u] / static_cast<double>(deg);
      for (const NodeId v : g.neighbors(u)) next[v] += share;
    }
    const double base =
        (1.0 - options.damping) * uniform + options.damping * dangling_mass * uniform;
    double delta = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      next[v] = base + options.damping * next[v];
      delta += std::abs(next[v] - rank[v]);
    }
    rank.swap(next);
    if (delta < options.tolerance) break;
  }
  return rank;
}

std::vector<NodeId> vertices_by_pagerank_desc(const CsrGraph& g,
                                              const PageRankOptions& options) {
  const std::vector<double> scores = pagerank(g, options);
  std::vector<NodeId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), NodeId{0});
  std::stable_sort(order.begin(), order.end(), [&scores](NodeId a, NodeId b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  return order;
}

}  // namespace bsr::graph
