#include "broker/pds.hpp"

#include <gtest/gtest.h>

#include "broker/coverage.hpp"
#include "broker/verify.hpp"
#include "test_util.hpp"

namespace bsr::broker {
namespace {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::test::make_complete;
using bsr::test::make_connected_random;
using bsr::test::make_cycle;
using bsr::test::make_path;
using bsr::test::make_star;

TEST(Pds, StarHasSizeOneSolution) {
  const CsrGraph g = make_star(9);
  const auto witness = solve_pds_exact(g, 1);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->size(), 1u);
  EXPECT_TRUE(witness->contains(0));
  EXPECT_TRUE(is_path_dominating_set(g, *witness));
}

TEST(Pds, PathNeedsAlternatingVertices) {
  // Path of 7: PDS needs ~n/2 brokers; k = 2 must fail, k = 3 suffices
  // ({1, 3, 5} covers all and keeps one dominated component).
  const CsrGraph g = make_path(7);
  EXPECT_FALSE(solve_pds_exact(g, 2).has_value());
  const auto witness = solve_pds_exact(g, 3);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(is_path_dominating_set(g, *witness));
}

TEST(Pds, CompleteGraphTrivial) {
  const CsrGraph g = make_complete(6);
  const auto witness = solve_pds_exact(g, 1);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->size(), 1u);
}

TEST(Pds, DisconnectedGraphHasNoSolution) {
  bsr::graph::GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(2, 3);  // vertex 4 isolated, components split
  const CsrGraph g = b.build();
  EXPECT_FALSE(solve_pds_exact(g, 5).has_value());
}

TEST(Pds, IsPathDominatingSetChecks) {
  const CsrGraph g = make_path(5);
  BrokerSet full_coverage_split(5);
  full_coverage_split.add(0);
  full_coverage_split.add(4);
  full_coverage_split.add(2);
  // Covers everything ({0,1} ∪ {3,4} ∪ {1,2,3}) and one component via 2.
  EXPECT_TRUE(is_path_dominating_set(g, full_coverage_split));

  BrokerSet endpoints_only(5);
  endpoints_only.add(0);
  endpoints_only.add(4);
  EXPECT_FALSE(is_path_dominating_set(g, endpoints_only));  // 2 uncovered
}

TEST(Pds, GreedyWitnessIsValid) {
  const CsrGraph g = make_connected_random(60, 0.08, 5);
  const auto witness = solve_pds_greedy(g, 60);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(is_path_dominating_set(g, *witness));
}

TEST(Pds, GreedyRespectsBudget) {
  const CsrGraph g = make_cycle(20);
  // A cycle of 20 needs ~7 brokers; budget 2 must fail.
  EXPECT_FALSE(solve_pds_greedy(g, 2).has_value());
}

TEST(Pds, TheoremOneLink) {
  // Theorem 1: a PDS solution is an MCBG solution with full coverage.
  const CsrGraph g = make_connected_random(12, 0.3, 6);
  const auto witness = solve_pds_exact(g, 4);
  if (witness.has_value()) {
    EXPECT_EQ(coverage(g, *witness), g.num_vertices());
    EXPECT_TRUE(has_pairwise_guarantee(g, *witness));
  }
}

TEST(Pds, ExactMatchesGreedyOnEasyInstances) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    const CsrGraph g = make_connected_random(12, 0.25, seed);
    const auto exact = solve_pds_exact(g, 12);
    const auto greedy = solve_pds_greedy(g, 12);
    ASSERT_TRUE(exact.has_value());   // k = n always feasible when connected
    ASSERT_TRUE(greedy.has_value());
    // Exact finds a minimum; greedy may use more but never fewer.
    EXPECT_LE(exact->size(), greedy->size());
  }
}

TEST(Pds, RejectsOversizedGraphs) {
  const CsrGraph g = make_connected_random(30, 0.1, 7);
  EXPECT_THROW((void)solve_pds_exact(g, 3), std::invalid_argument);
}

}  // namespace
}  // namespace bsr::broker
