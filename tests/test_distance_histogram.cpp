#include "graph/distance_histogram.hpp"

#include <gtest/gtest.h>

#include "graph/graph_builder.hpp"
#include "test_util.hpp"

namespace bsr::graph {
namespace {

using bsr::test::make_complete;
using bsr::test::make_connected_random;
using bsr::test::make_cycle;
using bsr::test::make_path;

TEST(DistanceCdf, CompleteGraphAllAtOne) {
  const CsrGraph g = make_complete(8);
  const auto cdf = distance_cdf_exact(g);
  EXPECT_NEAR(cdf.at(1), 1.0, 1e-12);
  EXPECT_NEAR(cdf.reachable, 1.0, 1e-12);
}

TEST(DistanceCdf, PathGraphExactValues) {
  const CsrGraph g = make_path(4);
  const auto cdf = distance_cdf_exact(g);
  // Ordered pairs: 12 total. Distance 1: 6 (3 edges x 2), distance 2: 4,
  // distance 3: 2.
  EXPECT_NEAR(cdf.at(1), 6.0 / 12.0, 1e-12);
  EXPECT_NEAR(cdf.at(2), 10.0 / 12.0, 1e-12);
  EXPECT_NEAR(cdf.at(3), 1.0, 1e-12);
  EXPECT_NEAR(cdf.at(99), 1.0, 1e-12);
}

TEST(DistanceCdf, DisconnectedReachableBelowOne) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const CsrGraph g = b.build();
  const auto cdf = distance_cdf_exact(g);
  // Reachable ordered pairs: 4 of 12.
  EXPECT_NEAR(cdf.reachable, 4.0 / 12.0, 1e-12);
}

TEST(DistanceCdf, CdfMonotone) {
  const CsrGraph g = make_connected_random(40, 0.08, 12);
  const auto cdf = distance_cdf_exact(g);
  for (std::size_t l = 1; l < cdf.cdf.size(); ++l) {
    EXPECT_GE(cdf.cdf[l], cdf.cdf[l - 1]);
  }
}

TEST(DistanceCdf, AtZeroIsZero) {
  const CsrGraph g = make_cycle(5);
  const auto cdf = distance_cdf_exact(g);
  EXPECT_DOUBLE_EQ(cdf.at(0), 0.0);
}

TEST(DistanceCdf, FilteredEdgesChangeDistribution) {
  const CsrGraph g = make_cycle(6);
  // Remove one edge: cycle becomes path, distances grow.
  const auto full = distance_cdf_exact(g);
  const auto cut = distance_cdf_exact(g, [](NodeId u, NodeId v) {
    return !((u == 0 && v == 5) || (u == 5 && v == 0));
  });
  EXPECT_GT(full.at(2), cut.at(2));
  EXPECT_NEAR(cut.reachable, 1.0, 1e-12);  // still connected
}

TEST(DistanceCdf, SampledMatchesExactWhenOversampled) {
  const CsrGraph g = make_connected_random(25, 0.15, 9);
  Rng rng(1);
  const auto sampled = distance_cdf_sampled(g, rng, 1000);  // >= |V| -> exact
  const auto exact = distance_cdf_exact(g);
  EXPECT_NEAR(max_cdf_deviation(sampled, exact), 0.0, 1e-12);
}

TEST(DistanceCdf, SampledApproximatesExact) {
  const CsrGraph g = make_connected_random(200, 0.04, 10);
  Rng rng(2);
  const auto sampled = distance_cdf_sampled(g, rng, 80);
  const auto exact = distance_cdf_exact(g);
  EXPECT_LT(max_cdf_deviation(sampled, exact), 0.05);
}

TEST(DistanceCdf, ErrorsOnDegenerateInput) {
  Rng rng(3);
  EXPECT_THROW(distance_cdf_exact(make_path(1)), std::invalid_argument);
  const CsrGraph g = make_path(3);
  EXPECT_THROW(distance_cdf_from_sources(g, {}), std::invalid_argument);
}

TEST(DistanceCdf, MaxDeviationOfIdenticalIsZero) {
  const CsrGraph g = make_cycle(7);
  const auto a = distance_cdf_exact(g);
  EXPECT_DOUBLE_EQ(max_cdf_deviation(a, a), 0.0);
}

TEST(DistanceCdf, MaxDeviationDetectsDifference) {
  const auto a = distance_cdf_exact(make_complete(6));
  const auto b = distance_cdf_exact(make_path(6));
  EXPECT_GT(max_cdf_deviation(a, b), 0.3);
}

}  // namespace
}  // namespace bsr::graph
