#include "graph/degree_stats.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/graph_builder.hpp"
#include "test_util.hpp"

namespace bsr::graph {
namespace {

using bsr::test::make_complete;
using bsr::test::make_star;

TEST(DegreeStats, StarGraph) {
  const CsrGraph g = make_star(11);
  const auto stats = compute_degree_stats(g);
  EXPECT_EQ(stats.min, 1u);
  EXPECT_EQ(stats.max, 10u);
  EXPECT_NEAR(stats.mean, 20.0 / 11.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.median, 1.0);
}

TEST(DegreeStats, RegularGraphPercentilesCollapse) {
  const CsrGraph g = make_complete(9);
  const auto stats = compute_degree_stats(g);
  EXPECT_DOUBLE_EQ(stats.median, 8.0);
  EXPECT_DOUBLE_EQ(stats.p90, 8.0);
  EXPECT_DOUBLE_EQ(stats.p99, 8.0);
}

TEST(DegreeStats, EmptyGraph) {
  const auto stats = compute_degree_stats(CsrGraph());
  EXPECT_EQ(stats.max, 0u);
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
}

TEST(DegreeStats, HistogramSumsToVertexCount) {
  const CsrGraph g = bsr::test::make_random(50, 0.1, 3);
  const auto hist = degree_histogram(g);
  const auto total = std::accumulate(hist.begin(), hist.end(), std::uint64_t{0});
  EXPECT_EQ(total, g.num_vertices());
}

TEST(DegreeStats, HistogramMatchesDegrees) {
  const CsrGraph g = make_star(5);
  const auto hist = degree_histogram(g);
  ASSERT_EQ(hist.size(), 5u);  // max degree 4
  EXPECT_EQ(hist[1], 4u);      // four leaves
  EXPECT_EQ(hist[4], 1u);      // one center
}

TEST(DegreeStats, OrderingByDegreeDescending) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  b.add_edge(1, 2);
  const CsrGraph g = b.build();
  const auto order = vertices_by_degree_desc(g);
  EXPECT_EQ(order[0], 0u);  // degree 3
  // Degree-2 tie between 1 and 2 broken by id.
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[4], 4u);  // isolated last
}

TEST(DegreeStats, PowerLawAlphaOnSyntheticTail) {
  // A graph with a clear heavy tail should fit alpha in a plausible range;
  // a regular graph should not produce a fit (too little tail data).
  const CsrGraph regular = make_complete(8);
  const auto stats = compute_degree_stats(regular, 10);
  EXPECT_DOUBLE_EQ(stats.power_law_alpha, 0.0);
}

}  // namespace
}  // namespace bsr::graph
