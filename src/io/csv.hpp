// CSV emission for figure series so plots can be regenerated externally.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace bsr::io {

/// Appends rows to an in-memory CSV document, then writes atomically.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(const std::vector<std::string>& cells);

  /// Serializes with proper quoting of commas/quotes/newlines.
  [[nodiscard]] std::string to_string() const;

  /// Writes to `path`; throws std::runtime_error on IO failure.
  void write_file(const std::string& path) const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes one CSV field per RFC 4180.
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace bsr::io
