#include "topology/ba.hpp"

#include <stdexcept>
#include <vector>

#include "graph/graph_builder.hpp"
#include "graph/rng.hpp"

namespace bsr::topology {

using bsr::graph::CsrGraph;
using bsr::graph::GraphBuilder;
using bsr::graph::NodeId;
using bsr::graph::Rng;

CsrGraph make_ba(std::uint32_t num_vertices, std::uint32_t edges_per_vertex,
                 std::uint64_t seed) {
  if (edges_per_vertex < 1) throw std::invalid_argument("make_ba: m must be >= 1");
  if (num_vertices <= edges_per_vertex) {
    throw std::invalid_argument("make_ba: n must exceed m");
  }

  Rng rng(seed);
  GraphBuilder builder(num_vertices);
  builder.reserve(static_cast<std::size_t>(num_vertices) * edges_per_vertex);

  // Repeated-endpoint list: uniform draws are degree-proportional draws.
  std::vector<NodeId> endpoint_pool;
  endpoint_pool.reserve(2ull * num_vertices * edges_per_vertex);

  // Seed clique over the first m+1 vertices.
  const NodeId seed_size = edges_per_vertex + 1;
  for (NodeId u = 0; u < seed_size; ++u) {
    for (NodeId v = u + 1; v < seed_size; ++v) {
      builder.add_edge(u, v);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }

  for (NodeId v = seed_size; v < num_vertices; ++v) {
    std::vector<NodeId> targets;
    targets.reserve(edges_per_vertex);
    int attempts = 0;
    while (targets.size() < edges_per_vertex && attempts < 200) {
      ++attempts;
      const NodeId candidate = endpoint_pool[rng.uniform(endpoint_pool.size())];
      bool duplicate = false;
      for (const NodeId t : targets) duplicate |= (t == candidate);
      if (!duplicate) targets.push_back(candidate);
    }
    for (const NodeId t : targets) {
      builder.add_edge(v, t);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(t);
    }
  }
  return builder.build();
}

}  // namespace bsr::topology
