// Tests for the probe-based health control plane: detector state-machine
// invariants, hysteresis, view propagation, stale-view routing, the
// health-aware churn loop, and determinism across thread counts.
#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "broker/broker_set.hpp"
#include "graph/engine.hpp"
#include "graph/fault_plane.hpp"
#include "graph/rng.hpp"
#include "sim/churn.hpp"
#include "sim/health.hpp"
#include "sim/router.hpp"
#include "test_util.hpp"

namespace {

using bsr::broker::BrokerSet;
using bsr::graph::FaultPlane;
using bsr::graph::NodeId;
using bsr::graph::Rng;
using bsr::sim::HealthChurnConfig;
using bsr::sim::HealthChurnResult;
using bsr::sim::HealthConfig;
using bsr::sim::HealthMonitor;
using bsr::sim::HealthOutcome;
using bsr::sim::HealthState;
using bsr::sim::HealthTransition;
using bsr::sim::HealthView;
using bsr::sim::RepairPolicy;
using bsr::sim::RepairScheduler;
using bsr::test::make_complete;
using bsr::test::make_connected_random;
using bsr::test::make_path;
using bsr::test::make_star;

/// Exact-timing config: no jitter, tight thresholds.
HealthConfig tight_config() {
  HealthConfig c;
  c.probe_interval = 1.0;
  c.propagation_delay = 0.5;
  c.suspect_after = 1;
  c.quarantine_after = 2;
  c.probation_successes = 2;
  c.reprobe_backoff = 2.0;
  c.backoff_factor = 2.0;
  c.backoff_max = 16.0;
  c.jitter = 0.0;
  return c;
}

/// The only legal state-machine edges (see health.hpp).
bool legal_transition(HealthState from, HealthState to) {
  using S = HealthState;
  return (from == S::kHealthy && to == S::kSuspect) ||
         (from == S::kSuspect && to == S::kHealthy) ||
         (from == S::kSuspect && to == S::kQuarantined) ||
         (from == S::kQuarantined && to == S::kProbation) ||
         (from == S::kProbation && to == S::kHealthy) ||
         (from == S::kProbation && to == S::kQuarantined);
}

void expect_all_transitions_legal(std::span<const HealthTransition> transitions) {
  for (const HealthTransition& tr : transitions) {
    EXPECT_TRUE(legal_transition(tr.from, tr.to))
        << "illegal transition " << bsr::sim::to_string(tr.from) << " -> "
        << bsr::sim::to_string(tr.to) << " at t=" << tr.time
        << " (broker " << tr.broker << ")";
  }
}

TEST(HealthConfigTest, ValidationThrows) {
  const auto g = make_path(4);
  const BrokerSet brokers(4, std::vector<NodeId>{1, 2});
  const FaultPlane plane(g);
  const auto make = [&](const HealthConfig& c) {
    return HealthMonitor(g, brokers, plane, c, 1, 7);
  };
  HealthConfig c = tight_config();
  EXPECT_NO_THROW(make(c));
  c.probe_interval = 0.0;
  EXPECT_THROW(make(c), std::invalid_argument);
  c = tight_config();
  c.quarantine_after = c.suspect_after;  // must be strictly greater
  EXPECT_THROW(make(c), std::invalid_argument);
  c = tight_config();
  c.suspect_after = 0;
  EXPECT_THROW(make(c), std::invalid_argument);
  c = tight_config();
  c.probation_successes = 0;
  EXPECT_THROW(make(c), std::invalid_argument);
  c = tight_config();
  c.jitter = 1.0;
  EXPECT_THROW(make(c), std::invalid_argument);
  c = tight_config();
  c.backoff_max = 0.5;  // below reprobe_backoff
  EXPECT_THROW(make(c), std::invalid_argument);
  EXPECT_THROW(HealthMonitor(g, brokers, plane, tight_config(), 99, 7),
               std::invalid_argument);
}

TEST(HealthMonitorTest, ChooseVantagePicksHighestDegreeBroker) {
  const auto g = make_star(6);  // center 0 has degree 5, leaves degree 1
  EXPECT_EQ(HealthMonitor::choose_vantage(g, BrokerSet(6, std::vector<NodeId>{3, 0})),
            0u);
  EXPECT_EQ(HealthMonitor::choose_vantage(g, BrokerSet(6, std::vector<NodeId>{3, 4})),
            3u);  // tie on degree: first member wins
  EXPECT_THROW((void)HealthMonitor::choose_vantage(g, BrokerSet(6)),
               std::invalid_argument);
}

TEST(HealthMonitorTest, AllHealthyProducesNoTransitions) {
  const auto g = make_complete(6);
  const BrokerSet brokers(6, std::vector<NodeId>{0, 1, 2});
  const FaultPlane plane(g);
  HealthMonitor monitor(g, brokers, plane, tight_config(), 0, 7);
  monitor.advance(50.0);
  EXPECT_TRUE(monitor.transitions().empty());
  EXPECT_EQ(monitor.views().size(), 1u);  // only the initial all-healthy view
  EXPECT_EQ(monitor.routable_count(), 3u);
  EXPECT_EQ(monitor.quarantines(), 0u);
  EXPECT_EQ(monitor.probe_rounds(), 50u);
}

TEST(HealthMonitorTest, DeadBrokerWalksThroughSuspectToQuarantine) {
  const auto g = make_complete(6);
  const BrokerSet brokers(6, std::vector<NodeId>{0, 1, 2});
  FaultPlane plane(g);
  HealthMonitor monitor(g, brokers, plane, tight_config(), 0, 7);
  plane.fail_vertex(2);
  monitor.advance(10.0);

  ASSERT_EQ(monitor.transitions().size(), 2u);
  const auto transitions = monitor.transitions();
  EXPECT_EQ(transitions[0].broker, 2u);
  EXPECT_EQ(transitions[0].from, HealthState::kHealthy);
  EXPECT_EQ(transitions[0].to, HealthState::kSuspect);
  EXPECT_DOUBLE_EQ(transitions[0].time, 1.0);  // first missed probe
  EXPECT_EQ(transitions[1].from, HealthState::kSuspect);
  EXPECT_EQ(transitions[1].to, HealthState::kQuarantined);
  EXPECT_DOUBLE_EQ(transitions[1].time, 2.0);  // quarantine_after = 2
  EXPECT_EQ(monitor.state_of(2), HealthState::kQuarantined);
  EXPECT_EQ(monitor.quarantines(), 1u);
  EXPECT_EQ(monitor.false_quarantines(), 0u);  // it really is dead
  EXPECT_EQ(monitor.routable_count(), 2u);
  expect_all_transitions_legal(transitions);
}

TEST(HealthMonitorTest, UnreachableBrokerIsFalseQuarantine) {
  // Path 0-1-2-3, brokers {0,1,3}, vantage 0. Failing vertex 2 (a
  // non-broker) cuts 3 off from the vantage: 3 is up but unprobeable.
  const auto g = make_path(4);
  const BrokerSet brokers(4, std::vector<NodeId>{0, 1, 3});
  FaultPlane plane(g);
  HealthMonitor monitor(g, brokers, plane, tight_config(), 0, 7);
  plane.fail_vertex(2);
  monitor.advance(10.0);
  EXPECT_EQ(monitor.state_of(2), HealthState::kQuarantined);  // member index of 3
  EXPECT_EQ(monitor.quarantines(), 1u);
  EXPECT_EQ(monitor.false_quarantines(), 1u);  // vertex 3 itself is fine
}

TEST(HealthMonitorTest, RecoveryGoesThroughProbation) {
  const auto g = make_complete(6);
  const BrokerSet brokers(6, std::vector<NodeId>{0, 1, 2});
  FaultPlane plane(g);
  HealthMonitor monitor(g, brokers, plane, tight_config(), 0, 7);
  plane.fail_vertex(2);
  monitor.advance(3.0);  // quarantined at t=2, first reprobe due t=4
  plane.heal_vertex(2);
  monitor.advance(10.0);

  // Reprobe at t=4 succeeds -> probation; rounds at t=5,6 succeed -> healthy.
  EXPECT_EQ(monitor.state_of(2), HealthState::kHealthy);
  const auto transitions = monitor.transitions();
  ASSERT_EQ(transitions.size(), 4u);
  EXPECT_EQ(transitions[2].to, HealthState::kProbation);
  EXPECT_DOUBLE_EQ(transitions[2].time, 4.0);
  EXPECT_EQ(transitions[3].to, HealthState::kHealthy);
  EXPECT_DOUBLE_EQ(transitions[3].time, 6.0);  // probation_successes = 2
  expect_all_transitions_legal(transitions);
}

TEST(HealthMonitorTest, FlapperQuarantinedWithinHysteresisWindow) {
  const auto g = make_complete(6);
  const BrokerSet brokers(6, std::vector<NodeId>{0, 1, 2});
  FaultPlane plane(g);
  HealthMonitor monitor(g, brokers, plane, tight_config(), 0, 7);

  plane.fail_vertex(2);
  monitor.advance(3.0);  // H -> S (t=1) -> Q (t=2); reprobe due t=4
  plane.heal_vertex(2);
  monitor.advance(4.0);  // reprobe ok: Q -> P at t=4
  ASSERT_EQ(monitor.state_of(2), HealthState::kProbation);
  plane.fail_vertex(2);  // flap back down before the next probe round
  monitor.advance(5.0);

  // The very next probe round (one interval — the hysteresis window) sends
  // the flapper straight back to quarantine, one backoff level deeper.
  EXPECT_EQ(monitor.state_of(2), HealthState::kQuarantined);
  const auto transitions = monitor.transitions();
  EXPECT_EQ(transitions.back().from, HealthState::kProbation);
  EXPECT_EQ(transitions.back().to, HealthState::kQuarantined);
  EXPECT_DOUBLE_EQ(transitions.back().time, 5.0);
  expect_all_transitions_legal(transitions);

  // Deeper backoff: the re-probe now waits reprobe_backoff * factor = 4
  // time units (was 2 on first quarantine) — flappers are suppressed longer.
  EXPECT_DOUBLE_EQ(monitor.next_event_time(), 6.0);  // next round, not reprobe
  plane.heal_vertex(2);
  monitor.advance(8.9);  // reprobe due at 5 + 4 = 9, not earlier
  EXPECT_EQ(monitor.state_of(2), HealthState::kQuarantined);
  monitor.advance(9.0);
  EXPECT_EQ(monitor.state_of(2), HealthState::kProbation);
}

TEST(HealthMonitorTest, NeverJumpsHealthyToQuarantined) {
  // Randomized fail/heal storm: assert every transition ever made is a
  // legal single step — in particular no kHealthy -> kQuarantined jump.
  const auto g = make_connected_random(40, 0.1, 11);
  std::vector<NodeId> members;
  for (NodeId v = 0; v < 10; ++v) members.push_back(v);
  const BrokerSet brokers(40, members);
  FaultPlane plane(g);
  HealthConfig config = tight_config();
  config.jitter = 0.2;
  HealthMonitor monitor(g, brokers, plane, config,
                        HealthMonitor::choose_vantage(g, brokers), 13);
  Rng rng(17);
  double now = 0.0;
  for (int step = 0; step < 200; ++step) {
    now += rng.exponential(2.0);
    const NodeId v = members[rng.uniform(members.size())];
    if (plane.vertex_ok(v)) {
      plane.fail_vertex(v);
    } else {
      plane.heal_vertex(v);
    }
    monitor.advance(now);
  }
  EXPECT_GT(monitor.transitions().size(), 0u);
  expect_all_transitions_legal(monitor.transitions());
  // Views are versioned consecutively and published in time order.
  const auto views = monitor.views();
  for (std::size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(views[i].version, i);
    if (i > 0) {
      EXPECT_GE(views[i].published_at, views[i - 1].published_at);
    }
  }
}

TEST(HealthMonitorTest, ViewPropagationDelay) {
  const auto g = make_complete(6);
  const BrokerSet brokers(6, std::vector<NodeId>{0, 1, 2});
  FaultPlane plane(g);
  HealthMonitor monitor(g, brokers, plane, tight_config(), 0, 7);
  plane.fail_vertex(2);
  monitor.advance(1.0);  // H -> S published at t=1

  ASSERT_EQ(monitor.views().size(), 2u);
  // Before the propagation delay elapses consumers still see version 0.
  EXPECT_EQ(monitor.view_at(1.4).version, 0u);
  EXPECT_EQ(monitor.view_at(1.5).version, 1u);
  EXPECT_TRUE(monitor.view_at(1.4).routable_broker(2));
  EXPECT_FALSE(monitor.view_at(1.5).routable_broker(2));  // suspect: shunned
}

TEST(HealthMonitorTest, AddBrokerAnnouncedImmediately) {
  const auto g = make_complete(6);
  BrokerSet brokers(6, std::vector<NodeId>{0, 1});
  const FaultPlane plane(g);
  HealthMonitor monitor(g, brokers, plane, tight_config(), 0, 7);
  monitor.advance(5.0);
  brokers.add(4);
  monitor.add_broker(4, 5.0);
  EXPECT_EQ(monitor.members().size(), 3u);
  EXPECT_TRUE(monitor.latest_view().routable_broker(4));
  EXPECT_EQ(monitor.latest_view().published_at, 5.0);
  monitor.advance(20.0);  // the recruit is probed like everyone else
  EXPECT_EQ(monitor.state_of(2), HealthState::kHealthy);
}

TEST(HealthMonitorTest, IdenticalViewSequencesAcrossThreadCounts) {
  const auto g = make_connected_random(60, 0.08, 3);
  std::vector<NodeId> members;
  for (NodeId v = 0; v < 12; ++v) members.push_back(v);
  const BrokerSet brokers(60, members);
  HealthConfig config = tight_config();
  config.jitter = 0.3;

  const auto run = [&]() {
    FaultPlane plane(g);
    HealthMonitor monitor(g, brokers, plane, config,
                          HealthMonitor::choose_vantage(g, brokers), 99);
    Rng rng(5);
    double now = 0.0;
    for (int step = 0; step < 60; ++step) {
      now += rng.exponential(1.5);
      const NodeId v = members[rng.uniform(members.size())];
      if (plane.vertex_ok(v)) {
        plane.fail_vertex(v);
      } else {
        plane.heal_vertex(v);
      }
      monitor.advance(now);
    }
    std::vector<HealthView> views(monitor.views().begin(), monitor.views().end());
    return views;
  };

  const int saved = bsr::graph::engine::num_threads();
  bsr::graph::engine::set_num_threads(1);
  const auto serial = run();
  bsr::graph::engine::set_num_threads(4);
  const auto parallel = run();
  bsr::graph::engine::set_num_threads(saved);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].version, parallel[i].version);
    EXPECT_EQ(serial[i].published_at, parallel[i].published_at);  // bit-identical
    EXPECT_EQ(serial[i].states, parallel[i].states);
    EXPECT_EQ(serial[i].routable, parallel[i].routable);
  }
}

// --- stale-view routing ------------------------------------------------------

TEST(HealthRoutingTest, OutcomesMatchBeliefVsTruth) {
  // Path 0-1-2-3-4 with the single broker 2: edges (1,2) and (2,3) are
  // dominated only through 2, so shunning it really severs the believed
  // plane for the pair 1 -> 3 (a broker removed from the routable set can
  // still be *traversed* if routable neighbors dominate its edges — which
  // is why a sole dominator is needed here).
  const auto g = make_path(5);
  const BrokerSet brokers(5, std::vector<NodeId>{2});
  FaultPlane plane(g);
  bsr::sim::Router router(g, brokers, &plane);

  HealthView view;  // hand-built stale view
  view.routable.assign(5, false);
  view.routable[2] = true;
  router.set_health_view(&view);

  // Accurate all-healthy view, no faults: ok.
  EXPECT_EQ(router.route_with_health(1, 3).outcome, HealthOutcome::kOk);

  // Broker 2 dies but the view still believes in it: misrouted.
  plane.fail_vertex(2);
  const auto misrouted = router.route_with_health(1, 3);
  EXPECT_EQ(misrouted.outcome, HealthOutcome::kMisrouted);
  EXPECT_GT(misrouted.dead_hops, 0u);

  // View catches up (2 unroutable) but 2 actually healed: the stale view
  // now *shuns* real capacity.
  plane.heal_vertex(2);
  view.routable[2] = false;
  EXPECT_EQ(router.route_with_health(1, 3).outcome, HealthOutcome::kShunned);

  // Truth and belief both dead: unreachable.
  plane.fail_vertex(2);
  EXPECT_EQ(router.route_with_health(1, 3).outcome, HealthOutcome::kUnreachable);

  // Trivial pair short-circuits.
  EXPECT_EQ(router.route_with_health(3, 3).outcome, HealthOutcome::kOk);
}

TEST(HealthRoutingTest, SampleSharesAreConsistent) {
  const auto g = make_connected_random(50, 0.1, 23);
  std::vector<NodeId> members;
  for (NodeId v = 0; v < 10; ++v) members.push_back(v);
  const BrokerSet brokers(50, members);
  FaultPlane plane(g);
  plane.fail_vertex(3);
  bsr::sim::Router router(g, brokers, &plane);
  HealthView view;
  view.routable.assign(50, false);
  for (const NodeId v : members) view.routable[v] = true;  // stale: all healthy
  router.set_health_view(&view);

  Rng rng(31);
  const auto shares = bsr::sim::sample_health_shares(router, rng, 300);
  EXPECT_EQ(shares.pairs, 300u);
  EXPECT_EQ(shares.ok + shares.misrouted + shares.shunned + shares.unreachable,
            shares.pairs);
  EXPECT_DOUBLE_EQ(shares.fraction(shares.ok) + shares.fraction(shares.misrouted) +
                       shares.fraction(shares.shunned) +
                       shares.fraction(shares.unreachable),
                   1.0);
}

TEST(HealthRoutingTest, LhopConnectivityBounds) {
  const auto g = make_complete(8);
  const BrokerSet all(8, std::vector<NodeId>{0, 1, 2, 3, 4, 5, 6, 7});
  Rng rng_a(1), rng_b(1), rng_c(1);
  // Every vertex a broker on K_8: every pair within one hop.
  EXPECT_DOUBLE_EQ(bsr::sim::lhop_connectivity(g, all.mask(), nullptr, 1, rng_a, 8),
                   1.0);
  // No usable brokers: nothing admissible.
  EXPECT_DOUBLE_EQ(
      bsr::sim::lhop_connectivity(g, std::vector<bool>(8, false), nullptr, 1, rng_b, 8),
      0.0);
  // Believed plane can never beat the oracle plane it is a subset of.
  const FaultPlane plane(g);
  std::vector<bool> subset = all.mask();
  subset[0] = subset[1] = false;
  EXPECT_LE(bsr::sim::lhop_connectivity(g, subset, &plane, 1, rng_c, 8), 1.0);
}

// --- repair scheduler --------------------------------------------------------

TEST(RepairSchedulerTest, BacksOffAndGivesUp) {
  RepairPolicy policy;
  policy.retry_backoff = 4.0;
  policy.retry_factor = 2.0;
  policy.retry_max = 32.0;
  policy.max_retries = 2;
  RepairScheduler scheduler(policy);
  EXPECT_TRUE(std::isinf(scheduler.next_due()));

  scheduler.request(10.0);
  EXPECT_DOUBLE_EQ(scheduler.next_due(), 14.0);
  scheduler.request(12.0);  // already armed: no re-arm
  EXPECT_DOUBLE_EQ(scheduler.next_due(), 14.0);

  scheduler.report(14.0, 0);  // failure: retry with deeper backoff
  EXPECT_DOUBLE_EQ(scheduler.next_due(), 14.0 + 8.0);
  scheduler.report(22.0, 0);
  EXPECT_DOUBLE_EQ(scheduler.next_due(), 22.0 + 16.0);
  scheduler.report(38.0, 0);  // third consecutive failure > max_retries: give up
  EXPECT_TRUE(std::isinf(scheduler.next_due()));
  EXPECT_EQ(scheduler.attempts(), 3u);
  EXPECT_EQ(scheduler.failed_attempts(), 3u);

  scheduler.request(50.0);  // a new quarantine re-arms it
  EXPECT_DOUBLE_EQ(scheduler.next_due(), 54.0);
  scheduler.report(54.0, 2);  // success clears the pending attempt
  EXPECT_TRUE(std::isinf(scheduler.next_due()));
  EXPECT_EQ(scheduler.failed_attempts(), 3u);
}

// --- health-aware churn loop -------------------------------------------------

struct ChurnFixture {
  bsr::graph::CsrGraph g = make_connected_random(120, 0.05, 42);
  BrokerSet brokers;
  std::vector<bsr::graph::FailureGroup> groups;

  ChurnFixture() {
    std::vector<NodeId> members;
    for (NodeId v = 0; v < 20; ++v) members.push_back(v);
    brokers = BrokerSet(120, members);
    for (NodeId v = 0; v < 6; ++v) {
      groups.push_back(bsr::graph::incident_group(g, v));
    }
  }

  HealthChurnResult run(double probe_interval, std::uint64_t seed = 77) const {
    HealthChurnConfig churn;
    churn.departure_rate = 0.6;
    churn.mean_return_time = 10.0;
    churn.horizon = 80.0;
    bsr::sim::LinkChurnConfig link;
    link.outage_rate = 0.1;
    link.mean_downtime = 5.0;
    HealthConfig health = tight_config();
    health.probe_interval = probe_interval;
    RepairPolicy repair;
    repair.budget = 2;
    Rng rng(seed);
    return bsr::sim::simulate_churn_with_health(g, brokers, churn, link, groups,
                                                health, repair, rng);
  }
};

TEST(HealthChurnTest, ValidatesInputs) {
  const ChurnFixture fx;
  HealthChurnConfig churn;
  churn.horizon = 0.0;
  Rng rng(1);
  EXPECT_THROW(bsr::sim::simulate_churn_with_health(
                   fx.g, fx.brokers, churn, {}, {}, tight_config(), {}, rng),
               std::invalid_argument);
  EXPECT_THROW(bsr::sim::simulate_churn_with_health(fx.g, BrokerSet(120),
                                                    HealthChurnConfig{}, {}, {},
                                                    tight_config(), {}, rng),
               std::invalid_argument);
  bsr::sim::LinkChurnConfig link;
  link.outage_rate = 1.0;  // link churn without groups
  EXPECT_THROW(
      bsr::sim::simulate_churn_with_health(fx.g, fx.brokers, HealthChurnConfig{},
                                           link, {}, tight_config(), {}, rng),
      std::invalid_argument);
}

TEST(HealthChurnTest, InterleavesAllEventKinds) {
  const ChurnFixture fx;
  const auto result = fx.run(1.0);
  EXPECT_GT(result.departures, 0u);
  EXPECT_GT(result.returns, 0u);
  EXPECT_GT(result.link_outages, 0u);
  EXPECT_GT(result.probe_rounds, 0u);
  EXPECT_GT(result.quarantines, 0u);
  EXPECT_GT(result.views_published, 1u);
  EXPECT_FALSE(result.detection_latencies.empty());
  EXPECT_GT(result.mean_detection_latency(), 0.0);
  EXPECT_GT(result.repair_attempts, 0u);
  EXPECT_GE(result.mean_oracle_connectivity, result.mean_believed_connectivity - 1e-9);
  EXPECT_GT(result.dead_routable_time, 0.0);
  expect_all_transitions_legal(result.transitions);
}

TEST(HealthChurnTest, DeterministicInSeed) {
  const ChurnFixture fx;
  const auto a = fx.run(1.0, 123);
  const auto b = fx.run(1.0, 123);
  EXPECT_EQ(a.departures, b.departures);
  EXPECT_EQ(a.quarantines, b.quarantines);
  EXPECT_EQ(a.detection_latencies, b.detection_latencies);
  EXPECT_EQ(a.dead_routable_time, b.dead_routable_time);
  EXPECT_EQ(a.mean_believed_connectivity, b.mean_believed_connectivity);
  ASSERT_EQ(a.transitions.size(), b.transitions.size());
  for (std::size_t i = 0; i < a.transitions.size(); ++i) {
    EXPECT_EQ(a.transitions[i].time, b.transitions[i].time);
    EXPECT_EQ(a.transitions[i].broker, b.transitions[i].broker);
    EXPECT_EQ(a.transitions[i].to, b.transitions[i].to);
  }
  const auto c = fx.run(1.0, 124);
  EXPECT_NE(a.transitions.size(), c.transitions.size());
}

TEST(HealthChurnTest, BitIdenticalAcrossThreadCounts) {
  const ChurnFixture fx;
  const int saved = bsr::graph::engine::num_threads();
  bsr::graph::engine::set_num_threads(1);
  const auto serial = fx.run(0.5);
  bsr::graph::engine::set_num_threads(4);
  const auto parallel = fx.run(0.5);
  bsr::graph::engine::set_num_threads(saved);

  EXPECT_EQ(serial.detection_latencies, parallel.detection_latencies);
  EXPECT_EQ(serial.dead_routable_time, parallel.dead_routable_time);
  EXPECT_EQ(serial.shunned_up_time, parallel.shunned_up_time);
  EXPECT_EQ(serial.mean_oracle_connectivity, parallel.mean_oracle_connectivity);
  EXPECT_EQ(serial.mean_believed_connectivity, parallel.mean_believed_connectivity);
  EXPECT_EQ(serial.quarantines, parallel.quarantines);
  EXPECT_EQ(serial.replacements_added, parallel.replacements_added);
  ASSERT_EQ(serial.transitions.size(), parallel.transitions.size());
  for (std::size_t i = 0; i < serial.transitions.size(); ++i) {
    EXPECT_EQ(serial.transitions[i].time, parallel.transitions[i].time);
    EXPECT_EQ(serial.transitions[i].broker, parallel.transitions[i].broker);
  }
}

TEST(HealthChurnTest, MisroutingExposureShrinksWithFasterProbing) {
  // The acceptance criterion: on the identical fault timeline (the timeline
  // is drawn before any probe-dependent draw), halving the probe interval
  // nests the probe grid, so a dead broker can only be detected earlier and
  // the dead-but-believed-routable integral is monotonically non-increasing.
  const ChurnFixture fx;
  double prev = std::numeric_limits<double>::infinity();
  for (const double interval : {4.0, 2.0, 1.0, 0.5}) {
    const auto result = fx.run(interval);
    EXPECT_LE(result.dead_routable_time, prev + 1e-9)
        << "exposure grew when probe interval shrank to " << interval;
    prev = result.dead_routable_time;
  }
}

TEST(HealthChurnTest, ClassifiesDeparturesAndTracksExposure) {
  const ChurnFixture fx;
  const auto result = fx.run(1.0);
  // Every broker departure that actually took the vertex down is classified
  // exactly once as absorbed (oracle pair count held) or exposed (pairs were
  // severed); departures of already-down vertices are unclassifiable.
  EXPECT_GT(result.absorbed_departures + result.exposed_departures, 0u);
  EXPECT_LE(result.absorbed_departures + result.exposed_departures,
            result.departures);
  EXPECT_GE(result.misrouting_pair_exposure, 0.0);
  // Exposure integrates promised-minus-realized connectivity, so with
  // exposed departures present it must register.
  if (result.exposed_departures > 0) {
    EXPECT_GT(result.misrouting_pair_exposure, 0.0);
  }
  for (const double t : result.recovery_times) EXPECT_GE(t, 0.0);
  if (result.recovery_times.empty()) {
    EXPECT_EQ(result.mean_time_to_recover(), 0.0);
  } else {
    EXPECT_GT(result.mean_time_to_recover(), 0.0);
  }
}

TEST(HealthChurnTest, AbsorbedDepartureOnRedundantSelection) {
  // Complete graph, two brokers: either one alone still dominates every
  // surviving vertex, so the *first* departure severs no third-party pairs —
  // it must be absorbed. Only a second departure (no brokers left) can
  // expose pairs, so at most one departure is ever exposed.
  const auto g = bsr::test::make_complete(8);
  BrokerSet b(8);
  b.add(0);
  b.add(1);
  HealthChurnConfig churn;
  churn.departure_rate = 0.3;
  churn.mean_return_time = 0.0;  // the dead stay dead
  churn.horizon = 30.0;
  Rng rng(5);
  const auto result = bsr::sim::simulate_churn_with_health(
      g, b, churn, {}, {}, tight_config(), {}, rng);
  ASSERT_GT(result.departures, 0u);
  EXPECT_EQ(result.absorbed_departures, 1u);
  EXPECT_LE(result.exposed_departures, 1u);
  if (result.exposed_departures == 0) {
    EXPECT_EQ(result.misrouting_pair_exposure, 0.0);
  }
}

TEST(HealthChurnTest, NewMetricsBitIdenticalAcrossThreadCounts) {
  const ChurnFixture fx;
  const int saved = bsr::graph::engine::num_threads();
  bsr::graph::engine::set_num_threads(1);
  const auto serial = fx.run(0.5);
  bsr::graph::engine::set_num_threads(4);
  const auto parallel = fx.run(0.5);
  bsr::graph::engine::set_num_threads(saved);
  EXPECT_EQ(serial.absorbed_departures, parallel.absorbed_departures);
  EXPECT_EQ(serial.exposed_departures, parallel.exposed_departures);
  EXPECT_EQ(serial.misrouting_pair_exposure, parallel.misrouting_pair_exposure);
  EXPECT_EQ(serial.recovery_times, parallel.recovery_times);
}

TEST(HealthChurnTest, RepairRecruitsOnPermanentDepartures) {
  const ChurnFixture fx;
  HealthChurnConfig churn;
  churn.departure_rate = 0.5;
  churn.mean_return_time = 0.0;  // the dead stay dead: repair must act
  churn.horizon = 60.0;
  RepairPolicy repair;
  repair.budget = 3;
  Rng rng(9);
  const auto result = bsr::sim::simulate_churn_with_health(
      fx.g, fx.brokers, churn, {}, {}, tight_config(), repair, rng);
  EXPECT_EQ(result.returns, 0u);
  EXPECT_GT(result.repair_attempts, 0u);
  EXPECT_GT(result.replacements_added, 0u);
}

}  // namespace
