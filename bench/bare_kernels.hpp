// Uninstrumented twins of the hottest kernels, for perf_obs's baseline.
//
// These are NOT hand-maintained copies: bare_kernels.cpp recompiles the
// actual library sources (graph/engine.hpp's bfs, broker/maxsg.cpp) in a TU
// with BSR_OBS_FORCE_OFF defined, so "bare" is the same token stream with
// only the telemetry macros expanded to nothing. The entry points are
// renamed by the preprocessor so their symbols can't be linker-folded into
// the instrumented instantiations — the comparison stays two distinct
// compilations of one source.
#pragma once

#include <cstdint>

#include "broker/maxsg.hpp"
#include "graph/engine.hpp"

namespace bare {

/// engine::bfs<FaultAwareFilter> with the telemetry compiled out.
void bfs(const bsr::graph::CsrGraph& g, bsr::graph::NodeId source,
         bsr::graph::engine::Workspace& ws,
         bsr::graph::engine::FaultAwareFilter admit);

/// broker::maxsg with the telemetry compiled out.
[[nodiscard]] bsr::broker::MaxSgResult maxsg(const bsr::graph::CsrGraph& g,
                                             std::uint32_t k);

}  // namespace bare
