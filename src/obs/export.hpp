// Exporters for the telemetry plane.
//
// Three consumers, three formats:
//   * write_json     — machine-readable snapshot with a stable, versioned
//                      schema ("obs_schema_version"); keys appear in fixed
//                      registry slot order so outputs diff cleanly run-to-run.
//                      This is what BENCH_*.json files and the CI counter
//                      tripwire are built from.
//   * dump_pretty    — aligned human table (brokerctl stats prints this to
//                      stderr). Zero-valued slots are skipped.
//   * write_chrome_trace — the drained span tree as Chrome trace_event JSON
//                      (load in chrome://tracing or Perfetto for a flame
//                      chart); counter deltas ride along in "args".
//
// obs sits below every other library, so formatting here is hand-rolled
// rather than borrowed from bsr_io.
#pragma once

#include <iosfwd>
#include <span>

#include "obs/stats.hpp"
#include "obs/trace.hpp"

namespace bsr::obs {

/// Versioned JSON snapshot. Histograms serialize as
/// {"buckets": [[bucket_index, count], ...], "total": N} with zero buckets
/// omitted; bucket b >= 1 covers values in [2^(b-1), 2^b).
void write_json(std::ostream& os, const Snapshot& snap);

/// Aligned `name  value` table of every non-zero slot; histograms render as
/// total plus a compact nonzero-bucket list.
void dump_pretty(std::ostream& os, const Snapshot& snap);

/// Chrome trace_event ("X" complete events) for one thread's drained spans.
void write_chrome_trace(std::ostream& os, std::span<const SpanRecord> spans);

}  // namespace bsr::obs
