// Shared setup for the table/figure reproduction binaries.
//
// Every bench builds the same calibrated synthetic Internet topology (scaled
// by REPRO_SCALE) and prints a self-describing header, so outputs are
// comparable across binaries and runs.
#pragma once

#include <chrono>
#include <iostream>
#include <string>

#include "io/env.hpp"
#include "io/table.hpp"
#include "topology/internet.hpp"

namespace bsr::bench {

struct BenchContext {
  bsr::io::ExperimentEnv env;
  bsr::topology::InternetConfig config;   // already scaled
  bsr::topology::InternetTopology topo;
};

/// Builds the standard experiment context and prints the header banner.
inline BenchContext make_context(const std::string& title) {
  BenchContext ctx;
  ctx.env = bsr::io::experiment_env();
  bsr::topology::InternetConfig base;
  base.seed = ctx.env.seed;
  ctx.config = base.scaled(ctx.env.scale);

  bsr::io::print_banner(std::cout, title);
  std::cout << "config: " << bsr::io::describe(ctx.env) << "\n";

  const auto start = std::chrono::steady_clock::now();
  ctx.topo = bsr::topology::make_internet(ctx.config);
  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start);
  std::cout << "topology: " << ctx.topo.num_ases << " ASes + " << ctx.topo.num_ixps
            << " IXPs, " << ctx.topo.graph.num_edges() << " edges ("
            << bsr::io::format_double(elapsed.count(), 2) << "s to generate)\n";
  return ctx;
}

/// Wall-clock helper for per-stage timing lines.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bsr::bench
