#include "io/edge_list_io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "graph/graph_builder.hpp"

namespace bsr::io {

using bsr::graph::CsrGraph;
using bsr::graph::GraphBuilder;
using bsr::graph::NodeId;

void write_edge_list(std::ostream& os, const CsrGraph& g) {
  os << "# brokerset edge list: " << g.num_vertices() << " vertices, "
     << g.num_edges() << " edges\n";
  for (NodeId u = 0; u < g.num_vertices(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u < v) os << u << ' ' << v << '\n';
    }
  }
}

void write_edge_list_file(const std::string& path, const CsrGraph& g) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("write_edge_list_file: cannot open " + path);
  write_edge_list(out, g);
  if (!out) throw std::runtime_error("write_edge_list_file: write failed for " + path);
}

CsrGraph read_edge_list(std::istream& is) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> raw_edges;
  std::map<std::uint64_t, NodeId> id_map;  // ordered => dense ids keep order
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::uint64_t a = 0, b = 0;
    if (!(ls >> a)) continue;  // blank or comment-only line
    if (!(ls >> b)) {
      throw std::runtime_error("read_edge_list: line " + std::to_string(line_number) +
                               ": expected two vertex ids");
    }
    std::uint64_t extra = 0;
    if (ls >> extra) {
      throw std::runtime_error("read_edge_list: line " + std::to_string(line_number) +
                               ": trailing tokens");
    }
    raw_edges.emplace_back(a, b);
    id_map.emplace(a, 0);
    id_map.emplace(b, 0);
  }
  NodeId next = 0;
  for (auto& [raw, dense] : id_map) dense = next++;

  GraphBuilder builder(next);
  builder.reserve(raw_edges.size());
  for (const auto& [a, b] : raw_edges) {
    builder.add_edge(id_map.at(a), id_map.at(b));
  }
  return builder.build();
}

CsrGraph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_edge_list_file: cannot open " + path);
  return read_edge_list(in);
}

}  // namespace bsr::io
