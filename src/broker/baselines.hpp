// Baseline broker-selection algorithms from §5.1 / §6.1 of the paper.
//
//   SC       — the Set-Cover-style sequential dominating set of [31]: scan
//              vertices in random order, adding any vertex not yet dominated.
//              Guarantees a dominating set (100 % saturated connectivity) but
//              a huge one (~76 % of all vertices, Fig. 2a).
//   DB       — top-k vertices by degree ("Degree-Based").
//   PRB      — top-k vertices by PageRank ("PageRank-Based").
//   IXPB     — all IXPs whose degree exceeds a threshold ("IXP-Based");
//              caps at 15.7 % connectivity (Table 1 / Fig. 2b).
//   Tier1Only — exactly the tier-1 ISPs.
#pragma once

#include <cstdint>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"
#include "graph/pagerank.hpp"
#include "graph/rng.hpp"
#include "topology/internet.hpp"

namespace bsr::broker {

/// SC: random-order sequential dominating set. Output size depends on the
/// permutation — Fig. 2a plots its CDF across runs.
[[nodiscard]] BrokerSet sc_dominating_set(const bsr::graph::CsrGraph& g,
                                          bsr::graph::Rng& rng);

/// DB: the k highest-degree vertices (deterministic tie-break by id).
[[nodiscard]] BrokerSet db_top_degree(const bsr::graph::CsrGraph& g, std::uint32_t k);

/// PRB: the k highest-PageRank vertices.
[[nodiscard]] BrokerSet prb_top_pagerank(const bsr::graph::CsrGraph& g, std::uint32_t k,
                                         const bsr::graph::PageRankOptions& opts = {});

/// IXPB: every IXP with degree >= min_degree (0 = all IXPs).
[[nodiscard]] BrokerSet ixpb(const topology::InternetTopology& topo,
                             std::uint32_t min_degree = 0);

/// Tier1Only: all tier-1 ASes.
[[nodiscard]] BrokerSet tier1_only(const topology::InternetTopology& topo);

}  // namespace bsr::broker
