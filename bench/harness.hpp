// Unified bench harness over the telemetry plane.
//
// Every perf/ablation binary used to hand-roll its own std::chrono stopwatch
// and ad-hoc JSON. This header centralizes that: a Harness names the suite,
// run() times a callable (optionally repeated), wraps it in a BSR_SPAN so the
// phase shows up in traces, and captures the counter delta so each run
// carries its deterministic work-unit dimension next to its wall time.
//
// The emitted schema ("bsr-bench/1") is shared by every bench:
//   {
//     "bench_schema": "bsr-bench/1",
//     "suite": "...", "scale": ..., "seed": ..., "threads": ...,
//     "stats_enabled": true|false,
//     "total_work_units": sum of every run's work_units,
//     "metrics": { suite-level numbers },
//     "runs": [
//       { "name": ..., "repetitions": N, "wall_ms": ...,
//         "work_units": ..., "metrics": {...}, "counters": { nonzero only } }
//     ]
//   }
// Suites may append extra top-level sections through raw_section() when they
// keep a legacy layout alongside (perf_engine does); consumers that only
// speak bsr-bench/1 can ignore those.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "graph/engine.hpp"
#include "obs/export.hpp"
#include "obs/sketch.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace bsr::bench {

/// Peak resident set size of this process in bytes; 0 when the platform
/// offers no getrusage. The scale suite uses this to track the memory cost
/// of the 10x stress topology alongside its wall times.
inline std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB elsewhere
#endif
#else
  return 0;
#endif
}

struct RunResult {
  std::string name;
  int repetitions = 1;
  double wall_ms = 0.0;
  std::uint64_t work_units = 0;                        // delta over the run
  bsr::obs::Snapshot counters;                         // delta over the run
  bsr::obs::SketchSnapshot sketches{};                 // delta over the run
  std::vector<std::pair<std::string, double>> metrics; // per-run extras

  /// Wall milliseconds per single repetition.
  [[nodiscard]] double ms_per_rep() const {
    return repetitions > 0 ? wall_ms / repetitions : wall_ms;
  }
};

class Harness {
 public:
  explicit Harness(std::string suite, const BenchContext& ctx)
      : suite_(std::move(suite)), env_(ctx.env) {}

  /// Times `reps` back-to-back calls of fn() under a span named after the
  /// run; the recorded counters/work_units are the delta across all reps.
  template <class Fn>
  RunResult& run(const std::string& name, int reps, Fn&& fn) {
    runs_.push_back(RunResult{});
    RunResult& out = runs_.back();
    out.name = name;
    out.repetitions = reps;
    const bsr::obs::Snapshot before = bsr::obs::snapshot();
    const bsr::obs::SketchSnapshot sk_before = bsr::obs::snapshot_sketches();
    Stopwatch watch;
    {
      bsr::obs::Span span(out.name.c_str());
      for (int r = 0; r < reps; ++r) fn();
    }
    out.wall_ms = watch.seconds() * 1e3;
    out.counters = bsr::obs::delta(before, bsr::obs::snapshot());
    out.sketches =
        bsr::obs::sketch_delta(sk_before, bsr::obs::snapshot_sketches());
    out.work_units = bsr::obs::work_units(out.counters);
    return out;
  }

  template <class Fn>
  RunResult& run(const std::string& name, Fn&& fn) {
    return run(name, 1, std::forward<Fn>(fn));
  }

  /// Suite-level metric (appears under top-level "metrics").
  void metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Per-run metric, attached to the result returned by run().
  static void metric(RunResult& r, const std::string& key, double value) {
    r.metrics.emplace_back(key, value);
  }

  /// Extra top-level JSON section: emitted verbatim as `"key": <json>`.
  void raw_section(const std::string& key, std::string json) {
    raw_.emplace_back(key, std::move(json));
  }

  [[nodiscard]] const std::deque<RunResult>& runs() const { return runs_; }

  /// Deterministic work across every recorded run — the headline scalar the
  /// bench trend report (scripts/bench_report.py) compares across commits.
  [[nodiscard]] std::uint64_t total_work_units() const {
    std::uint64_t total = 0;
    for (const RunResult& r : runs_) total += r.work_units;
    return total;
  }

  void write_json(std::ostream& os) const {
    os << "{\n"
       << "  \"bench_schema\": \"bsr-bench/1\",\n"
       << "  \"suite\": \"" << suite_ << "\",\n"
       << "  \"scale\": " << env_.scale << ",\n"
       << "  \"seed\": " << env_.seed << ",\n"
       << "  \"threads\": " << bsr::graph::engine::num_threads() << ",\n"
       << "  \"stats_enabled\": " << (BSR_STATS_ENABLED ? "true" : "false")
       << ",\n  \"total_work_units\": " << total_work_units();
    if (const std::uint64_t rss = peak_rss_bytes(); rss != 0) {
      os << ",\n  \"peak_rss_bytes\": " << rss;
    }
    os << ",\n  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      os << (i == 0 ? "\n" : ",\n") << "    \"" << metrics_[i].first
         << "\": " << metrics_[i].second;
    }
    os << (metrics_.empty() ? "" : "\n  ") << "},\n  \"runs\": [";
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      const RunResult& r = runs_[i];
      os << (i == 0 ? "\n" : ",\n") << "    {\"name\": \"" << r.name
         << "\", \"repetitions\": " << r.repetitions
         << ", \"wall_ms\": " << r.wall_ms
         << ", \"work_units\": " << r.work_units << ",\n     \"metrics\": {";
      for (std::size_t m = 0; m < r.metrics.size(); ++m) {
        os << (m == 0 ? "" : ", ") << "\"" << r.metrics[m].first
           << "\": " << r.metrics[m].second;
      }
      os << "},\n     \"counters\": {";
      bool first = true;
      for (std::size_t c = 0; c < bsr::obs::kNumCounters; ++c) {
        if (r.counters.counters[c] == 0) continue;
        os << (first ? "" : ", ") << "\""
           << bsr::obs::name(static_cast<bsr::obs::Counter>(c))
           << "\": " << r.counters.counters[c];
        first = false;
      }
      os << "},\n     \"histograms\": {";
      first = true;
      for (std::size_t h = 0; h < bsr::obs::kNumHistograms; ++h) {
        const auto& hist = r.counters.histograms[h];
        std::uint64_t total = 0;
        for (const std::uint64_t c : hist) total += c;
        if (total == 0) continue;
        os << (first ? "" : ", ") << "\""
           << bsr::obs::name(static_cast<bsr::obs::Histogram>(h))
           << "\": {\"total\": " << total << ", \"buckets\": [";
        bool first_bucket = true;
        for (std::size_t b = 0; b < bsr::obs::kHistogramBuckets; ++b) {
          if (hist[b] == 0) continue;
          os << (first_bucket ? "" : ", ") << "[" << b << ", " << hist[b]
             << "]";
          first_bucket = false;
        }
        os << "]}";
        first = false;
      }
      os << "},\n     \"sketches\": {";
      first = true;
      for (std::size_t s = 0; s < bsr::obs::kNumSketches; ++s) {
        const bsr::obs::QuantileSketch& sk = r.sketches[s];
        if (sk.count() == 0) continue;
        os << (first ? "" : ", ") << "\""
           << bsr::obs::name(static_cast<bsr::obs::Sketch>(s))
           << "\": {\"count\": " << sk.count() << ", \"sum\": " << sk.sum()
           << ", \"p50\": " << sk.p50() << ", \"p90\": " << sk.p90()
           << ", \"p99\": " << sk.p99() << ", \"max\": " << sk.max()
           << ", \"buckets\": [";
        bool first_bucket = true;
        for (std::size_t b = 0; b < bsr::obs::QuantileSketch::kBuckets; ++b) {
          if (sk.buckets()[b] == 0) continue;
          os << (first_bucket ? "" : ", ") << "[" << b << ", "
             << sk.buckets()[b] << "]";
          first_bucket = false;
        }
        os << "]}";
        first = false;
      }
      os << "}}";
    }
    os << "\n  ]";
    for (const auto& [key, json] : raw_) {
      os << ",\n  \"" << key << "\": " << json;
    }
    os << "\n}\n";
  }

  /// Writes the suite file to `default_path` unless `env_override` names an
  /// alternative (the established BENCH_*_JSON convention). Logs the path.
  void write_json_file(const std::string& default_path,
                       const char* env_override) const {
    const char* from_env =
        env_override != nullptr ? std::getenv(env_override) : nullptr;
    const std::string path = from_env != nullptr ? from_env : default_path;
    std::ofstream out(path);
    write_json(out);
    std::cout << "\nwrote " << path << "\n";
  }

 private:
  std::string suite_;
  bsr::io::ExperimentEnv env_;
  // deque: run() hands out references that must survive later run() calls.
  std::deque<RunResult> runs_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, std::string>> raw_;
};

}  // namespace bsr::bench
