// Locality renumbering: permutation validity, structural round-trips, and
// the determinism contract — relabel -> solve -> unlabel must equal the
// direct solve bit-for-bit for every solver that accepts a Renumbering.
#include "graph/renumbering.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "broker/broker_set.hpp"
#include "broker/greedy_mcb.hpp"
#include "broker/maxsg.hpp"
#include "broker/resilience.hpp"
#include "graph/engine.hpp"
#include "graph/fault_plane.hpp"
#include "graph/rng.hpp"
#include "sim/router.hpp"
#include "test_util.hpp"
#include "topology/internet.hpp"
#include "topology/renumber.hpp"
#include "topology/serialization.hpp"

namespace bsr::graph {
namespace {

using bsr::test::make_connected_random;
using bsr::test::make_random;
using bsr::test::make_star;

/// Restores the environment-derived thread count even if a test fails.
struct ThreadGuard {
  ~ThreadGuard() { engine::set_num_threads(0); }
};

std::vector<NodeId> shuffled_order(NodeId n, std::uint64_t seed) {
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  Rng rng(seed);
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.uniform(i);
    std::swap(order[i - 1], order[j]);
  }
  return order;
}

TEST(Renumbering, IdentityIsNoOp) {
  const CsrGraph g = make_connected_random(64, 0.08, 7);
  const Renumbering id = Renumbering::identity(g.num_vertices());
  EXPECT_TRUE(id.is_identity());
  const CsrGraph h = id.apply(g);
  // Byte-for-byte: same offsets layout, same adjacency content.
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (NodeId v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = h.neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "adjacency differs at v=" << v;
  }
}

TEST(Renumbering, FromNewOrderRejectsNonPermutations) {
  EXPECT_THROW(Renumbering::from_new_order({0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(Renumbering::from_new_order({0, 3, 1}), std::invalid_argument);
  EXPECT_NO_THROW(Renumbering::from_new_order({2, 0, 1}));
}

TEST(Renumbering, MapsAreMutualInverses) {
  const Renumbering r = Renumbering::from_new_order(shuffled_order(50, 3));
  for (NodeId v = 0; v < 50; ++v) {
    EXPECT_EQ(r.to_old(r.to_new(v)), v);
    EXPECT_EQ(r.to_new(r.to_old(v)), v);
  }
}

TEST(Renumbering, ApplyPreservesStructure) {
  const CsrGraph g = make_random(90, 0.06, 11);
  const Renumbering r = Renumbering::from_new_order(shuffled_order(90, 4));
  const CsrGraph h = r.apply(g);
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_vertices(); ++u) {
    EXPECT_EQ(h.degree(r.to_new(u)), g.degree(u));
    for (const NodeId v : g.neighbors(u)) {
      EXPECT_TRUE(h.has_edge(r.to_new(u), r.to_new(v)));
    }
  }
}

TEST(Renumbering, DegreeDescendingPacksHubsFirst) {
  const CsrGraph g = make_star(40);  // vertex 0 is the hub already
  const Renumbering r = Renumbering::degree_descending(g);
  EXPECT_EQ(r.to_old(0), 0u);  // highest degree keeps slot 0
  const CsrGraph h = r.apply(g);
  for (NodeId v = 1; v < h.num_vertices(); ++v) {
    EXPECT_LE(h.degree(v), h.degree(0));
  }
}

TEST(Renumbering, BfsOrderCoversUnreachedVertices) {
  // Two components: BFS order from component A, stragglers appended in
  // ascending id order — still a valid permutation.
  const CsrGraph g = make_random(60, 0.03, 5);
  const Renumbering r = Renumbering::bfs_order(g, 0);
  std::vector<NodeId> seen(60, 0);
  for (NodeId v = 0; v < 60; ++v) seen[r.to_old(v)] += 1;
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](NodeId c) { return c == 1; }));
}

TEST(Renumbering, BrokerSetRoundTrip) {
  const Renumbering r = Renumbering::from_new_order(shuffled_order(30, 9));
  bsr::broker::BrokerSet b(30);
  b.add(4);
  b.add(17);
  b.add(2);
  const auto mapped = bsr::broker::renumber_to_new(r, b);
  const auto back = bsr::broker::renumber_to_old(r, mapped);
  ASSERT_EQ(back.size(), b.size());
  EXPECT_TRUE(std::equal(back.members().begin(), back.members().end(),
                         b.members().begin()));
  EXPECT_TRUE(mapped.contains(r.to_new(17)));
}

TEST(Renumbering, MaxsgRoundTripMatchesDirectSolve) {
  ThreadGuard guard;
  for (std::uint64_t seed : {1ull, 21ull}) {
    const CsrGraph g = make_connected_random(220, 0.025, seed);
    const Renumbering r = Renumbering::degree_descending(g);
    const CsrGraph h = r.apply(g);
    const auto direct = bsr::broker::maxsg(g, 16);
    for (const int threads : {1, 4}) {
      engine::set_num_threads(threads);
      bsr::broker::MaxSgOptions options;
      options.renumbering = &r;
      const auto via = bsr::broker::maxsg(h, 16, options);
      ASSERT_EQ(via.brokers.size(), direct.brokers.size());
      EXPECT_TRUE(std::equal(via.brokers.members().begin(),
                             via.brokers.members().end(),
                             direct.brokers.members().begin()))
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(via.component_curve, direct.component_curve);
      EXPECT_EQ(via.final_component, direct.final_component);
      EXPECT_EQ(via.coverage, direct.coverage);
    }
  }
}

TEST(Renumbering, GreedyRoundTripMatchesDirectSolve) {
  ThreadGuard guard;
  const CsrGraph g = make_connected_random(180, 0.03, 13);
  const Renumbering r = Renumbering::degree_descending(g);
  const CsrGraph h = r.apply(g);
  const auto direct = bsr::broker::greedy_mcb(g, 12);
  for (const int threads : {1, 3}) {
    engine::set_num_threads(threads);
    const auto via = bsr::broker::greedy_mcb(h, 12, &r);
    ASSERT_EQ(via.brokers.size(), direct.brokers.size());
    EXPECT_TRUE(std::equal(via.brokers.members().begin(),
                           via.brokers.members().end(),
                           direct.brokers.members().begin()));
    EXPECT_EQ(via.coverage_curve, direct.coverage_curve);
    EXPECT_EQ(via.coverage, direct.coverage);
  }
}

TEST(Renumbering, ResilienceCurveInvariantUnderRelabeling) {
  const CsrGraph g = make_connected_random(150, 0.04, 17);
  const Renumbering r = Renumbering::degree_descending(g);
  const CsrGraph h = r.apply(g);
  const auto brokers = bsr::broker::greedy_mcb(g, 10).brokers;
  const std::vector<std::size_t> steps = {0, 2, 4, 6};
  Rng rng_a(99);
  Rng rng_b(99);
  const auto direct = bsr::broker::resilience_curve(
      g, brokers, steps, bsr::broker::FailureMode::kRandom, rng_a);
  const auto via = bsr::broker::resilience_curve(
      h, bsr::broker::renumber_to_new(r, brokers), steps,
      bsr::broker::FailureMode::kRandom, rng_b);
  EXPECT_EQ(via.failures, direct.failures);
  EXPECT_EQ(via.connectivity, direct.connectivity);  // exact, not approximate
}

TEST(Renumbering, RouterTiersInvariantUnderRelabeling) {
  const CsrGraph g = make_connected_random(100, 0.05, 23);
  const NodeId n = g.num_vertices();
  const Renumbering r = Renumbering::degree_descending(g);
  const CsrGraph h = r.apply(g);
  const auto brokers = bsr::broker::greedy_mcb(g, 8).brokers;
  const auto brokers_new = bsr::broker::renumber_to_new(r, brokers);

  FaultPlane plane_old(g);
  FaultPlane plane_new(h);
  Rng rng(7);
  for (const Edge& e : g.edges()) {
    if (rng.bernoulli(0.1)) {
      plane_old.fail_edge(e.u, e.v);
      const Edge m = r.map_edge_to_new(e);
      plane_new.fail_edge(m.u, m.v);
    }
  }

  bsr::sim::Router router_old(g, brokers, &plane_old);
  bsr::sim::Router router_new(h, brokers_new, &plane_new);
  const bsr::sim::DegradationPolicy policy;
  for (NodeId src = 0; src < n; src += 13) {
    for (NodeId dst = 1; dst < n; dst += 17) {
      if (src == dst) continue;
      const auto a = router_old.route_with_degradation(src, dst, policy);
      const auto b = router_new.route_with_degradation(r.to_new(src),
                                                       r.to_new(dst), policy);
      EXPECT_EQ(b.tier, a.tier) << src << "->" << dst;
      EXPECT_EQ(b.route.hops(), a.route.hops()) << src << "->" << dst;
    }
  }
}

TEST(Renumbering, TopologyRenumberPreservesContract) {
  const auto topo =
      bsr::topology::make_internet(bsr::topology::InternetConfig{}.scaled(0.01));
  const auto rt = bsr::topology::renumber_topology(topo);
  const NodeId n = topo.num_vertices();
  ASSERT_EQ(rt.topo.num_vertices(), n);
  ASSERT_EQ(rt.topo.graph.num_edges(), topo.graph.num_edges());
  EXPECT_EQ(rt.topo.num_ases, topo.num_ases);
  // Segmented relabeling keeps the AS/IXP id ranges (is_ixp stays valid) and
  // permutes metadata alongside.
  for (NodeId v = 0; v < n; ++v) {
    const NodeId old_id = rt.renumbering.to_old(v);
    EXPECT_EQ(rt.topo.is_ixp(v), topo.is_ixp(old_id));
    EXPECT_EQ(rt.topo.meta[v].tier, topo.meta[old_id].tier);
    EXPECT_EQ(rt.topo.meta[v].type, topo.meta[old_id].type);
  }
  // Relationship labels survive with their orientation.
  std::size_t checked = 0;
  for (const Edge& e : topo.graph.edges()) {
    if (++checked > 500) break;
    const bool provider_old = topo.relations.is_provider_of(e.u, e.v);
    EXPECT_EQ(rt.topo.relations.is_provider_of(rt.renumbering.to_new(e.u),
                                               rt.renumbering.to_new(e.v)),
              provider_old);
  }
  // Locality must improve on the generator's creation-order labels.
  EXPECT_LT(average_neighbor_gap(rt.topo.graph),
            average_neighbor_gap(topo.graph));
}

TEST(Renumbering, RenumberedTopologySerializationRoundTrip) {
  const auto topo =
      bsr::topology::make_internet(bsr::topology::InternetConfig{}.scaled(0.005));
  const auto rt = bsr::topology::renumber_topology(topo);
  std::stringstream ss;
  bsr::topology::save_topology(ss, rt.topo);
  const auto loaded = bsr::topology::load_topology(ss);
  ASSERT_EQ(loaded.num_vertices(), rt.topo.num_vertices());
  ASSERT_EQ(loaded.graph.num_edges(), rt.topo.graph.num_edges());
  EXPECT_EQ(loaded.num_ases, rt.topo.num_ases);
  EXPECT_EQ(loaded.graph.edges(), rt.topo.graph.edges());
  for (NodeId v = 0; v < loaded.num_vertices(); v += 7) {
    EXPECT_EQ(loaded.meta[v].tier, rt.topo.meta[v].tier);
  }
}

TEST(Renumbering, NeighborGapMetricsAgree) {
  const CsrGraph g = make_connected_random(80, 0.05, 29);
  const std::uint64_t total = total_neighbor_gap(g);
  const double avg = average_neighbor_gap(g);
  EXPECT_DOUBLE_EQ(avg, static_cast<double>(total) /
                            static_cast<double>(2 * g.num_edges()));
  EXPECT_EQ(average_neighbor_gap(CsrGraph()), 0.0);
}

}  // namespace
}  // namespace bsr::graph
