// Instrumented twin of broker::maxsg, recompiled under the bench's alignment
// flags so perf_obs can time it against the bare twin without code-placement
// asymmetry. See instr_kernels.cpp.
#pragma once

#include <cstdint>

#include "broker/maxsg.hpp"

namespace instr {

/// broker::maxsg, token-identical, compiled in a bench TU.
[[nodiscard]] bsr::broker::MaxSgResult maxsg(const bsr::graph::CsrGraph& g,
                                             std::uint32_t k);

}  // namespace instr
