#include "topology/renumber.hpp"

#include <vector>

namespace bsr::topology {

using bsr::graph::Edge;
using bsr::graph::NodeId;
using bsr::graph::Renumbering;

RenumberedTopology renumber_topology(const InternetTopology& topo) {
  const NodeId n = topo.graph.num_vertices();
  Renumbering ren =
      Renumbering::degree_descending_segmented(topo.graph, topo.num_ases);

  RenumberedTopology out{
      InternetTopology{
          .graph = ren.apply(topo.graph),
          .meta = {},
          .relations = {},
          .num_ases = topo.num_ases,
          .num_ixps = topo.num_ixps,
      },
      std::move(ren),
  };

  out.topo.meta.resize(n);
  for (NodeId new_id = 0; new_id < n; ++new_id) {
    out.topo.meta[new_id] = topo.meta[out.renumbering.to_old(new_id)];
  }

  // Rebuild relationship labels on the relabeled adjacency. Scanning the new
  // graph in ascending (u, v) order yields the canonical sorted edge set the
  // EdgeRelations constructor requires. rel_canonical returns the stored
  // label oriented from the ORIGINAL canonical (min-id) endpoint's view, so
  // when the relabeling flips which endpoint is smaller the provider
  // direction must be flipped along with it.
  std::vector<Edge> edges;
  std::vector<EdgeRel> rels;
  edges.reserve(out.topo.graph.num_edges());
  rels.reserve(out.topo.graph.num_edges());
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : out.topo.graph.neighbors(u)) {
      if (v <= u) continue;
      const NodeId a = out.renumbering.to_old(u);
      const NodeId b = out.renumbering.to_old(v);
      EdgeRel rel = topo.relations.rel_canonical(a, b);
      if (a > b) {
        if (rel == EdgeRel::kUProviderOfV) {
          rel = EdgeRel::kVProviderOfU;
        } else if (rel == EdgeRel::kVProviderOfU) {
          rel = EdgeRel::kUProviderOfV;
        }
      }
      edges.push_back(Edge{u, v});
      rels.push_back(rel);
    }
  }
  out.topo.relations = EdgeRelations(out.topo.graph, edges, rels);
  return out;
}

}  // namespace bsr::topology
