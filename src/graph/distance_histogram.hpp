// Hop-distance distributions ("l-hop E2E connectivity", paper §5.2).
//
// F(l) — the fraction of ordered source-destination pairs whose shortest
// (possibly policy/domination-filtered) path is at most l hops — is the
// paper's central evaluation metric. Exact all-pairs BFS is O(V(V+E)) which
// is ~40 G operations on the 52k-vertex topology, so large graphs are
// evaluated from a uniform sample of BFS sources; each source contributes
// its exact distance profile, making the estimator unbiased. The paper's
// reported resolution (two decimals in percent) is far above the sampling
// error at >= 512 sources.
//
// distance_cdf_from_sources_with<Filter> is the engine-native entry point:
// the filter struct inlines into the BFS loop and sources are split across
// BSR_THREADS shards. Per-shard histograms are integer counts merged in
// shard order, and the shard partition depends only on the source count, so
// the result is bit-identical at any thread count. The EdgeFilter overloads
// below are shims over it.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/edge_filter.hpp"
#include "graph/engine.hpp"
#include "graph/rng.hpp"

namespace bsr::graph {

struct DistanceCdf {
  /// cdf[l] = estimated fraction of ordered (u, v), u != v, with d(u, v) <= l.
  /// cdf[0] is always 0. Monotone non-decreasing.
  std::vector<double> cdf;
  /// Fraction of ordered pairs that are reachable at all ("saturated E2E
  /// connectivity" in the paper's terms). Equals cdf.back().
  double reachable = 0.0;
  /// Number of BFS sources used.
  std::size_t sources_used = 0;

  /// Fraction of pairs within l hops; saturates at `reachable` for large l.
  [[nodiscard]] double at(std::uint32_t l) const noexcept {
    if (cdf.empty()) return 0.0;
    return l < cdf.size() ? cdf[l] : cdf.back();
  }
};

namespace detail {

/// Normalizes a per-distance target count into a DistanceCdf.
[[nodiscard]] DistanceCdf cdf_from_histogram(std::vector<std::uint64_t> histogram,
                                             std::size_t sources_used, NodeId n);

}  // namespace detail

/// Distance CDF from explicit BFS sources with a static-dispatch edge filter.
/// Sources are sharded across engine::num_threads() workers; bit-identical
/// at any thread count.
template <class Filter>
[[nodiscard]] DistanceCdf distance_cdf_from_sources_with(
    const CsrGraph& g, std::span<const NodeId> sources, Filter filter) {
  const NodeId n = g.num_vertices();
  if (n < 2) throw std::invalid_argument("distance_cdf: need at least 2 vertices");
  if (sources.empty()) throw std::invalid_argument("distance_cdf: no sources");

  const std::size_t shards = engine::plan_shards(sources.size());
  std::vector<std::vector<std::uint64_t>> partial(shards);
  engine::for_each_shard(
      sources.size(), [&](std::size_t shard, std::size_t begin, std::size_t end) {
        auto& ws = engine::tls_workspace();
        auto& hist = partial[shard];
        for (std::size_t i = begin; i < end; ++i) {
          engine::bfs(g, sources[i], ws, filter);
          for (const NodeId v : ws.visit_order()) {
            const std::uint32_t d = ws.dist_unchecked(v);
            if (d == 0) continue;  // the source itself
            if (d >= hist.size()) hist.resize(d + 1, 0);
            ++hist[d];
          }
        }
      });

  std::vector<std::uint64_t> histogram = std::move(partial[0]);
  for (std::size_t s = 1; s < shards; ++s) {
    if (partial[s].size() > histogram.size()) histogram.resize(partial[s].size(), 0);
    for (std::size_t l = 0; l < partial[s].size(); ++l) histogram[l] += partial[s][l];
  }
  return detail::cdf_from_histogram(std::move(histogram), sources.size(), n);
}

/// Distance CDF from explicit BFS sources. If `filter` is non-empty, edges
/// are admitted per the filter (e.g. dominated-subgraph traversal).
/// Destinations range over all vertices other than the source.
[[nodiscard]] DistanceCdf distance_cdf_from_sources(const CsrGraph& g,
                                                    std::span<const NodeId> sources,
                                                    const EdgeFilter& filter = {});

/// Distance CDF from `num_sources` uniformly sampled distinct sources
/// (all vertices if num_sources >= |V|).
[[nodiscard]] DistanceCdf distance_cdf_sampled(const CsrGraph& g, Rng& rng,
                                               std::size_t num_sources,
                                               const EdgeFilter& filter = {});

/// Exact distance CDF (BFS from every vertex). Small graphs / tests only.
[[nodiscard]] DistanceCdf distance_cdf_exact(const CsrGraph& g,
                                             const EdgeFilter& filter = {});

/// Maximum absolute deviation max_l |a(l) - b(l)| between two CDFs — the
/// epsilon-feasibility test of Eq. (4) in the paper.
[[nodiscard]] double max_cdf_deviation(const DistanceCdf& a, const DistanceCdf& b);

}  // namespace bsr::graph
