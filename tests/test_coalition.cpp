#include "econ/coalition.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace bsr::econ {
namespace {

using bsr::graph::NodeId;
using bsr::graph::Rng;
using bsr::test::make_connected_random;
using bsr::test::make_star;

TEST(Coalition, EmptyCoalitionWorthless) {
  const auto g = make_star(6);
  const std::vector<NodeId> players{0, 1, 2};
  const CoalitionGame game(g, players, {});
  EXPECT_DOUBLE_EQ(game.value(0), 0.0);
}

TEST(Coalition, CenterOfStarIsValuable) {
  const auto g = make_star(10);
  const std::vector<NodeId> players{0, 1, 2};
  CoalitionParams params;
  params.operating_cost = 0.0;
  const CoalitionGame game(g, players, params);
  // Player 0 (center) alone connects all pairs; a leaf alone connects one.
  EXPECT_GT(game.value(0b001), 10.0 * game.value(0b010));
}

TEST(Coalition, OperatingCostReducesValue) {
  const auto g = make_star(8);
  const std::vector<NodeId> players{0};
  CoalitionParams cheap, pricey;
  cheap.operating_cost = 0.0;
  pricey.operating_cost = 5.0;
  EXPECT_GT(CoalitionGame(g, players, cheap).value(1),
            CoalitionGame(g, players, pricey).value(1));
}

TEST(Coalition, RejectsBadPlayers) {
  const auto g = make_star(5);
  const std::vector<NodeId> none{};
  EXPECT_THROW(CoalitionGame(g, none, {}), std::invalid_argument);
  const std::vector<NodeId> out_of_range{9};
  EXPECT_THROW(CoalitionGame(g, out_of_range, {}), std::invalid_argument);
}

TEST(Coalition, ShapleyIntegrationOnSmallGame) {
  const auto g = make_connected_random(20, 0.15, 42);
  // Players: 5 arbitrary vertices.
  const std::vector<NodeId> players{0, 3, 7, 11, 19};
  CoalitionParams params;
  params.operating_cost = 0.0;  // keep the game monotone
  const CoalitionGame game(g, players, params);
  const auto phi = shapley_exact(players.size(), game.characteristic());
  // Efficiency: shares sum to the grand coalition's worth.
  double total = 0.0;
  for (const double p : phi) total += p;
  EXPECT_NEAR(total, game.value((1ull << players.size()) - 1), 1e-9);
  // Monotone game => non-negative shares.
  for (const double p : phi) EXPECT_GE(p, -1e-9);
}

TEST(Coalition, NetworkExternalityEarlyOn) {
  // With few brokers on a sparse graph, cooperation beats isolation:
  // connectivity of a merged coalition exceeds the sum of its parts.
  const auto g = bsr::test::make_path(9);
  const std::vector<NodeId> players{2, 4, 6};
  CoalitionParams params;
  params.operating_cost = 0.0;
  const CoalitionGame game(g, players, params);
  EXPECT_GT(game.value(0b111), game.value(0b001) + game.value(0b010) +
                                   game.value(0b100));
}

}  // namespace
}  // namespace bsr::econ
