// SloMonitor: spec parsing and its guards, multi-window burn-rate gating,
// breach/recover episode accounting, journal replay equivalence, and the
// machine-readable verdict JSON.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "obs/export.hpp"
#include "obs/journal.hpp"
#include "obs/slo.hpp"

namespace {

using bsr::obs::Event;
using bsr::obs::EventRecord;
using bsr::obs::Journal;
using bsr::obs::SloMonitor;
using bsr::obs::SloObjective;
using bsr::obs::SloReport;
using bsr::obs::SloSample;
using bsr::obs::SloSpec;

SloSample sample(double t, std::uint64_t fresh, std::uint64_t stale,
                 std::uint64_t refused = 0, std::uint64_t staleness = 0,
                 std::uint64_t p99 = 10, std::uint64_t max = 12) {
  SloSample s;
  s.time = t;
  s.fresh = fresh;
  s.stale_served = stale;
  s.refused = refused;
  s.staleness = staleness;
  s.p99_ticks = p99;
  s.max_ticks = max;
  return s;
}

// --- spec parsing ------------------------------------------------------------

TEST(SloSpecParse, ParsesEveryKey) {
  const SloSpec spec = bsr::obs::parse_slo_spec(
      "fresh_min=0.99, refusal_max=0.05; p99_max=200, stale_max=64, "
      "window=2, long_window=8, burn=1.5");
  EXPECT_DOUBLE_EQ(spec.fresh_min, 0.99);
  EXPECT_DOUBLE_EQ(spec.refusal_max, 0.05);
  EXPECT_DOUBLE_EQ(spec.p99_ticks_max, 200.0);
  EXPECT_DOUBLE_EQ(spec.stale_max, 64.0);
  EXPECT_DOUBLE_EQ(spec.window, 2.0);
  EXPECT_DOUBLE_EQ(spec.long_window, 8.0);
  EXPECT_DOUBLE_EQ(spec.burn_threshold, 1.5);
}

TEST(SloSpecParse, RejectsMalformedInput) {
  const auto parse = [](std::string_view text) {
    (void)bsr::obs::parse_slo_spec(text);
  };
  EXPECT_THROW(parse(""), std::invalid_argument);
  EXPECT_THROW(parse("window=5"), std::invalid_argument)
      << "no objective enabled";
  EXPECT_THROW(parse("bogus_key=1"), std::invalid_argument);
  EXPECT_THROW(parse("fresh_min=abc"), std::invalid_argument);
  EXPECT_THROW(parse("fresh_min=1.5"), std::invalid_argument)
      << "fraction targets live in (0, 1)";
  EXPECT_THROW(parse("fresh_min"), std::invalid_argument) << "missing '='";
  EXPECT_THROW(parse("fresh_min=0.9,window=10,long_window=2"),
               std::invalid_argument)
      << "long window shorter than short window";
}

TEST(SloSpecParse, MonitorRejectsInvalidSpecToo) {
  SloSpec spec;  // all objectives disabled
  EXPECT_THROW(SloMonitor{spec}, std::invalid_argument);
}

// --- burn-rate gating --------------------------------------------------------

TEST(SloMonitorGating, SingleBadRoundDoesNotPage) {
  // Short window reacts, long window filters: one partially-stale round
  // among healthy ones burns the 1-unit window but not the 10-unit one.
  SloMonitor monitor(
      bsr::obs::parse_slo_spec("fresh_min=0.9,window=1,long_window=10"));
  for (int t = 0; t < 8; ++t) {
    monitor.observe(t == 5 ? sample(5.0, 75, 25)
                           : sample(static_cast<double>(t), 100, 0));
  }
  const SloReport& report = monitor.report();
  EXPECT_EQ(report.breaches, 0u);
  EXPECT_TRUE(report.ok());
  const auto& fresh_obj = report.objectives[static_cast<std::size_t>(
      SloObjective::kFreshFraction)];
  EXPECT_TRUE(fresh_obj.enabled);
  EXPECT_GE(fresh_obj.worst_short_burn, 1.0) << "short window did burn";
  EXPECT_LT(fresh_obj.worst_long_burn, 1.0) << "long window filtered it";
}

TEST(SloMonitorGating, SustainedDegradationPagesThenRecovers) {
  SloMonitor monitor(
      bsr::obs::parse_slo_spec("fresh_min=0.9,window=1,long_window=4"));
  double t = 0.0;
  for (int i = 0; i < 6; ++i) monitor.observe(sample(t++, 100, 0));
  EXPECT_FALSE(monitor.in_breach());
  for (int i = 0; i < 6; ++i) monitor.observe(sample(t++, 0, 100));
  EXPECT_TRUE(monitor.in_breach());
  for (int i = 0; i < 8; ++i) monitor.observe(sample(t++, 100, 0));
  EXPECT_FALSE(monitor.in_breach());

  const SloReport& report = monitor.report();
  EXPECT_EQ(report.breaches, 1u) << "one episode, not one count per sample";
  EXPECT_EQ(report.recovers, 1u);
  EXPECT_FALSE(report.ok());
  const auto& fresh_obj = report.objectives[static_cast<std::size_t>(
      SloObjective::kFreshFraction)];
  EXPECT_GT(fresh_obj.breach_samples, 0u);
  EXPECT_GE(fresh_obj.first_breach_time, 6.0);
}

TEST(SloMonitorGating, BoundObjectivesUseWindowedWorstCase) {
  // stale_max: burn = worst staleness in window / bound.
  SloMonitor monitor(
      bsr::obs::parse_slo_spec("stale_max=8,window=2,long_window=4"));
  monitor.observe(sample(0.0, 10, 0, 0, /*staleness=*/4));
  EXPECT_FALSE(monitor.in_breach());
  monitor.observe(sample(1.0, 10, 0, 0, /*staleness=*/16));
  monitor.observe(sample(2.0, 10, 0, 0, /*staleness=*/16));
  monitor.observe(sample(3.0, 10, 0, 0, /*staleness=*/16));
  monitor.observe(sample(4.0, 10, 0, 0, /*staleness=*/16));
  EXPECT_TRUE(monitor.in_breach()) << "16 > bound 8 across both windows";
}

TEST(SloMonitorGating, SheddedAnswersSpendNoFreshBudget) {
  // All answers shedded: no admitted answers, so the fresh objective has
  // nothing to burn.
  SloMonitor monitor(
      bsr::obs::parse_slo_spec("fresh_min=0.9,window=1,long_window=2"));
  SloSample s = sample(0.0, 0, 0);
  s.shedded = 500;
  monitor.observe(s);
  EXPECT_FALSE(monitor.in_breach());
  EXPECT_EQ(monitor.report().breaches, 0u);
}

TEST(SloMonitorGating, RefusalObjective) {
  SloMonitor monitor(
      bsr::obs::parse_slo_spec("refusal_max=0.1,window=1,long_window=2"));
  monitor.observe(sample(0.0, 50, 0, /*refused=*/50));
  monitor.observe(sample(1.0, 50, 0, /*refused=*/50));
  monitor.observe(sample(2.0, 50, 0, /*refused=*/50));
  EXPECT_TRUE(monitor.in_breach());
}

TEST(SloMonitorGating, RejectsTimeTravel) {
  SloMonitor monitor(
      bsr::obs::parse_slo_spec("fresh_min=0.9,window=1,long_window=2"));
  monitor.observe(sample(5.0, 10, 0));
  EXPECT_THROW(monitor.observe(sample(4.0, 10, 0)), std::invalid_argument);
}

// --- journal replay ----------------------------------------------------------

/// Packs one round the way RouteService::tally journals it.
void push_round(Journal& journal, double t, std::uint64_t fresh,
                std::uint64_t stale, std::uint64_t shed, std::uint64_t refused,
                std::uint64_t p99, std::uint64_t max, std::uint64_t staleness) {
  EventRecord batch;
  batch.time = t;
  batch.type = Event::kRouteServiceBatch;
  batch.subject = (fresh << 32) | stale;
  batch.correlation = (shed << 32) | refused;
  batch.seq = journal.recorded++;
  journal.events.push_back(batch);
  EventRecord cost;
  cost.time = t;
  cost.type = Event::kRouteServiceBatchCost;
  cost.subject = (p99 << 32) | max;
  cost.correlation = staleness;
  cost.seq = journal.recorded++;
  journal.events.push_back(cost);
}

TEST(SloJournalReplay, SamplesRoundTripThePackedEvents) {
  Journal journal;
  push_round(journal, 0.5, 90, 10, 3, 2, 21, 40, 7);
  push_round(journal, 1.5, 80, 20, 0, 0, 19, 22, 9);
  const auto samples = bsr::obs::slo_samples_from_journal(journal);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0].time, 0.5);
  EXPECT_EQ(samples[0].fresh, 90u);
  EXPECT_EQ(samples[0].stale_served, 10u);
  EXPECT_EQ(samples[0].shedded, 3u);
  EXPECT_EQ(samples[0].refused, 2u);
  EXPECT_EQ(samples[0].p99_ticks, 21u);
  EXPECT_EQ(samples[0].max_ticks, 40u);
  EXPECT_EQ(samples[0].staleness, 7u);
  EXPECT_EQ(samples[1].fresh, 80u);
}

TEST(SloJournalReplay, SameTimestampRoundsMergeIntoOneSample) {
  // Two single-query batches at the same instant must evaluate like one
  // batch of two — however the queries were batched, same verdict.
  Journal journal;
  push_round(journal, 2.0, 1, 0, 0, 0, 5, 5, 0);
  push_round(journal, 2.0, 0, 1, 0, 0, 9, 9, 3);
  const auto samples = bsr::obs::slo_samples_from_journal(journal);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].fresh, 1u);
  EXPECT_EQ(samples[0].stale_served, 1u);
  EXPECT_EQ(samples[0].p99_ticks, 9u) << "costs take the max";
  EXPECT_EQ(samples[0].staleness, 3u);
}

TEST(SloJournalReplay, ReplayMatchesLiveObservation) {
  Journal journal;
  push_round(journal, 0.0, 100, 0, 0, 0, 10, 11, 0);
  push_round(journal, 1.0, 0, 100, 0, 0, 12, 14, 5);
  push_round(journal, 2.0, 0, 100, 0, 0, 12, 14, 6);
  push_round(journal, 3.0, 100, 0, 0, 0, 10, 11, 0);

  const char* spec = "fresh_min=0.99,window=1,long_window=2";
  SloMonitor live{bsr::obs::parse_slo_spec(spec)};
  for (const auto& s : bsr::obs::slo_samples_from_journal(journal)) {
    live.observe(s);
  }
  SloMonitor replay{bsr::obs::parse_slo_spec(spec)};
  for (const auto& s : bsr::obs::slo_samples_from_journal(journal)) {
    replay.observe(s);
  }
  std::ostringstream a, b;
  bsr::obs::write_slo_json(a, live.report());
  bsr::obs::write_slo_json(b, replay.report());
  EXPECT_EQ(a.str(), b.str()) << "verdicts must agree byte for byte";
  EXPECT_EQ(live.report().breaches, 1u);
}

// --- verdict JSON ------------------------------------------------------------

TEST(SloVerdictJson, GoldenShape) {
  SloMonitor monitor(
      bsr::obs::parse_slo_spec("fresh_min=0.5,window=1,long_window=2"));
  monitor.observe(sample(0.0, 100, 0));
  std::ostringstream os;
  bsr::obs::write_slo_json(os, monitor.report());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"slo_schema\": \"bsr-slo/1\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
  EXPECT_NE(json.find("\"samples\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"fresh_fraction\""), std::string::npos);
  EXPECT_EQ(json.find("refusal"), std::string::npos)
      << "disabled objectives stay out of the verdict";
}

}  // namespace
