// PageRank by power iteration on the undirected graph.
//
// The PRB baseline ranks candidate brokers by PageRank; Fig. 3 correlates
// PageRank values with marginal connectivity gains. On an undirected graph
// PageRank is statistically close to the degree distribution (as the paper
// notes, citing [32]) but not identical — the difference is exactly what
// Fig. 3 probes.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"

namespace bsr::graph {

struct PageRankOptions {
  double damping = 0.85;
  double tolerance = 1e-10;  // L1 change per iteration to declare convergence
  int max_iterations = 200;
};

/// PageRank scores summing to 1. Dangling (degree-0) vertices distribute
/// their mass uniformly. Throws std::invalid_argument for bad options.
[[nodiscard]] std::vector<double> pagerank(const CsrGraph& g,
                                           const PageRankOptions& options = {});

/// Vertex ids sorted by descending PageRank (deterministic tie-break by id).
[[nodiscard]] std::vector<NodeId> vertices_by_pagerank_desc(
    const CsrGraph& g, const PageRankOptions& options = {});

}  // namespace bsr::graph
