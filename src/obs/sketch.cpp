#include "obs/sketch.hpp"

namespace bsr::obs {

namespace {

constexpr std::array<std::string_view, kNumSketches> kSketchNames = {{
#define BSR_OBS_X(id, str) str,
    BSR_OBS_SKETCH_TABLE(BSR_OBS_X)
#undef BSR_OBS_X
}};

}  // namespace

std::uint64_t QuantileSketch::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // rank = ceil(q * count), at least 1: the k-th smallest observation.
  std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_));
  if (static_cast<double>(rank) < q * static_cast<double>(count_)) ++rank;
  if (rank < 1) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) return bucket_lower(i);
  }
  return bucket_lower(kBuckets - 1);
}

std::uint64_t QuantileSketch::min() const noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] != 0) return bucket_lower(i);
  }
  return 0;
}

std::uint64_t QuantileSketch::max() const noexcept {
  for (std::size_t i = kBuckets; i-- > 0;) {
    if (buckets_[i] != 0) return bucket_lower(i);
  }
  return 0;
}

std::string_view name(Sketch s) noexcept {
  return kSketchNames[static_cast<std::size_t>(s)];
}

const QuantileSketch& sketch(Sketch s) noexcept {
  return detail::sketch_registry()[static_cast<std::size_t>(s)];
}

SketchSnapshot snapshot_sketches() { return detail::sketch_registry(); }

void reset_sketches() {
  for (QuantileSketch& s : detail::sketch_registry()) s.clear();
}

SketchSnapshot sketch_delta(const SketchSnapshot& before,
                            const SketchSnapshot& after) {
  SketchSnapshot out;
  for (std::size_t s = 0; s < kNumSketches; ++s) {
    out[s] = after[s].delta_since(before[s]);
  }
  return out;
}

}  // namespace bsr::obs
