// Per-round counter time series for the flight recorder.
//
// The counter registry (stats.hpp) is cumulative: a snapshot at the end of a
// churn run tells you the totals but not *when* the work happened. The
// IntervalSampler turns the registry into a trajectory — it snapshots the
// registry every time the journal clock (journal.hpp) crosses a simulated-
// time boundary and records the per-round counter deltas, so a misrouting
// spike mid-horizon shows up as a spike in `sim.router.tier_*` for that
// round instead of averaging away into the end-of-run totals.
//
// Rounds are half-open intervals [t_begin, t_end) of a fixed simulated-time
// length. Boundaries are computed as start + (k+1)*interval (not
// accumulated), so the row grid is identical run-to-run regardless of how
// the clock advanced through it. Rows carry the delta of *every* counter
// slot — stable columns, in registry slot order — which is what makes the
// CSV exporter diffable byte-for-byte across runs and thread counts.
//
// Same determinism contract as the journal: the sampler is driven only from
// single-threaded simulation loops, and counter snapshots are bit-identical
// at any BSR_THREADS (stats.hpp rule 3), so the series is too.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "obs/stats.hpp"

namespace bsr::obs {

/// One closed round: the counter movement inside [t_begin, t_end).
struct SeriesRow {
  std::uint64_t round = 0;
  double t_begin = 0.0;
  double t_end = 0.0;
  /// Counter deltas in registry slot order — every slot, moved or not.
  std::array<std::uint64_t, kNumCounters> deltas{};
};

/// Snapshots the counter registry at fixed simulated-time boundaries and
/// accumulates per-round deltas. Driven by the journal clock; may also be
/// used standalone (tests do).
class IntervalSampler {
 public:
  /// Arms the sampler: the first round is [start, start + interval), and the
  /// current registry totals become the baseline. `interval` must be > 0.
  void begin(double start, double interval);

  /// Closes every round whose boundary is <= `now`. Non-monotone calls
  /// (a simulator processing an internal event at a time before the loop
  /// clock) are ignored — the round grid only moves forward.
  void advance(double now);

  /// Closes the trailing partial round [round_begin, now) if any counters
  /// moved or any time elapsed in it, then disarms the sampler.
  void finish(double now);

  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] const std::vector<SeriesRow>& rows() const noexcept {
    return rows_;
  }

 private:
  void close_round(double t_end, const Snapshot& current);
  [[nodiscard]] double next_boundary() const noexcept {
    return start_ + static_cast<double>(rows_.size() + 1) * interval_;
  }

  bool active_ = false;
  double start_ = 0.0;
  double interval_ = 0.0;
  double round_begin_ = 0.0;
  Snapshot last_{};
  std::vector<SeriesRow> rows_;
};

/// The rows collected by the journal's sampler during the last (or current)
/// recording session (see journal.hpp start_recording / JournalOptions).
[[nodiscard]] const std::vector<SeriesRow>& journal_series() noexcept;

}  // namespace bsr::obs
