// perf_obs — wall-time cost of the telemetry plane on the hot kernels.
//
// The obs design claim is "cheap enough to leave on": per-edge costs fold
// into per-call accumulators and flush to the registry once per kernel
// call (see docs/OBSERVABILITY.md for the placement rules). This bench
// prices that claim against uninstrumented *twins* of the two hottest paths:
//   1. fault-filtered BFS: engine::bfs (counted) vs the same template
//      recompiled with the telemetry compiled out;
//   2. MaxSG end-to-end: broker::maxsg (counted + span) vs the same source
//      recompiled with the telemetry compiled out.
// The twins are not hand copies — bare_kernels.cpp recompiles the actual
// library sources under BSR_OBS_FORCE_OFF (see bare_kernels.hpp), so the
// baseline is byte-for-byte the same algorithm minus the macros and cannot
// rot as the library evolves. Outputs are verified bit-identical first —
// enabling stats must never change a result — and the overhead is reported
// from min-of-interleaved trials so thermal drift doesn't bias either side.
// In a BSR_STATS=OFF build both sides compile from identical expansions and
// the overhead is codegen jitter around zero ("stats_enabled" in the JSON
// says which build produced it).
//
// Also demonstrates span tracing end-to-end: one traced MaxSG run is drained
// and written as Chrome trace_event JSON next to the BENCH file.
//
// Emits BENCH_obs.json (override with BENCH_OBS_JSON).
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bare_kernels.hpp"
#include "bench_common.hpp"
#include "instr_kernels.hpp"
#include "broker/maxsg.hpp"
#include "broker/robust.hpp"
#include "graph/engine.hpp"
#include "graph/fault_plane.hpp"
#include "graph/sampling.hpp"
#include "harness.hpp"
#include "io/table.hpp"
#include "obs/episode.hpp"
#include "obs/export.hpp"
#include "obs/qtrace.hpp"
#include "sim/demand.hpp"
#include "sim/route_service.hpp"

namespace {

using bsr::graph::CsrGraph;
using bsr::graph::kUnreachable;
using bsr::graph::NodeId;

namespace engine = bsr::graph::engine;

struct Overhead {
  double bare_s = std::numeric_limits<double>::infinity();
  double instrumented_s = std::numeric_limits<double>::infinity();

  [[nodiscard]] double pct() const {
    return (instrumented_s / bare_s - 1.0) * 100.0;
  }
};

void print_overhead(const char* label, const Overhead& o) {
  std::cout << label << ":\n"
            << "  bare (telemetry off):    "
            << bsr::io::format_double(o.bare_s * 1e3, 2) << " ms\n"
            << "  instrumented:            "
            << bsr::io::format_double(o.instrumented_s * 1e3, 2) << " ms\n"
            << "  overhead:                "
            << bsr::io::format_double(o.pct(), 2) << " %\n\n";
}

}  // namespace

int main() {
  const auto ctx =
      bsr::bench::make_context("perf_obs: telemetry plane overhead");
  const CsrGraph& g = ctx.topo.graph;
  const NodeId n = g.num_vertices();
  bsr::bench::Harness harness("perf_obs", ctx);
  std::cout << "stats compiled " << (BSR_STATS_ENABLED ? "ON" : "OFF") << "\n\n";

  // Same 5% fault-filtered setup as perf_engine's headline comparison.
  bsr::graph::FaultPlane plane(g);
  {
    bsr::graph::Rng fault_rng(ctx.env.seed + 1);
    for (const auto& e : g.edges()) {
      if (fault_rng.bernoulli(0.05)) plane.fail_edge(e.u, e.v);
    }
  }
  bsr::graph::Rng rng(ctx.env.seed);
  const auto sources = bsr::graph::sample_distinct(
      rng, n, static_cast<NodeId>(std::min<std::size_t>(ctx.env.bfs_sources, n)));
  const engine::FaultAwareFilter filter{&plane};

  engine::Workspace ws_bare(n);
  engine::Workspace ws_inst(n);

  // Correctness first: identical dist arrays per source.
  for (const NodeId s : sources) {
    bare::bfs(g, s, ws_bare, filter);
    engine::bfs(g, s, ws_inst, filter);
    for (NodeId v = 0; v < n; ++v) {
      const std::uint32_t db =
          ws_bare.visited(v) ? ws_bare.dist_unchecked(v) : kUnreachable;
      const std::uint32_t di =
          ws_inst.visited(v) ? ws_inst.dist_unchecked(v) : kUnreachable;
      if (db != di) {
        std::cerr << "MISMATCH: bfs dist diverged at source " << s << " vertex "
                  << v << "\n";
        return 1;
      }
    }
  }

  // Min of interleaved trials, alternating which side runs first: drift and
  // cache-warming hit both sides equally, and the min is the least-disturbed
  // execution of each.
  constexpr int kTrials = 9;
  constexpr int kReps = 3;
  std::uint64_t sink = 0;
  Overhead bfs_overhead;
  const auto bfs_bare_sweep = [&] {
    bsr::bench::Stopwatch watch;
    for (int r = 0; r < kReps; ++r) {
      for (const NodeId s : sources) {
        bare::bfs(g, s, ws_bare, filter);
        sink += ws_bare.visit_order().size();
      }
    }
    bfs_overhead.bare_s = std::min(bfs_overhead.bare_s, watch.seconds());
  };
  const auto bfs_inst_sweep = [&] {
    bsr::bench::Stopwatch watch;
    for (int r = 0; r < kReps; ++r) {
      for (const NodeId s : sources) {
        engine::bfs(g, s, ws_inst, filter);
        sink += ws_inst.visit_order().size();
      }
    }
    bfs_overhead.instrumented_s =
        std::min(bfs_overhead.instrumented_s, watch.seconds());
  };
  for (int t = 0; t < kTrials; ++t) {
    if (t % 2 == 0) {
      bfs_bare_sweep();
      bfs_inst_sweep();
    } else {
      bfs_inst_sweep();
      bfs_bare_sweep();
    }
  }
  print_overhead("fault-filtered BFS", bfs_overhead);

  // One recorded run so the BENCH file carries the counter deltas and the
  // work-unit total for the instrumented sweep.
  auto& bfs_run = harness.run("bfs.fault.instrumented", kReps, [&] {
    for (const NodeId s : sources) {
      engine::bfs(g, s, ws_inst, filter);
      sink += ws_inst.visit_order().size();
    }
  });
  bsr::bench::Harness::metric(bfs_run, "bare_ms_min", bfs_overhead.bare_s * 1e3);
  bsr::bench::Harness::metric(bfs_run, "instrumented_ms_min",
                              bfs_overhead.instrumented_s * 1e3);
  bsr::bench::Harness::metric(bfs_run, "overhead_pct", bfs_overhead.pct());

  // --- MaxSG ----------------------------------------------------------------
  const auto k = static_cast<std::uint32_t>(std::max<NodeId>(32, n / 100));
  const auto bare_result = bare::maxsg(g, k);
  const auto inst_result = bsr::broker::maxsg(g, k);
  if (!std::ranges::equal(bare_result.brokers.members(),
                          inst_result.brokers.members()) ||
      bare_result.component_curve != inst_result.component_curve) {
    std::cerr << "MISMATCH: MaxSG selections diverged with telemetry on\n";
    return 1;
  }

  Overhead maxsg_overhead;
  const auto maxsg_bare_trial = [&] {
    bsr::bench::Stopwatch watch;
    sink += bare::maxsg(g, k).final_component;
    maxsg_overhead.bare_s = std::min(maxsg_overhead.bare_s, watch.seconds());
  };
  // Times the instrumented *twin* (instr_kernels.cpp), not the library
  // symbol: both twins compile under the bench's alignment pinning, so the
  // delta is the telemetry, not code-placement luck. The library symbol is
  // token-identical and is still what the recorded run below captures
  // counters from.
  const auto maxsg_inst_trial = [&] {
    bsr::bench::Stopwatch watch;
    sink += instr::maxsg(g, k).final_component;
    maxsg_overhead.instrumented_s =
        std::min(maxsg_overhead.instrumented_s, watch.seconds());
  };
  // MaxSG trials are short, so the min needs more draws to shed scheduler
  // noise than the long BFS sweeps do.
  constexpr int kMaxsgTrials = 15;
  for (int t = 0; t < kMaxsgTrials; ++t) {
    if (t % 2 == 0) {
      maxsg_bare_trial();
      maxsg_inst_trial();
    } else {
      maxsg_inst_trial();
      maxsg_bare_trial();
    }
  }
  print_overhead("MaxSG", maxsg_overhead);

  auto& maxsg_run = harness.run("maxsg.instrumented",
                                [&] { sink += bsr::broker::maxsg(g, k).final_component; });
  bsr::bench::Harness::metric(maxsg_run, "k", k);
  bsr::bench::Harness::metric(maxsg_run, "bare_ms_min",
                              maxsg_overhead.bare_s * 1e3);
  bsr::bench::Harness::metric(maxsg_run, "instrumented_ms_min",
                              maxsg_overhead.instrumented_s * 1e3);
  bsr::bench::Harness::metric(maxsg_run, "overhead_pct", maxsg_overhead.pct());

  // --- robust selection (counters only) -------------------------------------
  // No bare twin: robust_maxsg is not on the priced hot path — this recorded
  // run exists so the drift tripwire pins its deterministic round/scenario/
  // evaluation counters. The tiny budget keeps the C(|B|, r) scenario
  // enumeration cheap while still exercising every counter in the family.
  constexpr std::uint32_t kRobustK = 6;
  auto& robust_run = harness.run("robust.instrumented", [&] {
    bsr::broker::RobustOptions opts;
    opts.redundancy = 2;
    sink += bsr::broker::robust_maxsg(g, kRobustK, opts).surviving_pairs;
  });
  bsr::bench::Harness::metric(robust_run, "k", kRobustK);

  // --- route service --------------------------------------------------------
  // The same three-tier lifecycle (fresh serving, a broker fault with
  // degraded stale serving, the rebuilt epoch) drives three things here:
  //   1. a twin correctness check — the bare and instrumented recompilations
  //      of sim/route_service.cpp must produce identical answer digests;
  //   2. the priced overhead comparison, run with the per-query tracer and
  //      the latency/distance sketches ENABLED on the instrumented side —
  //      this is the "tracing costs nothing you can measure" claim;
  //   3. a recorded run pinning the sim.route_service.* counter family and
  //      the new sketch distributions in the BENCH file.
  bsr::sim::DemandConfig demand;
  demand.num_flows = ctx.env.scaled(20'000, 2'000);
  bsr::graph::Rng serve_rng(ctx.env.seed + 9);
  const auto flows = bsr::sim::generate_flows(g, demand, serve_rng);

  const std::uint64_t bare_digest =
      bare::route_lifecycle(g, inst_result.brokers, flows, 1).digest;
  const std::uint64_t inst_digest =
      instr::route_lifecycle(g, inst_result.brokers, flows, 1).digest;
  if (bare_digest != inst_digest) {
    std::cerr << "MISMATCH: route lifecycle digests diverged with telemetry on\n";
    return 1;
  }

  // The priced quantity is the serve phase only (RouteLifecycleResult's
  // serve_seconds): the oracle builds inside the lifecycle are BFS /
  // union-find kernels whose telemetry the comparisons above already price,
  // and their wall time would drown the per-query cost under measurement.
  // kRouteServeReps identical batches per serve point stretch the timed
  // region so the min converges.
  constexpr int kRouteServeReps = 5;
  const auto route_bare_trial = [&](Overhead& o) {
    const auto r =
        bare::route_lifecycle(g, inst_result.brokers, flows, kRouteServeReps);
    sink += r.digest;
    o.bare_s = std::min(o.bare_s, r.serve_seconds);
  };
  const auto route_inst_trial = [&](Overhead& o) {
    const auto r =
        instr::route_lifecycle(g, inst_result.brokers, flows, kRouteServeReps);
    sink += r.digest;
    o.instrumented_s = std::min(o.instrumented_s, r.serve_seconds);
  };
  constexpr int kRouteTrials = 9;
  const auto route_interleave = [&](Overhead& o) {
    for (int t = 0; t < kRouteTrials; ++t) {
      if (t % 2 == 0) {
        route_bare_trial(o);
        route_inst_trial(o);
      } else {
        route_inst_trial(o);
        route_bare_trial(o);
      }
    }
  };
  // Two configurations of the instrumented side against the same bare twin
  // (which compiled everything out via BSR_OBS_FORCE_OFF): the production
  // default (counters + sketches, tracer off) and the worst case with the
  // per-query tracer capturing a full row per answer. The runtime toggle
  // only reaches the instrumented twin — which is exactly the cost priced.
  Overhead route_base_overhead;
  route_interleave(route_base_overhead);
  print_overhead("route-service serve phase (sketches on, tracing off)",
                 route_base_overhead);
  Overhead route_overhead;
  bsr::obs::start_query_trace();
  route_interleave(route_overhead);
  bsr::obs::stop_query_trace();
  print_overhead("route-service serve phase (tracing + sketches on)",
                 route_overhead);
  // Absolute per-query telemetry cost: the serve phase times
  // 3 serve points x kRouteServeReps batches over `flows` queries.
  const double route_queries = static_cast<double>(flows.size()) * 3.0 *
                               static_cast<double>(kRouteServeReps);
  std::cout << "  telemetry cost/query:    "
            << bsr::io::format_double(
                   (route_base_overhead.instrumented_s -
                    route_base_overhead.bare_s) /
                       route_queries * 1e9,
                   1)
            << " ns (default), "
            << bsr::io::format_double(
                   (route_overhead.instrumented_s - route_overhead.bare_s) /
                       route_queries * 1e9,
                   1)
            << " ns (traced)\n\n";

  // Pins the sim.route_service.* counter family plus the per-answer-tag
  // tick/distance sketches with one recorded lifecycle on the library
  // symbols (token-identical to the instr twin, so the counters match).
  auto& serve_run = harness.run("route_service.instrumented", [&] {
    bsr::graph::FaultPlane serve_faults(g);
    bsr::sim::RouteService service(g, inst_result.brokers, &serve_faults);
    std::vector<bsr::sim::RouteAnswer> answers;
    service.serve_batch(flows, 0.0, answers);  // fresh epoch
    serve_faults.fail_vertex(inst_result.brokers.members()[0]);
    service.on_fault(1.0);
    service.serve_batch(flows, 1.5, answers);  // degraded, stale-served
    while (service.next_event_time() <= 1e9) {
      service.advance(service.next_event_time());
    }
    service.serve_batch(flows, 20.0, answers);  // rebuilt epoch, fresh again
    sink += answers.size() + service.epoch_id();
  });
  bsr::bench::Harness::metric(serve_run, "flows",
                              static_cast<double>(ctx.env.scaled(20'000, 2'000)));
  bsr::bench::Harness::metric(serve_run, "bare_ms_min",
                              route_overhead.bare_s * 1e3);
  bsr::bench::Harness::metric(serve_run, "instrumented_ms_min",
                              route_overhead.instrumented_s * 1e3);
  bsr::bench::Harness::metric(serve_run, "overhead_pct", route_overhead.pct());
  bsr::bench::Harness::metric(serve_run, "base_overhead_pct",
                              route_base_overhead.pct());

  // --- SLO monitor (counters only) -------------------------------------------
  // Pins the slo.monitor.* counter family: record the lifecycle's journal,
  // replay it through a deliberately breaching SLO spec (fresh_min=0.999
  // cannot survive the all-stale degraded batch), and let the monitor emit
  // its breach/recover episode — one breach at the stale batch, one recovery
  // at the rebuilt epoch.
  auto& slo_run = harness.run("slo.instrumented", [&] {
    bsr::obs::start_recording();
    bsr::graph::FaultPlane slo_faults(g);
    bsr::sim::RouteService service(g, inst_result.brokers, &slo_faults);
    std::vector<bsr::sim::RouteAnswer> answers;
    service.serve_batch(flows, 0.0, answers);
    slo_faults.fail_vertex(inst_result.brokers.members()[0]);
    service.on_fault(1.0);
    service.serve_batch(flows, 1.5, answers);
    while (service.next_event_time() <= 1e9) {
      service.advance(service.next_event_time());
    }
    service.serve_batch(flows, 20.0, answers);
    const bsr::obs::Journal journal = bsr::obs::snapshot_journal();
    bsr::obs::stop_recording();
    const auto samples = bsr::obs::slo_samples_from_journal(journal);
    bsr::obs::SloMonitor monitor(
        bsr::obs::parse_slo_spec("fresh_min=0.999,window=2,long_window=4"));
    for (const bsr::obs::SloSample& s : samples) monitor.observe(s);
    const bsr::obs::SloReport report = monitor.report();
    sink += report.breaches + report.recovers + report.samples;
  });
  bsr::bench::Harness::metric(slo_run, "flows",
                              static_cast<double>(ctx.env.scaled(20'000, 2'000)));

  // --- episode reconstruction (counters + phase sketches) --------------------
  // Pins the obs.episode.* counter family and the episode-phase sketch
  // slots: record the same fault lifecycle with the query tracer on, then
  // stitch the journal + qtrace snapshot into the episode report — one
  // closed serve episode with its degraded answers attributed.
  auto& episode_run = harness.run("episode.instrumented", [&] {
    bsr::obs::start_recording();
    bsr::obs::start_query_trace();
    bsr::graph::FaultPlane ep_faults(g);
    bsr::sim::RouteService service(g, inst_result.brokers, &ep_faults);
    std::vector<bsr::sim::RouteAnswer> answers;
    service.serve_batch(flows, 0.0, answers);
    ep_faults.fail_vertex(inst_result.brokers.members()[0]);
    service.on_fault(1.0);
    service.serve_batch(flows, 1.5, answers);
    while (service.next_event_time() <= 1e9) {
      service.advance(service.next_event_time());
    }
    service.serve_batch(flows, 20.0, answers);
    const bsr::obs::Journal journal = bsr::obs::snapshot_journal();
    bsr::obs::stop_recording();
    bsr::obs::stop_query_trace();
    const bsr::obs::QtraceSnapshot qtrace = bsr::obs::snapshot_query_trace();
    const bsr::obs::EpisodeReport report =
        bsr::obs::episodes_from_journal(journal, &qtrace);
    sink += report.episodes.size() + report.malformed + report.unattributed;
    for (const bsr::obs::Episode& ep : report.episodes) {
      sink += ep.stale_served + ep.attempts;
    }
  });
  bsr::bench::Harness::metric(episode_run, "flows",
                              static_cast<double>(ctx.env.scaled(20'000, 2'000)));

  if (sink == 0xdeadbeef) std::cerr << "";  // keep `sink` observable

  // --- span-tracing demo ----------------------------------------------------
  // One traced MaxSG, drained to Chrome trace_event JSON. Only the harness
  // opts into tracing; the overhead loops above ran with it off.
  bsr::obs::clear_trace();
  bsr::obs::set_tracing(true);
  { BSR_SPAN("perf_obs.traced_maxsg"); sink += bsr::broker::maxsg(g, k).final_component; }
  bsr::obs::set_tracing(false);
  const auto spans = bsr::obs::drain_trace();
  const char* trace_env = std::getenv("BENCH_OBS_TRACE_JSON");
  const std::string trace_path =
      trace_env != nullptr ? trace_env : "BENCH_obs_trace.json";
  {
    std::ofstream trace_file(trace_path);
    bsr::obs::write_chrome_trace(trace_file, spans);
  }
  std::cout << "trace: " << spans.size() << " spans -> " << trace_path << "\n";

  harness.metric("bfs_overhead_pct", bfs_overhead.pct());
  harness.metric("maxsg_overhead_pct", maxsg_overhead.pct());
  harness.metric("route_overhead_pct", route_overhead.pct());
  harness.metric("trace_spans", static_cast<double>(spans.size()));
  harness.write_json_file("BENCH_obs.json", "BENCH_OBS_JSON");
  return 0;
}
