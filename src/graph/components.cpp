#include "graph/components.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/engine.hpp"
#include "graph/rollback_union_find.hpp"

namespace bsr::graph {

NodeId Components::largest() const {
  if (count == 0) throw std::logic_error("Components::largest: no components");
  const auto it = std::max_element(size.begin(), size.end());
  return static_cast<NodeId>(it - size.begin());
}

std::uint32_t Components::largest_size() const {
  if (count == 0) return 0;
  return *std::max_element(size.begin(), size.end());
}

namespace {

// Labels components in ascending-vertex scan order, so labels are canonical:
// any union-find that produces the same partition yields identical output.
Components from_union_find(const CsrGraph& g, const RollbackUnionFind& uf) {
  Components out;
  const NodeId n = g.num_vertices();
  out.label.assign(n, 0);
  std::vector<NodeId> root_to_label(n, kUnreachable);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId r = uf.find(v);
    if (root_to_label[r] == kUnreachable) {
      root_to_label[r] = out.count++;
      out.size.push_back(0);
    }
    out.label[v] = root_to_label[r];
    ++out.size[out.label[v]];
  }
  return out;
}

}  // namespace

Components connected_components(const CsrGraph& g) {
  RollbackUnionFind uf(g.num_vertices());
  engine::unite_edges(g, uf, engine::AllEdges{});
  return from_union_find(g, uf);
}

Components connected_components_filtered(
    const CsrGraph& g, const std::function<bool(NodeId, NodeId)>& edge_ok) {
  RollbackUnionFind uf(g.num_vertices());
  engine::unite_edges(g, uf, engine::FnFilter{&edge_ok});
  return from_union_find(g, uf);
}

std::vector<NodeId> largest_component_vertices(const CsrGraph& g) {
  const Components comps = connected_components(g);
  if (comps.count == 0) return {};
  const NodeId target = comps.largest();
  std::vector<NodeId> out;
  out.reserve(comps.size[target]);
  for (NodeId v = 0; v < g.num_vertices(); ++v) {
    if (comps.label[v] == target) out.push_back(v);
  }
  return out;
}

}  // namespace bsr::graph
