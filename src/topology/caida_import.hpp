// Importer for the real CAIDA AS-relationship format.
//
// Users holding the actual data the paper used (CAIDA serial-1/serial-2
// as-rel files, e.g. 20140601.as-rel.txt) can run every experiment on it
// instead of the synthetic substitute. Format, one edge per line:
//     <provider-as>|<customer-as>|-1      (provider-to-customer)
//     <peer-as>|<peer-as>|0               (settlement-free peering)
// '#' lines are comments. AS numbers are arbitrary; they are compacted to
// dense ids in numeric order. Optionally, a second file lists IXP
// memberships as "<ixp-name> <as-number>..." per line; IXPs become
// independent vertices appended after the ASes, with peering membership
// edges — the paper's §3 treatment.
#pragma once

#include <iosfwd>
#include <string>

#include "topology/internet.hpp"

namespace bsr::topology {

/// Parses an as-rel stream. Node types/tiers are inferred: ASes with
/// customers are transit/access; tier labels come from a provider-depth
/// peel (customer-free, provider-free ASes = tier 1; their customers tier
/// 2; etc., capped at stub). Throws std::runtime_error with line context.
[[nodiscard]] InternetTopology import_caida_as_rel(std::istream& as_rel);

/// Same, plus IXP memberships from the second stream.
[[nodiscard]] InternetTopology import_caida_as_rel(std::istream& as_rel,
                                                   std::istream& ixp_members);

[[nodiscard]] InternetTopology import_caida_files(const std::string& as_rel_path,
                                                  const std::string& ixp_path = "");

}  // namespace bsr::topology
