// Reproduces Fig. 1 — structural fingerprint of the AS-level topology.
//
// The paper visualizes a scale-free, layered network with IXPs both at the
// core and the edge. A terminal can't render the layout, so this bench
// prints the quantitative fingerprint the picture conveys: the heavy-tailed
// degree profile, the tier/type composition, where IXPs sit (coreness), and
// the greedy coverage curve that makes small broker sets plausible.
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "broker/greedy_mcb.hpp"
#include "graph/assortativity.hpp"
#include "graph/clustering.hpp"
#include "graph/degree_stats.hpp"
#include "graph/kcore.hpp"
#include "graph/rich_club.hpp"
#include "io/dot_export.hpp"

int main() {
  auto ctx = bsr::bench::make_context("Fig. 1: topology fingerprint");
  const auto& g = ctx.topo.graph;

  const auto stats = bsr::graph::compute_degree_stats(g);
  bsr::io::Table degree_table({"Degree statistic", "Value"});
  degree_table.row().cell("min").cell(std::uint64_t{stats.min});
  degree_table.row().cell("median").cell(stats.median, 1);
  degree_table.row().cell("mean").cell(stats.mean, 2);
  degree_table.row().cell("p90").cell(stats.p90, 1);
  degree_table.row().cell("p99").cell(stats.p99, 1);
  degree_table.row().cell("max").cell(std::uint64_t{stats.max});
  degree_table.row().cell("power-law alpha (d >= 10)").cell(stats.power_law_alpha, 2);
  degree_table.print(std::cout);

  // Top-10 hubs with their roles — the "core" of Fig. 1.
  const auto order = bsr::graph::vertices_by_degree_desc(g);
  const auto core = bsr::graph::coreness(g);
  bsr::io::Table hubs({"Rank", "Vertex", "Type", "Degree", "Coreness"});
  for (std::size_t i = 0; i < 10 && i < order.size(); ++i) {
    const auto v = order[i];
    hubs.row()
        .cell(static_cast<std::uint64_t>(i + 1))
        .cell(std::uint64_t{v})
        .cell(std::string(bsr::topology::to_string(ctx.topo.meta[v].type)))
        .cell(std::uint64_t{g.degree(v)})
        .cell(std::uint64_t{core[v]});
  }
  hubs.print(std::cout);

  // IXP placement: how many IXPs sit in the innermost core vs the edge.
  std::uint32_t max_core = 0;
  for (bsr::graph::NodeId v = 0; v < g.num_vertices(); ++v) {
    max_core = std::max(max_core, core[v]);
  }
  std::uint32_t ixp_core = 0, ixp_edge = 0;
  for (bsr::graph::NodeId v = ctx.topo.num_ases; v < g.num_vertices(); ++v) {
    if (core[v] >= max_core / 2) ++ixp_core;
    else ++ixp_edge;
  }
  std::cout << "IXPs in the core (coreness >= " << max_core / 2 << "): " << ixp_core
            << ", at the edge: " << ixp_edge << " (Fig. 1: IXPs appear at both)\n";

  // Greedy coverage curve: |B ∪ N(B)| for the best k vertices.
  const auto greedy = bsr::broker::greedy_mcb(g, ctx.env.scaled(1000, 10));
  bsr::io::Table cover({"k (greedy MCB)", "f(B) = |B ∪ N(B)|", "share of nodes"});
  for (const std::size_t k : {std::size_t{10}, std::size_t{50}, std::size_t{100},
                              std::size_t{500}, std::size_t{1000}}) {
    const auto idx = std::min(k, greedy.coverage_curve.size());
    if (idx == 0) continue;
    const auto covered = greedy.coverage_curve[idx - 1];
    cover.row()
        .cell(static_cast<std::uint64_t>(idx))
        .cell(std::uint64_t{covered})
        .percent(static_cast<double>(covered) / g.num_vertices());
  }
  cover.print(std::cout);

  // Clustering and mixing: the AS graph sits between ER (no clustering) and
  // WS (lattice-high), and is disassortative like the measured Internet
  // (r ≈ -0.2: hubs attach to customers, not to each other).
  bsr::graph::Rng cluster_rng(ctx.env.seed + 20);
  std::cout << "average clustering coefficient (sampled): "
            << bsr::io::format_double(
                   bsr::graph::average_clustering_sampled(g, cluster_rng, 2000), 3)
            << '\n'
            << "degree assortativity: "
            << bsr::io::format_double(bsr::graph::degree_assortativity(g), 3)
            << " (measured Internet: ~-0.2)\n"
            << "rich-club coefficient at degree > 1000: "
            << bsr::io::format_double(
                   bsr::graph::rich_club_coefficient(ctx.topo.as_only_graph(),
                                                     1000),
                   3)
            << " (the transit core peers near-completely)\n";

  // The actual picture: a renderable core+ring sample with type colors.
  std::ofstream dot("fig1_topology_sample.dot", std::ios::trunc);
  if (dot) {
    bsr::graph::Rng dot_rng(ctx.env.seed + 21);
    const auto exported =
        bsr::io::write_dot_sample(dot, ctx.topo, nullptr, 150, 600, dot_rng);
    std::cout << "DOT sample (" << exported
              << " vertices) written to fig1_topology_sample.dot — render "
                 "with: sfdp -Tsvg fig1_topology_sample.dot\n";
  }
  return 0;
}
