// Example: full broker-selection pipeline on the synthetic Internet.
//
// Generates the calibrated 52k-vertex AS/IXP topology (scaled by
// REPRO_SCALE), runs every selection algorithm, and prints the Table-1-style
// comparison — the workflow a network-planning user of this library would
// run on their own topology (swap in io::read_edge_list_file to load one).
#include <iostream>

#include "broker/baselines.hpp"
#include "broker/coverage.hpp"
#include "broker/dominated.hpp"
#include "broker/maxsg.hpp"
#include "broker/mcbg_approx.hpp"
#include "io/env.hpp"
#include "io/table.hpp"
#include "topology/internet.hpp"

int main() {
  const auto env = bsr::io::experiment_env();
  auto config = bsr::topology::InternetConfig{}.scaled(std::min(env.scale, 0.2));
  config.seed = env.seed;
  std::cout << "generating topology (" << config.num_ases << " ASes + "
            << config.num_ixps << " IXPs)...\n";
  const auto topo = bsr::topology::make_internet(config);
  const auto& g = topo.graph;

  const std::uint32_t k = std::max<std::uint32_t>(8, g.num_vertices() / 50);
  std::cout << "selecting up to k = " << k << " brokers per algorithm\n";

  bsr::io::Table table({"Algorithm", "|B|", "f(B) share", "saturated connectivity"});
  const auto add_row = [&](const std::string& name,
                           const bsr::broker::BrokerSet& brokers) {
    table.row()
        .cell(name)
        .cell(static_cast<std::uint64_t>(brokers.size()))
        .percent(static_cast<double>(bsr::broker::coverage(g, brokers)) /
                 g.num_vertices())
        .percent(bsr::broker::saturated_connectivity(g, brokers));
  };

  add_row("MaxSG (Algorithm 3)", bsr::broker::maxsg(g, k).brokers);
  bsr::broker::McbgOptions options;
  options.max_roots = 8;
  add_row("MCBG approx (Algorithm 2)", bsr::broker::mcbg_approx(g, k, options).brokers);
  add_row("DB (top degree)", bsr::broker::db_top_degree(g, k));
  add_row("PRB (top PageRank)", bsr::broker::prb_top_pagerank(g, k));
  add_row("IXPB (all IXPs)", bsr::broker::ixpb(topo));
  add_row("Tier1Only", bsr::broker::tier1_only(topo));
  bsr::graph::Rng rng(env.seed);
  add_row("SC (random-order dominating set)", bsr::broker::sc_dominating_set(g, rng));

  table.print(std::cout);
  std::cout << "\nTip: REPRO_SCALE=0.02 ./internet_broker_selection runs a "
               "~1,000-vertex instance in well under a second.\n";
  return 0;
}
