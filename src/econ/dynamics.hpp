// Best-response price dynamics (stability extension of §7.1).
//
// Theorem 6 proves a Stackelberg equilibrium *exists*; a deployed coalition
// would reach it by iteration, not by solving the bilevel program: post a
// price, observe adoption, adjust. This module runs damped best-response
// dynamics — the broker moves its price a step toward the myopic best
// response to the observed aggregate adoption — and reports whether/ how
// fast the play converges to the equilibrium of solve_stackelberg().
#pragma once

#include <cstdint>
#include <vector>

#include "econ/stackelberg.hpp"

namespace bsr::econ {

struct DynamicsConfig {
  double initial_price = 0.1;
  /// Damping in (0, 1]: 1 = jump straight to the myopic best response.
  double step = 0.4;
  std::size_t max_rounds = 200;
  /// Convergence threshold on the price change per round.
  double tolerance = 1e-6;
};

struct DynamicsResult {
  std::vector<double> price_path;     // posted price per round
  std::vector<double> adoption_path;  // aggregate adoption per round
  bool converged = false;
  std::size_t rounds = 0;
  double final_price = 0.0;
  double final_adoption = 0.0;
};

/// Runs damped best-response dynamics for the leader's price against
/// followers who always play their exact best responses.
/// Throws std::invalid_argument on bad config.
[[nodiscard]] DynamicsResult best_response_dynamics(const StackelbergConfig& game,
                                                    const DynamicsConfig& config = {});

}  // namespace bsr::econ
