#include "graph/rng.hpp"

#include <cmath>

#include "graph/check.hpp"

namespace bsr::graph {

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  BSR_DCHECK(bound > 0 && "uniform() requires a positive bound");
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_in(std::int64_t lo, std::int64_t hi) noexcept {
  BSR_DCHECK(lo <= hi && "uniform_in() requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::exponential(double rate) noexcept {
  BSR_DCHECK(rate > 0.0);
  // Guard against log(0): uniform01() can return exactly 0.
  double u = uniform01();
  while (u <= 0.0) u = uniform01();
  return -std::log(u) / rate;
}

double Rng::pareto(double alpha, double lo, double hi) noexcept {
  BSR_DCHECK(alpha > 0.0 && lo > 0.0 && hi >= lo);
  // Inverse-CDF sampling of a Pareto truncated to [lo, hi]:
  //   F(x) = (1 - (lo/x)^alpha) / (1 - (lo/hi)^alpha)
  //   x    = lo * (1 - U (1 - (lo/hi)^alpha))^(-1/alpha)
  // U = 0 gives lo, U = 1 gives hi.
  const double ratio = std::pow(lo / hi, alpha);
  const double u = uniform01();
  return lo * std::pow(1.0 - u * (1.0 - ratio), -1.0 / alpha);
}

}  // namespace bsr::graph
