#include "econ/bargaining.hpp"

#include <cmath>
#include <stdexcept>

namespace bsr::econ {

double golden_section_max(const std::function<double(double)>& f, double lo, double hi,
                          double tol) {
  if (!(lo <= hi)) throw std::invalid_argument("golden_section_max: lo > hi");
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo, b = hi;
  double c = b - kInvPhi * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = f(c), fd = f(d);
  while (b - a > tol) {
    if (fc > fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kInvPhi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = f(d);
    }
  }
  return 0.5 * (a + b);
}

BargainingSolution solve_bargaining(const BargainingConfig& config) {
  if (config.broker_price <= 0.0 || config.transit_cost <= 0.0) {
    throw std::invalid_argument("solve_bargaining: prices/costs must be positive");
  }
  if (config.beta == 0) throw std::invalid_argument("solve_bargaining: beta = 0");

  const double h = config.employees();
  const double p_b = config.broker_price;
  const double c = config.transit_cost;

  BargainingSolution out;
  // Both sides need positive surplus: p_j > c and 2 p_B - h p_j - h c > 0.
  // The range is non-empty iff 2 p_B > 2 h c, i.e. p_B > h c.
  if (p_b <= h * c) return out;

  const double price = p_b / h;  // closed form (see header)
  // Clamp into the feasible open interval in degenerate float cases.
  const double upper = (2.0 * p_b - h * c) / h;
  out.price = std::min(std::max(price, std::nextafter(c, upper)), upper);
  out.u_employee = out.price - c;
  out.u_broker = 2.0 * p_b - h * out.price - h * c;
  out.nash_product = out.u_employee * out.u_broker;
  out.feasible = out.u_employee > 0.0 && out.u_broker > 0.0;
  return out;
}

}  // namespace bsr::econ
