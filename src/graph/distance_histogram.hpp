// Hop-distance distributions ("l-hop E2E connectivity", paper §5.2).
//
// F(l) — the fraction of ordered source-destination pairs whose shortest
// (possibly policy/domination-filtered) path is at most l hops — is the
// paper's central evaluation metric. Exact all-pairs BFS is O(V(V+E)) which
// is ~40 G operations on the 52k-vertex topology, so large graphs are
// evaluated from a uniform sample of BFS sources; each source contributes
// its exact distance profile, making the estimator unbiased. The paper's
// reported resolution (two decimals in percent) is far above the sampling
// error at >= 512 sources.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/rng.hpp"

namespace bsr::graph {

/// Optional edge admission predicate; nullptr-like (empty) means all edges.
using EdgeFilter = std::function<bool(NodeId, NodeId)>;

struct DistanceCdf {
  /// cdf[l] = estimated fraction of ordered (u, v), u != v, with d(u, v) <= l.
  /// cdf[0] is always 0. Monotone non-decreasing.
  std::vector<double> cdf;
  /// Fraction of ordered pairs that are reachable at all ("saturated E2E
  /// connectivity" in the paper's terms). Equals cdf.back().
  double reachable = 0.0;
  /// Number of BFS sources used.
  std::size_t sources_used = 0;

  /// Fraction of pairs within l hops; saturates at `reachable` for large l.
  [[nodiscard]] double at(std::uint32_t l) const noexcept {
    if (cdf.empty()) return 0.0;
    return l < cdf.size() ? cdf[l] : cdf.back();
  }
};

/// Distance CDF from explicit BFS sources. If `filter` is non-empty, edges
/// are admitted per the filter (e.g. dominated-subgraph traversal).
/// Destinations range over all vertices other than the source.
[[nodiscard]] DistanceCdf distance_cdf_from_sources(const CsrGraph& g,
                                                    std::span<const NodeId> sources,
                                                    const EdgeFilter& filter = {});

/// Distance CDF from `num_sources` uniformly sampled distinct sources
/// (all vertices if num_sources >= |V|).
[[nodiscard]] DistanceCdf distance_cdf_sampled(const CsrGraph& g, Rng& rng,
                                               std::size_t num_sources,
                                               const EdgeFilter& filter = {});

/// Exact distance CDF (BFS from every vertex). Small graphs / tests only.
[[nodiscard]] DistanceCdf distance_cdf_exact(const CsrGraph& g,
                                             const EdgeFilter& filter = {});

/// Maximum absolute deviation max_l |a(l) - b(l)| between two CDFs — the
/// epsilon-feasibility test of Eq. (4) in the paper.
[[nodiscard]] double max_cdf_deviation(const DistanceCdf& a, const DistanceCdf& b);

}  // namespace bsr::graph
