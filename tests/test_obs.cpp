#include "obs/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "broker/maxsg.hpp"
#include "broker/mcbg_approx.hpp"
#include "graph/distance_histogram.hpp"
#include "graph/engine.hpp"
#include "graph/rng.hpp"
#include "graph/rollback_union_find.hpp"
#include "graph/sampling.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"

namespace bsr::obs {
namespace {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::test::make_connected_random;

namespace engine = bsr::graph::engine;

/// Restores thread count and tracing state even if a test fails mid-way.
struct ObsTestGuard {
  ObsTestGuard() {
    engine::set_num_threads(0);
    set_tracing(false);
    (void)drain_trace();
    reset();
  }
  ~ObsTestGuard() {
    engine::set_num_threads(0);
    set_tracing(false);
    clear_trace();
    reset();
  }
};

TEST(ObsRegistry, BucketOfIsPowerOfTwoLog) {
  EXPECT_EQ(bucket_of(0), 0u);
  EXPECT_EQ(bucket_of(1), 1u);
  EXPECT_EQ(bucket_of(2), 2u);
  EXPECT_EQ(bucket_of(3), 2u);
  EXPECT_EQ(bucket_of(4), 3u);
  EXPECT_EQ(bucket_of(7), 3u);
  EXPECT_EQ(bucket_of(8), 4u);
  EXPECT_EQ(bucket_of(std::uint64_t{1} << 62), 63u);
  // The top bucket saturates: even all-ones must stay in range.
  EXPECT_EQ(bucket_of(~std::uint64_t{0}), kHistogramBuckets - 1);
}

TEST(ObsRegistry, NamesAreUniqueAndFollowConvention) {
  std::set<std::string_view> seen;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const auto n = name(static_cast<Counter>(i));
    EXPECT_FALSE(n.empty());
    EXPECT_NE(n.find('.'), std::string_view::npos) << n;
    EXPECT_TRUE(seen.insert(n).second) << "duplicate counter name " << n;
  }
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    EXPECT_TRUE(seen.insert(name(static_cast<Gauge>(i))).second);
  }
  for (std::size_t i = 0; i < kNumHistograms; ++i) {
    EXPECT_TRUE(seen.insert(name(static_cast<Histogram>(i))).second);
  }
}

TEST(ObsRegistry, CountersAccumulateResetAndDelta) {
  if (!BSR_STATS_ENABLED) GTEST_SKIP() << "built with BSR_STATS=OFF";
  ObsTestGuard guard;

  BSR_COUNT(EngineBfsRuns);
  BSR_COUNT_N(EngineBfsEdgesScanned, 40);
  BSR_GAUGE_MAX(EngineWorkspaceHighWater, 7);
  BSR_GAUGE_MAX(EngineWorkspaceHighWater, 3);  // below the high water: ignored
  BSR_HISTO(RouterHops, 5);

  const Snapshot first = snapshot();
  EXPECT_EQ(first.counter(Counter::kEngineBfsRuns), 1u);
  EXPECT_EQ(first.counter(Counter::kEngineBfsEdgesScanned), 40u);
  EXPECT_EQ(first.gauge(Gauge::kEngineWorkspaceHighWater), 7u);
  EXPECT_EQ(first.histogram_total(Histogram::kRouterHops), 1u);
  EXPECT_EQ(first.histograms[static_cast<std::size_t>(Histogram::kRouterHops)]
                            [bucket_of(5)],
            1u);

  BSR_COUNT_N(EngineBfsEdgesScanned, 2);
  const Snapshot second = snapshot();
  const Snapshot diff = delta(first, second);
  EXPECT_EQ(diff.counter(Counter::kEngineBfsEdgesScanned), 2u);
  EXPECT_EQ(diff.counter(Counter::kEngineBfsRuns), 0u);
  // Gauges carry the `after` value — a high-water mark has no delta.
  EXPECT_EQ(diff.gauge(Gauge::kEngineWorkspaceHighWater), 7u);
  EXPECT_EQ(diff.histogram_total(Histogram::kRouterHops), 0u);

  reset();
  const Snapshot cleared = snapshot();
  for (std::size_t i = 0; i < kNumCounters; ++i) EXPECT_EQ(cleared.counters[i], 0u);
  EXPECT_EQ(cleared.gauge(Gauge::kEngineWorkspaceHighWater), 0u);
  EXPECT_EQ(cleared.histogram_total(Histogram::kRouterHops), 0u);
}

TEST(ObsRegistry, WorkUnitsSumOnlyWorkFlaggedCounters) {
  if (!BSR_STATS_ENABLED) GTEST_SKIP() << "built with BSR_STATS=OFF";
  ObsTestGuard guard;

  ASSERT_TRUE(is_work_unit(Counter::kEngineBfsEdgesScanned));
  ASSERT_FALSE(is_work_unit(Counter::kEngineBfsRuns));
  BSR_COUNT_N(EngineBfsEdgesScanned, 11);
  BSR_COUNT_N(EngineBfsRuns, 100);  // not a work unit: must not contribute
  EXPECT_EQ(work_units(snapshot()), 11u);
}

TEST(ObsRegistry, FusedUfFindUpdatesAllThreeSlots) {
  if (!BSR_STATS_ENABLED) GTEST_SKIP() << "built with BSR_STATS=OFF";
  ObsTestGuard guard;

  BSR_UF_FIND(0);
  BSR_UF_FIND(3);
  const Snapshot snap = snapshot();
  EXPECT_EQ(snap.counter(Counter::kUfFinds), 2u);
  EXPECT_EQ(snap.counter(Counter::kUfFindSteps), 3u);
  EXPECT_EQ(snap.histogram_total(Histogram::kUfFindDepth), 2u);
  EXPECT_EQ(snap.histograms[static_cast<std::size_t>(Histogram::kUfFindDepth)]
                           [bucket_of(0)],
            1u);
  EXPECT_EQ(snap.histograms[static_cast<std::size_t>(Histogram::kUfFindDepth)]
                           [bucket_of(3)],
            1u);
}

// The acceptance-critical determinism property: the same work produces the
// same snapshot at any BSR_THREADS value, because every counter records
// algorithm-order events and merges are commutative.
TEST(ObsRegistry, SnapshotsInvariantUnderThreadCount) {
  if (!BSR_STATS_ENABLED) GTEST_SKIP() << "built with BSR_STATS=OFF";
  ObsTestGuard guard;

  const CsrGraph g = make_connected_random(400, 0.02, 7);
  bsr::graph::Rng rng(99);
  const auto sources = bsr::graph::sample_distinct(rng, g.num_vertices(), 64);

  engine::set_num_threads(1);
  reset();
  const auto cdf_serial = bsr::graph::distance_cdf_from_sources_with(
      g, sources, engine::AllEdges{});
  const Snapshot serial = snapshot();

  engine::set_num_threads(4);
  reset();
  const auto cdf_parallel = bsr::graph::distance_cdf_from_sources_with(
      g, sources, engine::AllEdges{});
  const Snapshot parallel = snapshot();

  EXPECT_EQ(cdf_serial.cdf, cdf_parallel.cdf);  // engine contract, re-checked
  EXPECT_EQ(serial.counters, parallel.counters);
  EXPECT_EQ(serial.gauges, parallel.gauges);
  EXPECT_EQ(serial.histograms, parallel.histograms);
  EXPECT_GT(serial.counter(Counter::kEngineBfsRuns), 0u);
  // One shard batch per for_each_shard call — not one per worker spawned.
  EXPECT_EQ(serial.counter(Counter::kEngineShardBatches), 1u);
  EXPECT_EQ(parallel.counter(Counter::kEngineShardBatches), 1u);
}

// Counters are write-only from the algorithms' perspective: re-running the
// same selection under a dirty vs freshly-reset registry changes nothing,
// and the counter deltas themselves are reproducible.
TEST(ObsRegistry, StatsNeverPerturbResults) {
  ObsTestGuard guard;

  const CsrGraph g = make_connected_random(300, 0.03, 11);
  const auto first = bsr::broker::maxsg(g, 12);
  const Snapshot after_first = snapshot();
  const auto second = bsr::broker::maxsg(g, 12);
  const Snapshot after_second = snapshot();

  EXPECT_TRUE(std::ranges::equal(first.brokers.members(),
                                 second.brokers.members()));
  EXPECT_EQ(first.component_curve, second.component_curve);
  if (BSR_STATS_ENABLED) {
    const Snapshot run2 = delta(after_first, after_second);
    EXPECT_GT(run2.counter(Counter::kMaxsgRounds), 0u);
    // Identical work both runs: the delta of run 2 equals run 1's totals.
    EXPECT_EQ(run2.counters, after_first.counters);
  }
}

TEST(ObsTrace, TreeIsWellNestedInPreorder) {
  ObsTestGuard guard;
  set_tracing(true);
  {
    Span root("root");
    { Span child("child_a"); }
    { Span child("child_b"); }
  }
  set_tracing(false);
  const auto spans = drain_trace();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_STREQ(spans[0].name, "root");
  EXPECT_STREQ(spans[1].name, "child_a");
  EXPECT_STREQ(spans[2].name, "child_b");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[2].parent, 0);
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].depth, 1u);
  EXPECT_GE(spans[0].duration_ns, spans[1].duration_ns);
  EXPECT_GE(spans[0].duration_ns, spans[2].duration_ns);
}

TEST(ObsTrace, EarlyReturnStillClosesSpan) {
  ObsTestGuard guard;
  set_tracing(true);
  const auto traced = [](bool bail) -> int {
    Span span("early_return");
    if (bail) return 1;
    return 0;
  };
  EXPECT_EQ(traced(true), 1);
  set_tracing(false);
  const auto spans = drain_trace();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "early_return");
  EXPECT_EQ(spans[0].parent, -1);
}

TEST(ObsTrace, ExceptionUnwindStillClosesSpans) {
  ObsTestGuard guard;
  set_tracing(true);
  try {
    Span outer("outer");
    Span inner("inner");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  // A library span interrupted by its own argument validation: mcbg_approx
  // opens its span before throwing on an empty graph.
  try {
    (void)bsr::broker::mcbg_approx(CsrGraph(), 4);
  } catch (const std::invalid_argument&) {
  }
  set_tracing(false);
  const auto spans = drain_trace();
#if BSR_STATS_ENABLED
  ASSERT_EQ(spans.size(), 3u);  // outer, inner + the library's broker.mcbg
#else
  ASSERT_EQ(spans.size(), 2u);  // BSR_SPAN sites compile away
#endif
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, 0);
  // After the unwind the tracer accepts new well-formed spans.
  set_tracing(true);
  { Span again("again"); }
  set_tracing(false);
  const auto after = drain_trace();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].parent, -1);
  EXPECT_EQ(after[0].depth, 0u);
}

TEST(ObsTrace, CapturesCounterDeltasAndWorkUnits) {
  if (!BSR_STATS_ENABLED) GTEST_SKIP() << "built with BSR_STATS=OFF";
  ObsTestGuard guard;
  set_tracing(true);
  {
    Span span("worked");
    BSR_COUNT_N(EngineBfsEdgesScanned, 9);
    BSR_COUNT(EngineBfsRuns);
  }
  set_tracing(false);
  const auto spans = drain_trace();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].work_units, 9u);
  ASSERT_EQ(spans[0].counter_deltas.size(), 2u);
  EXPECT_EQ(spans[0].counter_deltas[0].first, Counter::kEngineBfsRuns);
  EXPECT_EQ(spans[0].counter_deltas[0].second, 1u);
  EXPECT_EQ(spans[0].counter_deltas[1].first, Counter::kEngineBfsEdgesScanned);
  EXPECT_EQ(spans[0].counter_deltas[1].second, 9u);
}

TEST(ObsTrace, RecordsNothingWhileTracingOff) {
  ObsTestGuard guard;
  ASSERT_FALSE(tracing_enabled());
  { Span span("invisible"); }
  EXPECT_TRUE(drain_trace().empty());
}

TEST(ObsExport, JsonCarriesSchemaVersionAndEverySlot) {
  ObsTestGuard guard;
  BSR_COUNT_N(MaxsgGainEvals, 5);
  std::ostringstream os;
  write_json(os, snapshot());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"obs_schema_version\": 1"), std::string::npos);
  // Every slot appears, moved or not — consumers never probe for keys.
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    EXPECT_NE(json.find(std::string(name(static_cast<Counter>(i)))),
              std::string::npos);
  }
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  if (BSR_STATS_ENABLED) {
    EXPECT_NE(json.find("\"broker.maxsg.gain_evals\": 5"), std::string::npos);
  }
}

TEST(ObsExport, PrettyDumpShowsOnlyActiveSlots) {
  if (!BSR_STATS_ENABLED) GTEST_SKIP() << "built with BSR_STATS=OFF";
  ObsTestGuard guard;
  BSR_COUNT_N(HealthProbesSent, 17);
  std::ostringstream os;
  dump_pretty(os, snapshot());
  const std::string text = os.str();
  EXPECT_NE(text.find("sim.health.probes_sent"), std::string::npos);
  EXPECT_NE(text.find("17"), std::string::npos);
  EXPECT_EQ(text.find("engine.bfs.runs"), std::string::npos);  // zero: skipped
}

TEST(ObsExport, ChromeTraceEmitsCompleteEvents) {
  ObsTestGuard guard;
  set_tracing(true);
  {
    Span root("chrome_root");
    { Span child("chrome_child"); }
  }
  set_tracing(false);
  const auto spans = drain_trace();
  std::ostringstream os;
  write_chrome_trace(os, spans);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"chrome_root\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

// Round-trips the trace through a real JSON parse: the file must be valid
// JSON (Perfetto rejects almost-JSON), and the span tree's nesting must
// survive the flattening into [ts, ts+dur) complete events.
TEST(ObsExport, ChromeTraceRoundTripPreservesNesting) {
  ObsTestGuard guard;
  set_tracing(true);
  {
    Span root("rt_root");
    { Span child("rt_child_a"); }
    { Span child("rt_child_b"); }
  }
  set_tracing(false);
  std::ostringstream os;
  write_chrome_trace(os, drain_trace());
  const bsr::test::JsonValue trace = bsr::test::parse_json(os.str());
  const bsr::test::JsonValue* events = trace.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, bsr::test::JsonValue::Kind::kArray);
  const auto by_name = [&](std::string_view name) -> const bsr::test::JsonValue& {
    for (const auto& e : events->array) {
      if (e.find("name") != nullptr && e.find("name")->string == name) return e;
    }
    ADD_FAILURE() << "no trace event named " << name;
    return events->array.front();
  };
  const auto& root = by_name("rt_root");
  const auto& child_a = by_name("rt_child_a");
  const auto& child_b = by_name("rt_child_b");
  for (const auto* e : {&root, &child_a, &child_b}) {
    EXPECT_EQ(e->find("ph")->string, "X");
    ASSERT_NE(e->find("ts"), nullptr);
    ASSERT_NE(e->find("dur"), nullptr);
  }
  // Both children's [ts, ts+dur) intervals nest inside the root's, and the
  // siblings run in program order. ts and dur are rounded to µs
  // independently, so containment only holds up to 1µs of slack per rounded
  // quantity.
  constexpr double kSlackUs = 2.0;
  const double root_end = root.find("ts")->number + root.find("dur")->number;
  for (const auto* child : {&child_a, &child_b}) {
    EXPECT_GE(child->find("ts")->number, root.find("ts")->number - kSlackUs);
    EXPECT_LE(child->find("ts")->number + child->find("dur")->number,
              root_end + kSlackUs);
  }
  EXPECT_LE(child_a.find("ts")->number + child_a.find("dur")->number,
            child_b.find("ts")->number + child_b.find("dur")->number + kSlackUs);
}

}  // namespace
}  // namespace bsr::obs
