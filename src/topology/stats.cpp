#include "topology/stats.hpp"

#include <algorithm>
#include <unordered_set>

#include "graph/components.hpp"
#include "graph/distance_histogram.hpp"

namespace bsr::topology {

using bsr::graph::NodeId;

TopologySummary summarize(const InternetTopology& topo, std::size_t bfs_sources,
                          std::uint64_t seed, std::uint32_t beta,
                          double ixp_peering_prob) {
  TopologySummary out;
  out.num_ases = topo.num_ases;
  out.num_ixps = topo.num_ixps;
  out.beta = beta;

  const auto& g = topo.graph;
  out.largest_component = bsr::graph::connected_components(g).largest_size();

  for (NodeId u = 0; u < topo.num_ases; ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u < v && v < topo.num_ases) ++out.as_as_edges;
      if (topo.is_ixp(v)) ++out.ixp_memberships;
    }
  }

  // AS pairs co-located at an IXP ("connections among ASes via IXPs"): for
  // each IXP, members form a potential peering mesh; count distinct pairs.
  // Sort-based dedup — hash sets cost too much memory at ~10M pairs.
  std::vector<std::uint64_t> via_ixp_pairs;
  for (NodeId ixp = topo.num_ases; ixp < topo.num_vertices(); ++ixp) {
    const auto members = g.neighbors(ixp);
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        NodeId a = members[i], b = members[j];
        if (a >= topo.num_ases || b >= topo.num_ases) continue;
        if (a > b) std::swap(a, b);
        via_ixp_pairs.push_back((static_cast<std::uint64_t>(a) << 32) | b);
      }
    }
  }
  std::sort(via_ixp_pairs.begin(), via_ixp_pairs.end());
  via_ixp_pairs.erase(std::unique(via_ixp_pairs.begin(), via_ixp_pairs.end()),
                      via_ixp_pairs.end());
  out.colocated_pairs = via_ixp_pairs.size();

  out.ixp_attachment_rate = topo.ixp_attachment_rate();

  bsr::graph::Rng rng(seed);
  // Realized peering sessions: Bernoulli thinning of co-located pairs.
  std::uint64_t realized = 0;
  for (std::size_t i = 0; i < via_ixp_pairs.size(); ++i) {
    if (rng.bernoulli(ixp_peering_prob)) ++realized;
  }
  out.as_as_via_ixp_pairs = realized;

  const auto cdf = bsr::graph::distance_cdf_sampled(g, rng, bfs_sources);
  out.alpha_within_beta = cdf.at(beta);
  return out;
}

}  // namespace bsr::topology
