#include "econ/competition.hpp"

#include <gtest/gtest.h>

namespace bsr::econ {
namespace {

std::vector<CustomerParams> customers(std::size_t count) {
  std::vector<CustomerParams> out;
  for (std::size_t i = 0; i < count; ++i) {
    CustomerParams c;
    c.v_scale = 0.8 + 0.01 * static_cast<double>(i % 40);
    c.a0 = 0.05;
    c.a_hat = 0.5;
    c.p_peak = 0.15;
    out.push_back(c);
  }
  return out;
}

TEST(Competition, CustomerUtilityGrowsWithCoverage) {
  const auto c = customers(1)[0];
  double a_low = 0, a_high = 0;
  const double u_low = customer_best_utility(c, 0.3, 0.2, &a_low);
  const double u_high = customer_best_utility(c, 0.9, 0.2, &a_high);
  EXPECT_GT(u_high, u_low);
  EXPECT_GE(a_high, a_low - 1e-9);
}

TEST(Competition, CoverageLeaderWinsTheMarket) {
  Duopoly game;
  game.coverage_a = 0.95;
  game.coverage_b = 0.45;
  game.customers = customers(120);
  const auto outcome = compete(game);
  // Damped dynamics usually converge; even on a residual cycle the market
  // split must favor the coverage leader.
  EXPECT_GT(outcome.customers_a, outcome.customers_b);
  EXPECT_GT(outcome.profit_a, outcome.profit_b);
}

TEST(Competition, SymmetricCoverageSplitsOrTies) {
  Duopoly game;
  game.coverage_a = 0.7;
  game.coverage_b = 0.7;
  game.customers = customers(100);
  const auto outcome = compete(game);
  // Equal products, alternating moves: outcome must not give one side a
  // dominant price premium.
  EXPECT_NEAR(outcome.price_a, outcome.price_b, 0.5);
}

TEST(Competition, LeaderKeepsPricePremium) {
  Duopoly game;
  game.coverage_a = 0.95;
  game.coverage_b = 0.45;
  game.customers = customers(120);
  const auto outcome = compete(game);
  EXPECT_GE(outcome.price_a, outcome.price_b - 1e-6);
}

TEST(Competition, AccountingConsistent) {
  Duopoly game;
  game.customers = customers(60);
  const auto outcome = compete(game);
  EXPECT_EQ(outcome.customers_a + outcome.customers_b + outcome.customers_none,
            game.customers.size());
  EXPECT_GE(outcome.adoption_a, 0.0);
  EXPECT_GE(outcome.adoption_b, 0.0);
  EXPECT_NEAR(outcome.profit_a, 2.0 * outcome.price_a * outcome.adoption_a, 1e-6);
}

TEST(Competition, RejectsBadInput) {
  Duopoly empty;
  EXPECT_THROW(compete(empty), std::invalid_argument);
  Duopoly bad_coverage;
  bad_coverage.customers = customers(5);
  bad_coverage.coverage_a = 1.5;
  EXPECT_THROW(compete(bad_coverage), std::invalid_argument);
}

}  // namespace
}  // namespace bsr::econ
