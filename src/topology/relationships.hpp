// AS business relationships and policy-restricted (valley-free) reachability.
//
// Section 6.2 of the paper evaluates broker sets when routing must obey
// existing business relationships ("the previously assumed bidirectional
// routing policy becomes directional", Fig. 5c) and shows that upgrading a
// fraction of inter-broker links to bidirectional peering restores most of
// the lost connectivity (Fig. 5b). We model this with:
//   * a per-edge relationship label (peer / provider-customer),
//   * Gao-style valley-free forwarding (uphill c2p*, at most one peer edge,
//     downhill p2c*) as the "directional" policy,
//   * an override set of edges treated as unrestricted (the "converted to
//     bidirectional" inter-broker links).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"

namespace bsr::topology {

/// Relationship of the canonical edge (u, v) with u < v.
enum class EdgeRel : std::uint8_t {
  kPeer = 0,          // settlement-free peering (or IXP membership)
  kUProviderOfV = 1,  // u sells transit to v
  kVProviderOfU = 2,  // v sells transit to u
};

/// Per-edge relationship labels aligned with a CsrGraph's adjacency.
/// Lookup is O(log deg) by binary search in the (sorted) neighbor list.
///
/// Self-contained by design: the constructor snapshots the adjacency
/// structure instead of keeping a pointer to the graph, so EdgeRelations
/// has plain value semantics (a moved InternetTopology stays valid).
class EdgeRelations {
 public:
  EdgeRelations() = default;

  /// `edges` must be the exact canonical (u < v), sorted, deduplicated edge
  /// set of `g`; `rels` parallel to it. Throws std::invalid_argument on
  /// mismatch with the graph.
  EdgeRelations(const bsr::graph::CsrGraph& g, std::span<const bsr::graph::Edge> edges,
                std::span<const EdgeRel> rels);

  /// Relationship of edge (u, v) from u's point of view:
  /// returns kUProviderOfV if u is v's provider (canonicalized internally).
  [[nodiscard]] EdgeRel rel_canonical(bsr::graph::NodeId u,
                                      bsr::graph::NodeId v) const;

  /// True iff v is a provider of u (u pays v).
  [[nodiscard]] bool is_provider_of(bsr::graph::NodeId provider,
                                    bsr::graph::NodeId customer) const;

  [[nodiscard]] bool is_peer(bsr::graph::NodeId u, bsr::graph::NodeId v) const;

  /// Canonical labels of u's adjacency slots, aligned with
  /// graph.neighbors(u) — the O(1)-per-edge fast path used by traversals.
  /// Interpret direction with rel_means_v_provides_u().
  [[nodiscard]] std::span<const EdgeRel> canonical_rels_of(bsr::graph::NodeId u) const {
    return {rel_by_slot_.data() + offsets_[u],
            rel_by_slot_.data() + offsets_[u + 1]};
  }

  /// Decodes a canonical label for the directed view u -> v: true iff v is
  /// u's provider.
  [[nodiscard]] static constexpr bool rel_means_v_provides_u(
      EdgeRel rel, bsr::graph::NodeId u, bsr::graph::NodeId v) noexcept {
    return (u < v) ? rel == EdgeRel::kVProviderOfU : rel == EdgeRel::kUProviderOfV;
  }

  [[nodiscard]] std::size_t num_edges() const noexcept { return rel_by_slot_.size() / 2; }

  [[nodiscard]] double peer_fraction() const;

 private:
  [[nodiscard]] std::size_t slot(bsr::graph::NodeId u, bsr::graph::NodeId v) const;

  std::vector<std::uint64_t> offsets_;       // degree prefix sums, mirrors CSR
  std::vector<bsr::graph::NodeId> adjacency_; // sorted neighbor snapshot
  std::vector<EdgeRel> rel_by_slot_;          // canonical rel per adjacency slot
};

/// Edge predicate marking edges exempt from policy (freely usable both ways).
using EdgeOverrideFn = std::function<bool(bsr::graph::NodeId, bsr::graph::NodeId)>;

/// Valley-free BFS distances from `source`.
///
/// A path is admissible if it consists of zero or more customer->provider
/// hops, at most one peer hop, then zero or more provider->customer hops.
/// Override edges may be used at any point without changing phase.
/// `edge_ok` (optional) additionally restricts usable edges — pass the
/// dominated-subgraph predicate to evaluate broker sets under policy.
/// Returns hop distances (graph::kUnreachable when unreachable).
[[nodiscard]] std::vector<std::uint32_t> valley_free_distances(
    const bsr::graph::CsrGraph& g, const EdgeRelations& rels,
    bsr::graph::NodeId source,
    const std::function<bool(bsr::graph::NodeId, bsr::graph::NodeId)>& edge_ok = {},
    const EdgeOverrideFn& override_edge = {});

/// Shortest valley-free path src..dst as a vertex sequence (what a
/// hop-count-minimizing BGP decision process would pick under export
/// policies); empty if unreachable. Same state-expanded BFS as
/// valley_free_distances, with parent tracking.
[[nodiscard]] std::vector<bsr::graph::NodeId> valley_free_path(
    const bsr::graph::CsrGraph& g, const EdgeRelations& rels,
    bsr::graph::NodeId src, bsr::graph::NodeId dst);

/// Infers relationships from degrees (Gao-style heuristic): an edge between
/// nodes whose degrees differ by more than `peer_ratio`x is provider->customer
/// (higher degree side is the provider); otherwise peering. Used to test the
/// inference path against generator ground truth.
[[nodiscard]] std::vector<EdgeRel> infer_relationships_by_degree(
    const bsr::graph::CsrGraph& g, std::span<const bsr::graph::Edge> edges,
    double peer_ratio = 2.5);

}  // namespace bsr::topology
