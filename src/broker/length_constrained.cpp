#include "broker/length_constrained.hpp"

#include <algorithm>
#include <stdexcept>

#include "broker/dominated.hpp"
#include "broker/path_length.hpp"
#include "graph/bfs.hpp"
#include "graph/engine.hpp"
#include "graph/sampling.hpp"

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::kUnreachable;
using bsr::graph::NodeId;
using bsr::graph::Rng;

LengthRepairResult repair_path_lengths(const CsrGraph& g, const BrokerSet& b,
                                       Rng& rng, const LengthRepairOptions& options) {
  if (options.epsilon <= 0.0 || options.sources == 0 || options.max_rounds == 0) {
    throw std::invalid_argument("repair_path_lengths: bad options");
  }

  LengthRepairResult result;
  result.brokers = b;

  // Pin one evaluation source set for the whole repair: the deviation is a
  // sampled statistic, and re-sampling each round would let noise mask (or
  // fake) progress. With pinned sources the true deviation is monotone
  // non-increasing as brokers are added.
  const auto eval_sources = bsr::graph::sample_distinct(
      rng, g.num_vertices(),
      static_cast<NodeId>(std::min<std::size_t>(options.sources, g.num_vertices())));
  const auto evaluate = [&]() {
    return compare_path_lengths(g, result.brokers, eval_sources).max_deviation;
  };
  result.initial_deviation = evaluate();
  result.final_deviation = result.initial_deviation;

  // Two independent workspaces: the free and dominated BFS results must stay
  // live simultaneously for the inflation scan (no dense copy needed).
  bsr::graph::engine::Workspace free_ws(g.num_vertices());
  bsr::graph::engine::Workspace dom_ws(g.num_vertices());
  // BrokerSet::add never reallocates the mask, so this filter tracks every
  // promotion made below — matching the legacy by-reference std::function.
  const bsr::graph::engine::DominatedEdgeFilter filter{&result.brokers.mask()};

  for (std::uint32_t round = 0;
       round < options.max_rounds && result.final_deviation > options.epsilon &&
       result.added < options.max_added;
       ++round) {
    ++result.rounds;
    // Find inflated pairs: free distance finite, dominating distance larger
    // (or absent). Sample sources; for each, pick the worst-inflated target.
    const auto sources = bsr::graph::sample_distinct(
        rng, g.num_vertices(),
        static_cast<NodeId>(std::min<std::size_t>(options.pairs_per_round,
                                                  g.num_vertices())));
    for (const NodeId src : sources) {
      if (result.added >= options.max_added) break;
      bsr::graph::engine::bfs(g, src, free_ws, bsr::graph::engine::AllEdges{});
      bsr::graph::engine::bfs(g, src, dom_ws, filter);

      NodeId worst = kUnreachable;
      std::int64_t worst_inflation = 0;
      for (NodeId v = 0; v < g.num_vertices(); ++v) {
        if (v == src || !free_ws.visited(v)) continue;
        const std::int64_t dominated =
            dom_ws.visited(v) ? dom_ws.dist_unchecked(v) : g.num_vertices();
        const std::int64_t inflation =
            dominated - static_cast<std::int64_t>(free_ws.dist_unchecked(v));
        if (inflation > worst_inflation) {
          worst_inflation = inflation;
          worst = v;
        }
      }
      if (worst == kUnreachable) continue;

      // Promote alternate interior vertices of the free shortest path so the
      // whole path becomes dominating.
      const auto path = bsr::graph::bfs_shortest_path(g, src, worst);
      for (std::size_t i = 0; i + 1 < path.size() && result.added < options.max_added;
           ++i) {
        if (!result.brokers.dominates_edge(path[i], path[i + 1])) {
          if (result.brokers.add(path[i + 1])) ++result.added;
        }
      }
    }
    result.final_deviation = evaluate();
  }

  result.feasible = result.final_deviation <= options.epsilon;
  return result;
}

}  // namespace bsr::broker
