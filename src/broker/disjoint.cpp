#include "broker/disjoint.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "graph/bfs.hpp"
#include "graph/sampling.hpp"

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::kUnreachable;
using bsr::graph::NodeId;
using bsr::graph::Rng;

namespace {

std::uint64_t edge_key(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

/// Shortest dominating path avoiding `removed` edges; empty if none. When a
/// fault plane is given, down edges and edges into down vertices are treated
/// exactly like removed edges.
std::vector<NodeId> shortest_avoiding(const CsrGraph& g, const BrokerSet& b,
                                      const bsr::graph::FaultPlane* faults,
                                      NodeId src, NodeId dst,
                                      const std::unordered_set<std::uint64_t>& removed,
                                      std::vector<NodeId>& parent,
                                      std::vector<NodeId>& queue) {
  std::fill(parent.begin(), parent.end(), kUnreachable);
  queue.clear();
  parent[src] = src;
  queue.push_back(src);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    const auto nbrs = g.neighbors(u);
    for (std::size_t slot = 0; slot < nbrs.size(); ++slot) {
      const NodeId v = nbrs[slot];
      if (parent[v] != kUnreachable) continue;
      if (!b.dominates_edge(u, v)) continue;
      if (removed.contains(edge_key(u, v))) continue;
      if (faults != nullptr &&
          (!faults->edge_up_at(u, slot) || !faults->vertex_ok(v))) {
        continue;
      }
      parent[v] = u;
      if (v == dst) {
        std::vector<NodeId> path{dst};
        for (NodeId w = dst; w != src; w = parent[w]) path.push_back(parent[w]);
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(v);
    }
  }
  return {};
}

DisjointPathsResult disjoint_impl(const CsrGraph& g, const BrokerSet& b,
                                  const bsr::graph::FaultPlane* faults, NodeId src,
                                  NodeId dst, std::uint32_t max_paths) {
  DisjointPathsResult result;
  if (src == dst || src >= g.num_vertices() || dst >= g.num_vertices()) return result;
  if (faults != nullptr && (!faults->vertex_ok(src) || !faults->vertex_ok(dst))) {
    return result;
  }

  std::unordered_set<std::uint64_t> removed;
  std::vector<NodeId> parent(g.num_vertices());
  std::vector<NodeId> queue;
  queue.reserve(g.num_vertices());
  for (std::uint32_t i = 0; i < max_paths; ++i) {
    auto path = shortest_avoiding(g, b, faults, src, dst, removed, parent, queue);
    if (path.empty()) break;
    for (std::size_t j = 0; j + 1 < path.size(); ++j) {
      removed.insert(edge_key(path[j], path[j + 1]));
    }
    result.paths.push_back(std::move(path));
  }
  return result;
}

}  // namespace

DisjointPathsResult disjoint_dominating_paths(const CsrGraph& g, const BrokerSet& b,
                                              NodeId src, NodeId dst,
                                              std::uint32_t max_paths) {
  return disjoint_impl(g, b, nullptr, src, dst, max_paths);
}

DisjointPathsResult disjoint_dominating_paths(const CsrGraph& g, const BrokerSet& b,
                                              const bsr::graph::FaultPlane& faults,
                                              NodeId src, NodeId dst,
                                              std::uint32_t max_paths) {
  if (&faults.graph() != &g) {
    throw std::invalid_argument(
        "disjoint_dominating_paths: fault plane bound to another graph");
  }
  return disjoint_impl(g, b, &faults, src, dst, max_paths);
}

PathDiversityStats path_diversity(const CsrGraph& g, const BrokerSet& b, Rng& rng,
                                  std::size_t num_pairs) {
  PathDiversityStats stats;
  if (g.num_vertices() < 2) return stats;
  const auto pairs = bsr::graph::sample_pairs(rng, g.num_vertices(), num_pairs);
  stats.pairs_sampled = pairs.size();
  std::size_t one = 0, two = 0;
  for (const auto& [src, dst] : pairs) {
    const auto result = disjoint_dominating_paths(g, b, src, dst, 2);
    if (result.count() >= 1) ++one;
    if (result.count() >= 2) ++two;
  }
  stats.with_one = static_cast<double>(one) / static_cast<double>(pairs.size());
  stats.with_two = static_cast<double>(two) / static_cast<double>(pairs.size());
  return stats;
}

}  // namespace bsr::broker
