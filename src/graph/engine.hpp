// Static-dispatch traversal engine.
//
// The legacy traversal entry points (BfsRunner::run_filtered,
// connected_components_filtered, distance_cdf_from_sources) accept a
// std::function edge predicate — one indirect call per edge relaxation, which
// the compiler cannot inline or vectorize around. This header replaces that
// with *filter structs* passed to function templates: the predicate body is
// known at instantiation time and folds into the scan loop, so a dominated-
// subgraph BFS costs the same as an unfiltered BFS plus two bitmask loads.
//
// Filters implement
//     bool operator()(NodeId u, std::size_t slot, NodeId v) const
// where `slot` indexes v within g.neighbors(u) — that is what lets
// FaultAwareFilter answer link-state queries in O(1) via
// FaultPlane::edge_up_at(u, slot) instead of an O(log d) edge lookup.
//
// Determinism contract (see docs/ENGINE.md): every kernel visits vertices in
// exactly the order the legacy code did — queue order for BFS, ascending
// (u, slot) order for edge scans — so dist arrays, component labels, greedy
// tie-breaks, and double accumulation orders are bit-identical to the
// pre-engine implementation, and invariant under BSR_THREADS (parallel
// reductions are integer-only and merged in shard order).
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "graph/check.hpp"
#include "graph/csr_graph.hpp"
#include "graph/fault_plane.hpp"
#include "graph/workspace.hpp"
#include "obs/stats.hpp"

namespace bsr::graph::engine {

// --- filter structs --------------------------------------------------------

/// Admits every structural edge.
struct AllEdges {
  bool operator()(NodeId, std::size_t, NodeId) const noexcept { return true; }
};

/// Admits edge {u, v} iff at least one endpoint is a broker — the dominated
/// subgraph G_B of the paper. Holds the broker membership bitmap by pointer
/// so the filter is trivially copyable and register-resident.
struct DominatedEdgeFilter {
  const std::vector<bool>* broker_mask = nullptr;

  bool operator()(NodeId u, std::size_t, NodeId v) const noexcept {
    BSR_DCHECK(broker_mask != nullptr);
    BSR_DCHECK(u < broker_mask->size() && v < broker_mask->size());
    return (*broker_mask)[u] || (*broker_mask)[v];
  }
};

/// Admits edge {u, v} iff both endpoints and the link itself are up.
struct FaultAwareFilter {
  const FaultPlane* faults = nullptr;

  bool operator()(NodeId u, std::size_t slot, NodeId v) const noexcept {
    BSR_DCHECK(faults != nullptr);
    return faults->vertex_ok(u) && faults->vertex_ok(v) &&
           faults->edge_up_at(u, slot);
  }
};

/// Conjunction of two filters; A is evaluated first.
template <class A, class B>
struct BothFilters {
  A a;
  B b;

  bool operator()(NodeId u, std::size_t slot, NodeId v) const noexcept {
    return a(u, slot, v) && b(u, slot, v);
  }
};

/// Adapter for genuinely dynamic predicates (legacy EdgeFilter callers).
/// Still one indirect call per edge — prefer the structs above on hot paths.
struct FnFilter {
  const std::function<bool(NodeId, NodeId)>* fn = nullptr;

  bool operator()(NodeId u, std::size_t, NodeId v) const {
    BSR_DCHECK(fn != nullptr);
    return (*fn)(u, v);
  }
};

// --- traversal kernels -----------------------------------------------------

/// BFS from `source` over edges admitted by `admit`, writing dist/visit-order
/// into `ws`. Visit order is identical to the legacy BfsRunner: FIFO queue,
/// neighbors scanned in ascending adjacency order.
template <class Filter>
void bfs(const CsrGraph& g, NodeId source, Workspace& ws, Filter admit) {
  BSR_DCHECK(source < g.num_vertices());
  ws.begin(g.num_vertices());
  ws.discover(source, 0);
  for (std::size_t head = 0; head < ws.frontier_size(); ++head) {
    const NodeId u = ws.frontier_at(head);
    const std::uint32_t du = ws.dist_unchecked(u);
    const auto neigh = g.neighbors(u);
    for (std::size_t i = 0; i < neigh.size(); ++i) {
      const NodeId v = neigh[i];
      if (!ws.visited(v) && admit(u, i, v)) ws.discover(v, du + 1, u);
    }
    // Accumulates into the workspace, not a stack local (a spilled local
    // measured ~1% more wall time), and after the scan rather than before
    // it: placed ahead of the inner loop the store-add tips the register
    // allocator into spilling the frontier pointer, which puts an L1 reload
    // on the per-vertex dependency chain (~3% wall). Here the loop bound
    // (neigh.size()) is still live and pressure is at its lowest.
    BSR_STATS_ONLY(ws.stats_edges_scanned += neigh.size();)
  }
  BSR_COUNT(EngineBfsRuns);
  BSR_COUNT_N(EngineBfsEdgesScanned, ws.stats_edges_scanned);
  BSR_COUNT_N(EngineBfsVerticesVisited, ws.frontier_size());
}

/// BFS truncated at distance `max_depth` (vertices at dist == max_depth are
/// discovered but not expanded).
template <class Filter>
void bfs_bounded(const CsrGraph& g, NodeId source, std::uint32_t max_depth,
                 Workspace& ws, Filter admit) {
  BSR_DCHECK(source < g.num_vertices());
  ws.begin(g.num_vertices());
  ws.discover(source, 0);
  for (std::size_t head = 0; head < ws.frontier_size(); ++head) {
    const NodeId u = ws.frontier_at(head);
    const std::uint32_t du = ws.dist_unchecked(u);
    if (du >= max_depth) continue;
    const auto neigh = g.neighbors(u);
    for (std::size_t i = 0; i < neigh.size(); ++i) {
      const NodeId v = neigh[i];
      if (!ws.visited(v) && admit(u, i, v)) ws.discover(v, du + 1, u);
    }
    BSR_STATS_ONLY(ws.stats_edges_scanned += neigh.size();)
  }
  BSR_COUNT(EngineBfsRuns);
  BSR_COUNT_N(EngineBfsEdgesScanned, ws.stats_edges_scanned);
  BSR_COUNT_N(EngineBfsVerticesVisited, ws.frontier_size());
}

/// Direction-optimizing BFS (top-down <-> bottom-up switching).
///
/// Classic BFS scans every edge out of the frontier; when the frontier is a
/// large fraction of the graph (which on the internet topology happens by
/// level 2-3), most of those scans hit already-visited vertices. The
/// bottom-up step inverts the loop: every *unvisited* vertex scans its own
/// adjacency for a frontier parent and stops at the first hit, so a level
/// that would touch most of E costs only one successful probe per vertex.
/// Heuristic (Beamer et al.): switch top-down -> bottom-up when the
/// frontier's out-degree exceeds 1/alpha of the unexplored degree, and back
/// once the frontier thins below n/beta vertices. Unvisited vertices are
/// enumerated through a dense bitset (Workspace::visited_bits) so whole
/// 64-vertex blocks of visited regions are skipped per word.
///
/// Requires a *symmetric* filter: admit(u, slot of v in u, v) must equal
/// admit(v, slot of u in v, u) for every structural edge — true for
/// AllEdges, DominatedEdgeFilter, FaultAwareFilter, and conjunctions
/// thereof (an FnFilter wrapping an asymmetric predicate is not).
///
/// Guarantees the exact distances and reachable set of bfs(); visit order
/// *within a level* may differ (bottom-up levels discover in ascending
/// vertex order) and parents are level-equivalent rather than identical, so
/// callers comparing against bfs() must compare distance-derived outputs.
template <class Filter>
void bfs_dir_opt(const CsrGraph& g, NodeId source, Workspace& ws, Filter admit,
                 std::uint32_t alpha = 15, std::uint32_t beta = 18) {
  BSR_DCHECK(source < g.num_vertices());
  BSR_DCHECK(alpha > 0 && beta > 0);
  const NodeId n = g.num_vertices();
  ws.begin(n);
  auto& visited = ws.visited_bits(n);
  auto& frontier = ws.frontier_bits(n);
  const std::size_t words = visited.size();

  ws.discover(source, 0);
  visited[source >> 6] |= std::uint64_t{1} << (source & 63);

  // Control state for the switch heuristic: degree mass on the current
  // frontier vs degree mass not yet explored. Both are exact integers, so
  // the top-down/bottom-up schedule is deterministic.
  std::uint64_t frontier_degree = g.degree(source);
  std::uint64_t unexplored_degree = 2 * g.num_edges() - frontier_degree;
  std::size_t level_begin = 0;
  std::uint32_t depth = 0;
  bool bottom_up = false;

  while (level_begin < ws.frontier_size()) {
    const std::size_t level_end = ws.frontier_size();
    if (!bottom_up) {
      if (frontier_degree > unexplored_degree / alpha) bottom_up = true;
    } else {
      if (level_end - level_begin < n / beta) bottom_up = false;
    }
    std::uint64_t next_degree = 0;
    if (bottom_up) {
      std::fill(frontier.begin(), frontier.end(), 0);
      for (std::size_t i = level_begin; i < level_end; ++i) {
        const NodeId u = ws.frontier_at(i);
        frontier[u >> 6] |= std::uint64_t{1} << (u & 63);
      }
      for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t todo = ~visited[w];
        if (w == words - 1 && (n & 63) != 0) {
          todo &= (std::uint64_t{1} << (n & 63)) - 1;  // mask padding bits
        }
        while (todo != 0) {
          const auto v =
              static_cast<NodeId>((w << 6) + std::countr_zero(todo));
          todo &= todo - 1;
          const auto neigh = g.neighbors(v);
          for (std::size_t i = 0; i < neigh.size(); ++i) {
            const NodeId u = neigh[i];
            BSR_STATS_ONLY(++ws.stats_edges_scanned;)
            if (((frontier[u >> 6] >> (u & 63)) & 1) != 0 && admit(v, i, u)) {
              ws.discover(v, depth + 1, u);
              visited[v >> 6] |= std::uint64_t{1} << (v & 63);
              next_degree += neigh.size();
              break;
            }
          }
        }
      }
      BSR_COUNT(EngineBfsBottomUpLevels);
    } else {
      for (std::size_t head = level_begin; head < level_end; ++head) {
        const NodeId u = ws.frontier_at(head);
        const auto neigh = g.neighbors(u);
        for (std::size_t i = 0; i < neigh.size(); ++i) {
          const NodeId v = neigh[i];
          if (((visited[v >> 6] >> (v & 63)) & 1) == 0 && admit(u, i, v)) {
            ws.discover(v, depth + 1, u);
            visited[v >> 6] |= std::uint64_t{1} << (v & 63);
            next_degree += g.degree(v);
          }
        }
        BSR_STATS_ONLY(ws.stats_edges_scanned += neigh.size();)
      }
    }
    frontier_degree = next_degree;
    unexplored_degree -= next_degree;
    level_begin = level_end;
    ++depth;
  }
  BSR_COUNT(EngineBfsRuns);
  BSR_COUNT_N(EngineBfsEdgesScanned, ws.stats_edges_scanned);
  BSR_COUNT_N(EngineBfsVerticesVisited, ws.frontier_size());
}

/// Unions the endpoints of every admitted edge into `uf`. Edges are scanned
/// in canonical ascending (u, v) order with u < v — the same order every
/// legacy union-find construction loop used, so root identities match.
/// Works with both UnionFind and RollbackUnionFind.
template <class UF, class Filter>
void unite_edges(const CsrGraph& g, UF& uf, Filter admit) {
  const NodeId n = g.num_vertices();
  BSR_STATS_ONLY(std::uint64_t scans = 0; std::uint64_t admitted = 0;)
  for (NodeId u = 0; u < n; ++u) {
    const auto neigh = g.neighbors(u);
    BSR_STATS_ONLY(scans += neigh.size();)
    for (std::size_t i = 0; i < neigh.size(); ++i) {
      const NodeId v = neigh[i];
      if (u < v && admit(u, i, v)) {
        BSR_STATS_ONLY(++admitted;)
        uf.unite(u, v);
      }
    }
  }
  BSR_COUNT_N(EngineUniteEdgeScans, scans);
  BSR_COUNT_N(EngineUniteAdmitted, admitted);
}

/// Unions `center` with every neighbor reachable through an admitted edge —
/// the incremental "add one broker" step of greedy sweeps.
template <class UF, class Filter>
void unite_star(const CsrGraph& g, UF& uf, NodeId center, Filter admit) {
  const auto neigh = g.neighbors(center);
  BSR_STATS_ONLY(std::uint64_t admitted = 0;)
  for (std::size_t i = 0; i < neigh.size(); ++i) {
    const NodeId v = neigh[i];
    if (admit(center, i, v)) {
      BSR_STATS_ONLY(++admitted;)
      uf.unite(center, v);
    }
  }
  BSR_COUNT_N(EngineUniteEdgeScans, neigh.size());
  BSR_COUNT_N(EngineUniteAdmitted, admitted);
}

// --- parallel driver -------------------------------------------------------

/// Effective worker count: BSR_THREADS env var (clamped to [1, 256]) unless
/// overridden by set_num_threads(). 1 (the default) means fully serial.
[[nodiscard]] int num_threads();

/// Overrides the worker count for this process; n <= 0 restores the
/// environment-derived value. Intended for tests and benchmarks.
void set_num_threads(int n);

/// Number of shards to split `count` independent work items into:
/// min(num_threads(), count), at least 1.
[[nodiscard]] std::size_t plan_shards(std::size_t count);

/// Runs body(shard, begin, end) for each of plan_shards(count) contiguous
/// blocks [begin, end) of [0, count). Shard 0 runs on the calling thread;
/// the rest on std::threads. The partition depends only on `count` and the
/// shard count — never on timing — so any reduction merged in shard order
/// is deterministic.
void for_each_shard(
    std::size_t count,
    const std::function<void(std::size_t shard, std::size_t begin,
                             std::size_t end)>& body);

/// Per-thread scratch workspace for one-shot convenience wrappers. Grows to
/// the largest graph seen on this thread and is reused across calls.
[[nodiscard]] Workspace& tls_workspace();

}  // namespace bsr::graph::engine
