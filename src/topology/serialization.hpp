// Full-topology serialization (graph + node metadata + edge relationships).
//
// The plain edge-list format (io/edge_list_io.hpp) loses node types, tiers
// and business relationships, which the policy experiments need. This
// format round-trips an InternetTopology exactly, so a user can snapshot a
// generated instance (or encode a real dataset once parsed) and feed it to
// every bench via a file instead of the generator.
//
// Format (text, line-oriented, '#' comments):
//   brokerset-topology v1
//   counts <num_ases> <num_ixps>
//   node <id> <type:0..3> <tier:0..4>        (one per vertex, ordered)
//   edge <u> <v> <rel:0..2>                  (canonical u < v)
#pragma once

#include <iosfwd>
#include <string>

#include "topology/internet.hpp"

namespace bsr::topology {

/// Writes `topo` to the stream. Deterministic byte-for-byte.
void save_topology(std::ostream& os, const InternetTopology& topo);

/// Writes to a file; throws std::runtime_error on IO failure.
void save_topology_file(const std::string& path, const InternetTopology& topo);

/// Parses a topology; throws std::runtime_error with line context on
/// malformed input (wrong magic, counts mismatch, bad enums, unknown ids).
[[nodiscard]] InternetTopology load_topology(std::istream& is);

[[nodiscard]] InternetTopology load_topology_file(const std::string& path);

}  // namespace bsr::topology
