// Traffic demand generation for the QoS routing simulator.
//
// Flows follow a gravity-like model: endpoints are drawn degree-
// proportionally (popular networks source/sink more traffic) and volumes
// are heavy-tailed — mirroring the elephant/mice mix of inter-domain
// traffic that motivates the paper's QoS brokerage.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/rng.hpp"

namespace bsr::sim {

struct Flow {
  bsr::graph::NodeId src = 0;
  bsr::graph::NodeId dst = 0;
  double volume = 1.0;
};

struct DemandConfig {
  std::size_t num_flows = 1000;
  /// Pareto tail index for volumes (smaller = heavier tail).
  double volume_alpha = 1.2;
  double volume_min = 1.0;
  double volume_max = 1000.0;
  /// true = degree-proportional endpoints (gravity); false = uniform.
  bool degree_weighted = true;
};

/// Generates flows with src != dst. Deterministic in rng state.
/// Throws std::invalid_argument for graphs with < 2 vertices.
[[nodiscard]] std::vector<Flow> generate_flows(const bsr::graph::CsrGraph& g,
                                               const DemandConfig& config,
                                               bsr::graph::Rng& rng);

}  // namespace bsr::sim
