// Breadth-first search primitives on CsrGraph.
//
// The AS graph is unweighted, so shortest hop distances are BFS distances.
// Besides plain BFS we provide a *filtered* BFS whose edge relaxation is
// restricted by a caller predicate — this is how the dominated subgraph
// G_B (edges with at least one broker endpoint) is traversed without
// materializing it.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"

namespace bsr::graph {

/// Sentinel distance for unreachable vertices.
inline constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();

/// Reusable BFS workspace. Construct once per graph size and reuse across
/// many runs to avoid reallocating the frontier/distance arrays (matters
/// when sampling thousands of sources).
class BfsRunner {
 public:
  explicit BfsRunner(NodeId n) : dist_(n, kUnreachable), queue_(n) {}

  /// Full BFS from `source`. Returns distances (kUnreachable if not reached).
  /// The returned span is valid until the next run.
  std::span<const std::uint32_t> run(const CsrGraph& g, NodeId source);

  /// BFS where an edge (u, v) is traversable iff edge_ok(u, v). Used for
  /// dominated-subgraph and policy-restricted traversals.
  std::span<const std::uint32_t> run_filtered(
      const CsrGraph& g, NodeId source,
      const std::function<bool(NodeId, NodeId)>& edge_ok);

  /// BFS from source limited to `max_depth` hops (inclusive).
  std::span<const std::uint32_t> run_bounded(const CsrGraph& g, NodeId source,
                                             std::uint32_t max_depth);

  [[nodiscard]] std::span<const std::uint32_t> distances() const noexcept { return dist_; }

 private:
  void reset_touched();

  std::vector<std::uint32_t> dist_;
  std::vector<NodeId> queue_;
  std::vector<NodeId> touched_;  // vertices whose dist_ entries need resetting
};

/// One-shot BFS convenience wrapper (allocates per call).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const CsrGraph& g, NodeId source);

/// Shortest path (as a vertex sequence source..target) via BFS parent
/// pointers; empty if unreachable. O(V + E) per call.
[[nodiscard]] std::vector<NodeId> bfs_shortest_path(const CsrGraph& g, NodeId source,
                                                    NodeId target);

}  // namespace bsr::graph
