#include "sim/demand.hpp"

#include <stdexcept>

namespace bsr::sim {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::graph::Rng;

std::vector<Flow> generate_flows(const CsrGraph& g, const DemandConfig& config,
                                 Rng& rng) {
  const NodeId n = g.num_vertices();
  if (n < 2) throw std::invalid_argument("generate_flows: need >= 2 vertices");
  if (config.volume_min <= 0.0 || config.volume_max < config.volume_min) {
    throw std::invalid_argument("generate_flows: bad volume range");
  }

  // Degree-proportional endpoint pool (one slot per adjacency entry, plus
  // one per vertex so isolated vertices still appear).
  std::vector<NodeId> pool;
  if (config.degree_weighted) {
    pool.reserve(static_cast<std::size_t>(n) + 2 * g.num_edges());
    for (NodeId v = 0; v < n; ++v) {
      pool.push_back(v);
      for (std::uint32_t i = 0; i < g.degree(v); ++i) pool.push_back(v);
    }
  }

  const auto draw_endpoint = [&]() -> NodeId {
    if (config.degree_weighted) return pool[rng.uniform(pool.size())];
    return static_cast<NodeId>(rng.uniform(n));
  };

  std::vector<Flow> flows;
  flows.reserve(config.num_flows);
  while (flows.size() < config.num_flows) {
    const NodeId src = draw_endpoint();
    const NodeId dst = draw_endpoint();
    if (src == dst) continue;
    Flow flow;
    flow.src = src;
    flow.dst = dst;
    flow.volume = rng.pareto(config.volume_alpha, config.volume_min, config.volume_max);
    flows.push_back(flow);
  }
  return flows;
}

}  // namespace bsr::sim
