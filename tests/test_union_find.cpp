#include "graph/union_find.hpp"

#include <gtest/gtest.h>

namespace bsr::graph {
namespace {

TEST(UnionFind, StartsAsSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_components(), 5u);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(uf.find(v), v);
    EXPECT_EQ(uf.component_size(v), 1u);
  }
}

TEST(UnionFind, UniteMergesAndReportsNew) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_FALSE(uf.connected(0, 2));
  EXPECT_EQ(uf.num_components(), 3u);
}

TEST(UnionFind, ComponentSizesAccumulate) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(2, 3);
  uf.unite(0, 2);
  EXPECT_EQ(uf.component_size(3), 4u);
  EXPECT_EQ(uf.component_size(5), 1u);
  EXPECT_EQ(uf.num_components(), 3u);  // {0,1,2,3}, {4}, {5}
}

TEST(UnionFind, TransitiveConnectivity) {
  UnionFind uf(10);
  for (NodeId v = 0; v + 1 < 10; ++v) uf.unite(v, v + 1);
  EXPECT_TRUE(uf.connected(0, 9));
  EXPECT_EQ(uf.num_components(), 1u);
  EXPECT_EQ(uf.component_size(4), 10u);
}

TEST(UnionFind, ResetRestoresSingletons) {
  UnionFind uf(3);
  uf.unite(0, 1);
  uf.reset(4);
  EXPECT_EQ(uf.size(), 4u);
  EXPECT_EQ(uf.num_components(), 4u);
  EXPECT_FALSE(uf.connected(0, 1));
}

TEST(UnionFind, LargeChainPathCompression) {
  constexpr NodeId kN = 100000;
  UnionFind uf(kN);
  for (NodeId v = 0; v + 1 < kN; ++v) uf.unite(v, v + 1);
  // After path halving, repeated finds stay cheap and correct.
  for (NodeId v = 0; v < kN; v += 997) EXPECT_EQ(uf.find(v), uf.find(0));
  EXPECT_EQ(uf.component_size(0), kN);
}

}  // namespace
}  // namespace bsr::graph
