#include "graph/pagerank.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "graph/graph_builder.hpp"
#include "test_util.hpp"

namespace bsr::graph {
namespace {

using bsr::test::make_cycle;
using bsr::test::make_random;
using bsr::test::make_star;

TEST(PageRank, SumsToOne) {
  const CsrGraph g = make_random(60, 0.08, 8);
  const auto pr = pagerank(g);
  const double total = std::accumulate(pr.begin(), pr.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-8);
}

TEST(PageRank, UniformOnRegularGraph) {
  const CsrGraph g = make_cycle(10);
  const auto pr = pagerank(g);
  for (const double score : pr) EXPECT_NEAR(score, 0.1, 1e-8);
}

TEST(PageRank, StarCenterDominates) {
  const CsrGraph g = make_star(12);
  const auto pr = pagerank(g);
  for (NodeId v = 1; v < 12; ++v) {
    EXPECT_GT(pr[0], pr[v]);
    EXPECT_NEAR(pr[v], pr[1], 1e-10);  // leaves symmetric
  }
}

TEST(PageRank, DanglingVerticesHandled) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const CsrGraph g = b.build();  // 2 and 3 have degree 0
  const auto pr = pagerank(g);
  const double total = std::accumulate(pr.begin(), pr.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-8);
  EXPECT_GT(pr[2], 0.0);
}

TEST(PageRank, EmptyGraph) { EXPECT_TRUE(pagerank(CsrGraph()).empty()); }

TEST(PageRank, RejectsBadOptions) {
  const CsrGraph g = make_cycle(4);
  PageRankOptions bad_damping;
  bad_damping.damping = 1.5;
  EXPECT_THROW(pagerank(g, bad_damping), std::invalid_argument);
  PageRankOptions bad_iters;
  bad_iters.max_iterations = 0;
  EXPECT_THROW(pagerank(g, bad_iters), std::invalid_argument);
}

TEST(PageRank, OrderingDescending) {
  const CsrGraph g = make_random(40, 0.1, 17);
  const auto pr = pagerank(g);
  const auto order = vertices_by_pagerank_desc(g);
  ASSERT_EQ(order.size(), g.num_vertices());
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_GE(pr[order[i]], pr[order[i + 1]]);
  }
}

TEST(PageRank, CorrelatesWithDegreeOnUndirectedGraphs) {
  // The paper (citing [32]) relies on PageRank ~ degree for undirected
  // graphs; sanity-check the rank correlation is strongly positive.
  const CsrGraph g = make_random(80, 0.06, 23);
  const auto pr = pagerank(g);
  double num = 0.0, den_a = 0.0, den_b = 0.0;
  double mean_deg = 0.0, mean_pr = 0.0;
  for (NodeId v = 0; v < g.num_vertices(); ++v) {
    mean_deg += g.degree(v);
    mean_pr += pr[v];
  }
  mean_deg /= g.num_vertices();
  mean_pr /= g.num_vertices();
  for (NodeId v = 0; v < g.num_vertices(); ++v) {
    const double da = g.degree(v) - mean_deg;
    const double db = pr[v] - mean_pr;
    num += da * db;
    den_a += da * da;
    den_b += db * db;
  }
  const double correlation = num / std::sqrt(den_a * den_b);
  EXPECT_GT(correlation, 0.9);
}

}  // namespace
}  // namespace bsr::graph
