// QuantileSketch: fixed-point bucket map round-trips, merge algebra
// (commutative + associative, bit-exact), quantile error bounds against
// exact order statistics, the registry plumbing, and thread-count
// invariance of the sketches the route-serving plane records.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "broker/broker_set.hpp"
#include "graph/engine.hpp"
#include "graph/fault_plane.hpp"
#include "graph/rng.hpp"
#include "obs/sketch.hpp"
#include "sim/route_service.hpp"
#include "test_util.hpp"

namespace {

using bsr::obs::QuantileSketch;
using bsr::obs::Sketch;
using bsr::obs::SketchSnapshot;

// --- bucket map --------------------------------------------------------------

TEST(SketchBuckets, LowerBoundRoundTripsEveryBucket) {
  for (std::size_t idx = 0; idx < QuantileSketch::kBuckets; ++idx) {
    const std::uint64_t lower = QuantileSketch::bucket_lower(idx);
    EXPECT_EQ(QuantileSketch::bucket_of(lower), idx) << "bucket " << idx;
  }
}

TEST(SketchBuckets, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < 2 * QuantileSketch::kSubBuckets; ++v) {
    EXPECT_EQ(QuantileSketch::bucket_lower(QuantileSketch::bucket_of(v)), v);
  }
}

TEST(SketchBuckets, EveryValueLandsWithinRelativeErrorOfItsLowerBound) {
  bsr::graph::Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over the full uint64 range: pick a bit width, then bits.
    const unsigned width = 1 + static_cast<unsigned>(rng.uniform(64));
    std::uint64_t v = rng();
    if (width < 64) v &= (std::uint64_t{1} << width) - 1;
    const std::uint64_t lower =
        QuantileSketch::bucket_lower(QuantileSketch::bucket_of(v));
    ASSERT_LE(lower, v);
    const std::uint64_t slack =
        std::max<std::uint64_t>(1, lower >> QuantileSketch::kSubBits);
    ASSERT_LT(v - lower, slack) << "v=" << v << " lower=" << lower;
  }
}

TEST(SketchBuckets, BucketOfIsMonotone) {
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < 1 << 16; ++v) {
    const std::size_t b = QuantileSketch::bucket_of(v);
    ASSERT_GE(b, prev);
    prev = b;
  }
  EXPECT_LT(QuantileSketch::bucket_of(~std::uint64_t{0}),
            QuantileSketch::kBuckets);
}

TEST(SketchBuckets, TopOctaveStaysInBounds) {
  // Regression: bit_width-64 values map into the last kSubBuckets indices;
  // an earlier kBuckets undercounted the octaves and observe() wrote past
  // the array for v >= 2^63.
  QuantileSketch s;
  s.observe(~std::uint64_t{0});
  s.observe(std::uint64_t{1} << 63);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.max(), QuantileSketch::bucket_lower(
                         QuantileSketch::bucket_of(~std::uint64_t{0})));
  EXPECT_EQ(s.min(), std::uint64_t{1} << 63);
}

// --- merge algebra -----------------------------------------------------------

QuantileSketch sketch_of(const std::vector<std::uint64_t>& values) {
  QuantileSketch s;
  for (const std::uint64_t v : values) s.observe(v);
  return s;
}

TEST(SketchMerge, CommutativeBitExact) {
  const QuantileSketch a = sketch_of({1, 5, 900, 1 << 20});
  const QuantileSketch b = sketch_of({0, 0, 31, 77, 1u << 30});
  QuantileSketch ab = a;
  ab.merge(b);
  QuantileSketch ba = b;
  ba.merge(a);
  EXPECT_TRUE(ab == ba);
  EXPECT_EQ(ab.count(), a.count() + b.count());
  EXPECT_EQ(ab.sum(), a.sum() + b.sum());
}

TEST(SketchMerge, AssociativeBitExact) {
  const QuantileSketch a = sketch_of({3, 1000, 12345});
  const QuantileSketch b = sketch_of({64, 65, 66});
  const QuantileSketch c = sketch_of({1, std::uint64_t{1} << 40});
  QuantileSketch left = a;  // (a + b) + c
  left.merge(b);
  left.merge(c);
  QuantileSketch bc = b;  // a + (b + c)
  bc.merge(c);
  QuantileSketch right = a;
  right.merge(bc);
  EXPECT_TRUE(left == right);
}

TEST(SketchMerge, MergeEqualsObservingEachValue) {
  bsr::graph::Rng rng(11);
  std::vector<std::uint64_t> values(500);
  for (auto& v : values) v = rng.uniform(1 << 20);
  QuantileSketch whole = sketch_of(values);
  QuantileSketch parts;
  for (std::size_t begin = 0; begin < values.size(); begin += 97) {
    const std::size_t end = std::min(values.size(), begin + 97);
    parts.merge(sketch_of({values.begin() + static_cast<std::ptrdiff_t>(begin),
                           values.begin() + static_cast<std::ptrdiff_t>(end)}));
  }
  EXPECT_TRUE(whole == parts);
}

TEST(SketchDelta, SubtractsAnEarlierState) {
  QuantileSketch s = sketch_of({10, 20, 30});
  const QuantileSketch before = s;
  s.observe(4096);
  s.observe(17);
  const QuantileSketch d = s.delta_since(before);
  EXPECT_TRUE(d == sketch_of({4096, 17}));
}

// --- quantiles ---------------------------------------------------------------

TEST(SketchQuantile, EmptySketchReturnsZeroEverywhere) {
  const QuantileSketch s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.quantile(0.5), 0u);
  EXPECT_EQ(s.min(), 0u);
  EXPECT_EQ(s.max(), 0u);
}

TEST(SketchQuantile, WithinGuaranteedRelativeErrorOfExact) {
  bsr::graph::Rng rng(23);
  std::vector<std::uint64_t> values(4000);
  for (auto& v : values) {
    // Mixed regimes: exact small values and log-bucketed large ones.
    v = (rng() % 2 == 0) ? rng.uniform(64)
                              : rng.uniform(std::uint64_t{1} << 34);
  }
  QuantileSketch s = sketch_of(values);
  std::vector<std::uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    // rank = ceil(q * n), at least 1 — the same order statistic quantile()
    // targets.
    std::size_t rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size()));
    if (static_cast<double>(rank) < q * static_cast<double>(sorted.size())) {
      ++rank;
    }
    rank = std::max<std::size_t>(rank, 1);
    const std::uint64_t exact = sorted[rank - 1];
    const std::uint64_t est = s.quantile(q);
    EXPECT_LE(est, exact) << "q=" << q;
    const std::uint64_t slack =
        std::max<std::uint64_t>(1, est >> QuantileSketch::kSubBits);
    EXPECT_LT(exact - est, slack) << "q=" << q << " exact=" << exact;
  }
  EXPECT_EQ(s.min(), QuantileSketch::bucket_lower(
                         QuantileSketch::bucket_of(sorted.front())));
  EXPECT_EQ(s.max(), QuantileSketch::bucket_lower(
                         QuantileSketch::bucket_of(sorted.back())));
}

TEST(SketchQuantile, ClampsOutOfRangeQ) {
  const QuantileSketch s = sketch_of({5, 6, 7});
  EXPECT_EQ(s.quantile(-0.5), s.quantile(0.0));
  EXPECT_EQ(s.quantile(2.0), s.quantile(1.0));
}

// --- registry ----------------------------------------------------------------

TEST(SketchRegistry, ObserveSnapshotResetRoundTrip) {
  bsr::obs::reset_sketches();
  bsr::obs::sketch_observe(Sketch::kRouteTicksFresh, 12);
  bsr::obs::sketch_observe(Sketch::kRouteTicksFresh, 20);
  bsr::obs::sketch_observe(Sketch::kRouteDistStale, 3);
  const SketchSnapshot snap = bsr::obs::snapshot_sketches();
  EXPECT_EQ(snap[static_cast<std::size_t>(Sketch::kRouteTicksFresh)].count(), 2u);
  EXPECT_EQ(snap[static_cast<std::size_t>(Sketch::kRouteTicksFresh)].sum(), 32u);
  EXPECT_EQ(snap[static_cast<std::size_t>(Sketch::kRouteDistStale)].count(), 1u);
  EXPECT_EQ(snap[static_cast<std::size_t>(Sketch::kRouteTicksStale)].count(), 0u);

  const SketchSnapshot before = snap;
  bsr::obs::sketch_observe(Sketch::kRouteTicksFresh, 100);
  const SketchSnapshot delta =
      bsr::obs::sketch_delta(before, bsr::obs::snapshot_sketches());
  EXPECT_EQ(delta[static_cast<std::size_t>(Sketch::kRouteTicksFresh)].count(), 1u);
  EXPECT_EQ(delta[static_cast<std::size_t>(Sketch::kRouteDistStale)].count(), 0u);

  bsr::obs::reset_sketches();
  for (std::size_t s = 0; s < bsr::obs::kNumSketches; ++s) {
    EXPECT_TRUE(bsr::obs::sketch(static_cast<Sketch>(s)).empty());
  }
}

TEST(SketchRegistry, NamesFollowTheTableConvention) {
  EXPECT_EQ(bsr::obs::name(Sketch::kRouteTicksFresh),
            "sim.route_service.ticks.fresh");
  EXPECT_EQ(bsr::obs::name(Sketch::kRouteDistStale),
            "sim.route_service.dist.stale_served");
}

// --- thread-count invariance -------------------------------------------------

// The registry state recorded by a full serve lifecycle must be bit-identical
// at any BSR_THREADS: tally runs on the control thread over answers whose
// content is already thread-invariant.
TEST(SketchThreads, RouteServiceSketchesAreThreadCountInvariant) {
  if (!BSR_STATS_ENABLED) GTEST_SKIP() << "built with BSR_STATS=OFF";
  const bsr::graph::CsrGraph g = bsr::test::make_connected_random(400, 0.02, 99);
  std::vector<bsr::graph::NodeId> members;
  for (bsr::graph::NodeId v = 0; v < 40; ++v) members.push_back(v * 7);
  const bsr::broker::BrokerSet brokers(g.num_vertices(), members);

  bsr::sim::DemandConfig demand;
  demand.num_flows = 600;
  bsr::graph::Rng rng(5);
  const auto flows = bsr::sim::generate_flows(g, demand, rng);

  const auto run_lifecycle = [&]() -> SketchSnapshot {
    bsr::obs::reset_sketches();
    bsr::graph::FaultPlane faults(g);
    bsr::sim::RouteService service(g, brokers, &faults);
    std::vector<bsr::sim::RouteAnswer> answers;
    service.serve_batch(flows, 0.0, answers);
    faults.fail_vertex(members[0]);
    service.on_fault(1.0);
    service.serve_batch(flows, 1.5, answers);  // stale-served
    while (service.next_event_time() <= 1e9) {
      service.advance(service.next_event_time());
    }
    service.serve_batch(flows, 50.0, answers);
    return bsr::obs::snapshot_sketches();
  };

  bsr::graph::engine::set_num_threads(1);
  const SketchSnapshot t1 = run_lifecycle();
  bsr::graph::engine::set_num_threads(4);
  const SketchSnapshot t4 = run_lifecycle();
  bsr::graph::engine::set_num_threads(7);
  const SketchSnapshot t7 = run_lifecycle();
  bsr::graph::engine::set_num_threads(0);

  EXPECT_TRUE(t1 == t4);
  EXPECT_TRUE(t1 == t7);
  // The lifecycle actually recorded: fresh and stale tick sketches non-empty.
  EXPECT_GT(t1[static_cast<std::size_t>(Sketch::kRouteTicksFresh)].count(), 0u);
  EXPECT_GT(t1[static_cast<std::size_t>(Sketch::kRouteTicksStale)].count(), 0u);
}

}  // namespace
