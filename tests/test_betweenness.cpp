#include "graph/betweenness.hpp"

#include <gtest/gtest.h>

#include "graph/graph_builder.hpp"
#include "test_util.hpp"

namespace bsr::graph {
namespace {

using bsr::test::make_complete;
using bsr::test::make_connected_random;
using bsr::test::make_cycle;
using bsr::test::make_path;
using bsr::test::make_star;

TEST(Betweenness, StarCenterTakesAllPairs) {
  const CsrGraph g = make_star(8);
  const auto score = betweenness_exact(g);
  // Center mediates every leaf pair: C(7,2) = 21.
  EXPECT_NEAR(score[0], 21.0, 1e-9);
  for (NodeId v = 1; v < 8; ++v) EXPECT_NEAR(score[v], 0.0, 1e-9);
}

TEST(Betweenness, PathGraphInteriorProfile) {
  const CsrGraph g = make_path(5);
  const auto score = betweenness_exact(g);
  // Vertex 2 (middle) mediates pairs {0,1}x{3,4} -> 4, plus none others
  // fully... exact values for a path: b(i) = i * (n-1-i).
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_NEAR(score[v], static_cast<double>(v) * (4 - v), 1e-9) << "v=" << v;
  }
}

TEST(Betweenness, CompleteGraphAllZero) {
  const CsrGraph g = make_complete(6);
  const auto score = betweenness_exact(g);
  for (const double s : score) EXPECT_NEAR(s, 0.0, 1e-9);
}

TEST(Betweenness, CycleSymmetric) {
  const CsrGraph g = make_cycle(8);
  const auto score = betweenness_exact(g);
  for (NodeId v = 1; v < 8; ++v) EXPECT_NEAR(score[v], score[0], 1e-9);
}

TEST(Betweenness, EqualShortestPathsSplitCredit) {
  // Diamond: 0-1, 0-2, 1-3, 2-3. Pair (0,3) splits over 1 and 2.
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  const CsrGraph g = b.build();
  const auto score = betweenness_exact(g);
  // Pair (0,3) splits over 1 and 2; pair (1,2) splits over 0 and 3.
  for (NodeId v = 0; v < 4; ++v) EXPECT_NEAR(score[v], 0.5, 1e-9) << "v=" << v;
}

TEST(Betweenness, SampledApproximatesExact) {
  const CsrGraph g = make_connected_random(120, 0.05, 9);
  const auto exact = betweenness_exact(g);
  Rng rng(10);
  const auto sampled = betweenness(g, rng, 60);
  // Rank correlation on the top vertices must be preserved: the top exact
  // vertex should be near the top of the sampled ranking.
  NodeId exact_top = 0;
  for (NodeId v = 1; v < g.num_vertices(); ++v) {
    if (exact[v] > exact[exact_top]) exact_top = v;
  }
  std::size_t better = 0;
  for (NodeId v = 0; v < g.num_vertices(); ++v) {
    if (sampled[v] > sampled[exact_top]) ++better;
  }
  EXPECT_LT(better, 6u);
}

TEST(Betweenness, OrderingDeterministicAndDescending) {
  const CsrGraph g = make_connected_random(50, 0.08, 11);
  Rng rng_a(1), rng_b(1);
  const auto a = vertices_by_betweenness_desc(g, rng_a, 25);
  const auto b = vertices_by_betweenness_desc(g, rng_b, 25);
  EXPECT_EQ(a, b);
}

TEST(Betweenness, TinyGraphsAreZero) {
  const auto s1 = betweenness_exact(make_path(2));
  for (const double v : s1) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace bsr::graph
