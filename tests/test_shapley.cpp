#include "econ/shapley.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <numeric>

namespace bsr::econ {
namespace {

using bsr::graph::Rng;

/// Additive game: U(S) = sum of per-player weights. Shapley = weights.
CharacteristicFn additive_game(std::vector<double> weights) {
  return [weights = std::move(weights)](std::uint64_t mask) {
    double total = 0.0;
    for (std::size_t j = 0; j < weights.size(); ++j) {
      if (mask & (1ull << j)) total += weights[j];
    }
    return total;
  };
}

/// Unanimity game: worth 1 iff the full coalition forms. Convex.
CharacteristicFn unanimity_game(std::size_t n) {
  const std::uint64_t full = (1ull << n) - 1;
  return [full](std::uint64_t mask) { return mask == full ? 1.0 : 0.0; };
}

/// Majority game: worth 1 iff strictly more than half the players join.
CharacteristicFn majority_game(std::size_t n) {
  return [n](std::uint64_t mask) {
    return std::popcount(mask) * 2 > static_cast<int>(n) ? 1.0 : 0.0;
  };
}

TEST(ShapleyExact, AdditiveGameGivesWeights) {
  const std::vector<double> weights{1.0, 2.5, 0.0, 4.0};
  const auto phi = shapley_exact(4, additive_game(weights));
  ASSERT_EQ(phi.size(), 4u);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(phi[j], weights[j], 1e-9);
}

TEST(ShapleyExact, SymmetryAndEfficiencyOnUnanimity) {
  constexpr std::size_t kN = 5;
  const auto phi = shapley_exact(kN, unanimity_game(kN));
  for (const double p : phi) EXPECT_NEAR(p, 1.0 / kN, 1e-9);
}

TEST(ShapleyExact, EfficiencyOnMajorityGame) {
  constexpr std::size_t kN = 7;
  const auto phi = shapley_exact(kN, majority_game(kN));
  const double total = std::accumulate(phi.begin(), phi.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);  // U(full) = 1
  for (const double p : phi) EXPECT_NEAR(p, 1.0 / kN, 1e-9);  // symmetric
}

TEST(ShapleyExact, DummyPlayerGetsZero) {
  // Player 2 contributes nothing to any coalition.
  const auto value = [](std::uint64_t mask) {
    return static_cast<double>(std::popcount(mask & 0b011u));
  };
  const auto phi = shapley_exact(3, value);
  EXPECT_NEAR(phi[2], 0.0, 1e-12);
  EXPECT_NEAR(phi[0], 1.0, 1e-9);
}

TEST(ShapleyExact, RejectsBadSizes) {
  EXPECT_THROW(shapley_exact(0, additive_game({})), std::invalid_argument);
  EXPECT_THROW(shapley_exact(21, unanimity_game(21)), std::invalid_argument);
}

TEST(ShapleyMonteCarlo, ConvergesToExact) {
  constexpr std::size_t kN = 6;
  const std::vector<double> weights{0.5, 1.5, 2.0, 0.0, 3.0, 1.0};
  // Superadditive non-additive twist: bonus for pairs of consecutive players.
  const auto value = [&](std::uint64_t mask) {
    double total = additive_game(weights)(mask);
    for (std::size_t j = 0; j + 1 < kN; ++j) {
      const std::uint64_t pair = (1ull << j) | (1ull << (j + 1));
      if ((mask & pair) == pair) total += 0.3;
    }
    return total;
  };
  const auto exact = shapley_exact(kN, value);
  Rng rng(12);
  const auto estimate = shapley_monte_carlo(kN, value, 4000, rng);
  for (std::size_t j = 0; j < kN; ++j) {
    EXPECT_NEAR(estimate.value[j], exact[j], 0.1) << "player " << j;
    EXPECT_GE(estimate.std_error[j], 0.0);
  }
  // Efficiency holds exactly per permutation, hence in the average too.
  const double total = std::accumulate(estimate.value.begin(), estimate.value.end(), 0.0);
  EXPECT_NEAR(total, value((1ull << kN) - 1), 1e-9);
}

TEST(ShapleyMonteCarlo, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_THROW(shapley_monte_carlo(0, unanimity_game(1), 10, rng),
               std::invalid_argument);
  EXPECT_THROW(shapley_monte_carlo(3, unanimity_game(3), 0, rng),
               std::invalid_argument);
}

TEST(Superadditivity, HoldsForUnanimity) {
  Rng rng(2);
  EXPECT_DOUBLE_EQ(superadditivity_rate(6, unanimity_game(6), 500, rng), 1.0);
}

TEST(Superadditivity, ViolatedByConcaveGame) {
  // U(S) = sqrt(|S|) is subadditive across disjoint sets.
  const auto value = [](std::uint64_t mask) {
    return std::sqrt(static_cast<double>(std::popcount(mask)));
  };
  Rng rng(3);
  EXPECT_LT(superadditivity_rate(8, value, 500, rng), 0.9);
}

TEST(Supermodularity, HoldsForConvexGame) {
  // U(S) = |S|^2 is supermodular (convex).
  const auto value = [](std::uint64_t mask) {
    const double s = std::popcount(mask);
    return s * s;
  };
  Rng rng(4);
  EXPECT_DOUBLE_EQ(supermodularity_rate(8, value, 500, rng), 1.0);
}

TEST(Supermodularity, FailsForConcaveGame) {
  // U(S) = sqrt(|S|): marginal contributions shrink -> supermodularity
  // violated often. This mirrors §7.2's "stop growing the coalition" signal.
  const auto value = [](std::uint64_t mask) {
    return std::sqrt(static_cast<double>(std::popcount(mask)));
  };
  Rng rng(5);
  EXPECT_LT(supermodularity_rate(8, value, 500, rng), 0.8);
}

TEST(ShapleyExact, IndividualRationalityUnderSuperadditivity) {
  // Theorem 7: superadditive game => phi_j >= U({j}).
  constexpr std::size_t kN = 6;
  const auto value = [](std::uint64_t mask) {
    const double s = std::popcount(mask);
    return s * s;  // convex hence superadditive
  };
  const auto phi = shapley_exact(kN, value);
  for (std::size_t j = 0; j < kN; ++j) {
    EXPECT_GE(phi[j] + 1e-9, value(1ull << j)) << "player " << j;
  }
}

}  // namespace
}  // namespace bsr::econ
