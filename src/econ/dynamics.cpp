#include "econ/dynamics.hpp"

#include <cmath>
#include <stdexcept>

#include "econ/bargaining.hpp"

namespace bsr::econ {

DynamicsResult best_response_dynamics(const StackelbergConfig& game,
                                      const DynamicsConfig& config) {
  if (game.customers.empty()) {
    throw std::invalid_argument("best_response_dynamics: no customers");
  }
  if (config.step <= 0.0 || config.step > 1.0) {
    throw std::invalid_argument("best_response_dynamics: step outside (0, 1]");
  }
  if (config.max_rounds == 0) {
    throw std::invalid_argument("best_response_dynamics: zero rounds");
  }

  const auto adoption_at = [&game](double price) {
    double alpha = 0.0;
    for (const auto& customer : game.customers) {
      alpha += best_response(customer, price);
    }
    return alpha;
  };
  const auto utility_at = [&](double price) {
    const double alpha = adoption_at(price);
    return 2.0 * price * alpha - broker_cost(game.cost, alpha);
  };
  // Myopic best response: maximize utility over the price range given that
  // followers re-equilibrate instantly (they always do in this model).
  const auto myopic_best = [&]() {
    constexpr int kGrid = 48;
    double best_price = 0.0, best_utility = utility_at(0.0);
    for (int i = 1; i <= kGrid; ++i) {
      const double p = game.max_price * i / kGrid;
      const double u = utility_at(p);
      if (u > best_utility) {
        best_utility = u;
        best_price = p;
      }
    }
    const double cell = game.max_price / kGrid;
    return golden_section_max(utility_at, std::max(0.0, best_price - cell),
                              std::min(game.max_price, best_price + cell), 1e-8);
  };

  DynamicsResult result;
  double price = config.initial_price;
  const double target = myopic_best();  // constant: followers are memoryless
  for (std::size_t round = 0; round < config.max_rounds; ++round) {
    result.price_path.push_back(price);
    result.adoption_path.push_back(adoption_at(price));
    const double next = price + config.step * (target - price);
    ++result.rounds;
    if (std::abs(next - price) < config.tolerance) {
      price = next;
      result.converged = true;
      break;
    }
    price = next;
  }
  result.final_price = price;
  result.final_adoption = adoption_at(price);
  return result;
}

}  // namespace bsr::econ
