#include "sim/route_service.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "graph/engine.hpp"
#include "obs/journal.hpp"
#include "obs/qtrace.hpp"
#include "obs/sketch.hpp"
#include "obs/stats.hpp"

namespace bsr::sim {

using bsr::graph::FaultPlane;
using bsr::graph::NodeId;
namespace engine = bsr::graph::engine;

const char* to_string(AnswerStatus status) noexcept {
  switch (status) {
    case AnswerStatus::kFresh: return "fresh";
    case AnswerStatus::kStaleServed: return "stale-served";
    case AnswerStatus::kShedded: return "shedded";
    case AnswerStatus::kRefused: return "refused";
  }
  return "?";
}

std::uint64_t answer_digest(std::span<const RouteAnswer> answers) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t x) {
    for (int b = 0; b < 8; ++b) {
      h ^= (x >> (8 * b)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  for (const RouteAnswer& a : answers) {
    mix((static_cast<std::uint64_t>(a.status) << 8) |
        static_cast<std::uint64_t>(a.reachable));
    mix(a.dist_bound);
    mix(a.next_hop);
    mix(a.epoch);
  }
  return h;
}

AuditOutcome audit_answer(const RouteAnswer& answer, bool truth_reachable) noexcept {
  const bool served = answer.status == AnswerStatus::kFresh ||
                      answer.status == AnswerStatus::kStaleServed;
  const bool claims = served && answer.reachable;
  if (claims) return truth_reachable ? AuditOutcome::kAgree : AuditOutcome::kMisrouted;
  return truth_reachable ? AuditOutcome::kShunned : AuditOutcome::kUnreachable;
}

// --- RebuildScheduler -------------------------------------------------------

namespace {
constexpr double kNever = std::numeric_limits<double>::infinity();
}  // namespace

void RebuildScheduler::request(double now) {
  if (due_ != kNever) return;  // an attempt is already pending
  if (exhausted()) return;     // lifetime budget spent; parked for good
  retries_ = 0;
  due_ = now + policy_.retry_backoff;
}

bool RebuildScheduler::begin(double) {
  due_ = kNever;
  if (exhausted()) return false;
  ++starts_;
  return true;
}

void RebuildScheduler::cancel() noexcept {
  due_ = kNever;
  retries_ = 0;
}

void RebuildScheduler::report(double now, bool success) {
  if (success) {
    due_ = kNever;
    retries_ = 0;
    return;
  }
  ++failures_;
  if (++retries_ > policy_.max_retries || exhausted()) {
    due_ = kNever;  // give up until the next truth event re-arms us
    return;
  }
  double delay = policy_.retry_backoff;
  for (std::uint32_t i = 0; i < retries_; ++i) {
    delay = std::min(delay * policy_.retry_factor, policy_.retry_max);
  }
  due_ = now + delay;
}

// --- RouteService -----------------------------------------------------------

namespace {

/// Invokes `body` with the usable-dominated edge filter: >= 1 usable-broker
/// endpoint, and (when a plane is bound) both endpoints and the link up.
/// Both branches are symmetric filters, so bfs_dir_opt may use them.
template <class Body>
void with_usable_filter(const std::vector<bool>& mask, const FaultPlane* faults,
                        Body&& body) {
  const engine::DominatedEdgeFilter dom{&mask};
  if (faults != nullptr) {
    body(engine::BothFilters<engine::DominatedEdgeFilter, engine::FaultAwareFilter>{
        dom, engine::FaultAwareFilter{faults}});
  } else {
    body(dom);
  }
}

}  // namespace

RouteService::RouteService(const bsr::graph::CsrGraph& g,
                           const bsr::broker::BrokerSet& brokers,
                           const FaultPlane* faults,
                           const RouteServiceConfig& config,
                           const RebuildInjection& injection)
    : graph_(&g),
      brokers_(&brokers),
      faults_(faults),
      config_(config),
      injection_(injection),
      crash_rng_(injection.seed),
      uf_(g.num_vertices()),
      scheduler_(config.rebuild) {
  if (brokers.num_vertices() != g.num_vertices()) {
    throw std::invalid_argument(
        "RouteService: broker set covers " +
        std::to_string(brokers.num_vertices()) + " vertices but the graph has " +
        std::to_string(g.num_vertices()));
  }
  BSR_DCHECK(faults_ == nullptr || &faults_->graph() == graph_);
  config_.degraded_admit_factor =
      std::clamp(config_.degraded_admit_factor, 0.0, 1.0);
  tokens_ = config_.admit_burst > 0.0 ? config_.admit_burst : config_.admit_rate;
  build_epoch(0.0, 0);
}

void RouteService::build_epoch(double now, std::uint64_t attempt) {
  const NodeId n = graph_->num_vertices();
  vertex_up_.assign(n, 1);
  if (faults_ != nullptr) {
    for (NodeId v = 0; v < n; ++v) vertex_up_[v] = faults_->vertex_ok(v) ? 1 : 0;
  }
  usable_mask_.assign(n, false);
  usable_broker_count_ = 0;
  for (const NodeId v : brokers_->members()) {
    if (vertex_up_[v] == 0) continue;
    if (has_belief_ &&
        !(v < believed_routable_.size() && believed_routable_[v])) {
      continue;
    }
    usable_mask_[v] = true;
    ++usable_broker_count_;
  }

  null_epoch_ = usable_broker_count_ == 0;
  uf_.reset(n);
  comp_.resize(n);
  landmarks_.clear();
  lm_dist_.clear();
  lm_parent_.clear();
  if (!null_epoch_) {
    with_usable_filter(usable_mask_, faults_, [&](auto admit) {
      engine::unite_edges(*graph_, uf_, admit);
    });
    // Materialize component labels. RollbackUnionFind::find is const (no
    // path compression), so concurrent reads from shards are safe, and the
    // label values are independent of the sharding.
    engine::for_each_shard(n, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t v = begin; v < end; ++v) {
        comp_[v] = uf_.find(static_cast<NodeId>(v));
      }
    });

    // Landmarks: the top-degree usable brokers (ties by ascending id), the
    // hubs most shortest dominated paths already route through.
    for (NodeId v = 0; v < n; ++v) {
      if (usable_mask_[v]) landmarks_.push_back(v);
    }
    std::sort(landmarks_.begin(), landmarks_.end(), [this](NodeId a, NodeId b) {
      const auto da = graph_->degree(a);
      const auto db = graph_->degree(b);
      return da != db ? da > db : a < b;
    });
    if (landmarks_.size() > config_.num_landmarks) {
      landmarks_.resize(config_.num_landmarks);
    }

    const std::size_t num_lm = landmarks_.size();
    lm_dist_.assign(num_lm * n, kLmUnreachable);
    lm_parent_.assign(num_lm * n, kNoNextHop);
    // One BFS tree per landmark, sharded over landmarks: each tree is a
    // fully serial kernel writing a disjoint row, so the arrays are
    // bit-identical at any BSR_THREADS value.
    with_usable_filter(usable_mask_, faults_, [&](auto admit) {
      engine::for_each_shard(
          num_lm, [&](std::size_t, std::size_t begin, std::size_t end) {
            engine::Workspace& ws = engine::tls_workspace();
            for (std::size_t li = begin; li < end; ++li) {
              const NodeId root = landmarks_[li];
              engine::bfs_dir_opt(*graph_, root, ws, admit);
              const std::size_t row = li * n;
              for (NodeId v = 0; v < n; ++v) {
                if (!ws.visited(v)) continue;
                const std::uint32_t d = ws.dist_unchecked(v);
                lm_dist_[row + v] = static_cast<std::uint16_t>(
                    std::min<std::uint32_t>(d, kLmUnreachable - 1));
                lm_parent_[row + v] = v == root ? root : ws.parent(v);
              }
            }
          });
    });
  }

  ++epoch_id_;
  epoch_truth_version_ = truth_version_;
  ++stats_.epochs_published;
  // The staleness high-water gauge describes the *current* epoch: a freshly
  // published oracle has served nothing stale yet, so the gauge resets here.
  // (stats_.max_stale_served stays a lifetime high-water; try_patch keeps
  // the same epoch and so keeps the gauge.)
  BSR_GAUGE_CLEAR(RouteServiceStaleHighWater);
  BSR_COUNT(RouteServiceEpochsPublished);
  record(now, EpochEventKind::kPublish, attempt);
}

void RouteService::try_patch(double now) {
  // Heal-only delta: the usable set can only have grown, so uniting every
  // currently-usable dominated edge on top of the epoch's union-find yields
  // exactly the current edge set — reachability stays exact, the landmark
  // bounds stay admissible (paths only got shorter), and old next hops stay
  // usable. Staged through temporaries + a checkpoint so an injected crash
  // leaves the serving epoch untouched.
  std::vector<std::uint8_t> new_up(graph_->num_vertices(), 1);
  if (faults_ != nullptr) {
    for (NodeId v = 0; v < graph_->num_vertices(); ++v) {
      new_up[v] = faults_->vertex_ok(v) ? 1 : 0;
    }
  }
  std::vector<bool> new_mask(graph_->num_vertices(), false);
  std::size_t new_count = 0;
  for (const NodeId v : brokers_->members()) {
    if (new_up[v] == 0) continue;
    if (has_belief_ &&
        !(v < believed_routable_.size() && believed_routable_[v])) {
      continue;
    }
    new_mask[v] = true;
    ++new_count;
  }

  const auto mark = uf_.checkpoint();
  const bool crash = draw_crash(injection_.crash_next_patches);
  with_usable_filter(new_mask, faults_, [&](auto admit) {
    engine::unite_edges(*graph_, uf_, admit);
  });
  if (crash) {
    uf_.rollback(mark);
    ++stats_.patch_crashes;
    record(now, EpochEventKind::kDegrade, 0);
    if (!build_active_) scheduler_.request(now);
    return;
  }
  vertex_up_ = std::move(new_up);
  usable_mask_ = std::move(new_mask);
  usable_broker_count_ = new_count;
  engine::for_each_shard(graph_->num_vertices(),
                         [&](std::size_t, std::size_t begin, std::size_t end) {
                           for (std::size_t v = begin; v < end; ++v) {
                             comp_[v] = uf_.find(static_cast<NodeId>(v));
                           }
                         });
  epoch_truth_version_ = truth_version_;
  ++stats_.patches;
  BSR_COUNT(RouteServicePatches);
  record(now, EpochEventKind::kPatch, 0);
}

void RouteService::on_fault(double now) {
  const bool was_fresh = stale_events() == 0;
  ++truth_version_;
  if (was_fresh) record(now, EpochEventKind::kDegrade, 0);
  if (!build_active_) scheduler_.request(now);
}

void RouteService::on_heal(double now) {
  const bool was_fresh = stale_events() == 0;
  ++truth_version_;
  if (was_fresh && !null_epoch_ && !build_active_) {
    try_patch(now);
    return;
  }
  if (was_fresh) record(now, EpochEventKind::kDegrade, 0);
  if (!build_active_) scheduler_.request(now);
}

void RouteService::on_health_view(const HealthView& view, double now) {
  believed_routable_ = view.routable;
  has_belief_ = true;
  const bool was_fresh = stale_events() == 0;
  ++truth_version_;
  if (was_fresh) record(now, EpochEventKind::kDegrade, 0);
  if (!build_active_) scheduler_.request(now);
}

double RouteService::next_event_time() const noexcept {
  const double done = build_active_ ? build_completes_at_ : kNever;
  return std::min(done, scheduler_.next_due());
}

std::size_t RouteService::advance(double now) {
  std::size_t processed = 0;
  for (;;) {
    const double done = build_active_ ? build_completes_at_ : kNever;
    const double start = scheduler_.next_due();
    const double t = std::min(done, start);
    if (t > now || t == kNever) break;
    // Completions before starts at equal times: a completion may re-arm the
    // scheduler, and the order is fixed so the event stream is deterministic.
    if (done <= start) {
      complete_build(done);
    } else {
      start_due_build(start);
    }
    ++processed;
  }
  return processed;
}

void RouteService::start_due_build(double now) {
  if (stale_events() == 0) {
    // A patch (or an earlier rebuild) already made the epoch fresh.
    scheduler_.cancel();
    return;
  }
  if (build_active_) {
    // The in-flight build's completion path re-arms on failure.
    scheduler_.cancel();
    return;
  }
  if (!scheduler_.begin(now)) {
    record(now, EpochEventKind::kRebuildGiveUp, 0);
    return;
  }
  build_active_ = true;
  build_attempt_ = next_attempt_++;
  build_base_truth_ = truth_version_;
  build_will_crash_ = draw_crash(injection_.crash_next_rebuilds);
  build_completes_at_ = now + config_.rebuild.build_time;
  ++stats_.rebuilds_started;
  BSR_COUNT(RouteServiceRebuilds);
  record(now, EpochEventKind::kRebuildStart, build_attempt_);
}

void RouteService::complete_build(double now) {
  build_active_ = false;
  if (build_will_crash_) {
    ++stats_.rebuild_crashes;
    BSR_COUNT(RouteServiceRebuildCrashes);
    record(now, EpochEventKind::kRebuildCrash, build_attempt_);
    scheduler_.report(now, false);
    if (scheduler_.next_due() == kNever) {
      record(now, EpochEventKind::kRebuildGiveUp, build_attempt_);
    }
    return;
  }
  if (truth_version_ != build_base_truth_) {
    // Truth moved while we were building: the result is stale at birth.
    // Discard it (never observable) and restart — idempotent by
    // construction, since a build only swaps in on success.
    ++stats_.rebuilds_discarded;
    record(now, EpochEventKind::kRebuildDiscard, build_attempt_);
    scheduler_.report(now, false);
    if (scheduler_.next_due() == kNever) {
      record(now, EpochEventKind::kRebuildGiveUp, build_attempt_);
    }
    return;
  }
  build_epoch(now, build_attempt_);
  scheduler_.report(now, true);
}

bool RouteService::draw_crash(std::uint32_t& deterministic_queue) {
  if (deterministic_queue > 0) {
    --deterministic_queue;
    return true;
  }
  if (injection_.crash_prob > 0.0) {
    return crash_rng_.bernoulli(injection_.crash_prob);
  }
  return false;
}

void RouteService::record(double now, EpochEventKind kind, std::uint64_t attempt) {
  // Episode-lifecycle hygiene (episode.hpp stitches on these): a degrade is
  // recorded exactly when freshness is lost (so degrades never nest), and a
  // publish only ever lands truth-current (so it closes the open episode).
  BSR_DCHECK(kind != EpochEventKind::kDegrade || stale_events() > 0);
  BSR_DCHECK(kind != EpochEventKind::kPublish || stale_events() == 0);
  transitions_.push_back({now, kind, epoch_id_, truth_version_, attempt});
  switch (kind) {
    case EpochEventKind::kPublish:
      BSR_EVENT(RouteServiceEpochPublish, now, epoch_id_, attempt);
      break;
    case EpochEventKind::kPatch:
      BSR_EVENT(RouteServicePatch, now, epoch_id_, truth_version_);
      break;
    case EpochEventKind::kDegrade:
      BSR_EVENT(RouteServiceDegrade, now, epoch_id_, truth_version_);
      break;
    case EpochEventKind::kRebuildStart:
      BSR_EVENT(RouteServiceRebuildStart, now, epoch_id_, attempt);
      break;
    case EpochEventKind::kRebuildCrash:
      BSR_EVENT(RouteServiceRebuildCrash, now, epoch_id_, attempt);
      break;
    case EpochEventKind::kRebuildDiscard:
      BSR_EVENT(RouteServiceRebuildDiscard, now, epoch_id_, attempt);
      break;
    case EpochEventKind::kRebuildGiveUp:
      BSR_EVENT(RouteServiceRebuildGiveUp, now, epoch_id_, attempt);
      break;
  }
}

AnswerStatus RouteService::serving_status() const noexcept {
  if (null_epoch_) return AnswerStatus::kRefused;
  const std::uint64_t lag = stale_events();
  if (lag == 0) return AnswerStatus::kFresh;
  if (lag <= config_.max_stale_events) return AnswerStatus::kStaleServed;
  return AnswerStatus::kRefused;
}

void RouteService::eval(NodeId src, NodeId dst, RouteAnswer& answer) const {
  const NodeId n = graph_->num_vertices();
  BSR_DCHECK(src < n && dst < n);
  if (src >= n || dst >= n) {
    answer.status = AnswerStatus::kRefused;
    answer.reachable = false;
    return;
  }
  // Virtual tick model: each exit charges the flat-array loads the lookup
  // performed (liveness pair = 1, component pair = +1, landmark scan = +1
  // per row) and the stitch charges its parent-chain steps. Pure integer
  // arithmetic on values both the instrumented and the force-off builds
  // compute identically, so the twin comparison is unaffected.
  answer.lookup_ticks = 1;
  if (vertex_up_[src] == 0 || vertex_up_[dst] == 0) return;  // unreachable
  if (src == dst) {
    answer.reachable = true;
    answer.dist_bound = 0;
    answer.next_hop = src;
    answer.stitch_ticks = 1;
    return;
  }
  answer.lookup_ticks = 2;
  if (comp_[src] != comp_[dst]) return;
  answer.reachable = true;

  // Landmark triangle bound: min over trees covering both endpoints. Ties
  // break toward the lowest landmark index, so the sketch is deterministic.
  const std::size_t num_lm = landmarks_.size();
  std::uint32_t best = bsr::graph::kUnreachable;
  std::size_t best_l = num_lm;
  for (std::size_t li = 0; li < num_lm; ++li) {
    const std::size_t row = li * n;
    const std::uint16_t ds = lm_dist_[row + src];
    const std::uint16_t dt = lm_dist_[row + dst];
    if (ds == kLmUnreachable || dt == kLmUnreachable) continue;
    const std::uint32_t bound =
        static_cast<std::uint32_t>(ds) + static_cast<std::uint32_t>(dt);
    if (bound < best) {
      best = bound;
      best_l = li;
    }
  }
  answer.lookup_ticks = static_cast<std::uint16_t>(
      std::min<std::size_t>(2 + num_lm, 0xffff));
  if (best_l == num_lm) return;  // reachable (exact), but no sketch covers it
  answer.dist_bound = best;
  const std::size_t row = best_l * n;
  if (lm_dist_[row + src] > 0) {
    answer.next_hop = lm_parent_[row + src];
    answer.stitch_ticks = 1;
  } else {
    // src *is* the landmark: the next hop toward dst is the vertex on dst's
    // parent chain adjacent to src. O(dist) on a path of a dozen hops.
    std::uint16_t steps = 0;
    NodeId p = dst;
    while (lm_parent_[row + p] != src) {
      p = lm_parent_[row + p];
      ++steps;
    }
    answer.next_hop = p;
    answer.stitch_ticks = static_cast<std::uint16_t>(steps + 1);
  }
}

#if BSR_STATS_ENABLED
namespace {

/// One qtrace row from a served answer. The failure-episode correlation is
/// the truth version the epoch lagged behind (0 when served fresh), linking
/// the row to the degrade/rebuild journal chain of the same divergence.
bsr::obs::QueryTraceRow make_trace_row(std::uint64_t id, double now, NodeId src,
                                       NodeId dst, const RouteAnswer& a,
                                       std::uint64_t truth_version,
                                       std::uint64_t stale_behind) {
  bsr::obs::QueryTraceRow row;
  row.trace_id = id;
  row.time = now;
  row.epoch = a.epoch;
  row.correlation = stale_behind == 0 ? 0 : truth_version;
  row.src = static_cast<std::uint32_t>(src);
  row.dst = static_cast<std::uint32_t>(dst);
  row.dist_bound = a.dist_bound;
  row.stale_behind = stale_behind;
  row.admit_ticks = 1;
  row.lookup_ticks = a.lookup_ticks;
  row.stitch_ticks = a.stitch_ticks;
  row.status = static_cast<std::uint8_t>(a.status);
  row.reachable = a.reachable ? 1 : 0;
  return row;
}

}  // namespace
#endif

RouteAnswer RouteService::query(NodeId src, NodeId dst, double now) {
  RouteAnswer answer;
  answer.epoch = epoch_id_;
  bool admitted = true;
  if (config_.admit_rate > 0.0) {
    const double burst =
        config_.admit_burst > 0.0 ? config_.admit_burst : config_.admit_rate;
    const double rate =
        config_.admit_rate * (degraded() ? config_.degraded_admit_factor : 1.0);
    if (now > bucket_at_) {
      tokens_ = std::min(burst, tokens_ + (now - bucket_at_) * rate);
      bucket_at_ = now;
    }
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
    } else {
      admitted = false;
    }
  }
  answer.status = admitted ? serving_status() : AnswerStatus::kShedded;
  if (answer.status == AnswerStatus::kFresh ||
      answer.status == AnswerStatus::kStaleServed) {
    eval(src, dst, answer);
  }
#if BSR_STATS_ENABLED
  if (bsr::obs::query_trace_enabled()) {
    bsr::obs::qtrace_record(
        0, make_trace_row(bsr::obs::qtrace_begin_batch(1), now, src, dst,
                          answer, truth_version_, stale_events()));
  }
#endif
  tally({&answer, 1}, now);
  return answer;
}

void RouteService::serve_batch(std::span<const Flow> queries, double now,
                               std::vector<RouteAnswer>& out) {
  out.assign(queries.size(), RouteAnswer{});
  const AnswerStatus base = serving_status();

  // Admission runs sequentially (the bucket is a running prefix sum), so the
  // per-index verdicts — and therefore every answer — are independent of how
  // the evaluation below is sharded.
  if (config_.admit_rate > 0.0) {
    const double burst =
        config_.admit_burst > 0.0 ? config_.admit_burst : config_.admit_rate;
    const double rate =
        config_.admit_rate * (degraded() ? config_.degraded_admit_factor : 1.0);
    if (now > bucket_at_) {
      tokens_ = std::min(burst, tokens_ + (now - bucket_at_) * rate);
      bucket_at_ = now;
    }
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (tokens_ >= queries[i].volume) {
        tokens_ -= queries[i].volume;
        out[i].status = base;
      } else {
        out[i].status = AnswerStatus::kShedded;
      }
    }
  } else {
    for (RouteAnswer& a : out) a.status = base;
  }

#if BSR_STATS_ENABLED
  // Trace ids are reserved on the control thread (program order); each shard
  // writes only its own ring, in increasing query-index order — the two
  // properties the snapshot's thread-count invariance rests on (qtrace.hpp).
  const bool tracing = bsr::obs::query_trace_enabled();
  const std::uint64_t trace_base =
      tracing ? bsr::obs::qtrace_begin_batch(queries.size()) : 0;
  const std::uint64_t stale_behind = stale_events();
#endif
  engine::for_each_shard(queries.size(),
                         [&](std::size_t shard, std::size_t begin, std::size_t end) {
                           static_cast<void>(shard);
                           for (std::size_t i = begin; i < end; ++i) {
                             RouteAnswer& a = out[i];
                             a.epoch = epoch_id_;
                             if (a.status == AnswerStatus::kFresh ||
                                 a.status == AnswerStatus::kStaleServed) {
                               eval(queries[i].src, queries[i].dst, a);
                             }
#if BSR_STATS_ENABLED
                             if (tracing) {
                               bsr::obs::qtrace_record(
                                   shard,
                                   make_trace_row(trace_base + i, now,
                                                  queries[i].src, queries[i].dst,
                                                  a, truth_version_,
                                                  stale_behind));
                             }
#endif
                           }
                         });
  tally(out, now);
}

void RouteService::tally(std::span<const RouteAnswer> answers, double now) {
  static_cast<void>(now);
  std::uint64_t fresh = 0, stale = 0, shed = 0, refused = 0;
  for (const RouteAnswer& a : answers) {
    switch (a.status) {
      case AnswerStatus::kFresh: ++fresh; break;
      case AnswerStatus::kStaleServed: ++stale; break;
      case AnswerStatus::kShedded: ++shed; break;
      case AnswerStatus::kRefused: ++refused; break;
    }
  }
#if BSR_STATS_ENABLED
  // Distribution plane: per-answer-tag tick and distance sketches, the
  // distance histogram, a batch-local sketch for the batch's own p99/max,
  // and the packed journal events the SLO monitor replays offline
  // (subject/correlation layout in journal.hpp). tally runs on the control
  // thread after the worker shards join (journal.hpp rule 3), so the global
  // sketch registry needs no locks, and both sketch_observe and the counter
  // TLS fast path are inline — the per-answer cost is a few integer adds.
  bsr::obs::QuantileSketch batch_ticks;
  for (const RouteAnswer& a : answers) {
    const std::uint64_t ticks =
        std::uint64_t{1} + a.lookup_ticks + a.stitch_ticks;
    batch_ticks.observe(ticks);
    const bool bounded =
        a.reachable && a.dist_bound != bsr::graph::kUnreachable;
    switch (a.status) {
      case AnswerStatus::kFresh:
        BSR_SKETCH(RouteTicksFresh, ticks);
        if (bounded) {
          BSR_SKETCH(RouteDistFresh, a.dist_bound);
          BSR_HISTO(RouteServiceDistBound, a.dist_bound);
        }
        break;
      case AnswerStatus::kStaleServed:
        BSR_SKETCH(RouteTicksStale, ticks);
        if (bounded) {
          BSR_SKETCH(RouteDistStale, a.dist_bound);
          BSR_HISTO(RouteServiceDistBound, a.dist_bound);
        }
        break;
      case AnswerStatus::kShedded:
        BSR_SKETCH(RouteTicksShedded, ticks);
        break;
      case AnswerStatus::kRefused:
        BSR_SKETCH(RouteTicksRefused, ticks);
        break;
    }
  }
  if (!answers.empty()) {
    stats_.last_batch_p99_ticks = batch_ticks.p99();
    stats_.last_batch_max_ticks = batch_ticks.max();
    BSR_EVENT(RouteServiceBatch, now, (fresh << 32) | stale,
              (shed << 32) | refused);
    BSR_EVENT(RouteServiceBatchCost, now,
              (stats_.last_batch_p99_ticks << 32) | stats_.last_batch_max_ticks,
              stale_events());
  }
#endif
  stats_.queries += answers.size();
  stats_.fresh += fresh;
  stats_.stale_served += stale;
  stats_.shedded += shed;
  stats_.refused += refused;
  if (stale > 0) {
    stats_.max_stale_served = std::max(stats_.max_stale_served, stale_events());
    BSR_GAUGE_MAX(RouteServiceStaleHighWater, stale_events());
  }
  BSR_COUNT_N(RouteServiceQueries, answers.size());
  BSR_COUNT_N(RouteServiceFresh, fresh);
  BSR_COUNT_N(RouteServiceStaleServed, stale);
  BSR_COUNT_N(RouteServiceShedded, shed);
  BSR_COUNT_N(RouteServiceRefused, refused);
}

std::vector<NodeId> RouteService::stitch_path(NodeId src, NodeId dst) const {
  const NodeId n = graph_->num_vertices();
  if (null_epoch_ || src >= n || dst >= n) return {};
  if (vertex_up_[src] == 0 || vertex_up_[dst] == 0) return {};
  if (src == dst) return {src};
  if (comp_[src] != comp_[dst]) return {};

  const std::size_t num_lm = landmarks_.size();
  std::uint32_t best = bsr::graph::kUnreachable;
  std::size_t best_l = num_lm;
  for (std::size_t li = 0; li < num_lm; ++li) {
    const std::size_t row = li * n;
    const std::uint16_t ds = lm_dist_[row + src];
    const std::uint16_t dt = lm_dist_[row + dst];
    if (ds == kLmUnreachable || dt == kLmUnreachable) continue;
    const std::uint32_t bound =
        static_cast<std::uint32_t>(ds) + static_cast<std::uint32_t>(dt);
    if (bound < best) {
      best = bound;
      best_l = li;
    }
  }
  if (best_l == num_lm) return {};

  const std::size_t row = best_l * n;
  const NodeId landmark = landmarks_[best_l];
  std::vector<NodeId> path;
  path.push_back(src);
  for (NodeId p = src; p != landmark;) {
    p = lm_parent_[row + p];
    path.push_back(p);
  }
  std::vector<NodeId> tail;
  for (NodeId q = dst; q != landmark; q = lm_parent_[row + q]) {
    tail.push_back(q);
  }
  path.insert(path.end(), tail.rbegin(), tail.rend());
  return path;
}

}  // namespace bsr::sim
