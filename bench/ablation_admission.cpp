// Ablation: QoS admission control on the brokered plane.
//
// Implements the "broker set blocks connections when QoS requirements are
// not satisfied" deployment option (§1, after [8]) and measures flow
// acceptance vs broker-set size and QoS stringency — the operational
// version of Table 1's connectivity column.
#include <iostream>

#include "bench_common.hpp"
#include "broker/maxsg.hpp"
#include "sim/admission.hpp"

int main() {
  auto ctx = bsr::bench::make_context("Ablation: QoS admission control");
  const auto& g = ctx.topo.graph;

  // Routing BFS per flow over the 52k graph costs ~10 ms; keep flow counts
  // proportional to scale but bounded.
  const std::size_t flows_count =
      std::min<std::size_t>(2000, 200 + g.num_vertices() / 50);
  bsr::graph::Rng rng(ctx.env.seed + 13);
  bsr::sim::DemandConfig demand;
  demand.num_flows = flows_count;
  const auto flows = bsr::sim::generate_flows(g, demand, rng);

  const auto full = bsr::broker::maxsg(g, ctx.env.scaled(3540, 8)).brokers;

  bsr::io::Table table({"|B|", "QoS req", "brokered", "BGP fallback", "blocked",
                        "acceptance"});
  for (const std::uint32_t paper_k : {100u, 1000u, 3540u}) {
    const auto prefix = full.prefix(std::min<std::size_t>(
        ctx.env.scaled(paper_k, 4), full.size()));
    for (const double requirement : {0.8, 0.99}) {
      bsr::sim::AdmissionConfig config;
      config.qos_requirement = requirement;
      config.qos.unsupervised_hop_success = 0.85;
      bsr::sim::AdmissionController controller(g, prefix, config);
      for (const auto& flow : flows) controller.admit(flow);
      const auto& stats = controller.stats();
      table.row()
          .cell(static_cast<std::uint64_t>(prefix.size()))
          .cell(requirement, 2)
          .cell(static_cast<std::uint64_t>(stats.brokered))
          .cell(static_cast<std::uint64_t>(stats.bgp_fallback))
          .cell(static_cast<std::uint64_t>(stats.blocked))
          .percent(stats.acceptance_rate());
    }
  }
  table.print(std::cout);
  std::cout << "(with "
            << flows_count
            << " gravity-model flows; stricter QoS pushes traffic from the "
               "BGP plane onto the brokered plane — exactly the paper's "
               "deployment story)\n";
  return 0;
}
