// Builds the uninstrumented kernel twins declared in bare_kernels.hpp by
// recompiling the library sources with the telemetry compiled out:
//
//   * BSR_OBS_FORCE_OFF makes obs/stats.hpp (and everything layered on it)
//     expand every BSR_* macro to an empty statement in this TU only, exactly
//     as a -DBSR_STATS=OFF build would.
//   * The object-like renames below give the recompiled entry points (and the
//     instrumented templates they instantiate) distinct symbol names.
//     Without them the bare engine::bfs<FaultAwareFilter> instantiation would
//     share a linkonce symbol with the instrumented one from perf_obs.cpp and
//     the linker would quietly collapse both sides of the overhead comparison
//     into whichever copy it picked.
//
// Everything else the kernels touch is either macro-free inline code
// (identical tokens in both TUs, so shared instantiations are benign) or
// out-of-line library code (connected_components, coverage) that both the
// bare and instrumented paths call identically, so its cost cancels out of
// the overhead delta.
#define BSR_OBS_FORCE_OFF 1
#define bfs bare_bfs
#define unite_star bare_unite_star
#define maxsg bare_maxsg
#include "broker/maxsg.cpp"
#undef bfs
#undef unite_star
#undef maxsg

#include "bare_kernels.hpp"

namespace bare {

void bfs(const bsr::graph::CsrGraph& g, bsr::graph::NodeId source,
         bsr::graph::engine::Workspace& ws,
         bsr::graph::engine::FaultAwareFilter admit) {
  bsr::graph::engine::bare_bfs(g, source, ws, admit);
}

bsr::broker::MaxSgResult maxsg(const bsr::graph::CsrGraph& g, std::uint32_t k) {
  return bsr::broker::bare_maxsg(g, k);
}

}  // namespace bare
