#include "graph/dijkstra.hpp"

#include <algorithm>
#include "graph/check.hpp"
#include <queue>
#include <stdexcept>

namespace bsr::graph {

DijkstraResult dijkstra(const CsrGraph& g, NodeId source, const EdgeWeightFn& weight) {
  BSR_DCHECK(source < g.num_vertices());
  DijkstraResult result;
  result.distance.assign(g.num_vertices(), kInfDistance);
  result.parent.assign(g.num_vertices(), kNoParent);

  using Item = std::pair<double, NodeId>;  // (distance, vertex)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  result.distance[source] = 0.0;
  result.parent[source] = source;
  heap.emplace(0.0, source);

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > result.distance[u]) continue;  // stale entry
    for (const NodeId v : g.neighbors(u)) {
      const double w = weight(u, v);
      if (w < 0.0) throw std::invalid_argument("dijkstra: negative edge weight");
      const double candidate = d + w;
      if (candidate < result.distance[v]) {
        result.distance[v] = candidate;
        result.parent[v] = u;
        heap.emplace(candidate, v);
      }
    }
  }
  return result;
}

std::vector<NodeId> extract_path(const DijkstraResult& result, NodeId source,
                                 NodeId target) {
  if (target >= result.parent.size() || result.parent[target] == kNoParent) return {};
  std::vector<NodeId> path{target};
  NodeId w = target;
  while (w != source) {
    w = result.parent[w];
    path.push_back(w);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace bsr::graph
