#include "sim/churn.hpp"

#include <stdexcept>

#include "broker/dominated.hpp"
#include "broker/resilience.hpp"

namespace bsr::sim {

using bsr::broker::BrokerSet;
using bsr::graph::NodeId;
using bsr::graph::Rng;

ChurnResult simulate_churn(const bsr::graph::CsrGraph& g, const BrokerSet& initial,
                           const ChurnConfig& config, Rng& rng) {
  if (config.departure_rate <= 0.0 || config.repair_interval <= 0.0 ||
      config.horizon <= 0.0) {
    throw std::invalid_argument("simulate_churn: rates/horizon must be positive");
  }

  ChurnResult result;
  BrokerSet current = initial;
  double now = 0.0;
  double next_departure = rng.exponential(config.departure_rate);
  double next_repair = config.repair_interval;
  double connectivity = bsr::broker::saturated_connectivity(g, current);
  result.min_connectivity = connectivity;
  double weighted_sum = 0.0;

  const auto advance_to = [&](double t) {
    weighted_sum += connectivity * (t - now);
    now = t;
  };

  while (true) {
    const double next_time = std::min(next_departure, next_repair);
    if (next_time > config.horizon) {
      advance_to(config.horizon);
      break;
    }
    advance_to(next_time);

    if (next_departure <= next_repair) {
      // One uniformly random broker departs (if any remain).
      if (!current.empty()) {
        current = bsr::broker::fail_brokers(g, current, 1,
                                            bsr::broker::FailureMode::kRandom, rng);
        ++result.departures;
        connectivity = bsr::broker::saturated_connectivity(g, current);
        result.events.push_back(
            {now, ChurnEvent::Kind::kDeparture, current.size(), connectivity});
      }
      next_departure = now + rng.exponential(config.departure_rate);
    } else {
      const std::size_t before = current.size();
      current = bsr::broker::repair_brokers(g, current, config.repair_budget);
      ++result.repairs;
      result.replacements_added += current.size() - before;
      connectivity = bsr::broker::saturated_connectivity(g, current);
      result.events.push_back(
          {now, ChurnEvent::Kind::kRepair, current.size(), connectivity});
      next_repair = now + config.repair_interval;
    }
    result.min_connectivity = std::min(result.min_connectivity, connectivity);
  }

  result.mean_connectivity = weighted_sum / config.horizon;
  return result;
}

}  // namespace bsr::sim
