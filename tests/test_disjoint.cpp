#include "broker/disjoint.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "broker/maxsg.hpp"
#include "broker/verify.hpp"
#include "graph/engine.hpp"
#include "graph/fault_plane.hpp"
#include "test_util.hpp"

namespace bsr::broker {
namespace {

using bsr::graph::CsrGraph;
using bsr::graph::GraphBuilder;
using bsr::graph::NodeId;
using bsr::graph::Rng;
using bsr::test::make_connected_random;
using bsr::test::make_cycle;
using bsr::test::make_path;

TEST(DisjointPaths, CycleGivesTwoDisjointPaths) {
  // Cycle of 6 with all vertices brokers: clockwise + counterclockwise.
  const CsrGraph g = make_cycle(6);
  BrokerSet b(6);
  for (NodeId v = 0; v < 6; ++v) b.add(v);
  const auto result = disjoint_dominating_paths(g, b, 0, 3, 4);
  EXPECT_EQ(result.count(), 2u);
  for (const auto& path : result.paths) {
    EXPECT_TRUE(is_dominating_path(g, b, path));
    EXPECT_EQ(path.front(), 0u);
    EXPECT_EQ(path.back(), 3u);
  }
  // Paths must not share edges.
  std::set<std::pair<NodeId, NodeId>> used;
  for (const auto& path : result.paths) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      auto e = std::minmax(path[i], path[i + 1]);
      EXPECT_TRUE(used.emplace(e.first, e.second).second) << "shared edge";
    }
  }
}

TEST(DisjointPaths, PathGraphHasExactlyOne) {
  const CsrGraph g = make_path(5);
  BrokerSet b(5);
  for (NodeId v = 0; v < 5; ++v) b.add(v);
  const auto result = disjoint_dominating_paths(g, b, 0, 4, 3);
  EXPECT_EQ(result.count(), 1u);
}

TEST(DisjointPaths, DominationConstraintRespected) {
  // Diamond 0-1-3, 0-2-3: only 1 is a broker, so the 0-2-3 route (neither
  // endpoint of 0-2 and 2-3 in B) is inadmissible — one path only.
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(1, 3);
  builder.add_edge(0, 2);
  builder.add_edge(2, 3);
  const CsrGraph g = builder.build();
  BrokerSet b(4);
  b.add(1);
  const auto result = disjoint_dominating_paths(g, b, 0, 3, 3);
  ASSERT_EQ(result.count(), 1u);
  EXPECT_EQ(result.paths[0], (std::vector<NodeId>{0, 1, 3}));
}

TEST(DisjointPaths, TrivialAndInvalidInputs) {
  const CsrGraph g = make_path(4);
  BrokerSet b(4);
  b.add(1);
  EXPECT_EQ(disjoint_dominating_paths(g, b, 2, 2).count(), 0u);
  EXPECT_EQ(disjoint_dominating_paths(g, b, 0, 99).count(), 0u);
  EXPECT_EQ(disjoint_dominating_paths(g, b, 0, 3, 0).count(), 0u);
}

TEST(DisjointPaths, ShortestFirstOrdering) {
  const CsrGraph g = make_connected_random(40, 0.15, 5);
  BrokerSet b(g.num_vertices());
  for (NodeId v = 0; v < 20; ++v) b.add(v);
  for (NodeId dst = 20; dst < 30; ++dst) {
    const auto result = disjoint_dominating_paths(g, b, 35, dst, 3);
    for (std::size_t i = 1; i < result.count(); ++i) {
      EXPECT_LE(result.paths[i - 1].size(), result.paths[i].size());
    }
    for (const auto& path : result.paths) {
      EXPECT_TRUE(is_dominating_path(g, b, path));
    }
  }
}

TEST(DisjointPaths, FaultAwareSkipsFailedEdges) {
  // Cycle of 6, all brokers: normally two disjoint 0->3 paths. Failing one
  // clockwise edge must leave exactly the counterclockwise route, and no
  // extracted path may ever contain a failed edge.
  const CsrGraph g = make_cycle(6);
  BrokerSet b(6);
  for (NodeId v = 0; v < 6; ++v) b.add(v);
  bsr::graph::FaultPlane plane(g);
  plane.fail_edge(1, 2);
  const auto result = disjoint_dominating_paths(g, b, plane, 0, 3, 4);
  ASSERT_EQ(result.count(), 1u);
  EXPECT_EQ(result.paths[0], (std::vector<NodeId>{0, 5, 4, 3}));
}

TEST(DisjointPaths, FaultAwareNeverUsesFailedEdgesOnRandomGraphs) {
  const CsrGraph g = make_connected_random(60, 0.08, 9);
  const auto b = maxsg(g, 15).brokers;
  bsr::graph::FaultPlane plane(g);
  Rng fault_rng(10);
  for (const auto& e : g.edges()) {
    if (fault_rng.bernoulli(0.2)) plane.fail_edge(e.u, e.v);
  }
  for (NodeId v = 40; v < 50; ++v) {
    if (fault_rng.bernoulli(0.3)) plane.fail_vertex(v);
  }
  for (NodeId src = 0; src < 10; ++src) {
    const auto result = disjoint_dominating_paths(g, b, plane, src, 59, 3);
    for (const auto& path : result.paths) {
      EXPECT_TRUE(is_dominating_path(g, b, path));
      for (const NodeId v : path) EXPECT_TRUE(plane.vertex_ok(v));
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(plane.edge_ok(path[i], path[i + 1]))
            << "failed edge {" << path[i] << "," << path[i + 1]
            << "} appeared in an extracted path";
      }
    }
  }
}

TEST(DisjointPaths, DownEndpointYieldsZeroPaths) {
  const CsrGraph g = make_cycle(6);
  BrokerSet b(6);
  for (NodeId v = 0; v < 6; ++v) b.add(v);
  bsr::graph::FaultPlane plane(g);
  plane.fail_vertex(0);
  EXPECT_EQ(disjoint_dominating_paths(g, b, plane, 0, 3).count(), 0u);
  EXPECT_EQ(disjoint_dominating_paths(g, b, plane, 3, 0).count(), 0u);
  plane.heal_vertex(0);
  EXPECT_EQ(disjoint_dominating_paths(g, b, plane, 0, 3).count(), 2u);
}

TEST(DisjointPaths, PristinePlaneMatchesUnfaultedOverload) {
  const CsrGraph g = make_connected_random(40, 0.15, 11);
  const auto b = maxsg(g, 10).brokers;
  const bsr::graph::FaultPlane plane(g);
  for (NodeId dst = 20; dst < 28; ++dst) {
    const auto plain = disjoint_dominating_paths(g, b, 3, dst, 3);
    const auto faulted = disjoint_dominating_paths(g, b, plane, 3, dst, 3);
    EXPECT_EQ(plain.paths, faulted.paths);
  }
}

TEST(DisjointPaths, PlaneBoundToOtherGraphThrows) {
  const CsrGraph g = make_cycle(6);
  const CsrGraph other = make_cycle(6);
  BrokerSet b(6);
  b.add(0);
  const bsr::graph::FaultPlane plane(other);
  EXPECT_THROW((void)disjoint_dominating_paths(g, b, plane, 0, 3),
               std::invalid_argument);
}

TEST(PathDiversity, BitIdenticalAcrossThreadCounts) {
  const CsrGraph g = make_connected_random(100, 0.06, 12);
  const auto b = maxsg(g, 20).brokers;
  const int saved = bsr::graph::engine::num_threads();
  bsr::graph::engine::set_num_threads(1);
  Rng rng_serial(13);
  const auto serial = path_diversity(g, b, rng_serial, 400);
  bsr::graph::engine::set_num_threads(4);
  Rng rng_parallel(13);
  const auto parallel = path_diversity(g, b, rng_parallel, 400);
  bsr::graph::engine::set_num_threads(saved);
  EXPECT_EQ(serial.pairs_sampled, parallel.pairs_sampled);
  EXPECT_EQ(serial.with_one, parallel.with_one);
  EXPECT_EQ(serial.with_two, parallel.with_two);
}

TEST(PathDiversity, MoreBrokersMoreDiversity) {
  const CsrGraph g = make_connected_random(100, 0.06, 6);
  const auto small = maxsg(g, 5).brokers;
  const auto large = maxsg(g, 40).brokers;
  Rng rng_a(7), rng_b(7);
  const auto d_small = path_diversity(g, small, rng_a, 300);
  const auto d_large = path_diversity(g, large, rng_b, 300);
  EXPECT_GE(d_large.with_one, d_small.with_one - 1e-9);
  EXPECT_GE(d_large.with_two, d_small.with_two - 1e-9);
  EXPECT_LE(d_large.with_two, d_large.with_one + 1e-9);
}

TEST(PathDiversity, DegenerateGraph) {
  Rng rng(8);
  const auto stats = path_diversity(make_path(1), BrokerSet(1), rng, 10);
  EXPECT_EQ(stats.pairs_sampled, 0u);
}

}  // namespace
}  // namespace bsr::broker
