// Reproduces Table 1 — broker-set size vs QoS coverage, ours vs prior art.
//
// Paper rows:
//   ours @   100 brokers (0.19 %)  -> 53.14 % coverage
//   ours @ 1,000 brokers (1.9 %)   -> 85.41 %
//   ours @ 3,540 brokers (6.8 %)   -> 99.29 %
//   [13], [14]  all 51,757 ASes    -> 100 %
//   [18], [19]  >= 1 broker per AS -> 100 %
//   [20]-[22]   all 322 IXPs       -> 15.70 %
// "Coverage" is saturated E2E connectivity: the fraction of vertex pairs
// with a B-dominating path (computed exactly via union-find on G_B).
#include <iostream>

#include "bench_common.hpp"
#include "broker/baselines.hpp"
#include "broker/dominated.hpp"
#include "broker/maxsg.hpp"

int main() {
  auto ctx = bsr::bench::make_context("Table 1: alliance size vs QoS coverage");
  const auto& g = ctx.topo.graph;
  const double n = g.num_vertices();

  const auto k_full = [&](std::uint32_t paper_k) {
    return ctx.env.scaled(paper_k, 2);
  };
  const std::uint32_t k100 = k_full(100);
  const std::uint32_t k1000 = k_full(1000);
  const std::uint32_t k_max = k_full(3540);

  bsr::bench::Stopwatch sw;
  const auto result = bsr::broker::maxsg(g, k_max);
  std::cout << "MaxSG selected " << result.brokers.size() << " brokers in "
            << bsr::io::format_double(sw.seconds(), 1) << "s (budget " << k_max
            << ", stops when the max connected subgraph is dominated)\n";

  bsr::io::Table table({"Method", "Alliance size (# of brokers)", "Share of nodes",
                        "QoS coverage", "Paper"});
  const auto ours_row = [&](std::uint32_t k, const std::string& paper) {
    const auto prefix = result.brokers.prefix(k);
    const double connectivity = bsr::broker::saturated_connectivity(g, prefix);
    table.row()
        .cell("Ours (MaxSG)")
        .cell(std::uint64_t{prefix.size()})
        .percent(prefix.size() / n)
        .percent(connectivity)
        .cell(paper);
  };
  ours_row(k100, "53.14%");
  ours_row(k1000, "85.41%");
  ours_row(static_cast<std::uint32_t>(result.brokers.size()), "99.29%");

  table.row()
      .cell("[13],[14] all-AS alliance")
      .cell(std::uint64_t{ctx.topo.num_ases})
      .percent(ctx.topo.num_ases / n)
      .cell("100.00%")
      .cell("100.00%");
  table.row()
      .cell("[18],[19] >=1 broker per AS")
      .cell(">= " + std::to_string(ctx.topo.num_ases))
      .percent(ctx.topo.num_ases / n)
      .cell("100.00%")
      .cell("100.00%");

  const auto all_ixps = bsr::broker::ixpb(ctx.topo);
  const double ixp_connectivity = bsr::broker::saturated_connectivity(g, all_ixps);
  table.row()
      .cell("[20]-[22] all IXPs (CXPs)")
      .cell(std::uint64_t{all_ixps.size()})
      .percent(all_ixps.size() / n)
      .percent(ixp_connectivity)
      .cell("15.70%");

  table.print(std::cout);
  return 0;
}
