#include "graph/dijkstra.hpp"

#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/graph_builder.hpp"
#include "test_util.hpp"

namespace bsr::graph {
namespace {

using bsr::test::make_connected_random;
using bsr::test::make_path;

const EdgeWeightFn kUnitWeight = [](NodeId, NodeId) { return 1.0; };

TEST(Dijkstra, UnitWeightsMatchBfs) {
  const CsrGraph g = make_connected_random(50, 0.1, 77);
  const auto result = dijkstra(g, 0, kUnitWeight);
  const auto bfs = bfs_distances(g, 0);
  for (NodeId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_NE(bfs[v], kUnreachable);
    EXPECT_DOUBLE_EQ(result.distance[v], static_cast<double>(bfs[v]));
  }
}

TEST(Dijkstra, WeightedShortcutPreferred) {
  // 0-1-2 with weights 1 each, plus direct 0-2 with weight 5: path wins.
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  const CsrGraph g = b.build();
  const auto weight = [](NodeId u, NodeId v) {
    if ((u == 0 && v == 2) || (u == 2 && v == 0)) return 5.0;
    return 1.0;
  };
  const auto result = dijkstra(g, 0, weight);
  EXPECT_DOUBLE_EQ(result.distance[2], 2.0);
  EXPECT_EQ(extract_path(result, 0, 2), (std::vector<NodeId>{0, 1, 2}));
}

TEST(Dijkstra, UnreachableIsInfinite) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const CsrGraph g = b.build();
  const auto result = dijkstra(g, 0, kUnitWeight);
  EXPECT_EQ(result.distance[2], kInfDistance);
  EXPECT_TRUE(extract_path(result, 0, 2).empty());
}

TEST(Dijkstra, NegativeWeightThrows) {
  const CsrGraph g = make_path(3);
  EXPECT_THROW(dijkstra(g, 0, [](NodeId, NodeId) { return -1.0; }),
               std::invalid_argument);
}

TEST(Dijkstra, PathReconstructionValid) {
  const CsrGraph g = make_connected_random(30, 0.15, 99);
  const auto result = dijkstra(g, 0, kUnitWeight);
  for (NodeId t = 1; t < g.num_vertices(); t += 3) {
    const auto path = extract_path(result, 0, t);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), 0u);
    EXPECT_EQ(path.back(), t);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
    }
  }
}

TEST(Dijkstra, SourceDistanceZero) {
  const CsrGraph g = make_path(4);
  const auto result = dijkstra(g, 2, kUnitWeight);
  EXPECT_DOUBLE_EQ(result.distance[2], 0.0);
  EXPECT_EQ(extract_path(result, 2, 2), std::vector<NodeId>{2});
}

}  // namespace
}  // namespace bsr::graph
