#include "broker/greedy_mcb.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "broker/coverage.hpp"
#include "broker/verify.hpp"
#include "test_util.hpp"

namespace bsr::broker {
namespace {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::test::make_complete;
using bsr::test::make_connected_random;
using bsr::test::make_random;
using bsr::test::make_star;

/// Reference eager greedy (no lazy evaluation) — recomputes every marginal
/// gain each round.
BrokerSet eager_greedy(const CsrGraph& g, std::uint32_t k) {
  CoverageTracker tracker(g);
  BrokerSet brokers(g.num_vertices());
  for (std::uint32_t round = 0; round < k && !tracker.all_covered(); ++round) {
    NodeId best = 0;
    std::uint32_t best_gain = 0;
    for (NodeId v = 0; v < g.num_vertices(); ++v) {
      if (tracker.is_broker(v)) continue;
      const auto gain = tracker.marginal_gain(v);
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    if (best_gain == 0) break;
    tracker.add(best);
    brokers.add(best);
  }
  return brokers;
}

TEST(GreedyMcb, StarPicksCenterFirst) {
  const CsrGraph g = make_star(10);
  const auto result = greedy_mcb(g, 3);
  ASSERT_GE(result.brokers.size(), 1u);
  EXPECT_EQ(result.brokers.members()[0], 0u);
  EXPECT_EQ(result.coverage, 10u);
  EXPECT_EQ(result.brokers.size(), 1u);  // early stop: everything covered
}

TEST(GreedyMcb, ZeroBudget) {
  const CsrGraph g = make_star(5);
  const auto result = greedy_mcb(g, 0);
  EXPECT_TRUE(result.brokers.empty());
  EXPECT_EQ(result.coverage, 0u);
}

TEST(GreedyMcb, EmptyGraphThrows) {
  EXPECT_THROW(greedy_mcb(CsrGraph(), 3), std::invalid_argument);
}

TEST(GreedyMcb, BudgetRespected) {
  const CsrGraph g = make_connected_random(60, 0.05, 3);
  const auto result = greedy_mcb(g, 4);
  EXPECT_LE(result.brokers.size(), 4u);
}

TEST(GreedyMcb, CoverageCurveConsistent) {
  const CsrGraph g = make_connected_random(50, 0.06, 4);
  const auto result = greedy_mcb(g, 8);
  ASSERT_EQ(result.coverage_curve.size(), result.brokers.size());
  for (std::size_t i = 0; i < result.brokers.size(); ++i) {
    EXPECT_EQ(result.coverage_curve[i],
              coverage(g, result.brokers.prefix(i + 1)))
        << "curve entry " << i;
    if (i > 0) {
      EXPECT_GE(result.coverage_curve[i], result.coverage_curve[i - 1]);
    }
  }
}

TEST(GreedyMcb, IsolatedVerticesNeedThemselves) {
  bsr::graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  const CsrGraph g = b.build();  // 2 and 3 isolated
  const auto result = greedy_mcb(g, 4);
  EXPECT_EQ(result.coverage, 4u);
  EXPECT_LE(result.brokers.size(), 3u);  // {0 or 1} + {2} + {3}
}

class GreedyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyPropertyTest, LazyMatchesEagerGreedy) {
  const CsrGraph g = make_random(70, 0.05, GetParam());
  for (const std::uint32_t k : {1u, 3u, 8u, 20u}) {
    const auto lazy = greedy_mcb(g, k);
    const auto eager = eager_greedy(g, k);
    // Tie-breaking matches (both prefer the lowest id), so the selections
    // must be identical, not just equal in value.
    EXPECT_EQ(std::vector<NodeId>(lazy.brokers.members().begin(),
                                  lazy.brokers.members().end()),
              std::vector<NodeId>(eager.members().begin(), eager.members().end()))
        << "k = " << k;
  }
}

TEST_P(GreedyPropertyTest, AchievesOneMinusOneOverEOfOptimum) {
  // Lemma 4 on brute-forceable graphs.
  const CsrGraph g = make_random(14, 0.18, GetParam());
  for (const std::uint32_t k : {1u, 2u, 3u}) {
    const auto result = greedy_mcb(g, k);
    const auto optimum = brute_force_mcb_optimum(g, k);
    EXPECT_GE(static_cast<double>(result.coverage) + 1e-9,
              (1.0 - 1.0 / std::exp(1.0)) * static_cast<double>(optimum))
        << "k = " << k;
  }
}

TEST_P(GreedyPropertyTest, FullBudgetCoversEverything) {
  const CsrGraph g = make_random(30, 0.08, GetParam());
  const auto result = greedy_mcb(g, g.num_vertices());
  EXPECT_EQ(result.coverage, g.num_vertices());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyPropertyTest,
                         ::testing::Values(2, 23, 234, 2345, 23456));

}  // namespace
}  // namespace bsr::broker
