#include "broker/length_constrained.hpp"

#include <gtest/gtest.h>

#include "broker/greedy_mcb.hpp"
#include "broker/maxsg.hpp"
#include "broker/path_length.hpp"
#include "test_util.hpp"

namespace bsr::broker {
namespace {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::graph::Rng;
using bsr::test::make_connected_random;
using bsr::test::make_star;

TEST(LengthRepair, AlreadyFeasibleIsNoop) {
  const CsrGraph g = make_star(10);
  BrokerSet b(10);
  b.add(0);  // dominates everything: F_B == F
  Rng rng(1);
  const auto result = repair_path_lengths(g, b, rng);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.added, 0u);
  EXPECT_NEAR(result.initial_deviation, 0.0, 1e-12);
}

TEST(LengthRepair, ReducesDeviation) {
  const CsrGraph g = make_connected_random(120, 0.05, 2);
  // A deliberately weak set: a few random low-value brokers.
  BrokerSet weak(g.num_vertices());
  weak.add(3);
  weak.add(77);
  Rng rng(3);
  LengthRepairOptions options;
  options.epsilon = 0.05;
  options.max_added = 60;
  options.sources = 120;  // exact on this size
  const auto result = repair_path_lengths(g, weak, rng, options);
  EXPECT_LT(result.final_deviation, result.initial_deviation);
  EXPECT_GT(result.added, 0u);
  EXPECT_EQ(result.brokers.size(), weak.size() + result.added);
  // The input brokers are preserved.
  EXPECT_TRUE(result.brokers.contains(3));
  EXPECT_TRUE(result.brokers.contains(77));
}

TEST(LengthRepair, AchievesFeasibilityWithEnoughBudget) {
  const CsrGraph g = make_connected_random(60, 0.08, 4);
  const auto seed_set = greedy_mcb(g, 3).brokers;
  Rng rng(5);
  LengthRepairOptions options;
  options.epsilon = 0.05;
  options.max_added = 60;
  options.sources = 60;
  options.max_rounds = 30;
  const auto result = repair_path_lengths(g, seed_set, rng, options);
  EXPECT_TRUE(result.feasible) << "final deviation " << result.final_deviation;
  // Verify independently with the §5.2 evaluator.
  Rng verify_rng(6);
  const auto cmp = compare_path_lengths(g, result.brokers, verify_rng, 60);
  EXPECT_LE(cmp.max_deviation, options.epsilon + 0.02);
}

TEST(LengthRepair, RespectsBudget) {
  const CsrGraph g = make_connected_random(100, 0.04, 7);
  BrokerSet weak(g.num_vertices());
  weak.add(0);
  Rng rng(8);
  LengthRepairOptions options;
  options.epsilon = 0.001;  // unreachable with the tiny budget below
  options.max_added = 5;
  options.sources = 50;
  const auto result = repair_path_lengths(g, weak, rng, options);
  EXPECT_LE(result.added, 5u);
  EXPECT_FALSE(result.feasible);
}

TEST(LengthRepair, RejectsBadOptions) {
  const CsrGraph g = make_star(5);
  Rng rng(9);
  LengthRepairOptions bad;
  bad.epsilon = 0.0;
  EXPECT_THROW(repair_path_lengths(g, BrokerSet(5), rng, bad),
               std::invalid_argument);
  bad = LengthRepairOptions{};
  bad.sources = 0;
  EXPECT_THROW(repair_path_lengths(g, BrokerSet(5), rng, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace bsr::broker
