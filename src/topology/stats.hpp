// Dataset summary statistics (reproduces Table 2 of the paper).
#pragma once

#include <cstdint>

#include "topology/internet.hpp"

namespace bsr::topology {

struct TopologySummary {
  std::uint32_t num_ixps = 0;
  std::uint32_t num_ases = 0;
  std::uint32_t largest_component = 0;   // "size of the maximum connected subgraph"
  std::uint64_t as_as_edges = 0;         // direct AS-AS connections
  std::uint64_t colocated_pairs = 0;     // AS pairs co-located at >= 1 IXP
  /// Realized via-IXP peering sessions: each co-located pair peers with
  /// probability InternetConfig::ixp_peering_prob (route-server reality:
  /// co-location enables but does not imply peering). This is the row
  /// comparable to the paper's 292,050.
  std::uint64_t as_as_via_ixp_pairs = 0;
  std::uint64_t ixp_memberships = 0;     // AS-IXP edges
  double ixp_attachment_rate = 0.0;      // fraction of ASes on >= 1 IXP
  double alpha_within_beta = 0.0;        // Prob[d(u,v) <= beta] (sampled)
  std::uint32_t beta = 4;                // hop bound for the (alpha,beta) check
};

/// Computes the summary. `bfs_sources` bounds the sampling cost of the
/// (alpha, beta) estimate; the rest is exact. `ixp_peering_prob` drives the
/// realized via-IXP peering count (pass the generating config's value).
[[nodiscard]] TopologySummary summarize(const InternetTopology& topo,
                                        std::size_t bfs_sources, std::uint64_t seed,
                                        std::uint32_t beta = 4,
                                        double ixp_peering_prob = 0.013);

}  // namespace bsr::topology
