#include "broker/path_length.hpp"

#include <gtest/gtest.h>

#include "broker/greedy_mcb.hpp"
#include "test_util.hpp"

namespace bsr::broker {
namespace {

using bsr::graph::CsrGraph;
using bsr::graph::Rng;
using bsr::test::make_complete;
using bsr::test::make_connected_random;
using bsr::test::make_path;
using bsr::test::make_star;

TEST(PathLength, FullDominationMeansZeroDeviation) {
  const CsrGraph g = make_star(8);
  BrokerSet b(8);
  b.add(0);  // center dominates every edge
  Rng rng(1);
  const auto cmp = compare_path_lengths(g, b, rng, 100);
  EXPECT_NEAR(cmp.max_deviation, 0.0, 1e-12);
  EXPECT_TRUE(cmp.feasible(0.01));
}

TEST(PathLength, EmptyBrokerSetMaximallyInfeasible) {
  const CsrGraph g = make_complete(6);
  Rng rng(2);
  const auto cmp = compare_path_lengths(g, BrokerSet(6), rng, 100);
  EXPECT_NEAR(cmp.max_deviation, 1.0, 1e-12);
  EXPECT_FALSE(cmp.feasible(0.5));
}

TEST(PathLength, InflationNonNegativeEverywhere) {
  const CsrGraph g = make_connected_random(40, 0.08, 3);
  const auto brokers = greedy_mcb(g, 5).brokers;
  Rng rng(4);
  const auto cmp = compare_path_lengths(g, brokers, rng, 1000);
  for (std::uint32_t l = 0; l < 12; ++l) {
    EXPECT_GE(cmp.inflation_at(l), -1e-12) << "l = " << l;
  }
}

TEST(PathLength, DominatedCdfBelowFreeCdf) {
  // Restricting edges can only remove or lengthen paths.
  const CsrGraph g = make_connected_random(50, 0.06, 5);
  const auto brokers = greedy_mcb(g, 3).brokers;
  Rng rng(6);
  const auto cmp = compare_path_lengths(g, brokers, rng, 1000);
  for (std::uint32_t l = 1; l < 12; ++l) {
    EXPECT_LE(cmp.dominated_paths.at(l), cmp.free_paths.at(l) + 1e-12);
  }
}

TEST(PathLength, MidPathBrokerInflatesButStaysFeasibleWithBigEpsilon) {
  const CsrGraph g = make_path(6);
  BrokerSet b(6);
  b.add(2);
  b.add(3);
  Rng rng(7);
  const auto cmp = compare_path_lengths(g, b, rng, 100);
  EXPECT_GT(cmp.max_deviation, 0.0);
  EXPECT_TRUE(cmp.feasible(1.0));
}

}  // namespace
}  // namespace bsr::broker
