#include "econ/stackelberg.hpp"

#include <cmath>
#include <stdexcept>

#include "econ/bargaining.hpp"

namespace bsr::econ {

double customer_income(const CustomerParams& p, double a) {
  return p.v_scale * std::log1p(p.v_curvature * a) / std::log1p(p.v_curvature);
}

double customer_legacy_payment(const CustomerParams& p, double a) {
  // Concave parabola with apex at (â, p_peak), zero at a = 1:
  //   P(a) = p_peak · (1 - ((a - â)/(1 - â))²)
  // Increasing for a < â, decreasing for â < a <= 1, P(1) = 0.
  const double width = 1.0 - p.a_hat;
  if (width <= 0.0) return 0.0;  // â = 1: legacy payment already maximal at 1
  const double t = (a - p.a_hat) / width;
  return p.p_peak * (1.0 - t * t);
}

double customer_utility(const CustomerParams& p, double a, double price) {
  return customer_income(p, a) + customer_legacy_payment(p, a) - price * a;
}

double best_response(const CustomerParams& p, double price) {
  if (p.a0 < 0.0 || p.a0 > 1.0) {
    throw std::invalid_argument("best_response: a0 outside [0, 1]");
  }
  // u_i is strictly concave in a (log income + concave parabola - linear),
  // so ternary search over [a0, 1] converges to the unique maximizer.
  double lo = p.a0, hi = 1.0;
  while (hi - lo > 1e-10) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = hi - (hi - lo) / 3.0;
    if (customer_utility(p, m1, price) < customer_utility(p, m2, price)) {
      lo = m1;
    } else {
      hi = m2;
    }
  }
  return 0.5 * (lo + hi);
}

double broker_cost(const BrokerCostParams& c, double alpha) {
  return c.linear * alpha + c.hire * c.employee_price * std::sqrt(alpha);
}

StackelbergEquilibrium solve_stackelberg(const StackelbergConfig& config) {
  if (config.customers.empty()) {
    throw std::invalid_argument("solve_stackelberg: no customers");
  }
  if (config.max_price <= 0.0) {
    throw std::invalid_argument("solve_stackelberg: max_price must be positive");
  }

  const auto total_adoption_at = [&config](double price) {
    double alpha = 0.0;
    for (const auto& customer : config.customers) {
      alpha += best_response(customer, price);
    }
    return alpha;
  };
  const auto broker_utility_at = [&](double price) {
    const double alpha = total_adoption_at(price);
    return 2.0 * price * alpha - broker_cost(config.cost, alpha);
  };

  // u_B(p) need not be unimodal across the full range (customers hit the
  // a = 1 and a = a0 corners at different prices), so scan a coarse grid
  // and refine the best cell with golden section.
  constexpr int kGrid = 64;
  double best_price = 0.0, best_utility = broker_utility_at(0.0);
  for (int i = 1; i <= kGrid; ++i) {
    const double price = config.max_price * i / kGrid;
    const double utility = broker_utility_at(price);
    if (utility > best_utility) {
      best_utility = utility;
      best_price = price;
    }
  }
  const double cell = config.max_price / kGrid;
  const double lo = std::max(0.0, best_price - cell);
  const double hi = std::min(config.max_price, best_price + cell);
  const double refined = golden_section_max(broker_utility_at, lo, hi, 1e-7);
  if (broker_utility_at(refined) > best_utility) best_price = refined;

  StackelbergEquilibrium eq;
  eq.price = best_price;
  eq.adoption.reserve(config.customers.size());
  eq.customer_utility.reserve(config.customers.size());
  for (const auto& customer : config.customers) {
    const double a = best_response(customer, best_price);
    eq.adoption.push_back(a);
    eq.customer_utility.push_back(customer_utility(customer, a, best_price));
    eq.total_adoption += a;
    if (a >= 1.0 - 1e-6) ++eq.full_adopters;
  }
  eq.mean_adoption = eq.total_adoption / static_cast<double>(config.customers.size());
  eq.broker_utility =
      2.0 * best_price * eq.total_adoption - broker_cost(config.cost, eq.total_adoption);
  return eq;
}

}  // namespace bsr::econ
