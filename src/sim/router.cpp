#include "sim/router.hpp"

#include <algorithm>

#include "graph/check.hpp"
#include "graph/sampling.hpp"

namespace bsr::sim {

using bsr::graph::kUnreachable;
using bsr::graph::NodeId;

const char* to_string(RouteTier tier) noexcept {
  switch (tier) {
    case RouteTier::kDominated: return "dominated";
    case RouteTier::kDegraded: return "degraded";
    case RouteTier::kFreeFallback: return "free-fallback";
    case RouteTier::kUnreachable: return "unreachable";
  }
  return "?";
}

Router::Router(const bsr::graph::CsrGraph& g, const bsr::broker::BrokerSet& brokers)
    : Router(g, brokers, nullptr) {}

Router::Router(const bsr::graph::CsrGraph& g, const bsr::broker::BrokerSet& brokers,
               const bsr::graph::FaultPlane* faults)
    : graph_(&g), brokers_(&brokers) {
  parent_.resize(g.num_vertices());
  queue_.reserve(g.num_vertices());
  set_fault_plane(faults);
}

void Router::set_fault_plane(const bsr::graph::FaultPlane* faults) {
  BSR_DCHECK(faults == nullptr || &faults->graph() == graph_);
  faults_ = faults;
}

Route Router::route_impl(NodeId src, NodeId dst, bool dominated) {
  BSR_DCHECK(src < graph_->num_vertices() && dst < graph_->num_vertices());
  Route route;
  if (faults_ != nullptr && (!faults_->vertex_ok(src) || !faults_->vertex_ok(dst))) {
    return route;  // a down endpoint cannot originate or terminate traffic
  }
  if (src == dst) {
    route.path = {src};
    return route;
  }
  std::fill(parent_.begin(), parent_.end(), kUnreachable);
  queue_.clear();
  parent_[src] = src;
  queue_.push_back(src);
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const NodeId u = queue_[head];
    const auto nbrs = graph_->neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      if (parent_[v] != kUnreachable) continue;
      if (dominated && !brokers_->dominates_edge(u, v)) continue;
      if (faults_ != nullptr &&
          (!faults_->vertex_ok(v) || !faults_->edge_up_at(u, i))) {
        continue;
      }
      parent_[v] = u;
      if (v == dst) {
        route.path.push_back(dst);
        for (NodeId w = dst; w != src; w = parent_[w]) route.path.push_back(parent_[w]);
        std::reverse(route.path.begin(), route.path.end());
        return route;
      }
      queue_.push_back(v);
    }
  }
  return route;  // unreachable
}

Route Router::route_healed(NodeId src, NodeId dst, std::uint32_t max_heals,
                           std::uint32_t& healed_links) {
  // BFS over (vertex, heals-used) states: dominated edges only, vertices
  // must be up, and crossing a *failed* dominated link consumes one heal.
  // First arrival at dst (any heal count) is the min-hop degraded route.
  healed_links = 0;
  Route route;
  const std::uint32_t layers = max_heals + 1;
  const std::size_t num_states =
      static_cast<std::size_t>(graph_->num_vertices()) * layers;
  BSR_DCHECK(num_states < kUnreachable);
  state_parent_.assign(num_states, kUnreachable);
  state_queue_.clear();

  const auto state_of = [layers](NodeId v, std::uint32_t heals) {
    return static_cast<std::uint32_t>(v) * layers + heals;
  };
  const std::uint32_t start = state_of(src, 0);
  state_parent_[start] = start;
  state_queue_.push_back(start);
  for (std::size_t head = 0; head < state_queue_.size(); ++head) {
    const std::uint32_t s = state_queue_[head];
    const NodeId u = s / layers;
    const std::uint32_t heals = s % layers;
    const auto nbrs = graph_->neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      if (!brokers_->dominates_edge(u, v)) continue;
      if (!faults_->vertex_ok(v)) continue;
      std::uint32_t next_heals = heals;
      if (!faults_->edge_up_at(u, i)) {
        if (heals == max_heals) continue;  // heal budget exhausted
        ++next_heals;
      }
      const std::uint32_t t = state_of(v, next_heals);
      if (state_parent_[t] != kUnreachable) continue;
      state_parent_[t] = s;
      if (v == dst) {
        healed_links = next_heals;
        for (std::uint32_t w = t; w != start; w = state_parent_[w]) {
          route.path.push_back(w / layers);
        }
        route.path.push_back(src);
        std::reverse(route.path.begin(), route.path.end());
        return route;
      }
      state_queue_.push_back(t);
    }
  }
  return route;  // unreachable within the heal budget
}

Route Router::route_free(NodeId src, NodeId dst) {
  return route_impl(src, dst, /*dominated=*/false);
}

Route Router::route_dominated(NodeId src, NodeId dst) {
  return route_impl(src, dst, /*dominated=*/true);
}

TieredRoute Router::route_with_degradation(NodeId src, NodeId dst,
                                           const DegradationPolicy& policy) {
  TieredRoute out;
  out.route = route_dominated(src, dst);
  if (out.route.reachable()) {
    out.tier = RouteTier::kDominated;
    return out;
  }
  if (faults_ != nullptr && !faults_->pristine() && policy.heal_attempts > 0 &&
      faults_->vertex_ok(src) && faults_->vertex_ok(dst) && src != dst) {
    out.route = route_healed(src, dst, policy.heal_attempts, out.healed_links);
    if (out.route.reachable()) {
      out.tier = RouteTier::kDegraded;
      return out;
    }
    out.healed_links = 0;
  }
  if (policy.allow_free_fallback) {
    out.route = route_free(src, dst);
    if (out.route.reachable()) {
      out.tier = RouteTier::kFreeFallback;
      return out;
    }
  }
  out.tier = RouteTier::kUnreachable;
  return out;
}

std::optional<std::uint32_t> Router::stretch(NodeId src, NodeId dst) {
  const Route free_route = route_free(src, dst);
  if (!free_route.reachable()) return std::nullopt;
  const Route dominated_route = route_dominated(src, dst);
  if (!dominated_route.reachable()) return std::nullopt;
  return dominated_route.hops() - free_route.hops();
}

TierShares sample_tier_shares(Router& router, bsr::graph::Rng& rng,
                              std::size_t num_pairs,
                              const DegradationPolicy& policy) {
  TierShares shares;
  const auto pairs =
      bsr::graph::sample_pairs(rng, router.graph().num_vertices(), num_pairs);
  for (const auto& [src, dst] : pairs) {
    const TieredRoute r = router.route_with_degradation(src, dst, policy);
    ++shares.pairs;
    switch (r.tier) {
      case RouteTier::kDominated: ++shares.dominated; break;
      case RouteTier::kDegraded: ++shares.degraded; break;
      case RouteTier::kFreeFallback: ++shares.free_fallback; break;
      case RouteTier::kUnreachable: ++shares.unreachable; break;
    }
  }
  return shares;
}

}  // namespace bsr::sim
