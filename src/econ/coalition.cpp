#include "econ/coalition.hpp"

#include <bit>
#include <stdexcept>

#include "broker/dominated.hpp"

namespace bsr::econ {

using bsr::graph::NodeId;

CoalitionGame::CoalitionGame(const bsr::graph::CsrGraph& g,
                             std::span<const NodeId> players, CoalitionParams params)
    : graph_(&g), players_(players.begin(), players.end()), params_(params) {
  if (players_.empty() || players_.size() > 63) {
    throw std::invalid_argument("CoalitionGame: need 1..63 players");
  }
  for (const NodeId v : players_) {
    if (v >= g.num_vertices()) {
      throw std::invalid_argument("CoalitionGame: player vertex out of range");
    }
  }
}

double CoalitionGame::value(std::uint64_t mask) const {
  if (mask == 0) return 0.0;
  bsr::broker::BrokerSet coalition(graph_->num_vertices());
  for (std::size_t j = 0; j < players_.size(); ++j) {
    if (mask & (1ull << j)) coalition.add(players_[j]);
  }
  const double connectivity = bsr::broker::saturated_connectivity(*graph_, coalition);
  return params_.revenue_per_connectivity * connectivity -
         params_.operating_cost * static_cast<double>(std::popcount(mask));
}

CharacteristicFn CoalitionGame::characteristic() const {
  return [this](std::uint64_t mask) { return value(mask); };
}

}  // namespace bsr::econ
