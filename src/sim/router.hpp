// Route computation: BGP-like shortest paths vs broker-dominated paths.
//
// The simulator contrasts two planes:
//   * the "free" plane — shortest AS path, as BGP's hop-count-ish decision
//     process would produce (no QoS control beyond the first hop);
//   * the "brokered" plane — shortest B-dominating path, where every hop is
//     supervised by a broker endpoint and thus QoS-controllable.
//
// A Router may additionally be bound to a graph::FaultPlane; all routes then
// avoid failed links and vertices, and route_with_degradation() reports
// *how* service degraded when the brokered plane loses a pair:
//   kDominated    — brokered route on the damaged graph, full QoS;
//   kDegraded     — brokered route that crosses up to `heal_attempts` failed
//                   links (the operator expedites those repairs);
//   kFreeFallback — only the unsupervised free plane still connects the pair;
//   kUnreachable  — nothing does.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"
#include "graph/fault_plane.hpp"
#include "graph/rng.hpp"
#include "graph/workspace.hpp"
#include "sim/health.hpp"

namespace bsr::sim {

struct Route {
  std::vector<bsr::graph::NodeId> path;  // src..dst; empty = unreachable
  [[nodiscard]] bool reachable() const noexcept { return !path.empty(); }
  [[nodiscard]] std::uint32_t hops() const noexcept {
    return path.empty() ? 0 : static_cast<std::uint32_t>(path.size() - 1);
  }
};

/// Service tier a pair ends up on, best first.
enum class RouteTier : std::uint8_t {
  kDominated,     // brokered plane intact
  kDegraded,      // brokered plane with <= n expedited link heals
  kFreeFallback,  // unsupervised BGP-like plane only
  kUnreachable,
};

[[nodiscard]] const char* to_string(RouteTier tier) noexcept;

/// How far the router may degrade before declaring a pair lost.
struct DegradationPolicy {
  /// Failed links a kDegraded route may cross (expedited heals per route).
  std::uint32_t heal_attempts = 2;
  /// Whether the unsupervised free plane may serve as a last resort.
  bool allow_free_fallback = true;
};

struct TieredRoute {
  Route route;
  RouteTier tier = RouteTier::kUnreachable;
  /// Failed links the route crosses (> 0 only for kDegraded).
  std::uint32_t healed_links = 0;
};

/// What actually happened to a pair routed on a stale HealthView. The view
/// is *belief*: the route is computed as if every routable broker and every
/// link were up, then checked against the fault plane (ground truth).
enum class HealthOutcome : std::uint8_t {
  kOk,           // believed route exists and every hop is actually usable
  kMisrouted,    // believed route crosses a dead broker/link — traffic blackholes
  kShunned,      // view offers nothing, but the oracle still connects the pair
                 // (healthy capacity falsely quarantined)
  kUnreachable,  // neither belief nor oracle connects the pair
};

[[nodiscard]] const char* to_string(HealthOutcome outcome) noexcept;

struct HealthRouteResult {
  Route route;  // the believed route (empty when the view offers none)
  HealthOutcome outcome = HealthOutcome::kUnreachable;
  /// Hops of the believed route that cross a down link or endpoint
  /// (> 0 only for kMisrouted).
  std::uint32_t dead_hops = 0;
};

/// Reusable router bound to one graph + broker set (+ optional fault plane).
class Router {
 public:
  Router(const bsr::graph::CsrGraph& g, const bsr::broker::BrokerSet& brokers);

  /// Fault-aware router: all routes respect the plane's failures. The plane
  /// must be bound to `g` and outlive the router; nullptr detaches.
  Router(const bsr::graph::CsrGraph& g, const bsr::broker::BrokerSet& brokers,
         const bsr::graph::FaultPlane* faults);

  void set_fault_plane(const bsr::graph::FaultPlane* faults);

  /// Binds a (possibly stale) health view for route_with_health(); nullptr
  /// detaches. The view must cover this graph and outlive the router. The
  /// oracle entry points (route_free/route_dominated/route_with_degradation)
  /// are unaffected — they keep answering from ground truth.
  void set_health_view(const HealthView* view);

  [[nodiscard]] const bsr::graph::CsrGraph& graph() const noexcept { return *graph_; }

  /// Shortest path in the full graph (the BGP-like reference).
  [[nodiscard]] Route route_free(bsr::graph::NodeId src, bsr::graph::NodeId dst);

  /// Shortest B-dominating path (every hop has a broker endpoint).
  [[nodiscard]] Route route_dominated(bsr::graph::NodeId src, bsr::graph::NodeId dst);

  /// Graceful degradation: dominated, then dominated-with-heals, then free
  /// fallback, reporting which tier served the pair. Without a fault plane
  /// this collapses to kDominated / kFreeFallback / kUnreachable.
  [[nodiscard]] TieredRoute route_with_degradation(bsr::graph::NodeId src,
                                                   bsr::graph::NodeId dst,
                                                   const DegradationPolicy& policy);

  /// Routes `src -> dst` believing the bound health view: the dominated BFS
  /// only uses edges with a *routable* broker endpoint and assumes every
  /// link is up (the view knows nothing about links). The result reports how
  /// belief compared to ground truth — misrouted through dead capacity,
  /// falsely shunned, or correct. Requires set_health_view().
  [[nodiscard]] HealthRouteResult route_with_health(bsr::graph::NodeId src,
                                                    bsr::graph::NodeId dst);

  /// Hop inflation of the brokered route vs the free route for one pair;
  /// nullopt when either plane is unreachable.
  [[nodiscard]] std::optional<std::uint32_t> stretch(bsr::graph::NodeId src,
                                                     bsr::graph::NodeId dst);

 private:
  Route route_impl(bsr::graph::NodeId src, bsr::graph::NodeId dst, bool dominated);
  /// Early-exit BFS with a static-dispatch edge filter; defined in router.cpp
  /// (all four instantiations live there).
  template <class Filter>
  Route route_scan(bsr::graph::NodeId src, bsr::graph::NodeId dst, Filter admit);
  Route route_healed(bsr::graph::NodeId src, bsr::graph::NodeId dst,
                     std::uint32_t max_heals, std::uint32_t& healed_links);

  const bsr::graph::CsrGraph* graph_;
  const bsr::broker::BrokerSet* brokers_;
  const bsr::graph::FaultPlane* faults_ = nullptr;
  const HealthView* health_view_ = nullptr;
  bsr::graph::engine::Workspace ws_;          // epoch-stamped; no O(V) clears
  std::vector<std::uint32_t> state_parent_;  // (vertex, heals) product BFS
  std::vector<std::uint32_t> state_queue_;
};

/// Tier composition over sampled (src != dst) pairs — the operator's
/// degradation dashboard.
struct TierShares {
  std::size_t pairs = 0;
  std::size_t dominated = 0;
  std::size_t degraded = 0;
  std::size_t free_fallback = 0;
  std::size_t unreachable = 0;

  [[nodiscard]] double fraction(std::size_t count) const noexcept {
    return pairs == 0 ? 0.0 : static_cast<double>(count) / static_cast<double>(pairs);
  }
};

[[nodiscard]] TierShares sample_tier_shares(Router& router, bsr::graph::Rng& rng,
                                            std::size_t num_pairs,
                                            const DegradationPolicy& policy);

/// Outcome composition of stale-view routing over sampled (src != dst)
/// pairs — misrouting and false-quarantine cost against the oracle.
struct HealthShares {
  std::size_t pairs = 0;
  std::size_t ok = 0;
  std::size_t misrouted = 0;
  std::size_t shunned = 0;
  std::size_t unreachable = 0;
  std::uint64_t dead_hops = 0;  // total dead hops across misrouted pairs

  [[nodiscard]] double fraction(std::size_t count) const noexcept {
    return pairs == 0 ? 0.0 : static_cast<double>(count) / static_cast<double>(pairs);
  }
};

/// Requires the router to have both a fault plane (ground truth) and a
/// health view (belief) bound.
[[nodiscard]] HealthShares sample_health_shares(Router& router, bsr::graph::Rng& rng,
                                                std::size_t num_pairs);

}  // namespace bsr::sim
