#include "broker/resilience.hpp"

#include <gtest/gtest.h>

#include "broker/dominated.hpp"
#include "broker/maxsg.hpp"
#include "test_util.hpp"

namespace bsr::broker {
namespace {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::graph::Rng;
using bsr::test::make_connected_random;
using bsr::test::make_star;

TEST(FailBrokers, RandomRemovesExactCount) {
  const CsrGraph g = make_connected_random(40, 0.1, 1);
  const auto brokers = maxsg(g, 10).brokers;
  Rng rng(2);
  const auto survivors = fail_brokers(g, brokers, 3, FailureMode::kRandom, rng);
  EXPECT_EQ(survivors.size(), brokers.size() - 3);
  for (const NodeId v : survivors.members()) EXPECT_TRUE(brokers.contains(v));
}

TEST(FailBrokers, TargetedKillsHighestDegreeFirst) {
  const CsrGraph g = make_star(10);
  BrokerSet b(10);
  b.add(0);  // the hub
  b.add(3);
  b.add(7);
  Rng rng(3);
  const auto survivors = fail_brokers(g, b, 1, FailureMode::kTargetedTop, rng);
  EXPECT_FALSE(survivors.contains(0));
  EXPECT_EQ(survivors.size(), 2u);
}

TEST(FailBrokers, AllFailuresEmptySet) {
  const CsrGraph g = make_star(6);
  BrokerSet b(6);
  b.add(0);
  Rng rng(4);
  EXPECT_TRUE(fail_brokers(g, b, 5, FailureMode::kRandom, rng).empty());
}

TEST(FailBrokers, SizeMismatchThrows) {
  const CsrGraph g = make_star(6);
  Rng rng(5);
  EXPECT_THROW(fail_brokers(g, BrokerSet(7), 1, FailureMode::kRandom, rng),
               std::invalid_argument);
}

TEST(ResilienceCurve, ConnectivityNonIncreasingUnderTargetedFailures) {
  const CsrGraph g = make_connected_random(80, 0.06, 6);
  const auto brokers = maxsg(g, 20).brokers;
  Rng rng(7);
  const std::vector<std::size_t> steps{0, 2, 5, 10, 15};
  const auto curve =
      resilience_curve(g, brokers, steps, FailureMode::kTargetedTop, rng);
  ASSERT_EQ(curve.connectivity.size(), steps.size());
  EXPECT_NEAR(curve.connectivity[0], saturated_connectivity(g, brokers), 1e-12);
  for (std::size_t i = 1; i < curve.connectivity.size(); ++i) {
    EXPECT_LE(curve.connectivity[i], curve.connectivity[i - 1] + 1e-12);
  }
}

TEST(ResilienceCurve, TargetedAtLeastAsDamagingOnHubGraphs) {
  const CsrGraph g = make_star(50);
  BrokerSet b(50);
  b.add(0);
  b.add(1);
  b.add(2);
  const std::vector<std::size_t> steps{1};
  Rng rng_a(8), rng_b(8);
  const auto targeted =
      resilience_curve(g, b, steps, FailureMode::kTargetedTop, rng_a);
  const auto random = resilience_curve(g, b, steps, FailureMode::kRandom, rng_b);
  EXPECT_LE(targeted.connectivity[0], random.connectivity[0] + 1e-12);
}

TEST(Repair, RestoresConnectivity) {
  const CsrGraph g = make_connected_random(80, 0.06, 9);
  const auto brokers = maxsg(g, 20).brokers;
  const double before = saturated_connectivity(g, brokers);
  Rng rng(10);
  const auto survivors = fail_brokers(g, brokers, 8, FailureMode::kTargetedTop, rng);
  const double damaged = saturated_connectivity(g, survivors);
  ASSERT_LT(damaged, before);
  const auto repaired = repair_brokers(g, survivors, 8);
  const double after = saturated_connectivity(g, repaired);
  EXPECT_GT(after, damaged);
  EXPECT_GE(after, before * 0.9);  // greedy repair recovers most of the loss
  EXPECT_LE(repaired.size(), brokers.size());
}

TEST(Repair, ZeroBudgetIsIdentity) {
  const CsrGraph g = make_star(8);
  BrokerSet b(8);
  b.add(3);
  const auto repaired = repair_brokers(g, b, 0);
  EXPECT_EQ(repaired.size(), b.size());
}

TEST(Repair, RepairedBrokersAreNew) {
  const CsrGraph g = make_connected_random(40, 0.1, 11);
  const auto brokers = maxsg(g, 8).brokers;
  Rng rng(12);
  const auto survivors = fail_brokers(g, brokers, 4, FailureMode::kRandom, rng);
  const auto repaired = repair_brokers(g, survivors, 4);
  // Members appended after the survivors must not duplicate them.
  std::size_t new_members = repaired.size() - survivors.size();
  EXPECT_GT(new_members, 0u);
}

}  // namespace
}  // namespace bsr::broker
