#include "broker/disjoint.hpp"

#include <gtest/gtest.h>

#include <set>

#include "broker/maxsg.hpp"
#include "broker/verify.hpp"
#include "test_util.hpp"

namespace bsr::broker {
namespace {

using bsr::graph::CsrGraph;
using bsr::graph::GraphBuilder;
using bsr::graph::NodeId;
using bsr::graph::Rng;
using bsr::test::make_connected_random;
using bsr::test::make_cycle;
using bsr::test::make_path;

TEST(DisjointPaths, CycleGivesTwoDisjointPaths) {
  // Cycle of 6 with all vertices brokers: clockwise + counterclockwise.
  const CsrGraph g = make_cycle(6);
  BrokerSet b(6);
  for (NodeId v = 0; v < 6; ++v) b.add(v);
  const auto result = disjoint_dominating_paths(g, b, 0, 3, 4);
  EXPECT_EQ(result.count(), 2u);
  for (const auto& path : result.paths) {
    EXPECT_TRUE(is_dominating_path(g, b, path));
    EXPECT_EQ(path.front(), 0u);
    EXPECT_EQ(path.back(), 3u);
  }
  // Paths must not share edges.
  std::set<std::pair<NodeId, NodeId>> used;
  for (const auto& path : result.paths) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      auto e = std::minmax(path[i], path[i + 1]);
      EXPECT_TRUE(used.emplace(e.first, e.second).second) << "shared edge";
    }
  }
}

TEST(DisjointPaths, PathGraphHasExactlyOne) {
  const CsrGraph g = make_path(5);
  BrokerSet b(5);
  for (NodeId v = 0; v < 5; ++v) b.add(v);
  const auto result = disjoint_dominating_paths(g, b, 0, 4, 3);
  EXPECT_EQ(result.count(), 1u);
}

TEST(DisjointPaths, DominationConstraintRespected) {
  // Diamond 0-1-3, 0-2-3: only 1 is a broker, so the 0-2-3 route (neither
  // endpoint of 0-2 and 2-3 in B) is inadmissible — one path only.
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(1, 3);
  builder.add_edge(0, 2);
  builder.add_edge(2, 3);
  const CsrGraph g = builder.build();
  BrokerSet b(4);
  b.add(1);
  const auto result = disjoint_dominating_paths(g, b, 0, 3, 3);
  ASSERT_EQ(result.count(), 1u);
  EXPECT_EQ(result.paths[0], (std::vector<NodeId>{0, 1, 3}));
}

TEST(DisjointPaths, TrivialAndInvalidInputs) {
  const CsrGraph g = make_path(4);
  BrokerSet b(4);
  b.add(1);
  EXPECT_EQ(disjoint_dominating_paths(g, b, 2, 2).count(), 0u);
  EXPECT_EQ(disjoint_dominating_paths(g, b, 0, 99).count(), 0u);
  EXPECT_EQ(disjoint_dominating_paths(g, b, 0, 3, 0).count(), 0u);
}

TEST(DisjointPaths, ShortestFirstOrdering) {
  const CsrGraph g = make_connected_random(40, 0.15, 5);
  BrokerSet b(g.num_vertices());
  for (NodeId v = 0; v < 20; ++v) b.add(v);
  for (NodeId dst = 20; dst < 30; ++dst) {
    const auto result = disjoint_dominating_paths(g, b, 35, dst, 3);
    for (std::size_t i = 1; i < result.count(); ++i) {
      EXPECT_LE(result.paths[i - 1].size(), result.paths[i].size());
    }
    for (const auto& path : result.paths) {
      EXPECT_TRUE(is_dominating_path(g, b, path));
    }
  }
}

TEST(PathDiversity, MoreBrokersMoreDiversity) {
  const CsrGraph g = make_connected_random(100, 0.06, 6);
  const auto small = maxsg(g, 5).brokers;
  const auto large = maxsg(g, 40).brokers;
  Rng rng_a(7), rng_b(7);
  const auto d_small = path_diversity(g, small, rng_a, 300);
  const auto d_large = path_diversity(g, large, rng_b, 300);
  EXPECT_GE(d_large.with_one, d_small.with_one - 1e-9);
  EXPECT_GE(d_large.with_two, d_small.with_two - 1e-9);
  EXPECT_LE(d_large.with_two, d_large.with_one + 1e-9);
}

TEST(PathDiversity, DegenerateGraph) {
  Rng rng(8);
  const auto stats = path_diversity(make_path(1), BrokerSet(1), rng, 10);
  EXPECT_EQ(stats.pairs_sampled, 0u);
}

}  // namespace
}  // namespace bsr::broker
