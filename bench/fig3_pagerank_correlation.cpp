// Reproduces Fig. 3 — correlation of PageRank with the marginal
// connectivity gain of the next broker.
//
// Paper: pick the PRB set of size 100 (resp. 1,000), then evaluate every AS
// as the 101st (resp. 1,001st) broker; the correlation between PageRank and
// the saturated-connectivity increase drops from 0.818 to 0.227 — which is
// why PRB stalls. Marginal gains are computed with the same incremental
// union-find trick MaxSG uses (O(deg) per candidate).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "broker/baselines.hpp"
#include "graph/pagerank.hpp"
#include "graph/union_find.hpp"

namespace {

using bsr::broker::BrokerSet;
using bsr::graph::CsrGraph;
using bsr::graph::NodeId;

/// Marginal dominated-component gains for every non-broker candidate.
std::vector<double> marginal_gains(const CsrGraph& g, const BrokerSet& base) {
  bsr::graph::UnionFind uf(g.num_vertices());
  for (const NodeId b : base.members()) {
    for (const NodeId v : g.neighbors(b)) uf.unite(b, v);
  }
  std::vector<std::uint32_t> stamp(g.num_vertices(), 0);
  std::uint32_t epoch = 0;
  std::vector<double> gains(g.num_vertices(), 0.0);
  for (NodeId w = 0; w < g.num_vertices(); ++w) {
    if (base.contains(w)) continue;
    ++epoch;
    std::uint64_t merged = 0;
    const NodeId rw = uf.find(w);
    stamp[rw] = epoch;
    merged += uf.component_size(rw);
    std::uint64_t largest_existing = uf.component_size(rw);
    for (const NodeId v : g.neighbors(w)) {
      const NodeId r = uf.find(v);
      if (stamp[r] != epoch) {
        stamp[r] = epoch;
        merged += uf.component_size(r);
        largest_existing = std::max<std::uint64_t>(largest_existing,
                                                   uf.component_size(r));
      }
    }
    // Gain in connected pairs: C(merged,2) - C(largest,2) approximates the
    // saturated-connectivity increase (merging into the giant dominates).
    const auto pairs = [](std::uint64_t s) {
      return 0.5 * static_cast<double>(s) * (static_cast<double>(s) - 1.0);
    };
    gains[w] = pairs(merged) - pairs(largest_existing);
  }
  return gains;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y,
               const std::vector<bool>& mask) {
  double mx = 0, my = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!mask[i]) continue;
    mx += x[i];
    my += y[i];
    ++n;
  }
  mx /= n;
  my /= n;
  double num = 0, dx = 0, dy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!mask[i]) continue;
    num += (x[i] - mx) * (y[i] - my);
    dx += (x[i] - mx) * (x[i] - mx);
    dy += (y[i] - my) * (y[i] - my);
  }
  return num / std::sqrt(dx * dy);
}

}  // namespace

int main() {
  auto ctx = bsr::bench::make_context("Fig. 3: PageRank vs marginal connectivity gain");
  const auto& g = ctx.topo.graph;

  const auto pagerank = bsr::graph::pagerank(g);

  bsr::io::Table table(
      {"base |B| (PRB)", "Pearson r(PageRank, gain)", "paper"});
  for (const auto& [paper_k, paper_r] :
       {std::pair{100u, "0.818"}, std::pair{1000u, "0.227"}}) {
    const std::uint32_t k = ctx.env.scaled(paper_k, 4);
    const BrokerSet base = bsr::broker::prb_top_pagerank(g, k);
    const auto gains = marginal_gains(g, base);
    std::vector<bool> candidate(g.num_vertices(), false);
    for (NodeId v = 0; v < g.num_vertices(); ++v) {
      candidate[v] = !base.contains(v);
    }
    const double r = pearson(pagerank, gains, candidate);
    table.row()
        .cell(static_cast<std::uint64_t>(base.size()))
        .cell(r, 3)
        .cell(paper_r);
  }
  table.print(std::cout);
  std::cout << "(paper: the correlation collapses as the broker set grows, "
               "so picking by PageRank stops working)\n";
  return 0;
}
