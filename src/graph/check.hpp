// Debug-mode invariant checking for the graph layer.
//
// BSR_DCHECK(cond) aborts with file/line context when `cond` is false. It is
// compiled away in optimized builds (NDEBUG) unless BSR_ENABLE_DCHECKS is
// defined, so hot loops pay nothing in release while debug and sanitizer
// builds catch out-of-range NodeIds at the call site instead of as silent UB
// deep inside a flat-array read. Prefer this over <cassert> everywhere in
// src/graph so the whole layer toggles with one macro.
#pragma once

#include <cstdio>
#include <cstdlib>

#if !defined(NDEBUG) || defined(BSR_ENABLE_DCHECKS)
#define BSR_DCHECK_ENABLED 1
#else
#define BSR_DCHECK_ENABLED 0
#endif

namespace bsr {

/// Called (when set) right before a failed BSR_DCHECK aborts. The obs flight
/// recorder installs a handler that dumps the journal tail to stderr
/// (obs/journal.hpp start_recording), turning the ring buffer into a crash
/// black box. Header-only and outside bsr::obs on purpose: graph TUs that
/// use BSR_DCHECK must reference zero obs symbols in a BSR_STATS=OFF build.
using DcheckFailureHook = void (*)();

[[nodiscard]] inline DcheckFailureHook& dcheck_failure_hook() noexcept {
  static DcheckFailureHook hook = nullptr;
  return hook;
}

}  // namespace bsr

#if BSR_DCHECK_ENABLED
#define BSR_DCHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "BSR_DCHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                      \
      if (::bsr::dcheck_failure_hook() != nullptr) {                         \
        ::bsr::dcheck_failure_hook()();                                      \
      }                                                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (false)
#else
#define BSR_DCHECK(cond) \
  do {                   \
  } while (false)
#endif
