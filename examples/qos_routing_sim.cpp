// Example: QoS routing simulation — BGP plane vs brokered plane.
//
// The scenario from the paper's introduction: delay-sensitive traffic
// (VoIP, conferencing) crosses multiple AS hops; beyond the first hop BGP
// gives no QoS guarantee, so each unsupervised hop degrades with some
// probability. A broker set supervises every hop of a dominating path.
// This example quantifies the end-to-end QoS win, the hop inflation paid
// for it, and how transit load distributes over the brokers.
#include <iomanip>
#include <iostream>

#include "broker/maxsg.hpp"
#include "io/env.hpp"
#include "io/table.hpp"
#include "sim/demand.hpp"
#include "sim/load.hpp"
#include "sim/qos.hpp"
#include "sim/router.hpp"
#include "topology/internet.hpp"

int main() {
  const auto env = bsr::io::experiment_env();
  auto config = bsr::topology::InternetConfig{}.scaled(std::min(env.scale, 0.1));
  config.seed = env.seed;
  const auto topo = bsr::topology::make_internet(config);
  const auto& g = topo.graph;
  std::cout << "topology: " << g.num_vertices() << " vertices, " << g.num_edges()
            << " edges\n";

  // Broker set sized at ~2 % of the network (the paper's 1,000-broker point).
  const std::uint32_t k = std::max<std::uint32_t>(8, g.num_vertices() / 50);
  const auto brokers = bsr::broker::maxsg(g, k).brokers;
  std::cout << "brokers: " << brokers.size() << " ("
            << bsr::io::format_percent(static_cast<double>(brokers.size()) /
                                       g.num_vertices())
            << "% of vertices)\n";

  // Gravity-model traffic demand: hubs talk more, volumes heavy-tailed.
  bsr::graph::Rng rng(env.seed + 1);
  bsr::sim::DemandConfig demand;
  demand.num_flows = 2000;
  const auto flows = bsr::sim::generate_flows(g, demand, rng);

  bsr::sim::Router router(g, brokers);
  bsr::sim::LoadTracker load(g.num_vertices());
  bsr::sim::QosModel qos;
  qos.unsupervised_hop_success = 0.85;  // 15 % chance an unmanaged hop degrades

  double bgp_success = 0.0, brokered_success = 0.0;
  std::uint64_t bgp_hops = 0, brokered_hops = 0;
  std::size_t served_brokered = 0, served_bgp = 0;
  for (const auto& flow : flows) {
    const auto free_route = router.route_free(flow.src, flow.dst);
    if (free_route.reachable()) {
      ++served_bgp;
      bgp_hops += free_route.hops();
      bgp_success += bsr::sim::path_qos_success(qos, brokers, free_route.path);
    }
    const auto brokered_route = router.route_dominated(flow.src, flow.dst);
    if (brokered_route.reachable()) {
      ++served_brokered;
      brokered_hops += brokered_route.hops();
      brokered_success +=
          bsr::sim::path_qos_success(qos, brokers, brokered_route.path);
      load.add_route(brokered_route, flow.volume);
    }
  }

  bsr::io::Table table({"Plane", "flows served", "mean hops", "mean QoS success"});
  table.row()
      .cell("BGP-like (shortest path)")
      .cell(static_cast<std::uint64_t>(served_bgp))
      .cell(static_cast<double>(bgp_hops) / served_bgp, 2)
      .percent(bgp_success / served_bgp);
  table.row()
      .cell("Brokered (dominating path)")
      .cell(static_cast<std::uint64_t>(served_brokered))
      .cell(static_cast<double>(brokered_hops) / served_brokered, 2)
      .percent(brokered_success / served_brokered);
  table.print(std::cout);

  const auto summary = load.summarize(brokers);
  std::cout << "\nbroker transit load: total " << std::fixed << std::setprecision(0)
            << summary.total << ", max/mean = "
            << bsr::io::format_double(
                   summary.mean_over_brokers > 0
                       ? summary.max / summary.mean_over_brokers
                       : 0.0,
                   1)
            << ", Gini = " << bsr::io::format_double(summary.gini, 2) << ", "
            << summary.active_brokers << " of " << brokers.size()
            << " brokers active\n"
            << "(a broker *set* spreads the mediation burden that single-"
               "mediator CXP/PCE schemes concentrate — §2 of the paper)\n";
  return 0;
}
