#include "econ/competition.hpp"

#include <cmath>
#include <stdexcept>

#include "econ/bargaining.hpp"

namespace bsr::econ {

double customer_best_utility(const CustomerParams& customer, double coverage,
                             double price, double* best_adoption) {
  // Coverage scales the realizable QoS income: only the covered share of a
  // customer's connections can be sold as premium.
  CustomerParams scaled = customer;
  scaled.v_scale = customer.v_scale * coverage;
  const double a = best_response(scaled, price);
  if (best_adoption != nullptr) *best_adoption = a;
  return customer_utility(scaled, a, price);
}

namespace {

struct Demand {
  double adoption = 0.0;
  double revenue = 0.0;
  std::size_t customers = 0;
};

/// Demand coalition X attracts at prices (px, py): each customer joins the
/// coalition offering higher utility (status quo a0-utility if both lose).
Demand demand_for(const Duopoly& game, bool for_a, double pa, double pb) {
  Demand demand;
  for (const auto& customer : game.customers) {
    double adoption_a = 0.0, adoption_b = 0.0;
    const double ua = customer_best_utility(customer, game.coverage_a, pa, &adoption_a);
    const double ub = customer_best_utility(customer, game.coverage_b, pb, &adoption_b);
    // Outside option: stay at a0 with no premium income (coverage 0) and
    // no brokerage payment — just the legacy routing payment curve.
    const double u0 = customer_legacy_payment(customer, customer.a0);
    const bool picks_a = ua >= ub && ua > u0;
    const bool picks_b = ub > ua && ub > u0;
    if (for_a && picks_a) {
      demand.adoption += adoption_a;
      demand.revenue += 2.0 * pa * adoption_a;
      ++demand.customers;
    } else if (!for_a && picks_b) {
      demand.adoption += adoption_b;
      demand.revenue += 2.0 * pb * adoption_b;
      ++demand.customers;
    }
  }
  return demand;
}

double best_price(const Duopoly& game, bool for_a, double rival_price) {
  const auto profit = [&](double price) {
    return demand_for(game, for_a, for_a ? price : rival_price,
                      for_a ? rival_price : price)
        .revenue;
  };
  constexpr int kGrid = 40;
  double best = 0.0, best_profit = 0.0;
  for (int i = 1; i <= kGrid; ++i) {
    const double price = game.max_price * i / kGrid;
    const double value = profit(price);
    if (value > best_profit) {
      best_profit = value;
      best = price;
    }
  }
  const double cell = game.max_price / kGrid;
  return golden_section_max(profit, std::max(0.0, best - cell),
                            std::min(game.max_price, best + cell), 1e-5);
}

}  // namespace

DuopolyOutcome compete(const Duopoly& game, std::size_t max_rounds, double tolerance) {
  if (game.customers.empty()) throw std::invalid_argument("compete: no customers");
  if (game.coverage_a < 0 || game.coverage_a > 1 || game.coverage_b < 0 ||
      game.coverage_b > 1) {
    throw std::invalid_argument("compete: coverage outside [0, 1]");
  }

  DuopolyOutcome outcome;
  double pa = game.max_price / 2, pb = game.max_price / 2;
  // Damped alternating best responses: undamped Bertrand updates cycle on
  // discrete demand (customers switch coalitions at price thresholds).
  constexpr double kDamping = 0.5;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    ++outcome.rounds;
    const double next_a = pa + kDamping * (best_price(game, true, pb) - pa);
    const double next_b = pb + kDamping * (best_price(game, false, next_a) - pb);
    const bool stable =
        std::abs(next_a - pa) < tolerance && std::abs(next_b - pb) < tolerance;
    pa = next_a;
    pb = next_b;
    if (stable) {
      outcome.converged = true;
      break;
    }
  }
  outcome.price_a = pa;
  outcome.price_b = pb;
  const Demand da = demand_for(game, true, pa, pb);
  const Demand db = demand_for(game, false, pa, pb);
  outcome.adoption_a = da.adoption;
  outcome.adoption_b = db.adoption;
  outcome.profit_a = da.revenue;
  outcome.profit_b = db.revenue;
  outcome.customers_a = da.customers;
  outcome.customers_b = db.customers;
  outcome.customers_none =
      game.customers.size() - da.customers - db.customers;
  return outcome;
}

}  // namespace bsr::econ
