#include "sim/churn.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <tuple>

#include "broker/dominated.hpp"
#include "broker/resilience.hpp"
#include "obs/journal.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"

namespace bsr::sim {

using bsr::broker::BrokerSet;
using bsr::graph::FailureGroup;
using bsr::graph::FaultPlane;
using bsr::graph::NodeId;
using bsr::graph::Rng;

namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

/// Pending heal, earliest first.
struct Heal {
  double time = 0.0;
  std::size_t group = 0;
  friend bool operator>(const Heal& a, const Heal& b) { return a.time > b.time; }
};

}  // namespace

ChurnResult simulate_churn(const bsr::graph::CsrGraph& g, const BrokerSet& initial,
                           const ChurnConfig& config, Rng& rng) {
  return simulate_churn(g, initial, config, LinkChurnConfig{}, {}, rng);
}

ChurnResult simulate_churn(const bsr::graph::CsrGraph& g, const BrokerSet& initial,
                           const ChurnConfig& config, const LinkChurnConfig& link,
                           std::span<const FailureGroup> groups, Rng& rng) {
  BSR_SPAN("sim.churn");
  if (config.departure_rate <= 0.0 || config.repair_interval <= 0.0 ||
      config.horizon <= 0.0) {
    throw std::invalid_argument("simulate_churn: rates/horizon must be positive");
  }
  const bool link_churn = link.outage_rate > 0.0;
  if (link_churn && (groups.empty() || link.mean_downtime <= 0.0)) {
    throw std::invalid_argument(
        "simulate_churn: link churn needs failure groups and positive downtime");
  }

  ChurnResult result;
  BrokerSet current = initial;
  FaultPlane faults(g);
  std::priority_queue<Heal, std::vector<Heal>, std::greater<Heal>> heals;

  // One persistent evaluator for the whole simulation: `current` and
  // `faults` are held by reference and re-read on rebuild(), so per-event
  // connectivity costs a union-find reset + broker-star sweep with zero
  // allocations (the legacy path constructed a fresh UnionFind per event).
  bsr::broker::DominatedEvaluator evaluator(g, current, &faults);

  double now = 0.0;
  double next_departure = rng.exponential(config.departure_rate);
  double next_repair = config.repair_interval;
  double next_outage = link_churn ? rng.exponential(link.outage_rate) : kNever;
  double connectivity = evaluator.connectivity();
  result.min_connectivity = connectivity;
  double weighted_sum = 0.0;

  const auto advance_to = [&](double t) {
    weighted_sum += connectivity * (t - now);
    now = t;
    BSR_EVENT_TIME(t);
  };
  const auto record = [&](ChurnEvent::Kind kind) {
    BSR_COUNT(ChurnEvents);
    BSR_COUNT(ChurnConnectivityEvals);
    evaluator.rebuild();
    connectivity = evaluator.connectivity();
    result.events.push_back({now, kind, current.size(), connectivity,
                             faults.num_failed_edges()});
    result.min_connectivity = std::min(result.min_connectivity, connectivity);
  };

  while (true) {
    const double next_heal = heals.empty() ? kNever : heals.top().time;
    const double next_time =
        std::min(std::min(next_departure, next_repair),
                 std::min(next_outage, next_heal));
    if (next_time > config.horizon) {
      advance_to(config.horizon);
      break;
    }
    advance_to(next_time);

    if (next_heal <= next_time) {
      const Heal heal = heals.top();
      heals.pop();
      faults.heal_group(groups[heal.group]);
      ++result.link_heals;
      BSR_EVENT(ChurnLinkHeal, now, groups[heal.group].center, 0);
      record(ChurnEvent::Kind::kLinkHeal);
    } else if (next_outage <= next_time) {
      const auto group = static_cast<std::size_t>(rng.uniform(groups.size()));
      faults.fail_group(groups[group]);
      heals.push({now + rng.exponential(1.0 / link.mean_downtime), group});
      ++result.link_outages;
      BSR_EVENT(ChurnLinkOutage, now, groups[group].center, 0);
      record(ChurnEvent::Kind::kLinkOutage);
      next_outage = now + rng.exponential(link.outage_rate);
    } else if (next_departure <= next_repair) {
      // One uniformly random broker departs (if any remain).
      if (!current.empty()) {
#if BSR_STATS_ENABLED
        // fail_brokers only returns the survivor set; recover the departed
        // vertex by membership diff — but only while the flight recorder is
        // actually on, so the copy never taxes an unrecorded run.
        std::vector<NodeId> prior;
        if (bsr::obs::recording_enabled()) {
          prior.assign(current.members().begin(), current.members().end());
        }
#endif
        current = bsr::broker::fail_brokers(g, current, 1,
                                            bsr::broker::FailureMode::kRandom, rng);
        ++result.departures;
#if BSR_STATS_ENABLED
        for (const NodeId m : prior) {
          if (!current.contains(m)) BSR_EVENT(ChurnDeparture, now, m, 0);
        }
#endif
        record(ChurnEvent::Kind::kDeparture);
      }
      next_departure = now + rng.exponential(config.departure_rate);
    } else {
      const std::size_t before = current.size();
#if BSR_STATS_ENABLED
      std::vector<NodeId> prior;
      if (bsr::obs::recording_enabled()) {
        prior.assign(current.members().begin(), current.members().end());
      }
#endif
      current = bsr::broker::repair_brokers(g, current, config.repair_budget, faults);
      ++result.repairs;
      result.replacements_added += current.size() - before;
#if BSR_STATS_ENABLED
      if (bsr::obs::recording_enabled() && current.size() > before) {
        for (const NodeId m : current.members()) {
          if (std::find(prior.begin(), prior.end(), m) == prior.end()) {
            BSR_EVENT(ChurnRepair, now, m, 0);
          }
        }
      }
#endif
      record(ChurnEvent::Kind::kRepair);
      next_repair = now + config.repair_interval;
    }
  }

  result.mean_connectivity = weighted_sum / config.horizon;
  return result;
}

// --- health-aware churn -----------------------------------------------------

double HealthChurnResult::mean_detection_latency() const noexcept {
  if (detection_latencies.empty()) return 0.0;
  double sum = 0.0;
  for (const double latency : detection_latencies) sum += latency;
  return sum / static_cast<double>(detection_latencies.size());
}

double HealthChurnResult::false_positive_rate() const noexcept {
  return quarantines == 0 ? 0.0
                          : static_cast<double>(false_quarantines) /
                                static_cast<double>(quarantines);
}

double HealthChurnResult::mean_time_to_recover() const noexcept {
  if (recovery_times.empty()) return 0.0;
  double sum = 0.0;
  for (const double t : recovery_times) sum += t;
  return sum / static_cast<double>(recovery_times.size());
}

namespace {

/// Pre-drawn ground-truth event: the physical world's timeline, fixed
/// before the detector runs so health-config sweeps replay identical damage.
struct GroundTruthEvent {
  double time = 0.0;
  enum class Kind : std::uint8_t { kDeparture, kReturn, kOutage, kLinkHeal } kind =
      Kind::kDeparture;
  bsr::graph::NodeId vertex = 0;  // kDeparture / kReturn
  std::size_t group = 0;          // kOutage / kLinkHeal
};

/// An exposed departure awaiting the oracle pair count to climb back to its
/// pre-departure baseline.
struct PendingRecovery {
  double time = 0.0;
  std::uint64_t baseline_pairs = 0;
};

}  // namespace

HealthChurnResult simulate_churn_with_health(
    const bsr::graph::CsrGraph& g, const BrokerSet& initial,
    const HealthChurnConfig& config, const LinkChurnConfig& link,
    std::span<const FailureGroup> groups, const HealthConfig& health,
    const RepairPolicy& repair, Rng& rng) {
  BSR_SPAN("sim.churn.health");
  if (config.horizon <= 0.0 || config.departure_rate < 0.0 ||
      config.mean_return_time < 0.0) {
    throw std::invalid_argument(
        "simulate_churn_with_health: horizon must be positive, rates non-negative");
  }
  if (initial.empty()) {
    throw std::invalid_argument(
        "simulate_churn_with_health: need a non-empty initial broker set");
  }
  const bool link_churn = link.outage_rate > 0.0;
  if (link_churn && (groups.empty() || link.mean_downtime <= 0.0)) {
    throw std::invalid_argument(
        "simulate_churn_with_health: link churn needs failure groups and "
        "positive downtime");
  }

  // Fixed draw order: one forked stream for the whole ground-truth timeline,
  // then one uint64 for probe jitter. Nothing later touches `rng`, so the
  // physical world is a pure function of (seed, rates) — independent of
  // every health/repair knob.
  Rng fault_rng = rng.fork();
  const std::uint64_t jitter_seed = rng();

  std::vector<GroundTruthEvent> timeline;
  if (config.departure_rate > 0.0) {
    double t = fault_rng.exponential(config.departure_rate);
    while (t < config.horizon) {
      const NodeId victim = initial.members()[fault_rng.uniform(initial.size())];
      timeline.push_back({t, GroundTruthEvent::Kind::kDeparture, victim, 0});
      if (config.mean_return_time > 0.0) {
        const double back = t + fault_rng.exponential(1.0 / config.mean_return_time);
        if (back < config.horizon) {
          timeline.push_back({back, GroundTruthEvent::Kind::kReturn, victim, 0});
        }
      }
      t += fault_rng.exponential(config.departure_rate);
    }
  }
  if (link_churn) {
    graph::FlapConfig flaps;
    flaps.outage_rate = link.outage_rate;
    flaps.mean_downtime = link.mean_downtime;
    flaps.horizon = config.horizon;
    for (const graph::FlapEvent& event :
         graph::make_flap_schedule(groups.size(), flaps, fault_rng)) {
      if (event.time >= config.horizon) continue;
      timeline.push_back({event.time,
                          event.kind == graph::FlapEvent::Kind::kFail
                              ? GroundTruthEvent::Kind::kOutage
                              : GroundTruthEvent::Kind::kLinkHeal,
                          0, event.group});
    }
  }
  std::sort(timeline.begin(), timeline.end(),
            [](const GroundTruthEvent& a, const GroundTruthEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.kind != b.kind) return a.kind < b.kind;
              return std::tie(a.vertex, a.group) < std::tie(b.vertex, b.group);
            });

  const NodeId n = g.num_vertices();
  HealthChurnResult result;
  BrokerSet current = initial;
  FaultPlane plane(g);
  HealthMonitor monitor(g, current, plane, health,
                        HealthMonitor::choose_vantage(g, initial), jitter_seed);
  RepairScheduler scheduler(repair);

  // `believed` mirrors the in-force (delay-lagged) view's routable members;
  // both evaluators read the damaged graph, so the believed number is the
  // connectivity traffic actually gets when routed by belief.
  BrokerSet believed = current;
  bsr::broker::DominatedEvaluator oracle_eval(g, current, &plane);
  bsr::broker::DominatedEvaluator believed_eval(g, believed, &plane);
  // The *promise*: the believed set on the pristine graph. Belief carries no
  // fault knowledge, so this is the connectivity the control plane is
  // implicitly advertising; the believed_eval number is what traffic gets.
  bsr::broker::DominatedEvaluator promised_eval(g, believed, nullptr);

  std::size_t active_view = 0;       // index into monitor.views()
  std::size_t seen_transitions = 0;  // transitions already post-processed
  // Episode of the quarantine that most recently armed the repair scheduler
  // (journal correlation only, hence gated with the stats plane).
  BSR_STATS_ONLY(std::uint64_t repair_episode = 0;)
  std::vector<double> down_since(n, kNever);
  std::vector<bool> credited(n, false);  // this outage episode already timed

  double now = 0.0;
  double oracle_conn = oracle_eval.connectivity();
  double believed_conn = believed_eval.connectivity();
  double promised_conn = promised_eval.connectivity();
  double oracle_weighted = 0.0, believed_weighted = 0.0;
  std::vector<PendingRecovery> pending_recoveries;
  std::size_t recovery_head = 0;  // FIFO drain position
  const auto drain_recoveries = [&]() {
    const std::uint64_t pairs = oracle_eval.uf().connected_pairs();
    while (recovery_head < pending_recoveries.size() &&
           pairs >= pending_recoveries[recovery_head].baseline_pairs) {
      result.recovery_times.push_back(now -
                                      pending_recoveries[recovery_head].time);
      ++recovery_head;
    }
  };

  const auto segment_costs = [&](double dt) {
    // Per-broker belief-vs-truth mismatch, integrated over the segment.
    const HealthView& view = monitor.views()[active_view];
    for (const NodeId m : current.members()) {
      const bool down = !plane.vertex_ok(m);
      const bool routable = view.routable_broker(m);
      if (down && routable) result.dead_routable_time += dt;
      if (!down && !routable) result.shunned_up_time += dt;
    }
  };
  const auto advance_to = [&](double t) {
    const double dt = t - now;
    oracle_weighted += oracle_conn * dt;
    believed_weighted += believed_conn * dt;
    result.misrouting_pair_exposure +=
        std::max(0.0, promised_conn - believed_conn) * dt;
    segment_costs(dt);
    now = t;
    BSR_EVENT_TIME(t);
  };
  const auto rebuild_believed = [&]() {
    BSR_COUNT_N(ChurnConnectivityEvals, 2);
    const HealthView& view = monitor.views()[active_view];
    std::vector<NodeId> routable;
    routable.reserve(current.size());
    for (const NodeId m : current.members()) {
      if (view.routable_broker(m)) routable.push_back(m);
    }
    believed = BrokerSet(n, routable);
    believed_eval.rebuild();
    believed_conn = believed_eval.connectivity();
    promised_eval.rebuild();
    promised_conn = promised_eval.connectivity();
  };

  std::size_t next_fault = 0;
  while (true) {
    const double fault_time =
        next_fault < timeline.size() ? timeline[next_fault].time : kNever;
    const double monitor_time = monitor.next_event_time();
    const double view_time =
        active_view + 1 < monitor.views().size()
            ? monitor.views()[active_view + 1].published_at + health.propagation_delay
            : kNever;
    const double repair_time = scheduler.next_due();
    const double t = std::min(std::min(fault_time, monitor_time),
                              std::min(view_time, repair_time));
    if (t > config.horizon) {
      advance_to(config.horizon);
      break;
    }
    advance_to(t);

    // Fixed priority at equal times: the world changes, then the detector
    // observes, then stale views land, then the operator repairs.
    if (fault_time <= t) {
      BSR_COUNT(ChurnEvents);
      const GroundTruthEvent& event = timeline[next_fault++];
      // Baseline for departure classification: the oracle pair count the
      // world had the instant before this event landed.
      const std::uint64_t prev_pairs = oracle_eval.uf().connected_pairs();
      bool classify_departure = false;
      std::uint64_t inevitable_loss = 0;
      switch (event.kind) {
        case GroundTruthEvent::Kind::kDeparture:
          if (plane.fail_vertex(event.vertex)) {
            down_since[event.vertex] = t;
            credited[event.vertex] = false;
            classify_departure = true;
            // Pairs involving the departed vertex itself are lost no matter
            // how redundant the selection is — the classification below only
            // charges the selection for severing *third-party* pairs.
            inevitable_loss =
                oracle_eval.uf().component_size(event.vertex) - 1;
          }
          ++result.departures;
          BSR_EVENT(ChurnDeparture, t, event.vertex, 0);
          break;
        case GroundTruthEvent::Kind::kReturn:
          if (plane.heal_vertex(event.vertex)) {
            down_since[event.vertex] = kNever;
            credited[event.vertex] = false;
          }
          ++result.returns;
          BSR_EVENT(ChurnReturn, t, event.vertex, 0);
          break;
        case GroundTruthEvent::Kind::kOutage:
          plane.fail_group(groups[event.group]);
          ++result.link_outages;
          BSR_EVENT(ChurnLinkOutage, t, groups[event.group].center, 0);
          break;
        case GroundTruthEvent::Kind::kLinkHeal:
          plane.heal_group(groups[event.group]);
          ++result.link_heals;
          BSR_EVENT(ChurnLinkHeal, t, groups[event.group].center, 0);
          break;
      }
      BSR_COUNT_N(ChurnConnectivityEvals, 2);
      oracle_eval.rebuild();
      oracle_conn = oracle_eval.connectivity();
      believed_eval.rebuild();  // physical edges changed under the same belief
      believed_conn = believed_eval.connectivity();
      if (classify_departure) {
        // Absorbed: every *surviving* pair the coalition served still has a
        // dominating path through the survivors — exactly what an
        // r-redundant selection buys. Exposed: third-party pairs were
        // severed; remember the survivable baseline so the first rebuild
        // that restores it closes the recovery episode.
        const std::uint64_t baseline = prev_pairs - inevitable_loss;
        const std::uint64_t new_pairs = oracle_eval.uf().connected_pairs();
        if (new_pairs >= baseline) {
          ++result.absorbed_departures;
          BSR_EVENT(SelectionRobustAbsorbed, t, event.vertex, 0);
        } else {
          ++result.exposed_departures;
          BSR_EVENT(SelectionRobustExposed, t, event.vertex,
                    baseline - new_pairs);
          pending_recoveries.push_back({t, baseline});
        }
      }
      drain_recoveries();  // a return / link heal may have restored pairs
    } else if (monitor_time <= t) {
      monitor.advance(t);
      const auto transitions = monitor.transitions();
      for (; seen_transitions < transitions.size(); ++seen_transitions) {
        const HealthTransition& tr = transitions[seen_transitions];
        if (tr.to != HealthState::kQuarantined) continue;
        scheduler.request(t);
        // The episode that armed the scheduler; the eventual repair attempt
        // journals under it, closing the probe -> quarantine -> repair chain.
        BSR_STATS_ONLY(repair_episode = tr.episode;)
        BSR_EVENT(RepairRequest, t, tr.broker, tr.episode);
        if (down_since[tr.broker] != kNever && !credited[tr.broker]) {
          result.detection_latencies.push_back(t - down_since[tr.broker]);
          credited[tr.broker] = true;
        }
      }
    } else if (view_time <= t) {
      ++active_view;
      rebuild_believed();
    } else {
      // Repair recruits on the damaged graph, from the brokers the operator
      // *believes* are alive — not from oracle truth.
      const BrokerSet repaired =
          bsr::broker::repair_brokers(g, believed, repair.budget, plane);
      std::uint32_t recruited = 0;
      for (const NodeId m : repaired.members()) {
        if (current.contains(m)) continue;
        current.add(m);
        monitor.add_broker(m, t);
        ++recruited;
        BSR_EVENT(RepairRecruit, t, m, repair_episode);
      }
      BSR_EVENT(RepairAttempt, t, recruited, repair_episode);
      scheduler.report(t, recruited);
      result.replacements_added += recruited;
      if (recruited > 0) {
        BSR_COUNT(ChurnConnectivityEvals);
        oracle_eval.rebuild();
        oracle_conn = oracle_eval.connectivity();
        drain_recoveries();
      }
    }
  }

  result.probe_rounds = monitor.probe_rounds();
  result.views_published = monitor.views().size();
  result.quarantines = monitor.quarantines();
  result.false_quarantines = monitor.false_quarantines();
  result.repair_attempts = scheduler.attempts();
  result.failed_repair_attempts = scheduler.failed_attempts();
  const auto transitions = monitor.transitions();
  result.transitions.assign(transitions.begin(), transitions.end());
  result.mean_oracle_connectivity = oracle_weighted / config.horizon;
  result.mean_believed_connectivity = believed_weighted / config.horizon;
  return result;
}

}  // namespace bsr::sim
