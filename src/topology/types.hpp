// Node metadata for the AS-level Internet topology.
//
// The paper classifies brokers by offered service (Table 5 / Fig. 5a) using
// the taxonomy of [33]: transit/access providers, content networks,
// enterprise networks, and IXPs treated as independent entities.
#pragma once

#include <cstdint>
#include <string_view>

namespace bsr::topology {

enum class NodeType : std::uint8_t {
  kTransitAccess,  // "T/A" — ISPs selling transit and/or access
  kContent,        // "C"   — content providers / CDNs
  kEnterprise,     // "E"   — enterprise / stub business networks
  kIxp,            // independent Internet eXchange Point entity
};

[[nodiscard]] constexpr std::string_view to_string(NodeType type) noexcept {
  switch (type) {
    case NodeType::kTransitAccess: return "T/A";
    case NodeType::kContent: return "C";
    case NodeType::kEnterprise: return "E";
    case NodeType::kIxp: return "IXP";
  }
  return "?";
}

/// AS hierarchy level. Tier 1 forms the peering clique at the top; stubs buy
/// transit only. IXPs carry kTierNone.
enum class Tier : std::uint8_t {
  kTierNone = 0,  // IXPs
  kTier1 = 1,
  kTier2 = 2,
  kTier3 = 3,
  kStub = 4,
};

struct NodeMeta {
  NodeType type = NodeType::kEnterprise;
  Tier tier = Tier::kStub;
};

}  // namespace bsr::topology
