#include "graph/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace bsr::graph {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 500; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(Rng, UniformOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformInInclusiveBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, Uniform01InHalfOpenUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kTrials, 0.5, 0.01);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialPositiveAndMeanMatches) {
  Rng rng(29);
  double sum = 0.0;
  constexpr int kTrials = 40000;
  for (int i = 0; i < kTrials; ++i) {
    const double x = rng.exponential(2.0);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kTrials, 0.5, 0.02);  // mean = 1/rate
}

TEST(Rng, ParetoStaysInBounds) {
  Rng rng(31);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.pareto(0.8, 2.0, 50.0);
    ASSERT_GE(x, 2.0 * (1 - 1e-9));
    ASSERT_LE(x, 50.0 * (1 + 1e-9));
  }
}

TEST(Rng, ParetoIsHeavyTailed) {
  // Median should sit far below the midpoint of [lo, hi].
  Rng rng(37);
  std::vector<double> draws;
  for (int i = 0; i < 4001; ++i) draws.push_back(rng.pareto(1.0, 1.0, 1000.0));
  std::nth_element(draws.begin(), draws.begin() + 2000, draws.end());
  EXPECT_LT(draws[2000], 10.0);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitMixIsDeterministic) {
  std::uint64_t s1 = 99, s2 = 99;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace bsr::graph
