#include "obs/export.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace bsr::obs {

namespace {

/// Shortest round-trip decimal for a double — the only formatting whose
/// bytes are a pure function of the value, which the byte-identity contract
/// (same seed, any BSR_THREADS) depends on. Locale-independent by
/// construction, unlike ostream's `<<`.
void put_double(std::ostream& os, double value) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  os.write(buf, ptr - buf);
  static_cast<void>(ec);  // shortest form always fits in 32 chars
}

/// Simulated time -> trace_event timestamp: microseconds, rounded to an
/// integer tick so Perfetto gets monotone integral timestamps.
std::int64_t trace_ts(double t) {
  return static_cast<std::int64_t>(std::llround(t * 1e6));
}

void json_histogram(std::ostream& os, const Snapshot& snap, Histogram h) {
  const auto& buckets = snap.histograms[static_cast<std::size_t>(h)];
  os << "{\"total\": " << snap.histogram_total(h) << ", \"buckets\": [";
  bool first = true;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (!first) os << ", ";
    os << "[" << b << ", " << buckets[b] << "]";
    first = false;
  }
  os << "]}";
}

}  // namespace

void write_json(std::ostream& os, const Snapshot& snap) {
  os << "{\n  \"obs_schema_version\": " << kSchemaVersion
     << ",\n  \"stats_enabled\": " << (snap.enabled ? "true" : "false")
     << ",\n  \"work_units\": " << work_units(snap) << ",\n  \"counters\": {";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \"" << name(static_cast<Counter>(i))
       << "\": " << snap.counters[i];
  }
  os << "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \"" << name(static_cast<Gauge>(i))
       << "\": " << snap.gauges[i];
  }
  os << "\n  },\n  \"histograms\": {";
  for (std::size_t i = 0; i < kNumHistograms; ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \"" << name(static_cast<Histogram>(i))
       << "\": ";
    json_histogram(os, snap, static_cast<Histogram>(i));
  }
  os << "\n  }\n}\n";
}

void dump_pretty(std::ostream& os, const Snapshot& snap) {
  if (!snap.enabled) {
    os << "telemetry: compiled out (build with -DBSR_STATS=ON)\n";
    return;
  }
  struct Line {
    std::string name;
    std::string value;
  };
  std::vector<Line> lines;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (snap.counters[i] == 0) continue;
    lines.push_back({std::string(name(static_cast<Counter>(i))),
                     std::to_string(snap.counters[i])});
  }
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    if (snap.gauges[i] == 0) continue;
    lines.push_back({std::string(name(static_cast<Gauge>(i))),
                     std::to_string(snap.gauges[i]) + " (max)"});
  }
  for (std::size_t i = 0; i < kNumHistograms; ++i) {
    const auto h = static_cast<Histogram>(i);
    const std::uint64_t total = snap.histogram_total(h);
    if (total == 0) continue;
    const auto& buckets = snap.histograms[i];
    std::string detail = std::to_string(total) + " obs:";
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (buckets[b] == 0) continue;
      // Bucket label: the inclusive lower bound of the value range.
      const std::uint64_t lo = b == 0 ? 0 : (std::uint64_t{1} << (b - 1));
      detail += " [" + std::to_string(lo) + "]x" + std::to_string(buckets[b]);
    }
    lines.push_back({std::string(name(h)), std::move(detail)});
  }
  if (lines.empty()) {
    os << "telemetry: no activity recorded\n";
    return;
  }
  std::size_t width = 0;
  for (const Line& line : lines) width = std::max(width, line.name.size());
  os << "telemetry (schema v" << kSchemaVersion << ", work units "
     << work_units(snap) << ")\n";
  for (const Line& line : lines) {
    os << "  " << line.name << std::string(width - line.name.size() + 2, ' ')
       << line.value << "\n";
  }
}

void write_chrome_trace(std::ostream& os, std::span<const SpanRecord> spans) {
  os << "{\"traceEvents\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    os << (i == 0 ? "\n" : ",\n") << "  {\"name\": \"" << span.name
       << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": 1, \"ts\": "
       << span.start_ns / 1000 << ", \"dur\": " << span.duration_ns / 1000
       << ", \"args\": {\"work_units\": " << span.work_units;
    for (const auto& [counter, moved] : span.counter_deltas) {
      os << ", \"" << name(counter) << "\": " << moved;
    }
    os << "}}";
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

void write_events_jsonl(std::ostream& os, const Journal& journal) {
  os << "{\"schema\": \"" << kEventSchema
     << "\", \"events\": " << journal.events.size()
     << ", \"dropped\": " << journal.dropped << "}\n";
  for (const EventRecord& rec : journal.events) {
    os << "{\"t\": ";
    put_double(os, rec.time);
    os << ", \"type\": \"" << name(rec.type) << "\", \"subject\": "
       << rec.subject << ", \"corr\": " << rec.correlation << "}\n";
  }
}

void write_series_csv(std::ostream& os, std::span<const SeriesRow> rows) {
  os << "round,t_begin,t_end";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    os << "," << name(static_cast<Counter>(i));
  }
  os << "\n";
  for (const SeriesRow& row : rows) {
    os << row.round << ",";
    put_double(os, row.t_begin);
    os << ",";
    put_double(os, row.t_end);
    for (std::size_t i = 0; i < kNumCounters; ++i) os << "," << row.deltas[i];
    os << "\n";
  }
}

namespace {

/// Answer-tag names indexed by sim::AnswerStatus value. The obs layer sits
/// below sim, so the convention is re-stated here (and pinned by a test)
/// rather than included.
constexpr std::array<std::string_view, 4> kAnswerTagNames = {
    "fresh", "stale_served", "shedded", "refused"};

std::string_view answer_tag(std::uint8_t status) {
  return status < kAnswerTagNames.size() ? kAnswerTagNames[status] : "unknown";
}

}  // namespace

void write_qtrace_jsonl(std::ostream& os, const QtraceSnapshot& snap) {
  os << "{\"schema\": \"" << kQtraceSchema
     << "\", \"rows\": " << snap.rows.size()
     << ", \"dropped\": " << snap.dropped << "}\n";
  for (const QueryTraceRow& row : snap.rows) {
    os << "{\"id\": " << row.trace_id << ", \"t\": ";
    put_double(os, row.time);
    os << ", \"epoch\": " << row.epoch << ", \"corr\": " << row.correlation
       << ", \"src\": " << row.src << ", \"dst\": " << row.dst
       << ", \"tag\": \"" << answer_tag(row.status)
       << "\", \"reachable\": " << (row.reachable ? "true" : "false")
       << ", \"dist\": " << row.dist_bound << ", \"stale\": "
       << row.stale_behind << ", \"ticks\": {\"admit\": " << row.admit_ticks
       << ", \"lookup\": " << row.lookup_ticks
       << ", \"stitch\": " << row.stitch_ticks << "}}\n";
  }
}

void write_qtrace_chrome_trace(std::ostream& os, const QtraceSnapshot& snap) {
  os << "{\"traceEvents\": [";
  bool first = true;
  for (const QueryTraceRow& row : snap.rows) {
    os << (first ? "\n" : ",\n");
    first = false;
    const std::uint64_t total_ticks = std::uint64_t{row.admit_ticks} +
                                      row.lookup_ticks + row.stitch_ticks;
    os << "  {\"name\": \"" << answer_tag(row.status)
       << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << row.epoch
       << ", \"ts\": " << trace_ts(row.time)
       << ", \"dur\": " << total_ticks << ", \"args\": {\"id\": "
       << row.trace_id << ", \"corr\": " << row.correlation
       << ", \"src\": " << row.src << ", \"dst\": " << row.dst
       << ", \"dist\": " << row.dist_bound << ", \"stale\": "
       << row.stale_behind << ", \"admit_ticks\": " << row.admit_ticks
       << ", \"lookup_ticks\": " << row.lookup_ticks
       << ", \"stitch_ticks\": " << row.stitch_ticks << "}}";
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

void write_slo_json(std::ostream& os, const SloReport& report) {
  os << "{\n  \"slo_schema\": \"" << kSloSchema << "\",\n  \"ok\": "
     << (report.ok() ? "true" : "false")
     << ",\n  \"in_breach\": " << (report.in_breach ? "true" : "false")
     << ",\n  \"samples\": " << report.samples
     << ",\n  \"breaches\": " << report.breaches
     << ",\n  \"recovers\": " << report.recovers << ",\n  \"spec\": {";
  os << "\"window\": ";
  put_double(os, report.spec.window);
  os << ", \"long_window\": ";
  put_double(os, report.spec.long_window);
  os << ", \"burn_threshold\": ";
  put_double(os, report.spec.burn_threshold);
  os << "},\n  \"objectives\": [";
  bool first = true;
  for (const SloObjectiveReport& obj : report.objectives) {
    if (!obj.enabled) continue;
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"name\": \"" << obj.name << "\", \"target\": ";
    put_double(os, obj.target);
    os << ", \"worst_short_burn\": ";
    put_double(os, obj.worst_short_burn);
    os << ", \"worst_long_burn\": ";
    put_double(os, obj.worst_long_burn);
    os << ", \"breach_samples\": " << obj.breach_samples
       << ", \"first_breach_t\": ";
    put_double(os, obj.first_breach_time);
    os << "}";
  }
  os << "\n  ]\n}\n";
}

void write_episodes_jsonl(std::ostream& os, const EpisodeReport& report) {
  os << "{\"schema\": \"" << kEpisodeSchema
     << "\", \"episodes\": " << report.episodes.size()
     << ", \"journal_dropped\": " << report.journal_dropped
     << ", \"qtrace_dropped\": " << report.qtrace_dropped
     << ", \"malformed\": " << report.malformed
     << ", \"unattributed\": " << report.unattributed << "}\n";
  for (const Episode& ep : report.episodes) {
    os << "{\"kind\": \"" << to_string(ep.kind) << "\", \"id\": " << ep.id
       << ", \"subject\": " << ep.subject << ", \"open\": ";
    put_double(os, ep.open_time);
    os << ", \"close\": ";
    put_double(os, ep.close_time);
    os << ", \"closed\": " << (ep.closed ? "true" : "false")
       << ", \"truncated\": " << (ep.truncated ? "true" : "false")
       << ", \"exposure\": ";
    put_double(os, ep.span());
    os << ", \"phases\": {";
    for (std::size_t p = 0; p < kNumEpisodePhases; ++p) {
      os << (p == 0 ? "" : ", ") << "\""
         << to_string(static_cast<EpisodePhase>(p)) << "\": ";
      put_double(os, ep.phases[p]);
    }
    os << "}, \"attempts\": " << ep.attempts
       << ", \"failures\": " << ep.failures
       << ", \"gave_up\": " << (ep.gave_up ? "true" : "false")
       << ", \"stale_served\": " << ep.stale_served
       << ", \"shedded\": " << ep.shedded << ", \"refused\": " << ep.refused
       << "}\n";
  }
}

void write_episode_chrome_trace(std::ostream& os, const EpisodeReport& report) {
  os << "{\"traceEvents\": [";
  bool first = true;
  const auto sep = [&] {
    os << (first ? "\n" : ",\n");
    first = false;
  };
  sep();
  os << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 1, "
        "\"args\": {\"name\": \"health plane\"}}";
  sep();
  os << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 2, "
        "\"args\": {\"name\": \"serve plane\"}}";
  for (const Episode& ep : report.episodes) {
    const int tid = ep.kind == EpisodeKind::kHealth ? 1 : 2;
    // The enclosing episode slice, then its exact phase partition nested
    // inside (same track, contained timestamps).
    sep();
    os << "  {\"name\": \"episode " << to_string(ep.kind) << "#" << ep.id
       << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << tid
       << ", \"ts\": " << trace_ts(ep.open_time)
       << ", \"dur\": " << trace_ts(ep.close_time) - trace_ts(ep.open_time)
       << ", \"args\": {\"subject\": " << ep.subject
       << ", \"closed\": " << (ep.closed ? "true" : "false")
       << ", \"truncated\": " << (ep.truncated ? "true" : "false")
       << ", \"attempts\": " << ep.attempts
       << ", \"failures\": " << ep.failures
       << ", \"stale_served\": " << ep.stale_served
       << ", \"shedded\": " << ep.shedded << ", \"refused\": " << ep.refused
       << "}}";
    for (const PhaseSlice& slice : ep.slices) {
      sep();
      os << "  {\"name\": \"" << to_string(slice.phase)
         << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << tid
         << ", \"ts\": " << trace_ts(slice.begin)
         << ", \"dur\": " << trace_ts(slice.end) - trace_ts(slice.begin)
         << ", \"args\": {\"kind\": \"" << to_string(ep.kind)
         << "\", \"id\": " << ep.id << "}}";
    }
  }
  // Flow arrows from the health-plane episode that was live when a serve
  // episode opened to that serve episode — the cross-plane causal link.
  std::uint64_t flow_id = 0;
  for (const Episode& serve : report.episodes) {
    if (serve.kind != EpisodeKind::kServe) continue;
    for (const Episode& health : report.episodes) {
      if (health.kind != EpisodeKind::kHealth) continue;
      if (serve.open_time < health.open_time ||
          serve.open_time > health.close_time) {
        continue;
      }
      ++flow_id;
      sep();
      os << "  {\"name\": \"episode\", \"cat\": \"episode\", \"ph\": \"s\", "
            "\"id\": "
         << flow_id << ", \"pid\": 1, \"tid\": 1, \"ts\": "
         << trace_ts(serve.open_time) << "}";
      sep();
      os << "  {\"name\": \"episode\", \"cat\": \"episode\", \"ph\": \"f\", "
            "\"bp\": \"e\", \"id\": "
         << flow_id << ", \"pid\": 1, \"tid\": 2, \"ts\": "
         << trace_ts(serve.open_time) << "}";
    }
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

void write_journal_chrome_trace(std::ostream& os, const Journal& journal,
                                std::span<const SeriesRow> rows) {
  os << "{\"traceEvents\": [";
  bool first = true;
  const auto sep = [&] {
    os << (first ? "\n" : ",\n");
    first = false;
  };
  for (const EventRecord& rec : journal.events) {
    sep();
    os << "  {\"name\": \"" << name(rec.type)
       << "\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \"tid\": 1, \"ts\": "
       << trace_ts(rec.time) << ", \"args\": {\"subject\": " << rec.subject
       << ", \"corr\": " << rec.correlation << ", \"seq\": " << rec.seq
       << "}}";
  }
  // One counter track per slot that moved anywhere in the series; each round
  // contributes one sample at its start, holding the round's delta.
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const bool moved = std::any_of(
        rows.begin(), rows.end(),
        [i](const SeriesRow& row) { return row.deltas[i] != 0; });
    if (!moved) continue;
    for (const SeriesRow& row : rows) {
      sep();
      os << "  {\"name\": \"" << name(static_cast<Counter>(i))
         << "\", \"ph\": \"C\", \"pid\": 1, \"ts\": " << trace_ts(row.t_begin)
         << ", \"args\": {\"delta\": " << row.deltas[i] << "}}";
    }
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

}  // namespace bsr::obs
