#include "graph/bfs.hpp"

#include <algorithm>

#include "graph/check.hpp"
#include "graph/engine.hpp"

namespace bsr::graph {

std::span<const std::uint32_t> BfsRunner::export_dense() {
  for (const NodeId v : touched_) dist_[v] = kUnreachable;
  const auto order = ws_.visit_order();
  touched_.assign(order.begin(), order.end());
  for (const NodeId v : touched_) dist_[v] = ws_.dist_unchecked(v);
  return dist_;
}

std::span<const std::uint32_t> BfsRunner::run(const CsrGraph& g, NodeId source) {
  // A runner sized for a smaller graph would write dist_ out of bounds.
  BSR_DCHECK(g.num_vertices() <= dist_.size());
  engine::bfs(g, source, ws_, engine::AllEdges{});
  return export_dense();
}

std::span<const std::uint32_t> BfsRunner::run_filtered(
    const CsrGraph& g, NodeId source,
    const std::function<bool(NodeId, NodeId)>& edge_ok) {
  BSR_DCHECK(g.num_vertices() <= dist_.size());
  engine::bfs(g, source, ws_, engine::FnFilter{&edge_ok});
  return export_dense();
}

std::span<const std::uint32_t> BfsRunner::run_bounded(const CsrGraph& g, NodeId source,
                                                      std::uint32_t max_depth) {
  BSR_DCHECK(g.num_vertices() <= dist_.size());
  engine::bfs_bounded(g, source, max_depth, ws_, engine::AllEdges{});
  return export_dense();
}

std::vector<std::uint32_t> bfs_distances(const CsrGraph& g, NodeId source) {
  auto& ws = engine::tls_workspace();
  engine::bfs(g, source, ws, engine::AllEdges{});
  std::vector<std::uint32_t> dense(g.num_vertices(), kUnreachable);
  for (const NodeId v : ws.visit_order()) dense[v] = ws.dist_unchecked(v);
  return dense;
}

std::vector<NodeId> bfs_shortest_path(const CsrGraph& g, NodeId source, NodeId target) {
  BSR_DCHECK(source < g.num_vertices() && target < g.num_vertices());
  if (source == target) return {source};
  auto& ws = engine::tls_workspace();
  engine::bfs(g, source, ws, engine::AllEdges{});
  if (!ws.visited(target)) return {};
  std::vector<NodeId> path{target};
  for (NodeId w = target; w != source; w = ws.parent(w)) path.push_back(ws.parent(w));
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace bsr::graph
