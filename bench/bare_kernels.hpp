// Uninstrumented twins of the hottest kernels, for perf_obs's baseline.
//
// These are NOT hand-maintained copies: bare_kernels.cpp recompiles the
// actual library sources (graph/engine.hpp's bfs, broker/maxsg.cpp) in a TU
// with BSR_OBS_FORCE_OFF defined, so "bare" is the same token stream with
// only the telemetry macros expanded to nothing. The entry points are
// renamed by the preprocessor so their symbols can't be linker-folded into
// the instrumented instantiations — the comparison stays two distinct
// compilations of one source.
#pragma once

#include <cstdint>
#include <span>

#include "broker/broker_set.hpp"
#include "broker/maxsg.hpp"
#include "graph/engine.hpp"
#include "route_lifecycle.hpp"
#include "sim/demand.hpp"

namespace bare {

/// engine::bfs<FaultAwareFilter> with the telemetry compiled out.
void bfs(const bsr::graph::CsrGraph& g, bsr::graph::NodeId source,
         bsr::graph::engine::Workspace& ws,
         bsr::graph::engine::FaultAwareFilter admit);

/// broker::maxsg with the telemetry compiled out.
[[nodiscard]] bsr::broker::MaxSgResult maxsg(const bsr::graph::CsrGraph& g,
                                             std::uint32_t k);

/// The full route-service lifecycle (bench/route_lifecycle.hpp) running on a
/// sim::RouteService recompiled with the telemetry compiled out. Returns the
/// FNV answer digest (checked against the instrumented twin) and the
/// serve-phase wall time.
[[nodiscard]] bsr::bench::RouteLifecycleResult route_lifecycle(
    const bsr::graph::CsrGraph& g, const bsr::broker::BrokerSet& brokers,
    std::span<const bsr::sim::Flow> flows, int serve_reps);

}  // namespace bare
