// Zero-overhead work-counter registry for the telemetry plane.
//
// Every hot layer (engine kernels, rollback union-find, broker selection,
// the churn/health/router sims) reports what it *did* — edges scanned, gain
// evaluations, probes sent — through the fixed-slot registry declared here.
// The design goals, in order:
//
//   1. An OFF build costs literally nothing. Every BSR_COUNT / BSR_GAUGE /
//      BSR_HISTO site compiles to an empty statement when BSR_STATS is not
//      defined (CMake -DBSR_STATS=OFF), so hot objects reference zero obs
//      symbols and binaries are unchanged modulo the obs library itself.
//   2. An ON build is cheap enough to leave on. Accumulation is a plain
//      (non-atomic) add into a thread-local block — no locks, no contention,
//      no false sharing. The hottest loops accumulate into a stack-local
//      integer under BSR_STATS_ONLY() and flush once per kernel call, so the
//      per-edge cost is one register increment that folds into the scan.
//   3. Enabling stats never perturbs results. Counters are write-only from
//      the algorithms' perspective; nothing reads them back on any decision
//      path. Per-thread blocks are merged in registration (shard) order with
//      integer-only commutative merges (sum for counters/histograms, max for
//      gauges), so snapshots are bit-identical at any BSR_THREADS value.
//
// Naming convention: `layer.component.metric` (e.g. engine.bfs.edges_scanned).
// To add a counter, append one X(...) line to the table below — the enum,
// name table, and work-unit flag stay in sync by construction. Slots are
// fixed at compile time; there is no dynamic registration.
//
// Threading contract: snapshot()/reset() may only run while worker threads
// are quiescent (engine::for_each_shard joins before returning, so any
// point between engine calls qualifies). Worker threads that exit flush
// their block into a retired accumulator, so counts survive thread churn.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

// BSR_OBS_FORCE_OFF compiles a single TU as if the whole build were
// BSR_STATS=OFF. bench/bare_kernels.cpp uses it to recompile the hot kernels
// with the telemetry deleted — the uninstrumented twins perf_obs prices the
// instrumented library against. Define it before any include.
#if defined(BSR_STATS) && BSR_STATS && !defined(BSR_OBS_FORCE_OFF)
#define BSR_STATS_ENABLED 1
#else
#define BSR_STATS_ENABLED 0
#endif

namespace bsr::obs {

/// Version of the exported snapshot schema (bump on breaking changes to the
/// JSON layout or to counter semantics).
inline constexpr int kSchemaVersion = 1;

// --- fixed-slot id tables ---------------------------------------------------
// X(EnumId, "layer.component.metric", is_work_unit)
// A *work unit* is a machine-independent measure of algorithmic work (edges
// scanned, probes sent, ...) — the deterministic dimension traces and BENCH
// files are compared on across hosts.

#define BSR_OBS_COUNTER_TABLE(X)                                   \
  X(EngineBfsRuns, "engine.bfs.runs", false)                       \
  X(EngineBfsEdgesScanned, "engine.bfs.edges_scanned", true)       \
  X(EngineBfsVerticesVisited, "engine.bfs.vertices_visited", false)\
  X(EngineBfsBottomUpLevels, "engine.bfs.bottom_up_levels", false) \
  X(EngineUniteEdgeScans, "engine.unite.edge_scans", true)         \
  X(EngineUniteAdmitted, "engine.unite.admitted", false)           \
  X(EngineWorkspaceEpochBumps, "engine.workspace.epoch_bumps", false) \
  X(EngineShardBatches, "engine.shards.batches", false)            \
  X(UfFinds, "graph.uf.finds", false)                              \
  X(UfFindSteps, "graph.uf.find_steps", true)                      \
  X(UfUnites, "graph.uf.unites", false)                            \
  X(UfUnionsApplied, "graph.uf.unions_applied", false)             \
  X(UfCheckpoints, "graph.uf.checkpoints", false)                  \
  X(UfRollbacks, "graph.uf.rollbacks", false)                      \
  X(UfRollbackUndone, "graph.uf.rollback_undone", true)            \
  X(MaxsgRounds, "broker.maxsg.rounds", false)                     \
  X(MaxsgGainEvals, "broker.maxsg.gain_evals", true)               \
  X(GreedyRounds, "broker.greedy.rounds", false)                   \
  X(GreedyGainEvals, "broker.greedy.gain_evals", true)             \
  X(LocalSearchProbes, "broker.local_search.probes", true)         \
  X(LocalSearchSwaps, "broker.local_search.swaps", false)          \
  X(McbgStitchRounds, "broker.mcbg.stitch_rounds", false)          \
  X(McbgStitchPromotions, "broker.mcbg.stitch_promotions", true)   \
  X(RobustRounds, "broker.robust.rounds", false)                   \
  X(RobustScenarios, "broker.robust.scenarios", false)             \
  X(RobustGainEvals, "broker.robust.gain_evals", true)             \
  X(ChurnEvents, "sim.churn.events", true)                         \
  X(ChurnConnectivityEvals, "sim.churn.connectivity_evals", false) \
  X(HealthProbeRounds, "sim.health.probe_rounds", false)           \
  X(HealthProbesSent, "sim.health.probes_sent", true)              \
  X(HealthReprobes, "sim.health.reprobes", false)                  \
  X(HealthTransitions, "sim.health.transitions", false)            \
  X(HealthViewsPublished, "sim.health.views_published", false)     \
  X(RepairAttempts, "sim.repair.attempts", false)                  \
  X(RepairDeferred, "sim.repair.deferred", false)                  \
  X(RouterRoutes, "sim.router.routes", true)                       \
  X(RouterTierDominated, "sim.router.tier_dominated", false)       \
  X(RouterTierDegraded, "sim.router.tier_degraded", false)         \
  X(RouterTierFallback, "sim.router.tier_fallback", false)         \
  X(RouterTierUnreachable, "sim.router.tier_unreachable", false)   \
  X(RouterDeadHops, "sim.router.dead_hops", false)                 \
  X(RouteServiceQueries, "sim.route_service.queries", true)        \
  X(RouteServiceFresh, "sim.route_service.fresh", false)           \
  X(RouteServiceStaleServed, "sim.route_service.stale_served", false) \
  X(RouteServiceShedded, "sim.route_service.shedded", false)       \
  X(RouteServiceRefused, "sim.route_service.refused", false)       \
  X(RouteServiceRebuilds, "sim.route_service.rebuilds", false)     \
  X(RouteServiceRebuildCrashes, "sim.route_service.rebuild_crashes", false) \
  X(RouteServicePatches, "sim.route_service.patches", false)       \
  X(RouteServiceEpochsPublished, "sim.route_service.epochs_published", false) \
  X(SloEvaluations, "slo.monitor.evaluations", false)              \
  X(SloBreaches, "slo.monitor.breaches", false)                    \
  X(SloRecovers, "slo.monitor.recovers", false)                    \
  X(EpisodeReconstructed, "obs.episode.reconstructed", false)      \
  X(EpisodeClosed, "obs.episode.closed", false)                    \
  X(EpisodeTruncated, "obs.episode.truncated", false)              \
  X(EpisodeMalformed, "obs.episode.malformed", false)              \
  X(EpisodeDegradedAnswers, "obs.episode.degraded_answers", false)

#define BSR_OBS_GAUGE_TABLE(X)                                     \
  X(EngineWorkspaceHighWater, "engine.workspace.high_water")       \
  X(UfLogHighWater, "graph.uf.log_high_water")                     \
  X(RouterStateHighWater, "sim.router.state_high_water")           \
  X(RouteServiceStaleHighWater, "sim.route_service.stale_high_water") \
  X(SloWorstBurnPct, "slo.monitor.worst_burn_pct")

#define BSR_OBS_HISTOGRAM_TABLE(X)                                 \
  X(UfFindDepth, "graph.uf.find_depth")                            \
  X(HealthViewStalenessMs, "sim.health.view_staleness_ms")         \
  X(RouterHops, "sim.router.hops")                                 \
  X(RouteServiceDistBound, "sim.route_service.dist_bound")

enum class Counter : std::uint16_t {
#define BSR_OBS_X(id, name, work) k##id,
  BSR_OBS_COUNTER_TABLE(BSR_OBS_X)
#undef BSR_OBS_X
      kCount
};

enum class Gauge : std::uint16_t {
#define BSR_OBS_X(id, name) k##id,
  BSR_OBS_GAUGE_TABLE(BSR_OBS_X)
#undef BSR_OBS_X
      kCount
};

enum class Histogram : std::uint16_t {
#define BSR_OBS_X(id, name) k##id,
  BSR_OBS_HISTOGRAM_TABLE(BSR_OBS_X)
#undef BSR_OBS_X
      kCount
};

inline constexpr std::size_t kNumCounters = static_cast<std::size_t>(Counter::kCount);
inline constexpr std::size_t kNumGauges = static_cast<std::size_t>(Gauge::kCount);
inline constexpr std::size_t kNumHistograms =
    static_cast<std::size_t>(Histogram::kCount);

/// Power-of-two value histograms: bucket 0 holds value 0, bucket b >= 1 holds
/// values in [2^(b-1), 2^b). 64 buckets cover the whole uint64 range.
inline constexpr std::size_t kHistogramBuckets = 64;

[[nodiscard]] std::string_view name(Counter c) noexcept;
[[nodiscard]] std::string_view name(Gauge g) noexcept;
[[nodiscard]] std::string_view name(Histogram h) noexcept;
/// Whether this counter contributes to the deterministic work-unit dimension.
[[nodiscard]] bool is_work_unit(Counter c) noexcept;

[[nodiscard]] constexpr std::size_t bucket_of(std::uint64_t value) noexcept {
  std::size_t b = 0;
  while (value != 0) {
    value >>= 1;
    ++b;
  }
  // 0 for value 0, else 1 + floor(log2(value)); the top bucket absorbs
  // values >= 2^62 so bit 63 can never index past the array.
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

// --- thread-local accumulation ----------------------------------------------

struct ThreadBlock {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<std::uint64_t, kNumGauges> gauges{};
  std::array<std::array<std::uint64_t, kHistogramBuckets>, kNumHistograms>
      histograms{};
};

namespace detail {
/// Cached pointer to this thread's registered block: null before first use
/// and after thread-exit flush. Implementation detail of tls_block() — the
/// cache lets the macros reach their slot with one TLS load and a
/// predictable branch instead of an out-of-line call per site, which is
/// what keeps per-item sites (UF finds, per-answer sketches) at a few
/// inline adds.
extern thread_local ThreadBlock* t_block;
}  // namespace detail

/// Registers this thread's block with the global registry and fills the
/// detail::t_block cache. Out-of-line cold path of tls_block().
[[nodiscard]] ThreadBlock& tls_block_slow() noexcept;

/// This thread's accumulator block; registered with the global registry on
/// first use and flushed into the retired pool when the thread exits.
[[nodiscard]] inline ThreadBlock& tls_block() noexcept {
  ThreadBlock* block = detail::t_block;
  return block != nullptr ? *block : tls_block_slow();
}

inline void count(Counter c, std::uint64_t n = 1) noexcept {
  tls_block().counters[static_cast<std::size_t>(c)] += n;
}

inline void gauge_max(Gauge g, std::uint64_t value) noexcept {
  std::uint64_t& slot = tls_block().gauges[static_cast<std::size_t>(g)];
  if (value > slot) slot = value;
}

inline void observe(Histogram h, std::uint64_t value) noexcept {
  ++tls_block().histograms[static_cast<std::size_t>(h)][bucket_of(value)];
}

/// Fused update for RollbackUnionFind::find — one TLS access covers the call
/// count, the step total, and the depth histogram, keeping the per-find cost
/// to a handful of adds on a path that is already pointer-chasing bound.
inline void count_uf_find(std::uint64_t steps) noexcept {
  ThreadBlock& block = tls_block();
  ++block.counters[static_cast<std::size_t>(Counter::kUfFinds)];
  block.counters[static_cast<std::size_t>(Counter::kUfFindSteps)] += steps;
  ++block.histograms[static_cast<std::size_t>(Histogram::kUfFindDepth)]
       [bucket_of(steps)];
}

// --- merged snapshots --------------------------------------------------------

/// Registry totals merged across every thread block (live + retired) in
/// registration order. All merges are integer and commutative, so the result
/// is identical at any BSR_THREADS value for the same work.
struct Snapshot {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<std::uint64_t, kNumGauges> gauges{};
  std::array<std::array<std::uint64_t, kHistogramBuckets>, kNumHistograms>
      histograms{};
  /// Whether the producing build had BSR_STATS compiled in.
  bool enabled = BSR_STATS_ENABLED != 0;

  [[nodiscard]] std::uint64_t counter(Counter c) const noexcept {
    return counters[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t gauge(Gauge g) const noexcept {
    return gauges[static_cast<std::size_t>(g)];
  }
  [[nodiscard]] std::uint64_t histogram_total(Histogram h) const noexcept;
};

/// Merged totals right now. Only call while worker threads are quiescent.
[[nodiscard]] Snapshot snapshot();

/// Zeroes every slot in every block (live and retired). Same quiescence
/// contract as snapshot().
void reset();

/// Zeroes one gauge's slot in every block (live and retired), leaving every
/// other metric untouched. A high-water gauge whose subject has a natural
/// epoch (e.g. the serving oracle's staleness) calls this at epoch rollover
/// so the merged value describes the *current* epoch, not the lifetime
/// worst. Same quiescence contract as snapshot().
void gauge_clear(Gauge g);

/// Counter/histogram difference `after - before`; gauges take the `after`
/// value (a high-water mark has no meaningful delta).
[[nodiscard]] Snapshot delta(const Snapshot& before, const Snapshot& after);

/// Sum of all work-unit counters — the machine-independent "how much
/// algorithmic work happened" scalar used by traces and BENCH files.
[[nodiscard]] std::uint64_t work_units(const Snapshot& snap) noexcept;

}  // namespace bsr::obs

// --- hot-path macros ---------------------------------------------------------
// All sites use the short enum id: BSR_COUNT(EngineBfsRuns). In an OFF build
// every macro is an empty statement and BSR_STATS_ONLY(...) drops its
// argument, so instrumented TUs reference no obs symbols.

#if BSR_STATS_ENABLED
#define BSR_COUNT(id) ::bsr::obs::count(::bsr::obs::Counter::k##id)
#define BSR_COUNT_N(id, n) \
  ::bsr::obs::count(::bsr::obs::Counter::k##id, static_cast<std::uint64_t>(n))
#define BSR_GAUGE_MAX(id, v)                      \
  ::bsr::obs::gauge_max(::bsr::obs::Gauge::k##id, \
                        static_cast<std::uint64_t>(v))
#define BSR_GAUGE_CLEAR(id) \
  ::bsr::obs::gauge_clear(::bsr::obs::Gauge::k##id)
#define BSR_HISTO(id, v)                            \
  ::bsr::obs::observe(::bsr::obs::Histogram::k##id, \
                      static_cast<std::uint64_t>(v))
#define BSR_UF_FIND(steps) \
  ::bsr::obs::count_uf_find(static_cast<std::uint64_t>(steps))
#define BSR_STATS_ONLY(...) __VA_ARGS__
#else
#define BSR_COUNT(id) \
  do {                \
  } while (false)
#define BSR_COUNT_N(id, n) \
  do {                     \
  } while (false)
#define BSR_GAUGE_MAX(id, v) \
  do {                       \
  } while (false)
#define BSR_GAUGE_CLEAR(id) \
  do {                      \
  } while (false)
#define BSR_HISTO(id, v) \
  do {                   \
  } while (false)
#define BSR_UF_FIND(steps) \
  do {                     \
  } while (false)
#define BSR_STATS_ONLY(...)
#endif
