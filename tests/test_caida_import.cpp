#include "topology/caida_import.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace bsr::topology {
namespace {

using bsr::graph::NodeId;

// A small hand-written as-rel snippet:
//   174 (Cogent-like) provides 100, 200; peers with 3356.
//   3356 provides 300. 100 provides 400 (making 100 tier-2-ish transit).
constexpr const char* kAsRel =
    "# serial-1 style comment\n"
    "174|100|-1\n"
    "174|200|-1\n"
    "174|3356|0\n"
    "3356|300|-1\n"
    "100|400|-1\n";

TEST(CaidaImport, ParsesEdgesAndRelationships) {
  std::istringstream is(kAsRel);
  const auto topo = import_caida_as_rel(is);
  EXPECT_EQ(topo.num_ases, 6u);  // 100, 174, 200, 300, 400, 3356
  EXPECT_EQ(topo.num_ixps, 0u);
  EXPECT_EQ(topo.graph.num_edges(), 5u);

  // Dense ids follow numeric order: 100->0, 174->1, 200->2, 300->3,
  // 400->4, 3356->5.
  EXPECT_TRUE(topo.relations.is_provider_of(1, 0));   // 174 provides 100
  EXPECT_FALSE(topo.relations.is_provider_of(0, 1));
  EXPECT_TRUE(topo.relations.is_peer(1, 5));          // 174 -- 3356 peer
  EXPECT_TRUE(topo.relations.is_provider_of(0, 4));   // 100 provides 400
}

TEST(CaidaImport, TierInference) {
  std::istringstream is(kAsRel);
  const auto topo = import_caida_as_rel(is);
  // 174 and 3356 have no providers and have customers: tier 1.
  EXPECT_EQ(topo.meta[1].tier, Tier::kTier1);
  EXPECT_EQ(topo.meta[5].tier, Tier::kTier1);
  // 100 has a provider and customers: tier 2 transit.
  EXPECT_EQ(topo.meta[0].tier, Tier::kTier2);
  EXPECT_EQ(topo.meta[0].type, NodeType::kTransitAccess);
  // 200, 300, 400 are customer-only stubs.
  EXPECT_EQ(topo.meta[2].tier, Tier::kStub);
  EXPECT_EQ(topo.meta[4].tier, Tier::kStub);
}

TEST(CaidaImport, IxpMembershipsAppended) {
  std::istringstream as_rel(kAsRel);
  std::istringstream ixps(
      "# name members...\n"
      "DE-CIX 174 3356 100\n"
      "TINY-IX 200 400 99999\n"   // 99999 unknown: skipped, still 2 members
      "TOO-SMALL 300\n");         // 1 member: dropped
  const auto topo = import_caida_as_rel(as_rel, ixps);
  EXPECT_EQ(topo.num_ixps, 2u);
  EXPECT_EQ(topo.num_vertices(), 8u);
  const NodeId decix = 6;
  EXPECT_EQ(topo.meta[decix].type, NodeType::kIxp);
  EXPECT_EQ(topo.graph.degree(decix), 3u);
  EXPECT_TRUE(topo.relations.is_peer(decix, 1));
  const NodeId tiny = 7;
  EXPECT_EQ(topo.graph.degree(tiny), 2u);
}

TEST(CaidaImport, DuplicateEdgesKeepFirstLabel) {
  std::istringstream is(
      "1|2|-1\n"
      "1|2|0\n");  // duplicate with a different label: first one wins
  const auto topo = import_caida_as_rel(is);
  EXPECT_EQ(topo.graph.num_edges(), 1u);
  EXPECT_TRUE(topo.relations.is_provider_of(0, 1));
}

TEST(CaidaImport, MalformedInputThrows) {
  std::istringstream bad_rel("1|2|7\n");
  EXPECT_THROW(import_caida_as_rel(bad_rel), std::runtime_error);
  std::istringstream garbage("not a line\n");
  EXPECT_THROW(import_caida_as_rel(garbage), std::runtime_error);
  std::istringstream empty("# only comments\n");
  EXPECT_THROW(import_caida_as_rel(empty), std::runtime_error);
  EXPECT_THROW(import_caida_files("/nonexistent/as-rel.txt"), std::runtime_error);
}

TEST(CaidaImport, RunsThePipeline) {
  // The imported topology must be usable by the selection machinery.
  std::istringstream is(kAsRel);
  const auto topo = import_caida_as_rel(is);
  EXPECT_NO_THROW({
    const auto tiers = topo.as_only_graph();
    EXPECT_EQ(tiers.num_vertices(), topo.num_ases);
  });
}

}  // namespace
}  // namespace bsr::topology
