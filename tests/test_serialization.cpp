#include "topology/serialization.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace bsr::topology {
namespace {

using bsr::graph::NodeId;

InternetTopology tiny() {
  auto cfg = InternetConfig{}.scaled(0.01);
  cfg.seed = 12;
  return make_internet(cfg);
}

TEST(Serialization, RoundTripPreservesEverything) {
  const auto original = tiny();
  std::ostringstream oss;
  save_topology(oss, original);
  std::istringstream iss(oss.str());
  const auto loaded = load_topology(iss);

  EXPECT_EQ(loaded.num_ases, original.num_ases);
  EXPECT_EQ(loaded.num_ixps, original.num_ixps);
  EXPECT_EQ(loaded.graph.edges(), original.graph.edges());
  for (NodeId v = 0; v < original.num_vertices(); ++v) {
    EXPECT_EQ(loaded.meta[v].type, original.meta[v].type) << "v=" << v;
    EXPECT_EQ(loaded.meta[v].tier, original.meta[v].tier) << "v=" << v;
  }
  for (const auto& e : original.graph.edges()) {
    EXPECT_EQ(loaded.relations.rel_canonical(e.u, e.v),
              original.relations.rel_canonical(e.u, e.v));
  }
}

TEST(Serialization, DeterministicBytes) {
  const auto topo = tiny();
  std::ostringstream a, b;
  save_topology(a, topo);
  save_topology(b, topo);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Serialization, RejectsMissingMagic) {
  std::istringstream iss("counts 3 1\n");
  EXPECT_THROW(load_topology(iss), std::runtime_error);
}

TEST(Serialization, RejectsBadNodeLines) {
  std::istringstream missing_nodes(
      "brokerset-topology v1\ncounts 2 0\nnode 0 0 1\n");
  EXPECT_THROW(load_topology(missing_nodes), std::runtime_error);

  std::istringstream bad_type(
      "brokerset-topology v1\ncounts 1 0\nnode 0 9 1\n");
  EXPECT_THROW(load_topology(bad_type), std::runtime_error);

  std::istringstream duplicate(
      "brokerset-topology v1\ncounts 2 0\nnode 0 0 1\nnode 0 0 1\n");
  EXPECT_THROW(load_topology(duplicate), std::runtime_error);
}

TEST(Serialization, RejectsBadEdges) {
  const std::string header =
      "brokerset-topology v1\ncounts 3 0\nnode 0 0 1\nnode 1 0 2\nnode 2 0 4\n";
  std::istringstream non_canonical(header + "edge 2 1 0\n");
  EXPECT_THROW(load_topology(non_canonical), std::runtime_error);
  std::istringstream bad_rel(header + "edge 0 1 7\n");
  EXPECT_THROW(load_topology(bad_rel), std::runtime_error);
  std::istringstream duplicate(header + "edge 0 1 0\nedge 0 1 0\n");
  EXPECT_THROW(load_topology(duplicate), std::runtime_error);
}

TEST(Serialization, CommentsAndBlankLinesIgnored) {
  std::istringstream iss(
      "# a comment\nbrokerset-topology v1\n\ncounts 2 0\n# nodes\n"
      "node 0 0 1\nnode 1 0 4\nedge 0 1 1  # provider edge\n");
  const auto topo = load_topology(iss);
  EXPECT_EQ(topo.num_ases, 2u);
  EXPECT_TRUE(topo.relations.is_provider_of(0, 1));
}

TEST(Serialization, FileRoundTrip) {
  const auto topo = tiny();
  const std::string path = "/tmp/bsr_serialization_test.topo";
  save_topology_file(path, topo);
  const auto loaded = load_topology_file(path);
  EXPECT_EQ(loaded.graph.num_edges(), topo.graph.num_edges());
  EXPECT_THROW(load_topology_file("/nonexistent/x.topo"), std::runtime_error);
}

}  // namespace
}  // namespace bsr::topology
