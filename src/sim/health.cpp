#include "sim/health.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/check.hpp"
#include "graph/engine.hpp"
#include "graph/sampling.hpp"
#include "obs/journal.hpp"
#include "obs/stats.hpp"

namespace bsr::sim {

using bsr::graph::NodeId;

const char* to_string(HealthState state) noexcept {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kSuspect: return "suspect";
    case HealthState::kQuarantined: return "quarantined";
    case HealthState::kProbation: return "probation";
  }
  return "?";
}

namespace {
constexpr double kNever = std::numeric_limits<double>::infinity();
}  // namespace

HealthMonitor::HealthMonitor(const bsr::graph::CsrGraph& g,
                             const bsr::broker::BrokerSet& brokers,
                             const bsr::graph::FaultPlane& faults,
                             const HealthConfig& config, NodeId vantage,
                             std::uint64_t jitter_seed)
    : graph_(&g),
      brokers_(&brokers),
      faults_(&faults),
      config_(config),
      vantage_(vantage),
      jitter_rng_(jitter_seed),
      ws_(g.num_vertices()) {
  if (config_.probe_interval <= 0.0 || config_.propagation_delay < 0.0) {
    throw std::invalid_argument(
        "HealthMonitor: probe_interval must be positive, delay non-negative");
  }
  if (config_.quarantine_after <= config_.suspect_after ||
      config_.suspect_after == 0) {
    throw std::invalid_argument(
        "HealthMonitor: need 0 < suspect_after < quarantine_after");
  }
  if (config_.probation_successes == 0 || config_.reprobe_backoff <= 0.0 ||
      config_.backoff_factor < 1.0 || config_.backoff_max < config_.reprobe_backoff) {
    throw std::invalid_argument("HealthMonitor: bad backoff configuration");
  }
  if (config_.jitter < 0.0 || config_.jitter >= 1.0) {
    throw std::invalid_argument("HealthMonitor: jitter must be in [0, 1)");
  }
  if (vantage_ >= g.num_vertices()) {
    throw std::invalid_argument("HealthMonitor: vantage out of range");
  }
  members_.assign(brokers.members().begin(), brokers.members().end());
  cells_.resize(members_.size());
  // Version 0: everything healthy, visible from the start.
  publish(0.0);
  dirty_ = false;
}

NodeId HealthMonitor::choose_vantage(const bsr::graph::CsrGraph& g,
                                     const bsr::broker::BrokerSet& brokers) {
  if (brokers.empty()) {
    throw std::invalid_argument("choose_vantage: empty broker set");
  }
  NodeId best = brokers.members().front();
  for (const NodeId v : brokers.members()) {
    if (g.degree(v) > g.degree(best)) best = v;
  }
  return best;
}

double HealthMonitor::next_event_time() const noexcept {
  double next = members_.empty()
                    ? kNever
                    : static_cast<double>(next_round_) * config_.probe_interval;
  for (const Cell& cell : cells_) {
    if (cell.state == HealthState::kQuarantined) {
      next = std::min(next, cell.next_reprobe);
    }
  }
  return next;
}

std::size_t HealthMonitor::advance(double now) {
  const std::size_t before = transitions_.size();
  while (true) {
    // Earliest due event; ties resolve probe round first, then re-probes in
    // ascending member index — a fixed order, so identical runs replay
    // identical transition and jitter-draw sequences.
    const double round_time =
        static_cast<double>(next_round_) * config_.probe_interval;
    double best = members_.empty() ? kNever : round_time;
    std::size_t best_reprobe = cells_.size();
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      if (cells_[i].state != HealthState::kQuarantined) continue;
      if (cells_[i].next_reprobe < best) {
        best = cells_[i].next_reprobe;
        best_reprobe = i;
      }
    }
    if (best > now) break;
    if (best_reprobe == cells_.size()) {
      probe_round(best);
      ++next_round_;
    } else {
      reprobe(best, best_reprobe);
    }
    if (dirty_) publish(best);
  }
  return transitions_.size() - before;
}

void HealthMonitor::add_broker(NodeId v, double now) {
  BSR_DCHECK(v < graph_->num_vertices());
  members_.push_back(v);
  cells_.emplace_back();
  // The routable bitmap must cover the recruit: publish the enlarged
  // membership right away (recruits start kHealthy).
  publish(now);
}

const HealthView& HealthMonitor::view_at(double now) const noexcept {
  // Views are published in increasing time order; scan back for the newest
  // one old enough to have propagated.
  for (std::size_t i = views_.size(); i-- > 1;) {
    if (views_[i].published_at + config_.propagation_delay <= now) {
      // Staleness in integral milli-units so the histogram is deterministic.
      BSR_HISTO(HealthViewStalenessMs,
                static_cast<std::uint64_t>((now - views_[i].published_at) * 1e3));
      return views_[i];
    }
  }
  BSR_HISTO(HealthViewStalenessMs,
            static_cast<std::uint64_t>((now - views_.front().published_at) * 1e3));
  return views_.front();
}

HealthState HealthMonitor::state_of(std::size_t member_index) const noexcept {
  BSR_DCHECK(member_index < cells_.size());
  return cells_[member_index].state;
}

std::size_t HealthMonitor::routable_count() const noexcept {
  std::size_t count = 0;
  for (const Cell& cell : cells_) {
    if (is_routable(cell.state)) ++count;
  }
  return count;
}

void HealthMonitor::refresh_reachability() {
  namespace engine = bsr::graph::engine;
  // One fault-aware dominated BFS answers every probe of the round. The
  // dominated filter uses the *full* membership mask: probes ride the data
  // plane's physical edges regardless of what the detector believes.
  engine::bfs(*graph_, vantage_, ws_,
              engine::BothFilters{engine::DominatedEdgeFilter{&brokers_->mask()},
                                  engine::FaultAwareFilter{faults_}});
  reach_valid_ = true;
}

bool HealthMonitor::probe_target(std::size_t index) {
  const NodeId b = members_[index];
  if (!faults_->vertex_ok(b) || !faults_->vertex_ok(vantage_)) return false;
  if (b == vantage_) return true;
  if (!reach_valid_) refresh_reachability();
  return ws_.visited(b);
}

void HealthMonitor::transition(double now, std::size_t index, HealthState to) {
  Cell& cell = cells_[index];
  BSR_DCHECK(cell.state != to);
  BSR_COUNT(HealthTransitions);
  // Leaving kHealthy opens a new failure episode; the id rides every later
  // transition (and repair event) of the same suspicion chain as `corr`.
  // Recovery clears it below, so an id is never reused across overlapping
  // failures of the same broker and healthy-cell probes carry corr 0.
  if (cell.state == HealthState::kHealthy) {
    BSR_DCHECK(cell.episode == 0);
    cell.episode = next_episode_++;
  }
  BSR_DCHECK(cell.episode != 0);
  transitions_.push_back({now, members_[index], cell.state, to, cell.episode});
  switch (to) {
    case HealthState::kSuspect:
      BSR_EVENT(HealthSuspect, now, members_[index], cell.episode);
      break;
    case HealthState::kQuarantined:
      BSR_EVENT(HealthQuarantine, now, members_[index], cell.episode);
      break;
    case HealthState::kProbation:
      BSR_EVENT(HealthProbation, now, members_[index], cell.episode);
      break;
    case HealthState::kHealthy:
      BSR_EVENT(HealthRecover, now, members_[index], cell.episode);
      break;
  }
  cell.state = to;
  // kHealthy is the episode's terminal: the journal has just recorded
  // HealthRecover, so the id retires here and the next failure allocates a
  // fresh one.
  if (to == HealthState::kHealthy) cell.episode = 0;
  dirty_ = true;
}

double HealthMonitor::backoff_delay(std::uint32_t level) {
  double delay = config_.reprobe_backoff;
  for (std::uint32_t i = 0; i < level; ++i) {
    delay = std::min(delay * config_.backoff_factor, config_.backoff_max);
  }
  const double factor =
      1.0 + config_.jitter * (2.0 * jitter_rng_.uniform01() - 1.0);
  return delay * factor;
}

void HealthMonitor::probe_round(double now) {
  ++rounds_;
  BSR_COUNT(HealthProbeRounds);
  reach_valid_ = false;  // fault state may have changed since last round
  BSR_STATS_ONLY(std::uint64_t probes_sent = 0;)
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    Cell& cell = cells_[i];
    // Quarantined brokers are only re-probed on their backoff schedule.
    if (cell.state == HealthState::kQuarantined) continue;
    BSR_STATS_ONLY(++probes_sent;)
    const bool ok = probe_target(i);
    if (ok) {
      BSR_EVENT(HealthProbeOk, now, members_[i], cell.episode);
    } else {
      BSR_EVENT(HealthProbeMiss, now, members_[i], cell.episode);
    }
    switch (cell.state) {
      case HealthState::kHealthy:
        if (ok) {
          cell.misses = 0;
        } else if (++cell.misses >= config_.suspect_after) {
          transition(now, i, HealthState::kSuspect);
        }
        break;
      case HealthState::kSuspect:
        if (ok) {
          cell.misses = 0;
          transition(now, i, HealthState::kHealthy);
        } else if (++cell.misses >= config_.quarantine_after) {
          transition(now, i, HealthState::kQuarantined);
          ++quarantines_;
          if (faults_->vertex_ok(members_[i])) ++false_quarantines_;
          cell.next_reprobe = now + backoff_delay(cell.backoff_level);
        }
        break;
      case HealthState::kProbation:
        if (ok) {
          if (++cell.successes >= config_.probation_successes) {
            cell.successes = 0;
            cell.misses = 0;
            // Recovery completes the hysteresis loop: backoff depth decays
            // one level rather than resetting, so a chronic flapper climbs
            // the backoff ladder across episodes.
            if (cell.backoff_level > 0) --cell.backoff_level;
            transition(now, i, HealthState::kHealthy);
          }
        } else {
          // Flap: straight back to quarantine, one backoff level deeper.
          cell.successes = 0;
          transition(now, i, HealthState::kQuarantined);
          ++quarantines_;
          if (faults_->vertex_ok(members_[i])) ++false_quarantines_;
          ++cell.backoff_level;
          cell.next_reprobe = now + backoff_delay(cell.backoff_level);
        }
        break;
      case HealthState::kQuarantined:
        break;  // unreachable
    }
  }
  BSR_COUNT_N(HealthProbesSent, probes_sent);
}

void HealthMonitor::reprobe(double now, std::size_t index) {
  Cell& cell = cells_[index];
  BSR_DCHECK(cell.state == HealthState::kQuarantined);
  BSR_COUNT(HealthReprobes);
  BSR_COUNT(HealthProbesSent);
  reach_valid_ = false;  // point-in-time probe: refresh against current faults
  if (probe_target(index)) {
    BSR_EVENT(HealthProbeOk, now, members_[index], cell.episode);
    cell.successes = 0;
    transition(now, index, HealthState::kProbation);
  } else {
    BSR_EVENT(HealthProbeMiss, now, members_[index], cell.episode);
    ++cell.backoff_level;
    cell.next_reprobe = now + backoff_delay(cell.backoff_level);
  }
}

void HealthMonitor::publish(double now) {
  BSR_COUNT(HealthViewsPublished);
  BSR_EVENT(HealthViewPublish, now, views_.size(), 0);
  HealthView view;
  view.version = views_.size();
  view.published_at = now;
  view.states.reserve(cells_.size());
  view.routable.assign(graph_->num_vertices(), false);
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    view.states.push_back(cells_[i].state);
    if (is_routable(cells_[i].state)) view.routable[members_[i]] = true;
  }
  views_.push_back(std::move(view));
  dirty_ = false;
}

// --- RepairScheduler --------------------------------------------------------

void RepairScheduler::request(double now) {
  if (due_ != kNever) return;  // an attempt is already pending
  retries_ = 0;
  due_ = now + policy_.retry_backoff;
}

void RepairScheduler::report(double now, std::uint32_t recruited) {
  ++attempts_;
  BSR_COUNT(RepairAttempts);
  if (recruited > 0) {
    due_ = kNever;
    retries_ = 0;
    return;
  }
  ++failures_;
  if (++retries_ > policy_.max_retries) {
    due_ = kNever;  // give up until the next quarantine re-arms us
    return;
  }
  BSR_COUNT(RepairDeferred);
  double delay = policy_.retry_backoff;
  for (std::uint32_t i = 0; i < retries_; ++i) {
    delay = std::min(delay * policy_.retry_factor, policy_.retry_max);
  }
  due_ = now + delay;
}

// --- measurement helpers ----------------------------------------------------

double lhop_connectivity(const bsr::graph::CsrGraph& g,
                         const std::vector<bool>& usable_brokers,
                         const bsr::graph::FaultPlane* faults, std::uint32_t l,
                         bsr::graph::Rng& rng, std::size_t num_sources) {
  namespace engine = bsr::graph::engine;
  BSR_DCHECK(usable_brokers.size() == g.num_vertices());
  const NodeId n = g.num_vertices();
  if (n < 2) return 0.0;
  const auto sources = bsr::graph::sample_distinct(
      rng, n, static_cast<NodeId>(std::min<std::size_t>(num_sources, n)));
  engine::Workspace& ws = engine::tls_workspace();
  const engine::DominatedEdgeFilter dom{&usable_brokers};
  std::uint64_t within = 0;
  for (const NodeId s : sources) {
    if (faults != nullptr) {
      if (!faults->vertex_ok(s)) continue;  // a dark source reaches nothing
      engine::bfs_bounded(g, s, l, ws,
                          engine::BothFilters{dom, engine::FaultAwareFilter{faults}});
    } else {
      engine::bfs_bounded(g, s, l, ws, dom);
    }
    within += ws.visit_order().size() - 1;  // exclude the source itself
  }
  return static_cast<double>(within) /
         (static_cast<double>(sources.size()) * static_cast<double>(n - 1));
}

}  // namespace bsr::sim
