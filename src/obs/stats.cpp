#include "obs/stats.hpp"

#include <mutex>
#include <vector>

namespace bsr::obs {

namespace {

struct CounterMeta {
  std::string_view name;
  bool work;
};

constexpr std::array<CounterMeta, kNumCounters> kCounterMeta = {{
#define BSR_OBS_X(id, str, work) {str, work},
    BSR_OBS_COUNTER_TABLE(BSR_OBS_X)
#undef BSR_OBS_X
}};

constexpr std::array<std::string_view, kNumGauges> kGaugeNames = {{
#define BSR_OBS_X(id, str) str,
    BSR_OBS_GAUGE_TABLE(BSR_OBS_X)
#undef BSR_OBS_X
}};

constexpr std::array<std::string_view, kNumHistograms> kHistogramNames = {{
#define BSR_OBS_X(id, str) str,
    BSR_OBS_HISTOGRAM_TABLE(BSR_OBS_X)
#undef BSR_OBS_X
}};

/// Commutative integer merge: sum counters/histogram buckets, max gauges.
void merge_into(Snapshot& out, const ThreadBlock& block) {
  for (std::size_t i = 0; i < kNumCounters; ++i) out.counters[i] += block.counters[i];
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    if (block.gauges[i] > out.gauges[i]) out.gauges[i] = block.gauges[i];
  }
  for (std::size_t h = 0; h < kNumHistograms; ++h) {
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      out.histograms[h][b] += block.histograms[h][b];
    }
  }
}

void merge_block(ThreadBlock& out, const ThreadBlock& block) {
  for (std::size_t i = 0; i < kNumCounters; ++i) out.counters[i] += block.counters[i];
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    if (block.gauges[i] > out.gauges[i]) out.gauges[i] = block.gauges[i];
  }
  for (std::size_t h = 0; h < kNumHistograms; ++h) {
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      out.histograms[h][b] += block.histograms[h][b];
    }
  }
}

/// Global registry of live thread blocks plus the retired accumulator.
/// Blocks register in first-use order; engine shards spawn and use their
/// block deterministically, and every merge is commutative, so the order
/// never affects snapshot contents.
struct Registry {
  std::mutex mutex;
  std::vector<ThreadBlock*> live;
  ThreadBlock retired;  // flushed blocks of exited threads
};

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: outlives all threads
  return *instance;
}

/// Registers on construction, flushes + unregisters on thread exit.
struct TlsSlot {
  ThreadBlock block;

  TlsSlot() {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    reg.live.push_back(&block);
  }

  ~TlsSlot() {
    detail::t_block = nullptr;  // stop handing out a block being retired
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    merge_block(reg.retired, block);
    for (std::size_t i = 0; i < reg.live.size(); ++i) {
      if (reg.live[i] == &block) {
        reg.live.erase(reg.live.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  }
};

}  // namespace

std::string_view name(Counter c) noexcept {
  return kCounterMeta[static_cast<std::size_t>(c)].name;
}

std::string_view name(Gauge g) noexcept {
  return kGaugeNames[static_cast<std::size_t>(g)];
}

std::string_view name(Histogram h) noexcept {
  return kHistogramNames[static_cast<std::size_t>(h)];
}

bool is_work_unit(Counter c) noexcept {
  return kCounterMeta[static_cast<std::size_t>(c)].work;
}

namespace detail {
thread_local ThreadBlock* t_block = nullptr;
}  // namespace detail

ThreadBlock& tls_block_slow() noexcept {
  thread_local TlsSlot slot;
  detail::t_block = &slot.block;
  return slot.block;
}

std::uint64_t Snapshot::histogram_total(Histogram h) const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t b : histograms[static_cast<std::size_t>(h)]) total += b;
  return total;
}

Snapshot snapshot() {
  Snapshot out;
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  merge_into(out, reg.retired);
  for (const ThreadBlock* block : reg.live) merge_into(out, *block);
  return out;
}

void reset() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.retired = ThreadBlock{};
  for (ThreadBlock* block : reg.live) *block = ThreadBlock{};
}

void gauge_clear(Gauge g) {
  const std::size_t slot = static_cast<std::size_t>(g);
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.retired.gauges[slot] = 0;
  for (ThreadBlock* block : reg.live) block->gauges[slot] = 0;
}

Snapshot delta(const Snapshot& before, const Snapshot& after) {
  Snapshot out;
  out.enabled = after.enabled;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    out.counters[i] = after.counters[i] - before.counters[i];
  }
  out.gauges = after.gauges;
  for (std::size_t h = 0; h < kNumHistograms; ++h) {
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      out.histograms[h][b] = after.histograms[h][b] - before.histograms[h][b];
    }
  }
  return out;
}

std::uint64_t work_units(const Snapshot& snap) noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (kCounterMeta[i].work) total += snap.counters[i];
  }
  return total;
}

}  // namespace bsr::obs
