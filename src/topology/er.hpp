// Erdős–Rényi G(n, m) random graph (Table 3 comparison topology).
#pragma once

#include <cstdint>

#include "graph/csr_graph.hpp"
#include "graph/rng.hpp"

namespace bsr::topology {

/// Uniform random graph with exactly up to `num_edges` distinct edges
/// (fewer only if num_edges exceeds the complete graph). Deterministic in
/// seed. Throws std::invalid_argument for n < 2.
[[nodiscard]] bsr::graph::CsrGraph make_er(std::uint32_t num_vertices,
                                           std::uint64_t num_edges,
                                           std::uint64_t seed);

}  // namespace bsr::topology
