#include "broker/weighted.hpp"

#include <gtest/gtest.h>

#include "broker/coverage.hpp"
#include "broker/dominated.hpp"
#include "broker/greedy_mcb.hpp"
#include "broker/maxsg.hpp"
#include "test_util.hpp"

namespace bsr::broker {
namespace {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::test::make_connected_random;
using bsr::test::make_path;
using bsr::test::make_star;

TEST(WeightedCoverage, UnitWeightsMatchUnweighted) {
  const CsrGraph g = make_connected_random(40, 0.1, 1);
  const std::vector<double> unit(g.num_vertices(), 1.0);
  bsr::graph::Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    BrokerSet b(g.num_vertices());
    for (int i = 0; i < 5; ++i) {
      b.add(static_cast<NodeId>(rng.uniform(g.num_vertices())));
    }
    EXPECT_DOUBLE_EQ(weighted_coverage(g, b, unit),
                     static_cast<double>(coverage(g, b)));
  }
}

TEST(WeightedCoverage, WeightsCountOnce) {
  const CsrGraph g = make_star(5);
  const std::vector<double> weight{10.0, 1.0, 2.0, 3.0, 4.0};
  BrokerSet b(5);
  b.add(0);
  b.add(1);  // overlapping coverage: 0 and 1 both cover the center
  EXPECT_DOUBLE_EQ(weighted_coverage(g, b, weight), 20.0);
}

TEST(WeightedCoverage, RejectsBadWeights) {
  const CsrGraph g = make_path(3);
  BrokerSet b(3);
  const std::vector<double> short_weights{1.0};
  EXPECT_THROW(weighted_coverage(g, b, short_weights), std::invalid_argument);
  const std::vector<double> negative{1.0, -1.0, 1.0};
  EXPECT_THROW(weighted_coverage(g, b, negative), std::invalid_argument);
}

TEST(WeightedGreedy, UnitWeightsMatchUnweightedGreedy) {
  const CsrGraph g = make_connected_random(60, 0.06, 3);
  const std::vector<double> unit(g.num_vertices(), 1.0);
  for (const std::uint32_t k : {1u, 4u, 10u}) {
    const auto weighted = weighted_greedy_mcb(g, k, unit);
    const auto plain = greedy_mcb(g, k);
    EXPECT_EQ(std::vector<NodeId>(weighted.brokers.members().begin(),
                                  weighted.brokers.members().end()),
              std::vector<NodeId>(plain.brokers.members().begin(),
                                  plain.brokers.members().end()))
        << "k = " << k;
  }
}

TEST(WeightedGreedy, ChasesTheMass) {
  // A low-degree vertex carrying huge weight should be covered first.
  const CsrGraph g = make_path(7);
  std::vector<double> weight(7, 0.01);
  weight[6] = 1000.0;  // the elephant sits at the end of the path
  const auto result = weighted_greedy_mcb(g, 1, weight);
  ASSERT_EQ(result.brokers.size(), 1u);
  const NodeId pick = result.brokers.members()[0];
  EXPECT_TRUE(pick == 5 || pick == 6);
  EXPECT_GE(result.coverage, 1000.0);
}

TEST(WeightedGreedy, CurveMonotone) {
  const CsrGraph g = make_connected_random(50, 0.08, 4);
  bsr::graph::Rng rng(5);
  std::vector<double> weight(g.num_vertices());
  for (auto& w : weight) w = rng.uniform01() * 10.0;
  const auto result = weighted_greedy_mcb(g, 12, weight);
  for (std::size_t i = 1; i < result.coverage_curve.size(); ++i) {
    EXPECT_GE(result.coverage_curve[i], result.coverage_curve[i - 1] - 1e-12);
  }
  EXPECT_DOUBLE_EQ(result.coverage, weighted_coverage(g, result.brokers, weight));
}

TEST(WeightedGreedy, ZeroBudgetAndEmptyGraph) {
  const CsrGraph g = make_path(4);
  const std::vector<double> unit(4, 1.0);
  const auto result = weighted_greedy_mcb(g, 0, unit);
  EXPECT_TRUE(result.brokers.empty());
  EXPECT_THROW(weighted_greedy_mcb(CsrGraph(), 2, {}), std::invalid_argument);
}

TEST(WeightedSaturated, UnitWeightsMatchUnweighted) {
  const CsrGraph g = make_connected_random(40, 0.1, 6);
  const std::vector<double> unit(g.num_vertices(), 1.0);
  bsr::graph::Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    BrokerSet b(g.num_vertices());
    for (int i = 0; i < 4; ++i) {
      b.add(static_cast<NodeId>(rng.uniform(g.num_vertices())));
    }
    EXPECT_NEAR(weighted_saturated_connectivity(g, b, unit),
                saturated_connectivity(g, b), 1e-9);
  }
}

TEST(WeightedSaturated, HeavyPairDominatesTheMetric) {
  // Path 0-1-2-3: broker at 1 connects {0,1,2}. With all mass on 0 and 2,
  // the weighted connectivity is ~1 even though only 3 of 6 pairs connect.
  const CsrGraph g = make_path(4);
  BrokerSet b(4);
  b.add(1);
  const std::vector<double> weight{100.0, 0.001, 100.0, 0.001};
  EXPECT_GT(weighted_saturated_connectivity(g, b, weight), 0.99);
  EXPECT_LT(saturated_connectivity(g, b), 0.55);
}

TEST(WeightedSaturated, ZeroWeightVerticesIgnored) {
  const CsrGraph g = make_star(6);
  BrokerSet b(6);
  b.add(0);
  std::vector<double> weight(6, 1.0);
  weight[5] = 0.0;
  EXPECT_NEAR(weighted_saturated_connectivity(g, b, weight), 1.0, 1e-12);
}

TEST(WeightedMaxSg, UnitWeightsTrackComponentSize) {
  const CsrGraph g = make_connected_random(50, 0.08, 8);
  const std::vector<double> unit(g.num_vertices(), 1.0);
  const auto weighted = weighted_maxsg(g, 8, unit);
  // With unit weights, component weight == component size; the curve must
  // match an independent evaluation of the selected prefixes.
  for (std::size_t i = 0; i < weighted.brokers.size(); ++i) {
    const auto prefix = weighted.brokers.prefix(i + 1);
    EXPECT_DOUBLE_EQ(weighted.component_weight_curve[i],
                     static_cast<double>(largest_dominated_component(g, prefix)))
        << "pick " << i;
  }
}

TEST(WeightedMaxSg, ChasesHeavyRegion) {
  // Two stars: small one (center 0) carries all the mass.
  bsr::graph::GraphBuilder builder(12);
  for (NodeId v = 1; v < 4; ++v) builder.add_edge(0, v);       // light star
  for (NodeId v = 6; v < 12; ++v) builder.add_edge(5, v);      // big star
  const CsrGraph g = builder.build();
  std::vector<double> weight(12, 0.01);
  for (NodeId v = 0; v < 4; ++v) weight[v] = 100.0;  // mass on the small star
  const auto result = weighted_maxsg(g, 1, weight);
  ASSERT_EQ(result.brokers.size(), 1u);
  EXPECT_EQ(result.brokers.members()[0], 0u);  // size-based MaxSG would pick 5
  const auto plain = maxsg(g, 1);
  EXPECT_EQ(plain.brokers.members()[0], 5u);
}

TEST(WeightedMaxSg, CurveMonotoneAndBudgetRespected) {
  const CsrGraph g = make_connected_random(60, 0.07, 9);
  bsr::graph::Rng rng(10);
  std::vector<double> weight(g.num_vertices());
  for (auto& w : weight) w = rng.uniform01() * 5.0;
  const auto result = weighted_maxsg(g, 10, weight);
  EXPECT_LE(result.brokers.size(), 10u);
  for (std::size_t i = 1; i < result.component_weight_curve.size(); ++i) {
    EXPECT_GE(result.component_weight_curve[i],
              result.component_weight_curve[i - 1] - 1e-12);
  }
}

TEST(WeightedMaxSg, StopsWhenNothingImproves) {
  // All-zero weights: no pick can grow the heaviest component's weight.
  const CsrGraph g = make_path(6);
  const std::vector<double> zeros(6, 0.0);
  const auto result = weighted_maxsg(g, 4, zeros);
  EXPECT_TRUE(result.brokers.empty());
}

}  // namespace
}  // namespace bsr::broker
