// Failure injection and repair for broker sets (systems extension).
//
// A deployed brokerage coalition must survive churn: brokers de-peer, fail,
// or leave the coalition. This module measures how connectivity degrades
// under random and targeted broker failures and how well a greedy repair
// (re-running selection over the survivors' gaps) restores it. The paper
// leaves deployment dynamics as future work; these are the experiments a
// production operator would ask for first.
#pragma once

#include <cstdint>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"
#include "graph/rng.hpp"

namespace bsr::broker {

enum class FailureMode : std::uint8_t {
  kRandom,       // uniformly random broker failures
  kTargetedTop,  // adversarial: fail the highest-degree brokers first
};

/// Removes `failures` brokers from `b` per the mode; returns the survivors
/// (selection order preserved). failures >= |b| yields an empty set.
[[nodiscard]] BrokerSet fail_brokers(const bsr::graph::CsrGraph& g, const BrokerSet& b,
                                     std::size_t failures, FailureMode mode,
                                     bsr::graph::Rng& rng);

struct ResilienceCurve {
  std::vector<std::size_t> failures;     // x axis
  std::vector<double> connectivity;      // saturated connectivity after failure
};

/// Sweeps failure counts and records the post-failure connectivity.
[[nodiscard]] ResilienceCurve resilience_curve(const bsr::graph::CsrGraph& g,
                                               const BrokerSet& b,
                                               std::span<const std::size_t> failure_steps,
                                               FailureMode mode, bsr::graph::Rng& rng);

/// Greedy repair: adds up to `budget` replacement brokers (chosen by the
/// MaxSG criterion over the survivors) and returns the repaired set.
[[nodiscard]] BrokerSet repair_brokers(const bsr::graph::CsrGraph& g,
                                       const BrokerSet& survivors,
                                       std::uint32_t budget);

}  // namespace bsr::broker
