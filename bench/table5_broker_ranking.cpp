// Reproduces Table 5 — example brokers and their selection ranks.
//
// The paper lists the 3,540-alliance's top members (Equinix Palo Alto,
// Level-3, Cogent, LINX, ...) to show IXPs rank at the very top alongside
// tier-1 transit, with content/enterprise networks appearing deep in the
// ranking. We print the same structure from the MaxSG selection order:
// rank, node type, tier, degree — plus the first appearance rank of each
// node type.
#include <iostream>

#include "bench_common.hpp"
#include "broker/maxsg.hpp"

int main() {
  auto ctx = bsr::bench::make_context("Table 5: broker ranking by type");
  const auto& g = ctx.topo.graph;

  const std::uint32_t k = ctx.env.scaled(3540, 8);
  bsr::bench::Stopwatch sw;
  const auto result = bsr::broker::maxsg(g, k);
  const auto members = result.brokers.members();
  std::cout << "MaxSG selected " << members.size() << " brokers in "
            << bsr::io::format_double(sw.seconds(), 1) << "s\n";

  const auto type_of = [&](bsr::graph::NodeId v) {
    return std::string(bsr::topology::to_string(ctx.topo.meta[v].type));
  };

  bsr::io::Table table({"Rank", "Type", "Tier", "Vertex", "Degree"});
  // Top 10 (the paper's left column) ...
  for (std::size_t i = 0; i < std::min<std::size_t>(10, members.size()); ++i) {
    const auto v = members[i];
    table.row()
        .cell(static_cast<std::uint64_t>(i + 1))
        .cell(type_of(v))
        .cell(static_cast<std::uint64_t>(ctx.topo.meta[v].tier))
        .cell(std::uint64_t{v})
        .cell(std::uint64_t{g.degree(v)});
  }
  // ... plus the first content / enterprise entries (the right column).
  bool content_shown = false, enterprise_shown = false;
  for (std::size_t i = 10; i < members.size(); ++i) {
    const auto v = members[i];
    const auto type = ctx.topo.meta[v].type;
    const bool want =
        (type == bsr::topology::NodeType::kContent && !content_shown) ||
        (type == bsr::topology::NodeType::kEnterprise && !enterprise_shown);
    if (!want) continue;
    if (type == bsr::topology::NodeType::kContent) content_shown = true;
    if (type == bsr::topology::NodeType::kEnterprise) enterprise_shown = true;
    table.row()
        .cell(static_cast<std::uint64_t>(i + 1))
        .cell(type_of(v))
        .cell(static_cast<std::uint64_t>(ctx.topo.meta[v].tier))
        .cell(std::uint64_t{v})
        .cell(std::uint64_t{g.degree(v)});
    if (content_shown && enterprise_shown) break;
  }
  table.print(std::cout);

  // Type histogram of the top-10 (paper: 3 IXPs + 7 T/A among ranks 1-10).
  std::size_t ixps_in_top10 = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(10, members.size()); ++i) {
    if (ctx.topo.is_ixp(members[i])) ++ixps_in_top10;
  }
  std::cout << "IXPs among the top-10 brokers: " << ixps_in_top10
            << " (paper: 3 of 10 — IXPs matter for dominating-path routing)\n";
  return 0;
}
