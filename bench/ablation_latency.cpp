// Ablation: what broker supervision costs in milliseconds, not hops.
//
// Assigns tier-structured latencies to every edge and compares minimum-
// latency routing on the free plane vs the dominated plane. Hop-count
// stretch over-penalizes the brokered plane when the detour rides fast
// core links; latency overhead is the number an SLA would actually quote.
#include <iostream>

#include "bench_common.hpp"
#include "broker/maxsg.hpp"
#include "sim/demand.hpp"
#include "sim/latency.hpp"

int main() {
  auto ctx = bsr::bench::make_context("Ablation: latency overhead of brokered paths");
  const auto& g = ctx.topo.graph;

  bsr::graph::Rng rng(ctx.env.seed + 17);
  const bsr::sim::LatencyModel model(ctx.topo, {}, rng);
  const auto full = bsr::broker::maxsg(g, ctx.env.scaled(3540, 8)).brokers;

  bsr::sim::DemandConfig demand;
  // Dijkstra per flow on 52k vertices costs ~50 ms; keep the sample small.
  demand.num_flows = std::min<std::size_t>(150, 30 + g.num_vertices() / 500);
  const auto flows = bsr::sim::generate_flows(g, demand, rng);

  bsr::io::Table table({"|B|", "pairs served", "median overhead", "p90 overhead",
                        "mean free ms", "mean brokered ms"});
  for (const std::uint32_t paper_k : {100u, 1000u, 3540u}) {
    const auto prefix = full.prefix(std::min<std::size_t>(
        ctx.env.scaled(paper_k, 4), full.size()));
    std::vector<double> overhead;
    double free_total = 0.0, brokered_total = 0.0;
    for (const auto& flow : flows) {
      const auto free_route =
          bsr::sim::route_min_latency(g, model, flow.src, flow.dst, nullptr);
      const auto brokered =
          bsr::sim::route_min_latency(g, model, flow.src, flow.dst, &prefix);
      if (!free_route.reachable() || !brokered.reachable()) continue;
      overhead.push_back(brokered.latency_ms - free_route.latency_ms);
      free_total += free_route.latency_ms;
      brokered_total += brokered.latency_ms;
    }
    if (overhead.empty()) continue;
    std::sort(overhead.begin(), overhead.end());
    const auto at = [&](double q) {
      return overhead[static_cast<std::size_t>(q * (overhead.size() - 1))];
    };
    table.row()
        .cell(static_cast<std::uint64_t>(prefix.size()))
        .cell(static_cast<std::uint64_t>(overhead.size()))
        .cell(at(0.5), 2)
        .cell(at(0.9), 2)
        .cell(free_total / overhead.size(), 1)
        .cell(brokered_total / overhead.size(), 1);
  }
  table.print(std::cout);
  std::cout << "(overhead in ms; " << flows.size()
            << " gravity flows; the alliance's detours ride the fast core, "
               "so supervised routing costs single-digit milliseconds)\n";
  return 0;
}
