// The coverage function f(B) = |B ∪ N(B)| and its incremental tracker.
//
// f is monotone submodular (Lemma 3 of the paper), which is what makes the
// greedy Algorithm 1 a (1 - 1/e)-approximation and enables lazy evaluation.
#pragma once

#include <cstdint>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"

namespace bsr::broker {

/// One-shot f(B) = |B ∪ N(B)|.
[[nodiscard]] std::uint32_t coverage(const bsr::graph::CsrGraph& g, const BrokerSet& b);

/// Incremental coverage: O(deg) marginal-gain queries and additions.
class CoverageTracker {
 public:
  explicit CoverageTracker(const bsr::graph::CsrGraph& g);

  /// Marginal gain f(B ∪ {v}) - f(B): newly covered vertices in {v} ∪ N(v).
  [[nodiscard]] std::uint32_t marginal_gain(bsr::graph::NodeId v) const;

  /// Adds v to B, updating coverage. Returns the realized gain.
  std::uint32_t add(bsr::graph::NodeId v);

  [[nodiscard]] std::uint32_t covered_count() const noexcept { return covered_count_; }
  [[nodiscard]] bool is_covered(bsr::graph::NodeId v) const noexcept {
    return covered_[v];
  }
  [[nodiscard]] bool is_broker(bsr::graph::NodeId v) const noexcept {
    return brokers_[v];
  }
  [[nodiscard]] bool all_covered() const noexcept {
    return covered_count_ == graph_->num_vertices();
  }

 private:
  const bsr::graph::CsrGraph* graph_;
  std::vector<bool> brokers_;
  std::vector<bool> covered_;
  std::uint32_t covered_count_ = 0;
};

}  // namespace bsr::broker
