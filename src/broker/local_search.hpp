// Swap-based local search on top of a selected broker set.
//
// The paper's remark after Theorem 4 leaves "tighter" algorithms as future
// work. The cheapest practical step in that direction is 1-swap local
// search: repeatedly try to replace one broker with one non-broker so the
// saturated connectivity strictly improves, until no improving swap exists
// (a 1-swap local optimum). The ablation bench quantifies how much (or how
// little) this buys over plain MaxSG — a useful negative result if the
// greedy is already near-locally-optimal.
#pragma once

#include <cstdint>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"

namespace bsr::broker {

struct LocalSearchOptions {
  /// Cap on improving swaps applied (the loop is O(|B|·|V|) per pass).
  std::uint32_t max_swaps = 32;
  /// Minimum connectivity improvement for a swap to count (absolute).
  double min_gain = 1e-9;
  /// Candidate replacements per removed broker: the top-degree non-brokers
  /// plus the removed broker's neighbors (full |V| sweep is too slow).
  std::uint32_t candidate_pool = 64;
};

struct LocalSearchResult {
  BrokerSet brokers;
  double initial_connectivity = 0.0;
  double final_connectivity = 0.0;
  std::uint32_t swaps_applied = 0;
};

/// Improves `b` by 1-swaps until locally optimal (within the options'
/// limits). The returned set has the same size as the input.
[[nodiscard]] LocalSearchResult improve_by_swaps(const bsr::graph::CsrGraph& g,
                                                 const BrokerSet& b,
                                                 const LocalSearchOptions& options = {});

}  // namespace bsr::broker
