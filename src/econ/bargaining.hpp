// Nash bargaining between the broker coalition B and an employee AS (§7.1).
//
// When no direct broker-broker hop exists, B hires a non-broker AS j to
// transit traffic at price p_j. Utilities per unit volume (Eqs. 5-6):
//   u_j(p_j) = p_j - c                       (employee margin)
//   u_B(p_j) = 2 p_B - h p_j - h c           (B's worst-case margin,
//                                             h = ⌈β/2⌉ hired employees)
// The Nash bargaining solution maximizes the product u_j · u_B over the
// feasible price range; it has the closed form p* = p_B / h (derived by
// setting d/dp[(p-c)(2p_B - h p - h c)] = 0), which the solver cross-checks
// numerically via golden-section search.
#pragma once

#include <cstdint>
#include <functional>

namespace bsr::econ {

struct BargainingConfig {
  double broker_price = 1.0;   // p_B: price B charges per unit volume
  double transit_cost = 0.05;  // c: an AS's cost to route one unit
  std::uint32_t beta = 4;      // (α, β)-graph bound => h = ⌈β/2⌉ employees

  [[nodiscard]] std::uint32_t employees() const noexcept { return (beta + 1) / 2; }
};

struct BargainingSolution {
  bool feasible = false;   // bargaining set non-empty (p_B > h·c)
  double price = 0.0;      // agreed p_j
  double u_employee = 0.0; // u_j at the solution
  double u_broker = 0.0;   // u_B at the solution
  double nash_product = 0.0;
};

/// Closed-form Nash bargaining solution. Throws std::invalid_argument for
/// non-positive prices/costs or beta = 0.
[[nodiscard]] BargainingSolution solve_bargaining(const BargainingConfig& config);

/// Generic golden-section maximizer of a unimodal function on [lo, hi]
/// (used to cross-check closed forms and by the Stackelberg outer stage).
[[nodiscard]] double golden_section_max(const std::function<double(double)>& f,
                                        double lo, double hi, double tol = 1e-9);

}  // namespace bsr::econ
