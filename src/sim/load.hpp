// Broker transit-load accounting.
//
// The related-work critique (§2) of CXP/PCE schemes is that a handful of
// mediators carry the whole burden. These statistics let the benches show
// how load distributes across a *set* of brokers instead.
#pragma once

#include <cstdint>
#include <vector>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"
#include "sim/router.hpp"

namespace bsr::sim {

class LoadTracker {
 public:
  explicit LoadTracker(bsr::graph::NodeId num_vertices)
      : load_(num_vertices, 0.0) {}

  /// Credits `volume` to every transit (non-endpoint) vertex of the path.
  void add_route(const Route& route, double volume);

  [[nodiscard]] const std::vector<double>& load() const noexcept { return load_; }

  struct Summary {
    double total = 0.0;
    double max = 0.0;
    double mean_over_brokers = 0.0;  // mean across broker vertices only
    double gini = 0.0;               // inequality across broker vertices
    std::size_t active_brokers = 0;  // brokers with non-zero load
  };

  /// Load statistics restricted to the broker set.
  [[nodiscard]] Summary summarize(const bsr::broker::BrokerSet& brokers) const;

 private:
  std::vector<double> load_;
};

}  // namespace bsr::sim
