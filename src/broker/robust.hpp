// Fault-tolerant (r-redundant) broker selection.
//
// Plain MaxSG chooses brokers assuming nothing fails: a single quarantined
// broker can strand covered pairs until reactive repair catches up. The
// robust variants here optimize the *surviving* objective instead — the
// worst-case number of vertex pairs that stay connected in the dominated
// subgraph after failures:
//
//   * kBrokerFailures: the adversary removes any r brokers from the chosen
//     set (the Fault-Tolerant Connected Set Cover frame of PAPERS.md).
//   * kFailureGroups: the adversary fires any single correlated
//     graph::FailureGroup (an IXP outage, a regional blackout) — brokers
//     survive but their member edges go dark.
//
// The greedy scores every candidate w by the worst case over all failure
// scenarios of the connected-pair count of G_{B∪{w}} minus the failed
// capacity. Scenario states are enumerated on one RollbackUnionFind with a
// checkpoint/rollback recursion (shared unite prefixes are never redone),
// and per-scenario candidate gains are flat root/size array loads exactly
// like maxsg.cpp's sweep. Ties in the worst case break on the no-failure
// pair count, then on the lowest vertex id, so the output is deterministic
// — and the candidate sweeps are sharded by candidate range with per-shard
// scratch, so it is bit-identical at any BSR_THREADS.
//
// Caveat from the note paper (PAPERS.md): greedy redundancy does NOT
// inherit the (1 + ln n) set-cover guarantee — the surviving objective is
// not submodular, and tests/test_robust.cpp pins a tiny instance where the
// greedy is strictly below the brute-force optimum (verify.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"
#include "graph/fault_plane.hpp"

namespace bsr::broker {

enum class RobustMode : std::uint8_t {
  kBrokerFailures,  // survive any r broker failures
  kFailureGroups,   // survive any single correlated failure group
};

struct RobustOptions {
  RobustMode mode = RobustMode::kBrokerFailures;
  /// Number of simultaneous broker failures to survive (kBrokerFailures).
  std::uint32_t redundancy = 1;
  /// Correlated failure scenarios (kFailureGroups). Must be non-empty in
  /// that mode; ignored otherwise. Held by reference for the call.
  std::span<const bsr::graph::FailureGroup> groups;
};

struct RobustResult {
  BrokerSet brokers;  // selection order preserved
  /// Worst-case connected pairs of the dominated subgraph after the
  /// adversary's best move against the final set.
  std::uint64_t surviving_pairs = 0;
  /// No-failure connected pairs of the final set.
  std::uint64_t nominal_pairs = 0;
  /// surviving_pairs after each pick (same length as brokers.size()).
  std::vector<std::uint64_t> surviving_curve;
  std::uint32_t coverage = 0;  // f(B) of the final set
};

/// Greedy r-redundant selection with budget k. Deterministic; bit-identical
/// at any BSR_THREADS. Throws std::invalid_argument on an empty graph, on
/// redundancy == 0 in kBrokerFailures mode, or on empty groups in
/// kFailureGroups mode.
[[nodiscard]] RobustResult robust_maxsg(const bsr::graph::CsrGraph& g,
                                        std::uint32_t k,
                                        const RobustOptions& options = {});

/// Worst-case connected pairs of G_B after the adversary removes any r
/// brokers of `b` (0 when |b| <= r: everything can be taken down). Exact —
/// enumerates all C(|b|, r) scenarios on a RollbackUnionFind, so intended
/// for modest r and |b|, not an inner loop.
[[nodiscard]] std::uint64_t worst_case_surviving_pairs(
    const bsr::graph::CsrGraph& g, const BrokerSet& b, std::uint32_t r);

/// Worst-case connected pairs of G_B after any single failure group fires.
/// Throws std::invalid_argument on empty `groups`.
[[nodiscard]] std::uint64_t worst_case_surviving_pairs(
    const bsr::graph::CsrGraph& g, const BrokerSet& b,
    std::span<const bsr::graph::FailureGroup> groups);

}  // namespace bsr::broker
