// Link-level fault injection over an immutable CsrGraph.
//
// Real inter-domain outages are rarely clean vertex removals: a fiber cut
// drops one adjacency, an IXP outage drops every membership edge at once, a
// regional blackout takes a whole set of ASes (and everything incident to
// them) off the air. FaultPlane is a cheap mutable overlay that marks edges
// and vertices as down without ever rebuilding the CSR arrays, so failure
// sweeps and flap simulations run at bitmask speed.
//
// Failure state is *reference counted*: failing an edge twice (e.g. via two
// overlapping correlated groups) requires two heals before the edge carries
// traffic again. This makes arbitrary interleavings of group failures and
// heals restore the exact original connectivity — a property the unit tests
// cross-check against brute-force CSR rebuilds.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/edge_filter.hpp"
#include "graph/rng.hpp"

namespace bsr::graph {

/// A set of edges that fail (and heal) together, e.g. every membership edge
/// of one IXP, or every edge touching a regional set of ASes.
struct FailureGroup {
  NodeId center = 0;         // the IXP / hub / region label (informational)
  std::vector<Edge> edges;   // canonical (u < v) member edges
};

/// All structural edges incident to `center` — the "IXP outage" group.
[[nodiscard]] FailureGroup incident_group(const CsrGraph& g, NodeId center);

/// All structural edges with at least one endpoint in `region` (the "AS
/// region blackout" group). `region[0]` is used as the group label.
[[nodiscard]] FailureGroup region_group(const CsrGraph& g,
                                        std::span<const NodeId> region);

/// Mutable failure overlay bound to one graph. The graph must outlive the
/// plane. Construction is O(|V| + |E| log d) to index canonical edge ids;
/// all per-edge operations afterwards are O(log d) (binary search in the
/// adjacency of the smaller-id endpoint) and all per-slot queries are O(1).
class FaultPlane {
 public:
  explicit FaultPlane(const CsrGraph& g);

  [[nodiscard]] const CsrGraph& graph() const noexcept { return *graph_; }

  // --- single-link and vertex failures (reference counted) ---------------

  /// Fails edge {u, v}. Returns true iff the edge exists and transitioned
  /// from up to down (a repeated failure only deepens the refcount).
  bool fail_edge(NodeId u, NodeId v);

  /// Heals one failure layer of edge {u, v}. Returns true iff the edge
  /// transitioned from down to up. Healing an up edge is a no-op.
  bool heal_edge(NodeId u, NodeId v);

  /// Fails vertex `v`: every incident edge becomes unusable while the
  /// vertex is down, independent of edge failure state. Returns true iff
  /// the vertex transitioned up -> down.
  bool fail_vertex(NodeId v);
  bool heal_vertex(NodeId v);

  // --- correlated groups --------------------------------------------------

  /// Fails every member edge (one refcount layer each); returns how many
  /// edges newly transitioned to down.
  std::size_t fail_group(const FailureGroup& group);

  /// Heals one layer of every member edge; returns how many edges newly
  /// transitioned to up.
  std::size_t heal_group(const FailureGroup& group);

  /// Drops all failure state (edges and vertices).
  void heal_all();

  // --- queries ------------------------------------------------------------

  [[nodiscard]] bool vertex_ok(NodeId v) const noexcept {
    return node_down_[v] == 0;
  }

  /// True iff {u, v} is a structural edge, currently up, with both
  /// endpoints up. O(log d).
  [[nodiscard]] bool edge_ok(NodeId u, NodeId v) const noexcept;

  /// O(1) link-state query for the i-th incident edge of `u`, where `i`
  /// indexes graph().neighbors(u). Checks only the link itself, not the
  /// endpoints — pair with vertex_ok() in traversal loops.
  [[nodiscard]] bool edge_up_at(NodeId u, std::size_t i) const noexcept {
    return edge_down_[edge_id_[slot_begin_[u] + i]] == 0;
  }

  [[nodiscard]] std::uint64_t num_failed_edges() const noexcept {
    return failed_edges_;
  }
  [[nodiscard]] NodeId num_failed_vertices() const noexcept {
    return failed_vertices_;
  }

  /// True iff no edge or vertex failure is active.
  [[nodiscard]] bool pristine() const noexcept {
    return failed_edges_ == 0 && failed_vertices_ == 0;
  }

  /// Edge filter selecting exactly the usable edges; composes with the
  /// filtered-BFS machinery. Binds this plane by reference.
  [[nodiscard]] EdgeFilter filter() const;

  /// Rebuilds the surviving subgraph as a fresh CsrGraph (same vertex ids;
  /// down vertices become isolated). O(|V| + |E|) — intended for tests and
  /// brute-force cross-checks, not hot paths.
  [[nodiscard]] CsrGraph materialize() const;

 private:
  /// Directed slot index of v within u's adjacency, or npos if absent.
  [[nodiscard]] std::uint64_t slot_of(NodeId u, NodeId v) const noexcept;

  static constexpr std::uint64_t kNoSlot = ~std::uint64_t{0};

  const CsrGraph* graph_;
  std::vector<std::uint64_t> slot_begin_;   // size |V|+1: prefix degrees
  std::vector<std::uint64_t> edge_id_;      // per directed slot -> canonical id
  std::vector<std::uint32_t> edge_down_;    // per canonical edge: failure depth
  std::vector<std::uint32_t> node_down_;    // per vertex: failure depth
  std::uint64_t failed_edges_ = 0;          // edges with edge_down_ > 0
  NodeId failed_vertices_ = 0;              // vertices with node_down_ > 0
};

// --- deterministic flap schedules -----------------------------------------

/// Poisson outage process over a fixed set of failure groups.
struct FlapConfig {
  double outage_rate = 1.0;     // mean group outages per time unit
  double mean_downtime = 5.0;   // mean exponential outage duration
  double horizon = 100.0;       // outages start strictly before the horizon
};

struct FlapEvent {
  double time = 0.0;
  std::size_t group = 0;        // index into the caller's group list
  enum class Kind : std::uint8_t { kFail, kHeal } kind = Kind::kFail;
};

/// Time-sorted fail-at/heal-at events, deterministic in `rng`. Every kFail
/// has a matching kHeal (the heal may land past the horizon), so applying
/// the whole schedule to a FaultPlane returns it to pristine state.
/// Throws std::invalid_argument on non-positive rates/horizon or zero groups.
[[nodiscard]] std::vector<FlapEvent> make_flap_schedule(std::size_t num_groups,
                                                        const FlapConfig& config,
                                                        Rng& rng);

/// Applies one schedule event to the plane.
void apply_flap_event(FaultPlane& plane, std::span<const FailureGroup> groups,
                      const FlapEvent& event);

}  // namespace bsr::graph
