#include "graph/rich_club.hpp"

namespace bsr::graph {

double rich_club_coefficient(const CsrGraph& g, std::uint32_t k) {
  std::uint64_t members = 0;
  for (NodeId v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) > k) ++members;
  }
  if (members < 2) return 0.0;
  std::uint64_t internal_edges = 0;
  for (NodeId u = 0; u < g.num_vertices(); ++u) {
    if (g.degree(u) <= k) continue;
    for (const NodeId v : g.neighbors(u)) {
      if (u < v && g.degree(v) > k) ++internal_edges;
    }
  }
  const double possible = 0.5 * static_cast<double>(members) *
                          static_cast<double>(members - 1);
  return static_cast<double>(internal_edges) / possible;
}

std::vector<double> rich_club_profile(const CsrGraph& g,
                                      const std::vector<std::uint32_t>& thresholds) {
  std::vector<double> out;
  out.reserve(thresholds.size());
  for (const std::uint32_t k : thresholds) {
    out.push_back(rich_club_coefficient(g, k));
  }
  return out;
}

}  // namespace bsr::graph
