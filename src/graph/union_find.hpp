// Disjoint-set forest with union-by-size and path halving.
//
// Used heavily: saturated E2E connectivity, MaxSG's incremental dominated-
// subgraph maintenance, and connected-component extraction. Tracks component
// sizes so "size of the merged component" queries are O(alpha). find/unite
// are defined inline — greedy sweeps call them per edge, and the call
// overhead is measurable at that frequency.
//
// The merge rule (smaller root attaches under larger; ties attach the second
// root under the first) is shared with RollbackUnionFind, so both produce
// identical roots and sizes for the same unite sequence. Path halving only
// shortcuts paths — it never changes which vertex is a root or any size.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/check.hpp"
#include "graph/csr_graph.hpp"

namespace bsr::graph {

class UnionFind {
 public:
  explicit UnionFind(NodeId n);

  /// Resets to n singleton components.
  void reset(NodeId n);

  [[nodiscard]] NodeId size() const noexcept { return static_cast<NodeId>(parent_.size()); }

  /// Root of v's component (with path halving, so non-const).
  [[nodiscard]] NodeId find(NodeId v) noexcept {
    BSR_DCHECK(v < parent_.size());
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];  // path halving
      v = parent_[v];
    }
    return v;
  }

  /// Merges the components of u and v; returns true if they were distinct.
  bool unite(NodeId u, NodeId v) noexcept {
    NodeId ru = find(u);
    NodeId rv = find(v);
    if (ru == rv) return false;
    if (size_[ru] < size_[rv]) std::swap(ru, rv);
    parent_[rv] = ru;
    size_[ru] += size_[rv];
    --num_components_;
    return true;
  }

  [[nodiscard]] bool connected(NodeId u, NodeId v) noexcept { return find(u) == find(v); }

  /// Number of vertices in v's component.
  [[nodiscard]] std::uint32_t component_size(NodeId v) noexcept {
    return size_[find(v)];
  }

  /// Size of the component rooted at r; precondition: r is a root.
  [[nodiscard]] std::uint32_t root_size(NodeId r) const noexcept {
    BSR_DCHECK(r < parent_.size() && parent_[r] == r);
    return size_[r];
  }

  [[nodiscard]] NodeId num_components() const noexcept { return num_components_; }

 private:
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> size_;
  NodeId num_components_ = 0;
};

}  // namespace bsr::graph
