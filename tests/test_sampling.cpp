#include "graph/sampling.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace bsr::graph {
namespace {

TEST(Sampling, DistinctValuesInRange) {
  Rng rng(1);
  const auto sample = sample_distinct(rng, 100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<NodeId> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const NodeId v : sample) EXPECT_LT(v, 100u);
}

TEST(Sampling, DistinctFullRange) {
  Rng rng(2);
  const auto sample = sample_distinct(rng, 10, 10);
  std::set<NodeId> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Sampling, DistinctRejectsOversample) {
  Rng rng(3);
  EXPECT_THROW(sample_distinct(rng, 5, 6), std::invalid_argument);
}

TEST(Sampling, SampleFromPool) {
  Rng rng(4);
  const std::vector<NodeId> pool{10, 20, 30, 40, 50};
  const auto sample = sample_from(rng, pool, 3);
  EXPECT_EQ(sample.size(), 3u);
  for (const NodeId v : sample) {
    EXPECT_NE(std::find(pool.begin(), pool.end(), v), pool.end());
  }
  std::set<NodeId> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 3u);
}

TEST(Sampling, SampleFromRejectsOversample) {
  Rng rng(5);
  const std::vector<NodeId> pool{1, 2};
  EXPECT_THROW(sample_from(rng, pool, 3), std::invalid_argument);
}

TEST(Sampling, ShufflePreservesMultiset) {
  Rng rng(6);
  std::vector<NodeId> values{1, 2, 3, 4, 5, 6, 7};
  auto shuffled = values;
  shuffle(rng, shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, values);
}

TEST(Sampling, ShuffleIsDeterministic) {
  Rng a(7), b(7);
  std::vector<NodeId> va{1, 2, 3, 4, 5}, vb{1, 2, 3, 4, 5};
  shuffle(a, va);
  shuffle(b, vb);
  EXPECT_EQ(va, vb);
}

TEST(Sampling, PairsAvoidSelfLoops) {
  Rng rng(8);
  const auto pairs = sample_pairs(rng, 10, 500);
  EXPECT_EQ(pairs.size(), 500u);
  for (const auto& [u, v] : pairs) {
    EXPECT_NE(u, v);
    EXPECT_LT(u, 10u);
    EXPECT_LT(v, 10u);
  }
}

TEST(Sampling, PairsRequireTwoVertices) {
  Rng rng(9);
  EXPECT_THROW(sample_pairs(rng, 1, 5), std::invalid_argument);
}

TEST(Sampling, PairsRoughlyUniform) {
  Rng rng(10);
  const auto pairs = sample_pairs(rng, 4, 12000);
  std::vector<int> count(4, 0);
  for (const auto& [u, v] : pairs) {
    ++count[u];
    ++count[v];
  }
  for (const int c : count) EXPECT_NEAR(c, 6000, 400);
}

}  // namespace
}  // namespace bsr::graph
