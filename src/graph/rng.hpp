// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomness in the library flows through Rng, a xoshiro256** generator
// seeded via splitmix64 so that a single 64-bit seed fully determines every
// experiment. std::mt19937 is deliberately avoided: its seeding is awkward to
// make portable and its state is large; xoshiro256** is small, fast and has
// well-studied statistical quality.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace bsr::graph {

/// splitmix64 step: used to expand a single seed into generator state and as
/// a cheap stateless hash for deterministic per-key randomness.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — small-state, high-quality, deterministic PRNG.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d1f29a3c6e58b07ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Standard exponential variate with the given rate (> 0).
  [[nodiscard]] double exponential(double rate) noexcept;

  /// Bounded Pareto variate on [lo, hi] with tail index alpha (> 0).
  /// Heavy-tailed draws are used for IXP membership sizes and traffic volumes.
  [[nodiscard]] double pareto(double alpha, double lo, double hi) noexcept;

  /// Fork a statistically independent child generator. Used to give each
  /// experiment stage its own stream without correlating with the parent.
  [[nodiscard]] Rng fork() noexcept { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace bsr::graph
