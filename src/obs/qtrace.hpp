// Per-query trace records for the route-serving plane.
//
// Counters say how many queries each answer tag got; the journal says when
// epochs turned over. Neither can answer "what happened to *this* query" —
// which stage cost what, how stale the oracle was when it answered, which
// epoch served it. The query tracer fills that gap: while the runtime
// switch is on, RouteService::serve_batch assigns every query a globally
// unique, monotonically increasing trace id and each worker shard emits one
// fixed-size QueryTraceRow (enqueue -> admit/shed -> oracle lookup ->
// stitch, with per-stage deterministic tick costs) into its *own* bounded
// ring. Rings are shard-disjoint — no locks, no atomics, no false sharing —
// and the snapshot merges them into one deterministic stream.
//
// Determinism at any BSR_THREADS value (the property CI `cmp`s):
//   1. Trace ids are assigned per batch on the control thread
//      (qtrace_begin_batch returns a base; query i gets base + i), so a
//      query's id depends only on program order, never on sharding.
//   2. Each shard records in increasing query-index order, so per-shard
//      ring eviction drops exactly the shard's lowest ids. The union of
//      "last capacity rows per shard" therefore always contains the global
//      last-capacity ids: snapshot_query_trace sorts the union by trace id
//      and keeps the newest `capacity` rows — the same set, in the same
//      order, at any shard count.
//   3. Rows carry only integers and the simulated-time double; exporters
//      (export.hpp) print doubles via to_chars. Byte-identical output.
//
// Recording costs one branch while the switch is off. Under BSR_STATS=OFF
// the RouteService call sites compile away entirely (they sit inside
// BSR_STATS_ENABLED blocks), so hot libraries reference zero obs symbols;
// the tracer API itself stays linkable either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace bsr::obs {

/// Version tag of the exported JSONL qtrace schema (the first line of every
/// qtrace file names it). Bump on breaking changes to row layout.
inline constexpr std::string_view kQtraceSchema = "bsr-qtrace/1";

/// One per-query trace record. Stage costs are the deterministic virtual
/// ticks RouteAnswer carries (admission constant, oracle landmark scan,
/// stitch walk) — functions of the topology and the query alone, never of
/// wall time, so rows are bit-identical across hosts and thread counts.
struct QueryTraceRow {
  std::uint64_t trace_id = 0;
  double time = 0.0;            ///< simulated time of the serve_batch call
  std::uint64_t epoch = 0;      ///< oracle epoch that served the query
  std::uint64_t correlation = 0;///< failure-episode correlation: the truth
                                ///< version the epoch lagged behind (0 = fresh)
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t dist_bound = 0;
  std::uint64_t stale_behind = 0;  ///< truth events the serving epoch missed
  std::uint16_t admit_ticks = 0;
  std::uint16_t lookup_ticks = 0;
  std::uint16_t stitch_ticks = 0;
  std::uint8_t status = 0;      ///< sim::AnswerStatus value (answer tag)
  std::uint8_t reachable = 0;
};

struct QtraceOptions {
  /// Rows retained *per shard* and in the merged snapshot; older rows (lower
  /// trace ids) are evicted first.
  std::size_t capacity = std::size_t{1} << 16;
};

/// Turns query tracing on: resets rings and the trace-id allocator. Throws
/// std::invalid_argument on zero capacity.
void start_query_trace(const QtraceOptions& options = {});

/// Turns tracing off. Recorded rows stay readable until the next
/// start_query_trace().
void stop_query_trace();

[[nodiscard]] bool query_trace_enabled() noexcept;

/// Reserves `n` consecutive trace ids for one batch and returns the first.
/// Control thread only (before the worker shards fork).
[[nodiscard]] std::uint64_t qtrace_begin_batch(std::size_t n) noexcept;

/// Records one row from worker shard `shard` (shard-disjoint by contract:
/// concurrent calls must use distinct shard indices). No-op unless tracing.
void qtrace_record(std::size_t shard, const QueryTraceRow& row) noexcept;

struct QtraceSnapshot {
  /// Surviving rows in ascending trace-id order (ids are unique).
  std::vector<QueryTraceRow> rows;
  std::uint64_t recorded = 0;  ///< rows ever offered to the rings
  std::uint64_t dropped = 0;   ///< rows evicted (== recorded - rows.size())
};

/// Merges every shard ring into one deterministic stream: sorted by trace
/// id, trimmed to the newest `capacity` rows. Only call while worker
/// threads are quiescent (between serve_batch calls).
[[nodiscard]] QtraceSnapshot snapshot_query_trace();

}  // namespace bsr::obs
