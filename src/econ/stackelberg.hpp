// Stackelberg game between the broker coalition B and non-broker ASes (§7.1).
//
// B moves first, posting a routing price p_B; each customer AS i then picks
// the traffic fraction a_i ∈ [a_i0, 1] it routes through B to maximize
//   u_i(a_i) = V_i(a_i) + P_i(a_i) - p_B a_i                         (Eq. 8)
// where V_i is concave increasing (QoS-driven user income, diminishing
// returns) and P_i is concave, peaking at â_i with P_i(1) = 0 (the net
// payment/charge of legacy routing: high-paid traffic is offloaded first).
// B anticipates the responses and maximizes
//   u_B(p_B) = 2 p_B α(p_B) - C(α, p_e),   α = Σ_i a_i               (Eq. 9)
// Backward induction: the inner argmax is unique (strict concavity,
// Theorem 6) and found by ternary search; the outer price by golden section.
#pragma once

#include <cstdint>
#include <vector>

namespace bsr::econ {

/// One customer AS's utility parameters.
struct CustomerParams {
  double v_scale = 1.0;    // V_i(1): income at full adoption
  double v_curvature = 4.0;// γ in V(a) = v_scale·log(1+γa)/log(1+γ)
  double a0 = 0.0;         // legacy fraction already routed via B members
  double a_hat = 0.5;      // â_i: peak of the legacy payment curve P_i
  double p_peak = 0.2;     // P_i(â_i); P_i(1) = 0 by construction
};

/// V_i(a): concave, increasing, V(0) = 0, V(1) = v_scale.
[[nodiscard]] double customer_income(const CustomerParams& p, double a);

/// P_i(a): concave parabola through (â, p_peak) and (1, 0).
[[nodiscard]] double customer_legacy_payment(const CustomerParams& p, double a);

/// u_i(a) for a posted price.
[[nodiscard]] double customer_utility(const CustomerParams& p, double a, double price);

/// argmax_{a ∈ [a0, 1]} u_i(a): unique by strict concavity. Ternary search.
[[nodiscard]] double best_response(const CustomerParams& p, double price);

/// Broker-side cost C(α, p_e): concave increasing in both arguments.
struct BrokerCostParams {
  double linear = 0.05;    // per-unit transit cost component
  double hire = 0.1;       // employee-hire component multiplying p_e·sqrt(α)
  double employee_price = 0.5;  // p_e from the Nash bargaining stage
};

[[nodiscard]] double broker_cost(const BrokerCostParams& c, double alpha);

struct StackelbergConfig {
  std::vector<CustomerParams> customers;
  BrokerCostParams cost;
  double max_price = 5.0;  // p̄_B: regulatory / competitive price cap
};

struct StackelbergEquilibrium {
  double price = 0.0;               // p_B* (leader's move)
  double total_adoption = 0.0;      // α* = Σ a_i(p*)
  double mean_adoption = 0.0;       // α* / #customers
  double broker_utility = 0.0;      // u_B at equilibrium
  std::vector<double> adoption;     // a_i(p*) per customer
  std::vector<double> customer_utility;  // u_i at equilibrium
  std::size_t full_adopters = 0;    // customers with a_i* ≈ 1
};

/// Solves the two-stage game by backward induction.
/// Throws std::invalid_argument for an empty customer list or bad bounds.
[[nodiscard]] StackelbergEquilibrium solve_stackelberg(const StackelbergConfig& config);

}  // namespace bsr::econ
