// Mutable edge accumulator that produces an immutable CsrGraph.
//
// Duplicate edges and self-loops are tolerated on input and removed at
// build() time, which lets topology generators add edges opportunistically
// (e.g. preferential attachment re-drawing the same target) without
// book-keeping.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"

namespace bsr::graph {

class GraphBuilder {
 public:
  /// num_vertices fixes the vertex id range [0, num_vertices).
  explicit GraphBuilder(NodeId num_vertices) : num_vertices_(num_vertices) {}

  [[nodiscard]] NodeId num_vertices() const noexcept { return num_vertices_; }

  /// Adds an undirected edge. Self-loops are silently dropped; duplicates
  /// are deduplicated at build(). Throws std::out_of_range on bad ids.
  void add_edge(NodeId u, NodeId v);

  /// Reserve capacity for roughly this many edges (optimization only).
  void reserve(std::size_t edges) { edges_.reserve(edges); }

  /// Number of edges added so far (before dedup).
  [[nodiscard]] std::size_t pending_edges() const noexcept { return edges_.size(); }

  /// Builds the CSR graph. The builder remains usable afterwards.
  [[nodiscard]] CsrGraph build() const;

 private:
  NodeId num_vertices_;
  std::vector<Edge> edges_;  // canonical (u < v), possibly duplicated
};

}  // namespace bsr::graph
