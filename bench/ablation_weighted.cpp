// Ablation: traffic-weighted vs count-based broker selection.
//
// The paper counts every AS pair equally; QoS revenue follows traffic,
// which is heavily skewed. This ablation puts a gravity traffic weight on
// every AS (degree-proportional base x heavy-tailed popularity) and asks:
// how much traffic does the count-based selection leave on the table, and
// how much does weighted greedy recover?
#include <iostream>

#include "bench_common.hpp"
#include "broker/greedy_mcb.hpp"
#include "broker/weighted.hpp"

int main() {
  auto ctx = bsr::bench::make_context("Ablation: traffic-weighted broker selection");
  const auto& g = ctx.topo.graph;

  // Synthetic traffic weights: popularity ~ bounded Pareto, amplified for
  // content networks (video origins).
  bsr::graph::Rng rng(ctx.env.seed + 11);
  std::vector<double> weight(g.num_vertices());
  for (bsr::graph::NodeId v = 0; v < g.num_vertices(); ++v) {
    double w = rng.pareto(1.1, 1.0, 5000.0);
    if (ctx.topo.meta[v].type == bsr::topology::NodeType::kContent) w *= 8.0;
    if (ctx.topo.is_ixp(v)) w = 0.0;  // IXPs source no traffic themselves
    weight[v] = w;
  }

  bsr::io::Table table({"k", "selection", "covered traffic share",
                        "traffic-pair connectivity"});
  for (const std::uint32_t paper_k : {100u, 400u, 1000u}) {
    const std::uint32_t k = ctx.env.scaled(paper_k, 4);
    const auto count_based = bsr::broker::greedy_mcb(g, k).brokers;
    const auto traffic_based = bsr::broker::weighted_greedy_mcb(g, k, weight).brokers;

    double total_weight = 0;
    for (const double w : weight) total_weight += w;
    const auto report = [&](const char* name, const bsr::broker::BrokerSet& b) {
      table.row()
          .cell(std::uint64_t{k})
          .cell(name)
          .percent(bsr::broker::weighted_coverage(g, b, weight) / total_weight)
          .percent(bsr::broker::weighted_saturated_connectivity(g, b, weight));
    };
    report("count-based greedy (paper)", count_based);
    report("traffic-weighted greedy", traffic_based);
  }
  table.print(std::cout);
  std::cout << "(extension: weighted f stays submodular, so the (1-1/e) "
               "guarantee carries over; the gap is the revenue argument for "
               "traffic-aware broker placement)\n";
  return 0;
}
