#include "io/env.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace bsr::io {

namespace {

double read_double(const char* name, double fallback, double lo, double hi) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || value < lo || value > hi) {
    throw std::runtime_error(std::string("invalid ") + name + ": " + raw);
  }
  return value;
}

std::uint64_t read_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') {
    throw std::runtime_error(std::string("invalid ") + name + ": " + raw);
  }
  return value;
}

}  // namespace

std::uint32_t ExperimentEnv::scaled(std::uint32_t full, std::uint32_t minimum) const {
  const double value = std::round(static_cast<double>(full) * scale);
  return std::max<std::uint32_t>(minimum, static_cast<std::uint32_t>(value));
}

ExperimentEnv experiment_env() {
  ExperimentEnv env;
  env.scale = read_double("REPRO_SCALE", env.scale, 1e-4, 10.0);
  env.bfs_sources = static_cast<std::size_t>(
      read_u64("REPRO_SOURCES", env.bfs_sources));
  if (env.bfs_sources == 0) throw std::runtime_error("invalid REPRO_SOURCES: 0");
  env.seed = read_u64("REPRO_SEED", env.seed);
  return env;
}

std::string describe(const ExperimentEnv& env) {
  std::ostringstream oss;
  oss << "scale=" << env.scale << " bfs_sources=" << env.bfs_sources
      << " seed=" << env.seed;
  return oss.str();
}

}  // namespace bsr::io
