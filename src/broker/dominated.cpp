#include "broker/dominated.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "graph/bfs.hpp"
#include "graph/sampling.hpp"
#include "graph/union_find.hpp"

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::graph::Rng;
using bsr::graph::UnionFind;

bsr::graph::EdgeFilter dominated_edge_filter(const BrokerSet& b) {
  return [&b](NodeId u, NodeId v) { return b.dominates_edge(u, v); };
}

namespace {

UnionFind dominated_union_find(const CsrGraph& g, const BrokerSet& b) {
  UnionFind uf(g.num_vertices());
  // Only edges incident to a broker are active; iterating brokers' adjacency
  // touches each active edge at least once — O(sum of broker degrees).
  for (const NodeId u : b.members()) {
    for (const NodeId v : g.neighbors(u)) uf.unite(u, v);
  }
  return uf;
}

double connectivity_from(UnionFind& uf, NodeId n) {
  // Sum of (component size choose 2) over component roots.
  double connected_pairs = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    if (uf.find(v) == v) {
      const double s = uf.component_size(v);
      connected_pairs += s * (s - 1.0) / 2.0;
    }
  }
  const double total_pairs = static_cast<double>(n) * (n - 1.0) / 2.0;
  return connected_pairs / total_pairs;
}

}  // namespace

double saturated_connectivity(const CsrGraph& g, const BrokerSet& b) {
  if (b.num_vertices() != g.num_vertices()) {
    throw std::invalid_argument("saturated_connectivity: size mismatch");
  }
  const NodeId n = g.num_vertices();
  if (n < 2) return 0.0;
  UnionFind uf = dominated_union_find(g, b);
  return connectivity_from(uf, n);
}

double saturated_connectivity(const CsrGraph& g, const BrokerSet& b,
                              const bsr::graph::FaultPlane& faults) {
  if (b.num_vertices() != g.num_vertices() ||
      &faults.graph() != &g) {
    throw std::invalid_argument("saturated_connectivity: size mismatch");
  }
  const NodeId n = g.num_vertices();
  if (n < 2) return 0.0;
  UnionFind uf(n);
  for (const NodeId u : b.members()) {
    if (!faults.vertex_ok(u)) continue;
    const auto nbrs = g.neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      if (faults.vertex_ok(v) && faults.edge_up_at(u, i)) uf.unite(u, v);
    }
  }
  return connectivity_from(uf, n);
}

bsr::graph::DistanceCdf dominated_distance_cdf(const CsrGraph& g, const BrokerSet& b,
                                               Rng& rng, std::size_t num_sources) {
  return bsr::graph::distance_cdf_sampled(g, rng, num_sources,
                                          dominated_edge_filter(b));
}

BrokerOnlyShare broker_only_share(const CsrGraph& g, const BrokerSet& b, Rng& rng,
                                  std::size_t num_pairs) {
  BrokerOnlyShare out;
  const NodeId n = g.num_vertices();
  if (n < 2 || b.empty()) return out;

  // Components of G_B (any dominating path) ...
  UnionFind dominated_uf = dominated_union_find(g, b);
  // ... and components of the broker-induced subgraph (edges inside B only).
  UnionFind broker_uf(n);
  for (const NodeId u : b.members()) {
    for (const NodeId v : g.neighbors(u)) {
      if (b.contains(v)) broker_uf.unite(u, v);
    }
  }

  // A pair (u, v) is broker-only connected iff some broker component is
  // adjacent-or-equal to both endpoints. Most vertices attach to few broker
  // components, so compare small sorted root lists per endpoint.
  const auto attached_roots = [&](NodeId v) {
    std::vector<NodeId> roots;
    if (b.contains(v)) {
      roots.push_back(broker_uf.find(v));
    } else {
      for (const NodeId w : g.neighbors(v)) {
        if (b.contains(w)) roots.push_back(broker_uf.find(w));
      }
    }
    std::sort(roots.begin(), roots.end());
    roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
    return roots;
  };

  const auto pairs = bsr::graph::sample_pairs(rng, n, num_pairs);
  out.pairs_sampled = pairs.size();
  std::size_t broker_only_count = 0;
  for (const auto& [u, v] : pairs) {
    if (dominated_uf.find(u) != dominated_uf.find(v)) continue;
    ++out.pairs_connected;
    const auto roots_u = attached_roots(u);
    const auto roots_v = attached_roots(v);
    const bool shared = std::ranges::any_of(roots_u, [&](NodeId r) {
      return std::binary_search(roots_v.begin(), roots_v.end(), r);
    });
    if (shared) ++broker_only_count;
  }
  if (out.pairs_connected > 0) {
    out.broker_only = static_cast<double>(broker_only_count) /
                      static_cast<double>(out.pairs_connected);
  }
  return out;
}

std::uint32_t largest_dominated_component(const CsrGraph& g, const BrokerSet& b) {
  if (g.num_vertices() == 0) return 0;
  UnionFind uf = dominated_union_find(g, b);
  std::uint32_t best = 0;
  for (NodeId v = 0; v < g.num_vertices(); ++v) {
    if (uf.find(v) == v) best = std::max(best, uf.component_size(v));
  }
  return best;
}

}  // namespace bsr::broker
