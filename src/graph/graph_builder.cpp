#include "graph/graph_builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace bsr::graph {

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  if (u >= num_vertices_ || v >= num_vertices_) {
    throw std::out_of_range("GraphBuilder::add_edge: vertex id out of range");
  }
  if (u == v) return;  // self-loops carry no information for domination
  if (u > v) std::swap(u, v);
  edges_.push_back(Edge{u, v});
}

CsrGraph GraphBuilder::build() const {
  // At 10x stress scale the edge list holds ~3.5M entries; reserving the
  // sorted copy and the directed adjacency up front avoids the growth
  // doublings that would otherwise dominate peak RSS during build.
  std::vector<Edge> sorted;
  sorted.reserve(edges_.size());
  sorted.assign(edges_.begin(), edges_.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  // Both directions of every edge must index into NodeId-typed adjacency
  // slots; guard the 32-bit ceiling before the arithmetic below can wrap.
  BSR_DCHECK(num_vertices_ < kUnreachable);
  BSR_DCHECK(sorted.size() <= (std::size_t{1} << 31));

  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(num_vertices_) + 1, 0);
  for (const Edge& e : sorted) {
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<NodeId> adjacency(sorted.size() * 2);
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : sorted) {
    adjacency[cursor[e.u]++] = e.v;
    adjacency[cursor[e.v]++] = e.u;
  }
  // Edges were sorted by (u, v); per-vertex lists under u are already sorted,
  // but lists under v (the reverse direction) are not. Sort each list.
  for (NodeId v = 0; v < num_vertices_; ++v) {
    std::sort(adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
  }
  return CsrGraph(std::move(offsets), std::move(adjacency));
}

}  // namespace bsr::graph
