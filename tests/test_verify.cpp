#include "broker/verify.hpp"

#include <gtest/gtest.h>

#include "broker/greedy_mcb.hpp"
#include "test_util.hpp"

namespace bsr::broker {
namespace {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::test::make_complete;
using bsr::test::make_path;
using bsr::test::make_star;

TEST(DominatingPath, ValidatesHopByHop) {
  const CsrGraph g = make_path(5);
  BrokerSet b(5);
  b.add(1);
  b.add(3);
  const std::vector<NodeId> good{0, 1, 2, 3, 4};
  EXPECT_TRUE(is_dominating_path(g, b, good));

  BrokerSet sparse(5);
  sparse.add(1);
  // Hop 2-3 has no broker endpoint.
  EXPECT_FALSE(is_dominating_path(g, sparse, good));
}

TEST(DominatingPath, RejectsNonPaths) {
  const CsrGraph g = make_path(5);
  BrokerSet b(5);
  b.add(2);
  const std::vector<NodeId> not_adjacent{0, 2};
  EXPECT_FALSE(is_dominating_path(g, b, not_adjacent));
  const std::vector<NodeId> out_of_range{0, 7};
  EXPECT_FALSE(is_dominating_path(g, b, out_of_range));
}

TEST(DominatingPath, TrivialPathsAlwaysValid) {
  const CsrGraph g = make_path(3);
  const BrokerSet b(3);
  EXPECT_TRUE(is_dominating_path(g, b, {}));
  const std::vector<NodeId> single{1};
  EXPECT_TRUE(is_dominating_path(g, b, single));
}

TEST(PairwiseGuarantee, EmptySetVacuouslyTrue) {
  const CsrGraph g = make_path(4);
  EXPECT_TRUE(has_pairwise_guarantee(g, BrokerSet(4)));
}

TEST(PairwiseGuarantee, SingleCentralBroker) {
  const CsrGraph g = make_star(6);
  BrokerSet b(6);
  b.add(0);
  EXPECT_TRUE(has_pairwise_guarantee(g, b));
}

TEST(PairwiseGuarantee, DetectsSplitCoverage) {
  // Path 0-1-2-3-4-5 with brokers {0, 5}: covered = {0,1,4,5} but the two
  // dominated components {0,1} and {4,5} are separate.
  const CsrGraph g = make_path(6);
  BrokerSet b(6);
  b.add(0);
  b.add(5);
  EXPECT_FALSE(has_pairwise_guarantee(g, b));
}

TEST(PairwiseGuarantee, AdjacentBrokersBridge) {
  const CsrGraph g = make_path(6);
  BrokerSet b(6);
  b.add(2);
  b.add(3);
  EXPECT_TRUE(has_pairwise_guarantee(g, b));
}

TEST(BruteForce, KnownOptimaOnStar) {
  const CsrGraph g = make_star(7);
  EXPECT_EQ(brute_force_mcb_optimum(g, 1), 7u);
  EXPECT_EQ(brute_force_mcbg_optimum(g, 1), 7u);
}

TEST(BruteForce, PathOptima) {
  const CsrGraph g = make_path(6);
  // One broker covers at most 3 vertices of a path.
  EXPECT_EQ(brute_force_mcb_optimum(g, 1), 3u);
  // Two brokers cover up to 6 — MCB allows {1, 4} (covered split is fine).
  EXPECT_EQ(brute_force_mcb_optimum(g, 2), 6u);
  // MCBG at k = 2 must keep the dominated component connected: {1, 3}
  // covers {0,1,2,3,4} with every hop dominated; {1, 4} covers all 6 but
  // splits the dominated subgraph, so it is not admissible.
  EXPECT_EQ(brute_force_mcbg_optimum(g, 2), 5u);
}

TEST(BruteForce, McbgNeverExceedsMcb) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const CsrGraph g = bsr::test::make_random(10, 0.25, seed);
    for (const std::uint32_t k : {1u, 2u, 3u}) {
      EXPECT_LE(brute_force_mcbg_optimum(g, k), brute_force_mcb_optimum(g, k));
    }
  }
}

TEST(BruteForce, GreedyNeverBeatsBruteForce) {
  for (const std::uint64_t seed : {5ull, 6ull}) {
    const CsrGraph g = bsr::test::make_random(12, 0.2, seed);
    for (const std::uint32_t k : {1u, 2u, 4u}) {
      const auto greedy = greedy_mcb(g, k);
      EXPECT_LE(greedy.coverage, brute_force_mcb_optimum(g, k));
    }
  }
}

TEST(BruteForce, LargeGraphRejected) {
  const CsrGraph g = bsr::test::make_random(30, 0.1, 1);
  EXPECT_THROW(brute_force_mcb_optimum(g, 2), std::invalid_argument);
}

}  // namespace
}  // namespace bsr::broker
