#include "graph/distance_histogram.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/sampling.hpp"

namespace bsr::graph {

namespace detail {

DistanceCdf cdf_from_histogram(std::vector<std::uint64_t> histogram,
                               std::size_t sources_used, NodeId n) {
  DistanceCdf out;
  out.sources_used = sources_used;
  const double denom =
      static_cast<double>(sources_used) * static_cast<double>(n - 1);
  out.cdf.resize(std::max<std::size_t>(histogram.size(), 1), 0.0);
  std::uint64_t running = 0;
  for (std::size_t l = 1; l < histogram.size(); ++l) {
    running += histogram[l];
    out.cdf[l] = static_cast<double>(running) / denom;
  }
  out.reachable = out.cdf.back();
  return out;
}

}  // namespace detail

DistanceCdf distance_cdf_from_sources(const CsrGraph& g,
                                      std::span<const NodeId> sources,
                                      const EdgeFilter& filter) {
  if (filter) {
    return distance_cdf_from_sources_with(g, sources, engine::FnFilter{&filter});
  }
  return distance_cdf_from_sources_with(g, sources, engine::AllEdges{});
}

DistanceCdf distance_cdf_sampled(const CsrGraph& g, Rng& rng, std::size_t num_sources,
                                 const EdgeFilter& filter) {
  const NodeId n = g.num_vertices();
  if (num_sources >= n) return distance_cdf_exact(g, filter);
  const auto sources = sample_distinct(rng, n, static_cast<NodeId>(num_sources));
  return distance_cdf_from_sources(g, sources, filter);
}

DistanceCdf distance_cdf_exact(const CsrGraph& g, const EdgeFilter& filter) {
  std::vector<NodeId> all(g.num_vertices());
  std::iota(all.begin(), all.end(), NodeId{0});
  return distance_cdf_from_sources(g, all, filter);
}

double max_cdf_deviation(const DistanceCdf& a, const DistanceCdf& b) {
  const std::size_t len = std::max(a.cdf.size(), b.cdf.size());
  double worst = 0.0;
  for (std::size_t l = 0; l < len; ++l) {
    worst = std::max(worst, std::abs(a.at(static_cast<std::uint32_t>(l)) -
                                     b.at(static_cast<std::uint32_t>(l))));
  }
  return worst;
}

}  // namespace bsr::graph
