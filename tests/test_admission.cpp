#include "sim/admission.hpp"

#include <gtest/gtest.h>

#include "broker/maxsg.hpp"
#include "test_util.hpp"

namespace bsr::sim {
namespace {

using bsr::broker::BrokerSet;
using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::test::make_connected_random;
using bsr::test::make_path;
using bsr::test::make_star;

Flow make_flow(NodeId src, NodeId dst, double volume = 1.0) {
  Flow f;
  f.src = src;
  f.dst = dst;
  f.volume = volume;
  return f;
}

TEST(Admission, BrokeredPathPreferred) {
  const CsrGraph g = make_star(8);
  BrokerSet b(8);
  b.add(0);
  AdmissionConfig config;
  config.qos_requirement = 0.99;
  config.qos.unsupervised_hop_success = 0.5;
  AdmissionController controller(g, b, config);
  EXPECT_EQ(controller.admit(make_flow(1, 2)), AdmissionOutcome::kBrokered);
  EXPECT_EQ(controller.stats().brokered, 1u);
}

TEST(Admission, FallsBackToBgpWhenDominatedPlaneMissing) {
  const CsrGraph g = make_path(4);
  BrokerSet b(4);  // no brokers at all
  AdmissionConfig config;
  config.qos_requirement = 0.5;
  config.qos.unsupervised_hop_success = 0.9;  // 3 hops -> 0.729 >= 0.5
  AdmissionController controller(g, b, config);
  EXPECT_EQ(controller.admit(make_flow(0, 3)), AdmissionOutcome::kBgpFallback);
}

TEST(Admission, BlocksWhenNeitherPlaneMeetsQos) {
  const CsrGraph g = make_path(5);
  BrokerSet b(5);  // unmanaged network
  AdmissionConfig config;
  config.qos_requirement = 0.95;
  config.qos.unsupervised_hop_success = 0.8;  // 4 hops -> 0.41
  AdmissionController controller(g, b, config);
  EXPECT_EQ(controller.admit(make_flow(0, 4)), AdmissionOutcome::kBlocked);
  EXPECT_DOUBLE_EQ(controller.stats().blocked_volume, 1.0);
  EXPECT_DOUBLE_EQ(controller.stats().acceptance_rate(), 0.0);
}

TEST(Admission, UnreachableReported) {
  bsr::graph::GraphBuilder builder(4);
  builder.add_edge(0, 1);
  const CsrGraph g = builder.build();
  BrokerSet b(4);
  b.add(0);
  AdmissionController controller(g, b, {});
  EXPECT_EQ(controller.admit(make_flow(0, 3)), AdmissionOutcome::kUnreachable);
}

TEST(Admission, CapacityExhaustionBlocks) {
  // Two planes between 1 and 2: a supervised broker detour 1-0-4-2 and a
  // shorter unsupervised path 1-3-2 that BGP prefers but that fails QoS.
  bsr::graph::GraphBuilder builder(5);
  builder.add_edge(1, 0);
  builder.add_edge(0, 4);
  builder.add_edge(4, 2);
  builder.add_edge(1, 3);
  builder.add_edge(3, 2);
  const CsrGraph g = builder.build();
  BrokerSet b(5);
  b.add(0);
  b.add(4);
  AdmissionConfig config;
  config.qos_requirement = 0.99;
  config.qos.unsupervised_hop_success = 0.2;  // the 1-3-2 path can't meet QoS
  config.broker_capacity = 2.5;
  AdmissionController controller(g, b, config);
  EXPECT_EQ(controller.admit(make_flow(1, 2)), AdmissionOutcome::kBrokered);
  EXPECT_EQ(controller.admit(make_flow(1, 2)), AdmissionOutcome::kBrokered);
  // Third flow would push brokers 0 and 4 to 3.0 > 2.5 -> brokered plane
  // refuses; the BGP path 1-3-2 fails QoS -> blocked.
  EXPECT_EQ(controller.admit(make_flow(1, 2)), AdmissionOutcome::kBlocked);
  EXPECT_DOUBLE_EQ(controller.broker_load()[0], 2.0);
  EXPECT_DOUBLE_EQ(controller.broker_load()[4], 2.0);
}

TEST(Admission, StatsAggregateAcrossFlows) {
  const CsrGraph g = make_connected_random(50, 0.1, 5);
  const auto brokers = bsr::broker::maxsg(g, 5).brokers;
  AdmissionConfig config;
  config.qos_requirement = 0.9;
  config.qos.unsupervised_hop_success = 0.85;
  AdmissionController controller(g, brokers, config);
  bsr::graph::Rng rng(6);
  DemandConfig demand;
  demand.num_flows = 200;
  for (const Flow& flow : generate_flows(g, demand, rng)) controller.admit(flow);
  const auto& stats = controller.stats();
  EXPECT_EQ(stats.total(), 200u);
  EXPECT_GT(stats.acceptance_rate(), 0.0);
  EXPECT_LE(stats.acceptance_rate(), 1.0);
}

TEST(Admission, MoreBrokersHigherAcceptance) {
  const CsrGraph g = make_connected_random(80, 0.06, 7);
  AdmissionConfig config;
  config.qos_requirement = 0.95;
  config.qos.unsupervised_hop_success = 0.8;

  const auto run = [&](std::uint32_t k) {
    const auto brokers = bsr::broker::maxsg(g, k).brokers;
    AdmissionController controller(g, brokers, config);
    bsr::graph::Rng rng(8);
    DemandConfig demand;
    demand.num_flows = 300;
    for (const Flow& flow : generate_flows(g, demand, rng)) controller.admit(flow);
    return controller.stats().acceptance_rate();
  };
  EXPECT_GE(run(20), run(3) - 1e-9);
}

TEST(Admission, RejectsBadConfig) {
  const CsrGraph g = make_path(3);
  BrokerSet b(3);
  AdmissionConfig bad_requirement;
  bad_requirement.qos_requirement = 1.5;
  EXPECT_THROW(AdmissionController(g, b, bad_requirement), std::invalid_argument);
  AdmissionConfig bad_capacity;
  bad_capacity.broker_capacity = -1.0;
  EXPECT_THROW(AdmissionController(g, b, bad_capacity), std::invalid_argument);
}

}  // namespace
}  // namespace bsr::sim
